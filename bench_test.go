package heimdall

// One benchmark per paper table/figure (each runs the corresponding
// experiment at SmallScale; use cmd/heimdall-bench for larger scales), plus
// microbenchmarks for the deployment-critical paths: quantized inference
// (§4.1's sub-microsecond claim), training throughput (§6.7), labeling, and
// the simulator itself.

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/feature"
	"repro/internal/iolog"
	"repro/internal/label"
	"repro/internal/linnos"
	"repro/internal/nn"
	"repro/internal/policy"
	"repro/internal/replay"
	"repro/internal/ssd"
	"repro/internal/trace"
)

// ---- Microbenchmarks ----

func benchModel(b *testing.B) *core.Model {
	b.Helper()
	tr := trace.Generate(trace.MSRStyle(1, 2*time.Second))
	dev := ssd.New(ssd.Samsung970Pro(), 1)
	log := iolog.Collect(tr, dev)
	cfg := core.DefaultConfig(1)
	cfg.Epochs = 6
	cfg.MaxTrainSamples = 8000
	m, err := core.Train(log, cfg)
	if err != nil {
		b.Fatal(err)
	}
	return m
}

// BenchmarkInferenceQuantized measures the §4.1 deployment path: one
// fixed-point admission decision (the paper reports 0.05-0.12µs in C).
func BenchmarkInferenceQuantized(b *testing.B) {
	m := benchModel(b)
	hist := feature.NewWindow(3)
	hist.Push(feature.Hist{Latency: 100_000, QueueLen: 2, Thpt: 40})
	raw := m.Features(3, 4096, hist)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Admit(raw)
	}
}

// BenchmarkInferenceInt8 measures one admission decision through the int8
// engine — the lowest rung of the quantization ladder.
func BenchmarkInferenceInt8(b *testing.B) {
	m := benchModel(b)
	if err := m.EnableInt8(nil); err != nil {
		b.Fatal(err)
	}
	hist := feature.NewWindow(3)
	hist.Push(feature.Hist{Latency: 100_000, QueueLen: 2, Thpt: 40})
	raw := m.Features(3, 4096, hist)
	m.Admit(raw) // warm the scratch outside the timed loop
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Admit(raw)
	}
}

// benchBatchAdmit times the batched admission path (scaling + forward pass +
// threshold) through the model's active engine, reporting ns per row.
func benchBatchAdmit(b *testing.B, m *core.Model) {
	b.Helper()
	tr := trace.Generate(trace.MSRStyle(2, 2*time.Second))
	log := iolog.Collect(tr, ssd.New(ssd.Samsung970Pro(), 2))
	rows := feature.Extract(iolog.Reads(log), m.Spec())
	const batch = 64
	rows = rows[:len(rows)/batch*batch]
	scr := m.NewBatchScratch(batch)
	verdicts := make([]bool, batch)
	m.AdmitBatchInto(rows[:batch], verdicts, scr) // warm the scratch
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for off := 0; off < len(rows); off += batch {
			m.AdmitBatchInto(rows[off:off+batch], verdicts, scr)
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*len(rows)), "ns/row")
}

// BenchmarkBatchAdmitInt32 and BenchmarkBatchAdmitInt8 compare the batched
// admission path across the two integer engines on identical rows — the pair
// behind the heimdall-bench int8 table.
func BenchmarkBatchAdmitInt32(b *testing.B) {
	m := benchModel(b)
	benchBatchAdmit(b, m.WithPredictor(m.Quantized()))
}

func BenchmarkBatchAdmitInt8(b *testing.B) {
	m := benchModel(b)
	if err := m.EnableInt8(nil); err != nil {
		b.Fatal(err)
	}
	benchBatchAdmit(b, m)
}

// BenchmarkInferenceFloat is the un-quantized reference (the paper's 20µs
// pre-optimization path, here already fast because Go compiles natively). It
// runs through ScoreFast — the scratch-reusing PredictInto path — and must
// report 0 allocs/op.
func BenchmarkInferenceFloat(b *testing.B) {
	m := benchModel(b)
	hist := feature.NewWindow(3)
	raw := m.Features(3, 4096, hist)
	m.ScoreFast(raw) // warm the scratch buffers outside the timed loop
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.ScoreFast(raw)
	}
}

// BenchmarkInferenceJoint measures one joint inference deciding 9 I/Os at
// once (§4.2).
func BenchmarkInferenceJoint(b *testing.B) {
	net, err := nn.New(nn.Config{
		Inputs: 19, // 10 head features + 9 sizes
		Layers: []nn.LayerSpec{{Units: 128, Act: nn.ReLU}, {Units: 16, Act: nn.ReLU}, {Units: 1, Act: nn.Sigmoid}},
		Seed:   1,
	})
	if err != nil {
		b.Fatal(err)
	}
	q, err := net.Quantize()
	if err != nil {
		b.Fatal(err)
	}
	x := make([]float64, 19)
	cur := make([]int64, q.ScratchSize())
	next := make([]int64, q.ScratchSize())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.PredictInto(x, cur, next)
	}
}

// BenchmarkLinnOSInference measures one LinnOS per-page decision for
// comparison (8448 multiplications vs Heimdall's 3472, §6.6).
func BenchmarkLinnOSInference(b *testing.B) {
	tr := trace.Generate(trace.MSRStyle(2, 2*time.Second))
	dev := ssd.New(ssd.Samsung970Pro(), 2)
	m, err := linnos.Train(iolog.Collect(tr, dev), 2)
	if err != nil {
		b.Fatal(err)
	}
	hist := feature.NewWindow(linnos.HistDepth)
	row := linnos.Features(3, hist)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Admit(row)
	}
}

// BenchmarkTraining measures the full pipeline (§6.7) on a fixed log.
func BenchmarkTraining(b *testing.B) {
	tr := trace.Generate(trace.MSRStyle(3, 2*time.Second))
	dev := ssd.New(ssd.Samsung970Pro(), 3)
	log := iolog.Collect(tr, dev)
	cfg := core.DefaultConfig(3)
	cfg.Epochs = 6
	cfg.MaxTrainSamples = 8000
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Train(log, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPeriodLabeling measures §3.1 labeling including threshold search.
func BenchmarkPeriodLabeling(b *testing.B) {
	tr := trace.Generate(trace.MSRStyle(4, 2*time.Second))
	dev := ssd.New(ssd.Samsung970Pro(), 4)
	reads := iolog.Reads(iolog.Collect(tr, dev))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		th := label.Search(reads, label.SearchOptions{})
		label.Period(reads, th)
	}
}

// BenchmarkFeatureExtraction measures §3.3 extraction at depth 3.
func BenchmarkFeatureExtraction(b *testing.B) {
	tr := trace.Generate(trace.MSRStyle(5, 2*time.Second))
	dev := ssd.New(ssd.Samsung970Pro(), 5)
	reads := iolog.Reads(iolog.Collect(tr, dev))
	spec := feature.DefaultSpec()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		feature.Extract(reads, spec)
	}
}

// BenchmarkDeviceSubmit measures the SSD simulator's per-I/O cost.
func BenchmarkDeviceSubmit(b *testing.B) {
	dev := ssd.New(ssd.Samsung970Pro(), 6)
	now := int64(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		op := trace.Read
		if i%3 == 0 {
			op = trace.Write
		}
		dev.Submit(now, op, 8192)
		now += 50_000
	}
}

// BenchmarkReplay measures the event-driven replayer end to end.
func BenchmarkReplay(b *testing.B) {
	cfg := trace.MSRStyle(7, time.Second)
	cfg.MeanIOPS = 10000
	tr := trace.Generate(cfg)
	devs := []ssd.Config{ssd.Samsung970Pro(), ssd.Samsung970Pro()}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		replay.Run([]*trace.Trace{tr.Clone()}, replay.Options{
			Devices: devs, Seed: int64(i), Selector: policy.C3{},
		})
	}
}

// ---- One benchmark per paper table/figure (SmallScale) ----

func benchTable(b *testing.B, f func(experiments.Scale) experiments.Table) {
	b.Helper()
	scale := experiments.SmallScale()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := f(scale)
		if len(t.Rows) == 0 {
			b.Fatalf("%s produced no rows", t.Title)
		}
	}
}

func BenchmarkFig05aLabeling(b *testing.B)      { benchTable(b, experiments.Fig5a) }
func BenchmarkFig05bNoise(b *testing.B)         { benchTable(b, experiments.Fig5b) }
func BenchmarkFig07aCorrelation(b *testing.B)   { benchTable(b, experiments.Fig7a) }
func BenchmarkFig07bFeatures(b *testing.B)      { benchTable(b, experiments.Fig7b) }
func BenchmarkFig07cDepth(b *testing.B)         { benchTable(b, experiments.Fig7c) }
func BenchmarkFig07dScalers(b *testing.B)       { benchTable(b, experiments.Fig7d) }
func BenchmarkFig08Models(b *testing.B)         { benchTable(b, experiments.Fig8) }
func BenchmarkFig09aPerPage(b *testing.B)       { benchTable(b, experiments.Fig9a) }
func BenchmarkFig09bLayers(b *testing.B)        { benchTable(b, experiments.Fig9b) }
func BenchmarkFig09cNeuronGrid(b *testing.B)    { benchTable(b, experiments.Fig9c) }
func BenchmarkFig09dActivations(b *testing.B)   { benchTable(b, experiments.Fig9d) }
func BenchmarkFig09eOutputLayer(b *testing.B)   { benchTable(b, experiments.Fig9e) }
func BenchmarkFig10Heuristics(b *testing.B)     { benchTable(b, experiments.Fig10) }
func BenchmarkFig11LargeScale(b *testing.B)     { benchTable(b, experiments.Fig11) }
func BenchmarkFig12Kernel(b *testing.B)         { benchTable(b, experiments.Fig12) }
func BenchmarkFig13Cluster(b *testing.B)        { benchTable(b, experiments.Fig13) }
func BenchmarkFig14Ablation(b *testing.B)       { benchTable(b, experiments.Fig14) }
func BenchmarkFig15aThroughput(b *testing.B)    { benchTable(b, experiments.Fig15a) }
func BenchmarkFig15bJointAccuracy(b *testing.B) { benchTable(b, experiments.Fig15b) }
func BenchmarkFig15cJoint(b *testing.B)         { benchTable(b, experiments.Fig15c) }
func BenchmarkFig16Overhead(b *testing.B)       { benchTable(b, experiments.Fig16) }
func BenchmarkFig17Retraining(b *testing.B)     { benchTable(b, experiments.Fig17) }
func BenchmarkFig18AutoML(b *testing.B)         { benchTable(b, experiments.Fig18) }
func BenchmarkTrainingTime(b *testing.B)        { benchTable(b, experiments.TrainTime) }
