//go:build race

package heimdall

import (
	"testing"
	"time"

	"repro/internal/experiments"
)

// raceDetectorEnabled reports whether this binary was built with -race.
// Wall-clock performance assertions (Fig. 15a's saturation cap) are
// meaningless under the detector's ~20x instrumentation slowdown.
const raceDetectorEnabled = true

// TestParallelFanOutUnderRace exists to put the experiment engine's worker
// pool in front of the race detector: the dataset-pool fan-out, the
// per-dataset model sweep, and the nested AutoML trial fan-out all run on 4
// goroutines here. Any unsynchronized sharing between workers (a scratch
// buffer escaping its chunk, a reduction racing a writer) fails this test.
func TestParallelFanOutUnderRace(t *testing.T) {
	scale := experiments.SmallScale()
	scale.TraceDur = 1500 * time.Millisecond
	scale.Datasets = 2
	scale.Epochs = 2
	scale.MaxTrainSamples = 2000
	scale.AutoMLTrials = 1
	scale.Workers = 4
	if ds := experiments.Pool(3, scale); len(ds) != 3 {
		t.Fatalf("pool built %d datasets", len(ds))
	}
	if tab := experiments.Fig8(scale); len(tab.Rows) == 0 {
		t.Fatal("fig8 produced no rows")
	}
	if tab := experiments.Fig18(scale); len(tab.Rows) == 0 {
		t.Fatal("fig18 produced no rows")
	}
}
