//go:build race

package heimdall

// raceDetectorEnabled reports whether this binary was built with -race.
// Wall-clock performance assertions (Fig. 15a's saturation cap) are
// meaningless under the detector's ~20x instrumentation slowdown.
const raceDetectorEnabled = true
