package heimdall

// Façade exports for the online admission serving layer (internal/serve):
// an always-on per-device admission service with micro-batched group
// inference, atomic model hot-swap, and fail-open load shedding.

import (
	"net"

	"repro/internal/drift"
	"repro/internal/feature"
	"repro/internal/serve"
)

// ServeConfig tunes the admission server: shard count, queue bounds, the
// micro-batch window, the queue-age shed budget, breaker thresholds, and
// the optional drift reference.
type ServeConfig = serve.Config

// Server is the online admission service. Publish retrained models with
// Swap; it never pauses admission.
type Server = serve.Server

// ServeClient speaks the admission wire protocol (one per goroutine).
type ServeClient = serve.Client

// ServeStats is a snapshot of the server's per-shard counters.
type ServeStats = serve.Stats

// ServeVerdict is one admission decision as seen by a client.
type ServeVerdict = serve.Verdict

// NewServer wraps a trained model in an admission server and starts its
// shard workers. Attach listeners with (*Server).Serve.
func NewServer(m *Model, cfg ServeConfig) *Server { return serve.NewServer(m, cfg) }

// ListenAdmission opens a listener for "unix:/path/sock", "tcp:host:port",
// or a bare TCP address.
func ListenAdmission(addr string) (net.Listener, error) { return serve.Listen(addr) }

// DialAdmission connects a client to an admission server (same address
// forms as ListenAdmission).
func DialAdmission(addr string) (*ServeClient, error) { return serve.Dial(addr) }

// PSI is the population-stability index between a reference and a current
// distribution (as fraction vectors) — the drift score behind
// InputDriftDetector and the server's per-shard detectors.
func PSI(ref, cur []float64) float64 { return drift.PSI(ref, cur) }

// ExtractFeatures converts collected I/O records into the model's feature
// rows — the shape ServeConfig.DriftRef and NewInputDriftDetector expect as
// the training-distribution reference.
func ExtractFeatures(recs []Record, m *Model) [][]float64 {
	return feature.Extract(recs, m.Spec())
}
