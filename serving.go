package heimdall

// Façade exports for the online admission serving layer (internal/serve):
// an always-on per-device admission service with micro-batched group
// inference, atomic model hot-swap, and fail-open load shedding.

import (
	"net"
	"time"

	"repro/internal/drift"
	"repro/internal/feature"
	"repro/internal/serve"
)

// ServeConfig tunes the admission server: shard count, queue bounds, the
// micro-batch window, the queue-age shed budget, breaker thresholds, and
// the optional drift reference.
type ServeConfig = serve.Config

// Server is the online admission service. Publish retrained models with
// Swap; it never pauses admission.
type Server = serve.Server

// ServeClient speaks the admission wire protocol (one per goroutine).
type ServeClient = serve.Client

// ServePipeline is the windowed async decide API over a ServeClient: up to
// N decides in flight on one connection, verdicts reaped as the window
// recycles. Start one with (*ServeClient).Pipeline(n).
type ServePipeline = serve.Pipeline

// ServeStats is a snapshot of the server's per-shard counters.
type ServeStats = serve.Stats

// ServeVerdict is one admission decision as seen by a client.
type ServeVerdict = serve.Verdict

// Verdict flags: how a decision degraded, if it did. FlagLocal is the only
// one set client-side — it marks a fail-open admit the server never saw.
const (
	FlagShed     = serve.FlagShed     // queue-full fail-open
	FlagDeadline = serve.FlagDeadline // queue-age budget fail-open
	FlagBreaker  = serve.FlagBreaker  // answered with the shed breaker open
	FlagPartial  = serve.FlagPartial  // joint group flushed before filling
	FlagLocal    = serve.FlagLocal    // client-side fail-open (wire down)
)

// NewServer wraps a trained model in an admission server and starts its
// shard workers. Attach listeners with (*Server).Serve. Decisions flow
// through the model's active Predictor in one batched pass per drained
// micro-batch; NewServerWithPredictor pins a specific engine instead.
func NewServer(m *Model, cfg ServeConfig) *Server { return serve.NewServer(m, cfg) }

// ListenAdmission opens a listener for "unix:/path/sock", "tcp:host:port",
// or a bare TCP address.
func ListenAdmission(addr string) (net.Listener, error) { return serve.Listen(addr) }

// ResilientServeClient is the fail-open admission client: every decide gets
// a verdict — the server's when the wire cooperates, a local FlagLocal admit
// when it doesn't — with deadline-bounded I/O and capped-backoff reconnects.
type ResilientServeClient = serve.ResilientClient

// ResilientConfig tunes a ResilientServeClient's deadlines, backoff, and
// in-flight bound. The zero value is a sane default.
type ResilientConfig = serve.ClientConfig

// ServeClientCounters snapshots a resilient client's degradation activity;
// LocalVerdicts counts admissions the server never saw.
type ServeClientCounters = serve.ClientCounters

// DialAdmission connects a client to an admission server (same address
// forms as ListenAdmission), bounding the dial at two seconds.
func DialAdmission(addr string) (*ServeClient, error) {
	return serve.DialTimeout(addr, 2*time.Second)
}

// DialAdmissionTimeout is DialAdmission with an explicit dial bound
// (0 = block until the kernel gives up).
func DialAdmissionTimeout(addr string, d time.Duration) (*ServeClient, error) {
	return serve.DialTimeout(addr, d)
}

// DialAdmissionResilient returns a fail-open client bound to addr. It never
// fails: a dead address yields a client that admits locally until the
// address heals.
func DialAdmissionResilient(addr string, cfg ResilientConfig) *ResilientServeClient {
	return serve.DialResilient(addr, cfg)
}

// ServeChaosConfig tunes a chaos soak: request count, fault-schedule seed,
// shard count, client deadlines, and the directory for its unix sockets.
type ServeChaosConfig = serve.ChaosConfig

// ServeChaosReport is one soak's outcome: verdict counts split remote/local
// and by fault kind, the order-sensitive ledger hash, client/server/proxy
// counters, and any broken availability invariants.
type ServeChaosReport = serve.ChaosReport

// RunChaosSoak drives a server, a deterministic fault proxy, and a resilient
// client through a seeded fault schedule (blackouts, resets, stalls,
// mid-frame truncations, delays) and checks the availability contract:
// every decide answered, fail-open local admits exactly inside disruptive
// fault windows. The report's DeterministicKey is byte-identical across
// reruns and shard counts for a given seed.
func RunChaosSoak(m *Model, cfg ServeChaosConfig) (ServeChaosReport, error) {
	return serve.ChaosSoak(m, cfg)
}

// PSI is the population-stability index between a reference and a current
// distribution (as fraction vectors) — the drift score behind
// InputDriftDetector and the server's per-shard detectors.
func PSI(ref, cur []float64) float64 { return drift.PSI(ref, cur) }

// ExtractFeatures converts collected I/O records into the model's feature
// rows — the shape ServeConfig.DriftRef and NewInputDriftDetector expect as
// the training-distribution reference.
func ExtractFeatures(recs []Record, m *Model) [][]float64 {
	return feature.Extract(recs, m.Spec())
}
