package heimdall

// Tests of the public façade: the full quickstart flow over the exported
// API only, plus the experiment harness smoke tests (every figure function
// must produce a plausible table even at tiny scale).

import (
	"strings"
	"testing"
	"time"

	"repro/internal/experiments"
)

func TestPublicQuickstartFlow(t *testing.T) {
	tr := Generate(MSRStyle(42, 4*time.Second))
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	dev := NewDevice(Samsung970Pro(), 1)
	log := Collect(tr, dev)
	if len(log) != tr.Len() {
		t.Fatal("log length mismatch")
	}

	cfg := DefaultConfig(7)
	cfg.Epochs = 12
	cfg.MaxTrainSamples = 12000
	model, err := Train(log, cfg)
	if err != nil {
		t.Fatal(err)
	}

	dev2 := NewDevice(Samsung970Pro(), 2)
	testReads := Reads(Collect(Generate(MSRStyle(43, 2*time.Second)), dev2))
	rep := model.Evaluate(testReads, GroundTruth(testReads))
	if rep.ROCAUC < 0.7 {
		t.Fatalf("public-API model ROC %.3f", rep.ROCAUC)
	}

	// Online decisions through the façade: an idle view must admit, and
	// across the real test set the decline rate on ground-truth-contended
	// reads must clearly exceed the false-decline rate on clean reads.
	idle := NewFeatureWindow(3)
	idle.Push(HistEntry{Latency: 90_000, QueueLen: 1, Thpt: 40})
	if !model.Admit(model.Features(1, 4096, idle)) {
		t.Error("idle device should admit")
	}
	var declinedSlow, slow, declinedFast, fast int
	rows := extractRows(model, testReads)
	gt := GroundTruth(testReads)
	for i, raw := range rows {
		declined := !model.Admit(raw)
		if gt[i] == 1 {
			slow++
			if declined {
				declinedSlow++
			}
		} else {
			fast++
			if declined {
				declinedFast++
			}
		}
	}
	if slow == 0 || fast == 0 {
		t.Fatal("degenerate test window")
	}
	slowRate := float64(declinedSlow) / float64(slow)
	fastRate := float64(declinedFast) / float64(fast)
	if slowRate < 3*fastRate || slowRate < 0.08 {
		t.Errorf("decisions do not discriminate: decline %0.2f of slow vs %0.2f of fast", slowRate, fastRate)
	}
}

func TestPublicReplayFlow(t *testing.T) {
	cfg := MSRStyle(5, 2*time.Second)
	cfg.MeanIOPS = 8000
	tr := Generate(cfg)
	res := Replay([]*Trace{tr}, ReplayOptions{
		Devices:  []DeviceConfig{Samsung970Pro(), Samsung970Pro()},
		Seed:     5,
		Selector: C3Policy(),
	})
	if res.Reads == 0 || res.ReadLat.N != res.Reads {
		t.Fatalf("replay result %+v", res)
	}
	for _, sel := range []Selector{
		BaselinePolicy(), RandomPolicy(1), HedgingPolicy(0), AMSPolicy(), HeronPolicy(),
	} {
		if sel.Name() == "" {
			t.Fatal("unnamed policy")
		}
	}
}

func TestPublicLabelingFlow(t *testing.T) {
	dev := NewDevice(IntelDCS3610(), 9)
	reads := Reads(Collect(Generate(TencentStyle(9, 2*time.Second)), dev))
	th := SearchThresholds(reads)
	labels := PeriodLabel(reads, th)
	if len(labels) != len(reads) {
		t.Fatal("label length mismatch")
	}
	slow := 0
	for _, l := range labels {
		slow += l
	}
	if slow == 0 || slow == len(labels) {
		t.Fatalf("degenerate labeling: %d/%d slow", slow, len(labels))
	}
}

func TestDeviceModelsExported(t *testing.T) {
	if len(DeviceModels()) != 10 {
		t.Fatal("expected the paper's 10 device models")
	}
	if LabelPeriod.String() != "period" || LabelCutoff.String() != "cutoff" {
		t.Fatal("labeling kinds")
	}
	if ClusterBaseline.String() != "baseline" || ClusterHeimdall.String() != "heimdall" {
		t.Fatal("cluster policies")
	}
}

// TestExperimentTables smoke-runs the fast experiment tables and checks
// their structural invariants. The replay/cluster/AutoML experiments are
// exercised by their benchmarks (they need minutes, not test seconds).
func TestExperimentTables(t *testing.T) {
	scale := experiments.SmallScale()
	scale.Datasets = 2
	scale.Epochs = 4
	scale.MaxTrainSamples = 4000
	scale.TraceDur = 1500 * time.Millisecond

	fast := map[string]func(experiments.Scale) experiments.Table{
		"fig5a":      experiments.Fig5a,
		"fig7a":      experiments.Fig7a,
		"fig15a":     experiments.Fig15a,
		"fig15c":     experiments.Fig15c,
		"fig16":      experiments.Fig16,
		"train-time": experiments.TrainTime,
	}
	for name, f := range fast {
		tab := f(scale)
		if len(tab.Rows) == 0 {
			t.Errorf("%s: empty table", name)
			continue
		}
		if tab.Title == "" || len(tab.Columns) == 0 {
			t.Errorf("%s: missing title/columns", name)
		}
		out := tab.String()
		if !strings.Contains(out, tab.Title) {
			t.Errorf("%s: String() missing title", name)
		}
		for _, r := range tab.Rows {
			if len(r.Values) > len(tab.Columns) {
				t.Errorf("%s: row %q wider than columns", name, r.Label)
			}
		}
	}
}

func TestFig16Targets(t *testing.T) {
	tab := experiments.Fig16(experiments.SmallScale())
	var lin, heim []float64
	for _, r := range tab.Rows {
		switch r.Label {
		case "linnos":
			lin = r.Values
		case "heimdall":
			heim = r.Values
		}
	}
	if lin == nil || heim == nil {
		t.Fatal("missing rows")
	}
	// memKB column: ~68 vs ~28 (§6.6).
	if lin[1] < 60 || lin[1] > 75 {
		t.Errorf("linnos memory %v KB, want ~68", lin[1])
	}
	if heim[1] < 24 || heim[1] > 32 {
		t.Errorf("heimdall memory %v KB, want ~28", heim[1])
	}
	// Heimdall must use a fraction of LinnOS's per-I/O compute.
	if heim[3] > 0.6 {
		t.Errorf("heimdall relative CPU %v, want < 0.6", heim[3])
	}
}

func TestFig15aShape(t *testing.T) {
	if raceDetectorEnabled {
		t.Skip("Fig 15a asserts wall-clock inference latency against a fixed saturation cap; the race detector's instrumentation slowdown breaks the measurement")
	}
	tab := experiments.Fig15a(experiments.SmallScale())
	// joint=1 must saturate at a lower load than joint=9: compare the
	// latency at the highest swept rate.
	var j1, j9 []float64
	for _, r := range tab.Rows {
		switch r.Label {
		case "joint=1":
			j1 = r.Values
		case "joint=9":
			j9 = r.Values
		}
	}
	if j1 == nil || j9 == nil {
		t.Fatal("missing joint rows")
	}
	// At 3x the joint=1 capacity, joint=1 is far past saturation while
	// joint=9 (with ~9x capacity) must still be stable.
	const at3x = 4 // index of the x3.0 column
	if j9[at3x] >= j1[at3x] {
		t.Errorf("joint=9 latency %.1fµs not below joint=1 %.1fµs at 3x load", j9[at3x], j1[at3x])
	}
	if j9[at3x] >= 100 {
		t.Errorf("joint=9 saturated at 3x load (%.1fµs)", j9[at3x])
	}
}
