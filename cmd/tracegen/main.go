// Command tracegen generates a synthetic block trace in one of the three
// production styles, optionally augmented, and either prints its workload
// statistics or dumps it as CSV (arrival_ns,op,offset,size).
//
// Usage:
//
//	tracegen [-style msr|alibaba|tencent] [-seed N] [-dur D]
//	         [-augment name] [-csv] [-windows D]
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/trace"
)

func main() {
	style := flag.String("style", "msr", "trace style: msr, alibaba, or tencent")
	seed := flag.Int64("seed", 42, "generator seed")
	dur := flag.Duration("dur", 30*time.Second, "trace duration")
	augment := flag.String("augment", "", "augmentation: rerate-0.1x rerate-0.5x rerate-2x resize-2x resize-4x")
	csv := flag.Bool("csv", false, "dump the trace as CSV to stdout")
	windows := flag.Duration("windows", 0, "also report per-window stats at this window size")
	flag.Parse()

	var cfg trace.GenConfig
	switch *style {
	case "msr":
		cfg = trace.MSRStyle(*seed, *dur)
	case "alibaba":
		cfg = trace.AlibabaStyle(*seed, *dur)
	case "tencent":
		cfg = trace.TencentStyle(*seed, *dur)
	default:
		fmt.Fprintf(os.Stderr, "unknown style %q\n", *style)
		os.Exit(2)
	}
	t := trace.Generate(cfg)

	if *augment != "" {
		found := false
		for _, a := range trace.StandardAugmentations() {
			if a.Name == *augment {
				t = a.Apply(t)
				found = true
				break
			}
		}
		if !found {
			fmt.Fprintf(os.Stderr, "unknown augmentation %q\n", *augment)
			os.Exit(2)
		}
	}

	if *csv {
		w := bufio.NewWriter(os.Stdout)
		fmt.Fprintln(w, "arrival_ns,op,offset,size")
		for _, r := range t.Reqs {
			fmt.Fprintf(w, "%d,%s,%d,%d\n", r.Arrival, r.Op, r.Offset, r.Size)
		}
		// bufio errors are sticky: one check after the loop catches a broken
		// pipe or full disk that would otherwise truncate the trace silently.
		if err := w.Flush(); err != nil {
			fmt.Fprintf(os.Stderr, "tracegen: writing csv: %v\n", err)
			os.Exit(1)
		}
		return
	}

	s := trace.Measure(t)
	fmt.Printf("trace %s: %d requests over %v\n", t.Name, s.Requests, s.Duration.Round(time.Millisecond))
	fmt.Printf("  reads %d (%.1f%%)  writes %d\n", s.Reads, s.ReadRatio*100, s.Writes)
	fmt.Printf("  IOPS %.0f  mean size %.1fKB  p50 size %.1fKB  max %dKB\n",
		s.IOPS, s.MeanSize/1024, s.P50Size/1024, s.MaxSize/1024)
	fmt.Printf("  read BW %.1fMB/s  write BW %.1fMB/s  randomness %.2f  rank %.0f\n",
		s.ReadBW/(1<<20), s.WriteBW/(1<<20), s.Randomness, s.Rank())

	if *windows > 0 {
		fmt.Printf("\nper-window stats (%v windows):\n", *windows)
		for i, w := range trace.Windows(t, *windows, 1) {
			ws := trace.Measure(w)
			fmt.Printf("  w%02d: %6d reqs  %7.0f IOPS  read %.2f  rand %.2f\n",
				i, ws.Requests, ws.IOPS, ws.ReadRatio, ws.Randomness)
		}
	}
}
