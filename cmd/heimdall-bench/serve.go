package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/iolog"
	"repro/internal/metrics"
	"repro/internal/serve"
	"repro/internal/ssd"
	"repro/internal/trace"
)

// runServeBench is the `heimdall-bench serve` subcommand: a client-side load
// generator for the online admission service. Each connection goroutine
// owns a disjoint set of devices, each backed by its own simulated SSD —
// admitted I/Os are submitted to it and their completions reported back, so
// the server's feature trackers see a live-looking queue/latency history.
//
// Two load shapes:
//
//   - synchronous (always run): one Decide round trip at a time per
//     connection — the per-request latency floor;
//   - pipelined (-pipeline N): the windowed Pipeline API keeps N decides in
//     flight per connection. By default this phase consolidates the whole
//     device population onto -pipeline-conns connections (one, unless
//     overridden) — the point of the windowed API is that one connection
//     saturates a shard, where the synchronous shape needs a connection per
//     outstanding request.
//
// With both phases run, the report carries the before/after pair and the
// speedup — the number the zero-copy datapath work is accountable to.
func runServeBench(args []string) {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", "", "server address (empty: self-host an in-process server on a unix socket)")
	dur := fs.Duration("dur", 3*time.Second, "load duration per phase")
	conns := fs.Int("conns", 4, "client connections (one goroutine each)")
	devices := fs.Int("devices", 4, "devices per connection")
	pipeline := fs.Int("pipeline", 0, "also run an open-loop pipelined phase with N in-flight decides per connection (0 = sync only)")
	pipeConns := fs.Int("pipeline-conns", 1, "connections for the pipelined phase; the conns×devices population is spread across them (0 = same conns as the sync phase)")
	seed := fs.Int64("seed", 1, "workload seed")
	trainDur := fs.Duration("train-dur", 4*time.Second, "self-host: training-trace duration")
	int8Flag := fs.Bool("int8", false, "self-host: decide through the batched int8 engine")
	jsonOut := fs.Bool("json", false, "write BENCH_serve.json")
	if err := fs.Parse(args); err != nil {
		os.Exit(2)
	}

	target := *addr
	var srv *serve.Server
	if target == "" {
		tmp, err := os.MkdirTemp("", "heimdall-serve-bench")
		if err != nil {
			fatalServe(err)
		}
		defer func() {
			_ = os.RemoveAll(tmp)
		}()
		target = "unix:" + filepath.Join(tmp, "serve.sock")
		srv = selfHost(target, *seed, *trainDur, *int8Flag)
		defer func() {
			if err := srv.Close(); err != nil {
				fatalServe(err)
			}
		}()
	}

	syncPhase := runServePhase(target, 0, *dur, *conns, *devices, *seed)
	printPhase(syncPhase)
	var pipePhase *servePhase
	speedup := 0.0
	if *pipeline > 0 {
		// Same device population, consolidated onto fewer connections: the
		// windowed API's claim is that one pipelined connection does the
		// work several synchronous connections needed.
		pc := *pipeConns
		if pc < 1 || pc > *conns**devices {
			pc = *conns
		}
		pdev := *conns * *devices / pc
		p := runServePhase(target, *pipeline, *dur, pc, pdev, *seed+7777)
		printPhase(p)
		if syncPhase.PerSec > 0 {
			speedup = p.PerSec / syncPhase.PerSec
			fmt.Printf("  pipelined/sync speedup: %.2fx (p99 %v vs %v)\n",
				speedup, p.RTT.P99, syncPhase.RTT.P99)
		}
		pipePhase = &p
	}

	var server serve.Stats
	if c, err := serve.Dial(target); err == nil {
		if s, err := c.Stats(); err == nil {
			server = s
			fmt.Printf("  server: %s\n", s)
		}
		_ = c.Close()
	}

	if *jsonOut {
		rec := struct {
			Experiment string      `json:"experiment"`
			Sync       servePhase  `json:"sync"`
			Pipelined  *servePhase `json:"pipelined,omitempty"`
			Speedup    float64     `json:"speedup,omitempty"`
			Server     serve.Stats `json:"server"`
		}{
			Experiment: "serve",
			Sync:       syncPhase,
			Pipelined:  pipePhase,
			Speedup:    speedup,
			Server:     server,
		}
		data, err := json.MarshalIndent(rec, "", "  ")
		if err != nil {
			fatalServe(err)
		}
		if err := os.WriteFile("BENCH_serve.json", append(data, '\n'), 0o644); err != nil {
			fatalServe(err)
		}
		fmt.Println("(wrote BENCH_serve.json)")
	}
}

// servePhase is one load phase's client-side measurement.
type servePhase struct {
	Mode      string               `json:"mode"`    // "sync" or "pipelined"
	Window    int                  `json:"window"`  // in-flight decides per conn (1 = sync)
	Conns     int                  `json:"conns"`   // connections this phase ran over
	Devices   int                  `json:"devices"` // devices per connection
	ElapsedMS float64              `json:"elapsed_ms"`
	Decisions int                  `json:"decisions"`
	Admits    int                  `json:"admits"`
	Degraded  int                  `json:"degraded"`
	PerSec    float64              `json:"decisions_per_sec"`
	RTT       metrics.LatencyStats `json:"rtt"`
}

type connResult struct {
	rtts    []int64
	admits  int
	degrade int
	err     error
}

// pendingCtx is what a pipelined connection remembers about an in-flight
// decide so its verdict can be timed and, on admit, completed. id == 0
// marks a free slot (the pipeline assigns ids from 1).
type pendingCtx struct {
	id   uint64
	t0   time.Time
	di   int
	size int32
}

// runServePhase drives one load phase (window == 0 → synchronous Decide
// loop; window > 0 → windowed Pipeline) and aggregates the client-side view.
func runServePhase(target string, window int, dur time.Duration, conns, devices int, seed int64) servePhase {
	results := make([]connResult, conns)
	var wg sync.WaitGroup
	start := time.Now()
	for ci := 0; ci < conns; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			res := &results[ci]
			// Preallocate the sample buffer: growth copies of a
			// hundreds-of-thousands-element slice are multi-millisecond
			// pauses that would land in the tail of every in-flight decide.
			res.rtts = make([]int64, 0, int(dur.Seconds()*300_000))
			c, err := serve.Dial(target)
			if err != nil {
				res.err = err
				return
			}
			defer func() {
				_ = c.Close()
			}()
			rng := rand.New(rand.NewSource(seed + int64(ci)))
			// Each device gets its own simulated SSD and clock; Submit
			// requires non-decreasing timestamps per device.
			devs := make([]*ssd.Device, devices)
			clocks := make([]int64, devices)
			queues := make([]int, devices)
			for i := range devs {
				devs[i] = ssd.New(ssd.Samsung970Pro(), seed+int64(ci*1000+i))
			}
			deadline := time.Now().Add(dur)
			if window > 0 {
				res.err = drivePipelined(c, res, rng, devs, clocks, queues, uint32(ci*devices), window, deadline)
			} else {
				res.err = driveSync(c, res, rng, devs, clocks, queues, uint32(ci*devices), deadline)
			}
		}(ci)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var all []int64
	admits, degraded := 0, 0
	for ci := range results {
		if results[ci].err != nil {
			fatalServe(fmt.Errorf("conn %d: %w", ci, results[ci].err))
		}
		all = append(all, results[ci].rtts...)
		admits += results[ci].admits
		degraded += results[ci].degrade
	}
	mode := "sync"
	effWindow := 1
	if window > 0 {
		mode, effWindow = "pipelined", window
	}
	return servePhase{
		Mode:      mode,
		Window:    effWindow,
		Conns:     conns,
		Devices:   devices,
		ElapsedMS: float64(elapsed.Microseconds()) / 1000,
		Decisions: len(all),
		Admits:    admits,
		Degraded:  degraded,
		PerSec:    float64(len(all)) / elapsed.Seconds(),
		RTT:       metrics.Latencies(all),
	}
}

// driveSync is the one-round-trip-at-a-time load loop.
func driveSync(c *serve.Client, res *connResult, rng *rand.Rand, devs []*ssd.Device, clocks []int64, queues []int, devBase uint32, deadline time.Time) error {
	for time.Now().Before(deadline) {
		di := rng.Intn(len(devs))
		size := 4096 * int32(1+rng.Intn(16))
		t0 := time.Now()
		v, err := c.Decide(devBase+uint32(di), queues[di], size)
		if err != nil {
			return err
		}
		res.rtts = append(res.rtts, time.Since(t0).Nanoseconds())
		if v.Shed() {
			res.degrade++
		}
		if v.Admit {
			res.admits++
			if err := completeIO(c, devs, clocks, queues, rng, devBase, di, size); err != nil {
				return err
			}
		}
	}
	return c.Flush()
}

// drivePipelined keeps window decides in flight through the Pipeline API.
// Per-id context lives in a window-sized slot array scanned linearly: at
// most window ids are outstanding at once, but a slow shard can sit on an
// old id while fast shards keep answering fresh ones, so the outstanding
// set is bounded in count only — never in id span. A modular ring would
// eventually collide two live ids in one slot; the scan (window is small)
// stays alloc-free without that failure mode.
func drivePipelined(c *serve.Client, res *connResult, rng *rand.Rand, devs []*ssd.Device, clocks []int64, queues []int, devBase uint32, window int, deadline time.Time) error {
	p := c.Pipeline(window)
	pending := make([]pendingCtx, window)
	reap := func(v serve.Verdict) error {
		ctx := (*pendingCtx)(nil)
		for i := range pending {
			if pending[i].id == v.ID {
				ctx = &pending[i]
				break
			}
		}
		if ctx == nil {
			return fmt.Errorf("verdict for unknown id %d", v.ID)
		}
		di, size := ctx.di, ctx.size
		res.rtts = append(res.rtts, time.Since(ctx.t0).Nanoseconds())
		*ctx = pendingCtx{}
		if v.Shed() {
			res.degrade++
		}
		if v.Admit {
			res.admits++
			return completeIO(c, devs, clocks, queues, rng, devBase, di, size)
		}
		return nil
	}
	for time.Now().Before(deadline) {
		di := rng.Intn(len(devs))
		size := 4096 * int32(1+rng.Intn(16))
		t0 := time.Now()
		id, reaped, err := p.Submit(devBase+uint32(di), queues[di], size)
		if err != nil {
			return err
		}
		// Record before reaping: devices fan out across shards, so a reaped
		// verdict can be any outstanding id — including the one just sent
		// (e.g. its shard was idle while older decides sat queued elsewhere).
		// A free slot always exists: Submit leaves at most window-1 decides
		// outstanding, so with this one the array is at worst exactly full.
		for i := range pending {
			if pending[i].id == 0 {
				pending[i] = pendingCtx{id: id, t0: t0, di: di, size: size}
				break
			}
		}
		for _, v := range reaped {
			if err := reap(v); err != nil {
				return err
			}
		}
	}
	rest, err := p.Drain(nil)
	if err != nil {
		return err
	}
	for _, v := range rest {
		if err := reap(v); err != nil {
			return err
		}
	}
	return c.Flush()
}

// completeIO submits one admitted I/O to the device simulator and reports
// its completion back to the server.
func completeIO(c *serve.Client, devs []*ssd.Device, clocks []int64, queues []int, rng *rand.Rand, devBase uint32, di int, size int32) error {
	clocks[di] += int64(10_000 + rng.Intn(100_000))
	r := devs[di].Submit(clocks[di], trace.Read, size)
	queues[di] = r.QueueLen
	return c.Complete(devBase+uint32(di), uint64(r.Latency(clocks[di])), r.QueueLen, size)
}

func printPhase(p servePhase) {
	fmt.Printf("serve bench [%s, window %d]: %d decisions in %.0fms over %d conns × %d devices\n",
		p.Mode, p.Window, p.Decisions, p.ElapsedMS, p.Conns, p.Devices)
	fmt.Printf("  throughput %.0f decisions/s, admits %d, degraded %d\n", p.PerSec, p.Admits, p.Degraded)
	fmt.Printf("  decision RTT p50 %v p90 %v p99 %v p99.9 %v max %v\n",
		p.RTT.P50, p.RTT.P90, p.RTT.P99, p.RTT.P999, p.RTT.Max)
}

// selfHost trains a quick model and serves it on addr in-process.
func selfHost(addr string, seed int64, trainDur time.Duration, int8Engine bool) *serve.Server {
	tr := trace.Generate(trace.MSRStyle(seed, trainDur))
	log := iolog.Collect(tr, ssd.New(ssd.Samsung970Pro(), seed))
	cfg := core.DefaultConfig(seed)
	cfg.Epochs = 10
	cfg.MaxTrainSamples = 10000
	cfg.Quantize8 = int8Engine
	model, err := core.Train(log, cfg)
	if err != nil {
		fatalServe(err)
	}
	srv := serve.NewServer(model, serve.Config{AdaptiveBatch: true, Shards: runtime.NumCPU()})
	l, err := serve.Listen(addr)
	if err != nil {
		fatalServe(err)
	}
	go func() {
		if err := srv.Serve(l); err != nil {
			fmt.Fprintln(os.Stderr, "heimdall-bench serve:", err)
		}
	}()
	return srv
}

func fatalServe(err error) {
	fmt.Fprintln(os.Stderr, "heimdall-bench serve:", err)
	os.Exit(1)
}
