package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/iolog"
	"repro/internal/metrics"
	"repro/internal/serve"
	"repro/internal/ssd"
	"repro/internal/trace"
)

// runServeBench is the `heimdall-bench serve` subcommand: a client-side load
// generator for the online admission service. Each connection goroutine
// owns a disjoint set of devices, each backed by its own simulated SSD —
// admitted I/Os are submitted to it and their completions reported back, so
// the server's feature trackers see a live-looking queue/latency history.
// It reports decision throughput and round-trip latency percentiles, plus
// the server's own counters.
func runServeBench(args []string) {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", "", "server address (empty: self-host an in-process server on a unix socket)")
	dur := fs.Duration("dur", 3*time.Second, "load duration")
	conns := fs.Int("conns", 4, "client connections (one goroutine each)")
	devices := fs.Int("devices", 4, "devices per connection")
	seed := fs.Int64("seed", 1, "workload seed")
	trainDur := fs.Duration("train-dur", 4*time.Second, "self-host: training-trace duration")
	int8Flag := fs.Bool("int8", false, "self-host: decide through the batched int8 engine")
	jsonOut := fs.Bool("json", false, "write BENCH_serve.json")
	if err := fs.Parse(args); err != nil {
		os.Exit(2)
	}

	target := *addr
	var srv *serve.Server
	if target == "" {
		tmp, err := os.MkdirTemp("", "heimdall-serve-bench")
		if err != nil {
			fatalServe(err)
		}
		defer func() {
			_ = os.RemoveAll(tmp)
		}()
		target = "unix:" + filepath.Join(tmp, "serve.sock")
		srv = selfHost(target, *seed, *trainDur, *int8Flag)
		defer func() {
			if err := srv.Close(); err != nil {
				fatalServe(err)
			}
		}()
	}

	type connResult struct {
		rtts    []int64
		admits  int
		degrade int
		err     error
	}
	results := make([]connResult, *conns)
	var wg sync.WaitGroup
	start := time.Now()
	for ci := 0; ci < *conns; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			res := &results[ci]
			c, err := serve.Dial(target)
			if err != nil {
				res.err = err
				return
			}
			defer func() {
				_ = c.Close()
			}()
			rng := rand.New(rand.NewSource(*seed + int64(ci)))
			// Each device gets its own simulated SSD and clock; Submit
			// requires non-decreasing timestamps per device.
			devs := make([]*ssd.Device, *devices)
			clocks := make([]int64, *devices)
			queues := make([]int, *devices)
			for i := range devs {
				devs[i] = ssd.New(ssd.Samsung970Pro(), *seed+int64(ci*1000+i))
			}
			deadline := time.Now().Add(*dur)
			for time.Now().Before(deadline) {
				di := rng.Intn(*devices)
				device := uint32(ci**devices + di)
				size := 4096 * int32(1+rng.Intn(16))
				t0 := time.Now()
				v, err := c.Decide(device, queues[di], size)
				if err != nil {
					res.err = fmt.Errorf("conn %d: %w", ci, err)
					return
				}
				res.rtts = append(res.rtts, time.Since(t0).Nanoseconds())
				if v.Admit {
					res.admits++
				}
				if v.Shed() {
					res.degrade++
				}
				if v.Admit {
					clocks[di] += int64(10_000 + rng.Intn(100_000))
					r := devs[di].Submit(clocks[di], trace.Read, size)
					queues[di] = r.QueueLen
					if err := c.Complete(device, uint64(r.Latency(clocks[di])), r.QueueLen, size); err != nil {
						res.err = fmt.Errorf("conn %d: %w", ci, err)
						return
					}
				}
			}
			res.err = c.Flush()
		}(ci)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var all []int64
	admits, degraded := 0, 0
	for ci := range results {
		if results[ci].err != nil {
			fatalServe(results[ci].err)
		}
		all = append(all, results[ci].rtts...)
		admits += results[ci].admits
		degraded += results[ci].degrade
	}
	stats := metrics.Latencies(all)
	throughput := float64(len(all)) / elapsed.Seconds()
	fmt.Printf("serve bench: %d decisions in %v over %d conns × %d devices\n",
		len(all), elapsed.Round(time.Millisecond), *conns, *devices)
	fmt.Printf("  throughput %.0f decisions/s, admits %d, degraded %d\n", throughput, admits, degraded)
	fmt.Printf("  decision RTT p50 %v p90 %v p99 %v p99.9 %v max %v\n",
		stats.P50, stats.P90, stats.P99, stats.P999, stats.Max)

	var server serve.Stats
	if c, err := serve.Dial(target); err == nil {
		if s, err := c.Stats(); err == nil {
			server = s
			fmt.Printf("  server: %s\n", s)
		}
		_ = c.Close()
	}

	if *jsonOut {
		rec := struct {
			Experiment string               `json:"experiment"`
			ElapsedMS  float64              `json:"elapsed_ms"`
			Conns      int                  `json:"conns"`
			Devices    int                  `json:"devices"`
			Decisions  int                  `json:"decisions"`
			Admits     int                  `json:"admits"`
			Degraded   int                  `json:"degraded"`
			PerSec     float64              `json:"decisions_per_sec"`
			RTT        metrics.LatencyStats `json:"rtt"`
			Server     serve.Stats          `json:"server"`
		}{
			Experiment: "serve",
			ElapsedMS:  float64(elapsed.Microseconds()) / 1000,
			Conns:      *conns,
			Devices:    *devices,
			Decisions:  len(all),
			Admits:     admits,
			Degraded:   degraded,
			PerSec:     throughput,
			RTT:        stats,
			Server:     server,
		}
		data, err := json.MarshalIndent(rec, "", "  ")
		if err != nil {
			fatalServe(err)
		}
		if err := os.WriteFile("BENCH_serve.json", append(data, '\n'), 0o644); err != nil {
			fatalServe(err)
		}
		fmt.Println("(wrote BENCH_serve.json)")
	}
}

// selfHost trains a quick model and serves it on addr in-process.
func selfHost(addr string, seed int64, trainDur time.Duration, int8Engine bool) *serve.Server {
	tr := trace.Generate(trace.MSRStyle(seed, trainDur))
	log := iolog.Collect(tr, ssd.New(ssd.Samsung970Pro(), seed))
	cfg := core.DefaultConfig(seed)
	cfg.Epochs = 10
	cfg.MaxTrainSamples = 10000
	cfg.Quantize8 = int8Engine
	model, err := core.Train(log, cfg)
	if err != nil {
		fatalServe(err)
	}
	srv := serve.NewServer(model, serve.Config{})
	l, err := serve.Listen(addr)
	if err != nil {
		fatalServe(err)
	}
	go func() {
		if err := srv.Serve(l); err != nil {
			fmt.Fprintln(os.Stderr, "heimdall-bench serve:", err)
		}
	}()
	return srv
}

func fatalServe(err error) {
	fmt.Fprintln(os.Stderr, "heimdall-bench serve:", err)
	os.Exit(1)
}
