// Command heimdall-bench regenerates the paper's tables and figures. Each
// subcommand runs one experiment and prints its result table; `all` runs
// everything in order.
//
// Usage:
//
//	heimdall-bench [-scale small|medium|full] [-seed N] [-datasets N]
//	               [-experiments N] [-dur D] [-parallel N] [-json] <experiment>
//
// -parallel N fans experiment work (dataset builds, per-dataset model sweeps,
// AutoML trials) across N goroutines; 0 uses GOMAXPROCS and 1 forces the
// serial path. Results are byte-identical at any worker count. -json
// additionally writes each table to BENCH_<experiment>.json in the current
// directory with the scale, worker count, and wall time.
//
// Experiments: fig5a fig5b fig7a fig7b fig7c fig7d fig8 fig9a fig9b fig9c
// fig9d fig9e fig10 fig11 fig12 fig13 fig14 fig15a fig15b fig15c fig16
// fig17 fig18 train-time faults loc all
//
// The faults experiment is not a paper figure: it injects device brownouts,
// transient read errors, and offline windows into the replay and compares
// always-admit, hedging, Heimdall, and circuit-breaker-guarded Heimdall
// under each scenario.
//
// Three subcommands sit outside the experiment table machinery and parse
// their own flags: `heimdall-bench serve` is the load generator for a live
// heimdall-serve instance (add -int8 to self-host on the batched int8
// engine), `heimdall-bench chaos` is the availability soak — it drives the
// full client/proxy/server loop through seeded network fault schedules and
// asserts the outcomes are deterministic across reruns and shard counts —
// and `heimdall-bench int8` measures the int8 batch engine against the
// int32 reference (ns/op per row, allocs, verdict agreement) and writes
// BENCH_int8.json, exiting nonzero if the int8 path allocates or agreement
// regresses (see -help on each). `heimdall-bench retrain` is the
// continuous-learning shoot-out: a seeded drifting workload replayed
// through a train-once baseline and a lifecycle-managed server, scoring
// per-window accuracy/FNR against ground truth and asserting the managed
// run's outcomes are byte-identical across reruns and candidate-training
// worker counts (writes BENCH_retrain.json with -json).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/parallel"
)

var runners = map[string]func(experiments.Scale) experiments.Table{
	"fig5a":      experiments.Fig5a,
	"fig5b":      experiments.Fig5b,
	"fig7a":      experiments.Fig7a,
	"fig7b":      experiments.Fig7b,
	"fig7c":      experiments.Fig7c,
	"fig7d":      experiments.Fig7d,
	"fig8":       experiments.Fig8,
	"fig9a":      experiments.Fig9a,
	"fig9b":      experiments.Fig9b,
	"fig9c":      experiments.Fig9c,
	"fig9d":      experiments.Fig9d,
	"fig9e":      experiments.Fig9e,
	"fig10":      experiments.Fig10,
	"fig11":      experiments.Fig11,
	"fig12":      experiments.Fig12,
	"fig13":      experiments.Fig13,
	"fig14":      experiments.Fig14,
	"fig15a":     experiments.Fig15a,
	"fig15b":     experiments.Fig15b,
	"fig15c":     experiments.Fig15c,
	"fig16":      experiments.Fig16,
	"fig17":      experiments.Fig17,
	"fig17ext":   experiments.Fig17Ext,
	"fig18":      experiments.Fig18,
	"train-time": experiments.TrainTime,
	"ablation":   experiments.Ablation,
	"faults":     experiments.Faults,
}

func main() {
	// The serve load generator has its own flag set and lifecycle (it talks
	// to a live server rather than running a table experiment), so dispatch
	// before the experiment flags parse.
	if len(os.Args) > 1 && os.Args[1] == "serve" {
		runServeBench(os.Args[2:])
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "chaos" {
		runChaosBench(os.Args[2:])
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "int8" {
		runInt8Bench(os.Args[2:])
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "retrain" {
		runRetrainBench(os.Args[2:])
		return
	}
	scaleName := flag.String("scale", "medium", "experiment scale: small, medium, or full")
	seed := flag.Int64("seed", 0, "override the random seed (0 keeps the scale default)")
	datasets := flag.Int("datasets", 0, "override the dataset count")
	exps := flag.Int("experiments", 0, "override the replay-experiment count")
	dur := flag.Duration("dur", 0, "override the trace window duration")
	workers := flag.Int("parallel", 0, "worker goroutines for experiment fan-out (0 = GOMAXPROCS, 1 = serial)")
	jsonOut := flag.Bool("json", false, "also write each table to BENCH_<experiment>.json")
	flag.Usage = usage
	flag.Parse()

	if flag.NArg() != 1 {
		usage()
		os.Exit(2)
	}
	name := flag.Arg(0)

	var scale experiments.Scale
	switch *scaleName {
	case "small":
		scale = experiments.SmallScale()
	case "medium":
		scale = experiments.MediumScale()
	case "full":
		scale = experiments.FullScale()
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q\n", *scaleName)
		os.Exit(2)
	}
	if *seed != 0 {
		scale.Seed = *seed
	}
	if *datasets != 0 {
		scale.Datasets = *datasets
	}
	if *exps != 0 {
		scale.Experiments = *exps
	}
	if *dur != 0 {
		scale.TraceDur = *dur
	}
	scale.Workers = *workers

	switch name {
	case "loc":
		printLOC()
		return
	case "all":
		names := make([]string, 0, len(runners))
		for n := range runners {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			run(n, scale, *jsonOut)
		}
		return
	}
	if _, ok := runners[name]; !ok {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n\n", name)
		usage()
		os.Exit(2)
	}
	run(name, scale, *jsonOut)
}

// benchRecord is the -json output schema: one experiment run with enough
// context (scale, workers, wall time) to compare runs across machines.
type benchRecord struct {
	Experiment string            `json:"experiment"`
	Scale      experiments.Scale `json:"scale"`
	Workers    int               `json:"workers"` // resolved count actually used
	ElapsedMS  float64           `json:"elapsed_ms"`
	Table      experiments.Table `json:"table"`
}

func run(name string, scale experiments.Scale, jsonOut bool) {
	start := time.Now()
	table := runners[name](scale)
	elapsed := time.Since(start)
	fmt.Println(table.String())
	fmt.Printf("(%s completed in %v on %d workers)\n\n", name, elapsed.Round(time.Millisecond), parallel.Workers(scale.Workers))
	if !jsonOut {
		return
	}
	rec := benchRecord{
		Experiment: name,
		Scale:      scale,
		Workers:    parallel.Workers(scale.Workers),
		ElapsedMS:  float64(elapsed.Microseconds()) / 1000,
		Table:      table,
	}
	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "json encode %s: %v\n", name, err)
		return
	}
	out := fmt.Sprintf("BENCH_%s.json", name)
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "write %s: %v\n", out, err)
		return
	}
	fmt.Printf("(wrote %s)\n\n", out)
}

func usage() {
	fmt.Fprintf(os.Stderr, "usage: heimdall-bench [flags] <experiment>\n\nexperiments:\n")
	names := make([]string, 0, len(runners)+2)
	for n := range runners {
		names = append(names, n)
	}
	names = append(names, "loc", "all")
	sort.Strings(names)
	fmt.Fprintf(os.Stderr, "  %s\n\nflags:\n", strings.Join(names, " "))
	flag.PrintDefaults()
}

// printLOC counts Go lines in the repository — the Table 1 analogue.
func printLOC() {
	type bucket struct {
		name  string
		match func(path string) bool
	}
	buckets := []bucket{
		{"core pipeline (core,label,filter,feature,nn)", func(p string) bool {
			return strings.Contains(p, "internal/core") || strings.Contains(p, "internal/label") ||
				strings.Contains(p, "internal/filter") || strings.Contains(p, "internal/feature") ||
				strings.Contains(p, "internal/nn")
		}},
		{"substrates (ssd,trace,iolog,metrics)", func(p string) bool {
			return strings.Contains(p, "internal/ssd") || strings.Contains(p, "internal/trace") ||
				strings.Contains(p, "internal/iolog") || strings.Contains(p, "internal/metrics")
		}},
		{"baselines (linnos,policy,models,automl)", func(p string) bool {
			return strings.Contains(p, "internal/linnos") || strings.Contains(p, "internal/policy") ||
				strings.Contains(p, "internal/models") || strings.Contains(p, "internal/automl")
		}},
		{"integration (replay,cluster,experiments)", func(p string) bool {
			return strings.Contains(p, "internal/replay") || strings.Contains(p, "internal/cluster") ||
				strings.Contains(p, "internal/experiments")
		}},
		{"tools & examples (cmd,examples,root)", func(p string) bool { return true }},
	}
	counts := make([]int, len(buckets))
	testCounts := make([]int, len(buckets))
	root := "."
	if _, err := os.Stat("go.mod"); err != nil {
		root = filepath.Dir(os.Args[0])
	}
	total, testTotal := 0, 0
	_ = filepath.Walk(root, func(path string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() || !strings.HasSuffix(path, ".go") {
			return nil
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return nil
		}
		lines := strings.Count(string(data), "\n")
		total += lines
		isTest := strings.HasSuffix(path, "_test.go")
		if isTest {
			testTotal += lines
		}
		for i, b := range buckets {
			if b.match(path) {
				if isTest {
					testCounts[i] += lines
				} else {
					counts[i] += lines
				}
				break
			}
		}
		return nil
	})
	fmt.Println("## Table 1 analogue — implementation scale (Go lines)")
	for i, b := range buckets {
		fmt.Printf("%-48s %6d  (+%d test)\n", b.name, counts[i], testCounts[i])
	}
	fmt.Printf("%-48s %6d  (+%d test)\n", "total", total-testTotal, testTotal)
}
