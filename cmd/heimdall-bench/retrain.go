package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"hash"
	"hash/fnv"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/iolog"
	"repro/internal/lifecycle"
	"repro/internal/serve"
	"repro/internal/ssd"
	"repro/internal/trace"
)

// runRetrainBench is the `heimdall-bench retrain` subcommand: the
// continuous-learning shoot-out. A seeded drifting workload — a
// Tencent-style regime spliced into an MSR-style regime a third of the
// way in (Fig. 17's long-deployment distribution shift compressed in
// time) — is replayed through two real servers over the wire:
//
//   - baseline: train once on the first window, never touch the model;
//   - managed: the same champion wrapped in the lifecycle service — live
//     completions harvested into per-device reservoirs, challenger panels
//     trained between windows, shadow-judged on held-out live traffic, and
//     promoted through the atomic hot-swap when they clear the gates, with
//     PSI alerts shortening the evaluation window.
//
// Both runs see byte-identical request streams (one synchronous
// connection, per-shard fences before every manager tick), so the only
// difference is the model lifecycle. Verdicts are scored per window
// against the simulator's ground-truth contention labels. The managed run
// is executed three times — rerun and a different candidate-training
// worker count — and the bench exits nonzero if any outcome hash differs:
// the determinism half of the acceptance criterion.
func runRetrainBench(args []string) {
	fs := flag.NewFlagSet("retrain", flag.ExitOnError)
	seed := fs.Int64("seed", 1, "workload seed")
	windows := fs.Int("windows", 10, "monitoring windows to replay (after the training window)")
	windowDur := fs.Duration("window", time.Second, "trace-time span of one window")
	devices := fs.Int("devices", 4, "devices (each with its own drifting trace and simulated SSD)")
	shards := fs.Int("shards", 2, "server shards")
	workers := fs.Int("parallel", 0, "candidate-training workers (0 = GOMAXPROCS); determinism is also checked at 1")
	evalEvery := fs.Int("eval-every", 24000, "harvested completions per evaluation window at urgency 0")
	jsonOut := fs.Bool("json", false, "write BENCH_retrain.json")
	if err := fs.Parse(args); err != nil {
		os.Exit(2)
	}

	total := *windowDur * time.Duration(*windows+1)
	shiftWin := (*windows + 1) / 3
	if shiftWin < 2 {
		shiftWin = 2
	}
	fmt.Printf("retrain bench: %d windows × %v, %d devices, %d shards, regime shift at window %d\n",
		*windows, *windowDur, *devices, *shards, shiftWin)

	// Per-device logs, chopped into windows by arrival. The workload is a
	// crisp regime change, the §7 deployment story: windows [0, shiftWin)
	// are Tencent-style (constant interarrival, small reads), everything
	// after is MSR-style (bursty, read-heavy, bigger transfers) — a world
	// the window-0 champion never saw. Each regime runs through its own
	// simulated SSD; regime B's arrivals are offset to splice the logs.
	logs := make([][]iolog.Record, *devices)
	for d := range logs {
		dseed := *seed + int64(d)*101
		durA := *windowDur * time.Duration(shiftWin)
		genA := trace.TencentStyle(dseed, durA)
		genB := trace.MSRStyle(dseed+17, total-durA)
		logA := iolog.Collect(trace.Generate(genA), ssd.New(ssd.Samsung970Pro(), dseed))
		logB := iolog.Collect(trace.Generate(genB), ssd.New(ssd.Samsung970Pro(), dseed+17))
		for i := range logB {
			logB[i].Arrival += int64(durA)
		}
		logs[d] = append(logA, logB...)
	}

	// Window 0 of device 0 is the operator's collected training log — the
	// train-once world both servers start from.
	champLog := windowSlice(logs[0], 0, *windowDur)
	champCfg := core.DefaultConfig(*seed)
	champCfg.Epochs = 10
	champCfg.MaxTrainSamples = 10000
	champion, err := core.Train(champLog, champCfg)
	if err != nil {
		fatalRetrain(err)
	}
	fmt.Printf("  champion: trained on %d records (window 0), window accuracy %.3f on its own window\n",
		len(champLog), champion.WindowAccuracy(iolog.Reads(champLog), iolog.GroundTruth(iolog.Reads(champLog))))

	// Merged per-window read streams, arrival-sorted across devices.
	wins := make([][]devRead, *windows+1)
	for w := 1; w <= *windows; w++ {
		var merged []devRead
		for d := range logs {
			for _, r := range iolog.Reads(windowSlice(logs[d], w, *windowDur)) {
				merged = append(merged, devRead{dev: uint32(d), rec: r})
			}
		}
		sort.SliceStable(merged, func(i, j int) bool {
			if merged[i].rec.Arrival != merged[j].rec.Arrival {
				return merged[i].rec.Arrival < merged[j].rec.Arrival
			}
			return merged[i].dev < merged[j].dev
		})
		wins[w] = merged
	}

	// Each window replays as a merged event stream: decides at arrival
	// times, completions at arrival+latency — the same pending-I/O
	// semantics feature.Extract uses offline, so the serving trackers see
	// the history a trained model expects. (Completing each I/O right
	// after its decide would hand the trackers history from I/Os still in
	// flight at arrival time — a different feature distribution than any
	// offline-trained model ever saw.)
	events := make([][]replayEvent, *windows+1)
	for w := 1; w <= *windows; w++ {
		evs := make([]replayEvent, 0, 2*len(wins[w]))
		for i, dr := range wins[w] {
			evs = append(evs, replayEvent{at: dr.rec.Arrival, idx: i})
			evs = append(evs, replayEvent{at: dr.rec.Arrival + dr.rec.Latency, complete: true, idx: i})
		}
		sort.SliceStable(evs, func(a, b int) bool {
			if evs[a].at != evs[b].at {
				return evs[a].at < evs[b].at
			}
			// Completions land before decides at the same instant, like the
			// extractor's pending-heap pop; stable sort keeps the rest in
			// arrival order.
			return evs[a].complete && !evs[b].complete
		})
		events[w] = evs
	}

	// The drift reference is the live feature distribution at deployment
	// time: rows observed while replaying the first monitoring window
	// through a throwaway server. (Offline-extracted training rows go
	// through a different arrival reconstruction than the serving trackers,
	// so using them as the reference would read as permanent drift.)
	driftRef := observeRef(champion, wins[1], events[1], *shards)
	fmt.Printf("  drift reference: %d live rows observed replaying window 1\n", len(driftRef))

	mgrCfg := func(w int) lifecycle.Config {
		train := champCfg
		// Live retraining labels synthesized-arrival logs. The latency-knee
		// cutoff labeler ranks well on reservoir-sized samples of this
		// bursty regime (the period labeler's window reconstruction is too
		// lossy on synthesized arrivals); its over-eager slow fraction does
		// not matter because the deployed operating point comes from online
		// recalibration, not training-time calibration.
		train.Labeling = core.LabelCutoffSize
		train.SearchThresholds = false
		train.Epochs = 8
		train.MaxTrainSamples = 6000
		return lifecycle.Config{
			Seed:               *seed,
			Train:              train,
			ReservoirPerDevice: 1024,
			HoldoutEvery:       4,
			HoldoutPerDevice:   192,
			EvalEvery:          *evalEvery,
			MinTrain:           800,
			MinHoldout:         64,
			Candidates:         2,
			WarmEpochs:         3,
			Workers:            w,
			// Under gradual drift the stale champion often keeps a decent
			// ranking (AUC) long after its threshold calibration has rotted
			// — by late windows it admits nearly every slow read. Allow AUC
			// parity within noise and let the FNR gate arbitrate: a
			// challenger may not admit meaningfully more slow I/Os than the
			// champion, and the decline-rate guard still rejects degenerate
			// decliners.
			AUCMargin: -0.02,
			// Deployed thresholds come from the shadow tap: training-time
			// calibration sees offline-extracted rows whose distribution
			// sits far from the serving trackers' (the PSI detectors agree
			// — an offline reference reads as drift), so without this a
			// passing challenger lands at an admit-everything operating
			// point.
			OnlineRecalibration: true,
			TapEvery:            2,
			TapPerDevice:        256,
		}
	}

	w0 := *workers
	if w0 <= 0 {
		w0 = runtime.GOMAXPROCS(0)
	}
	base := driveRetrain(champion, nil, driftRef, wins, events, *shards)
	fmt.Println("  baseline (train-once) done")
	runA := driveManaged(champion, mgrCfg(w0), driftRef, wins, events, *shards)
	fmt.Printf("  managed run done: %d promotions, %d rounds, %d rejections\n",
		runA.stats.Promotions, runA.stats.Rounds, runA.stats.Rejections)
	for _, n := range runA.notes {
		rep := n.rep
		switch {
		case rep.Trained:
			fmt.Printf("    window %d: trained %d candidates, best holdout AUC %.3f\n",
				n.win, rep.Candidates, rep.BestAUC)
		case rep.Promoted:
			fmt.Printf("    window %d: promoted v%d (AUC %.3f vs %.3f, FNR %.3f vs %.3f, holdout slow %.3f, decline %.3f)\n",
				n.win, rep.Version, rep.ChallengerAUC, rep.ChampionAUC,
				rep.ChallengerFNR, rep.ChampionFNR, rep.HoldoutSlow, rep.DeclineRate)
		case rep.Rejected:
			note := ""
			if rep.Recalibrated {
				note = fmt.Sprintf("; champion recalibrated to v%d", rep.Version)
			}
			fmt.Printf("    window %d: rejected — %s (AUC %.3f vs %.3f, FNR %.3f vs %.3f, holdout slow %.3f, decline %.3f)%s\n",
				n.win, rep.Reason, rep.ChallengerAUC, rep.ChampionAUC,
				rep.ChallengerFNR, rep.ChampionFNR, rep.HoldoutSlow, rep.DeclineRate, note)
		}
	}
	runB := driveManaged(champion, mgrCfg(w0), driftRef, wins, events, *shards)
	runC := driveManaged(champion, mgrCfg(1), driftRef, wins, events, *shards)
	deterministic := runA.hash == runB.hash && runA.hash == runC.hash

	fmt.Printf("\n  %-6s %7s %8s %8s %8s %8s %6s %7s %3s\n",
		"window", "reads", "baseAcc", "mgdAcc", "baseFNR", "mgdFNR", "promos", "psi", "urg")
	rows := make([]retrainRow, 0, *windows)
	for w := 1; w <= *windows; w++ {
		b, m := base.wins[w], runA.wins[w]
		row := retrainRow{
			Window: w, Reads: b.reads, Slow: b.slow,
			BaseAcc: b.acc(), BaseFNR: b.fnr(),
			MgdAcc: m.acc(), MgdFNR: m.fnr(),
			Promotions: m.promos, MaxPSI: m.psi, Urgency: m.urgency,
		}
		rows = append(rows, row)
		fmt.Printf("  %-6d %7d %8.4f %8.4f %8.4f %8.4f %6d %7.3f %3d\n",
			w, row.Reads, row.BaseAcc, row.MgdAcc, row.BaseFNR, row.MgdFNR,
			row.Promotions, row.MaxPSI, row.Urgency)
	}

	last := rows[len(rows)-1]
	improved := last.MgdAcc > last.BaseAcc && last.MgdFNR <= last.BaseFNR
	fmt.Printf("\n  final window: accuracy %.4f vs %.4f, FNR %.4f vs %.4f (managed vs train-once)\n",
		last.MgdAcc, last.BaseAcc, last.MgdFNR, last.BaseFNR)
	fmt.Printf("  promotions %d, improved=%v, deterministic=%v (hash %016x)\n",
		runA.stats.Promotions, improved, deterministic, runA.hash)

	if *jsonOut {
		rec := struct {
			Experiment    string          `json:"experiment"`
			Seed          int64           `json:"seed"`
			Windows       []retrainRow    `json:"windows"`
			Promotions    uint64          `json:"promotions"`
			Manager       lifecycle.Stats `json:"manager"`
			Improved      bool            `json:"improved"`
			Deterministic bool            `json:"deterministic"`
			Hash          string          `json:"outcome_hash"`
			Workers       [2]int          `json:"worker_counts"`
		}{
			Experiment: "retrain", Seed: *seed, Windows: rows,
			Promotions: runA.stats.Promotions, Manager: runA.stats,
			Improved: improved, Deterministic: deterministic,
			Hash:    fmt.Sprintf("%016x", runA.hash),
			Workers: [2]int{w0, 1},
		}
		buf, err := json.MarshalIndent(rec, "", "  ")
		if err != nil {
			fatalRetrain(err)
		}
		if err := os.WriteFile("BENCH_retrain.json", append(buf, '\n'), 0o644); err != nil {
			fatalRetrain(err)
		}
		fmt.Println("  wrote BENCH_retrain.json")
	}
	if !deterministic {
		fmt.Fprintln(os.Stderr, "heimdall-bench retrain: managed outcomes diverged across reruns/worker counts")
		os.Exit(1)
	}
}

type devRead struct {
	dev uint32
	rec iolog.Record
}

// replayEvent is one step of a window's replay: a decide (at the read's
// arrival) or its completion (at arrival+latency). idx points into the
// window's devRead slice.
type replayEvent struct {
	at       int64
	complete bool
	idx      int
}

type retrainRow struct {
	Window     int     `json:"window"`
	Reads      int     `json:"reads"`
	Slow       int     `json:"slow"`
	BaseAcc    float64 `json:"base_acc"`
	BaseFNR    float64 `json:"base_fnr"`
	MgdAcc     float64 `json:"mgd_acc"`
	MgdFNR     float64 `json:"mgd_fnr"`
	Promotions uint64  `json:"promotions"`
	MaxPSI     float64 `json:"max_psi"`
	Urgency    int     `json:"urgency"`
}

// winScore accumulates one window's verdict quality for one run.
type winScore struct {
	reads, slow, correct, slowAdmitted int
	promos                             uint64
	psi                                float64
	urgency                            int
}

func (w winScore) acc() float64 {
	if w.reads == 0 {
		return 1
	}
	return float64(w.correct) / float64(w.reads)
}

func (w winScore) fnr() float64 {
	if w.slow == 0 {
		return 0
	}
	return float64(w.slowAdmitted) / float64(w.slow)
}

type retrainRun struct {
	wins  []winScore
	notes []tickNote
	hash  uint64
	stats lifecycle.Stats
}

// tickNote pairs a manager tick report with the window it ran after.
type tickNote struct {
	win int
	rep lifecycle.TickReport
}

// windowSlice returns the records of window w (arrival in [w·dur, (w+1)·dur)).
func windowSlice(log []iolog.Record, w int, dur time.Duration) []iolog.Record {
	lo, hi := int64(w)*int64(dur), int64(w+1)*int64(dur)
	start := sort.Search(len(log), func(i int) bool { return log[i].Arrival >= lo })
	end := sort.Search(len(log), func(i int) bool { return log[i].Arrival >= hi })
	return log[start:end]
}

// driveManaged wires a lifecycle manager around a fresh server and replays
// the workload, ticking the manager at every window boundary.
func driveManaged(champion *core.Model, cfg lifecycle.Config, driftRef [][]float64, wins [][]devRead, events [][]replayEvent, shards int) retrainRun {
	mgr, err := lifecycle.New(cfg, champion, nil)
	if err != nil {
		fatalRetrain(err)
	}
	return driveRetrain(champion, mgr, driftRef, wins, events, shards)
}

// benchServer starts a fresh server on a unix socket, dials one
// synchronous client, and returns the client plus a teardown func.
func benchServer(champion *core.Model, scfg serve.Config) (*serve.Server, *serve.Client, func()) {
	srv := serve.NewServer(champion, scfg)
	tmp, err := os.MkdirTemp("", "heimdall-retrain")
	if err != nil {
		fatalRetrain(err)
	}
	addr := "unix:" + filepath.Join(tmp, "serve.sock")
	l, err := serve.Listen(addr)
	if err != nil {
		fatalRetrain(err)
	}
	go func() {
		if err := srv.Serve(l); err != nil {
			fmt.Fprintln(os.Stderr, "heimdall-bench retrain:", err)
		}
	}()
	c, err := serve.Dial(addr)
	if err != nil {
		fatalRetrain(err)
	}
	return srv, c, func() {
		_ = c.Close()
		if err := srv.Close(); err != nil {
			fatalRetrain(err)
		}
		_ = os.RemoveAll(tmp)
	}
}

// refTap records the feature rows the server actually infers on.
type refTap struct {
	mu   sync.Mutex
	rows [][]float64
}

func (t *refTap) OnDecision(_ uint32, row []float64, _ bool) {
	t.mu.Lock()
	t.rows = append(t.rows, append([]float64(nil), row...))
	t.mu.Unlock()
}

// observeRef replays one window through a throwaway server and returns the
// feature rows its shards inferred on — the live distribution the drift
// detectors should treat as "no drift".
func observeRef(champion *core.Model, win []devRead, events []replayEvent, shards int) [][]float64 {
	tap := &refTap{}
	_, c, stop := benchServer(champion, serve.Config{
		Shards:        shards,
		QueueLen:      8192,
		BreakerWindow: -1,
		Decisions:     tap,
	})
	defer stop()
	for _, e := range events {
		dr := win[e.idx]
		if e.complete {
			if err := c.Complete(dr.dev, uint64(dr.rec.Latency), dr.rec.QueueLen, dr.rec.Size); err != nil {
				fatalRetrain(err)
			}
			continue
		}
		if _, err := c.Decide(dr.dev, dr.rec.QueueLen, dr.rec.Size); err != nil {
			fatalRetrain(err)
		}
	}
	return tap.rows
}

// driveRetrain replays every window through a fresh server over one
// synchronous connection. mgr == nil is the train-once baseline; otherwise
// the manager's hooks are wired in and Tick runs at each window boundary
// behind per-shard fences, so its snapshots (and therefore the whole run)
// are deterministic.
func driveRetrain(champion *core.Model, mgr *lifecycle.Manager, driftRef [][]float64, wins [][]devRead, events [][]replayEvent, shards int) retrainRun {
	scfg := serve.Config{
		Shards:        shards,
		QueueLen:      8192,
		BreakerWindow: -1, // fail-open machinery off: verdict quality is the measurand
		DriftRef:      driftRef,
	}
	if mgr != nil {
		scfg.Completions = mgr.Harvester()
		scfg.Decisions = mgr.Harvester()
		scfg.OnDrift = mgr.DriftAlert
	}
	srv, c, stop := benchServer(champion, scfg)
	defer stop()
	if mgr != nil {
		mgr.Retarget(srv)
	}

	h := fnv.New64a()
	var b [8]byte
	run := retrainRun{wins: make([]winScore, len(wins))}
	for w := 1; w < len(wins); w++ {
		sc := &run.wins[w]
		for _, e := range events[w] {
			dr := wins[w][e.idx]
			if e.complete {
				if err := c.Complete(dr.dev, uint64(dr.rec.Latency), dr.rec.QueueLen, dr.rec.Size); err != nil {
					fatalRetrain(err)
				}
				continue
			}
			v, err := c.Decide(dr.dev, dr.rec.QueueLen, dr.rec.Size)
			if err != nil {
				fatalRetrain(err)
			}
			slow := dr.rec.Contended
			sc.reads++
			if slow {
				sc.slow++
			}
			if v.Admit != slow { // admit fast, decline slow = correct
				sc.correct++
			}
			if slow && v.Admit {
				sc.slowAdmitted++
			}
			b[0] = 0
			if v.Admit {
				b[0] = 1
			}
			putU32(b[1:], v.ModelVersion)
			_, _ = h.Write(b[:5])
		}
		// Per-shard fences: a decide round trip on device s drains shard
		// s's queue (FIFO), so every completion above is harvested before
		// the manager snapshots. Fence verdicts are excluded from scores
		// but included in the hash — they are served traffic too.
		for s := 0; s < shards; s++ {
			v, err := c.Decide(uint32(s), 0, 4096)
			if err != nil {
				fatalRetrain(err)
			}
			b[0] = 0
			if v.Admit {
				b[0] = 1
			}
			putU32(b[1:], v.ModelVersion)
			_, _ = h.Write(b[:5])
		}
		if mgr != nil {
			rep := mgr.Tick()
			run.notes = append(run.notes, tickNote{win: w, rep: rep})
			hashTick(h, rep)
			if rep.Judged {
				// A second immediate tick lets a window that both judged
				// and refilled start the next round without waiting a
				// full window — the service is count-paced, not tick-paced.
				rep = mgr.Tick()
				run.notes = append(run.notes, tickNote{win: w, rep: rep})
				hashTick(h, rep)
			}
			st := mgr.Stats()
			sc.promos = st.Promotions
			sc.urgency = st.Urgency
		}
		if stats, err := c.Stats(); err == nil {
			sc.psi = stats.MaxPSI
		}
	}
	if mgr != nil {
		run.stats = mgr.Stats()
		putU64(b[:], run.stats.Promotions)
		_, _ = h.Write(b[:8])
		putU64(b[:], run.stats.Rounds)
		_, _ = h.Write(b[:8])
		putU64(b[:], run.stats.Rejections)
		_, _ = h.Write(b[:8])
	}
	run.hash = h.Sum64()
	return run
}

// hashTick folds a tick report's outcome into the determinism hash.
func hashTick(h hash.Hash64, rep lifecycle.TickReport) {
	var b [13]byte
	flags := byte(0)
	for i, on := range []bool{rep.Trained, rep.Judged, rep.Promoted, rep.Rejected, rep.Recalibrated} {
		if on {
			flags |= 1 << i
		}
	}
	b[0] = flags
	putU32(b[1:], uint32(rep.Candidates))
	putU64(b[5:], math.Float64bits(rep.BestAUC))
	_, _ = h.Write(b[:])
}

func putU32(b []byte, v uint32) {
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
}

func putU64(b []byte, v uint64) {
	putU32(b, uint32(v))
	putU32(b[4:], uint32(v>>32))
}

func fatalRetrain(err error) {
	fmt.Fprintln(os.Stderr, "heimdall-bench retrain:", err)
	os.Exit(1)
}
