package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/feature"
	"repro/internal/iolog"
	"repro/internal/ssd"
	"repro/internal/trace"
)

// runInt8Bench is the `heimdall-bench int8` subcommand: it trains one model
// carrying both the int32 reference engine and the batched int8 engine,
// then measures the full batched admission path (scaling + forward pass +
// threshold) through each on the same eval rows — ns/op per row, allocs per
// batch, engine memory footprint, and the verdict agreement rate. It exits
// nonzero when the int8 batched path allocates or agreement falls below the
// gate, so CI can hold the line.
func runInt8Bench(args []string) {
	fs := flag.NewFlagSet("int8", flag.ExitOnError)
	seed := fs.Int64("seed", 1, "training/workload seed")
	trainDur := fs.Duration("train-dur", 4*time.Second, "training-trace duration")
	evalDur := fs.Duration("eval-dur", 3*time.Second, "eval-trace duration")
	batch := fs.Int("batch", 64, "rows per batched decide")
	iters := fs.Int("iters", 50, "timing passes over the eval set")
	gate := fs.Float64("agree-gate", 0.98, "minimum int8-vs-int32 verdict agreement")
	jsonOut := fs.Bool("json", false, "write BENCH_int8.json")
	if err := fs.Parse(args); err != nil {
		os.Exit(2)
	}

	cfg := core.DefaultConfig(*seed)
	cfg.Epochs = 10
	cfg.MaxTrainSamples = 10000
	cfg.Quantize = true
	cfg.Quantize8 = true
	tr := trace.Generate(trace.MSRStyle(*seed, *trainDur))
	log := iolog.Collect(tr, ssd.New(ssd.Samsung970Pro(), *seed))
	model, err := core.Train(log, cfg)
	if err != nil {
		fatalInt8(err)
	}

	evtr := trace.Generate(trace.MSRStyle(*seed+1, *evalDur))
	evlog := iolog.Collect(evtr, ssd.New(ssd.Samsung970Pro(), *seed+1))
	rows := feature.Extract(iolog.Reads(evlog), model.Spec())
	if len(rows) < *batch {
		fatalInt8(fmt.Errorf("eval trace produced %d rows, need at least %d", len(rows), *batch))
	}
	rows = rows[:len(rows)/(*batch)*(*batch)] // whole batches only

	m32 := model.WithPredictor(model.Quantized())
	m8 := model.WithPredictor(model.Quantized8())

	bench := func(m *core.Model) (nsPerRow float64, allocs float64, verdicts []bool) {
		scr := m.NewBatchScratch(*batch)
		verdicts = make([]bool, len(rows))
		m.AdmitBatchInto(rows[:*batch], verdicts[:*batch], scr) // warm buffers
		start := time.Now()
		for it := 0; it < *iters; it++ {
			for off := 0; off < len(rows); off += *batch {
				m.AdmitBatchInto(rows[off:off+*batch], verdicts[off:], scr)
			}
		}
		nsPerRow = float64(time.Since(start).Nanoseconds()) / float64(*iters*len(rows))
		allocs = testing.AllocsPerRun(100, func() {
			m.AdmitBatchInto(rows[:*batch], verdicts[:*batch], scr)
		})
		return nsPerRow, allocs, verdicts
	}

	ns32, allocs32, v32 := bench(m32)
	ns8, allocs8, v8 := bench(m8)
	agree := 0
	for i := range v32 {
		if v32[i] == v8[i] {
			agree++
		}
	}
	rate := float64(agree) / float64(len(rows))
	mem32 := model.Quantized().MemoryBytes()
	mem8 := model.Quantized8().MemoryBytes()

	fmt.Printf("int8 bench: %d rows, batch %d, %d passes\n", len(rows), *batch, *iters)
	fmt.Printf("  int32: %8.1f ns/row  %5.1f allocs/batch  %6d B engine\n", ns32, allocs32, mem32)
	fmt.Printf("  int8:  %8.1f ns/row  %5.1f allocs/batch  %6d B engine\n", ns8, allocs8, mem8)
	fmt.Printf("  speedup x%.2f, verdict agreement %d/%d = %.4f\n", ns32/ns8, agree, len(rows), rate)

	if *jsonOut {
		rec := struct {
			Experiment  string  `json:"experiment"`
			Rows        int     `json:"rows"`
			Batch       int     `json:"batch"`
			Iters       int     `json:"iters"`
			NsPerRow32  float64 `json:"ns_per_row_int32"`
			NsPerRow8   float64 `json:"ns_per_row_int8"`
			Speedup     float64 `json:"speedup"`
			Allocs32    float64 `json:"allocs_per_batch_int32"`
			Allocs8     float64 `json:"allocs_per_batch_int8"`
			MemBytes32  int     `json:"engine_bytes_int32"`
			MemBytes8   int     `json:"engine_bytes_int8"`
			Agreement   float64 `json:"verdict_agreement"`
			AgreeGate   float64 `json:"agree_gate"`
			ElapsedNote string  `json:"note"`
		}{
			Experiment: "int8", Rows: len(rows), Batch: *batch, Iters: *iters,
			NsPerRow32: ns32, NsPerRow8: ns8, Speedup: ns32 / ns8,
			Allocs32: allocs32, Allocs8: allocs8,
			MemBytes32: mem32, MemBytes8: mem8,
			Agreement: rate, AgreeGate: *gate,
			ElapsedNote: "full batched admission path: min-max scaling + forward pass + threshold",
		}
		data, err := json.MarshalIndent(rec, "", "  ")
		if err != nil {
			fatalInt8(err)
		}
		if err := os.WriteFile("BENCH_int8.json", append(data, '\n'), 0o644); err != nil {
			fatalInt8(err)
		}
		fmt.Println("(wrote BENCH_int8.json)")
	}

	failed := false
	if allocs8 != 0 {
		fmt.Fprintf(os.Stderr, "heimdall-bench int8: FAIL: int8 batched path allocates %.1f per batch, want 0\n", allocs8)
		failed = true
	}
	if rate < *gate {
		fmt.Fprintf(os.Stderr, "heimdall-bench int8: FAIL: verdict agreement %.4f below gate %.4f\n", rate, *gate)
		failed = true
	}
	if failed {
		os.Exit(1)
	}
}

func fatalInt8(err error) {
	fmt.Fprintln(os.Stderr, "heimdall-bench int8:", err)
	os.Exit(1)
}
