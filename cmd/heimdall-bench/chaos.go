package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/iolog"
	"repro/internal/serve"
	"repro/internal/ssd"
	"repro/internal/trace"
)

// runChaosBench is the availability soak: it trains one joint=1 model, then
// runs serve.ChaosSoak repeatedly — the same seed at two shard counts, each
// repeated -runs times — and demands every run produce the same deterministic
// key. The soak itself checks the per-request invariants (every decide
// answered, fail-open locals only inside disruptive fault windows); this
// wrapper checks the cross-run one: chaos outcomes are a pure function of the
// seed, not of scheduling, shard count, or rerun.
func runChaosBench(args []string) {
	fs := flag.NewFlagSet("chaos", flag.ExitOnError)
	requests := fs.Int("requests", 1500, "decides per soak (also the fault-axis length)")
	seed := fs.Int64("seed", 1, "fault-schedule and workload seed")
	shards := fs.Int("shards", 1, "server shard count for the first soak group")
	shardsAlt := fs.Int("shards-alt", 4, "second shard count to cross-check (0 = skip)")
	runs := fs.Int("runs", 2, "reruns per shard count")
	trainDur := fs.Duration("train-dur", 2*time.Second, "synthetic training-trace duration")
	ioTimeout := fs.Duration("io-timeout", 150*time.Millisecond, "client per-op deadline (each stalled request costs one)")
	jsonOut := fs.Bool("json", false, "write BENCH_chaos.json")
	if err := fs.Parse(args); err != nil {
		fatalChaos(err)
	}

	tr := trace.Generate(trace.MSRStyle(*seed, *trainDur))
	log := iolog.Collect(tr, ssd.New(ssd.Samsung970Pro(), *seed))
	cfg := core.DefaultConfig(*seed)
	cfg.Epochs = 10
	cfg.MaxTrainSamples = 10000
	cfg.JointSize = 1 // the soak requires per-request verdict independence
	model, err := core.Train(log, cfg)
	if err != nil {
		fatalChaos(err)
	}

	shardSet := []int{*shards}
	if *shardsAlt > 0 && *shardsAlt != *shards {
		shardSet = append(shardSet, *shardsAlt)
	}

	type chaosRun struct {
		Shards int               `json:"shards"`
		Run    int               `json:"run"`
		Key    string            `json:"key"`
		Report serve.ChaosReport `json:"report"`
	}
	var (
		all        []chaosRun
		violations int
	)
	start := time.Now()
	for _, sc := range shardSet {
		for r := 0; r < *runs; r++ {
			dir, err := os.MkdirTemp("", "chaos")
			if err != nil {
				fatalChaos(err)
			}
			rep, err := serve.ChaosSoak(model, serve.ChaosConfig{
				Requests:  *requests,
				Seed:      *seed,
				Shards:    sc,
				IOTimeout: *ioTimeout,
				Dir:       dir,
			})
			_ = os.RemoveAll(dir)
			if err != nil {
				fatalChaos(err)
			}
			violations += len(rep.Violations)
			for _, v := range rep.Violations {
				fmt.Fprintf(os.Stderr, "violation (shards=%d run=%d): %s\n", sc, r, v)
			}
			all = append(all, chaosRun{Shards: sc, Run: r, Key: rep.DeterministicKey(), Report: rep})
			fmt.Printf("shards=%d run=%d: remote=%d local=%d (blackout=%d reset=%d stall=%d truncate=%d) reconnects=%d ledger=%s\n",
				sc, r, rep.Remote, rep.Local,
				rep.LocalBlackout, rep.LocalReset, rep.LocalStall, rep.LocalTruncate,
				rep.Client.Reconnects, rep.LedgerHash)
		}
	}
	elapsed := time.Since(start)

	deterministic := true
	for _, cr := range all[1:] {
		if cr.Key != all[0].Key {
			deterministic = false
			fmt.Fprintf(os.Stderr, "key mismatch (shards=%d run=%d):\n  want %s\n  got  %s\n",
				cr.Shards, cr.Run, all[0].Key, cr.Key)
		}
	}

	fmt.Printf("\nchaos: %d requests x %d soaks in %v: deterministic=%v violations=%d\n",
		*requests, len(all), elapsed.Round(time.Millisecond), deterministic, violations)

	if *jsonOut {
		rec := struct {
			Experiment    string     `json:"experiment"`
			Requests      int        `json:"requests"`
			Seed          int64      `json:"seed"`
			ElapsedMS     float64    `json:"elapsed_ms"`
			Deterministic bool       `json:"deterministic"`
			Key           string     `json:"key"`
			Runs          []chaosRun `json:"runs"`
		}{"chaos", *requests, *seed, float64(elapsed.Microseconds()) / 1000, deterministic, all[0].Key, all}
		data, err := json.MarshalIndent(rec, "", "  ")
		if err != nil {
			fatalChaos(err)
		}
		if err := os.WriteFile("BENCH_chaos.json", append(data, '\n'), 0o644); err != nil {
			fatalChaos(err)
		}
		fmt.Println("(wrote BENCH_chaos.json)")
	}
	if !deterministic || violations > 0 {
		os.Exit(1)
	}
}

func fatalChaos(err error) {
	fmt.Fprintln(os.Stderr, "heimdall-bench chaos:", err)
	os.Exit(1)
}
