// Command heimdall-vet runs the project's custom static-analysis suite
// over the module: eight lints that enforce the determinism, seed-hygiene,
// single-writer, and hot-path invariants the compiler cannot see. Five are
// per-package and syntactic (walltime, globalrand, maporder, hotpath,
// errdrop); three ride on the module-wide call graph (hotclosure,
// ownership, taint). See internal/analysis and the "Static invariants"
// section of DESIGN.md.
//
// Usage:
//
//	heimdall-vet [-json] [-lints name,name,...] [./... | dir]
//
// With no argument (or "./..."/"." for go-vet muscle-memory) the suite
// analyzes the whole module containing the working directory. A directory
// argument analyzes the module rooted at (or above) that directory instead —
// handy for pointing it at the violation fixtures under
// internal/analysis/testdata.
//
// By default findings print as "file:line: [lint] message", sorted. -json
// switches to a machine-readable report (the schema CI archives): the
// module root, the lints that ran, and the findings array. -lints runs a
// subset of the suite by name; unknown names are a usage error.
//
// The exit status is the contract CI scripts rely on: 0 with no findings,
// 1 when there are findings, 2 on a load or usage error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// say and sayf write diagnostics to the injected streams. A write failure
// to a console pipe is unactionable here, so the discard is explicit.
func say(w io.Writer, args ...any) { _, _ = fmt.Fprintln(w, args...) }

func sayf(w io.Writer, format string, args ...any) { _, _ = fmt.Fprintf(w, format, args...) }

// jsonReport is the -json schema. Fields are stable: CI archives this
// output and the CLI tests pin it.
type jsonReport struct {
	Root     string        `json:"root"`
	Lints    []string      `json:"lints"`
	Findings []jsonFinding `json:"findings"`
	Count    int           `json:"count"`
}

type jsonFinding struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Lint    string `json:"lint"`
	Message string `json:"message"`
}

// run is main with its dependencies injected, so the CLI tests can drive
// argument parsing, output, and the exit contract in-process.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("heimdall-vet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit the machine-readable JSON report instead of text")
	lintList := fs.String("lints", "", "comma-separated subset of lints to run (default: all)")
	fs.Usage = func() {
		say(stderr, "usage: heimdall-vet [-json] [-lints name,name,...] [./... | dir]")
		say(stderr, "lints:", strings.Join(analysis.LintNames(), ", "))
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() > 1 {
		fs.Usage()
		return 2
	}

	cfg := analysis.DefaultConfig()
	if *lintList != "" {
		known := map[string]bool{}
		for _, name := range analysis.LintNames() {
			known[name] = true
		}
		for _, name := range strings.Split(*lintList, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			if !known[name] {
				sayf(stderr, "heimdall-vet: unknown lint %q (have: %s)\n", name, strings.Join(analysis.LintNames(), ", "))
				return 2
			}
			cfg.Lints = append(cfg.Lints, name)
		}
	}

	start, err := os.Getwd()
	if err != nil {
		say(stderr, "heimdall-vet:", err)
		return 2
	}
	if fs.NArg() == 1 && fs.Arg(0) != "./..." && fs.Arg(0) != "." {
		start = fs.Arg(0)
		if fi, err := os.Stat(start); err != nil || !fi.IsDir() {
			sayf(stderr, "heimdall-vet: %s is not a directory\n", fs.Arg(0))
			return 2
		}
	}
	root, err := moduleRoot(start)
	if err != nil {
		say(stderr, "heimdall-vet:", err)
		return 2
	}
	diags, err := analysis.Run(root, cfg)
	if err != nil {
		say(stderr, "heimdall-vet:", err)
		return 2
	}

	if *jsonOut {
		ran := cfg.Lints
		if len(ran) == 0 {
			ran = analysis.LintNames()
		}
		report := jsonReport{
			Root:     filepath.ToSlash(root),
			Lints:    ran,
			Findings: make([]jsonFinding, 0, len(diags)),
			Count:    len(diags),
		}
		for _, d := range diags {
			report.Findings = append(report.Findings, jsonFinding{
				File: d.File, Line: d.Line, Col: d.Col, Lint: d.Lint, Message: d.Msg,
			})
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			say(stderr, "heimdall-vet:", err)
			return 2
		}
	} else {
		for _, d := range diags {
			say(stdout, d.String())
		}
	}
	if len(diags) > 0 {
		sayf(stderr, "heimdall-vet: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}

// moduleRoot walks upward from dir to the nearest go.mod.
func moduleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}
