// Command heimdall-vet runs the project's custom static-analysis suite
// over the module: five lints (walltime, globalrand, maporder, hotpath,
// errdrop) that enforce the determinism, seed-hygiene, and hot-path
// invariants the compiler cannot see. See internal/analysis and the
// "Static invariants" section of DESIGN.md.
//
// Usage:
//
//	heimdall-vet [./... | dir]
//
// With no argument (or "./..."/"." for go-vet muscle-memory) the suite
// analyzes the whole module containing the working directory. A directory
// argument analyzes the module rooted at (or above) that directory instead —
// handy for pointing it at the violation fixtures under
// internal/analysis/testdata. Findings print as "file:line: [lint] message",
// sorted; the exit status is 1 when there are findings, 2 on a load or
// usage error.
package main

import (
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/analysis"
)

func main() {
	args := os.Args[1:]
	if len(args) > 1 {
		fmt.Fprintln(os.Stderr, "usage: heimdall-vet [./... | dir]")
		os.Exit(2)
	}
	start, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "heimdall-vet:", err)
		os.Exit(2)
	}
	if len(args) == 1 && args[0] != "./..." && args[0] != "." {
		start = args[0]
		if fi, err := os.Stat(start); err != nil || !fi.IsDir() {
			fmt.Fprintf(os.Stderr, "heimdall-vet: %s is not a directory\n", args[0])
			os.Exit(2)
		}
	}
	root, err := moduleRoot(start)
	if err != nil {
		fmt.Fprintln(os.Stderr, "heimdall-vet:", err)
		os.Exit(2)
	}
	diags, err := analysis.Run(root, analysis.DefaultConfig())
	if err != nil {
		fmt.Fprintln(os.Stderr, "heimdall-vet:", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Println(d.String())
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "heimdall-vet: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

// moduleRoot walks upward from dir to the nearest go.mod.
func moduleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}
