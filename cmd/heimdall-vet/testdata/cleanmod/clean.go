// Package cleanmod is a minimal violation-free module: the CLI tests pin
// the exit-0 contract against it.
package cleanmod

// Add is deterministic, allocation-free, and owns nothing.
func Add(a, b int) int { return a + b }
