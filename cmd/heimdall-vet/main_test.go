package main

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// vetmodDir is the violation-fixture module shared with the analysis
// package's // want tests; cleanDir is a minimal module with nothing to
// report.
var (
	vetmodDir = filepath.Join("..", "..", "internal", "analysis", "testdata", "src", "vetmod")
	cleanDir  = filepath.Join("testdata", "cleanmod")
)

func runVet(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := run(args, &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

var lineRE = regexp.MustCompile(`^[^:]+\.go:\d+: \[[a-z]+\] .+$`)

// TestTextOutput pins the text mode: sorted "file:line: [lint] message"
// lines, exit 1, and the finding count on stderr.
func TestTextOutput(t *testing.T) {
	code, out, errOut := runVet(t, vetmodDir)
	if code != 1 {
		t.Fatalf("exit = %d, want 1 (fixtures have findings); stderr: %s", code, errOut)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) == 0 {
		t.Fatal("no findings printed")
	}
	for _, l := range lines {
		if !lineRE.MatchString(l) {
			t.Errorf("line does not match file:line: [lint] message: %q", l)
		}
	}
	if !sort.StringsAreSorted(func() []string {
		keys := make([]string, len(lines))
		for i, l := range lines {
			keys[i] = l[:strings.Index(l, ":")]
		}
		return keys
	}()) {
		t.Error("findings are not sorted by file")
	}
	if !strings.Contains(errOut, "finding(s)") {
		t.Errorf("stderr missing finding count: %q", errOut)
	}
	// One pinned literal from each interprocedural lint, chain and all.
	for _, want := range []string{
		"hotclosure/hotclosure.go:30: [hotclosure] hot chain Decide → stage → growRow: append to a slice not rooted at the receiver or a parameter; growth allocates per call",
		"[ownership] field gauge.n is owned by reset,step; accessed from rogue",
		"[taint] value tainted by select nondeterminism flows into //heimdall:nountaint sink emit",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("text output missing %q", want)
		}
	}
}

// TestTextMatchesLibrary pins that the CLI is a faithful printer: its text
// output is exactly the library's diagnostics, one String() per line.
func TestTextMatchesLibrary(t *testing.T) {
	_, out, _ := runVet(t, vetmodDir)
	diags, err := analysis.Run(vetmodDir, analysis.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	var want strings.Builder
	for _, d := range diags {
		want.WriteString(d.String())
		want.WriteByte('\n')
	}
	if out != want.String() {
		t.Errorf("CLI text output diverges from library diagnostics:\n--- cli ---\n%s--- lib ---\n%s", out, want.String())
	}
}

// TestJSONOutput validates the -json schema against the fixture module.
func TestJSONOutput(t *testing.T) {
	code, out, _ := runVet(t, "-json", vetmodDir)
	if code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	var rep jsonReport
	if err := json.Unmarshal([]byte(out), &rep); err != nil {
		t.Fatalf("-json output is not valid JSON: %v", err)
	}
	if rep.Count != len(rep.Findings) || rep.Count == 0 {
		t.Errorf("count = %d, findings = %d; want equal and nonzero", rep.Count, len(rep.Findings))
	}
	if got, want := rep.Lints, analysis.LintNames(); !equalStrings(got, want) {
		t.Errorf("lints = %v, want %v", got, want)
	}
	if !strings.HasSuffix(rep.Root, "vetmod") {
		t.Errorf("root = %q, want the vetmod module root", rep.Root)
	}
	known := map[string]bool{}
	for _, name := range analysis.LintNames() {
		known[name] = true
	}
	for _, f := range rep.Findings {
		if f.File == "" || f.Line <= 0 || f.Col <= 0 || f.Message == "" {
			t.Errorf("finding with empty field: %+v", f)
		}
		if !known[f.Lint] {
			t.Errorf("finding names unknown lint %q", f.Lint)
		}
		if strings.Contains(f.File, "\\") {
			t.Errorf("file %q is not slash-separated", f.File)
		}
	}
}

// TestExitCodes pins the 0/1/2 contract.
func TestExitCodes(t *testing.T) {
	if code, out, errOut := runVet(t, cleanDir); code != 0 || out != "" {
		t.Errorf("clean module: exit = %d, stdout = %q, stderr = %q; want 0 and empty stdout", code, out, errOut)
	}
	if code, _, _ := runVet(t, vetmodDir); code != 1 {
		t.Errorf("fixture module: exit = %d, want 1", code)
	}
	if code, _, errOut := runVet(t, filepath.Join("testdata", "no-such-dir")); code != 2 || errOut == "" {
		t.Errorf("missing dir: exit = %d, want 2 with a stderr message", code)
	}
	if code, _, errOut := runVet(t, "-lints", "nosuchlint", cleanDir); code != 2 || !strings.Contains(errOut, "unknown lint") {
		t.Errorf("unknown lint: exit = %d, stderr = %q; want 2 and an unknown-lint error", code, errOut)
	}
	if code, _, _ := runVet(t, "one", "two"); code != 2 {
		t.Errorf("extra args: exit = %d, want 2", code)
	}
}

// TestLintSubset runs a single lint and requires that only its findings
// appear (and that the JSON report names exactly that lint).
func TestLintSubset(t *testing.T) {
	code, out, _ := runVet(t, "-json", "-lints", "ownership", vetmodDir)
	if code != 1 {
		t.Fatalf("exit = %d, want 1 (ownership fixtures have findings)", code)
	}
	var rep jsonReport
	if err := json.Unmarshal([]byte(out), &rep); err != nil {
		t.Fatal(err)
	}
	if !equalStrings(rep.Lints, []string{"ownership"}) {
		t.Errorf("lints = %v, want [ownership]", rep.Lints)
	}
	if rep.Count == 0 {
		t.Error("ownership subset reported no findings")
	}
	for _, f := range rep.Findings {
		if f.Lint != "ownership" {
			t.Errorf("subset run leaked finding from %q: %+v", f.Lint, f)
		}
	}
}

// TestOutputDeterministic runs both modes twice from scratch: heimdall-vet
// polices determinism, so its own output must be byte-identical.
func TestOutputDeterministic(t *testing.T) {
	for _, args := range [][]string{{vetmodDir}, {"-json", vetmodDir}} {
		_, a, _ := runVet(t, args...)
		_, b, _ := runVet(t, args...)
		if a != b {
			t.Errorf("two runs with args %v differ", args)
		}
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
