// Command replay runs one end-to-end 2-replica experiment: it generates a
// light-heavy trace pair, trains Heimdall and LinnOS per device on the first
// half, replays the second half under every policy, and prints the read
// latency comparison — a single-command version of the paper's §6.1 loop.
//
// Usage:
//
//	replay [-seed N] [-dur D] [-device 970pro|s3610|pm961] [-hetero]
//	       [-policies baseline,random,c3,hedging,linnos,heimdall]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/linnos"
	"repro/internal/policy"
	"repro/internal/replay"
	"repro/internal/ssd"
	"repro/internal/trace"
)

func main() {
	seed := flag.Int64("seed", 1, "experiment seed")
	dur := flag.Duration("dur", 10*time.Second, "trace duration (split 50:50 train/test)")
	device := flag.String("device", "970pro", "device model: 970pro, s3610, pm961")
	hetero := flag.Bool("hetero", false, "use the heterogeneous §6.2 pair (S3610 + PM961)")
	policies := flag.String("policies", "baseline,random,c3,hedging,linnos,heimdall", "comma-separated policies")
	flag.Parse()

	var devCfg ssd.Config
	switch *device {
	case "970pro":
		devCfg = ssd.Samsung970Pro()
	case "s3610":
		devCfg = ssd.IntelDCS3610()
	case "pm961":
		devCfg = ssd.SamsungPM961()
	default:
		fmt.Fprintf(os.Stderr, "unknown device %q\n", *device)
		os.Exit(2)
	}
	devices := []ssd.Config{devCfg, devCfg}
	if *hetero {
		devices = []ssd.Config{ssd.IntelDCS3610(), ssd.SamsungPM961()}
	}

	styles := trace.Styles(*seed, *dur)
	heavyCfg := styles[0]
	heavyCfg.BurstSeed = *seed + 7717
	lightCfg := heavyCfg
	lightCfg.Seed += 5
	lightCfg.MeanIOPS *= 0.85
	heavy := trace.Generate(heavyCfg)
	light := trace.Generate(lightCfg)
	heavyTrain, heavyTest := heavy.SplitHalf()
	lightTrain, lightTest := light.SplitHalf()

	fmt.Printf("devices: %s + %s\n", devices[0].Name, devices[1].Name)
	fmt.Printf("heavy: %d reqs, light: %d reqs\n\n", heavy.Len(), light.Len())

	fmt.Println("training per-device models on the first halves...")
	trainHalves := []*trace.Trace{heavyTrain, lightTrain}
	heimModels := make([]*core.Model, 2)
	linModels := make([]*linnos.Model, 2)
	for d := 0; d < 2; d++ {
		_, log := replay.CollectLog(trainHalves[d], devices[d], *seed+int64(d))
		m, err := core.Train(log, core.DefaultConfig(*seed+int64(d)))
		if err != nil {
			fmt.Fprintf(os.Stderr, "heimdall training on device %d: %v\n", d, err)
			os.Exit(1)
		}
		heimModels[d] = m
		l, err := linnos.Train(log, *seed+int64(d))
		if err != nil {
			fmt.Fprintf(os.Stderr, "linnos training on device %d: %v\n", d, err)
			os.Exit(1)
		}
		linModels[d] = l
		rep := m.Report()
		fmt.Printf("  device %d (%s): %d reads, slow fraction %.3f, %v preprocess + %v train\n",
			d, devices[d].Name, rep.Samples, rep.SlowFraction,
			rep.PreprocessTime.Round(time.Millisecond), rep.TrainTime.Round(time.Millisecond))
	}

	available := map[string]policy.Selector{
		"baseline": policy.Baseline{},
		"random":   policy.NewRandom(*seed),
		"c3":       policy.C3{},
		"ams":      policy.AMS{},
		"heron":    &policy.Heron{},
		"hedging":  policy.NewHedging(2 * time.Millisecond),
		"linnos":   &policy.LinnOS{Models: linModels},
		"heimdall": &policy.Heimdall{Models: heimModels},
	}

	fmt.Printf("\n%-10s %10s %10s %10s %10s %10s %9s %7s %11s\n",
		"policy", "avg", "p50", "p95", "p99", "p99.9", "reroutes", "hedges", "busy-dodge")
	for _, name := range strings.Split(*policies, ",") {
		sel, ok := available[strings.TrimSpace(name)]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown policy %q\n", name)
			os.Exit(2)
		}
		res := replay.Run([]*trace.Trace{heavyTest, lightTest}, replay.Options{
			Devices: devices, Seed: *seed + 999, Selector: sel,
		})
		dodge := 0.0
		if res.BusyPrimary > 0 {
			dodge = float64(res.BusyAvoided) / float64(res.BusyPrimary) * 100
		}
		fmt.Printf("%-10s %10v %10v %10v %10v %10v %9d %7d %10.1f%%\n",
			res.Policy,
			res.ReadLat.Mean.Round(time.Microsecond),
			res.ReadLat.P50.Round(time.Microsecond),
			res.ReadLat.P95.Round(time.Microsecond),
			res.ReadLat.P99.Round(time.Microsecond),
			res.ReadLat.P999.Round(time.Microsecond),
			res.Reroutes, res.Hedges, dodge)
	}
}
