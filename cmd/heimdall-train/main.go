// Command heimdall-train is the operator-facing training tool: it takes a
// block trace (CSV, as produced by tracegen -csv, or a built-in synthetic
// style), replays it against a simulated device to collect the I/O log,
// runs the full Heimdall pipeline, and writes the deployable artifacts —
// a serialized model and, optionally, the generated C source (§4.1).
//
// Usage:
//
//	heimdall-train -trace trace.csv -device 970pro -out model.bin [-cout model.c]
//	heimdall-train -style msr -dur 20s -out model.bin
//	heimdall-train -load model.bin -eval-style msr   # evaluate a saved model
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/iolog"
	"repro/internal/ssd"
	"repro/internal/trace"
)

func main() {
	tracePath := flag.String("trace", "", "CSV trace file (arrival_ns,op,offset,size)")
	style := flag.String("style", "", "synthetic style instead of -trace: msr, alibaba, tencent")
	dur := flag.Duration("dur", 15*time.Second, "synthetic trace duration")
	device := flag.String("device", "970pro", "device model: 970pro, s3610, pm961, femu")
	seed := flag.Int64("seed", 1, "training seed")
	out := flag.String("out", "", "write the serialized model here")
	cout := flag.String("cout", "", "also write generated C source here")
	joint := flag.Int("joint", 1, "joint-inference granularity P")
	load := flag.String("load", "", "load a saved model instead of training")
	evalStyle := flag.String("eval-style", "", "evaluate against a synthetic style after training/loading")
	flag.Parse()

	devCfg, err := deviceByName(*device)
	if err != nil {
		fatal(err)
	}

	var model *core.Model
	switch {
	case *load != "":
		f, err := os.Open(*load)
		if err != nil {
			fatal(err)
		}
		model, err = core.Load(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fatal(err)
		}
		fmt.Printf("loaded model: %d-deep features, joint=%d, threshold %.3f\n",
			model.Spec().Depth, model.JointSize(), model.Threshold())
	default:
		tr, err := loadTrace(*tracePath, *style, *seed, *dur)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("trace: %d requests over %v\n", tr.Len(), tr.Duration().Round(time.Millisecond))

		dev := ssd.New(devCfg, *seed)
		log := iolog.Collect(tr, dev)
		cfg := core.DefaultConfig(*seed)
		cfg.JointSize = *joint
		start := time.Now()
		model, err = core.Train(log, cfg)
		if err != nil {
			fatal(err)
		}
		rep := model.Report()
		fmt.Printf("trained in %v: %d reads, kept %d, slow fraction %.1f%%, threshold %.3f\n",
			time.Since(start).Round(time.Millisecond), rep.Samples, rep.Kept,
			rep.SlowFraction*100, model.Threshold())
	}

	if *evalStyle != "" {
		evalTr, err := loadTrace("", *evalStyle, *seed+1, *dur)
		if err != nil {
			fatal(err)
		}
		dev := ssd.New(devCfg, *seed+1)
		reads := iolog.Reads(iolog.Collect(evalTr, dev))
		rep := model.Evaluate(reads, iolog.GroundTruth(reads))
		fmt.Printf("evaluation vs simulator ground truth: ROC-AUC %.3f PR-AUC %.3f F1 %.3f FNR %.3f FPR %.3f\n",
			rep.ROCAUC, rep.PRAUC, rep.F1, rep.FNR, rep.FPR)
	}

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		if err := model.Save(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		info, _ := os.Stat(*out)
		fmt.Printf("model written to %s (%d bytes)\n", *out, info.Size())
	}
	if *cout != "" {
		f, err := os.Create(*cout)
		if err != nil {
			fatal(err)
		}
		if err := model.ExportC(f, "heimdall"); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("C source written to %s\n", *cout)
	}
}

func deviceByName(name string) (ssd.Config, error) {
	switch name {
	case "970pro":
		return ssd.Samsung970Pro(), nil
	case "s3610":
		return ssd.IntelDCS3610(), nil
	case "pm961":
		return ssd.SamsungPM961(), nil
	case "femu":
		return ssd.FEMUEmulated(), nil
	}
	return ssd.Config{}, fmt.Errorf("unknown device %q", name)
}

func loadTrace(path, style string, seed int64, dur time.Duration) (*trace.Trace, error) {
	if path != "" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer func() {
			_ = f.Close() // read-only: a close failure cannot corrupt the trace
		}()
		return trace.ReadCSV(f, path)
	}
	switch style {
	case "msr", "":
		return trace.Generate(trace.MSRStyle(seed, dur)), nil
	case "alibaba":
		return trace.Generate(trace.AlibabaStyle(seed, dur)), nil
	case "tencent":
		return trace.Generate(trace.TencentStyle(seed, dur)), nil
	}
	return nil, fmt.Errorf("unknown style %q", style)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "heimdall-train:", err)
	os.Exit(1)
}
