// Command heimdall-serve runs the online admission service: it loads a
// trained model (heimdall-train -out) — or trains one in-process from a
// synthetic style for self-contained runs — and serves admit/decline
// decisions over the binary wire protocol on TCP or a unix socket.
//
// Usage:
//
//	heimdall-serve -model model.bin -listen tcp:127.0.0.1:7710
//	heimdall-serve -style msr -dur 10s -listen unix:/tmp/heimdall.sock
//
// When training in-process the server also wires the per-shard input-drift
// detectors (PSI against the training feature distribution); `heimdall-bench
// serve -stats` then reports max_psi alongside the admission counters. A new
// model can be hot-swapped at any time with the client Swap call without
// pausing admission.
//
// With -managed the server runs the continuous-learning lifecycle
// (internal/lifecycle): live completions are harvested into per-device
// reservoirs, challenger panels retrain in the background, shadow-score
// against the champion on held-out live traffic, and auto-promote through
// the atomic hot-swap when they clear the accuracy and FNR gates. PSI
// drift alerts shorten the evaluation window. See the -managed-* flags.
//
// SIGINT/SIGTERM shut down cleanly: listeners stop, queued requests are
// answered (joint-group stragglers fail open), and the final counter
// snapshot is printed.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/feature"
	"repro/internal/iolog"
	"repro/internal/lifecycle"
	"repro/internal/serve"
	"repro/internal/ssd"
	"repro/internal/trace"
)

func main() {
	modelPath := flag.String("model", "", "serialized model from heimdall-train -out")
	style := flag.String("style", "", "train in-process from a synthetic style instead: msr, alibaba, tencent")
	dur := flag.Duration("dur", 10*time.Second, "synthetic training-trace duration")
	device := flag.String("device", "970pro", "simulated device for in-process training: 970pro, s3610, pm961, femu")
	seed := flag.Int64("seed", 1, "training seed")
	joint := flag.Int("joint", 1, "joint-inference granularity P for in-process training")
	int8Flag := flag.Bool("int8", false, "decide through the batched int8 engine (calibrated at training time, or from the model's own training data when loading -model)")
	listen := flag.String("listen", "tcp:127.0.0.1:7710", `listen address: "tcp:host:port" or "unix:/path/sock"`)
	shards := flag.Int("shards", 0, "device shards (0 = default 4)")
	queueLen := flag.Int("queue", 0, "per-shard queue bound (0 = default 256)")
	window := flag.Duration("batch-window", 0, "micro-batch gather window (0 = decide immediately)")
	maxBatch := flag.Int("max-batch", 0, "per-wakeup batch bound (0 = default 64)")
	adaptive := flag.Bool("adaptive", false, "adaptive micro-batching: widen the batch window/size under queue pressure, narrow when drained (verdicts unchanged)")
	windowMax := flag.Duration("batch-window-max", 0, "adaptive ceiling for the gather window (0 = default 8x -batch-window, or 500us)")
	adaptPeriod := flag.Int("adapt-period", 0, "decisions between adaptive controller steps (0 = default 256)")
	budget := flag.Duration("budget", 0, "queue-age deadline; older decides fail open (0 = off)")
	readTimeout := flag.Duration("read-timeout", 0, "per-connection idle read deadline; silent peers are dropped (0 = off)")
	writeTimeout := flag.Duration("write-timeout", 0, "per-response write deadline; slow peers are shed (0 = off)")
	managed := flag.Bool("managed", false, "run the continuous-learning lifecycle: harvest live completions, train challengers in the background, auto-promote when they clear the gates")
	managedInterval := flag.Duration("managed-interval", time.Second, "lifecycle tick cadence (rounds themselves are completion-count paced)")
	managedEvalEvery := flag.Int("managed-eval-every", 0, "harvested completions per retrain round at urgency 0 (0 = default 4096)")
	managedReservoir := flag.Int("managed-reservoir", 0, "per-device training reservoir size (0 = default 512)")
	managedCandidates := flag.Int("managed-candidates", 0, "cold-retrain candidates per round (0 = default 2)")
	managedWorkers := flag.Int("managed-parallel", 0, "candidate-training workers (0 = GOMAXPROCS)")
	managedRecal := flag.Bool("managed-recal", true, "re-pin decision thresholds on live tapped rows (challengers before judging, the champion on rejection rounds)")
	flag.Parse()

	var (
		model *core.Model
		ref   [][]float64
	)
	switch {
	case *modelPath != "":
		f, err := os.Open(*modelPath)
		if err != nil {
			fatal(err)
		}
		model, err = core.Load(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fatal(err)
		}
		fmt.Printf("loaded %s: %d-deep features, joint=%d, threshold %.3f\n",
			*modelPath, model.Spec().Depth, model.JointSize(), model.Threshold())
		if *int8Flag {
			// A model saved from a Quantize8 training run already carries
			// calibrated activation scales; otherwise EnableInt8 falls back
			// to analytic bounds (coarser, still correct).
			calibrated := model.Quantized8() != nil
			if err := model.EnableInt8(nil); err != nil {
				fatal(err)
			}
			if calibrated {
				fmt.Println("int8 engine active (calibrated scales from model file)")
			} else {
				fmt.Println("int8 engine active (analytic fallback scales; retrain with Quantize8 for calibrated ones)")
			}
		}
	default:
		devCfg, err := deviceByName(*device)
		if err != nil {
			fatal(err)
		}
		styleName := *style
		if styleName == "" {
			styleName = "msr"
		}
		tr, err := traceByStyle(styleName, *seed, *dur)
		if err != nil {
			fatal(err)
		}
		log := iolog.Collect(tr, ssd.New(devCfg, *seed))
		cfg := core.DefaultConfig(*seed)
		cfg.JointSize = *joint
		cfg.Quantize8 = *int8Flag
		start := time.Now()
		model, err = core.Train(log, cfg)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("trained in-process (%s, %v trace) in %v: threshold %.3f\n",
			styleName, *dur, time.Since(start).Round(time.Millisecond), model.Threshold())
		if *int8Flag {
			fmt.Println("int8 engine active (activation scales calibrated on training rows)")
		}
		// Wire the drift detectors against the training distribution, so
		// Stats.MaxPSI tracks how far live traffic has wandered from what
		// the model saw (§7's retraining signal).
		ref = feature.Extract(iolog.Reads(log), model.Spec())
	}

	scfg := serve.Config{
		Shards:         *shards,
		QueueLen:       *queueLen,
		BatchWindow:    *window,
		MaxBatch:       *maxBatch,
		AdaptiveBatch:  *adaptive,
		BatchWindowMax: *windowMax,
		AdaptPeriod:    *adaptPeriod,
		Budget:         *budget,
		ReadTimeout:    *readTimeout,
		WriteTimeout:   *writeTimeout,
		DriftRef:       ref,
	}
	var mgr *lifecycle.Manager
	if *managed {
		train := core.DefaultConfig(*seed)
		// Harvested samples carry latency, queue depth, and size but only
		// reconstructed arrivals, so live retraining labels with the
		// per-size-class latency knee instead of period search.
		train.Labeling = core.LabelCutoffSize
		train.SearchThresholds = false
		train.Quantize8 = *int8Flag
		var err error
		mgr, err = lifecycle.New(lifecycle.Config{
			Seed:                *seed,
			Train:               train,
			ReservoirPerDevice:  *managedReservoir,
			EvalEvery:           *managedEvalEvery,
			Candidates:          *managedCandidates,
			Workers:             *managedWorkers,
			OnlineRecalibration: *managedRecal,
		}, model, nil)
		if err != nil {
			fatal(err)
		}
		scfg.Completions = mgr.Harvester()
		scfg.Decisions = mgr.Harvester()
		scfg.OnDrift = mgr.DriftAlert
	}

	srv := serve.NewServer(model, scfg)
	l, err := serve.Listen(*listen)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("serving on %s\n", *listen)

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	done := make(chan error, 1)
	go func() { done <- srv.Serve(l) }()

	tickerDone := make(chan struct{})
	if mgr != nil {
		// Promotions hot-swap straight into the running server.
		mgr.Retarget(srv)
		ticker := time.NewTicker(*managedInterval)
		go func() {
			defer close(tickerDone)
			for {
				select {
				case <-ticker.C:
					logTick(mgr.Tick())
				case <-tickerDone:
					return
				}
			}
		}()
		fmt.Printf("lifecycle: managed mode on (tick %v)\n", *managedInterval)
	}

	select {
	case sig := <-sigs:
		fmt.Printf("%v: shutting down\n", sig)
		if mgr != nil {
			tickerDone <- struct{}{}
		}
		if err := srv.Close(); err != nil {
			fatal(err)
		}
		if err := <-done; err != nil {
			fatal(err)
		}
	case err := <-done:
		if err != nil {
			fatal(err)
		}
	}
	fmt.Printf("final: %s\n", srv.Stats())
	if mgr != nil {
		st := mgr.Stats()
		fmt.Printf("lifecycle: harvested %d, rounds %d, promotions %d, rejections %d, recalibrations %d, model v%d, urgency %d\n",
			st.Harvested, st.Rounds, st.Promotions, st.Rejections, st.Recalibrations, st.Version, st.Urgency)
	}
}

// logTick prints the lifecycle events worth a log line; quiet ticks (the
// vast majority) print nothing.
func logTick(rep lifecycle.TickReport) {
	switch {
	case rep.Trained:
		fmt.Printf("lifecycle: trained %d candidates, best holdout AUC %.3f\n", rep.Candidates, rep.BestAUC)
	case rep.Promoted:
		fmt.Printf("lifecycle: promoted v%d (AUC %.3f vs %.3f, FNR %.3f vs %.3f)\n",
			rep.Version, rep.ChallengerAUC, rep.ChampionAUC, rep.ChallengerFNR, rep.ChampionFNR)
	case rep.Rejected:
		extra := ""
		if rep.Recalibrated {
			extra = fmt.Sprintf("; champion recalibrated to v%d", rep.Version)
		}
		fmt.Printf("lifecycle: challenger rejected — %s%s\n", rep.Reason, extra)
	}
}

func deviceByName(name string) (ssd.Config, error) {
	switch name {
	case "970pro":
		return ssd.Samsung970Pro(), nil
	case "s3610":
		return ssd.IntelDCS3610(), nil
	case "pm961":
		return ssd.SamsungPM961(), nil
	case "femu":
		return ssd.FEMUEmulated(), nil
	}
	return ssd.Config{}, fmt.Errorf("unknown device %q", name)
}

func traceByStyle(style string, seed int64, dur time.Duration) (*trace.Trace, error) {
	switch style {
	case "msr":
		return trace.Generate(trace.MSRStyle(seed, dur)), nil
	case "alibaba":
		return trace.Generate(trace.AlibabaStyle(seed, dur)), nil
	case "tencent":
		return trace.Generate(trace.TencentStyle(seed, dur)), nil
	}
	return nil, fmt.Errorf("unknown style %q", style)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "heimdall-serve:", err)
	os.Exit(1)
}
