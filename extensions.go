package heimdall

// Façade exports for the deployment and long-run extensions: model
// serialization, C code generation, inaccuracy masking, dynamic joint-size
// control, drift detection, fault injection, and guarded degraded-mode
// admission.

import (
	"io"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/drift"
	"repro/internal/fault"
	"repro/internal/policy"
)

// LoadModel deserializes a model written with (*Model).Save.
func LoadModel(r io.Reader) (*Model, error) { return core.Load(r) }

// MaskedHeimdallPolicy wraps per-replica models with inaccuracy masking:
// decisions inside the uncertainty band additionally arm a hedge (the OM
// pipeline stage). Zero band/hedge use the defaults (0.1, 2ms).
func MaskedHeimdallPolicy(models []*Model, band float64, hedge time.Duration) Selector {
	return &policy.MaskedHeimdall{Models: models, Band: band, HedgeAfter: hedge}
}

// JointController picks the joint-inference granularity for an observed I/O
// rate (§4.2's dynamic adjustment).
type JointController = core.JointController

// NewJointController builds a controller from measured per-inference costs
// (joint size -> ns per inference).
func NewJointController(costNs map[int]float64, targetUtil float64) *JointController {
	return core.NewJointController(costNs, targetUtil)
}

// InputDriftDetector flags feature-distribution shift (PSI) without needing
// labels — the §7 retraining trigger that works with request logging off.
type InputDriftDetector = drift.InputDetector

// NewInputDriftDetector builds a detector from the training feature matrix.
func NewInputDriftDetector(trainRows [][]float64, bins int) *InputDriftDetector {
	return drift.NewInputDetector(trainRows, bins)
}

// RetrainStrategy decides when a long deployment retrains.
type RetrainStrategy = drift.Strategy

// Retraining strategies for long deployments (§7, §8).
func RetrainNever() RetrainStrategy             { return drift.Never{} }
func RetrainPeriodic(every int) RetrainStrategy { return drift.Periodic{Every: every} }
func RetrainOnAccuracy(below float64) RetrainStrategy {
	return drift.OnAccuracy{Below: below}
}
func RetrainOnInputDrift() RetrainStrategy { return drift.OnInputDrift{} }

// ---- Fault injection & degraded mode ----

// FaultSchedule is a deterministic schedule of device fault windows
// (brownouts, transient read errors, offline periods). Attach schedules to a
// replay via ReplayOptions.Faults; combine with NewFaultInjector to wrap a
// standalone device.
type FaultSchedule = fault.Schedule

// NewFaultSchedule starts an empty schedule; chain Brownout, ReadErrors, and
// Offline to populate it.
func NewFaultSchedule() *FaultSchedule { return fault.NewSchedule() }

// FaultInjector wraps a Device and applies a FaultSchedule to its I/O.
type FaultInjector = fault.Injector

// NewFaultInjector wraps dev with the schedule; the injector draws read-error
// coin flips from its own seeded stream, so an empty schedule reproduces the
// bare device bit-for-bit.
func NewFaultInjector(dev *Device, sched *FaultSchedule, seed int64) *FaultInjector {
	return fault.NewInjector(dev, sched, seed)
}

// Fault errors surfaced by an Injector.
var (
	ErrDeviceOffline = fault.ErrOffline
	ErrReadFailed    = fault.ErrReadFailed
)

// GuardedPolicy is a circuit breaker around any Selector: it watches
// windowed decline rate, latency regret, and (optionally) input drift per
// primary, trips to a fallback heuristic when the inner policy misbehaves,
// and probes its way back through a half-open state.
type GuardedPolicy = policy.Guarded

// BreakerState is the circuit state of one primary's guard.
type BreakerState = policy.BreakerState

// Circuit breaker states.
const (
	BreakerClosed   = policy.BreakerClosed
	BreakerOpen     = policy.BreakerOpen
	BreakerHalfOpen = policy.BreakerHalfOpen
)

// BreakerTransition is one logged state change of a guarded policy.
type BreakerTransition = policy.BreakerTransition

// GuardPolicy wraps inner with a circuit breaker; a nil fallback uses 2ms
// hedging, which bounds tail latency no matter which replica is faulty.
func GuardPolicy(inner, fallback Selector) *GuardedPolicy {
	return policy.NewGuarded(inner, fallback)
}

// PolicyView is the per-replica state a Selector sees at decision time.
type PolicyView = policy.View

// GuardObservation converts a routing decision's view into a feature row for
// a GuardedPolicy's input-drift detector.
func GuardObservation(primary int, views []PolicyView) []float64 {
	return policy.GuardObservation(primary, views)
}

// OSDFailure schedules one OSD outage window in a cluster run; set
// ClusterConfig.Failures to enable degraded-mode routing.
type OSDFailure = cluster.OSDFailure
