package heimdall

// Façade exports for the deployment and long-run extensions: model
// serialization, C code generation, inaccuracy masking, dynamic joint-size
// control, and drift detection.

import (
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/drift"
	"repro/internal/policy"
)

// LoadModel deserializes a model written with (*Model).Save.
func LoadModel(r io.Reader) (*Model, error) { return core.Load(r) }

// MaskedHeimdallPolicy wraps per-replica models with inaccuracy masking:
// decisions inside the uncertainty band additionally arm a hedge (the OM
// pipeline stage). Zero band/hedge use the defaults (0.1, 2ms).
func MaskedHeimdallPolicy(models []*Model, band float64, hedge time.Duration) Selector {
	return &policy.MaskedHeimdall{Models: models, Band: band, HedgeAfter: hedge}
}

// JointController picks the joint-inference granularity for an observed I/O
// rate (§4.2's dynamic adjustment).
type JointController = core.JointController

// NewJointController builds a controller from measured per-inference costs
// (joint size -> ns per inference).
func NewJointController(costNs map[int]float64, targetUtil float64) *JointController {
	return core.NewJointController(costNs, targetUtil)
}

// InputDriftDetector flags feature-distribution shift (PSI) without needing
// labels — the §7 retraining trigger that works with request logging off.
type InputDriftDetector = drift.InputDetector

// NewInputDriftDetector builds a detector from the training feature matrix.
func NewInputDriftDetector(trainRows [][]float64, bins int) *InputDriftDetector {
	return drift.NewInputDetector(trainRows, bins)
}

// RetrainStrategy decides when a long deployment retrains.
type RetrainStrategy = drift.Strategy

// Retraining strategies for long deployments (§7, §8).
func RetrainNever() RetrainStrategy             { return drift.Never{} }
func RetrainPeriodic(every int) RetrainStrategy { return drift.Periodic{Every: every} }
func RetrainOnAccuracy(below float64) RetrainStrategy {
	return drift.OnAccuracy{Below: below}
}
func RetrainOnInputDrift() RetrainStrategy { return drift.OnInputDrift{} }
