// Chaos: the serving layer's availability contract on the public API. A
// resilient client walks the full fail-open arc — remote verdicts while the
// server is up, deadline-bounded local admits while it is down, an automatic
// reconnect when it returns — and then a seeded chaos soak drives the whole
// client/proxy/server loop through blackouts, connection resets, stalls,
// mid-frame truncations, and delays, twice, proving the outcomes are a pure
// function of the seed.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	heimdall "repro"
)

func main() {
	seed := int64(29)

	// A quick joint=1 model; the soak needs per-request verdict independence.
	fmt.Println("training a small admission model...")
	tr := heimdall.Generate(heimdall.MSRStyle(seed, 3*time.Second))
	iolog := heimdall.Collect(tr, heimdall.NewDevice(heimdall.Samsung970Pro(), seed))
	cfg := heimdall.DefaultConfig(seed)
	cfg.Epochs = 10
	cfg.MaxTrainSamples = 10000
	cfg.JointSize = 1
	model, err := heimdall.Train(iolog, cfg)
	if err != nil {
		log.Fatal(err)
	}

	dir, err := os.MkdirTemp("", "chaos-example")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	addr := "unix:" + filepath.Join(dir, "admit.sock")

	// Part 1 — the fail-open arc. BackoffBase -1 disables the wall-clock
	// redial gate so every decide may retry the dial immediately.
	ccfg := heimdall.ResilientConfig{
		DialTimeout: 250 * time.Millisecond,
		IOTimeout:   150 * time.Millisecond,
		BackoffBase: -1,
	}
	start := func() (*heimdall.Server, chan error) {
		srv := heimdall.NewServer(model, heimdall.ServeConfig{})
		l, err := heimdall.ListenAdmission(addr)
		if err != nil {
			log.Fatal(err)
		}
		done := make(chan error, 1)
		go func() { done <- srv.Serve(l) }()
		return srv, done
	}
	stop := func(srv *heimdall.Server, done chan error) {
		if err := srv.Close(); err != nil {
			log.Fatal(err)
		}
		if err := <-done; err != nil {
			log.Fatal(err)
		}
	}

	srv, done := start()
	rc := heimdall.DialAdmissionResilient(addr, ccfg)
	v := rc.Decide(0, 3, 4096)
	fmt.Printf("server up:   admit=%v local=%v\n", v.Admit, v.Flags&heimdall.FlagLocal != 0)
	stop(srv, done)
	v = rc.Decide(0, 3, 4096)
	fmt.Printf("server down: admit=%v local=%v  (fail-open: a down predictor admits)\n",
		v.Admit, v.Flags&heimdall.FlagLocal != 0)
	srv, done = start()
	v = rc.Decide(0, 3, 4096)
	c := rc.Counters()
	fmt.Printf("server back: admit=%v local=%v  (reconnects=%d, locals=%d)\n\n",
		v.Admit, v.Flags&heimdall.FlagLocal != 0, c.Reconnects, c.LocalVerdicts)
	if err := rc.Close(); err != nil {
		log.Fatal(err)
	}
	stop(srv, done)

	// Part 2 — the chaos soak, twice with the same seed. Every request is
	// answered; locals appear exactly inside disruptive fault windows; the
	// ledger hash (verdicts in request order) matches run to run.
	fmt.Println("chaos soak: 600 requests through a seeded fault schedule, twice...")
	var keys [2]string
	for i := range keys {
		sdir, err := os.MkdirTemp("", "chaos-soak")
		if err != nil {
			log.Fatal(err)
		}
		rep, err := heimdall.RunChaosSoak(model, heimdall.ServeChaosConfig{
			Requests: 600,
			Seed:     seed,
			Shards:   1 + 3*i, // 1 then 4: shard count must not change outcomes
			Dir:      sdir,
		})
		os.RemoveAll(sdir)
		if err != nil {
			log.Fatal(err)
		}
		if len(rep.Violations) > 0 {
			log.Fatalf("availability violations: %v", rep.Violations)
		}
		keys[i] = rep.DeterministicKey()
		fmt.Printf("  run %d (shards=%d): remote=%d local=%d (blackout=%d reset=%d stall=%d truncate=%d) ledger=%s\n",
			i+1, 1+3*i, rep.Remote, rep.Local,
			rep.LocalBlackout, rep.LocalReset, rep.LocalStall, rep.LocalTruncate,
			rep.LedgerHash)
	}
	if keys[0] != keys[1] {
		log.Fatalf("chaos diverged across shard counts:\n%s\n%s", keys[0], keys[1])
	}
	fmt.Println("\nexpected shape: zero violations, and byte-identical ledgers and")
	fmt.Println("counters at 1 and 4 shards — chaos outcomes are a pure function")
	fmt.Println("of the seed, so an availability regression is a test diff, not a flake.")
}
