// Replication: the paper's §6.1 scenario end-to-end on the public API — a
// 2-way replicated flash pair serving co-located workloads, comparing
// Heimdall against the baseline, random selection, C3, hedging, and LinnOS.
package main

import (
	"fmt"
	"log"
	"time"

	heimdall "repro"
)

func main() {
	const dur = 8 * time.Second
	seed := int64(11)

	// Two co-located workloads that burst in phase: a heavy stream on
	// device 0 and a slightly lighter one on device 1.
	heavyCfg := heimdall.MSRStyle(seed, dur)
	heavyCfg.BurstSeed = seed + 100
	lightCfg := heavyCfg
	lightCfg.Seed += 5
	lightCfg.MeanIOPS *= 0.85

	heavy := heimdall.Generate(heavyCfg)
	light := heimdall.Generate(lightCfg)
	heavyTrain, heavyTest := heavy.SplitHalf()
	lightTrain, lightTest := light.SplitHalf()
	devices := []heimdall.DeviceConfig{heimdall.Samsung970Pro(), heimdall.Samsung970Pro()}

	// Train one Heimdall model and one LinnOS model per device on that
	// device's own training half (the logging phase).
	fmt.Println("training per-device models...")
	trainHalves := []*heimdall.Trace{heavyTrain, lightTrain}
	heimModels := make([]*heimdall.Model, 2)
	linModels := make([]*heimdall.LinnOSModel, 2)
	for d := range devices {
		dev := heimdall.NewDevice(devices[d], seed+int64(d))
		iolog := heimdall.Collect(trainHalves[d], dev)
		m, err := heimdall.Train(iolog, heimdall.DefaultConfig(seed+int64(d)))
		if err != nil {
			log.Fatalf("heimdall device %d: %v", d, err)
		}
		heimModels[d] = m
		l, err := heimdall.TrainLinnOS(iolog, seed+int64(d))
		if err != nil {
			log.Fatalf("linnos device %d: %v", d, err)
		}
		linModels[d] = l
	}

	// Replay the unseen halves under each policy.
	policies := []heimdall.Selector{
		heimdall.BaselinePolicy(),
		heimdall.RandomPolicy(seed),
		heimdall.C3Policy(),
		heimdall.HedgingPolicy(2 * time.Millisecond),
		heimdall.LinnOSPolicy(linModels, 0),
		heimdall.HeimdallPolicy(heimModels),
	}
	fmt.Printf("\n%-10s %10s %10s %10s %10s %9s\n", "policy", "avg", "p95", "p99", "p99.9", "reroutes")
	for _, pol := range policies {
		res := heimdall.Replay([]*heimdall.Trace{heavyTest, lightTest}, heimdall.ReplayOptions{
			Devices: devices, Seed: seed + 999, Selector: pol,
		})
		fmt.Printf("%-10s %10v %10v %10v %10v %9d\n",
			res.Policy,
			res.ReadLat.Mean.Round(time.Microsecond),
			res.ReadLat.P95.Round(time.Microsecond),
			res.ReadLat.P99.Round(time.Microsecond),
			res.ReadLat.P999.Round(time.Microsecond),
			res.Reroutes)
	}
	fmt.Println("\nexpected shape: heimdall posts the lowest average with far fewer")
	fmt.Println("reroutes than the blind balancers; hedging pays a large average cost.")
}
