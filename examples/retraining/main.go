// Retraining: the §7 long-deployment scenario — a drifting write-heavy
// workload erodes a train-once model's accuracy over time; an
// accuracy-monitored retraining policy (retrain on the last window when
// windowed accuracy drops below 80%) holds it up.
package main

import (
	"fmt"
	"log"
	"strings"
	"time"

	heimdall "repro"
)

func main() {
	const windows = 20
	const window = 4 * time.Second
	seed := int64(5)

	// A Tencent-style workload (writes ~2x reads -> frequent GC) whose mix
	// drifts over time.
	gen := heimdall.TencentStyle(seed, window*(windows+1))
	gen.DriftPeriod = window * (windows + 1) / 3
	long := heimdall.Generate(gen)
	dev := heimdall.NewDevice(heimdall.Samsung970Pro(), seed)
	iolog := heimdall.Collect(long, dev)
	fmt.Printf("long run: %d I/Os across %d monitoring windows\n\n", len(iolog), windows)

	// Chop the continuous log into monitoring windows.
	wins := make([][]heimdall.Record, 0, windows+1)
	start := 0
	for w := 0; w <= windows; w++ {
		end := start
		limit := int64(w+1) * int64(window)
		for end < len(iolog) && iolog[end].Arrival < limit {
			end++
		}
		wins = append(wins, iolog[start:end])
		start = end
	}

	cfg := heimdall.DefaultConfig(seed)
	cfg.Epochs = 12
	cfg.MaxTrainSamples = 20000

	for _, retraining := range []bool{false, true} {
		model, err := heimdall.Train(wins[0], cfg)
		if err != nil {
			log.Fatalf("initial training: %v", err)
		}
		// The monitor tracks windowed ROC-AUC; on the simulated substrate the
		// model holds up well, so this demo raises the trigger above the
		// paper's 0.80 to make retraining visible on dips.
		pol := heimdall.DefaultRetrainPolicy()
		pol.Threshold = 0.92
		monitor := heimdall.NewMonitor(pol)
		name := "train-once"
		if retraining {
			name = "retrain<92%"
		}
		fmt.Printf("%s:\n", name)
		retrains := 0
		for w := 1; w <= windows; w++ {
			reads := heimdall.Reads(wins[w])
			if len(reads) == 0 {
				continue
			}
			acc := model.WindowAccuracy(reads, heimdall.GroundTruth(reads))
			mark := ""
			if retraining && monitor.ShouldRetrain(int64(w)*int64(time.Hour), acc) {
				if m2, err := model.Retrain(wins[w]); err == nil {
					model = m2
					retrains++
					mark = "  <- retrained"
				}
			}
			bar := strings.Repeat("#", int(acc*40))
			fmt.Printf("  w%02d %5.1f%% %-40s%s\n", w, acc*100, bar, mark)
		}
		fmt.Printf("  (%d retrains)\n\n", retrains)
	}
	fmt.Println("expected shape: windowed accuracy dips as the workload drifts;")
	fmt.Println("the monitored policy retrains on the freshest window at each dip.")
	fmt.Println("(on this simulated substrate the model is robust — see EXPERIMENTS.md Fig 17.)")
}
