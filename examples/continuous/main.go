// Continuous learning: the champion/challenger lifecycle end to end —
// train a champion, stand it up behind the wire protocol with the
// lifecycle manager harvesting live completions, shift the workload, and
// watch the service train challenger panels in the background,
// shadow-score them on held-out live traffic, and hot-swap a winner into
// the running server without pausing admission (§7's retraining loop run
// continuously instead of on a schedule).
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	heimdall "repro"
)

func main() {
	seed := int64(21)
	const window = 3 * time.Second

	// Train the champion on a Tencent-style window and keep its feature
	// rows as the drift reference.
	fmt.Println("training the champion on a Tencent-style window...")
	trainTrace := heimdall.Generate(heimdall.TencentStyle(seed, window))
	trainLog := heimdall.Collect(trainTrace, heimdall.NewDevice(heimdall.Samsung970Pro(), seed))
	cfg := heimdall.DefaultConfig(seed)
	cfg.Epochs = 8
	cfg.MaxTrainSamples = 8000
	champion, err := heimdall.Train(trainLog, cfg)
	if err != nil {
		log.Fatalf("training: %v", err)
	}
	ref := heimdall.ExtractFeatures(heimdall.Reads(trainLog), champion)

	// The lifecycle manager: harvested completions land in per-device
	// reservoirs, every 4th in a held-out ring the challengers are judged
	// on, and a shadow tap samples decide-time rows for recalibration.
	train := heimdall.DefaultConfig(seed)
	train.SearchThresholds = false
	train.Epochs = 8
	mgr, err := heimdall.NewLifecycle(heimdall.LifecycleConfig{
		Seed:                seed,
		Train:               train,
		ReservoirPerDevice:  1024,
		EvalEvery:           6000,
		MinTrain:            600,
		MinHoldout:          48,
		Candidates:          2,
		WarmEpochs:          2,
		OnlineRecalibration: true,
		TapEvery:            2,
		TapPerDevice:        256,
	}, champion, nil)
	if err != nil {
		log.Fatalf("lifecycle: %v", err)
	}

	// Serve with the manager's hooks wired in: the harvester consumes
	// completions and tapped decisions, drift alerts raise retrain urgency.
	srv := heimdall.NewServer(champion, heimdall.ServeConfig{
		DriftRef:    ref,
		Completions: mgr.Harvester(),
		Decisions:   mgr.Harvester(),
		OnDrift:     mgr.DriftAlert,
	})
	mgr.Retarget(srv) // promotions hot-swap straight into the server
	tmp, err := os.MkdirTemp("", "heimdall-continuous")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(tmp)
	addr := "unix:" + filepath.Join(tmp, "admit.sock")
	l, err := heimdall.ListenAdmission(addr)
	if err != nil {
		log.Fatal(err)
	}
	go func() {
		if err := srv.Serve(l); err != nil {
			log.Fatal(err)
		}
	}()
	fmt.Printf("serving on %s (managed)\n\n", addr)

	client, err := heimdall.DialAdmission(addr)
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()

	// Phase 1: in-distribution traffic. The manager harvests but has no
	// reason to move — the champion was trained on this world.
	fmt.Println("phase 1: in-distribution (Tencent-style) traffic")
	drive(client, mgr, heimdall.Generate(heimdall.TencentStyle(seed+1, window)), seed+1)

	// Phase 2: the workload shifts to an MSR-style read-mostly mix. PSI
	// climbs, urgency shortens the evaluation window, challengers train on
	// the harvested reservoir, and one clears the gates.
	fmt.Println("phase 2: regime shift (MSR-style) traffic")
	for i := int64(0); i < 3; i++ {
		drive(client, mgr, heimdall.Generate(heimdall.MSRStyle(seed+2+i, window)), seed+2+i)
	}

	v, err := client.Decide(7, 0, 8192)
	if err != nil {
		log.Fatal(err)
	}
	st := mgr.Stats()
	fmt.Printf("\nlifecycle: harvested %d, rounds %d, promotions %d, rejections %d, recalibrations %d\n",
		st.Harvested, st.Rounds, st.Promotions, st.Rejections, st.Recalibrations)
	fmt.Printf("now serving model v%d (verdict echoed v%d)\n", st.Version, v.ModelVersion)
	if err := srv.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("final: %s\n", srv.Stats())
}

// drive replays a trace in shadow mode — every read asks for a verdict,
// runs on the simulated SSD regardless, and reports its completion back —
// ticking the lifecycle at deterministic points instead of on a clock.
func drive(client *heimdall.ServeClient, mgr *heimdall.LifecycleManager, tr *heimdall.Trace, seed int64) {
	dev := heimdall.NewDevice(heimdall.Samsung970Pro(), seed)
	queue, asked, admitted := 0, 0, 0
	for _, req := range tr.Reqs {
		if req.Op == heimdall.OpRead {
			v, err := client.Decide(7, queue, req.Size)
			if err != nil {
				log.Fatalf("decide: %v", err)
			}
			asked++
			if v.Admit {
				admitted++
			}
		}
		r := dev.Submit(req.Arrival, req.Op, req.Size)
		queue = r.QueueLen
		if req.Op == heimdall.OpRead {
			if err := client.Complete(7, uint64(r.Latency(req.Arrival)), r.QueueLen, req.Size); err != nil {
				log.Fatalf("complete: %v", err)
			}
			if asked%2000 == 0 {
				report(mgr.Tick())
			}
		}
	}
	report(mgr.Tick())
	fmt.Printf("  drove %d reads, %d admitted\n", asked, admitted)
}

// report prints the lifecycle events worth a line; quiet ticks say nothing.
func report(rep heimdall.LifecycleTick) {
	switch {
	case rep.Trained:
		fmt.Printf("  lifecycle: trained %d candidates, best holdout AUC %.3f\n", rep.Candidates, rep.BestAUC)
	case rep.Promoted:
		fmt.Printf("  lifecycle: PROMOTED v%d (AUC %.3f vs %.3f, FNR %.3f vs %.3f)\n",
			rep.Version, rep.ChallengerAUC, rep.ChampionAUC, rep.ChallengerFNR, rep.ChampionFNR)
	case rep.Rejected:
		fmt.Printf("  lifecycle: challenger rejected — %s\n", rep.Reason)
	}
}
