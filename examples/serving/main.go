// Serving: the online admission loop end to end — train a model, stand it
// up behind the wire protocol on a unix socket, drive live traffic through
// a simulated SSD, watch the per-shard drift detectors flag a workload
// shift, retrain on the fresh window, and hot-swap the new model over the
// wire without pausing admission.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	heimdall "repro"
)

func main() {
	seed := int64(11)
	const window = 4 * time.Second

	// Train on an MSR-style read-mostly window; keep the feature rows as the
	// drift reference so the server can score live traffic against the
	// distribution the model actually saw.
	fmt.Println("training on an MSR-style window...")
	trainTrace := heimdall.Generate(heimdall.MSRStyle(seed, window))
	trainLog := heimdall.Collect(trainTrace, heimdall.NewDevice(heimdall.Samsung970Pro(), seed))
	cfg := heimdall.DefaultConfig(seed)
	cfg.Epochs = 10
	cfg.MaxTrainSamples = 10000
	model, err := heimdall.Train(trainLog, cfg)
	if err != nil {
		log.Fatalf("training: %v", err)
	}
	ref := heimdall.ExtractFeatures(heimdall.Reads(trainLog), model)

	// Serve it. The config zero value gives 4 shards and a 256-deep queue
	// per shard; BatchWindow > 0 would gather micro-batches before deciding.
	srv := heimdall.NewServer(model, heimdall.ServeConfig{DriftRef: ref})
	tmp, err := os.MkdirTemp("", "heimdall-serving")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(tmp)
	addr := "unix:" + filepath.Join(tmp, "admit.sock")
	l, err := heimdall.ListenAdmission(addr)
	if err != nil {
		log.Fatal(err)
	}
	go func() {
		if err := srv.Serve(l); err != nil {
			log.Fatal(err)
		}
	}()
	fmt.Printf("serving on %s\n\n", addr)

	client, err := heimdall.DialAdmission(addr)
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()

	// Phase 1: live traffic from the training distribution, driven in shadow
	// mode — verdicts are recorded but every read still runs on the
	// simulated device, so the server's feature trackers (and the drift
	// detectors behind them) see the true device history.
	liveTrace := heimdall.Generate(heimdall.MSRStyle(seed+1, window))
	drive(client, liveTrace, seed+1)
	s, err := client.Stats()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("in-distribution phase: %s\n", s)
	basePSI := s.MaxPSI

	// Phase 2: the workload shifts to a Tencent-style write-heavy mix —
	// different sizes, deeper queues, GC-driven latency spikes. The model
	// still answers, but the PSI against the training reference climbs.
	driftTrace := heimdall.Generate(heimdall.TencentStyle(seed+2, window))
	driftDev := heimdall.NewDevice(heimdall.Samsung970Pro(), seed+2)
	driftLog := heimdall.Collect(driftTrace, driftDev) // fresh window, kept for retraining
	drive(client, driftTrace, seed+2)
	s, err = client.Stats()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after workload shift:  %s\n", s)
	fmt.Printf("  -> max per-shard PSI %.2f -> %.2f (input drift; §7's retraining signal)\n\n", basePSI, s.MaxPSI)

	// Retrain on the fresh window and publish over the wire. Swap is atomic:
	// in-flight decides finish on the old model, the next batch sees the new
	// one, and every verdict carries the version that produced it.
	fmt.Println("retraining on the fresh window and hot-swapping...")
	m2, err := model.Retrain(driftLog)
	if err != nil {
		log.Fatalf("retraining: %v", err)
	}
	vers, err := client.Swap(m2)
	if err != nil {
		log.Fatalf("swap: %v", err)
	}
	v, err := client.Decide(0, 0, 8192)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("now serving model version %d (verdict echoed v%d, admit=%v)\n", vers, v.ModelVersion, v.Admit)

	if err := srv.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfinal: %s\n", srv.Stats())
}

// drive replays a trace against the admission service in shadow mode: every
// request asks for a verdict and then runs on the simulated SSD regardless,
// with its completion reported back to the server's feature trackers.
func drive(client *heimdall.ServeClient, tr *heimdall.Trace, seed int64) {
	dev := heimdall.NewDevice(heimdall.Samsung970Pro(), seed)
	queue := 0
	asked, admitted := 0, 0
	for _, req := range tr.Reqs {
		if req.Op == heimdall.OpRead {
			v, err := client.Decide(7, queue, req.Size)
			if err != nil {
				log.Fatalf("decide: %v", err)
			}
			asked++
			if v.Admit {
				admitted++
			}
		}
		r := dev.Submit(req.Arrival, req.Op, req.Size)
		queue = r.QueueLen
		if req.Op == heimdall.OpRead {
			if err := client.Complete(7, uint64(r.Latency(req.Arrival)), r.QueueLen, req.Size); err != nil {
				log.Fatalf("complete: %v", err)
			}
		}
	}
	fmt.Printf("  drove %d reads, %d admitted\n", asked, admitted)
}
