// Faulttolerance: fault injection and guarded degraded-mode admission on the
// public API. A mid-trace brownout slows the primary replica 8x; reads are
// armed with a 2ms timeout that retries on the peer, and a circuit breaker
// around the Heimdall policy trips to hedging while the model's world is
// broken, then probes its way back once the device recovers.
package main

import (
	"fmt"
	"log"
	"time"

	heimdall "repro"
)

func main() {
	const dur = 8 * time.Second
	seed := int64(17)

	// Co-located workloads on a replicated NVMe pair, as in §6.1.
	heavyCfg := heimdall.MSRStyle(seed, dur)
	heavyCfg.BurstSeed = seed + 100
	lightCfg := heavyCfg
	lightCfg.Seed += 5
	lightCfg.MeanIOPS *= 0.85
	heavyTrain, heavyTest := heimdall.Generate(heavyCfg).SplitHalf()
	lightTrain, lightTest := heimdall.Generate(lightCfg).SplitHalf()
	devices := []heimdall.DeviceConfig{heimdall.Samsung970Pro(), heimdall.Samsung970Pro()}

	fmt.Println("training per-device models...")
	trainHalves := []*heimdall.Trace{heavyTrain, lightTrain}
	models := make([]*heimdall.Model, 2)
	for d := range devices {
		dev := heimdall.NewDevice(devices[d], seed+int64(d))
		iolog := heimdall.Collect(trainHalves[d], dev)
		m, err := heimdall.Train(iolog, heimdall.DefaultConfig(seed+int64(d)))
		if err != nil {
			log.Fatalf("device %d: %v", d, err)
		}
		models[d] = m
	}

	// The fault: device 0 browns out 8x for the middle of the test window.
	// The model trained on the healthy device knows nothing about this.
	start, width := dur/8, dur/4
	faults := []*heimdall.FaultSchedule{
		heimdall.NewFaultSchedule().Brownout(start, width, 8),
	}
	fmt.Printf("fault: %v\n\n", faults[0].Windows()[0])

	run := func(sel heimdall.Selector) heimdall.ReplayResult {
		return heimdall.Replay([]*heimdall.Trace{heavyTest, lightTest}, heimdall.ReplayOptions{
			Devices:     devices,
			Seed:        seed + 999,
			Selector:    sel,
			Faults:      faults,
			ReadTimeout: 2 * time.Millisecond, // timed-out reads retry on the peer
		})
	}

	guarded := heimdall.GuardPolicy(heimdall.HeimdallPolicy(models), nil) // nil: hedge fallback
	policies := []heimdall.Selector{
		heimdall.BaselinePolicy(),
		heimdall.HedgingPolicy(2 * time.Millisecond),
		heimdall.HeimdallPolicy(models),
		guarded,
	}
	fmt.Printf("%-18s %10s %10s %10s %8s %9s %7s\n",
		"policy", "avg", "p99", "p99.9", "retries", "timedout", "failed")
	for _, pol := range policies {
		res := run(pol)
		fmt.Printf("%-18s %10v %10v %10v %8d %9d %7d\n",
			res.Policy,
			res.ReadLat.Mean.Round(time.Microsecond),
			res.ReadLat.P99.Round(time.Microsecond),
			res.ReadLat.P999.Round(time.Microsecond),
			res.Retries, res.TimedOut, res.Failed)
	}

	// The breaker's transition log shows degraded mode engaging and clearing.
	fmt.Printf("\nbreaker: %d trip(s), %d recover(y/ies)\n", guarded.Trips(), guarded.Recoveries())
	for _, tr := range guarded.Transitions() {
		fmt.Printf("  t=%8v  primary %d  %v -> %v\n",
			time.Duration(tr.At).Round(time.Millisecond), tr.Primary, tr.From, tr.To)
	}
	fmt.Println("\nexpected shape: no read is ever lost (failed=0); guarded heimdall")
	fmt.Println("cuts the brownout's extreme tail versus plain heimdall by tripping")
	fmt.Println("to hedging inside the fault window and closing again after it.")
}
