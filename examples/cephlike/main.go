// Cephlike: the §6.3 wide-scale setting — a Ceph-RADOS-like cluster of 10
// nodes x 2 OSDs with noisy neighbours, comparing primary-only, random, and
// Heimdall routing under fan-out scaling factors (Tail at Scale).
package main

import (
	"fmt"
	"log"
	"time"

	heimdall "repro"
)

func main() {
	cfg := heimdall.DefaultClusterConfig(3)
	cfg.Duration = 6 * time.Second

	fmt.Printf("cluster: %d nodes x %d OSDs, %d clients, %d noise injectors\n",
		cfg.Nodes, cfg.OSDsPerNode, cfg.Clients, cfg.NoiseInjectors)

	fmt.Println("training the shared OSD admission model on a warmup run...")
	model, err := heimdall.TrainClusterModel(cfg)
	if err != nil {
		log.Fatalf("train: %v", err)
	}

	for _, sf := range []int{1, 10} {
		c := cfg
		c.SF = sf
		c.RequestRate = cfg.RequestRate / float64(sf) // hold sub-request load constant
		fmt.Printf("\nscaling factor SF=%d (each user request fans out to %d OSD reads):\n", sf, sf)
		fmt.Printf("%-10s %10s %10s %10s %10s %9s %9s\n", "policy", "avg", "p75", "p95", "p99", "reroutes", "busy-hit")
		for _, pol := range []heimdall.ClusterPolicy{
			heimdall.ClusterBaseline, heimdall.ClusterRandom, heimdall.ClusterHeimdall,
		} {
			res := heimdall.RunCluster(c, pol, model)
			fmt.Printf("%-10s %10v %10v %10v %10v %9d %9d\n",
				res.Policy,
				res.UserLat.Mean.Round(time.Microsecond),
				res.UserLat.Percentile(75).Round(time.Microsecond),
				res.UserLat.P95.Round(time.Microsecond),
				res.UserLat.P99.Round(time.Microsecond),
				res.Reroute, res.BusyHit)
		}
	}
	fmt.Println("\nexpected shape: fan-out amplifies the tail (SF=10 medians exceed SF=1),")
	fmt.Println("and Heimdall cuts the amplified tail that baseline routing suffers.")
}
