// Deployment: the operator workflow around the model — train once, persist
// the model artifact, regenerate the C source for an in-kernel build
// (§4.1), size the joint-inference granularity for the observed load
// (§4.2), and stand up a label-free input-drift monitor for the long run
// (§7).
package main

import (
	"bytes"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	heimdall "repro"
)

func main() {
	dir, err := os.MkdirTemp("", "heimdall-deploy")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// --- Train on the collected log. ---
	tr := heimdall.Generate(heimdall.MSRStyle(19, 6*time.Second))
	dev := heimdall.NewDevice(heimdall.Samsung970Pro(), 19)
	iolog := heimdall.Collect(tr, dev)
	cfg := heimdall.DefaultConfig(19)
	cfg.Epochs = 12
	cfg.MaxTrainSamples = 15000
	model, err := heimdall.Train(iolog, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained: slow fraction %.1f%%, threshold %.3f\n",
		model.Report().SlowFraction*100, model.Threshold())

	// --- Persist and reload (ship to the storage node). ---
	modelPath := filepath.Join(dir, "model.bin")
	f, err := os.Create(modelPath)
	if err != nil {
		log.Fatal(err)
	}
	if err := model.Save(f); err != nil {
		log.Fatal(err)
	}
	f.Close()
	f, err = os.Open(modelPath)
	if err != nil {
		log.Fatal(err)
	}
	loaded, err := heimdall.LoadModel(f)
	f.Close()
	if err != nil {
		log.Fatal(err)
	}
	info, _ := os.Stat(modelPath)
	fmt.Printf("persisted %d bytes; reloaded model threshold %.3f\n", info.Size(), loaded.Threshold())

	// --- Generate the C source (the in-kernel build input). ---
	var csrc bytes.Buffer
	if err := loaded.ExportC(&csrc, "heimdall"); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generated %d bytes of C (heimdall_score / heimdall_admit)\n", csrc.Len())

	// --- Size joint inference for the expected load. ---
	costs := map[int]float64{}
	for _, p := range []int{1, 3, 5, 9} {
		// Input-layer width grows with joint size; model the cost from the
		// multiply count at ~1ns per multiply (measure on your hardware for
		// production).
		costs[p] = float64(128*(10+p) + 128*16 + 16)
	}
	jc := heimdall.NewJointController(costs, 0.5)
	for _, iops := range []float64{100_000, 500_000, 2_000_000} {
		fmt.Printf("at %.0fk IOPS -> joint size %d\n", iops/1000, jc.Pick(iops))
	}

	// --- Arm the input-drift monitor (no labels needed). ---
	rows := make([][]float64, 0, 4096)
	hist := heimdall.NewFeatureWindow(loaded.Spec().Depth)
	for _, r := range heimdall.Reads(iolog) {
		rows = append(rows, loaded.Spec().Online(r.QueueLen, r.Size, r.Arrival, 0, hist))
		hist.Push(heimdall.HistEntry{
			Latency: float64(r.Latency), QueueLen: float64(r.QueueLen), Thpt: r.ThroughputMBps(),
		})
	}
	det := heimdall.NewInputDriftDetector(rows, 10)

	// Same workload: stable. A write-heavy tencent shift: drift.
	feed := func(style heimdall.GenConfig, seed int64) bool {
		d := heimdall.NewDevice(heimdall.Samsung970Pro(), seed)
		h := heimdall.NewFeatureWindow(loaded.Spec().Depth)
		for _, r := range heimdall.Reads(heimdall.Collect(heimdall.Generate(style), d)) {
			det.Observe(loaded.Spec().Online(r.QueueLen, r.Size, r.Arrival, 0, h))
			h.Push(heimdall.HistEntry{
				Latency: float64(r.Latency), QueueLen: float64(r.QueueLen), Thpt: r.ThroughputMBps(),
			})
		}
		return det.Drifted()
	}
	fmt.Printf("same workload drifted?    %v\n", feed(heimdall.MSRStyle(20, 2*time.Second), 20))
	fmt.Printf("shifted workload drifted? %v\n", feed(heimdall.TencentStyle(21, 2*time.Second), 21))
	fmt.Println("\non drift: retrain on the freshest window (model.Retrain) and re-ship.")
}
