// Quickstart: train a Heimdall admission model on a synthetic workload and
// make admit/decline decisions — the minimal end-to-end loop.
package main

import (
	"fmt"
	"log"
	"time"

	heimdall "repro"
)

func main() {
	// 1. Generate a production-style workload and a simulated SSD, then
	//    collect the training log (the "last 15 minutes of I/Os" a storage
	//    operator would record).
	tr := heimdall.Generate(heimdall.MSRStyle(42, 8*time.Second))
	dev := heimdall.NewDevice(heimdall.Samsung970Pro(), 1)
	iolog := heimdall.Collect(tr, dev)
	fmt.Printf("collected %d I/Os (%d reads)\n", len(iolog), len(heimdall.Reads(iolog)))

	// 2. Train: period-based labeling -> 3-stage noise filtering -> feature
	//    engineering -> tuned NN -> quantization. One call.
	model, err := heimdall.Train(iolog, heimdall.DefaultConfig(7))
	if err != nil {
		log.Fatalf("train: %v", err)
	}
	rep := model.Report()
	fmt.Printf("trained on %d reads (kept %d after noise filtering), slow fraction %.1f%%\n",
		rep.Samples, rep.Kept, rep.SlowFraction*100)
	fmt.Printf("preprocessing %v, training %v, decision threshold %.3f\n",
		rep.PreprocessTime.Round(time.Millisecond), rep.TrainTime.Round(time.Millisecond),
		model.Threshold())

	// 3. Evaluate against the simulator's ground truth on an unseen device.
	dev2 := heimdall.NewDevice(heimdall.Samsung970Pro(), 2)
	test := heimdall.Generate(heimdall.MSRStyle(43, 4*time.Second))
	testReads := heimdall.Reads(heimdall.Collect(test, dev2))
	m := model.Evaluate(testReads, heimdall.GroundTruth(testReads))
	fmt.Printf("accuracy vs ground truth: ROC-AUC %.3f, PR-AUC %.3f, F1 %.3f, FNR %.3f, FPR %.3f\n",
		m.ROCAUC, m.PRAUC, m.F1, m.FNR, m.FPR)

	// 4. Make online decisions the way a deployment would: keep a rolling
	//    window of completed-I/O history, build the feature row, and ask the
	//    quantized model.
	hist := heimdall.NewFeatureWindow(3)
	// An idle device: short queue, fast recent completions -> admit.
	hist.Push(heimdall.HistEntry{Latency: 90_000, QueueLen: 1, Thpt: 45})
	idle := model.Features(1, 4096, hist)
	fmt.Printf("idle device, 4KB read   -> admit=%v (P(slow)=%.3f)\n",
		model.Admit(idle), model.Score(idle))

	// A device under internal contention: deep queue, slow completions with
	// collapsed throughput -> decline and reroute to the replica.
	busy := heimdall.NewFeatureWindow(3)
	for i := 0; i < 3; i++ {
		busy.Push(heimdall.HistEntry{Latency: 6_000_000, QueueLen: 40, Thpt: 0.6})
	}
	contended := model.Features(45, 4096, busy)
	fmt.Printf("busy device, 4KB read   -> admit=%v (P(slow)=%.3f)\n",
		model.Admit(contended), model.Score(contended))
}
