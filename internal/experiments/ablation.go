package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/feature"
	"repro/internal/metrics"
)

// Ablation measures the repository's own design choices (the list DESIGN.md
// commits to), beyond the paper's figures:
//
//   - quantization: decision agreement and score drift between the float
//     and fixed-point inference paths;
//   - threshold calibration: FNR/FPR at the calibrated operating point vs
//     the naive 0.5 cut;
//   - data sampling: accuracy at the 50k training-row cap vs a 10k cap;
//   - biased training (§3.6): the paper found weighted loss unhelpful —
//     verify PosWeight=4 shifts FNR down at an FPR cost without improving
//     ROC.
func Ablation(scale Scale) Table {
	ds := Pool(scale.Datasets, scale)

	t := Table{
		Title:   "Repository design ablation",
		Columns: []string{"roc-auc", "fnr", "fpr", "extra"},
		Note:    "extra = quantized decision agreement (quant rows), training rows (sampling rows)",
	}

	// Quantization: agreement between float and fixed-point decisions.
	var agree, rocs []float64
	for i, d := range ds {
		cfg := scale.coreConfig(scale.Seed + int64(i))
		m, err := core.Train(d.TrainLog, cfg)
		if err != nil {
			continue
		}
		rows := feature.Extract(d.TestReads, m.Spec())
		match, total := 0, 0
		for _, raw := range rows {
			qd := m.Admit(raw)
			fd := m.Score(raw) < m.Threshold()
			if qd == fd {
				match++
			}
			total++
			if total >= 2000 {
				break
			}
		}
		if total > 0 {
			agree = append(agree, float64(match)/float64(total))
		}
		rocs = append(rocs, m.Evaluate(d.TestReads, d.TestGT).ROCAUC)
	}
	t.Rows = append(t.Rows, Row{"quantized (default)", []float64{mean(rocs), 0, 0, mean(agree)}})

	// Threshold calibration vs naive 0.5.
	var calFNR, calFPR, naiveFNR, naiveFPR []float64
	for i, d := range ds {
		cfg := scale.coreConfig(scale.Seed + int64(i))
		m, err := core.Train(d.TrainLog, cfg)
		if err != nil {
			continue
		}
		rep := m.Evaluate(d.TestReads, d.TestGT)
		calFNR = append(calFNR, rep.FNR)
		calFPR = append(calFPR, rep.FPR)
		// Re-score at 0.5.
		rows := feature.Extract(d.TestReads, m.Spec())
		scores := make([]float64, len(rows))
		for j, raw := range rows {
			scores[j] = m.Score(raw)
		}
		naive := metrics.EvaluateAt(scores, d.TestGT, 0.5)
		naiveFNR = append(naiveFNR, naive.FNR)
		naiveFPR = append(naiveFPR, naive.FPR)
	}
	t.Rows = append(t.Rows, Row{"threshold calibrated", []float64{mean(rocs), mean(calFNR), mean(calFPR), 0}})
	t.Rows = append(t.Rows, Row{"threshold naive-0.5", []float64{mean(rocs), mean(naiveFNR), mean(naiveFPR), 0}})

	// Data sampling cap.
	for _, cap := range []int{10000, scale.MaxTrainSamples} {
		c := cap
		accs := trainEval(ds, scale, func(cfg *core.Config) { cfg.MaxTrainSamples = c })
		t.Rows = append(t.Rows, Row{rowName("sampling cap", c), []float64{mean(accs), 0, 0, float64(c)}})
	}

	// Biased training (§3.6).
	for _, pw := range []float64{1, 4} {
		w := pw
		var roc, fnr, fpr []float64
		for i, d := range ds {
			cfg := scale.coreConfig(scale.Seed + int64(i))
			cfg.PosWeight = w
			m, err := core.Train(d.TrainLog, cfg)
			if err != nil {
				continue
			}
			rep := m.Evaluate(d.TestReads, d.TestGT)
			roc = append(roc, rep.ROCAUC)
			fnr = append(fnr, rep.FNR)
			fpr = append(fpr, rep.FPR)
		}
		t.Rows = append(t.Rows, Row{rowName("pos-weight", int(w)), []float64{mean(roc), mean(fnr), mean(fpr), w}})
	}
	return t
}

func rowName(base string, v int) string {
	return fmt.Sprintf("%s %d", base, v)
}
