package experiments

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/feature"
	"repro/internal/filter"
	"repro/internal/iolog"
	"repro/internal/label"
	"repro/internal/linnos"
	"repro/internal/metrics"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/parallel"
)

// trainEval trains one pipeline config per dataset and returns the ROC-AUC
// against simulator ground truth for each. Datasets train on scale.Workers
// goroutines; per-dataset seeds derive from the dataset index alone, so the
// result order (and every value) is independent of the worker count.
func trainEval(ds []Dataset, scale Scale, mutate func(*core.Config)) []float64 {
	aucs := parallel.Map(parallel.Workers(scale.Workers), len(ds), func(i int) float64 {
		cfg := scale.coreConfig(scale.Seed + int64(i))
		if mutate != nil {
			mutate(&cfg)
		}
		m, err := core.Train(ds[i].TrainLog, cfg)
		if err != nil {
			// Degenerate window (e.g. all-fast); skip, like the paper's data
			// selection would.
			return math.NaN()
		}
		return m.Evaluate(ds[i].TestReads, ds[i].TestGT).ROCAUC
	})
	out := make([]float64, 0, len(ds))
	for _, a := range aucs {
		if !math.IsNaN(a) {
			out = append(out, a)
		}
	}
	return out
}

// Fig5a compares cutoff-based and period-based labeling by what the paper
// calls "the labeled data's better learnability": train the same model on
// each labeling and score it against device ground truth. Raw label
// agreement is reported alongside for context.
func Fig5a(scale Scale) Table {
	ds := Pool(scale.Datasets, scale)
	var cutAgree, perAgree []float64
	for _, d := range ds {
		reads := iolog.Reads(d.TrainLog)
		gt := iolog.GroundTruth(reads)
		cl := label.Cutoff(reads, label.CutoffValue(reads))
		cutAgree = append(cutAgree, label.BalancedAgreement(cl, gt))
		th := label.Search(reads, label.SearchOptions{})
		pl := label.Period(reads, th)
		perAgree = append(perAgree, label.BalancedAgreement(pl, gt))
	}
	cutModel := trainEval(ds, scale, func(c *core.Config) { c.Labeling = core.LabelCutoff })
	perModel := trainEval(ds, scale, func(c *core.Config) { c.Labeling = core.LabelPeriod })
	pm := mean(perModel)
	t := Table{
		Title:   "Fig 5a — cutoff vs period-based labeling (learnability: trained-model ROC-AUC vs ground truth)",
		Columns: []string{"model-roc", "normalized", "label-agree"},
		Note:    "a model taught by period labels outscores one taught by cutoff labels (normalized to period = 1.0)",
	}
	t.Rows = append(t.Rows,
		Row{"cutoff", []float64{mean(cutModel), safeDiv(mean(cutModel), pm), mean(cutAgree)}},
		Row{"period", []float64{pm, 1, mean(perAgree)}},
	)
	return t
}

func safeDiv(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

// Fig5b measures the model's misprediction rate on each noise class when
// trained WITHOUT noise filtering — the evidence that outliers are
// disruptive rather than informative.
func Fig5b(scale Scale) Table {
	ds := Pool(scale.Datasets, scale)
	miss := map[filter.NoiseKind][]float64{}
	for i, d := range ds {
		cfg := scale.coreConfig(scale.Seed + int64(i))
		cfg.Filter = filter.Config{} // train on unfiltered data
		m, err := core.Train(d.TrainLog, cfg)
		if err != nil {
			continue
		}
		// Label the test half and classify its noise.
		th := label.Search(d.TestReads, label.SearchOptions{})
		testLabels := label.Period(d.TestReads, th)
		fres := filter.Apply(d.TestReads, testLabels, filter.PaperConfig())
		rows := feature.Extract(d.TestReads, m.Spec())
		counts := map[filter.NoiseKind][2]int{} // kind -> {mispredicted, total}
		for j, row := range rows {
			kind := filter.Clean
			if !fres.Keep[j] {
				kind = fres.Kind[j]
			}
			pred := 0
			if m.Score(row) >= m.Threshold() {
				pred = 1
			}
			c := counts[kind]
			if pred != testLabels[j] {
				c[0]++
			}
			c[1]++
			counts[kind] = c
		}
		// Each iteration writes a distinct miss[kind] key exactly once, so the
		// fold commutes; the final table ranges a fixed kind slice.
		for kind, c := range counts { //heimdall:ordered
			if c[1] > 0 {
				miss[kind] = append(miss[kind], float64(c[0])/float64(c[1]))
			}
		}
	}
	t := Table{
		Title:   "Fig 5b — misprediction rate per noise type (model trained without filtering)",
		Columns: []string{"misprediction"},
		Note:    "all three outlier classes should mispredict far above the clean rate",
	}
	for _, kind := range []filter.NoiseKind{filter.Clean, filter.FastInSlow, filter.SlowInFast, filter.ShortBurst} {
		t.Rows = append(t.Rows, Row{kind.String(), []float64{mean(miss[kind])}})
	}
	return t
}

// Fig7a ranks every extracted feature by correlation to the label.
func Fig7a(scale Scale) Table {
	ds := Pool(scale.Datasets, scale)
	spec := feature.Spec{
		Kinds: feature.Selected | feature.Timestamp | feature.Offset,
		Depth: 3,
	}
	names := spec.Names()
	sums := make([]float64, len(names))
	n := 0
	for _, d := range ds {
		reads := iolog.Reads(d.TrainLog)
		th := label.Search(reads, label.SearchOptions{})
		labels := label.Period(reads, th)
		rows := feature.Extract(reads, spec)
		corr := feature.Correlation(rows, labels)
		for c := range corr {
			sums[c] += corr[c]
		}
		n++
	}
	t := Table{
		Title:   "Fig 7a — feature correlation to the admission label",
		Columns: []string{"|pearson|"},
		Note:    "queueLen and history features rank high; timestamp/offset near zero (removed by selection)",
	}
	for c, name := range names {
		t.Rows = append(t.Rows, Row{name, []float64{sums[c] / float64(max(n, 1))}})
	}
	return t
}

// Fig7b shows accuracy as feature groups are added.
func Fig7b(scale Scale) Table {
	ds := Pool(scale.Datasets, scale)
	steps := []struct {
		name  string
		kinds feature.Kind
	}{
		{"queueLen", feature.QueueLen},
		{"+ioSize", feature.QueueLen | feature.IOSize},
		{"+histLatency", feature.QueueLen | feature.IOSize | feature.HistLatency},
		{"+histQueueLen", feature.QueueLen | feature.IOSize | feature.HistLatency | feature.HistQueueLen},
		{"+histThpt", feature.Selected},
	}
	t := Table{
		Title:   "Fig 7b — accuracy contribution of each feature group (ROC-AUC vs ground truth)",
		Columns: []string{"roc-auc"},
		Note:    "accuracy climbs as each of the five feature groups is added",
	}
	for _, s := range steps {
		kinds := s.kinds
		accs := trainEval(ds, scale, func(c *core.Config) {
			c.Feature = feature.Spec{Kinds: kinds, Depth: 3}
		})
		t.Rows = append(t.Rows, Row{s.name, []float64{mean(accs)}})
	}
	return t
}

// Fig7c sweeps the historical depth N.
func Fig7c(scale Scale) Table {
	ds := Pool(scale.Datasets, scale)
	t := Table{
		Title:   "Fig 7c — accuracy vs historical depth N",
		Columns: []string{"roc-auc"},
		Note:    "N=3 suffices; deeper history adds cost without accuracy",
	}
	for depth := 1; depth <= 6; depth++ {
		d := depth
		accs := trainEval(ds, scale, func(c *core.Config) {
			c.Feature = feature.Spec{Kinds: feature.Selected, Depth: d}
		})
		t.Rows = append(t.Rows, Row{fmt.Sprintf("N=%d", depth), []float64{mean(accs)}})
	}
	return t
}

// Fig7d sweeps the feature scaler.
func Fig7d(scale Scale) Table {
	ds := Pool(scale.Datasets, scale)
	t := Table{
		Title:   "Fig 7d — accuracy by normalization method",
		Columns: []string{"roc-auc"},
		Note:    "min-max matches the heavy scalers at a fraction of their memory; digitize trails",
	}
	for _, k := range []feature.ScalerKind{feature.ScaleMinMax, feature.ScaleStandard, feature.ScaleRobust, feature.ScaleDigitize, feature.ScaleNone} {
		kind := k
		accs := trainEval(ds, scale, func(c *core.Config) { c.Scaler = kind })
		t.Rows = append(t.Rows, Row{k.String(), []float64{mean(accs)}})
	}
	return t
}

// Fig8 runs the model-exploration comparison: mean accuracy and
// cross-dataset stability for eight model families on the common feature
// set.
func Fig8(scale Scale) Table {
	ds := Pool(scale.Datasets, scale)
	labelsOf := func(reads []iolog.Record) []int {
		th := label.Search(reads, label.SearchOptions{})
		return label.Period(reads, th)
	}
	names := []string{"nn", "rnn", "svc", "knn", "logreg", "adaboost", "lightgbm", "randforest"}
	// Fan out per dataset: each dataset's eight-model sweep is independent
	// (model seeds derive from the dataset index), so the per-model score
	// lists reduce in dataset order regardless of worker count. NaN marks a
	// model whose fit failed on that dataset.
	perDS := parallel.Map(parallel.Workers(scale.Workers), len(ds), func(di int) []float64 {
		d := ds[di]
		reads := iolog.Reads(d.TrainLog)
		trainLabels := labelsOf(reads)
		spec := feature.DefaultSpec()
		rows := feature.Extract(reads, spec)
		fres := filter.Apply(reads, trainLabels, filter.DefaultConfig())
		var X [][]float64
		var y []int
		for j := range rows {
			if fres.Keep[j] {
				X = append(X, rows[j])
				y = append(y, trainLabels[j])
			}
		}
		scaler := feature.NewScaler(feature.ScaleMinMax)
		feature.FitTransform(scaler, X)
		testRows := feature.Extract(d.TestReads, spec)
		for _, r := range testRows {
			scaler.Transform(r)
		}
		aucs := make([]float64, len(names))
		scores := make([]float64, len(testRows))
		for mi, clf := range models.Fig8Models(scale.Seed + int64(di)) {
			if err := clf.Fit(X, y); err != nil {
				aucs[mi] = math.NaN()
				continue
			}
			for j, r := range testRows {
				scores[j] = clf.PredictProba(r)
			}
			aucs[mi] = metrics.ROCAUC(scores, d.TestGT)
		}
		return aucs
	})
	accs := make([][]float64, len(names))
	for _, aucs := range perDS {
		for mi, a := range aucs {
			if !math.IsNaN(a) {
				accs[mi] = append(accs[mi], a)
			}
		}
	}
	t := Table{
		Title:   "Fig 8 — model exploration: accuracy and cross-dataset variation",
		Columns: []string{"mean-roc", "std"},
		Note:    "the NN combines high accuracy with low variation (upper-left of the paper's figure)",
	}
	for mi, name := range names {
		t.Rows = append(t.Rows, Row{name, []float64{mean(accs[mi]), metrics.Std(accs[mi])}})
	}
	return t
}

// Fig9a contrasts LinnOS's per-page inference with Heimdall's per-I/O
// inference: invocations needed for the same trace, plus accuracy.
func Fig9a(scale Scale) Table {
	ds := Pool(scale.Datasets, scale)
	type fig9aResult struct {
		pages, ios float64
		lin, heim  float64 // NaN when training failed
	}
	perDS := parallel.Map(parallel.Workers(scale.Workers), len(ds), func(i int) fig9aResult {
		d := ds[i]
		r := fig9aResult{lin: math.NaN(), heim: math.NaN()}
		for _, req := range iolog.Reads(d.TrainLog) {
			r.pages += float64(linnos.InferencesFor(req.Size))
			r.ios++
		}
		if lm, err := linnos.Train(d.TrainLog, scale.Seed+int64(i)); err == nil {
			r.lin = lm.Evaluate(d.TestReads, d.TestGT).ROCAUC
		}
		if m, err := core.Train(d.TrainLog, scale.coreConfig(scale.Seed+int64(i))); err == nil {
			r.heim = m.Evaluate(d.TestReads, d.TestGT).ROCAUC
		}
		return r
	})
	var pageInf, ioInf, linAcc, heimAcc []float64
	for _, r := range perDS {
		pageInf = append(pageInf, r.pages)
		ioInf = append(ioInf, r.ios)
		if !math.IsNaN(r.lin) {
			linAcc = append(linAcc, r.lin)
		}
		if !math.IsNaN(r.heim) {
			heimAcc = append(heimAcc, r.heim)
		}
	}
	return Table{
		Title:   "Fig 9a — per-page (LinnOS) vs per-I/O (Heimdall) inference",
		Columns: []string{"inferences", "roc-auc"},
		Rows: []Row{
			{"linnos-per-page", []float64{mean(pageInf), mean(linAcc)}},
			{"heimdall-per-io", []float64{mean(ioInf), mean(heimAcc)}},
		},
		Note: "one inference per I/O regardless of size, at equal or better accuracy",
	}
}

// Fig9b sweeps the number of hidden layers.
func Fig9b(scale Scale) Table {
	ds := Pool(scale.Datasets, scale)
	shapes := [][]nn.LayerSpec{
		{{Units: 128, Act: nn.ReLU}},
		{{Units: 128, Act: nn.ReLU}, {Units: 16, Act: nn.ReLU}},
		{{Units: 128, Act: nn.ReLU}, {Units: 32, Act: nn.ReLU}, {Units: 16, Act: nn.ReLU}},
		{{Units: 128, Act: nn.ReLU}, {Units: 64, Act: nn.ReLU}, {Units: 32, Act: nn.ReLU}, {Units: 16, Act: nn.ReLU}},
		{{Units: 128, Act: nn.ReLU}, {Units: 64, Act: nn.ReLU}, {Units: 32, Act: nn.ReLU}, {Units: 16, Act: nn.ReLU}, {Units: 8, Act: nn.ReLU}},
	}
	t := Table{
		Title:   "Fig 9b — accuracy vs number of hidden layers",
		Columns: []string{"roc-auc"},
		Note:    "the second hidden layer gives the biggest jump; beyond that, flat",
	}
	for li, shape := range shapes {
		sh := shape
		accs := trainEval(ds, scale, func(c *core.Config) { c.Hidden = sh })
		t.Rows = append(t.Rows, Row{fmt.Sprintf("%d-layers", li+1), []float64{mean(accs)}})
	}
	return t
}

// Fig9c sweeps the (layer1, layer2) neuron grid.
func Fig9c(scale Scale) Table {
	ds := Pool(scale.Datasets, scale)
	l1s := []int{32, 64, 128, 256}
	l2s := []int{8, 16, 32, 64}
	t := Table{
		Title:   "Fig 9c — accuracy over the (hidden1, hidden2) neuron grid",
		Columns: make([]string, len(l2s)),
		Note:    "128/16 is the lightest design in the high-accuracy region",
	}
	for i, l2 := range l2s {
		t.Columns[i] = fmt.Sprintf("h2=%d", l2)
	}
	for _, l1 := range l1s {
		vals := make([]float64, len(l2s))
		for i, l2 := range l2s {
			u1, u2 := l1, l2
			accs := trainEval(ds, scale, func(c *core.Config) {
				c.Hidden = []nn.LayerSpec{{Units: u1, Act: nn.ReLU}, {Units: u2, Act: nn.ReLU}}
			})
			vals[i] = mean(accs)
		}
		t.Rows = append(t.Rows, Row{fmt.Sprintf("h1=%d", l1), vals})
	}
	return t
}

// Fig9d sweeps activation-function pairs for the two hidden layers.
func Fig9d(scale Scale) Table {
	ds := Pool(scale.Datasets, scale)
	acts := []nn.Activation{nn.ReLU, nn.LeakyReLU, nn.PReLU, nn.SELU, nn.Sigmoid, nn.Tanh}
	t := Table{
		Title:   "Fig 9d — activation permutation grid (rows: layer 1, cols: layer 2)",
		Columns: make([]string, len(acts)),
		Note:    "ReLU/ReLU sits in the high-accuracy region with the cheapest compute",
	}
	for i, a := range acts {
		t.Columns[i] = a.String()
	}
	for _, a1 := range acts {
		vals := make([]float64, len(acts))
		for i, a2 := range acts {
			x1, x2 := a1, a2
			accs := trainEval(ds, scale, func(c *core.Config) {
				c.Hidden = []nn.LayerSpec{{Units: 128, Act: x1}, {Units: 16, Act: x2}}
				c.Quantize = false // non-ReLU hidden layers have no quantized path
			})
			vals[i] = mean(accs)
		}
		t.Rows = append(t.Rows, Row{a1.String(), vals})
	}
	return t
}

// Fig9e sweeps the output layer design.
func Fig9e(scale Scale) Table {
	ds := Pool(scale.Datasets, scale)
	outs := []struct {
		name string
		spec nn.LayerSpec
	}{
		{"sigmoid-1", nn.LayerSpec{Units: 1, Act: nn.Sigmoid}},
		{"linear-1", nn.LayerSpec{Units: 1, Act: nn.Linear}},
		{"softmax-2", nn.LayerSpec{Units: 2, Act: nn.Softmax}},
	}
	t := Table{
		Title:   "Fig 9e — output-layer design",
		Columns: []string{"roc-auc", "out-muls"},
		Note:    "single sigmoid matches softmax accuracy at half the output-layer cost",
	}
	for _, o := range outs {
		spec := o.spec
		accs := trainEval(ds, scale, func(c *core.Config) { c.Output = spec })
		t.Rows = append(t.Rows, Row{o.name, []float64{mean(accs), float64(16 * spec.Units)}})
	}
	return t
}

// Fig14Step is one rung of the accuracy ladder.
type Fig14Step struct {
	Name   string
	Mutate func(*core.Config)
	// UseLinnOS runs the actual LinnOS implementation instead of a pipeline
	// variant (step 0).
	UseLinnOS bool
}

// Fig14Steps returns the paper's step-by-step pipeline ablation (§6.4).
func Fig14Steps() []Fig14Step {
	linnosFeatures := feature.Spec{Kinds: feature.LinnOSSet, Depth: 4}
	linnosNet := []nn.LayerSpec{{Units: 256, Act: nn.ReLU}}
	softmaxOut := nn.LayerSpec{Units: 2, Act: nn.Softmax}
	base := func(c *core.Config) {
		c.Labeling = core.LabelCutoff
		c.Filter = filter.Config{}
		c.Feature = linnosFeatures
		c.Scaler = feature.ScaleNone
		c.Hidden = linnosNet
		c.Output = softmaxOut
		c.Quantize = false
	}
	chain := func(fs ...func(*core.Config)) func(*core.Config) {
		return func(c *core.Config) {
			for _, f := range fs {
				f(c)
			}
		}
	}
	fc := func(c *core.Config) { c.Scaler = feature.ScaleMinMax }
	la := func(c *core.Config) { c.Labeling = core.LabelPeriod; c.SearchThresholds = true }
	// FE adds the informative extractions (I/O size, historical throughput)
	// on top of LinnOS's features, still at LinnOS's depth; FS then selects
	// the final five groups at depth 3, shrinking the model's inputs while
	// holding accuracy (§6.4 steps 4-5).
	fe := func(c *core.Config) {
		c.Feature = feature.Spec{Kinds: feature.Selected, Depth: 4}
	}
	fs := func(c *core.Config) { c.Feature = feature.Spec{Kinds: feature.Selected, Depth: 3} }
	m := func(c *core.Config) {
		c.Hidden = []nn.LayerSpec{{Units: 128, Act: nn.ReLU}, {Units: 16, Act: nn.ReLU}}
		c.Output = nn.LayerSpec{Units: 1, Act: nn.Sigmoid}
		c.Quantize = true
	}
	ln := func(c *core.Config) { c.Filter = filter.DefaultConfig() }
	return []Fig14Step{
		{Name: "(0) LinnOS", UseLinnOS: true},
		{Name: "(1) LB basic labeling", Mutate: base},
		{Name: "(2) +FC feature scaling", Mutate: chain(base, fc)},
		{Name: "(3) +LA accurate labeling", Mutate: chain(base, fc, la)},
		{Name: "(4) +FE feature extraction", Mutate: chain(base, fc, la, fe)},
		{Name: "(5) +FS feature selection", Mutate: chain(base, fc, la, fe, fs)},
		{Name: "(6) +M model engineering", Mutate: chain(base, fc, la, fe, fs, m)},
		{Name: "(7) +LN noise filtering", Mutate: chain(base, fc, la, fe, fs, m, ln)},
	}
}

// Fig14 runs the full accuracy ladder with all five metrics (Fig. 14a/14b).
func Fig14(scale Scale) Table {
	ds := Pool(scale.Datasets, scale)
	t := Table{
		Title:   "Fig 14 — step-by-step pipeline ablation, all five metrics",
		Columns: []string{"roc-auc", "pr-auc", "f1", "fnr", "fpr"},
		Note:    "ROC/PR/F1 climb and FNR/FPR fall as stages are added; the LB step is the controlled lower bound",
	}
	for _, step := range Fig14Steps() {
		step := step
		// One training run per dataset, fanned out; nil marks a skipped
		// (degenerate) dataset and the reduction below keeps dataset order.
		reps := parallel.Map(parallel.Workers(scale.Workers), len(ds), func(i int) *metrics.Report {
			d := ds[i]
			var rep metrics.Report
			if step.UseLinnOS {
				lm, err := linnos.Train(d.TrainLog, scale.Seed+int64(i))
				if err != nil {
					return nil
				}
				rep = lm.Evaluate(d.TestReads, d.TestGT)
			} else {
				cfg := scale.coreConfig(scale.Seed + int64(i))
				step.Mutate(&cfg)
				m, err := core.Train(d.TrainLog, cfg)
				if err != nil {
					return nil
				}
				rep = m.Evaluate(d.TestReads, d.TestGT)
			}
			return &rep
		})
		var roc, pr, f1, fnr, fpr []float64
		for _, rep := range reps {
			if rep == nil {
				continue
			}
			roc = append(roc, rep.ROCAUC)
			pr = append(pr, rep.PRAUC)
			f1 = append(f1, rep.F1)
			fnr = append(fnr, rep.FNR)
			fpr = append(fpr, rep.FPR)
		}
		t.Rows = append(t.Rows, Row{step.Name, []float64{
			mean(roc), mean(pr), mean(f1), mean(fnr), mean(fpr),
		}})
	}
	return t
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
