package experiments

import (
	"strings"
	"testing"
	"time"

	"repro/internal/iolog"
	"repro/internal/ssd"
	"repro/internal/trace"
)

func testScale() Scale {
	s := SmallScale()
	s.TraceDur = 1500 * time.Millisecond
	s.Datasets = 2
	s.Epochs = 4
	s.MaxTrainSamples = 4000
	return s
}

func TestPoolInvariants(t *testing.T) {
	scale := testScale()
	ds := Pool(3, scale)
	if len(ds) != 3 {
		t.Fatalf("pool size %d", len(ds))
	}
	for i, d := range ds {
		if d.Name == "" {
			t.Errorf("dataset %d unnamed", i)
		}
		if len(d.TrainLog) == 0 || len(d.TestReads) == 0 {
			t.Errorf("%s: empty logs", d.Name)
		}
		if len(d.TestGT) != len(d.TestReads) {
			t.Errorf("%s: ground truth misaligned", d.Name)
		}
		for _, r := range d.TestReads {
			if r.Op != trace.Read {
				t.Errorf("%s: non-read in TestReads", d.Name)
				break
			}
		}
	}
	// Deterministic in the seed.
	ds2 := Pool(3, scale)
	for i := range ds {
		if ds[i].Name != ds2[i].Name || len(ds[i].TrainLog) != len(ds2[i].TrainLog) {
			t.Fatal("pool not deterministic")
		}
	}
}

func TestPoolLoadNormalization(t *testing.T) {
	scale := testScale()
	for _, d := range Pool(4, scale) {
		reads := iolog.Reads(d.TrainLog)
		if len(reads) < 100 {
			t.Errorf("%s: only %d train reads — load clamp failed", d.Name, len(reads))
		}
		// Device must not be permanently saturated: the median read latency
		// should stay within 50x of an uncontended page read.
		lat := iolog.Latencies(reads)
		var sum int64
		for _, l := range lat {
			sum += l
		}
		mean := float64(sum) / float64(len(lat))
		if mean > 50e6 {
			t.Errorf("%s: mean read latency %.1fms — saturated dataset", d.Name, mean/1e6)
		}
	}
}

func TestEstimateUtil(t *testing.T) {
	style := trace.MSRStyle(1, time.Second)
	identity := trace.Augmentation{Rerate: 1, Resize: 1}
	dev := ssd.Samsung970Pro()
	base := estimateUtil(style, identity, dev)
	if base <= 0 {
		t.Fatal("non-positive utilization")
	}
	// Resizing doubles page demand (roughly).
	resized := estimateUtil(style, trace.Augmentation{Rerate: 1, Resize: 2}, dev)
	if resized <= base {
		t.Fatal("resize did not raise utilization")
	}
	// Rerating up raises it proportionally.
	rerated := estimateUtil(style, trace.Augmentation{Rerate: 2, Resize: 1}, dev)
	if rerated < base*1.9 || rerated > base*2.1 {
		t.Fatalf("rerate 2x utilization %v, want ~2x of %v", rerated, base)
	}
	// A slower, narrower device is easier to saturate.
	slow := estimateUtil(style, identity, ssd.IntelDCS3610())
	if slow <= base {
		t.Fatal("slow device utilization not higher")
	}
}

func TestHasContention(t *testing.T) {
	if hasContention(nil) {
		t.Fatal("empty has contention")
	}
	flat := make([]int, 1000)
	if hasContention(flat) {
		t.Fatal("all-fast has contention")
	}
	flat[1] = 1
	flat[2] = 1
	flat[3] = 1
	flat[4] = 1
	if !hasContention(flat) {
		t.Fatal("0.4% contention not detected")
	}
}

func TestTableString(t *testing.T) {
	tab := Table{
		Title:   "demo",
		Columns: []string{"a", "b"},
		Rows:    []Row{{Label: "x", Values: []float64{1, 0.5}}, {Label: "y", Values: []float64{12345.6, 2}}},
		Note:    "remember",
	}
	s := tab.String()
	for _, want := range []string{"## demo", "a", "b", "x", "y", "note: remember", "12345.6"} {
		if !strings.Contains(s, want) {
			t.Errorf("rendered table missing %q in:\n%s", want, s)
		}
	}
}

func TestScalesOrdered(t *testing.T) {
	s, m, f := SmallScale(), MediumScale(), FullScale()
	if !(s.Datasets < m.Datasets && m.Datasets < f.Datasets) {
		t.Error("dataset counts not increasing")
	}
	if !(s.TraceDur < m.TraceDur && m.TraceDur < f.TraceDur) {
		t.Error("durations not increasing")
	}
	if !(s.Experiments < m.Experiments && m.Experiments < f.Experiments) {
		t.Error("experiment counts not increasing")
	}
}

func TestFig14StepsShape(t *testing.T) {
	steps := Fig14Steps()
	if len(steps) != 8 {
		t.Fatalf("ladder has %d steps, want 8", len(steps))
	}
	if !steps[0].UseLinnOS {
		t.Fatal("step 0 must be the LinnOS baseline")
	}
	for _, s := range steps[1:] {
		if s.Mutate == nil {
			t.Fatalf("%s: no config mutation", s.Name)
		}
	}
}

func TestMeasureInferenceSane(t *testing.T) {
	ns := MeasureInference(11, 1)
	if ns <= 0 || ns > 1e6 {
		t.Fatalf("measured inference %v ns", ns)
	}
	wider := MeasureInference(138, 1)
	if wider < ns*0.5 {
		t.Fatalf("wider model measured faster: %v vs %v", wider, ns)
	}
}

func TestSimulateInferenceQueue(t *testing.T) {
	// Far below capacity: turnaround ~ service time.
	light := simulateInferenceQueue(1e5, 1000, 1, 1) // 100k IOPS, 1µs service
	if light <= 0 || light > 5 {
		t.Fatalf("light load latency %vµs", light)
	}
	// Far above capacity: the saturation cap.
	heavy := simulateInferenceQueue(1e7, 1000, 1, 1)
	if heavy != 100 {
		t.Fatalf("saturated latency %vµs, want the 100µs cap", heavy)
	}
	// Joint grouping raises capacity.
	joint := simulateInferenceQueue(3e6, 1000, 9, 1)
	if joint >= 100 {
		t.Fatalf("joint=9 saturated where it should be stable: %vµs", joint)
	}
}

// TestReplayExperimentsTiny wires Fig10/11/12 end to end at the smallest
// possible size — they are otherwise exercised only by benchmarks.
func TestReplayExperimentsTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("replay experiments are slow")
	}
	scale := testScale()
	scale.Experiments = 1
	scale.TraceDur = 2 * time.Second
	for name, f := range map[string]func(Scale) Table{
		"fig10": Fig10, "fig11": Fig11, "fig12": Fig12,
	} {
		tab := f(scale)
		if len(tab.Rows) == 0 {
			t.Errorf("%s: no rows", name)
			continue
		}
		for _, r := range tab.Rows {
			if len(r.Values) != len(latCols) {
				t.Errorf("%s: row %q has %d values", name, r.Label, len(r.Values))
			}
			if r.Values[0] <= 0 {
				t.Errorf("%s: row %q has non-positive average", name, r.Label)
			}
		}
	}
}

// TestClusterExperimentTiny wires Fig13 end to end.
func TestClusterExperimentTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster experiment is slow")
	}
	scale := testScale()
	scale.TraceDur = 3 * time.Second
	tab := Fig13(scale)
	if len(tab.Rows) < 6 {
		t.Fatalf("fig13 rows %d", len(tab.Rows))
	}
}

// TestAblationTiny wires the repository-design ablation end to end.
func TestAblationTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation is slow")
	}
	tab := Ablation(testScale())
	if len(tab.Rows) != 7 {
		t.Fatalf("ablation rows %d, want 7", len(tab.Rows))
	}
	// Quantized agreement lives in the 'extra' column of the first row.
	if agree := tab.Rows[0].Values[3]; agree < 0.98 {
		t.Fatalf("quantized agreement %.3f", agree)
	}
}
