package experiments

import (
	"time"

	"repro/internal/core"
	"repro/internal/linnos"
	"repro/internal/policy"
	"repro/internal/replay"
	"repro/internal/ssd"
	"repro/internal/trace"
)

// pairExperiment is one replayed 2-replica experiment: a light/heavy trace
// pair (§6.1), per-device train halves and test halves.
type pairExperiment struct {
	devices    []ssd.Config
	trainHalfs []*trace.Trace
	testHalfs  []*trace.Trace
	seed       int64
}

// makePair builds experiment i: a heavy trace on device 0 and a light trace
// (same style, 0.85x rate, in-phase bursts) on device 1 — the light-heavy
// combination the paper focuses on.
func makePair(i int, scale Scale, devices []ssd.Config) pairExperiment {
	styles := trace.Styles(scale.Seed+int64(i)*977, scale.TraceDur)
	heavyCfg := styles[i%len(styles)]
	// Normalize the heavy stream to ~45% of the *weakest* replica's read
	// capacity (cf. Pool): consumer SATA devices would otherwise saturate
	// outright, a regime where no admission policy means anything.
	identity := trace.Augmentation{Rerate: 1, Resize: 1}
	worstUtil := 0.0
	for _, dev := range devices {
		if u := estimateUtil(heavyCfg, identity, dev); u > worstUtil {
			worstUtil = u
		}
	}
	if worstUtil > 0 {
		heavyCfg.MeanIOPS *= 0.45 / worstUtil
	}
	// The two replicas serve co-located tenants: the light workload is the
	// same style at ~85% of the rate, bursting IN PHASE with the heavy one
	// (shared BurstSeed). Both replicas carry real load and peak together,
	// so blindly rerouting from the heavy device overloads the light one
	// (§6.1).
	heavyCfg.BurstSeed = scale.Seed + int64(i)*7717
	lightCfg := heavyCfg
	lightCfg.Seed += 5
	lightCfg.MeanIOPS *= 0.85
	heavy := trace.Generate(heavyCfg)
	light := trace.Generate(lightCfg)

	ht, hs := heavy.SplitHalf()
	lt, ls := light.SplitHalf()
	return pairExperiment{
		devices:    devices,
		trainHalfs: []*trace.Trace{ht, lt},
		testHalfs:  []*trace.Trace{hs, ls},
		seed:       scale.Seed + int64(i)*1313,
	}
}

// trainModels trains a Heimdall and a LinnOS model per device on that
// device's training half.
func (p pairExperiment) trainModels(scale Scale) ([]*core.Model, []*linnos.Model, error) {
	hm := make([]*core.Model, len(p.devices))
	lm := make([]*linnos.Model, len(p.devices))
	for d := range p.devices {
		_, log := replay.CollectLog(p.trainHalfs[d], p.devices[d], p.seed+int64(d)*7)
		m, err := core.Train(log, scale.coreConfig(p.seed+int64(d)))
		if err != nil {
			return nil, nil, err
		}
		hm[d] = m
		l, err := linnos.Train(log, p.seed+int64(d))
		if err != nil {
			return nil, nil, err
		}
		lm[d] = l
	}
	return hm, lm, nil
}

func (p pairExperiment) run(sel policy.Selector) replay.Result {
	// Fresh devices for the test phase (seed offset keeps train/test device
	// behaviour independent, like testing on the unseen half).
	return replay.Run(p.testHalfs, replay.Options{
		Devices:  p.devices,
		Seed:     p.seed + 999,
		Selector: sel,
	})
}

var latCols = []string{"avg(ms)", "p50", "p80", "p90", "p95", "p99", "p99.9", "p99.99"}

func latRow(rs []replay.Result) []float64 {
	pct := func(f func(replay.Result) time.Duration) float64 {
		var s float64
		for _, r := range rs {
			s += f(r).Seconds() * 1000
		}
		return s / float64(len(rs))
	}
	return []float64{
		pct(func(r replay.Result) time.Duration { return r.ReadLat.Mean }),
		pct(func(r replay.Result) time.Duration { return r.ReadLat.P50 }),
		pct(func(r replay.Result) time.Duration { return r.ReadLat.Percentile(80) }),
		pct(func(r replay.Result) time.Duration { return r.ReadLat.P90 }),
		pct(func(r replay.Result) time.Duration { return r.ReadLat.P95 }),
		pct(func(r replay.Result) time.Duration { return r.ReadLat.P99 }),
		pct(func(r replay.Result) time.Duration { return r.ReadLat.P999 }),
		pct(func(r replay.Result) time.Duration { return r.ReadLat.P9999 }),
	}
}

// Fig10 compares the heuristic family (AMS, C3, Heron) to pick the
// representative (the paper selects C3).
func Fig10(scale Scale) Table {
	devices := []ssd.Config{ssd.Samsung970Pro(), ssd.Samsung970Pro()}
	sels := []policy.Selector{policy.AMS{}, policy.C3{}, &policy.Heron{}}
	results := map[string][]replay.Result{}
	for i := 0; i < scale.Experiments; i++ {
		p := makePair(i, scale, devices)
		for _, sel := range sels {
			results[sel.Name()] = append(results[sel.Name()], p.run(sel))
		}
	}
	t := Table{
		Title:   "Fig 10 — heuristic algorithms (averaged over experiments)",
		Columns: latCols,
		Note:    "C3 and AMS land close together, below Heron; C3 proceeds as the representative",
	}
	for _, sel := range sels {
		t.Rows = append(t.Rows, Row{sel.Name(), latRow(results[sel.Name()])})
	}
	return t
}

// Fig11 is the large-scale evaluation: random light-heavy experiments on a
// homogeneous 970 PRO pair under six policies.
func Fig11(scale Scale) Table {
	devices := []ssd.Config{ssd.Samsung970Pro(), ssd.Samsung970Pro()}
	results := map[string][]replay.Result{}
	order := []string{"baseline", "random", "c3", "linnos", "heimdall", "hedging"}
	for i := 0; i < scale.Experiments; i++ {
		p := makePair(i, scale, devices)
		hm, lm, err := p.trainModels(scale)
		if err != nil {
			continue
		}
		sels := []policy.Selector{
			policy.Baseline{},
			policy.NewRandom(p.seed),
			policy.C3{},
			&policy.LinnOS{Models: lm},
			&policy.Heimdall{Models: hm},
			policy.NewHedging(2 * time.Millisecond),
		}
		for _, sel := range sels {
			results[sel.Name()] = append(results[sel.Name()], p.run(sel))
		}
	}
	t := Table{
		Title:   "Fig 11 — large-scale evaluation (read latency, averaged over experiments)",
		Columns: latCols,
		Note:    "heimdall should post the lowest average; hedging wins only at the extreme tail at a large average cost",
	}
	for _, name := range order {
		if rs := results[name]; len(rs) > 0 {
			t.Rows = append(t.Rows, Row{name, latRow(rs)})
		}
	}
	return t
}

// Fig12 is the kernel-level setting: heterogeneous consumer SSDs (Intel
// DC-S3610 + Samsung PM961) on an MSR-style trace.
func Fig12(scale Scale) Table {
	devices := []ssd.Config{ssd.IntelDCS3610(), ssd.SamsungPM961()}
	results := map[string][]replay.Result{}
	order := []string{"baseline", "random", "c3", "linnos", "linnos+hedge", "heimdall"}
	for i := 0; i < scale.Experiments; i++ {
		p := makePair(i, scale, devices)
		hm, lm, err := p.trainModels(scale)
		if err != nil {
			continue
		}
		sels := []policy.Selector{
			policy.Baseline{},
			policy.NewRandom(p.seed),
			policy.C3{},
			&policy.LinnOS{Models: lm},
			&policy.LinnOS{Models: lm, Hedge: 2 * time.Millisecond},
			&policy.Heimdall{Models: hm},
		}
		for _, sel := range sels {
			results[sel.Name()] = append(results[sel.Name()], p.run(sel))
		}
	}
	t := Table{
		Title:   "Fig 12 — kernel-level setting: heterogeneous consumer SSD pair",
		Columns: latCols,
		Note:    "heimdall holds the lowest average on heterogeneous devices (the paper reports 38-48% over non-baseline)",
	}
	for _, name := range order {
		if rs := results[name]; len(rs) > 0 {
			t.Rows = append(t.Rows, Row{name, latRow(rs)})
		}
	}
	return t
}
