// Package experiments regenerates every table and figure of the paper's
// evaluation (§6-§8). Each FigNN function runs one experiment at a given
// Scale and returns a printable result; cmd/heimdall-bench exposes them as
// subcommands and the repository-root benchmarks time them.
//
// Scale exists because the paper's full evaluation (500 experiments over 2TB
// of traces) is hours of compute: benchmarks run SmallScale, the CLI
// defaults to MediumScale, and flags raise it further. The *shape* of every
// result is scale-invariant; EXPERIMENTS.md records a full run.
package experiments

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/iolog"
	"repro/internal/parallel"
	"repro/internal/ssd"
	"repro/internal/trace"
)

// Scale sets the experiment sizes.
type Scale struct {
	Seed int64
	// TraceDur is the length of each generated trace window (the paper caps
	// windows at 3 minutes).
	TraceDur time.Duration
	// Datasets is how many random datasets accuracy experiments average
	// over (the paper uses 50-100).
	Datasets int
	// Experiments is the number of replay experiments for Fig. 10-12 (the
	// paper's headline number is 500).
	Experiments int
	// Epochs and MaxTrainSamples bound each model training run.
	Epochs          int
	MaxTrainSamples int
	// AutoMLTrials bounds the per-family random search of Fig. 18.
	AutoMLTrials int
	// Workers bounds the experiment harness's worker pool (0 means
	// GOMAXPROCS). Every parallelized experiment pre-draws its random
	// decisions serially and collects results by index, so any worker count
	// produces byte-identical tables (see internal/parallel).
	Workers int
}

// SmallScale is sized for unit tests and `go test -bench`.
func SmallScale() Scale {
	return Scale{
		Seed: 1, TraceDur: 2 * time.Second, Datasets: 3, Experiments: 2,
		Epochs: 6, MaxTrainSamples: 6000, AutoMLTrials: 2,
	}
}

// MediumScale is the CLI default: minutes of compute, stable shapes.
func MediumScale() Scale {
	return Scale{
		Seed: 1, TraceDur: 8 * time.Second, Datasets: 10, Experiments: 10,
		Epochs: 15, MaxTrainSamples: 30000, AutoMLTrials: 6,
	}
}

// FullScale approximates the paper's setup. Expect hours.
func FullScale() Scale {
	return Scale{
		Seed: 1, TraceDur: 30 * time.Second, Datasets: 50, Experiments: 500,
		Epochs: 25, MaxTrainSamples: 50000, AutoMLTrials: 16,
	}
}

func (s Scale) coreConfig(seed int64) core.Config {
	cfg := core.DefaultConfig(seed)
	cfg.Epochs = s.Epochs
	cfg.MaxTrainSamples = s.MaxTrainSamples
	return cfg
}

// Dataset is one (workload window, device) pair with a training log and a
// held-out test log collected on a fresh device of the same model — the
// 50:50 methodology of §6.
type Dataset struct {
	Name      string
	Device    ssd.Config
	TrainLog  []iolog.Record
	TestReads []iolog.Record
	TestGT    []int // simulator ground truth for the test reads
}

// poolAttempts is how many style/augmentation redraws a dataset gets before
// the pool accepts a degenerate window.
const poolAttempts = 6

// poolDraw carries every random decision one dataset may consume, pre-drawn
// serially from the pool's shared stream. Pre-drawing decouples the stream
// from how many attempts a dataset actually uses (and from worker
// scheduling), so dataset i is a pure function of (scale, i, draw) and the
// fan-out below is deterministic at any worker count.
type poolDraw struct {
	augIdx [poolAttempts]int
	util   [poolAttempts]float64
}

// Pool builds n datasets by rotating workload styles, augmentations
// (§6.1's five functions), and device models, deterministically in seed.
// Dataset generation (trace synthesis + two device replays each) dominates
// experiment setup time, so datasets are built on scale.Workers goroutines.
//
// Each dataset's request rate is normalized so the post-augmentation read
// load sits at a sampled 25-55% of the device's channel capacity. The style
// defaults are calibrated for the fast NVMe parts; replaying them unscaled
// against a 4-channel SATA drive (or resized 4x) would saturate the device
// permanently, a regime where no admission policy — and no labeling — means
// anything. Operators match workloads to devices; so does the pool.
func Pool(n int, scale Scale) []Dataset {
	devices := ssd.Models()
	augs := trace.StandardAugmentations()
	rng := rand.New(rand.NewSource(scale.Seed * 7919))
	draws := make([]poolDraw, n)
	for i := range draws {
		for a := 0; a < poolAttempts; a++ {
			draws[i].augIdx[a] = rng.Intn(len(augs))
			draws[i].util[a] = 0.25 + 0.3*rng.Float64()
		}
	}
	out := make([]Dataset, n)
	parallel.ForEach(parallel.Workers(scale.Workers), n, func(i int) {
		out[i] = buildDataset(i, scale, devices, augs, draws[i])
	})
	return out
}

// buildDataset generates dataset i from its pre-drawn decisions. A window
// can come out degenerate (no slow period at all in either half) — a real
// operator would log longer; we redraw the style/augmentation combination a
// few times instead.
func buildDataset(i int, scale Scale, devices []ssd.Config, augs []trace.Augmentation, draw poolDraw) Dataset {
	var ds Dataset
	for attempt := 0; attempt < poolAttempts; attempt++ {
		styles := trace.Styles(scale.Seed+int64(i)*31+int64(attempt)*1009, scale.TraceDur)
		style := styles[(i+attempt)%len(styles)]
		aug := augs[draw.augIdx[attempt]]
		dev := devices[(i+attempt)%len(devices)]

		// Normalize load to the sampled utilization, clamped so every
		// dataset keeps a workable request count.
		targetUtil := draw.util[attempt]
		rerate := aug.Rerate
		if rerate <= 0 {
			rerate = 1
		}
		eff := style.MeanIOPS * rerate * targetUtil / estimateUtil(style, aug, dev)
		if eff < 800 {
			eff = 800
		} else if eff > 25000 {
			eff = 25000
		}
		style.MeanIOPS = eff / rerate

		full := aug.Apply(trace.Generate(style))
		train, test := full.SplitHalf()

		devA := ssd.New(dev, scale.Seed+int64(i)*101+int64(attempt))
		trainLog := iolog.Collect(train, devA)
		devB := ssd.New(dev, scale.Seed+int64(i)*101+int64(attempt)+50)
		testLog := iolog.Collect(test, devB)
		testReads := iolog.Reads(testLog)
		testGT := iolog.GroundTruth(testReads)

		ds = Dataset{
			Name:      fmt.Sprintf("%s+%s@%s", style.Name, aug.Name, dev.Name),
			Device:    dev,
			TrainLog:  trainLog,
			TestReads: testReads,
			TestGT:    testGT,
		}
		trainGT := iolog.GroundTruth(iolog.Reads(trainLog))
		if hasContention(trainGT) && hasContention(testGT) {
			break
		}
	}
	return ds
}

// hasContention reports whether at least ~0.3% of the reads saw a busy
// period — below that, there is nothing for labeling or a model to learn.
func hasContention(gt []int) bool {
	if len(gt) == 0 {
		return false
	}
	n := 0
	for _, g := range gt {
		n += g
	}
	return float64(n)/float64(len(gt)) > 0.003
}

// estimateUtil predicts the fraction of the device's read-page capacity the
// style would consume after augmentation.
func estimateUtil(style trace.GenConfig, aug trace.Augmentation, dev ssd.Config) float64 {
	channels := dev.Channels
	if channels == 0 {
		channels = 8
	}
	readPage := dev.ReadPage
	if readPage == 0 {
		readPage = 75 * time.Microsecond
	}
	pagesCap := float64(channels) / readPage.Seconds()

	var meanSize, totalW float64
	for _, b := range style.Sizes {
		meanSize += float64(b.Size) * b.Weight
		totalW += b.Weight
	}
	if totalW > 0 {
		meanSize /= totalW
	} else {
		meanSize = 4096
	}
	resize := aug.Resize
	if resize <= 0 {
		resize = 1
	}
	meanSize *= resize
	if meanSize > 2<<20 {
		meanSize = 2 << 20
	}
	pagesPerIO := meanSize/4096 + 0.5
	rerate := aug.Rerate
	if rerate <= 0 {
		rerate = 1
	}
	readPages := style.MeanIOPS * rerate * style.ReadRatio * pagesPerIO
	util := readPages / pagesCap
	if util <= 0 {
		return 1e-9
	}
	return util
}

// Row is one line of a result table.
type Row struct {
	Label  string
	Values []float64
}

// Table is a generic experiment result: a header plus rows, with a
// free-form note recording what to look for.
type Table struct {
	Title   string
	Columns []string
	Rows    []Row
	Note    string
}

// String renders the table for terminal output.
func (t Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "## %s\n", t.Title)
	width := 24
	fmt.Fprintf(&b, "%-*s", width, "")
	for _, c := range t.Columns {
		fmt.Fprintf(&b, "%14s", c)
	}
	b.WriteByte('\n')
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%-*s", width, r.Label)
		for _, v := range r.Values {
			switch {
			case v == float64(int64(v)) && v < 1e7:
				fmt.Fprintf(&b, "%14.0f", v)
			case v >= 1000:
				fmt.Fprintf(&b, "%14.1f", v)
			default:
				fmt.Fprintf(&b, "%14.4f", v)
			}
		}
		b.WriteByte('\n')
	}
	if t.Note != "" {
		fmt.Fprintf(&b, "note: %s\n", t.Note)
	}
	return b.String()
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
