package experiments

import (
	"time"

	"repro/internal/core"
	"repro/internal/iolog"
	"repro/internal/ssd"
	"repro/internal/trace"
)

// Fig17 is the long-deployment drift experiment (§7): a Tencent-style
// write-heavy workload with slow input drift runs for many monitoring
// windows; "first-N" strategies train once on the first N windows, while
// the retraining policy retrains on the last window whenever windowed
// accuracy drops below 80%.
//
// Time scaling: the paper monitors an 8-hour trace in 10-minute windows
// (48 windows). We keep the 48-window structure but shrink the window to
// TraceDur/8 of simulated time, which preserves the drift dynamics (the
// generator's DriftPeriod scales along).
func Fig17(scale Scale) Table {
	const windows = 24
	window := scale.TraceDur / 2
	if window < time.Second {
		window = time.Second
	}
	total := window * time.Duration(windows+1)

	gen := trace.TencentStyle(scale.Seed, total)
	gen.DriftPeriod = total / 3 // a few full drift cycles across the run
	long := trace.Generate(gen)

	// One continuous device run, chopped into windows afterwards.
	dev := ssd.New(ssd.Samsung970Pro(), scale.Seed)
	log := iolog.Collect(long, dev)

	winLogs := make([][]iolog.Record, 0, windows+1)
	start := 0
	for w := 0; w <= windows; w++ {
		end := start
		limit := int64(w+1) * int64(window)
		for end < len(log) && log[end].Arrival < limit {
			end++
		}
		winLogs = append(winLogs, log[start:end])
		start = end
	}

	strategies := []struct {
		name       string
		trainWins  int
		retraining bool
	}{
		{"first-1w", 1, false},
		{"first-3w", 3, false},
		{"first-9w", 9, false},
		{"retrain<80%", 1, true},
	}

	t := Table{
		Title:   "Fig 17 — long-term deployment: windowed accuracy under drift",
		Columns: []string{"mean-acc", "min-acc", "max-acc", "retrains"},
		Note:    "train-once accuracy fluctuates with drift; the retraining policy holds it above the threshold",
	}

	for _, s := range strategies {
		var trainSet []iolog.Record
		for w := 0; w < s.trainWins && w < len(winLogs); w++ {
			trainSet = append(trainSet, winLogs[w]...)
		}
		cfg := scale.coreConfig(scale.Seed)
		model, err := core.Train(trainSet, cfg)
		if err != nil {
			t.Rows = append(t.Rows, Row{s.name + " (failed)", []float64{0, 0, 0, 0}})
			continue
		}
		monitor := core.NewMonitor(core.DefaultRetrainPolicy())
		var accs []float64
		retrains := 0
		for w := s.trainWins; w < len(winLogs); w++ {
			reads := iolog.Reads(winLogs[w])
			if len(reads) == 0 {
				continue
			}
			gt := iolog.GroundTruth(reads)
			acc := model.WindowAccuracy(reads, gt)
			accs = append(accs, acc)
			if s.retraining && monitor.ShouldRetrain(int64(w)*int64(time.Hour), acc) {
				if m2, err := model.Retrain(winLogs[w]); err == nil {
					model = m2
					retrains++
				}
			}
		}
		minA, maxA := 1.0, 0.0
		for _, a := range accs {
			if a < minA {
				minA = a
			}
			if a > maxA {
				maxA = a
			}
		}
		if len(accs) == 0 {
			minA, maxA = 0, 0
		}
		t.Rows = append(t.Rows, Row{s.name, []float64{mean(accs), minA, maxA, float64(retrains)}})
	}
	return t
}

// Fig17Series returns the per-window accuracy series for plotting (used by
// the retraining example).
func Fig17Series(scale Scale, retraining bool) []core.Drift {
	const windows = 24
	window := scale.TraceDur / 2
	if window < time.Second {
		window = time.Second
	}
	total := window * time.Duration(windows+1)
	gen := trace.TencentStyle(scale.Seed, total)
	gen.DriftPeriod = total / 3
	long := trace.Generate(gen)
	dev := ssd.New(ssd.Samsung970Pro(), scale.Seed)
	log := iolog.Collect(long, dev)

	var out []core.Drift
	var firstWin []iolog.Record
	cut := int64(window)
	i := 0
	for i < len(log) && log[i].Arrival < cut {
		i++
	}
	firstWin = log[:i]
	model, err := core.Train(firstWin, scale.coreConfig(scale.Seed))
	if err != nil {
		return nil
	}
	monitor := core.NewMonitor(core.DefaultRetrainPolicy())
	start := i
	for w := 1; w <= windows; w++ {
		limit := int64(w+1) * int64(window)
		end := start
		for end < len(log) && log[end].Arrival < limit {
			end++
		}
		reads := iolog.Reads(log[start:end])
		if len(reads) == 0 {
			start = end
			continue
		}
		gt := iolog.GroundTruth(reads)
		acc := model.WindowAccuracy(reads, gt)
		d := core.Drift{At: time.Duration(w) * window, Accuracy: acc}
		if retraining && monitor.ShouldRetrain(int64(w)*int64(time.Hour), acc) {
			if m2, err := model.Retrain(log[start:end]); err == nil {
				model = m2
				d.Retrained = true
			}
		}
		out = append(out, d)
		start = end
	}
	return out
}
