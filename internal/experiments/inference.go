package experiments

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/linnos"
	"repro/internal/nn"
)

// syntheticQuantNet builds a Heimdall-shaped quantized network with the
// given input width (11 for per-I/O, 10+P for joint size P). Inference
// latency depends only on the geometry, so random weights suffice.
func syntheticQuantNet(inputs int, seed int64) *nn.QuantNetwork {
	net, err := nn.New(nn.Config{
		Inputs: inputs,
		Layers: []nn.LayerSpec{{Units: 128, Act: nn.ReLU}, {Units: 16, Act: nn.ReLU}, {Units: 1, Act: nn.Sigmoid}},
		Seed:   seed,
	})
	if err != nil {
		panic(err)
	}
	q, err := net.Quantize()
	if err != nil {
		panic(err)
	}
	return q
}

// MeasureInference times one quantized inference for the given input width,
// in nanoseconds per call.
//
// Audited wall-clock use: this IS the benchmark — the reported number is a
// measured wall-clock latency (Fig 15/16 columns), not simulated time.
//
//heimdall:walltime
func MeasureInference(inputs int, seed int64) float64 {
	q := syntheticQuantNet(inputs, seed)
	x := make([]float64, inputs)
	rng := rand.New(rand.NewSource(seed))
	for i := range x {
		x[i] = rng.Float64()
	}
	cur := make([]int64, q.ScratchSize())
	next := make([]int64, q.ScratchSize())
	// Warm up, then measure.
	for i := 0; i < 1000; i++ {
		q.PredictInto(x, cur, next)
	}
	const iters = 20000
	start := time.Now()
	for i := 0; i < iters; i++ {
		q.PredictInto(x, cur, next)
	}
	return float64(time.Since(start).Nanoseconds()) / iters
}

// jointWidth is the joint-model input width for joint size p: the 10 shared
// head features plus p sizes.
func jointWidth(p int) int { return 10 + p }

// Fig15a models inference-server throughput stability: Poisson I/O arrivals
// at a swept rate are served by one core running the (joint) model; the
// reported number is mean per-I/O inference turnaround (queueing included).
//
// The load axis is expressed in multiples of the measured joint=1 capacity
// (1/inference-time). The paper's absolute numbers (0.5 mIOPS without joint
// inference, 4 mIOPS at joint=9) come from 0.08µs -O3 C inference; Go
// inference is slower, so absolute rates shift while the 8x stability gain
// — the figure's claim — is preserved. Column labels carry the absolute
// mIOPS for this machine.
func Fig15a(scale Scale) Table {
	multiples := []float64{0.5, 1, 1.5, 2, 3, 4, 6, 8}
	joints := []int{1, 3, 5, 7, 9}
	svc1 := MeasureInference(jointWidth(1), scale.Seed)
	cap1 := 1e9 / svc1 // IOPS one core sustains at joint=1
	t := Table{
		Title:   "Fig 15a — inference latency (µs, one core) vs offered load (x joint=1 capacity)",
		Columns: make([]string, len(multiples)),
		Note:    "joint=1 saturates at 1x its capacity; joint=9 stays stable to ~8x — the paper's 0.5 to 4 mIOPS gain",
	}
	for i, m := range multiples {
		t.Columns[i] = fmt.Sprintf("x%.1f(%.2fM)", m, m*cap1/1e6)
	}
	for _, p := range joints {
		svc := MeasureInference(jointWidth(p), scale.Seed) // ns per inference (serves p I/Os)
		vals := make([]float64, len(multiples))
		for i, m := range multiples {
			vals[i] = simulateInferenceQueue(m*cap1, svc, p, scale.Seed+int64(p))
		}
		t.Rows = append(t.Rows, Row{fmt.Sprintf("joint=%d", p), vals})
	}
	return t
}

// simulateInferenceQueue runs a short single-server queue simulation:
// arrivals at rate perSec, groups of p I/Os served together in svcNs.
// Returns the mean per-I/O turnaround in microseconds, saturating at a cap
// when the server cannot keep up.
func simulateInferenceQueue(perSec, svcNs float64, p int, seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	const horizon = 20e6    // 20ms of simulated arrivals
	const overloadCap = 1e9 // overload sentinel accumulator guard
	var now, serverFree, totalWait float64
	var served int
	var group []float64
	for now < horizon {
		now += rng.ExpFloat64() / perSec * 1e9
		group = append(group, now)
		if len(group) < p {
			continue
		}
		start := group[len(group)-1] // inference fires when the group is full
		if serverFree > start {
			start = serverFree
		}
		done := start + svcNs
		serverFree = done
		for _, arr := range group {
			totalWait += done - arr
			served++
		}
		group = group[:0]
		if totalWait > overloadCap*float64(served+1) {
			break
		}
	}
	if served == 0 {
		return 0
	}
	us := totalWait / float64(served) / 1e3
	if us > 100 {
		us = 100 // report saturation as a flat cap, like the figure's axis
	}
	return us
}

// Fig15b trains joint models at each granularity and reports the accuracy
// distribution across datasets.
func Fig15b(scale Scale) Table {
	ds := Pool(scale.Datasets, scale)
	t := Table{
		Title:   "Fig 15b — accuracy distribution vs joint size",
		Columns: []string{"p25", "median", "p75"},
		Note:    "accuracy declines gently with joint size (the paper: 88% to 81% median from 1 to 9)",
	}
	for _, p := range []int{1, 3, 5, 7, 9} {
		jp := p
		accs := trainEval(ds, scale, func(c *core.Config) { c.JointSize = jp })
		sort.Float64s(accs)
		q := func(f float64) float64 {
			if len(accs) == 0 {
				return 0
			}
			i := int(f * float64(len(accs)-1))
			return accs[i]
		}
		t.Rows = append(t.Rows, Row{fmt.Sprintf("joint=%d", p), []float64{q(0.25), q(0.5), q(0.75)}})
	}
	return t
}

// GPU cost model for Fig 15c (see DESIGN.md substitutions): a batched GPU
// inference pays host-to-GPU transfer plus kernel launch, then amortizes
// per-item work massively; LAKE adds its kernel-management overhead on top.
const (
	gpuTransferNs  = 25_000 // host->GPU->host round trip
	gpuLaunchNs    = 10_000
	gpuPerItemNs   = 12 // per-I/O marginal work at batch parallelism
	lakeOverheadNs = 8_000
)

// Fig15c compares LAKE GPU batching against Heimdall GPU batch, CPU batch,
// and CPU joint inference as the number of simultaneously-predicted I/Os
// grows.
func Fig15c(scale Scale) Table {
	sizes := []int{1, 2, 4, 8, 16, 32, 64, 128}
	cpuSingle := MeasureInference(11, scale.Seed)
	t := Table{
		Title:   "Fig 15c — inference latency (ms) vs number of I/Os predicted together",
		Columns: make([]string, len(sizes)),
		Note:    "CPU joint stays near-flat and beats GPU batching by ~10x at every size; CPU batch grows linearly",
	}
	for i, n := range sizes {
		t.Columns[i] = fmt.Sprintf("n=%d", n)
	}
	rows := map[string][]float64{
		"lake-gpu-batch":     {},
		"heimdall-gpu-batch": {},
		"heimdall-cpu-batch": {},
		"heimdall-cpu-joint": {},
	}
	for _, n := range sizes {
		gpu := float64(gpuTransferNs+gpuLaunchNs) + float64(n)*gpuPerItemNs
		rows["lake-gpu-batch"] = append(rows["lake-gpu-batch"], (gpu+lakeOverheadNs)/1e6)
		rows["heimdall-gpu-batch"] = append(rows["heimdall-gpu-batch"], gpu/1e6)
		rows["heimdall-cpu-batch"] = append(rows["heimdall-cpu-batch"], float64(n)*cpuSingle/1e6)
		joint := MeasureInference(jointWidth(n), scale.Seed+int64(n))
		rows["heimdall-cpu-joint"] = append(rows["heimdall-cpu-joint"], joint/1e6)
	}
	for _, name := range []string{"lake-gpu-batch", "heimdall-gpu-batch", "heimdall-cpu-batch", "heimdall-cpu-joint"} {
		t.Rows = append(t.Rows, Row{name, rows[name]})
	}
	return t
}

// Fig16 reports model memory and CPU overhead (§6.6).
func Fig16(scale Scale) Table {
	heim, err := nn.New(nn.Config{
		Inputs: 11,
		Layers: []nn.LayerSpec{{Units: 128, Act: nn.ReLU}, {Units: 16, Act: nn.ReLU}, {Units: 1, Act: nn.Sigmoid}},
		Seed:   scale.Seed,
	})
	if err != nil {
		panic(err)
	}
	lin, err := nn.New(nn.Config{
		Inputs: linnos.Inputs,
		Layers: []nn.LayerSpec{{Units: 256, Act: nn.ReLU}, {Units: 2, Act: nn.Softmax}},
		Seed:   scale.Seed,
	})
	if err != nil {
		panic(err)
	}
	// CPU overhead per I/O: multiplications x inferences per I/O. LinnOS
	// infers once per 4KB page; measure the mean page count on a dataset.
	ds := Pool(1, scale)
	var pages, ios float64
	for _, r := range ds[0].TestReads {
		pages += float64(linnos.InferencesFor(r.Size))
		ios++
	}
	pagesPerIO := pages / ios
	linCPU := float64(lin.MulCount()) * pagesPerIO
	heimCPU := float64(heim.MulCount())
	j3 := float64(128*jointWidth(3)+128*16+16) / 3 // one inference per 3 I/Os

	hw, hb := heim.ParamCount()
	lw, lb := lin.ParamCount()
	return Table{
		Title:   "Fig 16 — memory and CPU overhead",
		Columns: []string{"params", "memKB", "mulsPerIO", "cpuNorm"},
		Rows: []Row{
			{"linnos", []float64{float64(lw + lb), float64(lin.MemoryBytes()) / 1024, linCPU, 1}},
			{"heimdall", []float64{float64(hw + hb), float64(heim.MemoryBytes()) / 1024, heimCPU, heimCPU / linCPU}},
			{"heimdall-j3", []float64{float64(hw + hb), float64(heim.MemoryBytes()) / 1024, j3, j3 / linCPU}},
		},
		Note: "targets: 28KB vs 68KB memory, ~2.4x fewer multiplications, j3 ~85% less CPU than LinnOS",
	}
}

// TrainTime measures the preprocessing and training rate (§6.7), normalized
// to seconds per 1M I/Os.
func TrainTime(scale Scale) Table {
	ds := Pool(1, scale)
	cfg := scale.coreConfig(scale.Seed)
	m, err := core.Train(ds[0].TrainLog, cfg)
	if err != nil {
		return Table{Title: "train-time — failed", Note: err.Error()}
	}
	rep := m.Report()
	perM := 1e6 / float64(rep.Samples)
	return Table{
		Title:   "§6.7 — training time (normalized to 1M I/Os)",
		Columns: []string{"samples", "preprocess(s)", "train(s)", "pre/1M(s)", "train/1M(s)"},
		Rows: []Row{{
			"heimdall", []float64{
				float64(rep.Samples),
				rep.PreprocessTime.Seconds(),
				rep.TrainTime.Seconds(),
				rep.PreprocessTime.Seconds() * perM,
				rep.TrainTime.Seconds() * perM * float64(rep.Samples) / float64(min(rep.Samples, cfg.MaxTrainSamples)),
			},
		}},
		Note: "the paper: 16.8s preprocessing (CPU) + 3.7s training (GPU) per 1M I/Os; ours trains on CPU",
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
