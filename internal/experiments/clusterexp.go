package experiments

import (
	"fmt"

	"repro/internal/cluster"
)

// Fig13 runs the wide-scale Ceph-like evaluation: latency distributions
// under SF=1 and SF=10, and Heimdall's tail reduction vs random across
// scaling factors.
func Fig13(scale Scale) Table {
	cfg := cluster.DefaultConfig(scale.Seed)
	cfg.Duration = scale.TraceDur
	model, err := cluster.TrainModel(cfg)
	if err != nil {
		return Table{Title: "Fig 13 — failed", Note: err.Error()}
	}

	t := Table{
		Title:   "Fig 13 — wide-scale (Ceph-like) evaluation",
		Columns: []string{"avg(ms)", "p50", "p75", "p90", "p95", "p99"},
		Note:    "heimdall cuts the fan-out-amplified tail; reductions vs random grow with SF",
	}
	msRow := func(r cluster.Result) []float64 {
		return []float64{
			r.UserLat.Mean.Seconds() * 1000,
			r.UserLat.P50.Seconds() * 1000,
			r.UserLat.Percentile(75).Seconds() * 1000,
			r.UserLat.P90.Seconds() * 1000,
			r.UserLat.P95.Seconds() * 1000,
			r.UserLat.P99.Seconds() * 1000,
		}
	}

	for _, sf := range []int{1, 10} {
		c := cfg
		c.SF = sf
		c.RequestRate = cfg.RequestRate / float64(sf) // hold sub-request load constant
		for _, pol := range []cluster.Policy{cluster.Baseline, cluster.Random, cluster.Heimdall} {
			res := cluster.Run(c, pol, model)
			t.Rows = append(t.Rows, Row{
				fmt.Sprintf("SF=%d %s", sf, pol), msRow(res),
			})
		}
	}

	// Tail-latency reduction of Heimdall vs random at p50..p95 across SFs
	// (Fig. 13c).
	red := Table{}
	_ = red
	for _, sf := range []int{1, 2, 5, 10} {
		c := cfg
		c.SF = sf
		c.RequestRate = cfg.RequestRate / float64(sf)
		rnd := cluster.Run(c, cluster.Random, model)
		hei := cluster.Run(c, cluster.Heimdall, model)
		reduction := func(p float64) float64 {
			r := rnd.UserLat.Percentile(p).Seconds()
			h := hei.UserLat.Percentile(p).Seconds()
			if r <= 0 {
				return 0
			}
			return (r - h) / r * 100
		}
		t.Rows = append(t.Rows, Row{
			fmt.Sprintf("reduction%% SF=%d", sf),
			[]float64{0, reduction(50), reduction(75), reduction(90), reduction(95), reduction(99)},
		})
	}
	return t
}
