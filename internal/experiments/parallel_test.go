package experiments

import (
	"reflect"
	"testing"
)

// TestPoolParallelMatchesSerial asserts the dataset pool's determinism
// contract: augmentation choices and utilization targets are pre-drawn
// serially, so any worker count builds byte-identical datasets.
func TestPoolParallelMatchesSerial(t *testing.T) {
	serialScale := testScale()
	serialScale.Workers = 1
	serial := Pool(3, serialScale)
	for _, workers := range []int{2, 4} {
		scale := testScale()
		scale.Workers = workers
		par := Pool(3, scale)
		if len(par) != len(serial) {
			t.Fatalf("workers=%d: %d datasets != %d", workers, len(par), len(serial))
		}
		for i := range par {
			if !reflect.DeepEqual(par[i], serial[i]) {
				t.Fatalf("workers=%d: dataset %d (%s) differs from serial build", workers, i, serial[i].Name)
			}
		}
	}
}

// TestFig8ParallelMatchesSerial renders the full accuracy table serially and
// on 4 workers and requires the output bytes to match — the end-to-end check
// that per-dataset training, scoring, and reduction order are all independent
// of the fan-out.
func TestFig8ParallelMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("fig8 trains eight model families per dataset")
	}
	serialScale := testScale()
	serialScale.Workers = 1
	serial := Fig8(serialScale).String()

	parScale := testScale()
	parScale.Workers = 4
	par := Fig8(parScale).String()
	if par != serial {
		t.Fatalf("fig8 tables differ between worker counts:\nserial:\n%s\nparallel:\n%s", serial, par)
	}
}

// TestFig18ParallelMatchesSerial covers the doubly-nested fan-out (datasets x
// families): seeds derive from dataset and family indices, so the table must
// not depend on scheduling.
func TestFig18ParallelMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("fig18 runs the sixteen-family search per dataset")
	}
	scale := testScale()
	scale.AutoMLTrials = 1
	scale.Workers = 1
	serial := Fig18(scale).String()
	scale.Workers = 4
	par := Fig18(scale).String()
	if par != serial {
		t.Fatalf("fig18 tables differ between worker counts:\nserial:\n%s\nparallel:\n%s", serial, par)
	}
}
