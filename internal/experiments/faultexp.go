package experiments

import (
	"time"

	"repro/internal/fault"
	"repro/internal/policy"
	"repro/internal/replay"
	"repro/internal/ssd"
)

// faultScenario is one fault-injection configuration applied to the primary
// (heavy) device during the test replay. Windows are fractions of the test
// half so the scenarios scale with -dur.
type faultScenario struct {
	name  string
	build func(testDur time.Duration) []*fault.Schedule
}

func faultScenarios() []faultScenario {
	frac := func(d time.Duration, num, den int64) time.Duration {
		return d * time.Duration(num) / time.Duration(den)
	}
	return []faultScenario{
		{"healthy", func(time.Duration) []*fault.Schedule { return nil }},
		{"brownout", func(d time.Duration) []*fault.Schedule {
			return []*fault.Schedule{
				fault.NewSchedule().Brownout(frac(d, 1, 4), frac(d, 1, 2), 8),
			}
		}},
		{"read-errors", func(d time.Duration) []*fault.Schedule {
			return []*fault.Schedule{
				fault.NewSchedule().ReadErrors(frac(d, 1, 4), frac(d, 1, 2), 0.4),
			}
		}},
		{"offline", func(d time.Duration) []*fault.Schedule {
			return []*fault.Schedule{
				fault.NewSchedule().Offline(frac(d, 2, 5), frac(d, 1, 5)),
			}
		}},
	}
}

// runFaults replays the test halves with the scenario's fault schedules and
// client-side timeouts armed (reads retry on the peer after 2ms).
func (p pairExperiment) runFaults(sel policy.Selector, faults []*fault.Schedule) replay.Result {
	return replay.Run(p.testHalfs, replay.Options{
		Devices:     p.devices,
		Seed:        p.seed + 999,
		Selector:    sel,
		Faults:      faults,
		ReadTimeout: 2 * time.Millisecond,
	})
}

// testDur returns the wall-clock span of the test halves.
func (p pairExperiment) testDur() time.Duration {
	var max int64
	for _, t := range p.testHalfs {
		if n := t.Len(); n > 0 && t.Reqs[n-1].Arrival > max {
			max = t.Reqs[n-1].Arrival
		}
	}
	return time.Duration(max)
}

// Faults evaluates degraded-mode behaviour: each fault scenario hits the
// primary replica mid-replay while four policies — always-admit, hedging,
// plain Heimdall admission, and circuit-breaker-guarded Heimdall — try to
// keep the tail flat. Counters show the retry/timeout machinery at work.
func Faults(scale Scale) Table {
	devices := []ssd.Config{ssd.Samsung970Pro(), ssd.Samsung970Pro()}
	type cell struct {
		results []replay.Result
		trips   int
	}
	cells := map[string]*cell{}
	scenarios := faultScenarios()
	polNames := []string{"baseline", "hedging", "heimdall", "guarded"}
	for i := 0; i < scale.Experiments; i++ {
		p := makePair(i, scale, devices)
		hm, _, err := p.trainModels(scale)
		if err != nil {
			continue
		}
		dur := p.testDur()
		for _, sc := range scenarios {
			faults := sc.build(dur)
			sels := map[string]policy.Selector{
				"baseline": policy.Baseline{},
				"hedging":  policy.NewHedging(2 * time.Millisecond),
				"heimdall": &policy.Heimdall{Models: hm},
				"guarded":  policy.NewGuarded(&policy.Heimdall{Models: hm}, nil),
			}
			for _, name := range polNames {
				sel := sels[name]
				res := p.runFaults(sel, faults)
				key := sc.name + "/" + name
				if cells[key] == nil {
					cells[key] = &cell{}
				}
				cells[key].results = append(cells[key].results, res)
				if g, ok := sel.(*policy.Guarded); ok {
					cells[key].trips += g.Trips()
				}
			}
		}
	}
	t := Table{
		Title: "Faults — degraded-mode admission under injected device faults",
		Columns: []string{"avg(ms)", "p95", "p99", "p99.9",
			"retries", "timedout", "failed", "trips"},
		Note: "guarded heimdall should beat plain heimdall's extreme tail under brownout; failed stays near zero (bounded retries can exhaust inside error/offline windows); trips in the healthy row are the flooding guard firing during fault-free busy bursts",
	}
	for _, sc := range scenarios {
		for _, name := range polNames {
			c := cells[sc.name+"/"+name]
			if c == nil || len(c.results) == 0 {
				continue
			}
			row := faultRow(c.results)
			row = append(row, float64(c.trips)/float64(len(c.results)))
			t.Rows = append(t.Rows, Row{sc.name + "/" + name, row})
		}
	}
	return t
}

func faultRow(rs []replay.Result) []float64 {
	n := float64(len(rs))
	ms := func(f func(replay.Result) time.Duration) float64 {
		var s float64
		for _, r := range rs {
			s += f(r).Seconds() * 1000
		}
		return s / n
	}
	cnt := func(f func(replay.Result) int) float64 {
		var s int
		for _, r := range rs {
			s += f(r)
		}
		return float64(s) / n
	}
	return []float64{
		ms(func(r replay.Result) time.Duration { return r.ReadLat.Mean }),
		ms(func(r replay.Result) time.Duration { return r.ReadLat.P95 }),
		ms(func(r replay.Result) time.Duration { return r.ReadLat.P99 }),
		ms(func(r replay.Result) time.Duration { return r.ReadLat.P999 }),
		cnt(func(r replay.Result) int { return r.Retries }),
		cnt(func(r replay.Result) int { return r.TimedOut }),
		cnt(func(r replay.Result) int { return r.Failed }),
	}
}
