package experiments

import (
	"math"
	"time"

	"repro/internal/core"
	"repro/internal/drift"
	"repro/internal/feature"
	"repro/internal/iolog"
	"repro/internal/ssd"
	"repro/internal/trace"
)

// Fig17Ext extends the §7 long-deployment experiment with the retraining
// strategies §8 poses as open questions: never retrain, periodic retraining,
// the paper's accuracy-triggered policy (needs labels), and an input-drift
// trigger (PSI over the feature stream — works with per-request logging
// off, §7's deployment concern).
func Fig17Ext(scale Scale) Table {
	const windows = 24
	window := scale.TraceDur / 2
	if window < time.Second {
		window = time.Second
	}
	total := window * time.Duration(windows+1)

	gen := trace.TencentStyle(scale.Seed, total)
	gen.DriftPeriod = total / 3
	long := trace.Generate(gen)
	dev := ssd.New(ssd.Samsung970Pro(), scale.Seed)
	log := iolog.Collect(long, dev)

	winLogs := make([][]iolog.Record, 0, windows+1)
	start := 0
	for w := 0; w <= windows; w++ {
		end := start
		limit := int64(w+1) * int64(window)
		for end < len(log) && log[end].Arrival < limit {
			end++
		}
		winLogs = append(winLogs, log[start:end])
		start = end
	}

	strategies := []drift.Strategy{
		drift.Never{},
		drift.Periodic{Every: 6},
		drift.OnAccuracy{Below: 0.80},
		drift.OnInputDrift{},
	}

	t := Table{
		Title:   "Fig 17 extension — retraining strategies under drift",
		Columns: []string{"mean-acc", "min-acc", "retrains"},
		Note:    "both triggered strategies should beat never-retrain; the input-drift trigger needs no labels",
	}

	for _, strat := range strategies {
		model, err := core.Train(winLogs[0], scale.coreConfig(scale.Seed))
		if err != nil {
			t.Rows = append(t.Rows, Row{strat.Name() + " (failed)", []float64{0, 0, 0}})
			continue
		}
		detector := newDetectorFor(model, winLogs[0])
		var accs []float64
		retrains := 0
		for w := 1; w <= windows; w++ {
			reads := iolog.Reads(winLogs[w])
			if len(reads) == 0 {
				continue
			}
			gt := iolog.GroundTruth(reads)
			acc := model.WindowAccuracy(reads, gt)
			accs = append(accs, acc)

			inputDrift := false
			if detector != nil {
				for _, row := range feature.Extract(reads, model.Spec()) {
					detector.Observe(row)
				}
				inputDrift = detector.Drifted()
			}
			sig := acc
			if (strat.Name() == drift.OnInputDrift{}.Name()) {
				sig = math.NaN() // this strategy runs without labels
			}
			if strat.ShouldRetrain(w, sig, inputDrift) {
				if m2, err := model.Retrain(winLogs[w]); err == nil {
					model = m2
					detector = newDetectorFor(model, winLogs[w])
					retrains++
				}
			}
		}
		minA := 1.0
		for _, a := range accs {
			if a < minA {
				minA = a
			}
		}
		if len(accs) == 0 {
			minA = 0
		}
		t.Rows = append(t.Rows, Row{strat.Name(), []float64{mean(accs), minA, float64(retrains)}})
	}
	return t
}

func newDetectorFor(m *core.Model, trainWin []iolog.Record) *drift.InputDetector {
	reads := iolog.Reads(trainWin)
	if len(reads) == 0 {
		return nil
	}
	rows := feature.Extract(reads, m.Spec())
	d := drift.NewInputDetector(rows, 10)
	d.MinSamples = 300
	return d
}
