package experiments

import (
	"math"

	"repro/internal/automl"
	"repro/internal/core"
	"repro/internal/iolog"
	"repro/internal/parallel"
	"repro/internal/trace"
)

// fig18Result is one dataset's share of Fig18: per-family accuracy, the
// winning architecture vector, and Heimdall's score (NaN when training
// skipped the dataset).
type fig18Result struct {
	famAcc [automl.NumFamilies]float64
	winner []float64
	heim   float64
}

// Fig18 compares AutoML (random search over the 16-family zoo on raw
// features) against Heimdall: accuracy, modeled exploration time, and
// cross-dataset architecture similarity. Datasets fan out on scale.Workers
// goroutines; within each dataset the family searches fan out again (their
// seeds derive from the family index), so the table is identical at any
// worker count.
func Fig18(scale Scale) Table {
	ds := Pool(scale.Datasets, scale)
	workers := parallel.Workers(scale.Workers)

	perDS := parallel.Map(workers, len(ds), func(i int) fig18Result {
		d := ds[i]
		reads := iolog.Reads(d.TrainLog)
		// Raw features only: arrival gap, size, op — no derived runtime
		// features (§8.2).
		arr := make([]int64, len(reads))
		sizes := make([]int32, len(reads))
		ops := make([]int, len(reads))
		for j, r := range reads {
			arr[j] = r.Arrival
			sizes[j] = r.Size
			if r.Op == trace.Write {
				ops[j] = 1
			}
		}
		X := automl.RawFeatures(arr, sizes, ops)

		// AutoML trains on the raw train half and validates on the raw
		// features of the test half against ground truth.
		testArr := make([]int64, len(d.TestReads))
		testSizes := make([]int32, len(d.TestReads))
		testOps := make([]int, len(d.TestReads))
		for j, r := range d.TestReads {
			testArr[j] = r.Arrival
			testSizes[j] = r.Size
		}
		Xv := automl.RawFeatures(testArr, testSizes, testOps)
		trainGT := iolog.GroundTruth(reads)

		results, best := automl.FullSearch(X, trainGT, Xv, d.TestGT, scale.AutoMLTrials, scale.Seed+int64(i)*13, workers)
		var out fig18Result
		for f, r := range results {
			out.famAcc[f] = r.ROCAUC
		}
		out.winner = results[best].Arch
		out.heim = math.NaN()
		if m, err := core.Train(d.TrainLog, scale.coreConfig(scale.Seed+int64(i))); err == nil {
			out.heim = m.Evaluate(d.TestReads, d.TestGT).ROCAUC
		}
		return out
	})

	famAcc := make([][]float64, automl.NumFamilies)
	var winners [][]float64 // chosen architecture vector per dataset
	var heimAcc []float64
	for _, r := range perDS {
		for f := range r.famAcc {
			famAcc[f] = append(famAcc[f], r.famAcc[f])
		}
		winners = append(winners, r.winner)
		if !math.IsNaN(r.heim) {
			heimAcc = append(heimAcc, r.heim)
		}
	}

	// Cross-dataset cosine similarity of the winning architectures.
	var sims []float64
	for i := 0; i < len(winners); i++ {
		for j := i + 1; j < len(winners); j++ {
			sims = append(sims, automl.Cosine(winners[i], winners[j]))
		}
	}

	t := Table{
		Title:   "Fig 18 — AutoML vs Heimdall (raw-feature search over 16 families)",
		Columns: []string{"roc-auc", "explore(h)", "similarity"},
		Note:    "AutoML trails Heimdall on raw features, burns hours exploring, and picks divergent architectures (similarity << 1)",
	}
	for f := automl.Family(0); f < automl.NumFamilies; f++ {
		t.Rows = append(t.Rows, Row{f.String(), []float64{
			mean(famAcc[f]),
			perTrialHoursFor(f) * float64(scale.AutoMLTrials),
			0,
		}})
	}
	t.Rows = append(t.Rows, Row{"AutoML winner (mean)", []float64{meanWinner(famAcc, winners), 3.0 * float64(scale.AutoMLTrials) / 16, mean(sims)}})
	t.Rows = append(t.Rows, Row{"Heimdall", []float64{mean(heimAcc), 0, 1}})
	return t
}

func meanWinner(famAcc [][]float64, winners [][]float64) float64 {
	// Best family accuracy per dataset averaged — an optimistic view of
	// what AutoML would deploy.
	if len(famAcc) == 0 {
		return 0
	}
	n := 0
	for _, a := range famAcc {
		if len(a) > n {
			n = len(a)
		}
	}
	var out []float64
	for i := 0; i < n; i++ {
		best := 0.0
		for _, a := range famAcc {
			if i < len(a) && a[i] > best {
				best = a[i]
			}
		}
		out = append(out, best)
	}
	return mean(out)
}

// perTrialHoursFor re-exports the automl package's cost model for table
// rendering.
func perTrialHoursFor(f automl.Family) float64 {
	// Reconstruct via a standard 20-trial search quote scaled to one trial:
	// the automl package owns the numbers; mirror its API through
	// SearchFamily's ExploreHours on a trivial search.
	return automl.SearchFamily(f, [][]float64{{0}, {1}}, []int{0, 1}, [][]float64{{0}}, []int{0}, 1, 1, 1).ExploreHours
}
