package serve

import (
	"errors"
	"net"
	"time"
)

// ClientConfig tunes a ResilientClient. The zero value is a sane default;
// negative values disable the corresponding bound where noted.
type ClientConfig struct {
	// DialTimeout bounds connection establishment (default 2s; <0 = none).
	DialTimeout time.Duration
	// IOTimeout is the per-operation read/write deadline. A decide whose
	// response does not arrive within it is answered locally (default 1s;
	// <0 = no deadline — the fail-open guarantee then rests on the peer
	// closing the wire).
	IOTimeout time.Duration
	// BackoffBase seeds the capped exponential redial backoff (default
	// 10ms; <0 disables the gate so every operation may attempt a dial —
	// what a deterministic step-driven soak wants).
	BackoffBase time.Duration
	// BackoffMax caps the backoff (default 2s).
	BackoffMax time.Duration
	// MaxInflight bounds outstanding decides; excess sends are answered
	// locally instead of growing the tracking set (default 256).
	MaxInflight int
}

func (c ClientConfig) dialTimeout() time.Duration {
	if c.DialTimeout < 0 {
		return 0
	}
	if c.DialTimeout == 0 {
		return 2 * time.Second
	}
	return c.DialTimeout
}

func (c ClientConfig) ioTimeout() time.Duration {
	if c.IOTimeout < 0 {
		return 0
	}
	if c.IOTimeout == 0 {
		return time.Second
	}
	return c.IOTimeout
}

func (c ClientConfig) backoffBase() time.Duration {
	if c.BackoffBase == 0 {
		return 10 * time.Millisecond
	}
	return c.BackoffBase // negative disables the gate
}

func (c ClientConfig) backoffMax() time.Duration {
	if c.BackoffMax <= 0 {
		return 2 * time.Second
	}
	return c.BackoffMax
}

func (c ClientConfig) maxInflight() int {
	if c.MaxInflight <= 0 {
		return 256
	}
	return c.MaxInflight
}

// ClientCounters is a snapshot of a ResilientClient's degradation activity.
// LocalVerdicts is the one to alert on: it counts admissions the server
// never saw.
type ClientCounters struct {
	Dials            uint64 `json:"dials"`             // successful connections
	DialFailures     uint64 `json:"dial_failures"`     // failed dial attempts
	Reconnects       uint64 `json:"reconnects"`        // successful dials after a loss
	RemoteVerdicts   uint64 `json:"remote_verdicts"`   // verdicts from the server
	LocalVerdicts    uint64 `json:"local_verdicts"`    // fail-open FlagLocal verdicts
	DeadlineExpired  uint64 `json:"deadline_expired"`  // conns dropped on a blown deadline
	WireErrors       uint64 `json:"wire_errors"`       // conns dropped on any other error
	StaleVerdicts    uint64 `json:"stale_verdicts"`    // wire verdicts for ids no longer tracked
	DroppedCompletes uint64 `json:"dropped_completes"` // completions lost to a down wire
}

// ErrNoOutstanding reports a Recv with nothing in flight and nothing ready.
var ErrNoOutstanding = errors.New("serve: no outstanding requests")

// ResilientClient wraps Client with the availability half of the admission
// contract: every decide handed to it gets a verdict. Remote when the wire
// cooperates; otherwise a local fail-open admit carrying FlagLocal — a down
// predictor must degrade to the baseline (admit everything), never block an
// I/O. It reconnects with capped exponential backoff, bounds every dial,
// read, and write with deadlines, and tracks in-flight decides so a dead
// connection resolves all of them instead of stranding the caller.
//
// Like Client it is not safe for concurrent use: one ResilientClient per
// goroutine. Pipelined callers own the id space they pass to Send; Decide
// draws ids from an internal sequence, so don't mix both styles on one
// client unless the caller's ids can't collide with small integers.
type ResilientClient struct {
	addr string
	cfg  ClientConfig

	c             *Client // nil while disconnected
	everConnected bool
	backoff       time.Duration
	backoffUntil  time.Time

	seq       uint64
	inflight  []uint64
	ready     []Verdict
	readyHead int

	cnt ClientCounters
}

// DialResilient returns a client bound to addr. It never fails: a dead
// address yields a client that answers locally until the address heals.
func DialResilient(addr string, cfg ClientConfig) *ResilientClient {
	r := &ResilientClient{addr: addr, cfg: cfg, seq: 1}
	r.ensureConn()
	return r
}

// Counters returns a snapshot of the client's degradation counters.
func (r *ResilientClient) Counters() ClientCounters { return r.cnt }

// Pending returns how many verdicts the caller has yet to Recv (in flight
// on the wire plus already resolved and queued).
func (r *ResilientClient) Pending() int {
	return len(r.inflight) + (len(r.ready) - r.readyHead)
}

// Connected reports whether the client currently holds a live connection.
func (r *ResilientClient) Connected() bool { return r.c != nil }

// Close drops the connection. Outstanding decides resolve to local
// fail-open verdicts, still retrievable with Recv.
func (r *ResilientClient) Close() error {
	r.failInflight()
	if r.c == nil {
		return nil
	}
	err := r.c.Close()
	r.c = nil
	return err
}

// Send queues one decide (pipelined style). It never returns an error:
// a full in-flight window or a dead wire resolves the id locally, and a
// mid-send wire failure resolves every tracked id locally — Recv delivers
// them either way.
func (r *ResilientClient) Send(id uint64, device uint32, queueLen int, size int32) error {
	if len(r.inflight) >= r.cfg.maxInflight() || !r.ensureConn() {
		r.local(id)
		return nil
	}
	r.inflight = append(r.inflight, id)
	r.armWrite()
	if err := r.c.Send(id, device, queueLen, size); err != nil {
		r.dropConn(err)
	}
	return nil
}

// Flush pushes queued requests to the server. A write failure resolves all
// in-flight decides locally; Flush itself never errors.
func (r *ResilientClient) Flush() error {
	if r.c == nil {
		return nil
	}
	r.armWrite()
	if err := r.c.Flush(); err != nil {
		r.dropConn(err)
	}
	return nil
}

// Recv returns the next verdict — remote if the wire delivers one in time,
// local fail-open otherwise. It errors only when nothing is outstanding.
func (r *ResilientClient) Recv() (Verdict, error) {
	if v, ok := r.popReadyHead(); ok {
		return v, nil
	}
	if len(r.inflight) == 0 {
		return Verdict{}, ErrNoOutstanding
	}
	if v, ok := r.recvWire(); ok {
		return v, nil
	}
	// The wire died; recvWire resolved every in-flight id into ready.
	if v, ok := r.popReadyHead(); ok {
		return v, nil
	}
	return Verdict{}, ErrNoOutstanding
}

// Decide asks for one admission decision and always returns a verdict: the
// server's if the round trip beats the deadline, a FlagLocal admit if not.
func (r *ResilientClient) Decide(device uint32, queueLen int, size int32) Verdict {
	id := r.seq
	r.seq++
	_ = r.Send(id, device, queueLen, size)
	_ = r.Flush()
	if v, ok := r.takeReady(id); ok {
		return v
	}
	for len(r.inflight) > 0 {
		if v, ok := r.recvWire(); ok {
			if v.ID == id {
				return v
			}
			r.ready = append(r.ready, v)
			continue
		}
		if v, ok := r.takeReady(id); ok {
			return v
		}
	}
	if v, ok := r.takeReady(id); ok {
		return v
	}
	// Unreachable unless the id was never tracked; still fail open.
	r.cnt.LocalVerdicts++
	return Verdict{ID: id, Admit: true, Flags: FlagLocal}
}

// Submit is the windowed async counterpart of Decide: it queues one decide
// under an in-flight window and, when the window is full, flushes and reaps
// exactly one verdict (reaped=true). The fail-open contract is unchanged —
// a full window, a dead wire, or a mid-flight failure resolves decides to
// FlagLocal admits, and those surface through the same reap path as remote
// verdicts — so a caller looping over Submit plus a final Drain sees every
// id it ever submitted, exactly once, wire or no wire.
//
// window is clamped to [1, MaxInflight]; ids come from the same internal
// sequence Decide uses (don't mix with caller-owned Send ids).
func (r *ResilientClient) Submit(window int, device uint32, queueLen int, size int32) (id uint64, v Verdict, reaped bool) {
	if window < 1 {
		window = 1
	}
	if m := r.cfg.maxInflight(); window > m {
		window = m
	}
	id = r.seq
	r.seq++
	_ = r.Send(id, device, queueLen, size)
	if r.Pending() < window {
		return id, Verdict{}, false
	}
	_ = r.Flush()
	got, err := r.Recv()
	if err != nil {
		return id, Verdict{}, false
	}
	return id, got, true
}

// Drain flushes and resolves every outstanding decide, appending the
// verdicts (remote or local fail-open) to dst. It cannot error: a wire
// failure mid-drain converts the remaining in-flight ids to local admits.
func (r *ResilientClient) Drain(dst []Verdict) []Verdict {
	_ = r.Flush()
	for r.Pending() > 0 {
		v, err := r.Recv()
		if err != nil {
			break // nothing outstanding (Pending raced a compaction)
		}
		dst = append(dst, v)
	}
	return dst
}

// Complete reports one finished I/O (buffered until the next Flush, like
// Client.Complete). Completions are advisory feature updates, so a dead
// wire drops them — counted, never blocking.
func (r *ResilientClient) Complete(device uint32, latencyNs uint64, queueLen int, size int32) {
	if !r.ensureConn() {
		r.cnt.DroppedCompletes++
		return
	}
	r.armWrite()
	if err := r.c.Complete(device, latencyNs, queueLen, size); err != nil {
		r.cnt.DroppedCompletes++
		r.dropConn(err)
	}
}

// recvWire reads tracked verdicts off the wire. It returns (v, true) for a
// tracked remote verdict, or (zero, false) after a wire failure has
// resolved every in-flight id into ready.
func (r *ResilientClient) recvWire() (Verdict, bool) {
	for r.c != nil {
		r.armRead()
		v, err := r.c.Recv()
		if err != nil {
			r.dropConn(err)
			return Verdict{}, false
		}
		if r.track(v.ID) {
			r.cnt.RemoteVerdicts++
			return v, true
		}
		r.cnt.StaleVerdicts++
	}
	return Verdict{}, false
}

// dropConn closes a failed connection, classifies the failure, and resolves
// every in-flight decide to a local fail-open verdict.
func (r *ResilientClient) dropConn(err error) {
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		r.cnt.DeadlineExpired++
	} else {
		r.cnt.WireErrors++
	}
	if r.c != nil {
		_ = r.c.Close()
		r.c = nil
	}
	r.failInflight()
}

// failInflight resolves every tracked decide to a local fail-open verdict.
//
//heimdall:hotpath
func (r *ResilientClient) failInflight() {
	for _, id := range r.inflight {
		r.local(id)
	}
	r.inflight = r.inflight[:0]
}

// local queues a client-side fail-open admit for id.
//
//heimdall:hotpath
func (r *ResilientClient) local(id uint64) {
	r.cnt.LocalVerdicts++
	r.ready = append(r.ready, Verdict{ID: id, Admit: true, Flags: FlagLocal})
}

// track removes id from the in-flight set, reporting whether it was there.
//
//heimdall:hotpath
func (r *ResilientClient) track(id uint64) bool {
	for i, x := range r.inflight {
		if x == id {
			last := len(r.inflight) - 1
			r.inflight[i] = r.inflight[last]
			r.inflight = r.inflight[:last]
			return true
		}
	}
	return false
}

// popReadyHead pops the oldest queued verdict, compacting when drained.
func (r *ResilientClient) popReadyHead() (Verdict, bool) {
	if r.readyHead >= len(r.ready) {
		r.ready = r.ready[:0]
		r.readyHead = 0
		return Verdict{}, false
	}
	v := r.ready[r.readyHead]
	r.readyHead++
	if r.readyHead == len(r.ready) {
		r.ready = r.ready[:0]
		r.readyHead = 0
	}
	return v, true
}

// takeReady removes and returns the queued verdict for id, if present.
func (r *ResilientClient) takeReady(id uint64) (Verdict, bool) {
	for i := r.readyHead; i < len(r.ready); i++ {
		if r.ready[i].ID == id {
			v := r.ready[i]
			copy(r.ready[i:], r.ready[i+1:])
			r.ready = r.ready[:len(r.ready)-1]
			if r.readyHead >= len(r.ready) {
				r.ready = r.ready[:0]
				r.readyHead = 0
			}
			return v, true
		}
	}
	return Verdict{}, false
}

// ensureConn returns true with a live connection, dialing (subject to the
// backoff gate) if needed.
//
//heimdall:walltime
func (r *ResilientClient) ensureConn() bool {
	if r.c != nil {
		return true
	}
	if r.cfg.backoffBase() >= 0 && !r.backoffUntil.IsZero() && time.Now().Before(r.backoffUntil) {
		return false
	}
	c, err := DialTimeout(r.addr, r.cfg.dialTimeout())
	if err != nil {
		r.cnt.DialFailures++
		r.bumpBackoff()
		return false
	}
	r.cnt.Dials++
	if r.everConnected {
		r.cnt.Reconnects++
	}
	r.everConnected = true
	r.backoff = 0
	r.backoffUntil = time.Time{}
	r.c = c
	return true
}

// bumpBackoff doubles the redial gate up to the cap.
//
//heimdall:walltime
func (r *ResilientClient) bumpBackoff() {
	base := r.cfg.backoffBase()
	if base < 0 {
		return
	}
	if r.backoff == 0 {
		r.backoff = base
	} else {
		r.backoff *= 2
	}
	if capd := r.cfg.backoffMax(); r.backoff > capd {
		r.backoff = capd
	}
	r.backoffUntil = time.Now().Add(r.backoff)
}

// armWrite arms the per-operation write deadline.
//
//heimdall:walltime
func (r *ResilientClient) armWrite() {
	if d := r.cfg.ioTimeout(); d > 0 {
		_ = r.c.SetWriteDeadline(time.Now().Add(d))
	}
}

// armRead arms the per-operation read deadline.
//
//heimdall:walltime
func (r *ResilientClient) armRead() {
	if d := r.cfg.ioTimeout(); d > 0 {
		_ = r.c.SetReadDeadline(time.Now().Add(d))
	}
}
