package serve

import (
	"math"
	"time"

	"repro/internal/core"
	"repro/internal/drift"
	"repro/internal/feature"
	"repro/internal/policy"
)

// deviceState is everything the server tracks for one device. It lives in
// exactly one shard and is touched only by that shard's worker, so the
// decide path needs no locks.
type deviceState struct {
	win *feature.Window
	// row is the reusable raw-feature buffer for this device's inferences.
	row []float64
	// Joint-group assembly (JointSize P > 1): a device's decide requests
	// are grouped strictly by arrival sequence — requests P·g .. P·g+P−1
	// form group g, decided by one forward pass when the last member
	// arrives. Membership never depends on batch timing, which is what
	// keeps batched decisions byte-identical to sequential ones.
	sizes    []int32
	pend     []pendMember
	headQLen uint32
	firstEnq int64
}

// pendMember is a joint-group member whose response is held until the
// group fills (or a timeout/shutdown flushes it fail-open).
type pendMember struct {
	id  uint64
	out *connWriter
}

// shard owns a partition of the device space: a bounded queue, the
// per-device state, one model scratch, and a breaker. All fields except
// the queue and counters are worker-private.
type shard struct {
	srv  *Server
	q    chan *request
	devs map[uint32]*deviceState
	cnt  counters

	batch   []*request
	touched []*connWriter

	// scratch is rebuilt when the published model changes (its size
	// depends on the network architecture).
	scrFor *servingModel
	scr    *core.Scratch

	// deferred counts joint-group members across devices whose responses
	// are held; when nonzero the worker waits with a timeout so a stalled
	// group is flushed fail-open after GroupTimeout.
	deferred int

	// Breaker: policy.Guarded's decision-count-driven state machine,
	// retargeted at shed rate. All state is worker-private.
	bstate   policy.BreakerState
	bn       int    // closed: decisions in the current window
	shedBase uint64 // sheds+deadline counter at window/half-open start
	cooldown int    // open: decisions left before half-open
	probeSeq int    // half-open: decisions since entering
	probes   int    // half-open: probes performed

	det    *drift.InputDetector
	detN   int
	detPub int
}

func (sh *shard) shedTotal() uint64 {
	return sh.cnt.sheds.Load() + sh.cnt.deadline.Load()
}

// run is the shard worker: block for one request, optionally linger
// BatchWindow, drain up to MaxBatch, then decide the whole batch against
// one atomic model load. Wall-clock use is audited: the batch window and
// queue-age deadlines are real serving time, not simulation time.
//
//heimdall:walltime
func (sh *shard) run() {
	defer sh.srv.wgWorkers.Done()
	cfg := sh.srv.cfg
	window := cfg.BatchWindow
	maxBatch := cfg.maxBatch()
	groupTimeout := int64(cfg.groupTimeout())
	var timer *time.Timer
	for {
		var r *request
		var ok bool
		if sh.deferred > 0 {
			if timer == nil {
				timer = time.NewTimer(cfg.groupTimeout())
			} else {
				timer.Reset(cfg.groupTimeout())
			}
			select {
			case r, ok = <-sh.q:
				if !timer.Stop() {
					<-timer.C
				}
			case <-timer.C:
				sh.flushExpired(sh.srv.now(), groupTimeout)
				sh.cnt.held.Store(int64(sh.deferred))
				continue
			}
		} else {
			r, ok = <-sh.q
		}
		if !ok {
			sh.shutdown()
			return
		}
		sh.batch = append(sh.batch[:0], r)
		if window > 0 {
			time.Sleep(window)
		}
	drain:
		for len(sh.batch) < maxBatch {
			select {
			case more, open := <-sh.q:
				if !open {
					break drain // next blocking receive triggers shutdown
				}
				sh.batch = append(sh.batch, more)
			default:
				break drain
			}
		}
		sm := sh.srv.model.Load()
		if sm != sh.scrFor {
			sh.scr = sm.m.NewScratch()
			sh.scrFor = sm
		}
		now := sh.srv.now()
		for _, r := range sh.batch {
			sh.process(sm, r, now)
			reqPool.Put(r)
		}
		sh.cnt.observeBatch(len(sh.batch))
		sh.cnt.held.Store(int64(sh.deferred))
		for i := range sh.batch {
			sh.batch[i] = nil
		}
		for i, w := range sh.touched {
			w.flush()
			sh.touched[i] = nil
		}
		sh.touched = sh.touched[:0]
		if sh.det != nil && sh.detN-sh.detPub >= 256 {
			sh.cnt.maxPSI.Store(math.Float64bits(sh.det.MaxPSI()))
			sh.detPub = sh.detN
		}
	}
}

// process handles one routed request: completions feed the device history;
// decides pass through the deadline check and breaker before inference.
func (sh *shard) process(sm *servingModel, r *request, now int64) {
	st := sh.devs[r.device()]
	if st == nil {
		st = &deviceState{win: feature.NewWindow(sm.m.Spec().Depth)}
		sh.devs[r.device()] = st
	}
	if r.kind == msgComplete {
		c := r.comp
		thpt := 0.0
		if c.latency > 0 {
			// MB/s, matching iolog.Record.ThroughputMBps.
			thpt = float64(c.size) / (1 << 20) / (float64(c.latency) / 1e9)
		}
		st.win.Push(feature.Hist{
			Latency:  float64(c.latency),
			QueueLen: float64(c.queueLen),
			Thpt:     thpt,
		})
		return
	}

	dec := r.dec
	if w := sh.srv.cfg.breakerWindow(); w > 0 && !sh.breakerAdmits(sm, dec, r.out, w) {
		return // answered fail-open by the open/half-open breaker
	}
	if budget := int64(sh.srv.cfg.Budget); budget > 0 && now-r.enq > budget {
		// Aged out in queue: the I/O has already waited too long on the
		// predictor, so fail open without inference. Shed requests do not
		// join joint groups.
		sh.cnt.deadline.Add(1)
		sh.cnt.admits.Add(1)
		r.out.decideResp(dec.id, true, FlagDeadline, sm.version)
		sh.touch(r.out)
		return
	}
	sh.decideOne(sm, st, dec, r.enq, r.out)
}

// breakerAdmits runs the shed-rate circuit breaker and reports whether the
// request should continue to inference. When it returns false the request
// was already answered admit+FlagBreaker.
func (sh *shard) breakerAdmits(sm *servingModel, dec decideRequest, out *connWriter, window int) bool {
	switch sh.bstate {
	case policy.BreakerOpen:
		sh.cooldown--
		if sh.cooldown <= 0 {
			sh.bstate = policy.BreakerHalfOpen
			sh.probeSeq, sh.probes = 0, 0
			sh.shedBase = sh.shedTotal()
		}
		sh.cnt.breakered.Add(1)
		sh.cnt.admits.Add(1)
		out.decideResp(dec.id, true, FlagBreaker, sm.version)
		sh.touch(out)
		return false
	case policy.BreakerHalfOpen:
		sh.probeSeq++
		if sh.probeSeq%probeEvery != 0 {
			sh.cnt.breakered.Add(1)
			sh.cnt.admits.Add(1)
			out.decideResp(dec.id, true, FlagBreaker, sm.version)
			sh.touch(out)
			return false
		}
		sh.probes++
		if sh.probes >= sh.srv.cfg.probes() {
			if sh.shedTotal() > sh.shedBase {
				// Still shedding while probing: back to open.
				sh.bstate = policy.BreakerOpen
				sh.cooldown = sh.srv.cfg.cooldown()
				sh.cnt.trips.Add(1)
			} else {
				sh.bstate = policy.BreakerClosed
				sh.bn = 0
				sh.shedBase = sh.shedTotal()
				sh.cnt.recoveries.Add(1)
			}
		}
		return true
	}
	// Closed: count the window and trip on sustained shed rate.
	sh.bn++
	if sh.bn >= window {
		shed := sh.shedTotal()
		if float64(shed-sh.shedBase)/float64(sh.bn) > sh.srv.cfg.tripShedRate() {
			sh.bstate = policy.BreakerOpen
			sh.cooldown = sh.srv.cfg.cooldown()
			sh.cnt.trips.Add(1)
		}
		sh.bn = 0
		sh.shedBase = shed
	}
	return true
}

// probeEvery matches policy.Guarded's half-open cadence: 1 in 4 decisions
// trials the model, the rest stay failed open.
const probeEvery = 4

// touch records a writer for the batch-end flush, so one syscall per
// connection per batch pushes out all its responses.
//
//heimdall:hotpath
func (sh *shard) touch(w *connWriter) {
	for _, t := range sh.touched {
		if t == w {
			return
		}
	}
	sh.touched = append(sh.touched, w)
}

// decideOne is the steady-state inference path: assemble the raw feature
// row in the device's reusable buffer, run one forward pass through the
// published model, answer. For joint models the group decides on its last
// member's arrival and every member gets the group verdict. Allocation-free
// once buffers are warm (pinned by TestDecideOneZeroAlloc).
//
//heimdall:hotpath
func (sh *shard) decideOne(sm *servingModel, st *deviceState, dec decideRequest, enq int64, out *connWriter) {
	p := sm.m.JointSize()
	spec := sm.m.Spec()
	if p <= 1 {
		st.row = spec.OnlineInto(st.row[:0], int(dec.queueLen), int32(dec.size), 0, 0, st.win)
		if sh.det != nil {
			sh.det.Observe(st.row)
			sh.detN++
		}
		admit := sm.m.AdmitInto(st.row, sh.scr)
		if admit {
			sh.cnt.admits.Add(1)
		} else {
			sh.cnt.declines.Add(1)
		}
		out.decideResp(dec.id, admit, 0, sm.version)
		sh.touch(out)
		return
	}
	if len(st.sizes) == 0 {
		st.headQLen = dec.queueLen
		st.firstEnq = enq
	}
	st.sizes = append(st.sizes, int32(dec.size))
	if len(st.sizes) < p {
		st.pend = append(st.pend, pendMember{id: dec.id, out: out})
		sh.deferred++
		return
	}
	// Group complete: head features plus the remaining members' sizes,
	// the layout JointFeatures/training uses (§4.2).
	st.row = spec.OnlineInto(st.row[:0], int(st.headQLen), st.sizes[0], 0, 0, st.win)
	for _, sz := range st.sizes[1:] {
		st.row = append(st.row, float64(sz))
	}
	if sh.det != nil {
		sh.det.Observe(st.row)
		sh.detN++
	}
	admit := sm.m.AdmitInto(st.row, sh.scr)
	n := uint64(len(st.pend)) + 1
	if admit {
		sh.cnt.admits.Add(n)
	} else {
		sh.cnt.declines.Add(n)
	}
	for i := range st.pend {
		st.pend[i].out.decideResp(st.pend[i].id, admit, 0, sm.version)
		sh.touch(st.pend[i].out)
	}
	out.decideResp(dec.id, admit, 0, sm.version)
	sh.touch(out)
	sh.deferred -= len(st.pend)
	st.pend = st.pend[:0]
	st.sizes = st.sizes[:0]
}

// flushExpired fails open every joint group older than the timeout: its
// held members are answered admit+FlagPartial and the group resets. The
// next decide for the device starts a fresh group.
func (sh *shard) flushExpired(now, timeout int64) {
	sm := sh.srv.model.Load()
	for _, st := range sh.devs {
		if len(st.sizes) == 0 || now-st.firstEnq < timeout {
			continue
		}
		sh.flushPartial(sm, st)
	}
}

// flushPartial answers a partial group's held members fail-open.
func (sh *shard) flushPartial(sm *servingModel, st *deviceState) {
	for i := range st.pend {
		st.pend[i].out.decideResp(st.pend[i].id, true, FlagPartial, sm.version)
		st.pend[i].out.flush()
	}
	sh.cnt.partial.Add(1)
	sh.cnt.admits.Add(uint64(len(st.pend)))
	sh.deferred -= len(st.pend)
	st.pend = st.pend[:0]
	st.sizes = st.sizes[:0]
}

// shutdown drains whatever is still queued (deciding normally), fails any
// held joint-group members open, and flushes every touched writer so no
// request is ever dropped — the graceful half of Close, which keeps the
// sockets writable until all workers return.
func (sh *shard) shutdown() {
	sm := sh.srv.model.Load()
	if sm != sh.scrFor {
		sh.scr = sm.m.NewScratch()
		sh.scrFor = sm
	}
	now := sh.srv.now()
	for r := range sh.q {
		if r.kind == msgDecide {
			sh.srv.drained.Add(1)
		}
		sh.process(sm, r, now)
		reqPool.Put(r)
	}
	for _, st := range sh.devs {
		if len(st.sizes) > 0 {
			sh.srv.drained.Add(uint64(len(st.pend)))
			sh.flushPartial(sm, st)
		}
	}
	for i, w := range sh.touched {
		w.flush()
		sh.touched[i] = nil
	}
	sh.touched = sh.touched[:0]
	sh.cnt.held.Store(0)
}
