package serve

import (
	"math"
	"time"

	"repro/internal/core"
	"repro/internal/drift"
	"repro/internal/feature"
	"repro/internal/policy"
)

// deviceState is everything the server tracks for one device. It lives in
// exactly one shard and is touched only by that shard's worker, so the
// decide path needs no locks.
type deviceState struct {
	//heimdall:owner shard.run
	win *feature.Window
	// Joint-group assembly (JointSize P > 1): a device's decide requests
	// are grouped strictly by arrival sequence — requests P·g .. P·g+P−1
	// form group g, decided by one forward pass when the last member
	// arrives. Membership never depends on batch timing, which is what
	// keeps batched decisions byte-identical to sequential ones.
	//
	//heimdall:owner shard.run
	sizes []int32
	//heimdall:owner shard.run
	pend []pendMember
	//heimdall:owner shard.run
	headQLen uint32
	//heimdall:owner shard.run
	firstEnq int64
}

// pendMember is a joint-group member whose response is held until the
// group fills (or a timeout/shutdown flushes it fail-open).
type pendMember struct {
	id  uint64
	out *connWriter
}

// pendingInf is one staged inference awaiting the batched forward pass: the
// request to answer plus, for a completed joint group, the span of held
// members in shard.members that share its verdict.
type pendingInf struct {
	id         uint64
	out        *connWriter
	dev        uint32
	mOff, mLen int
}

// shard owns a partition of the device space: a bounded queue, the
// per-device state, one model scratch, and a breaker. All fields except
// the queue and counters are worker-private. Requests travel the queue by
// value, so the datapath needs no request pool.
type shard struct {
	srv *Server
	q   chan request
	//heimdall:owner run,NewServer
	devs map[uint32]*deviceState
	cnt  counters
	//heimdall:owner run,NewServer
	ctl batchController

	//heimdall:owner run
	batch []request
	//heimdall:owner run
	touched []*connWriter

	// Batched-decide staging: requests that survive the breaker and
	// deadline checks assemble their feature rows at arrival order (phase
	// A) into per-slot buffers — one buffer per staged inference, because
	// two decides for the same device can sit in one batch — then a single
	// AdmitBatchInto call scores them all (phase B), and the verdicts fan
	// out in staging order (phase C). Integer-quantized engines are exact
	// at any batch shape, so the verdicts are byte-identical to the old
	// one-forward-pass-per-request path.
	//heimdall:owner run
	rowBufs [][]float64
	//heimdall:owner run
	rows [][]float64
	//heimdall:owner run
	infs []pendingInf
	//heimdall:owner run
	members []pendMember
	//heimdall:owner run
	verdicts []bool

	// scratch is rebuilt when the published model changes (its size
	// depends on the network architecture and active Predictor).
	//
	//heimdall:owner run
	scrFor *servingModel
	//heimdall:owner run
	scr *core.Scratch

	// deferred counts joint-group members across devices whose responses
	// are held; when nonzero the worker waits with a timeout so a stalled
	// group is flushed fail-open after GroupTimeout.
	//
	//heimdall:owner run
	deferred int

	// Breaker: policy.Guarded's decision-count-driven state machine,
	// retargeted at shed rate. All state is worker-private.
	//
	//heimdall:owner run
	bstate policy.BreakerState
	//heimdall:owner run
	bn int // closed: decisions in the current window
	//heimdall:owner run
	shedBase uint64 // sheds+deadline counter at window/half-open start
	//heimdall:owner run
	cooldown int // open: decisions left before half-open
	//heimdall:owner run
	probeSeq int // half-open: decisions since entering
	//heimdall:owner run
	probes int // half-open: probes performed

	//heimdall:owner run,NewServer
	det *drift.InputDetector
	//heimdall:owner run
	detN int
	//heimdall:owner run
	detPub int
}

func (sh *shard) shedTotal() uint64 {
	return sh.cnt.sheds.Load() + sh.cnt.deadline.Load()
}

// run is the shard worker: block for one request, drain the backlog up to
// the controller's batch cap, linger the gather window only if that drain
// came up shallow, then decide the whole batch against one atomic model
// load. Wall-clock use is
// audited: the batch window and queue-age deadlines are real serving time,
// not simulation time — the adaptive controller itself never reads a clock
// (it is driven purely by decision counts and queue occupancy).
//
//heimdall:walltime
func (sh *shard) run() {
	defer sh.srv.wgWorkers.Done()
	cfg := sh.srv.cfg
	groupTimeout := int64(cfg.groupTimeout())
	var timer *time.Timer
	for {
		var r request
		var ok bool
		if sh.deferred > 0 {
			if timer == nil {
				timer = time.NewTimer(cfg.groupTimeout())
			} else {
				timer.Reset(cfg.groupTimeout())
			}
			select {
			case r, ok = <-sh.q:
				if !timer.Stop() {
					<-timer.C
				}
			case <-timer.C:
				sh.flushExpired(sh.srv.now(), groupTimeout)
				sh.cnt.held.Store(int64(sh.deferred))
				continue
			}
		} else {
			r, ok = <-sh.q
		}
		if !ok {
			sh.shutdown()
			return
		}
		maxBatch := sh.ctl.batchCap()
		sh.batch = append(sh.batch[:0], r)
		sh.gather(maxBatch)
		// Linger only when the first drain came up shallow: under sustained
		// load the backlog itself is the batching mechanism, and sleeping
		// with work queued would cap throughput at one batch per window.
		// Lingering pays only when arrivals trickle in below the
		// amortization floor — then one window of patience turns several
		// wakeups into one forward pass.
		if window := sh.ctl.window(); window > 0 && len(sh.batch) < sh.ctl.gatherFloor(maxBatch) {
			time.Sleep(window)
			sh.gather(maxBatch)
		}
		sm := sh.srv.model.Load()
		if sm != sh.scrFor {
			// Scratch is sized to the configured ceiling, not the adaptive
			// cap, so narrowing and re-widening never reallocates it.
			sh.scr = sm.m.NewBatchScratch(cfg.maxBatch())
			sh.scrFor = sm
		}
		now := sh.srv.now()
		for i := range sh.batch {
			sh.process(sm, &sh.batch[i], now)
		}
		sh.decideStaged(sm)
		sh.cnt.observeBatch(len(sh.batch))
		sh.cnt.held.Store(int64(sh.deferred))
		sh.adapt(len(sh.batch), maxBatch, len(sh.q))
		for i := range sh.batch {
			sh.batch[i] = request{} // drop conn references
		}
		for i, w := range sh.touched {
			w.flush()
			sh.touched[i] = nil
		}
		sh.touched = sh.touched[:0]
		if sh.det != nil && sh.detN-sh.detPub >= 256 {
			// Publish both ways: the stats snapshot (pull) and any drift
			// subscribers registered via Config.OnDrift (push).
			sh.cnt.maxPSI.Store(math.Float64bits(sh.det.Publish()))
			sh.detPub = sh.detN
		}
	}
}

// gather drains queued requests into the batch, up to maxBatch, without
// blocking. A closed queue just stops the drain; the next blocking receive
// in run observes the close and triggers shutdown. gather is the channel
// boundary of the worker loop — channel ops are its whole job — so it is
// deliberately not //heimdall:hotpath (the lint bans channel ops there);
// its only append is receiver-rooted and the staged decide path that
// follows carries the zero-alloc contract.
func (sh *shard) gather(maxBatch int) {
	for len(sh.batch) < maxBatch {
		select {
		case more, open := <-sh.q:
			if !open {
				return
			}
			sh.batch = append(sh.batch, more)
		default:
			return
		}
	}
}

// adapt feeds one drained batch into the controller and publishes any shape
// change to the counters.
//
//heimdall:hotpath
func (sh *shard) adapt(fill, batchCap, backlog int) {
	switch sh.ctl.observe(fill, batchCap, backlog) {
	case adaptWiden:
		sh.cnt.widens.Add(1)
	case adaptNarrow:
		sh.cnt.narrows.Add(1)
	}
	sh.cnt.adaptLevel.Store(int64(sh.ctl.level))
}

// process handles one routed request: completions feed the device history;
// decides pass through the deadline check and breaker, then stage their
// feature row for the batched forward pass (phase A — rows capture the
// device window exactly as it stood at this request's turn in arrival
// order, so batching cannot change what any row sees).
func (sh *shard) process(sm *servingModel, r *request, now int64) {
	st := sh.devs[r.device()]
	if st == nil {
		st = &deviceState{win: feature.NewWindow(sm.m.Spec().Depth)}
		sh.devs[r.device()] = st
	}
	if r.kind == msgComplete {
		c := r.comp
		thpt := 0.0
		if c.latency > 0 {
			// MB/s, matching iolog.Record.ThroughputMBps.
			thpt = float64(c.size) / (1 << 20) / (float64(c.latency) / 1e9)
		}
		st.win.Push(feature.Hist{
			Latency:  float64(c.latency),
			QueueLen: float64(c.queueLen),
			Thpt:     thpt,
		})
		// The trackers only keep a bounded window; hand the observation to
		// the harvest sink (continuous learning) before it is lost. Within
		// one device this runs in completion order — the sink can count on
		// a deterministic per-device stream.
		if sink := sh.srv.cfg.Completions; sink != nil {
			sink.OnCompletion(c.device, c.latency, c.queueLen, c.size)
		}
		return
	}

	dec := r.dec
	if w := sh.srv.cfg.breakerWindow(); w > 0 && !sh.breakerAdmits(sm, dec, r.out, w) {
		return // answered fail-open by the open/half-open breaker
	}
	if budget := int64(sh.srv.cfg.Budget); budget > 0 && now-r.enq > budget {
		// Aged out in queue: the I/O has already waited too long on the
		// predictor, so fail open without inference. Shed requests do not
		// join joint groups.
		sh.cnt.deadline.Add(1)
		sh.cnt.admits.Add(1)
		r.out.decideResp(dec.id, true, FlagDeadline, sm.version)
		sh.touch(r.out)
		return
	}
	sh.stageDecide(sm, st, dec, r.enq, r.out)
}

// breakerAdmits runs the shed-rate circuit breaker and reports whether the
// request should continue to inference. When it returns false the request
// was already answered admit+FlagBreaker.
func (sh *shard) breakerAdmits(sm *servingModel, dec decideRequest, out *connWriter, window int) bool {
	switch sh.bstate {
	case policy.BreakerOpen:
		sh.cooldown--
		if sh.cooldown <= 0 {
			sh.bstate = policy.BreakerHalfOpen
			sh.probeSeq, sh.probes = 0, 0
			sh.shedBase = sh.shedTotal()
		}
		sh.cnt.breakered.Add(1)
		sh.cnt.admits.Add(1)
		out.decideResp(dec.id, true, FlagBreaker, sm.version)
		sh.touch(out)
		return false
	case policy.BreakerHalfOpen:
		sh.probeSeq++
		if sh.probeSeq%probeEvery != 0 {
			sh.cnt.breakered.Add(1)
			sh.cnt.admits.Add(1)
			out.decideResp(dec.id, true, FlagBreaker, sm.version)
			sh.touch(out)
			return false
		}
		sh.probes++
		if sh.probes >= sh.srv.cfg.probes() {
			if sh.shedTotal() > sh.shedBase {
				// Still shedding while probing: back to open.
				sh.bstate = policy.BreakerOpen
				sh.cooldown = sh.srv.cfg.cooldown()
				sh.cnt.trips.Add(1)
			} else {
				sh.bstate = policy.BreakerClosed
				sh.bn = 0
				sh.shedBase = sh.shedTotal()
				sh.cnt.recoveries.Add(1)
			}
		}
		return true
	}
	// Closed: count the window and trip on sustained shed rate.
	sh.bn++
	if sh.bn >= window {
		shed := sh.shedTotal()
		if float64(shed-sh.shedBase)/float64(sh.bn) > sh.srv.cfg.tripShedRate() {
			sh.bstate = policy.BreakerOpen
			sh.cooldown = sh.srv.cfg.cooldown()
			sh.cnt.trips.Add(1)
		}
		sh.bn = 0
		sh.shedBase = shed
	}
	return true
}

// probeEvery matches policy.Guarded's half-open cadence: 1 in 4 decisions
// trials the model, the rest stay failed open.
const probeEvery = 4

// touch records a writer for the batch-end flush, so one syscall per
// connection per batch pushes out all its responses.
//
//heimdall:hotpath
func (sh *shard) touch(w *connWriter) {
	for _, t := range sh.touched {
		if t == w {
			return
		}
	}
	sh.touched = append(sh.touched, w)
}

// stageDecide stages one surviving decide for the batched forward pass:
// assemble the raw feature row into this inference's slot buffer and record
// who to answer. For joint models the group stages on its last member's
// arrival and every member shares the staged verdict. Allocation-free once
// buffers are warm (pinned by TestStagedDecideZeroAlloc).
//
//heimdall:hotpath
func (sh *shard) stageDecide(sm *servingModel, st *deviceState, dec decideRequest, enq int64, out *connWriter) {
	p := sm.m.JointSize()
	spec := sm.m.Spec()
	slot := len(sh.infs)
	if p <= 1 {
		if slot == len(sh.rowBufs) {
			sh.rowBufs = append(sh.rowBufs, make([]float64, 0, spec.Width()+p))
		}
		sh.rowBufs[slot] = spec.OnlineInto(sh.rowBufs[slot][:0], int(dec.queueLen), int32(dec.size), 0, 0, st.win)
		if sh.det != nil {
			sh.det.Observe(sh.rowBufs[slot])
			sh.detN++
		}
		sh.infs = append(sh.infs, pendingInf{id: dec.id, out: out, dev: dec.device})
		return
	}
	if len(st.sizes) == 0 {
		st.headQLen = dec.queueLen
		st.firstEnq = enq
	}
	st.sizes = append(st.sizes, int32(dec.size))
	if len(st.sizes) < p {
		st.pend = append(st.pend, pendMember{id: dec.id, out: out})
		sh.deferred++
		return
	}
	// Group complete: head features plus the remaining members' sizes,
	// the layout JointFeatures/training uses (§4.2).
	if slot == len(sh.rowBufs) {
		sh.rowBufs = append(sh.rowBufs, make([]float64, 0, spec.Width()+p))
	}
	sh.rowBufs[slot] = spec.OnlineInto(sh.rowBufs[slot][:0], int(st.headQLen), st.sizes[0], 0, 0, st.win)
	for _, sz := range st.sizes[1:] {
		sh.rowBufs[slot] = append(sh.rowBufs[slot], float64(sz))
	}
	if sh.det != nil {
		sh.det.Observe(sh.rowBufs[slot])
		sh.detN++
	}
	mOff := len(sh.members)
	sh.members = append(sh.members, st.pend...)
	sh.infs = append(sh.infs, pendingInf{id: dec.id, out: out, dev: dec.device, mOff: mOff, mLen: len(st.pend)})
	sh.deferred -= len(st.pend)
	st.pend = st.pend[:0]
	st.sizes = st.sizes[:0]
}

// decideStaged is phases B and C: one batched forward pass over every
// staged row, then answers in staging order — held joint members first,
// then the group head, exactly the fan-out order the sequential path used.
//
//heimdall:hotpath
func (sh *shard) decideStaged(sm *servingModel) {
	n := len(sh.infs)
	if n == 0 {
		return
	}
	if cap(sh.rows) < n {
		sh.rows = make([][]float64, 0, n)
	}
	sh.rows = sh.rows[:0]
	for i := 0; i < n; i++ {
		sh.rows = append(sh.rows, sh.rowBufs[i])
	}
	if len(sh.verdicts) < n {
		sh.verdicts = make([]bool, n)
	}
	sm.m.AdmitBatchInto(sh.rows, sh.verdicts[:n], sh.scr)
	tap := sh.srv.cfg.Decisions
	for i := 0; i < n; i++ {
		inf := &sh.infs[i]
		admit := sh.verdicts[i]
		if tap != nil {
			// Shadow-scoring tap: the raw row the verdict was inferred on,
			// before the slot buffer is recycled. Scalar/slice args only —
			// no boxing — and the tap contract forbids retaining row.
			tap.OnDecision(inf.dev, sh.rowBufs[i], admit)
		}
		if admit {
			sh.cnt.admits.Add(uint64(inf.mLen) + 1)
		} else {
			sh.cnt.declines.Add(uint64(inf.mLen) + 1)
		}
		for j := inf.mOff; j < inf.mOff+inf.mLen; j++ {
			sh.members[j].out.decideResp(sh.members[j].id, admit, 0, sm.version)
			sh.touch(sh.members[j].out)
		}
		inf.out.decideResp(inf.id, admit, 0, sm.version)
		sh.touch(inf.out)
	}
	// Drop connection references so an idle shard cannot pin closed conns.
	for i := range sh.members {
		sh.members[i] = pendMember{}
	}
	sh.members = sh.members[:0]
	for i := range sh.infs {
		sh.infs[i] = pendingInf{}
	}
	sh.infs = sh.infs[:0]
}

// flushExpired fails open every joint group older than the timeout: its
// held members are answered admit+FlagPartial and the group resets. The
// next decide for the device starts a fresh group.
func (sh *shard) flushExpired(now, timeout int64) {
	sm := sh.srv.model.Load()
	for _, st := range sh.devs {
		if len(st.sizes) == 0 || now-st.firstEnq < timeout {
			continue
		}
		sh.flushPartial(sm, st)
	}
}

// flushPartial answers a partial group's held members fail-open.
func (sh *shard) flushPartial(sm *servingModel, st *deviceState) {
	for i := range st.pend {
		st.pend[i].out.decideResp(st.pend[i].id, true, FlagPartial, sm.version)
		st.pend[i].out.flush()
	}
	sh.cnt.partial.Add(1)
	sh.cnt.admits.Add(uint64(len(st.pend)))
	sh.deferred -= len(st.pend)
	st.pend = st.pend[:0]
	st.sizes = st.sizes[:0]
}

// shutdown drains whatever is still queued (deciding normally), fails any
// held joint-group members open, and flushes every touched writer so no
// request is ever dropped — the graceful half of Close, which keeps the
// sockets writable until all workers return.
func (sh *shard) shutdown() {
	sm := sh.srv.model.Load()
	maxBatch := sh.srv.cfg.maxBatch()
	if sm != sh.scrFor {
		sh.scr = sm.m.NewBatchScratch(maxBatch)
		sh.scrFor = sm
	}
	now := sh.srv.now()
	for r := range sh.q {
		if r.kind == msgDecide {
			sh.srv.drained.Add(1)
		}
		sh.process(sm, &r, now)
		if len(sh.infs) >= maxBatch {
			sh.decideStaged(sm)
		}
	}
	sh.decideStaged(sm)
	for _, st := range sh.devs {
		if len(st.sizes) > 0 {
			sh.srv.drained.Add(uint64(len(st.pend)))
			sh.flushPartial(sm, st)
		}
	}
	for i, w := range sh.touched {
		w.flush()
		sh.touched[i] = nil
	}
	sh.touched = sh.touched[:0]
	sh.cnt.held.Store(0)
}

// Controller step outcomes, published to the widens/narrows counters.
const (
	adaptHold = iota
	adaptWiden
	adaptNarrow
)

// batchController adapts the shard's effective micro-batch shape to load.
// It is decision-count-driven: each drained batch reports its fill, the cap
// it ran under, and the queue backlog left behind; every AdaptPeriod
// decisions the controller steps a discrete level ladder — up when most
// batches in the period ran pressured (hit the cap or left a backlog), down
// when none did. Level L maps to (batch cap minBatch<<L, window interpolated
// toward BatchWindowMax), so sustained pressure widens the window and batch
// bound to amortize wakeups and forward passes, and a drained queue narrows
// them back for latency. No wall-clock reads anywhere (the walltime lint
// holds): the sleep itself happens in run, an audited site, and how long to
// sleep is a pure function of the observed decision sequence. Batch shape
// never affects verdicts — group membership and feature history depend only
// on per-device message order — so any controller trajectory yields
// byte-identical decisions (pinned by TestServeDeterminism).
type batchController struct {
	//heimdall:owner init,batchCap,window,gatherFloor,observe
	enabled bool
	// level is also read by shard.adapt to publish the adapt-level gauge.
	//
	//heimdall:owner init,batchCap,window,gatherFloor,observe,shard.adapt
	level int
	//heimdall:owner init,batchCap,window,gatherFloor,observe
	maxLevel int
	//heimdall:owner init,batchCap,window,gatherFloor,observe
	minBatch, maxBatch int
	//heimdall:owner init,batchCap,window,gatherFloor,observe
	baseWindow time.Duration
	//heimdall:owner init,batchCap,window,gatherFloor,observe
	maxWindow time.Duration
	//heimdall:owner init,batchCap,window,gatherFloor,observe
	period int // decisions per controller step
	//heimdall:owner init,batchCap,window,gatherFloor,observe
	decided int // decisions accumulated toward the next step
	//heimdall:owner init,batchCap,window,gatherFloor,observe
	batches int // batches observed in the current period
	//heimdall:owner init,batchCap,window,gatherFloor,observe
	pressured int // of those, how many ran pressured
}

func (bc *batchController) init(cfg Config) {
	bc.enabled = cfg.AdaptiveBatch
	bc.maxBatch = cfg.maxBatch()
	bc.minBatch = adaptMinBatch
	if bc.minBatch > bc.maxBatch {
		bc.minBatch = bc.maxBatch
	}
	for bc.minBatch<<bc.maxLevel < bc.maxBatch {
		bc.maxLevel++
	}
	bc.baseWindow = cfg.BatchWindow
	bc.maxWindow = cfg.batchWindowMax()
	bc.period = cfg.adaptPeriod()
}

// adaptMinBatch is the level-0 batch cap under the adaptive controller: small
// enough that an idle shard decides almost immediately, large enough that the
// first widening step is meaningful.
const adaptMinBatch = 8

// batchCap returns the effective per-wakeup batch bound.
//
//heimdall:hotpath
func (bc *batchController) batchCap() int {
	if !bc.enabled {
		return bc.maxBatch
	}
	c := bc.minBatch << bc.level
	if c > bc.maxBatch {
		c = bc.maxBatch
	}
	return c
}

// window returns the effective micro-batch gather window.
//
//heimdall:hotpath
func (bc *batchController) window() time.Duration {
	if !bc.enabled || bc.level == 0 || bc.maxLevel == 0 {
		return bc.baseWindow
	}
	return bc.baseWindow + (bc.maxWindow-bc.baseWindow)*time.Duration(bc.level)/time.Duration(bc.maxLevel)
}

// gatherFloor is the batch fill below which the worker lingers for the
// gather window before deciding. A fixed window (controller disabled)
// lingers whenever the batch isn't full — the window is an explicit
// latency-for-amortization trade the operator asked for. The adaptive
// controller lingers only below its level-0 cap: a first drain that already
// gathered that much has amortized the wakeup, and sleeping on top of a
// live backlog would throttle the shard to one batch per window.
//
//heimdall:hotpath
func (bc *batchController) gatherFloor(batchCap int) int {
	if !bc.enabled {
		return batchCap
	}
	return bc.minBatch
}

// observe feeds one drained batch into the controller and returns the step
// taken, if any. Pure arithmetic on counts — deterministic given the same
// observation sequence.
//
//heimdall:hotpath
func (bc *batchController) observe(fill, batchCap, backlog int) int {
	if !bc.enabled {
		return adaptHold
	}
	bc.batches++
	bc.decided += fill
	if fill >= batchCap || backlog > 0 {
		bc.pressured++
	}
	if bc.decided < bc.period {
		return adaptHold
	}
	pressured, batches := bc.pressured, bc.batches
	bc.decided, bc.batches, bc.pressured = 0, 0, 0
	switch {
	case 2*pressured > batches && bc.level < bc.maxLevel:
		bc.level++
		return adaptWiden
	case pressured == 0 && bc.level > 0:
		bc.level--
		return adaptNarrow
	}
	return adaptHold
}
