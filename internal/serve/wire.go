// Package serve is the online admission layer: a concurrent service that
// wraps a trained core.Model behind a small binary protocol (stdlib net,
// TCP or unix socket) and answers per-I/O admit/decline queries the way the
// paper deploys Heimdall on a storage node (§5–§6).
//
// Architecture (see DESIGN.md "Serving architecture"):
//
//   - requests are routed to one of N shards by device id, so all state for
//     a device (feature history, joint-group sequence) has a single writer
//     and the decide path takes no locks;
//   - each shard micro-batches: requests that arrive within BatchWindow are
//     decided on one wakeup, and joint models (JointSize P > 1) answer P
//     consecutive I/Os of a device with one forward pass — §5's group
//     inference, online;
//   - the model lives behind an atomic pointer; a background retrain
//     publishes a new snapshot with Swap without pausing admission;
//   - overload never blocks an I/O on the predictor: full queues and blown
//     deadlines fail open to "admit", and a sustained shed rate trips a
//     policy.Guarded-style breaker that bypasses inference until the shard
//     drains.
package serve

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
)

// Wire format: every frame is a 4-byte big-endian body length followed by
// the body; the first body byte is the message type. Payload layouts are
// fixed-width big-endian integers except stats (JSON) and swap (a gob model
// in core.Save format).
const (
	// MaxFrame bounds a frame body. Decide traffic is tens of bytes; the
	// ceiling exists for Swap payloads and to keep a hostile length prefix
	// from allocating unbounded memory.
	MaxFrame = 1 << 20

	msgDecide     = 0x01 // id u64 | device u32 | queueLen u32 | size u32
	msgDecideResp = 0x02 // id u64 | verdict u8 | flags u8 | modelVersion u32
	msgComplete   = 0x03 // device u32 | latencyNs u64 | queueLen u32 | size u32
	msgStats      = 0x04 // empty
	msgStatsResp  = 0x05 // JSON Stats
	msgSwap       = 0x06 // gob model (core.Save format)
	msgSwapResp   = 0x07 // ok u8 | modelVersion u32 | error string
)

// Decide-response flag bits. A flagged verdict is always Admit=true: every
// degraded path fails open so an I/O is never blocked on the predictor.
const (
	// FlagShed: the shard queue was full; answered without inference.
	FlagShed = 1 << iota
	// FlagDeadline: the request aged past Config.Budget in queue.
	FlagDeadline
	// FlagBreaker: the shard breaker was open; inference bypassed.
	FlagBreaker
	// FlagPartial: a joint group was flushed before filling (timeout or
	// shutdown), so its members were answered without a forward pass.
	FlagPartial
	// FlagLocal: the verdict was synthesized by a ResilientClient because
	// the wire was down or the deadline expired. Never set by the server —
	// its presence distinguishes client-side fail-open from server-side
	// degradation in any counter or trace.
	FlagLocal
)

const (
	decideLen     = 1 + 8 + 4 + 4 + 4
	decideRespLen = 1 + 8 + 1 + 1 + 4
	completeLen   = 1 + 4 + 8 + 4 + 4
	swapRespMin   = 1 + 1 + 4
)

// ErrFrame reports a malformed or oversized wire frame. The codec returns
// it (wrapped with detail) instead of panicking or allocating for hostile
// lengths.
var ErrFrame = errors.New("serve: malformed frame")

// writeFrame frames body (type byte already included) with its length.
func writeFrame(w io.Writer, body []byte) error {
	if len(body) == 0 || len(body) > MaxFrame {
		return fmt.Errorf("%w: body %d bytes", ErrFrame, len(body))
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(body)
	return err
}

// readFrame reads one length-prefixed frame into buf (grown as needed, but
// never past MaxFrame) and returns the body. The returned slice aliases buf
// and is valid until the next call with the same buffer.
func readFrame(r io.Reader, buf []byte) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err // io.EOF between frames means a clean close
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n == 0 || n > MaxFrame {
		return nil, fmt.Errorf("%w: length %d", ErrFrame, n)
	}
	if cap(buf) < int(n) {
		buf = make([]byte, n)
	}
	body := buf[:n]
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, fmt.Errorf("%w: truncated body (%v)", ErrFrame, err)
	}
	return body, nil
}

// Static frame errors for the zero-copy decode path: frameReader.next is a
// //heimdall:hotpath function, so its failure returns must not format.
// Detail-free is the price of format-free; the values carry ErrFrame so
// callers' errors.Is checks see the same sentinel readFrame wraps.
var (
	errFrameLength    = fmt.Errorf("%w: length out of bounds", ErrFrame)
	errFrameTruncated = fmt.Errorf("%w: truncated body", ErrFrame)
	errDecideResp     = fmt.Errorf("%w: bad decide response body", ErrFrame)
)

// frameBufSize is the frameReader's bufio buffer: big enough that a full
// micro-batch of decide frames (tens of bytes each) is parsed out of one
// read syscall, small enough to keep per-connection memory trivial.
const frameBufSize = 32 * 1024

// frameReader drains length-prefixed frames straight out of a bufio read
// buffer. The returned body aliases the reader's internal buffer — no copy
// into a side buffer — and is valid only until the next call, which first
// discards the previous frame's bytes. Frames larger than the buffer
// (model swaps) spill into an owned scratch slice, reused across frames.
type frameReader struct {
	br      *bufio.Reader
	scratch []byte
	pending int // bytes of the previously returned frame to Discard
}

func newFrameReader(r io.Reader) *frameReader {
	return &frameReader{br: bufio.NewReaderSize(r, frameBufSize)}
}

// next returns the next frame body, zero-copy when it fits the read buffer.
// The body is invalidated by the following next call. io.EOF between frames
// is the clean-close return, exactly like readFrame.
//
//heimdall:hotpath
func (fr *frameReader) next() ([]byte, error) {
	if fr.pending > 0 {
		if _, err := fr.br.Discard(fr.pending); err != nil {
			return nil, err
		}
		fr.pending = 0
	}
	hdr, err := fr.br.Peek(4)
	if err != nil {
		if err == io.EOF && len(hdr) > 0 {
			return nil, io.ErrUnexpectedEOF
		}
		return nil, err
	}
	n := int(binary.BigEndian.Uint32(hdr))
	if n <= 0 || n > MaxFrame {
		return nil, errFrameLength
	}
	if 4+n <= fr.br.Size() {
		body, err := fr.br.Peek(4 + n)
		if err != nil {
			if err == io.EOF {
				return nil, errFrameTruncated
			}
			return nil, err
		}
		fr.pending = 4 + n
		return body[4:], nil
	}
	return fr.spill(n)
}

// spill handles a frame too large for the read buffer: copy it into the
// reader's own scratch. Cold (only model swaps exceed frameBufSize), so it
// may use the interface-taking stdlib helpers the hot path avoids — the
// audited escape the coldpath annotation exists for.
//
//heimdall:coldpath
func (fr *frameReader) spill(n int) ([]byte, error) {
	if _, err := fr.br.Discard(4); err != nil {
		return nil, err
	}
	if cap(fr.scratch) < n {
		fr.scratch = make([]byte, n)
	}
	body := fr.scratch[:n]
	if _, err := io.ReadFull(fr.br, body); err != nil {
		return nil, errFrameTruncated
	}
	return body, nil
}

// buffered reports whether a complete frame is already sitting in the read
// buffer, so the caller can parse it without another read syscall. A
// buffered-but-malformed length also reports true: next() will surface the
// error. Oversized (spill-path) frames report false — they need a syscall.
//
//heimdall:hotpath
func (fr *frameReader) buffered() bool {
	avail := fr.br.Buffered() - fr.pending
	if avail < 4 {
		return false
	}
	// avail >= 4 implies pending+4 <= Buffered() <= Size, so Peek succeeds.
	hdr, err := fr.br.Peek(fr.pending + 4)
	if err != nil {
		return false
	}
	n := int(binary.BigEndian.Uint32(hdr[fr.pending:]))
	if n <= 0 || n > MaxFrame {
		return true // malformed: report it via next() without blocking
	}
	return avail >= 4+n
}

// decideRequest is the parsed form of a msgDecide body.
type decideRequest struct {
	id       uint64
	device   uint32
	queueLen uint32
	size     uint32
}

func parseDecide(body []byte) (decideRequest, error) {
	if len(body) != decideLen || body[0] != msgDecide {
		return decideRequest{}, fmt.Errorf("%w: decide body %d bytes", ErrFrame, len(body))
	}
	return decideRequest{
		id:       binary.BigEndian.Uint64(body[1:]),
		device:   binary.BigEndian.Uint32(body[9:]),
		queueLen: binary.BigEndian.Uint32(body[13:]),
		size:     binary.BigEndian.Uint32(body[17:]),
	}, nil
}

func appendDecide(dst []byte, r decideRequest) []byte {
	dst = append(dst, msgDecide)
	dst = binary.BigEndian.AppendUint64(dst, r.id)
	dst = binary.BigEndian.AppendUint32(dst, r.device)
	dst = binary.BigEndian.AppendUint32(dst, r.queueLen)
	dst = binary.BigEndian.AppendUint32(dst, r.size)
	return dst
}

// Verdict is one admission decision as seen by the client.
type Verdict struct {
	ID           uint64 // echoes the request id
	Admit        bool
	Flags        uint8  // FlagShed | FlagDeadline | FlagBreaker | FlagPartial
	ModelVersion uint32 // version of the model that produced the decision
}

// Shed reports whether the verdict was produced by a degraded fail-open
// path rather than a forward pass.
func (v Verdict) Shed() bool { return v.Flags != 0 }

// parseDecideResp decodes a verdict frame. It sits on the pipelined
// client's batch-reap path (Client.Recv, a //heimdall:hotpath root), so
// the malformed-frame return is a static sentinel, not a fmt.Errorf —
// the same detail-free-for-format-free trade the frameReader errors make.
func parseDecideResp(body []byte) (Verdict, error) {
	if len(body) != decideRespLen || body[0] != msgDecideResp {
		return Verdict{}, errDecideResp
	}
	return Verdict{
		ID:           binary.BigEndian.Uint64(body[1:]),
		Admit:        body[9] != 0,
		Flags:        body[10],
		ModelVersion: binary.BigEndian.Uint32(body[11:]),
	}, nil
}

// completion is the parsed form of a msgComplete body: one finished I/O
// feeding the device's feature history.
type completion struct {
	device   uint32
	latency  uint64 // ns
	queueLen uint32
	size     uint32
}

func parseComplete(body []byte) (completion, error) {
	if len(body) != completeLen || body[0] != msgComplete {
		return completion{}, fmt.Errorf("%w: complete body %d bytes", ErrFrame, len(body))
	}
	return completion{
		device:   binary.BigEndian.Uint32(body[1:]),
		latency:  binary.BigEndian.Uint64(body[5:]),
		queueLen: binary.BigEndian.Uint32(body[13:]),
		size:     binary.BigEndian.Uint32(body[17:]),
	}, nil
}

func appendComplete(dst []byte, c completion) []byte {
	dst = append(dst, msgComplete)
	dst = binary.BigEndian.AppendUint32(dst, c.device)
	dst = binary.BigEndian.AppendUint64(dst, c.latency)
	dst = binary.BigEndian.AppendUint32(dst, c.queueLen)
	dst = binary.BigEndian.AppendUint32(dst, c.size)
	return dst
}

// parseStatsResp decodes a msgStatsResp body. The length check never
// indexes the body, so an empty frame errors instead of panicking.
func parseStatsResp(body []byte) (Stats, error) {
	if len(body) < 1 {
		return Stats{}, fmt.Errorf("%w: empty stats response", ErrFrame)
	}
	if body[0] != msgStatsResp {
		return Stats{}, fmt.Errorf("%w: stats response type %#x", ErrFrame, body[0])
	}
	var s Stats
	if err := json.Unmarshal(body[1:], &s); err != nil {
		return Stats{}, fmt.Errorf("serve: stats payload: %w", err)
	}
	return s, nil
}

func parseSwapResp(body []byte) (uint32, error) {
	if len(body) < swapRespMin || body[0] != msgSwapResp {
		return 0, fmt.Errorf("%w: swap response body %d bytes", ErrFrame, len(body))
	}
	version := binary.BigEndian.Uint32(body[2:])
	if body[1] == 0 {
		return 0, fmt.Errorf("serve: swap rejected: %s", body[swapRespMin:])
	}
	return version, nil
}
