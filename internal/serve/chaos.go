package serve

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math/rand"
	"path/filepath"
	"time"

	"repro/internal/core"
	"repro/internal/fault"
)

// This file is the chaos soak: it drives the full client↔proxy↔server loop
// through a seeded fault schedule and checks the availability half of the
// admission contract the way the experiments engine checks the decision
// half — deterministically. The proxy's fault axis is the request index,
// advanced explicitly before each decide, so which requests hit a blackout,
// a reset, a stall, or a mid-frame truncation is a pure function of the
// seed. The soak keeps the server state trivially deterministic too: only
// decides flow (no completions, so feature windows stay empty) and the
// model must be joint=1, which makes every remote verdict a pure function
// of (queueLen, size) — a lost frame can never fork server state between
// runs or shard counts.

// ChaosConfig tunes one chaos soak. Dir is required: the soak lives on unix
// sockets (their dial/EPIPE/EOF behavior is deterministic, unlike TCP RST
// timing) and needs a short directory to put them in.
type ChaosConfig struct {
	// Requests is the number of decides, and the length of the fault axis
	// (default 1000).
	Requests int
	// Seed derives both the fault schedule and the request workload.
	Seed int64
	// Shards configures the server (default 4); the report's deterministic
	// key must not change with it.
	Shards int
	// Devices is the number of distinct device ids in the workload
	// (default 8).
	Devices int
	// QueueLen bounds the server's shard queues (default 256).
	QueueLen int
	// IOTimeout is the client's per-operation deadline (default 150ms —
	// short, because every stalled request costs one).
	IOTimeout time.Duration
	// DialTimeout bounds each client dial (default 250ms).
	DialTimeout time.Duration
	// ReadTimeout / WriteTimeout harden the server side (default 0: off).
	ReadTimeout  time.Duration
	WriteTimeout time.Duration
	// Dir hosts the unix sockets. Keep it short: the kernel caps socket
	// paths around 108 bytes.
	Dir string
}

func (c ChaosConfig) requests() int {
	if c.Requests > 0 {
		return c.Requests
	}
	return 1000
}

func (c ChaosConfig) devices() int {
	if c.Devices > 0 {
		return c.Devices
	}
	return 8
}

func (c ChaosConfig) ioTimeout() time.Duration {
	if c.IOTimeout > 0 {
		return c.IOTimeout
	}
	return 150 * time.Millisecond
}

func (c ChaosConfig) dialTimeout() time.Duration {
	if c.DialTimeout > 0 {
		return c.DialTimeout
	}
	return 250 * time.Millisecond
}

// ChaosReport is one soak's outcome. Violations is empty on a passing run;
// every entry is a broken availability invariant.
type ChaosReport struct {
	Requests int    `json:"requests"`
	Remote   uint64 `json:"remote"` // verdicts from the server
	Local    uint64 `json:"local"`  // client fail-open verdicts
	Admits   uint64 `json:"admits"`
	Declines uint64 `json:"declines"`

	// Local verdicts attributed to the fault kind active at their step.
	LocalBlackout uint64 `json:"local_blackout"`
	LocalReset    uint64 `json:"local_reset"`
	LocalStall    uint64 `json:"local_stall"`
	LocalTruncate uint64 `json:"local_truncate"`

	// LedgerHash is FNV-64a over every verdict's (id, admit, flags) in
	// request order — the byte-identity witness across reruns and shard
	// counts.
	LedgerHash string `json:"ledger_hash"`

	Client     ClientCounters      `json:"client"`
	Server     Stats               `json:"server"`
	Proxy      fault.ProxyCounters `json:"proxy"`
	Violations []string            `json:"violations"`
}

// DeterministicKey collapses everything that must be byte-identical across
// reruns and shard counts into one comparable string. Wire-level gauges that
// legitimately vary (open conns at capture time, queue depths) are excluded.
func (r ChaosReport) DeterministicKey() string {
	s := r.Server
	return fmt.Sprintf(
		"ledger=%s remote=%d local=%d admits=%d declines=%d byKind=%d/%d/%d/%d client=%+v server=[admits=%d declines=%d sheds=%d deadline=%d partial=%d breaker=%d drained=%d accepted=%d conndrops=%d writedrops=%d] violations=%d",
		r.LedgerHash, r.Remote, r.Local, r.Admits, r.Declines,
		r.LocalBlackout, r.LocalReset, r.LocalStall, r.LocalTruncate,
		r.Client,
		s.Admits, s.Declines, s.Sheds, s.DeadlineSheds, s.PartialFlush,
		s.BreakerOpen, s.Drained, s.ConnsAccepted, s.ConnDrops, s.WriteDrops,
		len(r.Violations))
}

// ChaosSoak runs the loop: server on a unix socket, fault.Proxy in front,
// ResilientClient through the proxy, one synchronous decide per step. It
// checks, per request, the availability biconditional — a local fail-open
// verdict if and only if the step sits in a disruptive fault window (a
// merely delayed wire must still answer remotely) — and that every request
// got exactly one verdict. Backoff is disabled so per-request outcomes
// never depend on wall-clock dial pacing.
func ChaosSoak(m *core.Model, cfg ChaosConfig) (ChaosReport, error) {
	var rep ChaosReport
	if m.JointSize() != 1 {
		// Joint groups sequence verdicts across requests; a lost frame
		// would fork group assembly between runs.
		return rep, fmt.Errorf("serve: chaos soak requires a joint=1 model, got %d", m.JointSize())
	}
	if cfg.Dir == "" {
		return rep, fmt.Errorf("serve: chaos soak needs ChaosConfig.Dir for its unix sockets")
	}
	reqs := cfg.requests()
	rep.Requests = reqs

	backend := "unix:" + filepath.Join(cfg.Dir, "chaos-srv.sock")
	front := "unix:" + filepath.Join(cfg.Dir, "chaos-px.sock")

	srv := NewServer(m, Config{
		Shards:       cfg.Shards,
		QueueLen:     cfg.QueueLen,
		ReadTimeout:  cfg.ReadTimeout,
		WriteTimeout: cfg.WriteTimeout,
	})
	ln, err := Listen(backend)
	if err != nil {
		_ = srv.Close()
		return rep, err
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ln) }()

	sched := fault.ChaosSchedule(cfg.Seed, int64(reqs))
	px, err := fault.NewProxy(front, backend, sched)
	if err != nil {
		_ = srv.Close()
		<-serveDone
		return rep, err
	}

	rc := DialResilient(front, ClientConfig{
		DialTimeout: cfg.dialTimeout(),
		IOTimeout:   cfg.ioTimeout(),
		BackoffBase: -1, // step-paced, not wall-clock-paced
	})

	rng := rand.New(rand.NewSource(cfg.Seed + 7919))
	ledger := fnv.New64a()
	var lb [16]byte
	violate := func(format string, args ...interface{}) {
		if len(rep.Violations) < 32 {
			rep.Violations = append(rep.Violations, fmt.Sprintf(format, args...))
		}
	}

	for i := 0; i < reqs; i++ {
		step := int64(i)
		if err := px.Step(step); err != nil {
			violate("step %d: proxy transition failed: %v", i, err)
		}
		device := uint32(rng.Intn(cfg.devices()))
		queueLen := rng.Intn(64)
		size := int32(1024 << rng.Intn(6))

		v := rc.Decide(device, queueLen, size)

		binary.BigEndian.PutUint64(lb[:8], v.ID)
		lb[8] = 0
		if v.Admit {
			lb[8] = 1
		}
		lb[9] = v.Flags
		_, _ = ledger.Write(lb[:10])

		local := v.Flags&FlagLocal != 0
		if v.Admit {
			rep.Admits++
		} else {
			rep.Declines++
		}
		disruptive := sched.DisruptiveAt(step)
		switch {
		case local && !disruptive:
			violate("step %d: local fail-open outside any disruptive window", i)
		case !local && disruptive:
			violate("step %d: remote verdict inside a disruptive window", i)
		}
		if local && !v.Admit {
			violate("step %d: local verdict must fail open to admit", i)
		}
		if local {
			rep.Local++
			switch {
			case sched.ActiveAt(step, fault.NetBlackout):
				rep.LocalBlackout++
			case sched.ActiveAt(step, fault.NetReset):
				rep.LocalReset++
			case sched.ActiveAt(step, fault.NetStall):
				rep.LocalStall++
			case sched.ActiveAt(step, fault.NetTruncate):
				rep.LocalTruncate++
			}
		} else {
			rep.Remote++
		}
	}
	if rep.Remote+rep.Local != uint64(reqs) {
		violate("answered %d of %d requests", rep.Remote+rep.Local, reqs)
	}
	if rc.Pending() != 0 {
		violate("%d verdicts still pending after the soak", rc.Pending())
	}

	rep.LedgerHash = fmt.Sprintf("%016x", ledger.Sum64())
	rep.Client = rc.Counters()
	_ = rc.Close()
	rep.Proxy = px.Counters()
	if err := px.Close(); err != nil {
		violate("proxy close: %v", err)
	}
	if err := srv.Close(); err != nil {
		violate("server close: %v", err)
	}
	if err := <-serveDone; err != nil {
		violate("serve loop: %v", err)
	}
	// Captured after the graceful drain: every gauge must be settled (no
	// open conns, empty queues), which keeps the whole snapshot stable.
	rep.Server = srv.Stats()
	return rep, nil
}
