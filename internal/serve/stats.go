package serve

import (
	"fmt"
	"math"
	"strings"
	"sync/atomic"
)

// batchBuckets is the number of power-of-two batch-size histogram buckets:
// bucket i counts batches of size in [2^i, 2^(i+1)).
const batchBuckets = 8

// counters is one shard's hot-path telemetry. Everything is atomic so the
// stats snapshot never takes a lock against the decide path.
type counters struct {
	admits     atomic.Uint64
	declines   atomic.Uint64
	sheds      atomic.Uint64 // queue-full fail-opens (reader side)
	deadline   atomic.Uint64 // in-queue deadline fail-opens (worker side)
	partial    atomic.Uint64 // joint groups flushed before filling
	breakered  atomic.Uint64 // decisions answered with the breaker open
	trips      atomic.Uint64
	recoveries atomic.Uint64
	batches    [batchBuckets]atomic.Uint64
	maxPSI     atomic.Uint64 // math.Float64bits, published per window
	held       atomic.Int64  // gauge: joint-group members currently deferred
	widens     atomic.Uint64 // adaptive controller: level increments
	narrows    atomic.Uint64 // adaptive controller: level decrements
	adaptLevel atomic.Int64  // gauge: current controller level
}

func (c *counters) observeBatch(n int) {
	b := 0
	for n > 1 && b < batchBuckets-1 {
		n >>= 1
		b++
	}
	c.batches[b].Add(1)
}

// ShardStats is one shard's counter snapshot.
type ShardStats struct {
	Admits        uint64  `json:"admits"`
	Declines      uint64  `json:"declines"`
	Sheds         uint64  `json:"sheds"`
	DeadlineSheds uint64  `json:"deadline_sheds"`
	PartialFlush  uint64  `json:"partial_flushes"`
	BreakerOpen   uint64  `json:"breaker_answers"`
	Trips         uint64  `json:"trips"`
	Recoveries    uint64  `json:"recoveries"`
	QueueDepth    int     `json:"queue_depth"`
	MaxPSI        float64 `json:"max_psi"`
	Held          int64   `json:"held"`
	// Adaptive micro-batch controller: how often this shard widened and
	// narrowed its batch shape, and the level it sits at now.
	Widens     uint64 `json:"widens"`
	Narrows    uint64 `json:"narrows"`
	AdaptLevel int64  `json:"adapt_level"`
}

func (c *counters) snapshot(depth int) ShardStats {
	return ShardStats{
		Admits:        c.admits.Load(),
		Declines:      c.declines.Load(),
		Sheds:         c.sheds.Load(),
		DeadlineSheds: c.deadline.Load(),
		PartialFlush:  c.partial.Load(),
		BreakerOpen:   c.breakered.Load(),
		Trips:         c.trips.Load(),
		Recoveries:    c.recoveries.Load(),
		QueueDepth:    depth,
		MaxPSI:        math.Float64frombits(c.maxPSI.Load()),
		Held:          c.held.Load(),
		Widens:        c.widens.Load(),
		Narrows:       c.narrows.Load(),
		AdaptLevel:    c.adaptLevel.Load(),
	}
}

// Stats is a point-in-time snapshot of the server's telemetry, exposed both
// in-process (Server.Stats) and over the wire (Client.Stats).
type Stats struct {
	Admits        uint64  `json:"admits"`
	Declines      uint64  `json:"declines"`
	Sheds         uint64  `json:"sheds"`
	DeadlineSheds uint64  `json:"deadline_sheds"`
	PartialFlush  uint64  `json:"partial_flushes"`
	BreakerOpen   uint64  `json:"breaker_answers"`
	Trips         uint64  `json:"trips"`
	Recoveries    uint64  `json:"recoveries"`
	Swaps         uint64  `json:"swaps"`
	ModelVersion  uint32  `json:"model_version"`
	QueueDepth    int     `json:"queue_depth"`
	MaxPSI        float64 `json:"max_psi"`
	// Held is the gauge of joint-group members whose verdicts are deferred
	// waiting for their group to fill; Drained counts decides answered by
	// the graceful-shutdown drain.
	Held    int64  `json:"held"`
	Drained uint64 `json:"drained"`
	// Adaptive micro-batch controller activity summed over shards, plus the
	// widest level any shard currently sits at.
	Widens        uint64 `json:"widens"`
	Narrows       uint64 `json:"narrows"`
	AdaptLevel    int64  `json:"adapt_level"`
	ConnsOpen     int    `json:"conns_open"`
	ConnsAccepted uint64 `json:"conns_accepted"`
	ConnDrops     uint64 `json:"conn_drops"`
	WriteDrops    uint64 `json:"write_drops"`
	// BatchHist[i] counts batches of size in [2^i, 2^(i+1)), summed over
	// shards.
	BatchHist [batchBuckets]uint64 `json:"batch_hist"`
	Shards    []ShardStats         `json:"shards"`
}

// Decisions returns the total number of answered decide requests.
func (s Stats) Decisions() uint64 { return s.Admits + s.Declines }

// String renders a one-line operator summary.
func (s Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "decisions=%d admits=%d declines=%d sheds=%d deadline=%d partial=%d breaker=%d trips=%d swaps=%d v=%d depth=%d psi=%.3f conns=%d/%d drops=%d+%d drained=%d batches=[",
		s.Decisions(), s.Admits, s.Declines, s.Sheds, s.DeadlineSheds, s.PartialFlush,
		s.BreakerOpen, s.Trips, s.Swaps, s.ModelVersion, s.QueueDepth, s.MaxPSI,
		s.ConnsOpen, s.ConnsAccepted, s.ConnDrops, s.WriteDrops, s.Drained)
	for i, n := range s.BatchHist {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%d", n)
	}
	b.WriteByte(']')
	return b.String()
}

func (s *Stats) add(sh ShardStats) {
	s.Admits += sh.Admits
	s.Declines += sh.Declines
	s.Sheds += sh.Sheds
	s.DeadlineSheds += sh.DeadlineSheds
	s.PartialFlush += sh.PartialFlush
	s.BreakerOpen += sh.BreakerOpen
	s.Trips += sh.Trips
	s.Recoveries += sh.Recoveries
	s.QueueDepth += sh.QueueDepth
	s.Held += sh.Held
	s.Widens += sh.Widens
	s.Narrows += sh.Narrows
	if sh.AdaptLevel > s.AdaptLevel {
		s.AdaptLevel = sh.AdaptLevel
	}
	if sh.MaxPSI > s.MaxPSI {
		s.MaxPSI = sh.MaxPSI
	}
	s.Shards = append(s.Shards, sh)
}
