package serve

import (
	"bufio"
	"bytes"
	"net"
	"time"

	"repro/internal/core"
)

// Client speaks the serve wire protocol. It is not safe for concurrent use
// (matching the repo's single-writer idiom); open one Client per goroutine.
//
// Two usage styles:
//
//   - synchronous: Decide blocks for the verdict — simplest, one request in
//     flight;
//   - pipelined: Send queues requests, Flush pushes them, Recv reads
//     verdicts as they arrive. Joint models (JointSize P > 1) hold a
//     group's responses until its P-th member arrives, so a synchronous
//     caller would deadlock — pipeline at least P requests per device.
//
// Responses may arrive out of request order (e.g. a queue-full shed is
// answered ahead of queued work); match them by Verdict.ID.
type Client struct {
	conn net.Conn
	br   *bufio.Reader
	bw   *bufio.Writer
	wbuf []byte
	rbuf []byte
}

// Dial connects to a server. Addresses follow Listen: "unix:/path/sock",
// "tcp:host:port", or a bare TCP address. It blocks as long as the OS lets
// a connect hang; use DialTimeout to bound it.
func Dial(addr string) (*Client, error) { return DialTimeout(addr, 0) }

// DialTimeout is Dial with an upper bound on connection establishment
// (0 means no bound).
func DialTimeout(addr string, timeout time.Duration) (*Client, error) {
	network := "tcp"
	if len(addr) > 5 && addr[:5] == "unix:" {
		network, addr = "unix", addr[5:]
	} else if len(addr) > 4 && addr[:4] == "tcp:" {
		addr = addr[4:]
	}
	conn, err := net.DialTimeout(network, addr, timeout)
	if err != nil {
		return nil, err
	}
	return NewClient(conn), nil
}

// NewClient wraps an established connection (any net.Conn — including a
// fault-injecting wrapper) in a protocol client.
func NewClient(conn net.Conn) *Client {
	return &Client{
		conn: conn,
		br:   bufio.NewReader(conn),
		bw:   bufio.NewWriter(conn),
		rbuf: make([]byte, 256),
	}
}

// Close shuts the connection down.
func (c *Client) Close() error { return c.conn.Close() }

// SetDeadline bounds every pending and future I/O on the connection.
func (c *Client) SetDeadline(t time.Time) error { return c.conn.SetDeadline(t) }

// SetReadDeadline bounds pending and future reads.
func (c *Client) SetReadDeadline(t time.Time) error { return c.conn.SetReadDeadline(t) }

// SetWriteDeadline bounds pending and future writes.
func (c *Client) SetWriteDeadline(t time.Time) error { return c.conn.SetWriteDeadline(t) }

// Send queues one decide request (pipelined style). id is echoed in the
// matching Verdict.
func (c *Client) Send(id uint64, device uint32, queueLen int, size int32) error {
	c.wbuf = appendDecide(c.wbuf[:0], decideRequest{
		id: id, device: device, queueLen: uint32(queueLen), size: uint32(size),
	})
	return c.writeFrameBuffered()
}

// Complete reports one finished I/O so the server's feature tracker for the
// device advances. Buffered like Send; no response.
func (c *Client) Complete(device uint32, latencyNs uint64, queueLen int, size int32) error {
	c.wbuf = appendComplete(c.wbuf[:0], completion{
		device: device, latency: latencyNs, queueLen: uint32(queueLen), size: uint32(size),
	})
	return c.writeFrameBuffered()
}

func (c *Client) writeFrameBuffered() error {
	var hdr [4]byte
	hdr[0] = byte(len(c.wbuf) >> 24)
	hdr[1] = byte(len(c.wbuf) >> 16)
	hdr[2] = byte(len(c.wbuf) >> 8)
	hdr[3] = byte(len(c.wbuf))
	if _, err := c.bw.Write(hdr[:]); err != nil {
		return err
	}
	_, err := c.bw.Write(c.wbuf)
	return err
}

// Flush pushes queued requests to the server.
func (c *Client) Flush() error { return c.bw.Flush() }

// Recv reads the next decide verdict.
func (c *Client) Recv() (Verdict, error) {
	body, err := readFrame(c.br, c.rbuf)
	if err != nil {
		return Verdict{}, err
	}
	c.rbuf = body[:cap(body)]
	return parseDecideResp(body)
}

// Decide asks for one admission decision and waits for it.
func (c *Client) Decide(device uint32, queueLen int, size int32) (Verdict, error) {
	if err := c.Send(0, device, queueLen, size); err != nil {
		return Verdict{}, err
	}
	if err := c.Flush(); err != nil {
		return Verdict{}, err
	}
	return c.Recv()
}

// Stats fetches the server's counter snapshot.
func (c *Client) Stats() (Stats, error) {
	if err := writeFrame(c.bw, []byte{msgStats}); err != nil {
		return Stats{}, err
	}
	if err := c.bw.Flush(); err != nil {
		return Stats{}, err
	}
	body, err := readFrame(c.br, c.rbuf)
	if err != nil {
		return Stats{}, err
	}
	c.rbuf = body[:cap(body)]
	return parseStatsResp(body)
}

// Swap uploads a model (core.Save format) and atomically publishes it,
// returning the new model version.
func (c *Client) Swap(m *core.Model) (uint32, error) {
	var buf bytes.Buffer
	buf.WriteByte(msgSwap)
	if err := m.Save(&buf); err != nil {
		return 0, err
	}
	if err := writeFrame(c.bw, buf.Bytes()); err != nil {
		return 0, err
	}
	if err := c.bw.Flush(); err != nil {
		return 0, err
	}
	body, err := readFrame(c.br, c.rbuf)
	if err != nil {
		return 0, err
	}
	c.rbuf = body[:cap(body)]
	return parseSwapResp(body)
}
