package serve

import (
	"bufio"
	"bytes"
	"net"
	"time"

	"repro/internal/core"
)

// Client speaks the serve wire protocol. It is not safe for concurrent use
// (matching the repo's single-writer idiom); open one Client per goroutine.
//
// Three usage styles:
//
//   - synchronous: Decide blocks for the verdict — simplest, one request in
//     flight;
//   - pipelined: Send queues requests, Flush pushes them, Recv reads
//     verdicts as they arrive. Joint models (JointSize P > 1) hold a
//     group's responses until its P-th member arrives, so a synchronous
//     caller would deadlock — pipeline at least P requests per device;
//   - windowed: Pipeline wraps Send/Flush/Recv in a fixed in-flight window
//     (see Pipeline) so one connection saturates a shard without the caller
//     hand-managing the id space.
//
// Responses may arrive out of request order (e.g. a queue-full shed is
// answered ahead of queued work); match them by Verdict.ID.
//
// Receives decode in place out of the connection's read buffer (the same
// zero-copy frameReader the server uses), so the steady-state decide path
// allocates nothing on either side of the wire.
type Client struct {
	conn net.Conn
	fr   *frameReader
	bw   *bufio.Writer
	// wbuf is the reused encode buffer; Send/Complete rebuild it in place
	// and writeFrameBuffered patches the length header, so it is strictly
	// single-writer — Client is not safe for concurrent use by design.
	//
	//heimdall:owner Send,Complete,writeFrameBuffered
	wbuf []byte
}

// Dial connects to a server. Addresses follow Listen: "unix:/path/sock",
// "tcp:host:port", or a bare TCP address. It blocks as long as the OS lets
// a connect hang; use DialTimeout to bound it.
func Dial(addr string) (*Client, error) { return DialTimeout(addr, 0) }

// DialTimeout is Dial with an upper bound on connection establishment
// (0 means no bound).
func DialTimeout(addr string, timeout time.Duration) (*Client, error) {
	network := "tcp"
	if len(addr) > 5 && addr[:5] == "unix:" {
		network, addr = "unix", addr[5:]
	} else if len(addr) > 4 && addr[:4] == "tcp:" {
		addr = addr[4:]
	}
	conn, err := net.DialTimeout(network, addr, timeout)
	if err != nil {
		return nil, err
	}
	return NewClient(conn), nil
}

// NewClient wraps an established connection (any net.Conn — including a
// fault-injecting wrapper) in a protocol client.
func NewClient(conn net.Conn) *Client {
	return &Client{
		conn: conn,
		fr:   newFrameReader(conn),
		bw:   bufio.NewWriter(conn),
	}
}

// Close shuts the connection down.
func (c *Client) Close() error { return c.conn.Close() }

// SetDeadline bounds every pending and future I/O on the connection.
func (c *Client) SetDeadline(t time.Time) error { return c.conn.SetDeadline(t) }

// SetReadDeadline bounds pending and future reads.
func (c *Client) SetReadDeadline(t time.Time) error { return c.conn.SetReadDeadline(t) }

// SetWriteDeadline bounds pending and future writes.
func (c *Client) SetWriteDeadline(t time.Time) error { return c.conn.SetWriteDeadline(t) }

// Send queues one decide request (pipelined style). id is echoed in the
// matching Verdict.
//
//heimdall:hotpath
func (c *Client) Send(id uint64, device uint32, queueLen int, size int32) error {
	c.wbuf = appendDecide(append(c.wbuf[:0], 0, 0, 0, 0), decideRequest{
		id: id, device: device, queueLen: uint32(queueLen), size: uint32(size),
	})
	return c.writeFrameBuffered()
}

// Complete reports one finished I/O so the server's feature tracker for the
// device advances. Buffered like Send; no response.
//
//heimdall:hotpath
func (c *Client) Complete(device uint32, latencyNs uint64, queueLen int, size int32) error {
	c.wbuf = appendComplete(append(c.wbuf[:0], 0, 0, 0, 0), completion{
		device: device, latency: latencyNs, queueLen: uint32(queueLen), size: uint32(size),
	})
	return c.writeFrameBuffered()
}

// writeFrameBuffered stamps the length prefix over the 4 bytes Send/Complete
// reserved at the head of wbuf and queues the whole frame with one buffered
// write. Header and body share the reused wbuf — a separate stack header
// would escape through the io.Writer and cost an allocation per frame.
//
//heimdall:hotpath
func (c *Client) writeFrameBuffered() error {
	n := len(c.wbuf) - 4
	c.wbuf[0] = byte(n >> 24)
	c.wbuf[1] = byte(n >> 16)
	c.wbuf[2] = byte(n >> 8)
	c.wbuf[3] = byte(n)
	_, err := c.bw.Write(c.wbuf)
	return err
}

// Flush pushes queued requests to the server.
func (c *Client) Flush() error { return c.bw.Flush() }

// Recv reads the next decide verdict. The decode is in place: the frame body
// is parsed straight out of the read buffer and every field copied into the
// returned Verdict, so nothing aliases the buffer after Recv returns.
//
//heimdall:hotpath
func (c *Client) Recv() (Verdict, error) {
	body, err := c.fr.next()
	if err != nil {
		return Verdict{}, err
	}
	return parseDecideResp(body)
}

// Decide asks for one admission decision and waits for it.
func (c *Client) Decide(device uint32, queueLen int, size int32) (Verdict, error) {
	if err := c.Send(0, device, queueLen, size); err != nil {
		return Verdict{}, err
	}
	if err := c.Flush(); err != nil {
		return Verdict{}, err
	}
	return c.Recv()
}

// Pipeline is the windowed async decide API: up to window decides ride the
// wire at once, and the caller gets verdicts back as the window recycles.
// Submit owns the id space — ids are assigned sequentially from 1 — so the
// caller only correlates results by the ids Submit returns.
//
// The window is what turns one connection into a shard-saturating load
// source: while a verdict is in flight the next windowful of requests is
// already queued behind it, so the per-request cost is one buffered encode
// and 1/window of a round trip instead of a full RTT. Joint models hold a
// group's verdicts until its last member arrives, so run window ≥ JointSize
// per device to keep groups filling promptly (the server's GroupTimeout
// flushes stragglers fail-open either way).
//
// Not safe for concurrent use, and don't interleave Pipeline calls with the
// Client's own Send/Recv — the Pipeline assumes every response on the wire
// answers one of its submits.
type Pipeline struct {
	//heimdall:owner Submit,Drain,Client.Pipeline
	c *Client
	//heimdall:owner Submit,Client.Pipeline
	window int
	//heimdall:owner Submit,Client.Pipeline
	seq uint64
	//heimdall:owner Submit,Drain,Inflight
	inflight int
	//heimdall:owner Submit,Drain
	buf []Verdict
}

// Pipeline starts a windowed async session over the client with the given
// in-flight bound (values < 1 are treated as 1, which degrades to
// synchronous behavior).
func (c *Client) Pipeline(window int) *Pipeline {
	if window < 1 {
		window = 1
	}
	return &Pipeline{c: c, window: window, seq: 1}
}

// Inflight returns how many submitted decides have no verdict yet.
func (p *Pipeline) Inflight() int { return p.inflight }

// Submit queues one decide and returns its assigned id. While the window has
// room the send is only buffered — no syscall, no wait. Once the window is
// full, Submit flushes the queued requests, blocks for one verdict, and then
// reaps every further response already sitting in the read buffer — so the
// two syscalls of the flush/receive pair amortize over however many verdicts
// came back together, and the next several Submits are pure buffered encodes.
// The caller matches reaped verdicts to earlier Submits by v.ID (responses
// can overtake each other across shards and on degraded paths).
//
// The returned slice aliases an internal buffer, valid only until the next
// Submit or Drain call; it is nil when the window still had room.
// Allocation-free in steady state (pinned by TestPipelineZeroAlloc).
//
//heimdall:hotpath
func (p *Pipeline) Submit(device uint32, queueLen int, size int32) (id uint64, reaped []Verdict, err error) {
	id = p.seq
	p.seq++
	if err = p.c.Send(id, device, queueLen, size); err != nil {
		return id, nil, err
	}
	p.inflight++
	if p.inflight < p.window {
		return id, nil, nil
	}
	if err = p.c.Flush(); err != nil {
		return id, nil, err
	}
	p.buf = p.buf[:0]
	v, err := p.c.Recv()
	if err != nil {
		return id, nil, err
	}
	p.inflight--
	p.buf = append(p.buf, v)
	for p.inflight > 0 && p.c.fr.buffered() {
		v, err := p.c.Recv()
		if err != nil {
			return id, p.buf, err
		}
		p.inflight--
		p.buf = append(p.buf, v)
	}
	return id, p.buf, nil
}

// Drain flushes queued requests and reaps every outstanding verdict,
// appending them to dst (which may be nil). After Drain the window is empty.
func (p *Pipeline) Drain(dst []Verdict) ([]Verdict, error) {
	if err := p.c.Flush(); err != nil {
		return dst, err
	}
	for p.inflight > 0 {
		v, err := p.c.Recv()
		if err != nil {
			return dst, err
		}
		p.inflight--
		dst = append(dst, v)
	}
	return dst, nil
}

// Stats fetches the server's counter snapshot.
func (c *Client) Stats() (Stats, error) {
	if err := writeFrame(c.bw, []byte{msgStats}); err != nil {
		return Stats{}, err
	}
	if err := c.bw.Flush(); err != nil {
		return Stats{}, err
	}
	body, err := c.fr.next()
	if err != nil {
		return Stats{}, err
	}
	return parseStatsResp(body)
}

// Swap uploads a model (core.Save format) and atomically publishes it,
// returning the new model version.
func (c *Client) Swap(m *core.Model) (uint32, error) {
	var buf bytes.Buffer
	buf.WriteByte(msgSwap)
	if err := m.Save(&buf); err != nil {
		return 0, err
	}
	if err := writeFrame(c.bw, buf.Bytes()); err != nil {
		return 0, err
	}
	if err := c.bw.Flush(); err != nil {
		return 0, err
	}
	body, err := c.fr.next()
	if err != nil {
		return 0, err
	}
	return parseSwapResp(body)
}
