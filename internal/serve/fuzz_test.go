package serve

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// FuzzWireCodec throws arbitrary byte streams at the frame reader and the
// body parsers. The codec must never panic, must reject hostile length
// prefixes before allocating for them, and must round-trip every frame it
// itself produced.
func FuzzWireCodec(f *testing.F) {
	// Seed with well-formed traffic...
	var seed bytes.Buffer
	if err := writeFrame(&seed, appendDecide(nil, decideRequest{id: 7, device: 3, queueLen: 5, size: 4096})); err != nil {
		f.Fatal(err)
	}
	if err := writeFrame(&seed, appendComplete(nil, completion{device: 3, latency: 120_000, queueLen: 5, size: 4096})); err != nil {
		f.Fatal(err)
	}
	if err := writeFrame(&seed, []byte{msgStats}); err != nil {
		f.Fatal(err)
	}
	if err := writeFrame(&seed, append([]byte{msgStatsResp}, []byte(`{"decisions":3}`)...)); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.Bytes())
	// ...and hostile shapes: truncated header, truncated body, zero and
	// oversized lengths.
	f.Add([]byte{0, 0})
	f.Add([]byte{0, 0, 0, 5, msgDecide})
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 1, 2, 3})
	f.Add([]byte{0, 16, 0, 0, msgSwap})
	// Server-response shapes the client-side parsers must survive: empty-ish
	// stats frames (the old Stats path indexed body[0] before checking) and
	// malformed JSON payloads.
	f.Add([]byte{0, 0, 0, 1, msgStatsResp})
	f.Add([]byte{0, 0, 0, 3, msgStatsResp, '{', 'x'})
	f.Add([]byte{0, 0, 0, 2, msgSwapResp, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		// Differential pass: the zero-copy frameReader must yield the same
		// frame sequence as the copying readFrame over the same stream, the
		// in-place decode must not alias the read buffer past the parse, and
		// the pooled response encoder must never over-allocate no matter what
		// mix of responses the stream provokes.
		fr := newFrameReader(bytes.NewReader(data))
		r := bytes.NewReader(data)
		buf := make([]byte, 64)
		w := newSinkWriter(io.Discard)
		for {
			zc, zerr := fr.next()
			body, err := readFrame(r, buf)
			if (zerr == nil) != (err == nil) {
				t.Fatalf("frameReader/readFrame disagree: %v vs %v", zerr, err)
			}
			if err != nil {
				// Every failure mode must be a clean error: end of input,
				// a truncated read, or a typed frame error — never a
				// panic, and never an attempt to allocate the claimed
				// length (both readers bound it by MaxFrame first).
				for _, e := range []error{err, zerr} {
					if e != io.EOF && !errors.Is(e, ErrFrame) && !errors.Is(e, io.ErrUnexpectedEOF) {
						t.Fatalf("unexpected error type: %v", e)
					}
				}
				// Clean close must stay distinguishable in both readers.
				if (zerr == io.EOF) != (err == io.EOF) {
					t.Fatalf("EOF classification disagrees: %v vs %v", zerr, err)
				}
				break
			}
			if len(body) == 0 || len(body) > MaxFrame {
				t.Fatalf("readFrame returned %d-byte body", len(body))
			}
			if !bytes.Equal(zc, body) {
				t.Fatalf("frameReader body %x != readFrame body %x", zc, body)
			}
			buf = body[:cap(body)]
			// Parsers must never panic on arbitrary bodies. Parse from the
			// zero-copy body — it aliases the read buffer, exactly like the
			// server's dispatch path.
			if dec, err := parseDecide(zc); err == nil {
				// Accepted bodies must re-encode to the identical frame.
				want := appendDecide(nil, dec)
				if !bytes.Equal(want, body) {
					t.Fatalf("decide round trip: %x != %x", want, body)
				}
				// Clobber the shared read buffer after the decode: the parsed
				// request must be a full copy, unaffected by buffer reuse.
				for i := range zc {
					zc[i] ^= 0xff
				}
				if got := appendDecide(nil, dec); !bytes.Equal(got, want) {
					t.Fatal("parsed decide aliases the read buffer")
				}
				w.decideResp(dec.id, true, 0, 1)
			}
			if c, err := parseComplete(body); err == nil {
				if got := appendComplete(nil, c); !bytes.Equal(got, body) {
					t.Fatalf("complete round trip: %x != %x", got, body)
				}
			}
			_, _ = parseDecideResp(body)
			_, _ = parseSwapResp(body)
			if _, err := parseStatsResp(body); err == nil {
				// Echo accepted control payloads through the pooled encoder.
				w.control(msgStatsResp, body[1:])
			}
		}
		w.flush()
		checkWriterBounds(t, w)
	})
}

// checkWriterBounds asserts the pooled-encoder invariants: every recycled
// buffer keeps its fixed respBufSize capacity (chunked control payloads may
// never inflate one), the freelist honors its bound, and a flush leaves
// nothing pending.
func checkWriterBounds(t *testing.T, w *connWriter) {
	t.Helper()
	if cap(w.cur) != respBufSize {
		t.Fatalf("open buffer cap %d, want %d", cap(w.cur), respBufSize)
	}
	if len(w.free) > respFreeMax {
		t.Fatalf("freelist holds %d buffers, bound is %d", len(w.free), respFreeMax)
	}
	for i, b := range w.free {
		if cap(b) != respBufSize {
			t.Fatalf("freelist buffer %d cap %d, want %d", i, cap(b), respBufSize)
		}
	}
	if len(w.pend) != 0 {
		t.Fatalf("%d buffers still pending after flush", len(w.pend))
	}
}

// TestWireFrameBounds pins the explicit limits of the codec.
func TestWireFrameBounds(t *testing.T) {
	var buf bytes.Buffer
	if err := writeFrame(&buf, nil); !errors.Is(err, ErrFrame) {
		t.Errorf("empty frame accepted: %v", err)
	}
	if err := writeFrame(&buf, make([]byte, MaxFrame+1)); !errors.Is(err, ErrFrame) {
		t.Errorf("oversized frame accepted: %v", err)
	}
	// A hostile length prefix larger than MaxFrame errors without reading
	// (or allocating) the claimed body.
	hostile := []byte{0xff, 0xff, 0xff, 0xff}
	if _, err := readFrame(bytes.NewReader(hostile), nil); !errors.Is(err, ErrFrame) {
		t.Errorf("hostile length accepted: %v", err)
	}
	// Round trip at the boundary.
	big := make([]byte, MaxFrame)
	big[0] = msgSwap
	if err := writeFrame(&buf, big); err != nil {
		t.Fatal(err)
	}
	body, err := readFrame(&buf, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(body, big) {
		t.Error("MaxFrame round trip corrupted")
	}
}
