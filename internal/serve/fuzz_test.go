package serve

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// FuzzWireCodec throws arbitrary byte streams at the frame reader and the
// body parsers. The codec must never panic, must reject hostile length
// prefixes before allocating for them, and must round-trip every frame it
// itself produced.
func FuzzWireCodec(f *testing.F) {
	// Seed with well-formed traffic...
	var seed bytes.Buffer
	if err := writeFrame(&seed, appendDecide(nil, decideRequest{id: 7, device: 3, queueLen: 5, size: 4096})); err != nil {
		f.Fatal(err)
	}
	if err := writeFrame(&seed, appendComplete(nil, completion{device: 3, latency: 120_000, queueLen: 5, size: 4096})); err != nil {
		f.Fatal(err)
	}
	if err := writeFrame(&seed, []byte{msgStats}); err != nil {
		f.Fatal(err)
	}
	if err := writeFrame(&seed, append([]byte{msgStatsResp}, []byte(`{"decisions":3}`)...)); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.Bytes())
	// ...and hostile shapes: truncated header, truncated body, zero and
	// oversized lengths.
	f.Add([]byte{0, 0})
	f.Add([]byte{0, 0, 0, 5, msgDecide})
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 1, 2, 3})
	f.Add([]byte{0, 16, 0, 0, msgSwap})
	// Server-response shapes the client-side parsers must survive: empty-ish
	// stats frames (the old Stats path indexed body[0] before checking) and
	// malformed JSON payloads.
	f.Add([]byte{0, 0, 0, 1, msgStatsResp})
	f.Add([]byte{0, 0, 0, 3, msgStatsResp, '{', 'x'})
	f.Add([]byte{0, 0, 0, 2, msgSwapResp, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		buf := make([]byte, 64)
		for {
			body, err := readFrame(r, buf)
			if err != nil {
				// Every failure mode must be a clean error: end of input,
				// a truncated read, or a typed frame error — never a
				// panic, and never an attempt to allocate the claimed
				// length (readFrame bounds it by MaxFrame first).
				if err != io.EOF && !errors.Is(err, ErrFrame) && !errors.Is(err, io.ErrUnexpectedEOF) {
					t.Fatalf("unexpected error type: %v", err)
				}
				return
			}
			if len(body) == 0 || len(body) > MaxFrame {
				t.Fatalf("readFrame returned %d-byte body", len(body))
			}
			buf = body[:cap(body)]
			// Parsers must never panic on arbitrary bodies.
			if dec, err := parseDecide(body); err == nil {
				// Accepted bodies must re-encode to the identical frame.
				if got := appendDecide(nil, dec); !bytes.Equal(got, body) {
					t.Fatalf("decide round trip: %x != %x", got, body)
				}
			}
			if c, err := parseComplete(body); err == nil {
				if got := appendComplete(nil, c); !bytes.Equal(got, body) {
					t.Fatalf("complete round trip: %x != %x", got, body)
				}
			}
			_, _ = parseDecideResp(body)
			_, _ = parseSwapResp(body)
			_, _ = parseStatsResp(body)
		}
	})
}

// TestWireFrameBounds pins the explicit limits of the codec.
func TestWireFrameBounds(t *testing.T) {
	var buf bytes.Buffer
	if err := writeFrame(&buf, nil); !errors.Is(err, ErrFrame) {
		t.Errorf("empty frame accepted: %v", err)
	}
	if err := writeFrame(&buf, make([]byte, MaxFrame+1)); !errors.Is(err, ErrFrame) {
		t.Errorf("oversized frame accepted: %v", err)
	}
	// A hostile length prefix larger than MaxFrame errors without reading
	// (or allocating) the claimed body.
	hostile := []byte{0xff, 0xff, 0xff, 0xff}
	if _, err := readFrame(bytes.NewReader(hostile), nil); !errors.Is(err, ErrFrame) {
		t.Errorf("hostile length accepted: %v", err)
	}
	// Round trip at the boundary.
	big := make([]byte, MaxFrame)
	big[0] = msgSwap
	if err := writeFrame(&buf, big); err != nil {
		t.Fatal(err)
	}
	body, err := readFrame(&buf, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(body, big) {
		t.Error("MaxFrame round trip corrupted")
	}
}
