package serve

import (
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"repro/internal/fault"
)

// resilientConfig is the step-paced test configuration: short deadlines,
// no wall-clock backoff gate, so a dead wire resolves in milliseconds and
// every operation may attempt a redial.
var resilientConfig = ClientConfig{
	DialTimeout: 250 * time.Millisecond,
	IOTimeout:   200 * time.Millisecond,
	BackoffBase: -1,
}

// TestResilientClientFailOpen walks the client through the full availability
// arc: remote verdicts while the server is up, local FlagLocal fail-open
// admits while it is down, and remote again — with a counted reconnect —
// after it comes back on the same address.
func TestResilientClientFailOpen(t *testing.T) {
	m := testModel(t, 31, 1)
	addr := "unix:" + filepath.Join(t.TempDir(), "fo.sock")

	start := func() (*Server, chan error) {
		srv := NewServer(m, Config{})
		l, err := Listen(addr)
		if err != nil {
			t.Fatal(err)
		}
		done := make(chan error, 1)
		go func() { done <- srv.Serve(l) }()
		return srv, done
	}

	srv, done := start()
	rc := DialResilient(addr, resilientConfig)
	defer func() {
		if err := rc.Close(); err != nil {
			t.Errorf("client close: %v", err)
		}
	}()

	for i := 0; i < 8; i++ {
		v := rc.Decide(uint32(i%2), i, 4096)
		if v.Flags&FlagLocal != 0 {
			t.Fatalf("decide %d: local verdict with the server up", i)
		}
	}
	if got := rc.Counters().RemoteVerdicts; got != 8 {
		t.Fatalf("remote verdicts = %d, want 8", got)
	}

	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}

	for i := 0; i < 8; i++ {
		v := rc.Decide(uint32(i%2), i, 4096)
		if v.Flags&FlagLocal == 0 {
			t.Fatalf("decide %d: remote verdict with the server down", i)
		}
		if !v.Admit {
			t.Fatalf("decide %d: local verdict must fail open to admit", i)
		}
	}
	if got := rc.Counters().LocalVerdicts; got != 8 {
		t.Fatalf("local verdicts = %d, want 8", got)
	}

	srv, done = start()
	defer func() {
		if err := srv.Close(); err != nil {
			t.Errorf("server close: %v", err)
		}
		if err := <-done; err != nil {
			t.Errorf("serve: %v", err)
		}
	}()

	v := rc.Decide(3, 9, 8192)
	if v.Flags&FlagLocal != 0 {
		t.Fatal("decide after restart: still local")
	}
	c := rc.Counters()
	if c.Reconnects == 0 {
		t.Fatal("no reconnect counted after the server came back")
	}
	if rc.Pending() != 0 {
		t.Fatalf("pending = %d after synchronous decides", rc.Pending())
	}
}

// TestServerDeathMidPipeline kills the wire under a pipelined client with
// decides outstanding. The raw Client must surface an error — never hang —
// and the ResilientClient must resolve every outstanding id to a local
// fail-open verdict.
func TestServerDeathMidPipeline(t *testing.T) {
	m := testModel(t, 32, 1)
	srv := NewServer(m, Config{})
	dir := t.TempDir()
	backend := "unix:" + filepath.Join(dir, "srv.sock")
	front := "unix:" + filepath.Join(dir, "px.sock")
	l, err := Listen(backend)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(l) }()
	t.Cleanup(func() {
		if err := srv.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
		if err := <-done; err != nil {
			t.Errorf("serve: %v", err)
		}
	})
	px, err := fault.NewProxy(front, backend, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := px.Close(); err != nil {
			t.Errorf("proxy close: %v", err)
		}
	})

	// Raw client: pipeline decides, kill the link before the flush, and
	// demand an error within the watchdog window. One warm-up round trip
	// first — the dial alone only reaches the listener backlog, and
	// KillLinks can only kill an accepted link.
	c, err := DialTimeout(front, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Decide(0, 1, 4096); err != nil {
		t.Fatal(err)
	}
	for id := uint64(10); id <= 13; id++ {
		if err := c.Send(id, 0, 3, 4096); err != nil {
			t.Fatal(err)
		}
	}
	px.KillLinks()
	_ = c.Flush() // may already fail; the read path must error regardless
	errCh := make(chan error, 1)
	go func() {
		for {
			if _, err := c.Recv(); err != nil {
				errCh <- err
				return
			}
		}
	}()
	select {
	case err := <-errCh:
		if err == nil {
			t.Fatal("Recv returned nil error after the wire died")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("pipelined Recv hung after the wire died")
	}
	if err := c.Close(); err != nil {
		t.Errorf("raw client close: %v", err)
	}

	// ResilientClient: same death, but every outstanding decide must come
	// back as a verdict — local, fail-open, flagged. The warm-up decide
	// establishes the link (and takes id 1 from the internal sequence, so
	// the pipelined ids start above the small integers).
	rc := DialResilient(front, resilientConfig)
	if v := rc.Decide(0, 1, 4096); v.Flags&FlagLocal != 0 {
		t.Fatal("warm-up decide through a healthy proxy came back local")
	}
	for id := uint64(10); id <= 13; id++ {
		_ = rc.Send(id, 0, 3, 4096)
	}
	px.KillLinks()
	_ = rc.Flush()
	got := map[uint64]bool{}
	for i := 0; i < 4; i++ {
		v, err := rc.Recv()
		if err != nil {
			t.Fatalf("recv %d: %v", i, err)
		}
		if v.Flags&FlagLocal == 0 || !v.Admit {
			t.Fatalf("recv %d: verdict %+v is not a local fail-open admit", i, v)
		}
		got[v.ID] = true
	}
	for id := uint64(10); id <= 13; id++ {
		if !got[id] {
			t.Errorf("id %d never resolved", id)
		}
	}
	if rc.Pending() != 0 {
		t.Fatalf("pending = %d after draining", rc.Pending())
	}
	if _, err := rc.Recv(); err != ErrNoOutstanding {
		t.Fatalf("Recv on empty client: %v, want ErrNoOutstanding", err)
	}
	if err := rc.Close(); err != nil {
		t.Errorf("resilient close: %v", err)
	}
}

// TestGracefulDrain holds a joint group open (3 members of a group of 4),
// closes the server, and requires the drain to flush the partial group to
// the still-connected client — FlagPartial fail-open verdicts, then a clean
// EOF — without leaking a single goroutine.
func TestGracefulDrain(t *testing.T) {
	baseline := runtime.NumGoroutine()

	m := testModel(t, 33, 4)
	// GroupTimeout far above the test's runtime: the shutdown drain, not the
	// group-timeout flush, must be what resolves the held members (under
	// parallel-suite CPU load the 2ms default could win that race).
	srv := NewServer(m, Config{GroupTimeout: time.Minute})
	addr := "unix:" + filepath.Join(t.TempDir(), "drain.sock")
	l, err := Listen(addr)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(l) }()

	c, err := DialTimeout(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	for id := uint64(1); id <= 3; id++ {
		if err := c.Send(id, 7, 3, 4096); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}

	// Wait for the shard to hold all three group members.
	deadline := time.Now().Add(5 * time.Second)
	for srv.Stats().Held != 3 {
		if time.Now().After(deadline) {
			t.Fatalf("held = %d, want 3 before the drain", srv.Stats().Held)
		}
		time.Sleep(time.Millisecond)
	}

	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}

	got := map[uint64]bool{}
	for i := 0; i < 3; i++ {
		v, err := c.Recv()
		if err != nil {
			t.Fatalf("recv %d after drain: %v", i, err)
		}
		if v.Flags&FlagPartial == 0 || !v.Admit {
			t.Fatalf("recv %d: verdict %+v is not a partial-flush fail-open", i, v)
		}
		got[v.ID] = true
	}
	for id := uint64(1); id <= 3; id++ {
		if !got[id] {
			t.Errorf("id %d never drained", id)
		}
	}
	if _, err := c.Recv(); err == nil {
		t.Fatal("conn still delivering after drain; want EOF")
	}
	if err := c.Close(); err != nil {
		t.Errorf("client close: %v", err)
	}

	st := srv.Stats()
	if st.Drained != 3 {
		t.Errorf("drained = %d, want 3", st.Drained)
	}
	if st.PartialFlush == 0 {
		t.Error("partial flushes = 0; the held group was not flushed")
	}
	if st.ConnsOpen != 0 {
		t.Errorf("conns open = %d after close", st.ConnsOpen)
	}

	// Every server goroutine (acceptor, workers, readers) must be gone.
	deadline = time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > baseline {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines: %d, baseline %d — server leaked", runtime.NumGoroutine(), baseline)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestChaosSoakDeterministic is the in-tree version of `heimdall-bench
// chaos`: two shard counts, two runs each, one deterministic key.
func TestChaosSoakDeterministic(t *testing.T) {
	m := testModel(t, 34, 1)
	var keys []string
	for _, shards := range []int{1, 4} {
		for run := 0; run < 2; run++ {
			rep, err := ChaosSoak(m, ChaosConfig{
				Requests:  300,
				Seed:      7,
				Shards:    shards,
				IOTimeout: 150 * time.Millisecond,
				Dir:       t.TempDir(),
			})
			if err != nil {
				t.Fatal(err)
			}
			for _, v := range rep.Violations {
				t.Errorf("shards=%d run=%d: %s", shards, run, v)
			}
			if rep.Local == 0 {
				t.Errorf("shards=%d run=%d: chaos produced no local verdicts", shards, run)
			}
			if rep.Remote == 0 {
				t.Errorf("shards=%d run=%d: chaos produced no remote verdicts", shards, run)
			}
			keys = append(keys, rep.DeterministicKey())
		}
	}
	for i, k := range keys[1:] {
		if k != keys[0] {
			t.Errorf("key %d diverged:\nwant %s\ngot  %s", i+1, keys[0], k)
		}
	}
}
