package serve

import (
	"bytes"
	"encoding/binary"
	"net"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// loopConn is a stub net.Conn whose reads replay one canned response frame
// forever and whose writes vanish — the client-side alloc pins need a
// deterministic peer with no sockets and no goroutines.
type loopConn struct {
	resp []byte
	off  int
}

func (l *loopConn) Read(p []byte) (int, error) {
	n := copy(p, l.resp[l.off:])
	l.off = (l.off + n) % len(l.resp)
	return n, nil
}

func (l *loopConn) Write(p []byte) (int, error)        { return len(p), nil }
func (l *loopConn) Close() error                       { return nil }
func (l *loopConn) LocalAddr() net.Addr                { return nil }
func (l *loopConn) RemoteAddr() net.Addr               { return nil }
func (l *loopConn) SetDeadline(t time.Time) error      { return nil }
func (l *loopConn) SetReadDeadline(t time.Time) error  { return nil }
func (l *loopConn) SetWriteDeadline(t time.Time) error { return nil }

// cannedDecideResp frames one decide response for the stub peer.
func cannedDecideResp(id uint64) []byte {
	body := []byte{msgDecideResp}
	body = binary.BigEndian.AppendUint64(body, id)
	body = append(body, 1, 0) // admit, no flags
	body = binary.BigEndian.AppendUint32(body, 1)
	var buf bytes.Buffer
	if err := writeFrame(&buf, body); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

// TestClientDecideZeroAlloc pins the synchronous client round trip: encode
// into the reused write buffer, flush, decode in place out of the read
// buffer — no allocation once warm.
func TestClientDecideZeroAlloc(t *testing.T) {
	c := NewClient(&loopConn{resp: cannedDecideResp(0)})
	if _, err := c.Decide(1, 4, 4096); err != nil {
		t.Fatal(err)
	}
	if a := testing.AllocsPerRun(400, func() {
		if _, err := c.Decide(1, 4, 4096); err != nil {
			t.Fatal(err)
		}
	}); a != 0 {
		t.Errorf("Client.Decide allocates %.2f per op", a)
	}
}

// TestPipelineZeroAlloc pins the windowed submit/complete path: buffered
// encodes while the window has room, a flush/receive pair plus batched reap
// when it fills, and interleaved Completes riding the same write buffer —
// all allocation-free once the reap buffer is warm.
func TestPipelineZeroAlloc(t *testing.T) {
	c := NewClient(&loopConn{resp: cannedDecideResp(0)})
	p := c.Pipeline(32)
	for i := 0; i < 64; i++ { // fill the window and warm the reap buffer
		if _, _, err := p.Submit(1, 4, 4096); err != nil {
			t.Fatal(err)
		}
	}
	if a := testing.AllocsPerRun(400, func() {
		if _, _, err := p.Submit(1, 4, 4096); err != nil {
			t.Fatal(err)
		}
		if err := c.Complete(1, 120_000, 4, 4096); err != nil {
			t.Fatal(err)
		}
	}); a != 0 {
		t.Errorf("pipelined submit/complete allocates %.2f per op", a)
	}
}

// TestClientPipeline runs the windowed API against a live server: every
// submitted id comes back exactly once, reaps only start once the window
// fills, and Drain empties the window.
func TestClientPipeline(t *testing.T) {
	m := testModel(t, 28, 1)
	srv := NewServer(m, Config{Shards: 2, QueueLen: 4096})
	addr := startServer(t, srv)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const window, n = 16, 300
	p := c.Pipeline(window)
	seen := make(map[uint64]bool)
	for i := 0; i < n; i++ {
		id, reaped, err := p.Submit(1, i%8, 4096)
		if err != nil {
			t.Fatal(err)
		}
		if want := uint64(i + 1); id != want {
			t.Fatalf("submit %d assigned id %d, want %d", i, id, want)
		}
		if i < window-1 && len(reaped) > 0 {
			t.Fatalf("submit %d reaped before the window filled", i)
		}
		for _, v := range reaped {
			if seen[v.ID] {
				t.Fatalf("verdict %d delivered twice", v.ID)
			}
			seen[v.ID] = true
		}
		if p.Inflight() > window {
			t.Fatalf("inflight %d exceeds window %d", p.Inflight(), window)
		}
	}
	rest, err := p.Drain(nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range rest {
		if seen[v.ID] {
			t.Fatalf("verdict %d delivered twice", v.ID)
		}
		seen[v.ID] = true
	}
	if p.Inflight() != 0 {
		t.Fatalf("inflight %d after drain", p.Inflight())
	}
	if len(seen) != n {
		t.Fatalf("%d unique verdicts, want %d", len(seen), n)
	}
	for id := uint64(1); id <= n; id++ {
		if !seen[id] {
			t.Fatalf("id %d never answered", id)
		}
	}
}

// TestResilientSubmitFailOpen pins the windowed fail-open contract: with no
// server at the address, every Submit still resolves — each id surfaces
// exactly once as a FlagLocal admit through the reap/drain path.
func TestResilientSubmitFailOpen(t *testing.T) {
	addr := "unix:" + filepath.Join(t.TempDir(), "nobody.sock")
	r := DialResilient(addr, ClientConfig{BackoffBase: -1, DialTimeout: 50 * time.Millisecond})
	defer r.Close()

	const window, n = 8, 100
	seen := make(map[uint64]bool)
	reap := func(v Verdict) {
		if !v.Admit || v.Flags&FlagLocal == 0 {
			t.Fatalf("dead-wire verdict %+v is not a local fail-open admit", v)
		}
		if seen[v.ID] {
			t.Fatalf("verdict %d delivered twice", v.ID)
		}
		seen[v.ID] = true
	}
	for i := 0; i < n; i++ {
		if _, v, reaped := r.Submit(window, 1, i%8, 4096); reaped {
			reap(v)
		}
	}
	for _, v := range r.Drain(nil) {
		reap(v)
	}
	if len(seen) != n {
		t.Fatalf("%d verdicts, want %d", len(seen), n)
	}
	if got := r.Counters().LocalVerdicts; got != n {
		t.Fatalf("LocalVerdicts = %d, want %d", got, n)
	}
}

// TestResilientSubmitRemote is the healthy-wire half: against a live server
// the windowed path delivers every verdict remotely, none synthesized.
func TestResilientSubmitRemote(t *testing.T) {
	m := testModel(t, 29, 1)
	srv := NewServer(m, Config{Shards: 2, QueueLen: 4096})
	addr := startServer(t, srv)
	r := DialResilient(addr, ClientConfig{})
	defer r.Close()

	const window, n = 16, 300
	seen := 0
	for i := 0; i < n; i++ {
		if _, v, reaped := r.Submit(window, 1, i%8, 4096); reaped {
			if v.Flags&FlagLocal != 0 {
				t.Fatalf("local verdict %+v on a healthy wire", v)
			}
			seen++
		}
	}
	for _, v := range r.Drain(nil) {
		if v.Flags&FlagLocal != 0 {
			t.Fatalf("local verdict %+v on a healthy wire", v)
		}
		seen++
	}
	if seen != n {
		t.Fatalf("%d verdicts, want %d", seen, n)
	}
	if c := r.Counters(); c.RemoteVerdicts != n || c.LocalVerdicts != 0 {
		t.Fatalf("counters %+v: want %d remote, 0 local", c, n)
	}
}

// TestBatchControllerLadder unit-tests the adaptive controller's level
// ladder: sustained pressure climbs one level per period, an idle period
// steps back down, mixed periods hold, and the batch cap and window track
// the level. Pure arithmetic — fully deterministic.
func TestBatchControllerLadder(t *testing.T) {
	cfg := Config{
		AdaptiveBatch:  true,
		MaxBatch:       64,
		BatchWindow:    0,
		BatchWindowMax: 400 * time.Microsecond,
		AdaptPeriod:    32,
	}
	var bc batchController
	bc.init(cfg)
	if bc.maxLevel != 3 { // 8 << 3 = 64
		t.Fatalf("maxLevel = %d, want 3", bc.maxLevel)
	}
	if got := bc.batchCap(); got != 8 {
		t.Fatalf("level-0 batch cap = %d, want 8", got)
	}
	if got := bc.window(); got != 0 {
		t.Fatalf("level-0 window = %v, want 0", got)
	}

	// A period of cap-hitting batches widens exactly once.
	step := func(fill, cap, backlog, times int) (widens, narrows int) {
		for i := 0; i < times; i++ {
			switch bc.observe(fill, cap, backlog) {
			case adaptWiden:
				widens++
			case adaptNarrow:
				narrows++
			}
		}
		return
	}
	if w, n := step(8, 8, 4, 4); w != 1 || n != 0 { // 4×8 = 32 decisions = one period
		t.Fatalf("pressured period: %d widens %d narrows, want 1/0", w, n)
	}
	if got := bc.batchCap(); got != 16 {
		t.Fatalf("level-1 batch cap = %d, want 16", got)
	}
	if got, want := bc.window(), cfg.BatchWindowMax/3; got != want {
		t.Fatalf("level-1 window = %v, want %v", got, want)
	}

	// Climb to the top; the cap and window saturate.
	step(16, 16, 1, 2) // one period at level 1
	step(32, 32, 1, 1) // one period at level 2
	if bc.level != 3 || bc.batchCap() != 64 || bc.window() != cfg.BatchWindowMax {
		t.Fatalf("saturated state: level=%d cap=%d window=%v", bc.level, bc.batchCap(), bc.window())
	}
	// Further pressure holds at the ceiling.
	if w, n := step(64, 64, 9, 1); w != 0 || n != 0 {
		t.Fatalf("ceiling step widened/narrowed: %d/%d", w, n)
	}

	// Mixed pressure (half the batches pressured) holds the level.
	for i := 0; i < 4; i++ {
		bc.observe(8, 64, 1) // pressured: backlog
		bc.observe(8, 64, 0) // not pressured
	}
	if bc.level != 3 {
		t.Fatalf("mixed period moved the level to %d", bc.level)
	}

	// Fully idle periods narrow one level at a time back to zero.
	for lvl := 2; lvl >= 0; lvl-- {
		if w, n := step(1, 64, 0, 32); w != 0 || n != 1 {
			t.Fatalf("idle period at level %d: %d widens %d narrows", lvl+1, w, n)
		}
		if bc.level != lvl {
			t.Fatalf("level = %d, want %d", bc.level, lvl)
		}
	}
	if bc.batchCap() != 8 || bc.window() != 0 {
		t.Fatalf("ground state: cap=%d window=%v", bc.batchCap(), bc.window())
	}

	// Disabled controller: full-size batches, base window, no stepping.
	var off batchController
	off.init(Config{MaxBatch: 64, BatchWindow: 100 * time.Microsecond})
	if off.batchCap() != 64 || off.window() != 100*time.Microsecond {
		t.Fatalf("disabled controller: cap=%d window=%v", off.batchCap(), off.window())
	}
	if got := off.observe(64, 64, 9); got != adaptHold {
		t.Fatalf("disabled controller stepped: %d", got)
	}
}

// runDevicePipelined replays a device script through the windowed Pipeline
// API (completions ride the same write buffer) and returns verdicts indexed
// by decide sequence — Pipeline ids are sequential from 1.
func runDevicePipelined(t *testing.T, addr string, device uint32, ops []op, window int) []Verdict {
	t.Helper()
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := c.Close(); err != nil {
			t.Errorf("client close: %v", err)
		}
	}()
	p := c.Pipeline(window)
	ndecide := 0
	var got []Verdict
	for _, o := range ops {
		if o.decide {
			_, reaped, err := p.Submit(device, o.queueLen, o.size)
			if err != nil {
				t.Fatal(err)
			}
			ndecide++
			got = append(got, reaped...)
		} else {
			if err := c.Complete(device, o.latency, o.queueLen, o.size); err != nil {
				t.Fatal(err)
			}
		}
	}
	got, err = p.Drain(got)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]Verdict, ndecide)
	for _, v := range got {
		if v.ID == 0 || v.ID > uint64(ndecide) {
			t.Fatalf("verdict id %d out of range", v.ID)
		}
		out[v.ID-1] = v
	}
	return out
}

// TestServeDeterminismAdaptivePipelined extends the determinism contract
// over the two new datapath degrees of freedom: the adaptive micro-batch
// controller (batch shapes now drift with load) and client pipeline depth.
// Whatever shapes the controller picks and however deep the window, verdicts
// must stay byte-identical to the sequential reference.
func TestServeDeterminismAdaptivePipelined(t *testing.T) {
	const devs, opsPer = 5, 200
	for _, joint := range []int{1, 4} {
		m := testModel(t, 27, joint)
		const q = 8192
		ref := decisionTrace(t, m, Config{Shards: 1, MaxBatch: 1, QueueLen: q, GroupTimeout: time.Minute}, devs, opsPer, joint)
		for _, tc := range []struct {
			cfg    Config
			window int
		}{
			// Adaptive controller with a tight period so it actually steps,
			// driven by fully-pipelined clients.
			{Config{Shards: 2, AdaptiveBatch: true, AdaptPeriod: 32, BatchWindowMax: 200 * time.Microsecond,
				MaxBatch: 64, QueueLen: q, GroupTimeout: time.Minute}, 0},
			// Windowed pipeline against a fixed batch shape.
			{Config{Shards: 4, MaxBatch: 32, QueueLen: q, GroupTimeout: time.Minute}, 24},
			// Windowed pipeline and the adaptive controller together.
			{Config{Shards: 4, AdaptiveBatch: true, AdaptPeriod: 64, BatchWindow: 20 * time.Microsecond,
				MaxBatch: 64, QueueLen: q, GroupTimeout: time.Minute}, 16},
		} {
			srv := NewServer(m, tc.cfg)
			addr := startServer(t, srv)
			var wg sync.WaitGroup
			var mu sync.Mutex
			got := make(map[uint32][]Verdict)
			for d := 0; d < devs; d++ {
				wg.Add(1)
				go func(device uint32) {
					defer wg.Done()
					ops := deviceOps(int64(device)+100, opsPer, joint)
					var vs []Verdict
					if tc.window > 0 {
						vs = runDevicePipelined(t, addr, device, ops, tc.window)
					} else {
						vs = runDevice(t, addr, device, ops)
					}
					mu.Lock()
					got[device] = vs
					mu.Unlock()
				}(uint32(d))
			}
			wg.Wait()
			for d := uint32(0); d < devs; d++ {
				if len(got[d]) != len(ref[d]) {
					t.Fatalf("joint=%d adaptive=%v window=%d device %d: %d verdicts, reference %d",
						joint, tc.cfg.AdaptiveBatch, tc.window, d, len(got[d]), len(ref[d]))
				}
				for i, v := range got[d] {
					if v.Flags != 0 {
						t.Fatalf("joint=%d adaptive=%v window=%d device %d decision %d degraded (flags %#x)",
							joint, tc.cfg.AdaptiveBatch, tc.window, d, i, v.Flags)
					}
					if v.Admit != ref[d][i] {
						t.Fatalf("joint=%d adaptive=%v window=%d device %d decision %d: %v != sequential %v",
							joint, tc.cfg.AdaptiveBatch, tc.window, d, i, v.Admit, ref[d][i])
					}
				}
			}
		}
	}
}
