package serve

import (
	"bufio"
	"io"
	"testing"

	"repro/internal/feature"
)

// TestDecideOneZeroAlloc pins the acceptance criterion for the steady-state
// decide path: once the device state and writer buffers are warm, one
// decision — feature assembly, forward pass, response encode — allocates
// nothing. The writer drains into io.Discard so the pin covers the whole
// serve-side path up to the socket write.
func TestDecideOneZeroAlloc(t *testing.T) {
	for _, joint := range []int{1, 4} {
		m := testModel(t, 31, joint)
		// A bare shard: decideOne touches no server state beyond the
		// published model, so no worker goroutine is needed (or wanted —
		// the pin must measure only the decide path itself).
		sm := &servingModel{m: m, version: 1}
		sh := &shard{scr: m.NewScratch(), scrFor: sm}
		st := &deviceState{win: feature.NewWindow(m.Spec().Depth)}
		st.win.Push(feature.Hist{Latency: 120_000, QueueLen: 3, Thpt: 55})
		out := &connWriter{bw: bufio.NewWriter(io.Discard)}

		var seq uint64
		// Warm up: grow st.row/st.sizes/st.pend and the touched slice, and
		// fill a joint group at least once.
		for i := 0; i < 8; i++ {
			sh.decideOne(sm, st, decideRequest{id: seq, device: 1, queueLen: 4, size: 8192}, 0, out)
			seq++
		}
		sh.touched = sh.touched[:0]
		if a := testing.AllocsPerRun(400, func() {
			sh.decideOne(sm, st, decideRequest{id: seq, device: 1, queueLen: 4, size: 8192}, 0, out)
			seq++
		}); a != 0 {
			t.Errorf("joint=%d: decideOne allocates %.2f per op", joint, a)
		}
	}
}

// TestDecideRespZeroAlloc pins the response encoder alone.
func TestDecideRespZeroAlloc(t *testing.T) {
	out := &connWriter{bw: bufio.NewWriter(io.Discard)}
	if a := testing.AllocsPerRun(400, func() {
		out.decideResp(42, true, 0, 7)
	}); a != 0 {
		t.Errorf("decideResp allocates %.2f per op", a)
	}
}
