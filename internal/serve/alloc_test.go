package serve

import (
	"io"
	"testing"

	"repro/internal/feature"
)

// TestStagedDecideZeroAlloc pins the acceptance criterion for the
// steady-state decide path: once the staging buffers and writer are warm, a
// full batch cycle — stage (feature assembly), one batched forward pass,
// respond, flush — allocates nothing. The writer drains into io.Discard so
// the pin covers the whole serve-side path up to the socket write, including
// the response-buffer freelist recycling through flush.
func TestStagedDecideZeroAlloc(t *testing.T) {
	const batch = 4
	for _, joint := range []int{1, 4} {
		m := testModel(t, 31, joint)
		// A bare shard: the decide path touches no server state beyond the
		// published model, so no worker goroutine is needed (or wanted —
		// the pin must measure only the decide path itself).
		sm := &servingModel{m: m, version: 1}
		sh := &shard{scr: m.NewBatchScratch(batch), scrFor: sm}
		st := &deviceState{win: feature.NewWindow(m.Spec().Depth)}
		st.win.Push(feature.Hist{Latency: 120_000, QueueLen: 3, Thpt: 55})
		out := newSinkWriter(io.Discard)

		var seq uint64
		// Warm up: grow the slot buffers, st.sizes/st.pend, the staging and
		// touched slices, and fill a joint group at least once.
		for i := 0; i < 4*batch; i++ {
			sh.stageDecide(sm, st, decideRequest{id: seq, device: 1, queueLen: 4, size: 8192}, 0, out)
			seq++
			if len(sh.infs) >= batch {
				sh.decideStaged(sm)
			}
		}
		sh.decideStaged(sm)
		sh.touched = sh.touched[:0]
		out.flush()
		if a := testing.AllocsPerRun(400, func() {
			for k := 0; k < batch; k++ {
				sh.stageDecide(sm, st, decideRequest{id: seq, device: 1, queueLen: 4, size: 8192}, 0, out)
				seq++
			}
			sh.decideStaged(sm)
			sh.touched = sh.touched[:0]
			out.flush()
		}); a != 0 {
			t.Errorf("joint=%d: staged decide cycle allocates %.2f per op", joint, a)
		}
	}
}

// TestDecideRespZeroAlloc pins the response encoder alone, flushing every
// iteration so the encode buffer keeps cycling through the freelist.
func TestDecideRespZeroAlloc(t *testing.T) {
	out := newSinkWriter(io.Discard)
	out.decideResp(42, true, 0, 7)
	out.flush()
	if a := testing.AllocsPerRun(400, func() {
		out.decideResp(42, true, 0, 7)
		out.flush()
	}); a != 0 {
		t.Errorf("decideResp allocates %.2f per op", a)
	}
}

// TestControlFrameZeroAlloc pins the pooled control-frame encoder used for
// stats, swap, and shed replies (satellite for the old per-response
// allocation at the stats/error reply path): framing a caller-supplied
// payload must not allocate once the writer is warm.
func TestControlFrameZeroAlloc(t *testing.T) {
	out := newSinkWriter(io.Discard)
	payload := make([]byte, 512)
	out.control(msgStatsResp, payload)
	out.flush()
	if a := testing.AllocsPerRun(400, func() {
		out.control(msgStatsResp, payload)
		out.flush()
	}); a != 0 {
		t.Errorf("control frame allocates %.2f per op", a)
	}
}
