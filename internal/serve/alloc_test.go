package serve

import (
	"io"
	"testing"

	"repro/internal/feature"
)

// TestStagedDecideZeroAlloc pins the acceptance criterion for the
// steady-state decide path: once the staging buffers and writer are warm, a
// full batch cycle — stage (feature assembly), one batched forward pass,
// respond, flush — allocates nothing. The writer drains into io.Discard so
// the pin covers the whole serve-side path up to the socket write, including
// the response-buffer freelist recycling through flush.
func TestStagedDecideZeroAlloc(t *testing.T) {
	const batch = 4
	for _, joint := range []int{1, 4} {
		m := testModel(t, 31, joint)
		// A bare shard: the decide path touches no server state beyond the
		// published model, so no worker goroutine is needed (or wanted —
		// the pin must measure only the decide path itself).
		sm := &servingModel{m: m, version: 1}
		sh := &shard{srv: &Server{}, scr: m.NewBatchScratch(batch), scrFor: sm}
		st := &deviceState{win: feature.NewWindow(m.Spec().Depth)}
		st.win.Push(feature.Hist{Latency: 120_000, QueueLen: 3, Thpt: 55})
		out := newSinkWriter(io.Discard)

		var seq uint64
		// Warm up: grow the slot buffers, st.sizes/st.pend, the staging and
		// touched slices, and fill a joint group at least once.
		for i := 0; i < 4*batch; i++ {
			sh.stageDecide(sm, st, decideRequest{id: seq, device: 1, queueLen: 4, size: 8192}, 0, out)
			seq++
			if len(sh.infs) >= batch {
				sh.decideStaged(sm)
			}
		}
		sh.decideStaged(sm)
		sh.touched = sh.touched[:0]
		out.flush()
		if a := testing.AllocsPerRun(400, func() {
			for k := 0; k < batch; k++ {
				sh.stageDecide(sm, st, decideRequest{id: seq, device: 1, queueLen: 4, size: 8192}, 0, out)
				seq++
			}
			sh.decideStaged(sm)
			sh.touched = sh.touched[:0]
			out.flush()
		}); a != 0 {
			t.Errorf("joint=%d: staged decide cycle allocates %.2f per op", joint, a)
		}
	}
}

// fixedTap is a zero-alloc DecisionTap/CompletionSink for the harvest pin:
// it copies every tapped row into a preallocated ring, the same shape the
// lifecycle harvester uses.
type fixedTap struct {
	rows  [][]float64
	n     int
	comps int
}

func (f *fixedTap) OnDecision(device uint32, row []float64, admit bool) {
	slot := f.rows[f.n%len(f.rows)]
	f.rows[f.n%len(f.rows)] = append(slot[:0], row...)
	f.n++
}

func (f *fixedTap) OnCompletion(device uint32, latencyNs uint64, queueLen, size uint32) {
	f.comps++
}

// TestStagedDecideZeroAllocHarvesting re-pins the staged decide cycle with
// the continuous-learning hooks attached: a CompletionSink on the complete
// path and a DecisionTap on the decide path. Harvesting must not cost the
// hot path a single allocation — the acceptance criterion for the managed
// server.
func TestStagedDecideZeroAllocHarvesting(t *testing.T) {
	const batch = 4
	m := testModel(t, 33, 1)
	sm := &servingModel{m: m, version: 1}
	tap := &fixedTap{rows: make([][]float64, 8)}
	for i := range tap.rows {
		tap.rows[i] = make([]float64, 0, m.Spec().Width()+4)
	}
	srv := &Server{cfg: Config{Completions: tap, Decisions: tap}}
	sh := &shard{srv: srv, scr: m.NewBatchScratch(batch), scrFor: sm}
	st := &deviceState{win: feature.NewWindow(m.Spec().Depth)}
	st.win.Push(feature.Hist{Latency: 120_000, QueueLen: 3, Thpt: 55})
	out := newSinkWriter(io.Discard)
	sh.devs = map[uint32]*deviceState{1: st}

	var seq uint64
	comp := request{kind: msgComplete, comp: completion{device: 1, latency: 250_000, queueLen: 4, size: 8192}}
	for i := 0; i < 4*batch; i++ {
		sh.process(sm, &comp, 0)
		sh.stageDecide(sm, st, decideRequest{id: seq, device: 1, queueLen: 4, size: 8192}, 0, out)
		seq++
		if len(sh.infs) >= batch {
			sh.decideStaged(sm)
		}
	}
	sh.decideStaged(sm)
	sh.touched = sh.touched[:0]
	out.flush()
	if a := testing.AllocsPerRun(400, func() {
		for k := 0; k < batch; k++ {
			sh.process(sm, &comp, 0)
			sh.stageDecide(sm, st, decideRequest{id: seq, device: 1, queueLen: 4, size: 8192}, 0, out)
			seq++
		}
		sh.decideStaged(sm)
		sh.touched = sh.touched[:0]
		out.flush()
	}); a != 0 {
		t.Errorf("staged decide cycle with harvesting allocates %.2f per op", a)
	}
	if tap.n == 0 || tap.comps == 0 {
		t.Fatalf("hooks never fired: taps=%d comps=%d", tap.n, tap.comps)
	}
}

// TestDecideRespZeroAlloc pins the response encoder alone, flushing every
// iteration so the encode buffer keeps cycling through the freelist.
func TestDecideRespZeroAlloc(t *testing.T) {
	out := newSinkWriter(io.Discard)
	out.decideResp(42, true, 0, 7)
	out.flush()
	if a := testing.AllocsPerRun(400, func() {
		out.decideResp(42, true, 0, 7)
		out.flush()
	}); a != 0 {
		t.Errorf("decideResp allocates %.2f per op", a)
	}
}

// TestControlFrameZeroAlloc pins the pooled control-frame encoder used for
// stats, swap, and shed replies (satellite for the old per-response
// allocation at the stats/error reply path): framing a caller-supplied
// payload must not allocate once the writer is warm.
func TestControlFrameZeroAlloc(t *testing.T) {
	out := newSinkWriter(io.Discard)
	payload := make([]byte, 512)
	out.control(msgStatsResp, payload)
	out.flush()
	if a := testing.AllocsPerRun(400, func() {
		out.control(msgStatsResp, payload)
		out.flush()
	}); a != 0 {
		t.Errorf("control frame allocates %.2f per op", a)
	}
}
