package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/drift"
)

// Config tunes the server. The zero value is usable: 4 shards, immediate
// batching, no deadline shedding, breaker on.
type Config struct {
	// Shards is the number of device shards (default 4). A device is pinned
	// to shard device%Shards, so all its state has one writer.
	Shards int
	// QueueLen bounds each shard's request queue (default 256). A decide
	// arriving at a full queue is answered admit+FlagShed without inference.
	QueueLen int
	// BatchWindow is how long a shard waits after the first request of a
	// wakeup for more to arrive (default 0: decide immediately). Batching
	// amortizes wakeups and writer flushes; it never changes decisions.
	BatchWindow time.Duration
	// MaxBatch bounds one wakeup's batch (default 64).
	MaxBatch int
	// Budget, when positive, sheds decide requests that aged past it in
	// queue: answered admit+FlagDeadline without inference, so an I/O never
	// waits on a backlogged predictor longer than the budget.
	Budget time.Duration
	// GroupTimeout bounds how long a partially-filled joint group (models
	// with JointSize P > 1) may hold its members' responses before flushing
	// them admit+FlagPartial (default 2ms). Only a deadline or shutdown
	// flushes partial groups; group membership itself is sequence-based and
	// deterministic.
	GroupTimeout time.Duration

	// AdaptiveBatch enables the per-shard micro-batch controller: a
	// decision-count-driven feedback loop that widens the effective batch
	// window and size (up to BatchWindowMax/MaxBatch) under sustained queue
	// pressure and narrows them when the queue drains. Shapes change;
	// verdicts never do.
	AdaptiveBatch bool
	// BatchWindowMax caps how far the controller may widen the gather
	// window (default 8×BatchWindow, or 500µs when BatchWindow is 0).
	BatchWindowMax time.Duration
	// AdaptPeriod is how many decisions the controller observes between
	// steps of its level ladder (default 256).
	AdaptPeriod int

	// BreakerWindow is the per-shard decision window for shed-rate trip
	// checks (default 256; negative disables the breaker).
	BreakerWindow int
	// TripShedRate is the windowed shed fraction that trips the breaker
	// (default 0.5). An open breaker answers admit+FlagBreaker without
	// inference for Cooldown decisions, letting the shard drain, then
	// half-open-probes the model.
	TripShedRate float64
	// Cooldown is how many open-state decisions bypass inference before
	// probing resumes (default 4×BreakerWindow).
	Cooldown int
	// Probes is how many half-open probes decide recovery (default 16).
	Probes int

	// ReadTimeout, when positive, bounds how long a connection may idle
	// between frames; a peer that sends nothing for longer is dropped. Zero
	// keeps connections open indefinitely (the pre-hardening behavior).
	ReadTimeout time.Duration
	// WriteTimeout, when positive, bounds every response write. A peer that
	// cannot drain its responses within it is dropped (write shed) so a slow
	// client can never hold a shard worker hostage. Zero disables the bound.
	WriteTimeout time.Duration

	// DriftRef, when set, gives every shard an input-drift detector
	// (internal/drift PSI) referenced on these training-time feature rows.
	// Shards observe the rows they infer on and publish MaxPSI in Stats, so
	// an operator (or the retrain loop in cmd/heimdall-serve's example) can
	// watch for drift and hot-swap a retrained model.
	DriftRef [][]float64
	// DriftBins is the detector's histogram resolution (default 10).
	DriftBins int
	// OnDrift, when set together with DriftRef, is registered on every
	// shard's detector: it is called back (with the window's MaxPSI) each
	// time a shard publishes a PSI at or above DriftThreshold — the push
	// alternative to polling MaxPSI out of Stats. The callback runs on
	// shard worker goroutines, possibly concurrently from several shards;
	// it must be fast and concurrency-safe.
	OnDrift func(maxPSI float64)
	// DriftThreshold is the PSI that triggers OnDrift (default 0.1, the
	// conventional "moderate shift" floor).
	DriftThreshold float64

	// Completions, when set, receives every completion observation after
	// it updates the device's feature trackers — the harvest hook
	// continuous learning feeds on. Before this hook, the measured
	// latencies were simply dropped. The sink is called on shard worker
	// goroutines (concurrently across shards, in completion order within a
	// device) and must not block; nil costs the decide/complete paths
	// nothing.
	Completions CompletionSink
	// Decisions, when set, observes a sample of served verdicts together
	// with the raw feature rows they were inferred on — the shadow-scoring
	// tap. Called inside the zero-alloc decide hot path, so implementations
	// must not allocate in steady state, must not retain row beyond the
	// call, and must not block.
	Decisions DecisionTap
}

// CompletionSink consumes completion-side latency observations the shards
// would otherwise discard after updating per-device feature trackers.
// Implementations are invoked from shard worker goroutines: concurrently
// across devices on different shards, strictly in completion order within
// one device.
type CompletionSink interface {
	OnCompletion(device uint32, latencyNs uint64, queueLen, size uint32)
}

// DecisionTap observes inferred verdicts on the decide hot path. row is the
// raw (unscaled) feature row the model scored, valid only for the duration
// of the call; implementations copy what they keep and return quickly.
// Shed/breaker/partial verdicts never reach the tap — only real inferences.
type DecisionTap interface {
	OnDecision(device uint32, row []float64, admit bool)
}

func (c Config) shards() int {
	if c.Shards > 0 {
		return c.Shards
	}
	return 4
}

func (c Config) queueLen() int {
	if c.QueueLen > 0 {
		return c.QueueLen
	}
	return 256
}

func (c Config) maxBatch() int {
	if c.MaxBatch > 0 {
		return c.MaxBatch
	}
	return 64
}

func (c Config) groupTimeout() time.Duration {
	if c.GroupTimeout > 0 {
		return c.GroupTimeout
	}
	return 2 * time.Millisecond
}

func (c Config) batchWindowMax() time.Duration {
	if c.BatchWindowMax > 0 {
		return c.BatchWindowMax
	}
	if c.BatchWindow > 0 {
		return 8 * c.BatchWindow
	}
	return 500 * time.Microsecond
}

func (c Config) adaptPeriod() int {
	if c.AdaptPeriod > 0 {
		return c.AdaptPeriod
	}
	return 256
}

func (c Config) breakerWindow() int {
	if c.BreakerWindow > 0 {
		return c.BreakerWindow
	}
	if c.BreakerWindow < 0 {
		return 0 // disabled
	}
	return 256
}

func (c Config) tripShedRate() float64 {
	if c.TripShedRate > 0 {
		return c.TripShedRate
	}
	return 0.5
}

func (c Config) cooldown() int {
	if c.Cooldown > 0 {
		return c.Cooldown
	}
	return 4 * c.breakerWindow()
}

func (c Config) probes() int {
	if c.Probes > 0 {
		return c.Probes
	}
	return 16
}

func (c Config) driftBins() int {
	if c.DriftBins > 0 {
		return c.DriftBins
	}
	return 10
}

func (c Config) driftThreshold() float64 {
	if c.DriftThreshold > 0 {
		return c.DriftThreshold
	}
	return 0.1
}

// servingModel is one immutable published model. Workers load the pointer
// once per batch, so every decision in a batch comes from one consistent
// (model, version) pair — a swap can never produce a torn read.
type servingModel struct {
	m       *core.Model
	version uint32
}

// Server is the online admission service. Create with NewServer, attach
// listeners with Serve, stop with Close.
type Server struct {
	cfg    Config
	model  atomic.Pointer[servingModel]
	vers   atomic.Uint32
	swaps  atomic.Uint64
	shards []*shard
	start  time.Time

	accepts    atomic.Uint64 // connections accepted over all listeners
	connDrops  atomic.Uint64 // connections dropped on read/protocol errors
	writeDrops atomic.Uint64 // connections shed because a response write failed
	drained    atomic.Uint64 // decides answered during graceful shutdown

	mu        sync.Mutex
	listeners map[net.Listener]struct{}
	conns     map[net.Conn]struct{}
	closed    bool

	wgConns   sync.WaitGroup
	wgWorkers sync.WaitGroup
}

// NewServer builds the shards and starts their workers. The model must be
// treated as immutable from here on (publish changes via Swap).
//
//heimdall:walltime
func NewServer(m *core.Model, cfg Config) *Server {
	s := &Server{
		cfg:       cfg,
		start:     time.Now(),
		listeners: make(map[net.Listener]struct{}),
		conns:     make(map[net.Conn]struct{}),
	}
	s.vers.Store(1)
	s.model.Store(&servingModel{m: m, version: 1})
	for i := 0; i < cfg.shards(); i++ {
		sh := &shard{
			srv:  s,
			q:    make(chan request, cfg.queueLen()),
			devs: make(map[uint32]*deviceState),
		}
		sh.ctl.init(cfg)
		if len(cfg.DriftRef) > 0 {
			sh.det = drift.NewInputDetector(cfg.DriftRef, cfg.driftBins())
			if cfg.OnDrift != nil {
				sh.det.Subscribe(cfg.driftThreshold(), cfg.OnDrift)
			}
		}
		s.shards = append(s.shards, sh)
		s.wgWorkers.Add(1)
		go sh.run()
	}
	return s
}

// now is the server's monotonic clock: nanoseconds since NewServer. Queue
// deadlines compare these stamps; nothing persists them.
//
//heimdall:walltime
func (s *Server) now() int64 { return int64(time.Since(s.start)) }

// Model returns the currently published model and its version.
func (s *Server) Model() (*core.Model, uint32) {
	sm := s.model.Load()
	return sm.m, sm.version
}

// Swap atomically publishes a new model and returns its version. In-flight
// batches finish on the model they loaded; later batches use the new one.
// No request is dropped and none observes a half-swapped state.
func (s *Server) Swap(m *core.Model) uint32 {
	v := s.vers.Add(1)
	s.model.Store(&servingModel{m: m, version: v})
	s.swaps.Add(1)
	return v
}

// Stats snapshots all shard counters.
func (s *Server) Stats() Stats {
	var out Stats
	sm := s.model.Load()
	out.ModelVersion = sm.version
	out.Swaps = s.swaps.Load()
	out.ConnsAccepted = s.accepts.Load()
	out.ConnDrops = s.connDrops.Load()
	out.WriteDrops = s.writeDrops.Load()
	out.Drained = s.drained.Load()
	s.mu.Lock()
	out.ConnsOpen = len(s.conns)
	s.mu.Unlock()
	for _, sh := range s.shards {
		out.add(sh.cnt.snapshot(len(sh.q)))
		for i := range sh.cnt.batches {
			out.BatchHist[i] += sh.cnt.batches[i].Load()
		}
	}
	return out
}

// Listen opens a listener for addr. Addresses are "unix:/path/sock" or
// "tcp:host:port" (bare addresses default to tcp).
func Listen(addr string) (net.Listener, error) {
	network := "tcp"
	if len(addr) > 5 && addr[:5] == "unix:" {
		network, addr = "unix", addr[5:]
	} else if len(addr) > 4 && addr[:4] == "tcp:" {
		addr = addr[4:]
	}
	return net.Listen(network, addr)
}

// Serve accepts connections on l until Close (or a listener error) and
// blocks. Multiple listeners may serve concurrently.
func (s *Server) Serve(l net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		if err := l.Close(); err != nil {
			return err
		}
		return fmt.Errorf("serve: server closed")
	}
	s.listeners[l] = struct{}{}
	s.mu.Unlock()
	for {
		c, err := l.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			delete(s.listeners, l)
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			_ = c.Close()
			return nil
		}
		s.conns[c] = struct{}{}
		s.mu.Unlock()
		s.accepts.Add(1)
		s.wgConns.Add(1)
		go s.handleConn(c)
	}
}

// Close drains gracefully: stop accepting, half-close every connection so
// no new request enters but pending verdicts still flow, wait for the
// readers, drain the shard queues (deciding normally, flushing held
// joint-group members fail-open), and only then close the sockets. Every
// request that made it into a queue gets its verdict. Safe to call once.
//
//heimdall:walltime
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	var firstErr error
	for l := range s.listeners {
		if err := l.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	// Half-close the read side (deadline-kick as a fallback for conn types
	// without CloseRead): readers wake and exit, the write side stays up so
	// drained work is still answered.
	for _, c := range conns {
		if cr, ok := c.(interface{ CloseRead() error }); ok {
			_ = cr.CloseRead()
		} else {
			_ = c.SetReadDeadline(time.Now())
		}
	}
	s.wgConns.Wait()
	for _, sh := range s.shards {
		close(sh.q)
	}
	s.wgWorkers.Wait()
	// Everything enqueued has been answered and flushed; drop the wire.
	s.mu.Lock()
	for c := range s.conns {
		if err := c.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
		delete(s.conns, c)
	}
	s.mu.Unlock()
	return firstErr
}

// request is one routed message. It travels the shard queue by value — the
// channel send copies the struct — so steady-state traffic needs no pool and
// no allocation per request, and request lifetime can never depend on
// sync.Pool's GC-coupled reuse order.
type request struct {
	kind uint8 // msgDecide or msgComplete
	dec  decideRequest
	comp completion
	enq  int64 // Server.now() at enqueue
	out  *connWriter
}

// device returns the request's routing key.
func (r *request) device() uint32 {
	if r.kind == msgComplete {
		return r.comp.device
	}
	return r.dec.device
}

// handleConn runs one connection's read loop and settles its lifecycle:
// on a graceful drain the socket is left to Close (which answers the
// drained work through it first); otherwise abnormal exits are counted and
// the socket dropped.
func (s *Server) handleConn(c net.Conn) {
	defer s.wgConns.Done()
	err := s.serveConn(c)
	s.mu.Lock()
	draining := s.closed
	if !draining {
		delete(s.conns, c)
	}
	s.mu.Unlock()
	if draining {
		return // Close owns the socket now
	}
	if err != nil && err != io.EOF {
		s.connDrops.Add(1)
	}
	_ = c.Close()
}

// serveConn reads frames and routes them. Decide and complete messages go
// to the owning shard; stats and swap are answered inline (they are not
// hot). io.EOF is the clean-close return.
//
// The read loop is syscall-frugal: one blocking read pulls whatever the
// peer has sent into the bufio buffer, then the drain loop parses every
// fully-buffered frame in place (zero-copy — bodies alias the read buffer
// and the fixed-width fields are copied out before the buffer is reused)
// without touching the socket again. Responses produced inline during the
// drain (queue-full sheds, stats, swap acks) coalesce in the writer and go
// out in one vectored flush per drain.
//
//heimdall:walltime
func (s *Server) serveConn(c net.Conn) error {
	fr := newFrameReader(c)
	cw := newConnWriter(c, s.cfg.WriteTimeout, &s.writeDrops)
	rt := s.cfg.ReadTimeout
	for {
		if rt > 0 {
			_ = c.SetReadDeadline(time.Now().Add(rt))
		}
		body, err := fr.next() // likely one read syscall
		if err != nil {
			return err
		}
		for {
			if err := s.dispatch(body, cw); err != nil {
				return err
			}
			if !fr.buffered() {
				break
			}
			if body, err = fr.next(); err != nil {
				return err
			}
		}
		cw.flush()
	}
}

// dispatch routes one parsed frame body. The body may alias the connection's
// read buffer: every field a message needs is copied into the value-typed
// request before dispatch returns, so nothing outlives the buffer's reuse.
func (s *Server) dispatch(body []byte, cw *connWriter) error {
	nshards := uint32(len(s.shards))
	switch body[0] {
	case msgDecide:
		dec, err := parseDecide(body)
		if err != nil {
			return err
		}
		sh := s.shards[dec.device%nshards]
		select {
		case sh.q <- request{kind: msgDecide, dec: dec, enq: s.now(), out: cw}:
		default:
			// Queue full: fail open immediately so the I/O proceeds. The
			// response coalesces with the rest of the drain's answers and is
			// flushed by the read loop.
			sh.cnt.sheds.Add(1)
			sh.cnt.admits.Add(1)
			cw.decideResp(dec.id, true, FlagShed, s.model.Load().version)
		}
	case msgComplete:
		comp, err := parseComplete(body)
		if err != nil {
			return err
		}
		// Completions feed the feature history and are never shed —
		// dropping one would fork the tracker from the client's view.
		// The blocking send is backpressure on this connection only.
		s.shards[comp.device%nshards].q <- request{kind: msgComplete, comp: comp, out: cw}
	case msgStats:
		payload, err := json.Marshal(s.Stats())
		if err != nil {
			return err
		}
		// The frame itself goes through the pooled encoder: only the JSON
		// payload allocates, never the framing.
		if !cw.control(msgStatsResp, payload) {
			return cw.sticky()
		}
	case msgSwap:
		var scratch [5]byte
		resp := scratch[:]
		resp[0] = 1
		m, err := core.Load(bytes.NewReader(body[1:]))
		var v uint32
		if err != nil {
			resp[0] = 0
			resp = append(resp, err.Error()...)
		} else {
			v = s.Swap(m)
		}
		resp[1] = byte(v >> 24)
		resp[2] = byte(v >> 16)
		resp[3] = byte(v >> 8)
		resp[4] = byte(v)
		if !cw.control(msgSwapResp, resp) {
			return cw.sticky()
		}
	default:
		// Unknown message type: protocol error, drop the conn.
		return fmt.Errorf("%w: unknown message type %#x", ErrFrame, body[0])
	}
	return nil
}

// Response-buffer pooling bounds. respBufSize coalesces a whole micro-batch
// of decide responses (23 bytes each) into one buffer — one Write syscall;
// only a larger-than-4KiB burst spills into further buffers and a vectored
// write. respFreeMax caps how many recycled buffers one connection retains.
const (
	respBufSize = 4096
	respFreeMax = 16
)

// connWriter serializes response writes to one connection. Shard workers
// and the connection's reader both answer through it; the mutex is the only
// lock on the decide path and is per-connection. Errors are sticky: once a
// write fails the peer is shed — counted, its socket closed so the reader
// wakes — and later writes no-op. With a write timeout armed, a worker
// blocks on a slow peer for at most that long, never indefinitely.
//
// Encoding is zero-copy out: responses are encoded directly into recycled
// coalescing buffers from a per-connection freelist (deterministic LIFO —
// no sync.Pool, so buffer reuse order never depends on GC timing), and a
// flush pushes every sealed buffer with one vectored write (net.Buffers →
// writev on TCP/unix conns) then recycles them.
type connWriter struct {
	mu      sync.Mutex
	c       net.Conn  // nil in tests that write to a plain io.Writer
	w       io.Writer // flush target when c is nil
	cur     []byte    // open coalescing buffer; responses append here
	pend    [][]byte  // sealed buffers awaiting the vectored flush
	free    [][]byte  // LIFO freelist of recycled buffers
	vec     net.Buffers
	timeout time.Duration // per-write deadline; 0 = unbounded
	drops   *atomic.Uint64
	err     error
}

func newConnWriter(c net.Conn, timeout time.Duration, drops *atomic.Uint64) *connWriter {
	return &connWriter{c: c, cur: make([]byte, 0, respBufSize), timeout: timeout, drops: drops}
}

// newSinkWriter builds a connWriter draining into w — the test harness
// constructor (alloc pins, fuzz) where no socket exists.
func newSinkWriter(w io.Writer) *connWriter {
	return &connWriter{w: w, cur: make([]byte, 0, respBufSize)}
}

// ensureLocked makes room for n more bytes in the open buffer, sealing it
// onto the pending list and recycling (or growing) as needed. n must be
// ≤ respBufSize. Called with mu held.
//
//heimdall:hotpath
func (w *connWriter) ensureLocked(n int) {
	if cap(w.cur)-len(w.cur) >= n {
		return
	}
	if len(w.cur) > 0 {
		w.pend = append(w.pend, w.cur)
		w.cur = nil
	}
	if k := len(w.free); k > 0 {
		w.cur = w.free[k-1]
		w.free = w.free[:k-1]
		return
	}
	w.cur = make([]byte, 0, respBufSize)
}

// arm starts the write-deadline clock for the next write. Called with mu
// held.
//
//heimdall:walltime
func (w *connWriter) arm() {
	if w.timeout > 0 && w.c != nil {
		_ = w.c.SetWriteDeadline(time.Now().Add(w.timeout))
	}
}

// shedLocked handles the first sticky error: count the drop and close the
// socket so the connection's reader exits too. Called with mu held.
func (w *connWriter) shedLocked() {
	if w.drops != nil {
		w.drops.Add(1)
	}
	if w.c != nil {
		_ = w.c.Close()
	}
}

// sticky returns the writer's sticky error, if any.
func (w *connWriter) sticky() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.err
}

// decideResp encodes and buffers one decide response. The frame is written
// directly into the open recycled buffer — no intermediate scratch, no copy,
// no allocation in steady state. It is a determinism sink: everything in a
// verdict frame (id, admit bit, flags, model version) must be a pure
// function of the request stream, never of the wall clock or scheduling.
//
//heimdall:hotpath
//heimdall:nountaint
func (w *connWriter) decideResp(id uint64, admit bool, flags uint8, version uint32) {
	w.mu.Lock()
	if w.err == nil {
		w.ensureLocked(4 + decideRespLen)
		off := len(w.cur)
		w.cur = w.cur[:off+4+decideRespLen]
		b := w.cur[off:]
		b[0], b[1], b[2], b[3] = 0, 0, 0, decideRespLen
		b[4] = msgDecideResp
		b[5] = byte(id >> 56)
		b[6] = byte(id >> 48)
		b[7] = byte(id >> 40)
		b[8] = byte(id >> 32)
		b[9] = byte(id >> 24)
		b[10] = byte(id >> 16)
		b[11] = byte(id >> 8)
		b[12] = byte(id)
		b[13] = 0
		if admit {
			b[13] = 1
		}
		b[14] = flags
		b[15] = byte(version >> 24)
		b[16] = byte(version >> 16)
		b[17] = byte(version >> 8)
		b[18] = byte(version)
	}
	w.mu.Unlock()
}

// control encodes one control-plane frame (type byte + payload) into the
// recycled buffers and flushes. The payload is copied — it may alias the
// caller's scratch — chunked across buffers so every pooled buffer keeps its
// fixed size. Reports whether the writer is still healthy.
//
//heimdall:hotpath
func (w *connWriter) control(typ byte, payload []byte) bool {
	if 1+len(payload) > MaxFrame {
		return false
	}
	w.mu.Lock()
	if w.err != nil {
		w.mu.Unlock()
		return false
	}
	n := 1 + len(payload)
	w.ensureLocked(5)
	off := len(w.cur)
	w.cur = w.cur[:off+5]
	b := w.cur[off:]
	b[0] = byte(n >> 24)
	b[1] = byte(n >> 16)
	b[2] = byte(n >> 8)
	b[3] = byte(n)
	b[4] = typ
	for len(payload) > 0 {
		w.ensureLocked(1)
		space := cap(w.cur) - len(w.cur)
		if space > len(payload) {
			space = len(payload)
		}
		w.cur = append(w.cur, payload[:space]...)
		payload = payload[space:]
	}
	w.flushLocked()
	ok := w.err == nil
	w.mu.Unlock()
	return ok
}

// flush pushes buffered responses to the socket in one vectored write.
func (w *connWriter) flush() {
	w.mu.Lock()
	if w.err == nil {
		w.flushLocked()
	}
	w.mu.Unlock()
}

// flushLocked seals the open buffer and writes everything pending with a
// single vectored write (writev on real conns), then recycles the buffers
// onto the freelist. Called with mu held.
//
//heimdall:hotpath
func (w *connWriter) flushLocked() {
	if len(w.cur) > 0 {
		w.pend = append(w.pend, w.cur)
		w.cur = nil
	}
	if len(w.pend) == 0 {
		return
	}
	w.arm()
	if w.c != nil {
		// Build the vectored view in reusable scratch; WriteTo consumes a
		// copy of the header, so w.vec keeps its capacity across flushes.
		w.vec = append(w.vec[:0], w.pend...)
		bufs := w.vec
		_, w.err = bufs.WriteTo(w.c)
		w.vec = w.vec[:0]
	} else {
		for _, b := range w.pend {
			if _, w.err = w.w.Write(b); w.err != nil {
				break
			}
		}
	}
	if w.err != nil {
		w.shedLocked()
		w.pend = w.pend[:0]
		w.ensureLocked(1)
		return
	}
	// Recycle: sealed buffers return to the LIFO freelist (bounded), and the
	// open buffer is restocked from it so the next batch starts warm.
	for i, b := range w.pend {
		if len(w.free) < respFreeMax {
			w.free = append(w.free, b[:0])
		}
		w.pend[i] = nil
	}
	w.pend = w.pend[:0]
	w.ensureLocked(1)
}
