package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/drift"
)

// Config tunes the server. The zero value is usable: 4 shards, immediate
// batching, no deadline shedding, breaker on.
type Config struct {
	// Shards is the number of device shards (default 4). A device is pinned
	// to shard device%Shards, so all its state has one writer.
	Shards int
	// QueueLen bounds each shard's request queue (default 256). A decide
	// arriving at a full queue is answered admit+FlagShed without inference.
	QueueLen int
	// BatchWindow is how long a shard waits after the first request of a
	// wakeup for more to arrive (default 0: decide immediately). Batching
	// amortizes wakeups and writer flushes; it never changes decisions.
	BatchWindow time.Duration
	// MaxBatch bounds one wakeup's batch (default 64).
	MaxBatch int
	// Budget, when positive, sheds decide requests that aged past it in
	// queue: answered admit+FlagDeadline without inference, so an I/O never
	// waits on a backlogged predictor longer than the budget.
	Budget time.Duration
	// GroupTimeout bounds how long a partially-filled joint group (models
	// with JointSize P > 1) may hold its members' responses before flushing
	// them admit+FlagPartial (default 2ms). Only a deadline or shutdown
	// flushes partial groups; group membership itself is sequence-based and
	// deterministic.
	GroupTimeout time.Duration

	// BreakerWindow is the per-shard decision window for shed-rate trip
	// checks (default 256; negative disables the breaker).
	BreakerWindow int
	// TripShedRate is the windowed shed fraction that trips the breaker
	// (default 0.5). An open breaker answers admit+FlagBreaker without
	// inference for Cooldown decisions, letting the shard drain, then
	// half-open-probes the model.
	TripShedRate float64
	// Cooldown is how many open-state decisions bypass inference before
	// probing resumes (default 4×BreakerWindow).
	Cooldown int
	// Probes is how many half-open probes decide recovery (default 16).
	Probes int

	// ReadTimeout, when positive, bounds how long a connection may idle
	// between frames; a peer that sends nothing for longer is dropped. Zero
	// keeps connections open indefinitely (the pre-hardening behavior).
	ReadTimeout time.Duration
	// WriteTimeout, when positive, bounds every response write. A peer that
	// cannot drain its responses within it is dropped (write shed) so a slow
	// client can never hold a shard worker hostage. Zero disables the bound.
	WriteTimeout time.Duration

	// DriftRef, when set, gives every shard an input-drift detector
	// (internal/drift PSI) referenced on these training-time feature rows.
	// Shards observe the rows they infer on and publish MaxPSI in Stats, so
	// an operator (or the retrain loop in cmd/heimdall-serve's example) can
	// watch for drift and hot-swap a retrained model.
	DriftRef [][]float64
	// DriftBins is the detector's histogram resolution (default 10).
	DriftBins int
}

func (c Config) shards() int {
	if c.Shards > 0 {
		return c.Shards
	}
	return 4
}

func (c Config) queueLen() int {
	if c.QueueLen > 0 {
		return c.QueueLen
	}
	return 256
}

func (c Config) maxBatch() int {
	if c.MaxBatch > 0 {
		return c.MaxBatch
	}
	return 64
}

func (c Config) groupTimeout() time.Duration {
	if c.GroupTimeout > 0 {
		return c.GroupTimeout
	}
	return 2 * time.Millisecond
}

func (c Config) breakerWindow() int {
	if c.BreakerWindow > 0 {
		return c.BreakerWindow
	}
	if c.BreakerWindow < 0 {
		return 0 // disabled
	}
	return 256
}

func (c Config) tripShedRate() float64 {
	if c.TripShedRate > 0 {
		return c.TripShedRate
	}
	return 0.5
}

func (c Config) cooldown() int {
	if c.Cooldown > 0 {
		return c.Cooldown
	}
	return 4 * c.breakerWindow()
}

func (c Config) probes() int {
	if c.Probes > 0 {
		return c.Probes
	}
	return 16
}

func (c Config) driftBins() int {
	if c.DriftBins > 0 {
		return c.DriftBins
	}
	return 10
}

// servingModel is one immutable published model. Workers load the pointer
// once per batch, so every decision in a batch comes from one consistent
// (model, version) pair — a swap can never produce a torn read.
type servingModel struct {
	m       *core.Model
	version uint32
}

// Server is the online admission service. Create with NewServer, attach
// listeners with Serve, stop with Close.
type Server struct {
	cfg    Config
	model  atomic.Pointer[servingModel]
	vers   atomic.Uint32
	swaps  atomic.Uint64
	shards []*shard
	start  time.Time

	accepts    atomic.Uint64 // connections accepted over all listeners
	connDrops  atomic.Uint64 // connections dropped on read/protocol errors
	writeDrops atomic.Uint64 // connections shed because a response write failed
	drained    atomic.Uint64 // decides answered during graceful shutdown

	mu        sync.Mutex
	listeners map[net.Listener]struct{}
	conns     map[net.Conn]struct{}
	closed    bool

	wgConns   sync.WaitGroup
	wgWorkers sync.WaitGroup
}

// NewServer builds the shards and starts their workers. The model must be
// treated as immutable from here on (publish changes via Swap).
//
//heimdall:walltime
func NewServer(m *core.Model, cfg Config) *Server {
	s := &Server{
		cfg:       cfg,
		start:     time.Now(),
		listeners: make(map[net.Listener]struct{}),
		conns:     make(map[net.Conn]struct{}),
	}
	s.vers.Store(1)
	s.model.Store(&servingModel{m: m, version: 1})
	for i := 0; i < cfg.shards(); i++ {
		sh := &shard{
			srv:  s,
			q:    make(chan *request, cfg.queueLen()),
			devs: make(map[uint32]*deviceState),
		}
		if len(cfg.DriftRef) > 0 {
			sh.det = drift.NewInputDetector(cfg.DriftRef, cfg.driftBins())
		}
		s.shards = append(s.shards, sh)
		s.wgWorkers.Add(1)
		go sh.run()
	}
	return s
}

// now is the server's monotonic clock: nanoseconds since NewServer. Queue
// deadlines compare these stamps; nothing persists them.
//
//heimdall:walltime
func (s *Server) now() int64 { return int64(time.Since(s.start)) }

// Model returns the currently published model and its version.
func (s *Server) Model() (*core.Model, uint32) {
	sm := s.model.Load()
	return sm.m, sm.version
}

// Swap atomically publishes a new model and returns its version. In-flight
// batches finish on the model they loaded; later batches use the new one.
// No request is dropped and none observes a half-swapped state.
func (s *Server) Swap(m *core.Model) uint32 {
	v := s.vers.Add(1)
	s.model.Store(&servingModel{m: m, version: v})
	s.swaps.Add(1)
	return v
}

// Stats snapshots all shard counters.
func (s *Server) Stats() Stats {
	var out Stats
	sm := s.model.Load()
	out.ModelVersion = sm.version
	out.Swaps = s.swaps.Load()
	out.ConnsAccepted = s.accepts.Load()
	out.ConnDrops = s.connDrops.Load()
	out.WriteDrops = s.writeDrops.Load()
	out.Drained = s.drained.Load()
	s.mu.Lock()
	out.ConnsOpen = len(s.conns)
	s.mu.Unlock()
	for _, sh := range s.shards {
		out.add(sh.cnt.snapshot(len(sh.q)))
		for i := range sh.cnt.batches {
			out.BatchHist[i] += sh.cnt.batches[i].Load()
		}
	}
	return out
}

// Listen opens a listener for addr. Addresses are "unix:/path/sock" or
// "tcp:host:port" (bare addresses default to tcp).
func Listen(addr string) (net.Listener, error) {
	network := "tcp"
	if len(addr) > 5 && addr[:5] == "unix:" {
		network, addr = "unix", addr[5:]
	} else if len(addr) > 4 && addr[:4] == "tcp:" {
		addr = addr[4:]
	}
	return net.Listen(network, addr)
}

// Serve accepts connections on l until Close (or a listener error) and
// blocks. Multiple listeners may serve concurrently.
func (s *Server) Serve(l net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		if err := l.Close(); err != nil {
			return err
		}
		return fmt.Errorf("serve: server closed")
	}
	s.listeners[l] = struct{}{}
	s.mu.Unlock()
	for {
		c, err := l.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			delete(s.listeners, l)
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			_ = c.Close()
			return nil
		}
		s.conns[c] = struct{}{}
		s.mu.Unlock()
		s.accepts.Add(1)
		s.wgConns.Add(1)
		go s.handleConn(c)
	}
}

// Close drains gracefully: stop accepting, half-close every connection so
// no new request enters but pending verdicts still flow, wait for the
// readers, drain the shard queues (deciding normally, flushing held
// joint-group members fail-open), and only then close the sockets. Every
// request that made it into a queue gets its verdict. Safe to call once.
//
//heimdall:walltime
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	var firstErr error
	for l := range s.listeners {
		if err := l.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	// Half-close the read side (deadline-kick as a fallback for conn types
	// without CloseRead): readers wake and exit, the write side stays up so
	// drained work is still answered.
	for _, c := range conns {
		if cr, ok := c.(interface{ CloseRead() error }); ok {
			_ = cr.CloseRead()
		} else {
			_ = c.SetReadDeadline(time.Now())
		}
	}
	s.wgConns.Wait()
	for _, sh := range s.shards {
		close(sh.q)
	}
	s.wgWorkers.Wait()
	// Everything enqueued has been answered and flushed; drop the wire.
	s.mu.Lock()
	for c := range s.conns {
		if err := c.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
		delete(s.conns, c)
	}
	s.mu.Unlock()
	return firstErr
}

// request is one routed message. Pooled: the worker returns it after
// answering so steady-state traffic allocates nothing per request.
type request struct {
	kind uint8 // msgDecide or msgComplete
	dec  decideRequest
	comp completion
	enq  int64 // Server.now() at enqueue
	out  *connWriter
}

var reqPool = sync.Pool{New: func() interface{} { return new(request) }}

// device returns the request's routing key.
func (r *request) device() uint32 {
	if r.kind == msgComplete {
		return r.comp.device
	}
	return r.dec.device
}

// handleConn runs one connection's read loop and settles its lifecycle:
// on a graceful drain the socket is left to Close (which answers the
// drained work through it first); otherwise abnormal exits are counted and
// the socket dropped.
func (s *Server) handleConn(c net.Conn) {
	defer s.wgConns.Done()
	err := s.serveConn(c)
	s.mu.Lock()
	draining := s.closed
	if !draining {
		delete(s.conns, c)
	}
	s.mu.Unlock()
	if draining {
		return // Close owns the socket now
	}
	if err != nil && err != io.EOF {
		s.connDrops.Add(1)
	}
	_ = c.Close()
}

// serveConn reads frames and routes them. Decide and complete messages go
// to the owning shard; stats and swap are answered inline (they are not
// hot). io.EOF is the clean-close return.
//
//heimdall:walltime
func (s *Server) serveConn(c net.Conn) error {
	br := bufio.NewReader(c)
	cw := newConnWriter(c, s.cfg.WriteTimeout, &s.writeDrops)
	buf := make([]byte, 256)
	nshards := uint32(len(s.shards))
	rt := s.cfg.ReadTimeout
	for {
		if rt > 0 {
			_ = c.SetReadDeadline(time.Now().Add(rt))
		}
		body, err := readFrame(br, buf)
		if err != nil {
			return err
		}
		buf = body[:cap(body)]
		switch body[0] {
		case msgDecide:
			dec, err := parseDecide(body)
			if err != nil {
				return err
			}
			sh := s.shards[dec.device%nshards]
			r := reqPool.Get().(*request)
			r.kind, r.dec, r.enq, r.out = msgDecide, dec, s.now(), cw
			select {
			case sh.q <- r:
			default:
				// Queue full: fail open immediately so the I/O proceeds.
				reqPool.Put(r)
				sh.cnt.sheds.Add(1)
				sh.cnt.admits.Add(1)
				cw.decideResp(dec.id, true, FlagShed, s.model.Load().version)
				cw.flush()
			}
		case msgComplete:
			comp, err := parseComplete(body)
			if err != nil {
				return err
			}
			r := reqPool.Get().(*request)
			r.kind, r.comp, r.out = msgComplete, comp, cw
			// Completions feed the feature history and are never shed —
			// dropping one would fork the tracker from the client's view.
			// The blocking send is backpressure on this connection only.
			s.shards[comp.device%nshards].q <- r
		case msgStats:
			payload, err := json.Marshal(s.Stats())
			if err != nil {
				return err
			}
			frame := make([]byte, 0, 1+len(payload))
			frame = append(frame, msgStatsResp)
			frame = append(frame, payload...)
			if !cw.frameAndFlush(frame) {
				return cw.sticky()
			}
		case msgSwap:
			resp := []byte{msgSwapResp, 1, 0, 0, 0, 0}
			m, err := core.Load(bytes.NewReader(body[1:]))
			var v uint32
			if err != nil {
				resp[1] = 0
				resp = append(resp, err.Error()...)
			} else {
				v = s.Swap(m)
			}
			resp[2] = byte(v >> 24)
			resp[3] = byte(v >> 16)
			resp[4] = byte(v >> 8)
			resp[5] = byte(v)
			if !cw.frameAndFlush(resp) {
				return cw.sticky()
			}
		default:
			// Unknown message type: protocol error, drop the conn.
			return fmt.Errorf("%w: unknown message type %#x", ErrFrame, body[0])
		}
	}
}

// connWriter serializes response writes to one connection. Shard workers
// and the connection's reader both answer through it; the mutex is the only
// lock on the decide path and is per-connection. Errors are sticky: once a
// write fails the peer is shed — counted, its socket closed so the reader
// wakes — and later writes no-op. With a write timeout armed, a worker
// blocks on a slow peer for at most that long, never indefinitely.
type connWriter struct {
	mu      sync.Mutex
	c       net.Conn // nil in tests that write to a plain buffer
	bw      *bufio.Writer
	timeout time.Duration // per-write deadline; 0 = unbounded
	drops   *atomic.Uint64
	err     error
	buf     [32]byte
}

func newConnWriter(c net.Conn, timeout time.Duration, drops *atomic.Uint64) *connWriter {
	return &connWriter{c: c, bw: bufio.NewWriter(c), timeout: timeout, drops: drops}
}

// arm starts the write-deadline clock for the next write. Called with mu
// held.
//
//heimdall:walltime
func (w *connWriter) arm() {
	if w.timeout > 0 && w.c != nil {
		_ = w.c.SetWriteDeadline(time.Now().Add(w.timeout))
	}
}

// shedLocked handles the first sticky error: count the drop and close the
// socket so the connection's reader exits too. Called with mu held.
func (w *connWriter) shedLocked() {
	if w.drops != nil {
		w.drops.Add(1)
	}
	if w.c != nil {
		_ = w.c.Close()
	}
}

// sticky returns the writer's sticky error, if any.
func (w *connWriter) sticky() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.err
}

// decideResp encodes and buffers one decide response. The frame is built in
// the writer's fixed scratch, so steady state allocates nothing.
//
//heimdall:hotpath
func (w *connWriter) decideResp(id uint64, admit bool, flags uint8, version uint32) {
	w.mu.Lock()
	if w.err == nil {
		b := &w.buf
		b[0], b[1], b[2], b[3] = 0, 0, 0, decideRespLen
		b[4] = msgDecideResp
		b[5] = byte(id >> 56)
		b[6] = byte(id >> 48)
		b[7] = byte(id >> 40)
		b[8] = byte(id >> 32)
		b[9] = byte(id >> 24)
		b[10] = byte(id >> 16)
		b[11] = byte(id >> 8)
		b[12] = byte(id)
		b[13] = 0
		if admit {
			b[13] = 1
		}
		b[14] = flags
		b[15] = byte(version >> 24)
		b[16] = byte(version >> 16)
		b[17] = byte(version >> 8)
		b[18] = byte(version)
		w.arm()
		_, w.err = w.bw.Write(b[:4+decideRespLen])
		if w.err != nil {
			w.shedLocked()
		}
	}
	w.mu.Unlock()
}

// frameAndFlush writes a full control-plane frame and flushes. Reports
// whether the writer is still healthy.
func (w *connWriter) frameAndFlush(body []byte) bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return false
	}
	w.arm()
	w.err = writeFrame(w.bw, body)
	if w.err == nil {
		w.err = w.bw.Flush()
	}
	if w.err != nil {
		w.shedLocked()
	}
	return w.err == nil
}

// flush pushes buffered responses to the socket.
func (w *connWriter) flush() {
	w.mu.Lock()
	if w.err == nil {
		w.arm()
		if w.err = w.bw.Flush(); w.err != nil {
			w.shedLocked()
		}
	}
	w.mu.Unlock()
}
