package serve

import (
	"bytes"
	"fmt"
	"math/rand"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/iolog"
	"repro/internal/ssd"
	"repro/internal/trace"
)

func testModel(t *testing.T, seed int64, joint int) *core.Model {
	t.Helper()
	tr := trace.Generate(trace.MSRStyle(seed, 3*time.Second))
	dev := ssd.New(ssd.Samsung970Pro(), seed)
	log := iolog.Collect(tr, dev)
	cfg := core.DefaultConfig(seed)
	cfg.Epochs = 8
	cfg.MaxTrainSamples = 8000
	if joint > 1 {
		cfg.JointSize = joint
	}
	m, err := core.Train(log, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// startServer runs srv on a unix socket in a test dir and returns its
// address. The server is closed with the test.
func startServer(t *testing.T, srv *Server) string {
	t.Helper()
	addr := "unix:" + filepath.Join(t.TempDir(), "serve.sock")
	l, err := Listen(addr)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(l) }()
	t.Cleanup(func() {
		if err := srv.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
		if err := <-done; err != nil {
			t.Errorf("serve: %v", err)
		}
	})
	return addr
}

// op is one step of a device's scripted workload.
type op struct {
	decide   bool
	queueLen int
	size     int32
	latency  uint64
}

// deviceOps scripts a deterministic workload: a mix of decide and complete
// messages, with the decide count padded to a multiple of group so joint
// groups always fill.
func deviceOps(seed int64, n, group int) []op {
	rng := rand.New(rand.NewSource(seed))
	var ops []op
	decides := 0
	for i := 0; i < n; i++ {
		if rng.Intn(4) == 0 {
			ops = append(ops, op{
				queueLen: rng.Intn(16),
				size:     4096 * int32(1+rng.Intn(8)),
				latency:  uint64(50_000 + rng.Intn(400_000)),
			})
		} else {
			ops = append(ops, op{
				decide:   true,
				queueLen: rng.Intn(16),
				size:     4096 * int32(1+rng.Intn(8)),
			})
			decides++
		}
	}
	for group > 1 && decides%group != 0 {
		ops = append(ops, op{decide: true, queueLen: rng.Intn(16), size: 4096})
		decides++
	}
	return ops
}

// runDevice plays a device's script over one pipelined connection and
// returns its verdicts indexed by decide sequence.
func runDevice(t *testing.T, addr string, device uint32, ops []op) []Verdict {
	t.Helper()
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := c.Close(); err != nil {
			t.Errorf("client close: %v", err)
		}
	}()
	ndecide := 0
	for _, o := range ops {
		if o.decide {
			if err := c.Send(uint64(ndecide), device, o.queueLen, o.size); err != nil {
				t.Fatal(err)
			}
			ndecide++
		} else {
			if err := c.Complete(device, o.latency, o.queueLen, o.size); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	out := make([]Verdict, ndecide)
	for i := 0; i < ndecide; i++ {
		v, err := c.Recv()
		if err != nil {
			t.Fatalf("recv %d/%d: %v", i, ndecide, err)
		}
		if v.ID >= uint64(ndecide) {
			t.Fatalf("verdict id %d out of range", v.ID)
		}
		out[v.ID] = v
	}
	return out
}

// decisionTrace runs every device's script against one server config and
// returns the admit sequences keyed by device.
func decisionTrace(t *testing.T, m *core.Model, cfg Config, devs int, opsPer int, joint int) map[uint32][]bool {
	t.Helper()
	srv := NewServer(m, cfg)
	addr := startServer(t, srv)
	var wg sync.WaitGroup
	var mu sync.Mutex
	got := make(map[uint32][]bool)
	for d := 0; d < devs; d++ {
		wg.Add(1)
		go func(device uint32) {
			defer wg.Done()
			verdicts := runDevice(t, addr, device, deviceOps(int64(device)+100, opsPer, joint))
			admits := make([]bool, len(verdicts))
			for i, v := range verdicts {
				if v.Flags != 0 {
					t.Errorf("device %d verdict %d unexpectedly degraded (flags %#x)", device, i, v.Flags)
				}
				admits[i] = v.Admit
			}
			mu.Lock()
			got[device] = admits
			mu.Unlock()
		}(uint32(d))
	}
	wg.Wait()
	return got
}

// TestServeDeterminism pins the tentpole contract: batched group inference
// answers byte-identically to sequential single-request inference, at any
// shard count and batch window, because group membership and feature
// history depend only on each device's message order — never on batch
// timing.
func TestServeDeterminism(t *testing.T) {
	const devs, opsPer = 6, 200
	for _, joint := range []int{1, 4} {
		m := testModel(t, 21, joint)
		// Queues sized above the whole pipelined workload: determinism is
		// specified for the below-capacity regime (sheds are documented
		// timing-dependent escape hatches).
		const q = 8192
		configs := []Config{
			// Sequential reference: one shard, one request per wakeup.
			{Shards: 1, MaxBatch: 1, QueueLen: q, GroupTimeout: time.Minute},
			{Shards: 4, BatchWindow: 2 * time.Millisecond, MaxBatch: 64, QueueLen: q, GroupTimeout: time.Minute},
			{Shards: 8, MaxBatch: 16, QueueLen: q, GroupTimeout: time.Minute},
		}
		ref := decisionTrace(t, m, configs[0], devs, opsPer, joint)
		for _, cfg := range configs[1:] {
			got := decisionTrace(t, m, cfg, devs, opsPer, joint)
			for d := uint32(0); d < devs; d++ {
				if len(got[d]) != len(ref[d]) {
					t.Fatalf("joint=%d shards=%d device %d: %d verdicts, reference %d",
						joint, cfg.Shards, d, len(got[d]), len(ref[d]))
				}
				for i := range ref[d] {
					if got[d][i] != ref[d][i] {
						t.Fatalf("joint=%d shards=%d device %d decision %d: batched %v != sequential %v",
							joint, cfg.Shards, d, i, got[d][i], ref[d][i])
					}
				}
			}
		}
	}
}

// TestServeDeterminismInt8 re-pins the determinism contract with the int8
// batch engine active: integer arithmetic makes the batched kernel exact at
// any batch shape, so verdicts stay byte-identical across shard counts and
// batch sizes even on the quantized fast path.
func TestServeDeterminismInt8(t *testing.T) {
	const devs, opsPer = 4, 150
	for _, joint := range []int{1, 3} {
		tr := trace.Generate(trace.MSRStyle(25, 3*time.Second))
		dev := ssd.New(ssd.Samsung970Pro(), 25)
		log := iolog.Collect(tr, dev)
		cfg := core.DefaultConfig(25)
		cfg.Epochs = 8
		cfg.MaxTrainSamples = 8000
		cfg.Quantize8 = true
		if joint > 1 {
			cfg.JointSize = joint
		}
		m, err := core.Train(log, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if m.Quantized8() == nil || m.Predictor() != m.Quantized8() {
			t.Fatal("int8 engine not active")
		}
		const q = 8192
		ref := decisionTrace(t, m, Config{Shards: 1, MaxBatch: 1, QueueLen: q, GroupTimeout: time.Minute}, devs, opsPer, joint)
		for _, scfg := range []Config{
			{Shards: 4, BatchWindow: 2 * time.Millisecond, MaxBatch: 64, QueueLen: q, GroupTimeout: time.Minute},
			{Shards: 8, MaxBatch: 8, QueueLen: q, GroupTimeout: time.Minute},
		} {
			got := decisionTrace(t, m, scfg, devs, opsPer, joint)
			for d := uint32(0); d < devs; d++ {
				if len(got[d]) != len(ref[d]) {
					t.Fatalf("joint=%d shards=%d device %d: %d verdicts, reference %d",
						joint, scfg.Shards, d, len(got[d]), len(ref[d]))
				}
				for i := range ref[d] {
					if got[d][i] != ref[d][i] {
						t.Fatalf("joint=%d shards=%d device %d decision %d: int8 batched %v != sequential %v",
							joint, scfg.Shards, d, i, got[d][i], ref[d][i])
					}
				}
			}
		}
	}
}

// TestServeJointGroupVerdicts pins §5 group semantics: all P members of a
// joint group receive the same verdict.
func TestServeJointGroupVerdicts(t *testing.T) {
	const p = 4
	m := testModel(t, 22, p)
	srv := NewServer(m, Config{Shards: 2, GroupTimeout: time.Minute})
	addr := startServer(t, srv)
	verdicts := runDevice(t, addr, 7, deviceOps(7, 160, p))
	if len(verdicts)%p != 0 {
		t.Fatalf("decide count %d not a multiple of %d", len(verdicts), p)
	}
	for g := 0; g < len(verdicts); g += p {
		for i := 1; i < p; i++ {
			if verdicts[g+i].Admit != verdicts[g].Admit {
				t.Fatalf("group %d member %d verdict %v != head %v",
					g/p, i, verdicts[g+i].Admit, verdicts[g].Admit)
			}
		}
	}
}

// TestHotSwap pins the swap contract: under continuous load with repeated
// swaps between an always-admit and a never-admit model, every request is
// answered, and every inference verdict is consistent with the version that
// produced it — i.e. no response ever reflects a torn or stale-published
// model.
func TestHotSwap(t *testing.T) {
	m1 := testModel(t, 23, 1)
	m1.SetThreshold(2) // admits everything
	var buf bytes.Buffer
	if err := m1.Save(&buf); err != nil {
		t.Fatal(err)
	}
	m2, err := core.Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	m2.SetThreshold(-1) // declines everything

	srv := NewServer(m1, Config{Shards: 4, QueueLen: 4096, BreakerWindow: -1})
	addr := startServer(t, srv)

	const clients, perClient = 4, 400
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	answered := make([]int, clients)
	for ci := 0; ci < clients; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			c, err := Dial(addr)
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			for i := 0; i < perClient; i++ {
				v, err := c.Decide(uint32(ci), i%16, 4096)
				if err != nil {
					errs <- fmt.Errorf("client %d decide %d: %w", ci, i, err)
					return
				}
				if v.Flags != 0 {
					errs <- fmt.Errorf("client %d decide %d degraded (flags %#x)", ci, i, v.Flags)
					return
				}
				// Odd versions are m1 (admit-all), even are m2
				// (decline-all). A mismatch means a decision crossed a
				// swap boundary inside one forward pass.
				if want := v.ModelVersion%2 == 1; v.Admit != want {
					errs <- fmt.Errorf("client %d decide %d: version %d answered admit=%v",
						ci, i, v.ModelVersion, v.Admit)
					return
				}
				answered[ci]++
			}
		}(ci)
	}
	// Swap continuously while the clients hammer.
	swapDone := make(chan struct{})
	go func() {
		defer close(swapDone)
		for i := 0; i < 60; i++ {
			if i%2 == 0 {
				srv.Swap(m2)
			} else {
				srv.Swap(m1)
			}
			time.Sleep(500 * time.Microsecond)
		}
	}()
	wg.Wait()
	<-swapDone
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	for ci, n := range answered {
		if n != perClient {
			t.Errorf("client %d: %d/%d requests answered", ci, n, perClient)
		}
	}
	st := srv.Stats()
	if st.Swaps != 60 {
		t.Errorf("swaps = %d, want 60", st.Swaps)
	}
	if got := st.Decisions(); got != clients*perClient {
		t.Errorf("decisions = %d, want %d", got, clients*perClient)
	}
}

// TestShedAndBreaker forces the degraded paths: an impossible 1ns budget
// deadline-sheds every queued request, which fails open (admit) and trips
// the shard breaker into answering without inference. The queue is deep
// enough that requests actually reach the worker — the batch-drain reader
// would otherwise queue-full-shed nearly everything before the breaker gets
// a decision to answer.
func TestShedAndBreaker(t *testing.T) {
	m := testModel(t, 24, 1)
	m.SetThreshold(-1) // a working forward pass would DECLINE everything
	srv := NewServer(m, Config{
		Shards: 1, QueueLen: 1024, Budget: time.Nanosecond,
		BreakerWindow: 8, Cooldown: 16, Probes: 2,
	})
	addr := startServer(t, srv)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	const n = 600
	for i := 0; i < n; i++ {
		if err := c.Send(uint64(i), 1, 4, 4096); err != nil {
			t.Fatal(err)
		}
		if i%16 == 15 {
			if err := c.Flush(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		v, err := c.Recv()
		if err != nil {
			t.Fatalf("recv %d/%d: %v", i, n, err)
		}
		if !v.Admit {
			t.Fatalf("degraded verdict %d declined — shedding must fail open", i)
		}
		if v.Flags == 0 {
			t.Fatalf("verdict %d took the inference path despite a 1ns budget", i)
		}
	}
	st := srv.Stats()
	if st.DeadlineSheds == 0 {
		t.Error("no deadline sheds recorded")
	}
	if st.Trips == 0 {
		t.Error("breaker never tripped despite a 100% shed rate")
	}
	if st.BreakerOpen == 0 {
		t.Error("open breaker never answered a request")
	}
	if st.Decisions() != n {
		t.Errorf("decisions = %d, want %d", st.Decisions(), n)
	}
}

// TestStatsAndSwapOverWire covers the control plane end to end: counters
// accumulate and render, and a model uploaded through the socket is
// published atomically.
func TestStatsAndSwapOverWire(t *testing.T) {
	m := testModel(t, 25, 1)
	srv := NewServer(m, Config{Shards: 2})
	addr := startServer(t, srv)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 50; i++ {
		if _, err := c.Decide(uint32(i%3), i%8, 8192); err != nil {
			t.Fatal(err)
		}
		if err := c.Complete(uint32(i%3), 120_000, i%8, 8192); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Decisions() != 50 {
		t.Errorf("decisions = %d, want 50", st.Decisions())
	}
	if st.ModelVersion != 1 || st.Swaps != 0 {
		t.Errorf("fresh server at version %d with %d swaps", st.ModelVersion, st.Swaps)
	}
	if len(st.Shards) != 2 {
		t.Errorf("%d shard snapshots, want 2", len(st.Shards))
	}
	if st.String() == "" {
		t.Error("empty stats summary")
	}

	m2 := testModel(t, 26, 1)
	v, err := c.Swap(m2)
	if err != nil {
		t.Fatal(err)
	}
	if v != 2 {
		t.Errorf("swap published version %d, want 2", v)
	}
	if _, cur := srv.Model(); cur != 2 {
		t.Errorf("server reports version %d after wire swap", cur)
	}
	if v, err := c.Decide(9, 3, 4096); err != nil || v.ModelVersion != 2 {
		t.Errorf("post-swap decide: %+v, %v", v, err)
	}
}

// TestServeDriftDetector pins the drift wiring: shards observe the rows
// they infer on and publish MaxPSI through Stats.
func TestServeDriftDetector(t *testing.T) {
	m := testModel(t, 27, 1)
	// Reference rows centered far away from live traffic so PSI is large.
	ref := make([][]float64, 64)
	for i := range ref {
		row := make([]float64, m.Spec().Width())
		for j := range row {
			row[j] = 1e9 + float64(i)
		}
		ref[i] = row
	}
	srv := NewServer(m, Config{Shards: 1, DriftRef: ref})
	addr := startServer(t, srv)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 600; i++ {
		if _, err := c.Decide(0, i%8, 4096); err != nil {
			t.Fatal(err)
		}
	}
	if st := srv.Stats(); st.MaxPSI <= 0 {
		t.Errorf("MaxPSI = %v after 600 observed rows far from the reference", st.MaxPSI)
	}
}
