// Package filter implements Heimdall's domain-specific 3-stage noise
// filtering (§3.2). The stages remove, in order:
//
//  1. outliers within slow periods — "lucky" I/Os that hit the device cache
//     while the device was busy (low latency, high throughput inside a slow
//     run);
//  2. outliers within fast periods — transient slow I/Os from read retries,
//     ECC, and other device idiosyncrasies;
//  3. short noises — slow runs of at most MinRun consecutive I/Os, too short
//     to be real internal contention.
//
// Filtering drops the offending samples from the training set entirely
// (rather than relabeling them), so the model never sees them.
package filter

import (
	"sort"

	"repro/internal/iolog"
	"repro/internal/label"
	"repro/internal/trace"
)

// NoiseKind classifies why a sample was removed.
type NoiseKind uint8

const (
	// Clean marks samples that were kept.
	Clean NoiseKind = iota
	// FastInSlow is a stage-1 outlier: a fast I/O inside a slow period.
	FastInSlow
	// SlowInFast is a stage-2 outlier: a slow I/O inside a fast period.
	SlowInFast
	// ShortBurst is a stage-3 outlier: part of a too-short slow run.
	ShortBurst
)

// String names the noise kind.
func (k NoiseKind) String() string {
	switch k {
	case Clean:
		return "clean"
	case FastInSlow:
		return "fast-in-slow"
	case SlowInFast:
		return "slow-in-fast"
	case ShortBurst:
		return "short-burst"
	}
	return "unknown"
}

// Config selects which stages run and their parameters.
type Config struct {
	Stage1 bool // outliers within slow periods
	Stage2 bool // outliers within fast periods
	Stage3 bool // short slow bursts
	// MinRun is the stage-3 run-length threshold: slow runs of <= MinRun
	// I/Os are removed. The paper finds 3 on most datasets (§3.2); when
	// zero, SearchMinRun's result is used.
	MinRun int
	// FastTailPct is the stage-2 latency percentile of fast-period I/Os
	// above which a fast-period I/O counts as a transient outlier
	// (default 99.9 — only the extreme transients; everything below is a
	// hard-but-valid negative the model should see).
	FastTailPct float64
	// LuckyFrac is the stage-1 outlier cut: an I/O inside a slow run is a
	// "lucky" outlier when its latency is below LuckyFrac x the run's
	// median (default 0.15 — a device-cache hit is an order of magnitude
	// faster than its contended neighbours, so this catches real outliers
	// without gutting the scarce slow class).
	LuckyFrac float64
}

// DefaultConfig is the configuration the library ships with: stage 3
// (short-burst removal) only. On the simulated devices the other two stages
// remove samples whose labels are already correct — stage 1's "lucky" fast
// I/Os inside slow periods and stage 2's transient retries carry correct
// labels and informative features, so dropping them measurably costs
// accuracy and deployment latency (see EXPERIMENTS.md ablation). On the
// paper's real devices the authors measured the opposite; both stages
// remain implemented and selectable — use PaperConfig for the paper's full
// 3-stage setup.
func DefaultConfig() Config {
	return Config{Stage3: true, MinRun: 3, FastTailPct: 99.9, LuckyFrac: 0.15}
}

// PaperConfig enables all three stages, matching §3.2 exactly.
func PaperConfig() Config {
	c := DefaultConfig()
	c.Stage1 = true
	c.Stage2 = true
	return c
}

// Result reports the outcome of filtering.
type Result struct {
	Keep  []bool      // parallel to input; true = kept
	Kind  []NoiseKind // why each removed sample was removed
	Kept  int
	Drops map[NoiseKind]int
}

// Apply runs the configured stages over the labeled log and returns the
// keep mask. Labels are not modified; callers drop the masked-out samples
// from the training set.
func Apply(recs []iolog.Record, labels []int, cfg Config) Result {
	n := len(recs)
	res := Result{
		Keep:  make([]bool, n),
		Kind:  make([]NoiseKind, n),
		Drops: map[NoiseKind]int{},
	}
	for i := range res.Keep {
		res.Keep[i] = true
	}
	if n == 0 {
		return res
	}
	if cfg.FastTailPct == 0 {
		cfg.FastTailPct = 99.9
	}
	if cfg.LuckyFrac == 0 {
		cfg.LuckyFrac = 0.15
	}
	runs := label.Runs(labels)

	if cfg.Stage1 {
		// Within each slow run, drop the genuinely anomalous fast I/Os:
		// latency far below the run's median (cache hits are an order of
		// magnitude faster than their contended neighbours) while pushing
		// more throughput than the median.
		for _, run := range runs {
			lo, hi := run[0], run[1]
			if hi-lo < 4 {
				continue // medians of tiny runs are meaningless
			}
			lats := make([]float64, 0, hi-lo)
			thpts := make([]float64, 0, hi-lo)
			for i := lo; i < hi; i++ {
				lats = append(lats, float64(recs[i].Latency))
				thpts = append(thpts, recs[i].ThroughputMBps())
			}
			sort.Float64s(lats)
			sort.Float64s(thpts)
			medLat := trace.Percentile(lats, 50)
			medThpt := trace.Percentile(thpts, 50)
			for i := lo; i < hi; i++ {
				if float64(recs[i].Latency) < cfg.LuckyFrac*medLat && recs[i].ThroughputMBps() > medThpt {
					mark(&res, i, FastInSlow)
				}
			}
		}
	}

	if cfg.Stage2 {
		// Collect fast-period latencies, find the transient-outlier cutoff,
		// and drop fast-period I/Os above it.
		fastLats := make([]float64, 0, n)
		for i := range recs {
			if labels[i] == 0 {
				fastLats = append(fastLats, float64(recs[i].Latency))
			}
		}
		if len(fastLats) > 0 {
			sort.Float64s(fastLats)
			cut := trace.Percentile(fastLats, cfg.FastTailPct)
			for i := range recs {
				if labels[i] == 0 && float64(recs[i].Latency) > cut {
					mark(&res, i, SlowInFast)
				}
			}
		}
	}

	if cfg.Stage3 {
		minRun := cfg.MinRun
		if minRun <= 0 {
			minRun = SearchMinRun(recs, labels)
		}
		for _, run := range runs {
			if run[1]-run[0] <= minRun {
				for i := run[0]; i < run[1]; i++ {
					mark(&res, i, ShortBurst)
				}
			}
		}
	}

	for _, k := range res.Keep {
		if k {
			res.Kept++
		}
	}
	return res
}

func mark(res *Result, i int, kind NoiseKind) {
	if res.Keep[i] {
		res.Keep[i] = false
		res.Kind[i] = kind
		res.Drops[kind]++
	}
}

// Select returns the kept records and labels.
func Select(recs []iolog.Record, labels []int, keep []bool) ([]iolog.Record, []int) {
	outR := make([]iolog.Record, 0, len(recs))
	outL := make([]int, 0, len(labels))
	for i := range recs {
		if keep[i] {
			outR = append(outR, recs[i])
			outL = append(outL, labels[i])
		}
	}
	return outR, outL
}

// SearchMinRun applies the same gradient-descent idea as the labeling
// threshold search (§3.2 stage 3): sweep the run-length threshold and pick
// the value that maximizes the labeling objective after removal, preferring
// smaller thresholds on ties (low sensitivity loss). In most datasets this
// lands on 3 or less, matching the paper.
func SearchMinRun(recs []iolog.Record, labels []int) int {
	best, bestScore := 3, -1e18
	for cand := 1; cand <= 8; cand++ {
		tmp := Apply(recs, labels, Config{Stage3: true, MinRun: cand})
		r2, l2 := Select(recs, labels, tmp.Keep)
		score := label.Objective(r2, l2) - 0.02*float64(cand)
		if score > bestScore {
			best, bestScore = cand, score
		}
	}
	return best
}
