package filter

import (
	"testing"

	"repro/internal/iolog"
	"repro/internal/trace"
)

// rec builds a read record with the given latency (µs) and size.
func rec(arrivalUs int64, latUs int64, size int32) iolog.Record {
	return iolog.Record{
		Arrival: arrivalUs * 1000, Size: size, Op: trace.Read,
		Latency: latUs * 1000,
	}
}

// slowRunLog builds: 20 fast, 12 slow (one lucky outlier inside), 20 fast
// (one transient outlier inside), and a 2-I/O slow blip.
func slowRunLog() ([]iolog.Record, []int, int, int, []int) {
	var recs []iolog.Record
	var labels []int
	now := int64(0)
	push := func(latUs int64, size int32, lab int) int {
		recs = append(recs, rec(now, latUs, size))
		labels = append(labels, lab)
		now += 100
		return len(recs) - 1
	}
	for i := 0; i < 20; i++ {
		push(100, 4096, 0)
	}
	lucky := -1
	for i := 0; i < 12; i++ {
		if i == 6 {
			lucky = push(20, 4096, 1) // cache hit inside the slow run
		} else {
			push(2000, 4096, 1)
		}
	}
	retry := -1
	for i := 0; i < 20; i++ {
		if i == 10 {
			retry = push(5000, 4096, 0) // transient retry inside fast period
		} else {
			push(100, 4096, 0)
		}
	}
	var blip []int
	for i := 0; i < 2; i++ {
		blip = append(blip, push(2000, 4096, 1)) // too-short slow run
	}
	for i := 0; i < 10; i++ {
		push(100, 4096, 0)
	}
	return recs, labels, lucky, retry, blip
}

func TestStage1RemovesLuckyFastInSlow(t *testing.T) {
	recs, labels, lucky, _, _ := slowRunLog()
	res := Apply(recs, labels, Config{Stage1: true})
	if res.Keep[lucky] {
		t.Fatal("lucky fast I/O inside slow run not removed")
	}
	if res.Kind[lucky] != FastInSlow {
		t.Fatalf("kind %v", res.Kind[lucky])
	}
	if res.Drops[FastInSlow] != 1 {
		t.Fatalf("drops %v", res.Drops)
	}
}

func TestStage2RemovesTransientSlowInFast(t *testing.T) {
	recs, labels, _, retry, _ := slowRunLog()
	res := Apply(recs, labels, Config{Stage2: true, FastTailPct: 98})
	if res.Keep[retry] {
		t.Fatal("transient slow I/O inside fast period not removed")
	}
	if res.Kind[retry] != SlowInFast {
		t.Fatalf("kind %v", res.Kind[retry])
	}
}

func TestStage3RemovesShortBursts(t *testing.T) {
	recs, labels, _, _, blip := slowRunLog()
	res := Apply(recs, labels, Config{Stage3: true, MinRun: 3})
	for _, i := range blip {
		if res.Keep[i] {
			t.Fatalf("short-burst I/O %d kept", i)
		}
		if res.Kind[i] != ShortBurst {
			t.Fatalf("kind %v", res.Kind[i])
		}
	}
	// The long slow run must survive stage 3.
	long := 0
	for i, k := range res.Kind {
		if labels[i] == 1 && k == Clean {
			long++
		}
	}
	if long < 10 {
		t.Fatalf("long run damaged by stage 3: %d survivors", long)
	}
}

func TestPaperConfigAllStages(t *testing.T) {
	cfg := PaperConfig()
	if !cfg.Stage1 || !cfg.Stage2 || !cfg.Stage3 {
		t.Fatal("paper config must enable all stages")
	}
	if cfg.MinRun != 3 {
		t.Fatalf("MinRun %d, want the paper's 3", cfg.MinRun)
	}
	recs, labels, lucky, retry, blip := slowRunLog()
	res := Apply(recs, labels, cfg)
	if res.Keep[lucky] || res.Keep[retry] || res.Keep[blip[0]] {
		t.Fatal("paper config missed a noise class")
	}
	wantKept := len(recs) - res.Drops[FastInSlow] - res.Drops[SlowInFast] - res.Drops[ShortBurst]
	if res.Kept != wantKept {
		t.Fatalf("kept %d, want %d", res.Kept, wantKept)
	}
}

func TestDefaultConfigShipsStage3(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.Stage1 || cfg.Stage2 {
		t.Fatal("shipped default enables stage 1/2 (see EXPERIMENTS.md ablation)")
	}
	if !cfg.Stage3 {
		t.Fatal("shipped default must enable stage 3")
	}
	recs, labels, lucky, retry, blip := slowRunLog()
	res := Apply(recs, labels, cfg)
	if !res.Keep[lucky] || !res.Keep[retry] {
		t.Fatal("shipped default removed a stage-1/2 sample")
	}
	if res.Keep[blip[0]] {
		t.Fatal("shipped default missed stage-3 noise")
	}
}

func TestSelect(t *testing.T) {
	recs, labels, lucky, _, _ := slowRunLog()
	res := Apply(recs, labels, PaperConfig())
	outR, outL := Select(recs, labels, res.Keep)
	if len(outR) != res.Kept || len(outL) != res.Kept {
		t.Fatalf("select sizes %d/%d, want %d", len(outR), len(outL), res.Kept)
	}
	for _, r := range outR {
		if r == recs[lucky] {
			t.Fatal("removed record present in selection")
		}
	}
}

func TestSearchMinRunInRange(t *testing.T) {
	recs, labels, _, _, _ := slowRunLog()
	got := SearchMinRun(recs, labels)
	if got < 1 || got > 8 {
		t.Fatalf("SearchMinRun = %d", got)
	}
}

func TestApplyEmpty(t *testing.T) {
	res := Apply(nil, nil, DefaultConfig())
	if res.Kept != 0 || len(res.Keep) != 0 {
		t.Fatalf("empty apply %+v", res)
	}
}

func TestNoiseKindStrings(t *testing.T) {
	for _, k := range []NoiseKind{Clean, FastInSlow, SlowInFast, ShortBurst} {
		if k.String() == "unknown" {
			t.Fatalf("kind %d unnamed", k)
		}
	}
}

func TestStagesAreIndependent(t *testing.T) {
	recs, labels, lucky, retry, blip := slowRunLog()
	s1 := Apply(recs, labels, Config{Stage1: true})
	if !s1.Keep[retry] || !s1.Keep[blip[0]] {
		t.Fatal("stage 1 removed other stages' noise")
	}
	s2 := Apply(recs, labels, Config{Stage2: true, FastTailPct: 98})
	if !s2.Keep[lucky] || !s2.Keep[blip[0]] {
		t.Fatal("stage 2 removed other stages' noise")
	}
}
