package core

import (
	"time"

	"repro/internal/iolog"
)

// RetrainPolicy is the preliminary long-deployment policy of §7: monitor the
// model's accuracy over a sliding window and trigger retraining on the most
// recent data when accuracy drops below the threshold.
type RetrainPolicy struct {
	// Threshold is the accuracy below which retraining triggers (the paper
	// uses 0.80).
	Threshold float64
	// CheckEvery is the monitoring cadence (the paper checks every minute).
	CheckEvery time.Duration
	// RetrainWindow is how much trailing data a retrain uses (the paper uses
	// the last 1 minute before the trigger).
	RetrainWindow time.Duration
	// Cooldown suppresses retriggering immediately after a retrain.
	Cooldown time.Duration
}

// DefaultRetrainPolicy returns the §7 settings.
func DefaultRetrainPolicy() RetrainPolicy {
	return RetrainPolicy{
		Threshold:     0.80,
		CheckEvery:    time.Minute,
		RetrainWindow: time.Minute,
		Cooldown:      2 * time.Minute,
	}
}

// Monitor tracks windowed accuracy and decides when to retrain.
type Monitor struct {
	policy      RetrainPolicy
	lastRetrain int64 // ns
}

// NewMonitor creates a monitor for the policy.
func NewMonitor(p RetrainPolicy) *Monitor { return &Monitor{policy: p, lastRetrain: -1 << 62} }

// ShouldRetrain reports whether the observed windowed accuracy at time now
// warrants retraining.
func (m *Monitor) ShouldRetrain(now int64, accuracy float64) bool {
	if accuracy >= m.policy.Threshold {
		return false
	}
	if now-m.lastRetrain < int64(m.policy.Cooldown) {
		return false
	}
	m.lastRetrain = now
	return true
}

// Retrain rebuilds the model with the same configuration on fresh records
// (typically the RetrainWindow before the trigger). The original model is
// untouched; deployment swaps atomically to the returned one.
func (m *Model) Retrain(recent []iolog.Record) (*Model, error) {
	return Train(recent, m.cfg)
}

// WindowAccuracy scores the model against reference labels over one
// monitoring window and returns ROC-AUC — the paper's accuracy metric
// throughout §6.4 and the §7 monitoring signal. (Plain accuracy saturates
// because fast I/Os dominate.)
func (m *Model) WindowAccuracy(reads []iolog.Record, refLabels []int) float64 {
	if len(reads) == 0 {
		return 1
	}
	return m.Evaluate(reads, refLabels).ROCAUC
}

// Drift summarizes one monitoring step of a long deployment run.
type Drift struct {
	At        time.Duration
	Accuracy  float64
	Retrained bool
}
