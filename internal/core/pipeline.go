// Package core implements the Heimdall I/O admission model and its training
// pipeline — the paper's primary contribution. Train runs the full pipeline
// of §3 over a collected I/O log:
//
//	label (period-based, §3.1) → noise-filter (3 stages, §3.2) →
//	featurize + scale (§3.3) → train the tuned NN (§3.5) →
//	quantize for deployment (§4.1)
//
// The resulting Model makes per-I/O (or joint, §4.2) admit/decline decisions
// in well under a microsecond using integer arithmetic.
package core

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"time"

	"repro/internal/feature"
	"repro/internal/filter"
	"repro/internal/iolog"
	"repro/internal/label"
	"repro/internal/metrics"
	"repro/internal/nn"
)

// LabelingKind selects the labeling algorithm.
type LabelingKind int

const (
	// LabelPeriod is Heimdall's period-based accurate labeling (§3.1).
	LabelPeriod LabelingKind = iota
	// LabelCutoff is the latency-cutoff labeling of prior work (Fig. 3a).
	LabelCutoff
	// LabelCutoffSize is the latency knee per size class: slow means slow
	// for your own transfer size. It removes plain Cutoff's size confound
	// (Fig. 3b) without the arrival timestamps period labeling needs —
	// the labeler live retraining uses on harvested completions.
	LabelCutoffSize
)

// String names the labeling kind.
func (k LabelingKind) String() string {
	switch k {
	case LabelCutoff:
		return "cutoff"
	case LabelCutoffSize:
		return "cutoff-size"
	default:
		return "period"
	}
}

// Config parameterizes the pipeline. DefaultConfig gives the paper's final
// design; the ablation experiments flip individual fields.
type Config struct {
	Seed int64

	// Labeling stage.
	Labeling LabelingKind
	// SearchThresholds enables the gradient-descent threshold search
	// (Fig. 3d); otherwise DefaultThresholds are used as-is.
	SearchThresholds bool

	// Noise filtering stage (§3.2).
	Filter filter.Config

	// Feature engineering stage (§3.3).
	Feature feature.Spec
	Scaler  feature.ScalerKind

	// Model stage (§3.5). Hidden layers only; the output layer is added per
	// Output. Defaults to Fig. 9f: 128 and 16 ReLU neurons.
	Hidden []nn.LayerSpec
	// Output defaults to a single sigmoid neuron.
	Output nn.LayerSpec

	Epochs int
	Batch  int
	LR     float64
	// PosWeight != 1 enables the biased weighted-loss training of §3.6.
	PosWeight float64

	// JointSize is the joint-inference granularity P (§4.2): one inference
	// admits/declines P consecutive I/Os. 1 disables joint inference.
	JointSize int

	// MaxTrainSamples caps the training set by uniform random subsampling
	// (the data-sampling stage of the pipeline, Fig. 1 "TS"); 0 means no
	// cap. High-IOPS logs carry hundreds of thousands of reads per minute;
	// the model saturates well before that.
	MaxTrainSamples int

	// Quantize produces the fixed-point deployment network (§4.1). On by
	// default in DefaultConfig.
	Quantize bool

	// Quantize8 additionally builds the int8 batch engine (per-channel
	// symmetric weight scales, activation scales calibrated on the scaled
	// training rows) and installs it as the model's active Predictor. Off by
	// default: the int32 ladder remains the reference deployment; flip this
	// (or call Model.EnableInt8) to serve through the batched int8 kernel.
	Quantize8 bool
}

// DefaultConfig returns the shipped Heimdall pipeline: period labeling with
// threshold search, the shipped noise-filter configuration (see
// filter.DefaultConfig; the paper's full 3-stage setup is
// filter.PaperConfig), the selected 11-feature set at depth 3 with min-max
// scaling, the 128/16 ReLU network with a single sigmoid output, and
// quantization.
func DefaultConfig(seed int64) Config {
	return Config{
		Seed:             seed,
		Labeling:         LabelPeriod,
		SearchThresholds: true,
		Filter:           filter.DefaultConfig(),
		Feature:          feature.DefaultSpec(),
		Scaler:           feature.ScaleMinMax,
		Hidden:           []nn.LayerSpec{{Units: 128, Act: nn.ReLU}, {Units: 16, Act: nn.ReLU}},
		Output:           nn.LayerSpec{Units: 1, Act: nn.Sigmoid},
		Epochs:           25,
		Batch:            64,
		LR:               0.005,
		PosWeight:        1,
		JointSize:        1,
		MaxTrainSamples:  50000,
		Quantize:         true,
	}
}

// Report describes a completed training run.
type Report struct {
	Samples      int // read I/Os in the log
	Kept         int // samples surviving noise filtering
	SlowFraction float64
	Thresholds   label.Thresholds
	FilterDrops  map[filter.NoiseKind]int
	// PreprocessTime covers labeling, filtering, feature extraction, and
	// scaling; TrainTime covers gradient descent (the §6.7 split).
	PreprocessTime time.Duration
	TrainTime      time.Duration
	TrainStats     nn.TrainStats
}

// Model is a trained Heimdall admission model.
type Model struct {
	cfg    Config
	spec   feature.Spec
	scaler feature.Scaler
	net    *nn.Network
	qnet   *nn.QuantNetwork
	qnet8  *nn.QuantNetwork8
	report Report

	// pred is the active inference engine every admission decision routes
	// through. By default it is the highest rung of the quantization ladder
	// the configuration built (int8 > int32 > float); SetPredictor installs
	// a custom engine.
	pred nn.Predictor

	// threshold is the calibrated decision boundary: scores at or above it
	// decline the I/O. Calibrated so that the training-set decline rate
	// matches the labeled slow fraction — plain 0.5 under-calls the slow
	// minority after BCE training on imbalanced data (§3.6).
	threshold float64

	iscr        *Scratch // internal scratch backing the Admit convenience path
	rowBuf      []float64
	fcur, fnext []float64
}

// ErrNoReads is returned when the training log contains no read I/Os.
var ErrNoReads = errors.New("core: training log contains no reads")

// ErrOneClass is returned when labeling yields a single class (a log with no
// detectable slow period, or all slow).
var ErrOneClass = errors.New("core: labeled log has a single class; collect a longer log")

// Train runs the full pipeline over a collected log and returns the
// deployable model.
//
// Audited wall-clock use: the two time.Now reads feed only the §6.7
// Report.PreprocessTime/TrainTime fields; no training decision or model
// parameter depends on them, so reproducibility is unaffected.
//
//heimdall:walltime
func Train(recs []iolog.Record, cfg Config) (*Model, error) {
	start := time.Now()
	reads := iolog.Reads(recs)
	if len(reads) == 0 {
		return nil, ErrNoReads
	}
	if cfg.JointSize < 1 {
		cfg.JointSize = 1
	}
	if cfg.Feature.Depth == 0 {
		cfg.Feature = feature.DefaultSpec()
	}
	if len(cfg.Hidden) == 0 {
		cfg.Hidden = []nn.LayerSpec{{Units: 128, Act: nn.ReLU}, {Units: 16, Act: nn.ReLU}}
	}
	if cfg.Output.Units == 0 {
		cfg.Output = nn.LayerSpec{Units: 1, Act: nn.Sigmoid}
	}

	labels, thresholds := Label(reads, cfg)

	fres := filter.Apply(reads, labels, cfg.Filter)

	rows := feature.Extract(reads, cfg.Feature)
	rows, labels = assemble(rows, reads, labels, fres.Keep, cfg)
	if !hasBothClasses(labels) {
		return nil, ErrOneClass
	}

	scaler := feature.NewScaler(cfg.Scaler)
	feature.FitTransform(scaler, rows)
	rows, labels = subsample(rows, labels, cfg.MaxTrainSamples, cfg.Seed)
	preprocess := time.Since(start)

	width := len(rows[0])
	loss := nn.BCE
	if cfg.Output.Act == nn.Softmax {
		loss = nn.CE
	}
	net, err := nn.New(nn.Config{
		Inputs:    width,
		Layers:    append(append([]nn.LayerSpec(nil), cfg.Hidden...), cfg.Output),
		Seed:      cfg.Seed,
		Optimizer: nn.Adam,
		Loss:      loss,
		LR:        cfg.LR,
		Epochs:    cfg.Epochs,
		Batch:     cfg.Batch,
		PosWeight: cfg.PosWeight,
		Patience:  6,
	})
	if err != nil {
		return nil, err
	}
	yf := make([]float64, len(labels))
	for i, l := range labels {
		yf[i] = float64(l)
	}
	trainStart := time.Now()
	stats, err := net.Train(rows, yf)
	if err != nil {
		return nil, err
	}

	m := &Model{
		cfg:       cfg,
		spec:      cfg.Feature,
		scaler:    scaler,
		net:       net,
		threshold: calibrate(net, rows, labels),
		report: Report{
			Samples:        len(reads),
			Kept:           fres.Kept,
			SlowFraction:   label.SlowFraction(labels),
			Thresholds:     thresholds,
			FilterDrops:    fres.Drops,
			PreprocessTime: preprocess,
			TrainTime:      time.Since(trainStart),
			TrainStats:     stats,
		},
	}
	if cfg.Quantize {
		q, err := net.Quantize()
		if err != nil {
			return nil, fmt.Errorf("core: quantize: %w", err)
		}
		m.qnet = q
	}
	if cfg.Quantize8 {
		// The scaled training rows double as the activation-scale
		// calibration set: they are exactly the distribution the model
		// will see online.
		q8, err := net.Quantize8(rows)
		if err != nil {
			return nil, fmt.Errorf("core: quantize8: %w", err)
		}
		m.qnet8 = q8
	}
	m.pred = m.defaultPredictor()
	return m, nil
}

// Label runs the configured labeling stage and returns labels for the read
// log plus the thresholds used (period labeling only).
func Label(reads []iolog.Record, cfg Config) ([]int, label.Thresholds) {
	switch cfg.Labeling {
	case LabelCutoff:
		return label.Cutoff(reads, label.CutoffValue(reads)), label.Thresholds{}
	case LabelCutoffSize:
		return label.CutoffPerSize(reads), label.Thresholds{}
	default:
		th := label.DefaultThresholds()
		if cfg.SearchThresholds {
			th = label.Search(reads, label.SearchOptions{})
		}
		return label.Period(reads, th), th
	}
}

// assemble applies the filter mask and, for joint inference, groups P
// consecutive kept samples into one row (head features + the P sizes) with
// an any-slow label.
func assemble(rows [][]float64, reads []iolog.Record, labels []int, keep []bool, cfg Config) ([][]float64, []int) {
	var keptRows [][]float64
	var keptLabels []int
	var keptSizes []float64
	for i := range rows {
		if !keep[i] {
			continue
		}
		keptRows = append(keptRows, rows[i])
		keptLabels = append(keptLabels, labels[i])
		keptSizes = append(keptSizes, float64(reads[i].Size))
	}
	p := cfg.JointSize
	if p <= 1 {
		return keptRows, keptLabels
	}
	var outRows [][]float64
	var outLabels []int
	for i := 0; i+p <= len(keptRows); i += p {
		row := append([]float64(nil), keptRows[i]...)
		// Extend with the sizes of the remaining P-1 I/Os in the group; the
		// head's own size is already in its feature vector.
		for j := 1; j < p; j++ {
			row = append(row, keptSizes[i+j])
		}
		lab := 0
		for j := 0; j < p; j++ {
			if keptLabels[i+j] == 1 {
				lab = 1
				break
			}
		}
		outRows = append(outRows, row)
		outLabels = append(outLabels, lab)
	}
	return outRows, outLabels
}

// calibrate picks the decision threshold whose training-set decline rate
// matches the labeled slow fraction, clamped to [0.05, 0.5]. This is the
// fine-grained tuning pass that keeps the deployed false-admit rate in line
// with what labeling saw.
func calibrate(net *nn.Network, rows [][]float64, labels []int) float64 {
	if len(rows) == 0 {
		return 0.5
	}
	slow := 0
	scores := make([]float64, len(rows))
	cur := make([]float64, net.ScratchSize())
	next := make([]float64, net.ScratchSize())
	for i, r := range rows {
		scores[i] = net.PredictInto(r, cur, next)
		slow += labels[i]
	}
	sort.Float64s(scores)
	// Threshold at the (1 - slowFrac) quantile of training scores.
	idx := len(scores) - slow
	if idx < 0 {
		idx = 0
	}
	if idx >= len(scores) {
		idx = len(scores) - 1
	}
	th := scores[idx]
	if th < 0.05 {
		th = 0.05
	}
	if th > 0.5 {
		th = 0.5
	}
	return th
}

// subsample uniformly reduces the training set to at most max rows,
// deterministically in seed. Uniform sampling preserves the class mix.
func subsample(rows [][]float64, labels []int, max int, seed int64) ([][]float64, []int) {
	if max <= 0 || len(rows) <= max {
		return rows, labels
	}
	rng := rand.New(rand.NewSource(seed + 17))
	idx := rng.Perm(len(rows))[:max]
	sort.Ints(idx)
	outR := make([][]float64, max)
	outL := make([]int, max)
	for i, j := range idx {
		outR[i] = rows[j]
		outL[i] = labels[j]
	}
	return outR, outL
}

func hasBothClasses(labels []int) bool {
	var pos, neg bool
	for _, l := range labels {
		if l == 1 {
			pos = true
		} else {
			neg = true
		}
		if pos && neg {
			return true
		}
	}
	return false
}

// Config returns the pipeline configuration.
func (m *Model) Config() Config { return m.cfg }

// Report returns the training report.
func (m *Model) Report() Report { return m.report }

// Spec returns the feature spec deployment callers must feed.
func (m *Model) Spec() feature.Spec { return m.spec }

// JointSize returns the inference granularity P.
func (m *Model) JointSize() int { return m.cfg.JointSize }

// Net exposes the underlying float network (for overhead accounting and the
// tuning experiments).
func (m *Model) Net() *nn.Network { return m.net }

// Quantized exposes the fixed-point network, nil if quantization is off.
func (m *Model) Quantized() *nn.QuantNetwork { return m.qnet }

// Quantized8 exposes the int8 batch engine, nil unless Quantize8 was set or
// EnableInt8 was called.
func (m *Model) Quantized8() *nn.QuantNetwork8 { return m.qnet8 }

// defaultPredictor returns the highest rung of the quantization ladder this
// model carries: int8, else int32, else the float network.
func (m *Model) defaultPredictor() nn.Predictor {
	if m.qnet8 != nil {
		return m.qnet8
	}
	if m.qnet != nil {
		return m.qnet
	}
	return m.net
}

// Predictor returns the active inference engine — what AdmitInto,
// AdmitBatchInto, Admit, and the serving layer decide through.
func (m *Model) Predictor() nn.Predictor {
	if m.pred == nil {
		m.pred = m.defaultPredictor()
	}
	return m.pred
}

// SetPredictor installs a custom inference engine; nil restores the ladder
// default. The engine must accept this model's input width. Not safe to call
// concurrently with inference — use WithPredictor to derive a second model
// instead of mutating a shared one.
func (m *Model) SetPredictor(p nn.Predictor) {
	if p == nil {
		p = m.defaultPredictor()
	}
	m.pred = p
	m.iscr = nil // engine-specific scratch shapes may differ
}

// WithPredictor returns a shallow copy of the model that decides through p:
// same feature spec, scaler, calibrated threshold, and networks, but an
// independent engine and no shared scratch — the copy and the original can
// serve concurrently. Passing nil copies with the ladder default.
func (m *Model) WithPredictor(p nn.Predictor) *Model {
	c := *m
	c.iscr = nil
	c.rowBuf, c.fcur, c.fnext = nil, nil, nil
	if p == nil {
		p = c.defaultPredictor()
	}
	c.pred = p
	return &c
}

// EnableInt8 builds the int8 batch engine from the float network and
// installs it as the active Predictor. Activation scales are calibrated on
// rawCalib (raw, unscaled feature rows of the model's input width — e.g.
// feature.Extract output; rows of any other width are skipped); with no
// usable rows the scales fall back to conservative analytic bounds, which
// cost int8 resolution. Models trained with Config.Quantize8 already carry
// calibrated scales and keep them. Not safe to call concurrently with
// inference.
func (m *Model) EnableInt8(rawCalib [][]float64) error {
	if m.qnet8 != nil {
		m.SetPredictor(m.qnet8)
		return nil
	}
	width := m.net.Config().Inputs
	var scaled [][]float64
	for _, r := range rawCalib {
		if len(r) != width {
			continue
		}
		row := append([]float64(nil), r...)
		m.scale(row)
		scaled = append(scaled, row)
	}
	q8, err := m.net.Quantize8(scaled)
	if err != nil {
		return fmt.Errorf("core: quantize8: %w", err)
	}
	m.qnet8 = q8
	m.cfg.Quantize8 = true // Save/Load keeps the engine choice
	m.SetPredictor(q8)
	return nil
}

// scale applies the trained scaler to the raw (unscaled) feature row in
// place. The scaler was fitted on assembled rows, so joint models scale the
// extended group row directly.
func (m *Model) scale(row []float64) []float64 {
	return m.scaler.Transform(row)
}

// Score returns P(slow) for a raw feature row (float path).
func (m *Model) Score(raw []float64) float64 {
	row := append([]float64(nil), raw...)
	m.scale(row)
	return m.net.Infer(row)
}

// ScoreFast returns P(slow) for a raw feature row via the float network,
// reusing the model's internal scratch buffers — the zero-allocation
// counterpart of Score. Not safe for concurrent use (shared scratch); clone
// the model per goroutine or use Score.
//
//heimdall:hotpath
func (m *Model) ScoreFast(raw []float64) float64 {
	if cap(m.rowBuf) < len(raw) {
		m.rowBuf = make([]float64, len(raw))
	}
	row := m.rowBuf[:len(raw)]
	copy(row, raw)
	m.scale(row)
	if m.fcur == nil {
		w := m.net.ScratchSize()
		m.fcur = make([]float64, w)
		m.fnext = make([]float64, w)
	}
	return m.net.PredictInto(row, m.fcur, m.fnext)
}

// Threshold returns the calibrated decision boundary.
func (m *Model) Threshold() float64 { return m.threshold }

// SetThreshold overrides the calibrated decision boundary — deployment-time
// recalibration for operators who want a different FNR/FPR trade-off than
// the training-set calibration picked (§3.6 discusses the imbalance that
// makes this boundary a tuning knob). Scores at or above the threshold
// decline the I/O, so SetThreshold(2) always admits and SetThreshold(-1)
// never does. Not safe to call concurrently with inference.
func (m *Model) SetThreshold(t float64) { m.threshold = t }

// WithThreshold returns a copy of the model carrying a different decision
// threshold. The copy shares the (read-only at decision time) networks,
// scaler, and predictor but owns its internal scratch, so the original
// can keep serving while the copy is published — the safe way to move a
// deployed model's operating point (SetThreshold on a served model races
// with inference).
func (m *Model) WithThreshold(t float64) *Model {
	out := *m
	out.iscr, out.rowBuf, out.fcur, out.fnext = nil, nil, nil, nil
	out.threshold = t
	return &out
}

// Scratch holds the per-caller buffers AdmitInto needs, making concurrent
// inference possible on one shared *Model: the model's weights, scaler, and
// threshold are read-only at decision time, so N goroutines each holding a
// Scratch can call AdmitInto on the same Model without synchronization —
// what the serving layer's shards do.
type Scratch struct {
	flat   []float64   // scaled feature rows, batch-major, one contiguous block
	rows   [][]float64 // views into flat, one per staged row
	scores []float64   // model outputs per staged row
	ns     *nn.Scratch // the active Predictor's layer buffers
	width  int         // feature width flat was laid out for
}

// NewScratch sizes a Scratch for single-row admission (batch of 1) against
// the model's active Predictor.
func (m *Model) NewScratch() *Scratch { return m.NewBatchScratch(1) }

// NewBatchScratch sizes a Scratch so AdmitBatchInto can decide up to
// maxBatch rows with zero allocations. A Scratch is bound to the Predictor
// that was active when it was created — SetPredictor invalidates it.
func (m *Model) NewBatchScratch(maxBatch int) *Scratch {
	if maxBatch < 1 {
		maxBatch = 1
	}
	// Joint rows extend the base width by P-1 sizes.
	w := m.spec.Width() + m.cfg.JointSize
	return &Scratch{
		flat:   make([]float64, 0, maxBatch*w),
		rows:   make([][]float64, 0, maxBatch),
		scores: make([]float64, maxBatch),
		ns:     nn.NewScratch(m.Predictor(), maxBatch),
		width:  w,
	}
}

// AdmitInto decides one I/O (or one joint group) from a raw feature row
// through the model's active Predictor, exactly like Admit, but with
// caller-provided scratch instead of the model's internal buffers. The input
// is not modified. Safe for concurrent use with per-goroutine Scratch; zero
// allocations once the scratch has grown to the feature width.
//
//heimdall:hotpath
func (m *Model) AdmitInto(raw []float64, s *Scratch) bool {
	if cap(s.flat) < len(raw) {
		s.flat = make([]float64, 0, len(raw))
	}
	s.flat = append(s.flat[:0], raw...)
	m.scale(s.flat)
	if cap(s.rows) < 1 {
		s.rows = make([][]float64, 0, 1)
	}
	s.rows = append(s.rows[:0], s.flat)
	if len(s.scores) < 1 {
		s.scores = make([]float64, 1)
	}
	m.pred.PredictBatchInto(s.rows, s.scores[:1], s.ns)
	return s.scores[0] < m.threshold
}

// AdmitBatchInto decides a batch of raw feature rows in one pass through the
// active Predictor's batch kernel, writing one verdict per row into
// verdicts[:len(raws)] (true = admit). Inputs are not modified. Verdicts are
// bit-identical to calling AdmitInto row by row — integer-quantized engines
// are exact at any batch shape — which is what lets the serving layer batch
// without changing answers. Zero allocations once s (from NewBatchScratch)
// has grown to the batch shape.
//
//heimdall:hotpath
func (m *Model) AdmitBatchInto(raws [][]float64, verdicts []bool, s *Scratch) {
	n := len(raws)
	if n == 0 {
		return
	}
	need := 0
	for _, r := range raws {
		need += len(r)
	}
	// Grow flat up front: appending must never reallocate mid-loop or the
	// earlier row views in s.rows would dangle into the old block.
	if cap(s.flat) < need {
		s.flat = make([]float64, 0, need)
	}
	if cap(s.rows) < n {
		s.rows = make([][]float64, 0, n)
	}
	if len(s.scores) < n {
		s.scores = make([]float64, n)
	}
	s.flat = s.flat[:0]
	s.rows = s.rows[:0]
	for _, r := range raws {
		off := len(s.flat)
		s.flat = append(s.flat, r...)
		row := s.flat[off : off+len(r) : off+len(r)]
		m.scale(row)
		s.rows = append(s.rows, row)
	}
	m.pred.PredictBatchInto(s.rows, s.scores[:n], s.ns)
	for i := 0; i < n; i++ {
		verdicts[i] = s.scores[i] < m.threshold
	}
}

// Admit decides one I/O (or one joint group) from a raw feature row through
// the model's active Predictor: true = admit, false = decline and reroute.
// The input is not modified. Not safe for concurrent use (shared internal
// scratch); use AdmitInto with a per-goroutine Scratch instead.
//
//heimdall:hotpath
func (m *Model) Admit(raw []float64) bool {
	if m.iscr == nil {
		m.iscr = m.NewScratch()
	}
	return m.AdmitInto(raw, m.iscr)
}

// Features assembles the raw (unscaled) online feature row for a single I/O.
func (m *Model) Features(queueLen int, size int32, hist *feature.Window) []float64 {
	return m.spec.Online(queueLen, size, 0, 0, hist)
}

// JointFeatures assembles the raw feature row for a joint group of I/Os:
// head features plus the sizes of the rest of the group. len(sizes) must
// equal JointSize.
func (m *Model) JointFeatures(queueLen int, sizes []int32, hist *feature.Window) []float64 {
	row := m.spec.Online(queueLen, sizes[0], 0, 0, hist)
	for _, s := range sizes[1:] {
		row = append(row, float64(s))
	}
	return row
}

// Evaluate scores a labeled test log and returns the five-metric report
// (§6.4). Joint models group the test samples the same way training did.
func (m *Model) Evaluate(reads []iolog.Record, refLabels []int) metrics.Report {
	rows := feature.Extract(reads, m.spec)
	keep := make([]bool, len(rows))
	for i := range keep {
		keep[i] = true
	}
	rows, labels := assemble(rows, reads, refLabels, keep, m.cfg)
	scores := make([]float64, len(rows))
	cur := make([]float64, m.net.ScratchSize())
	next := make([]float64, m.net.ScratchSize())
	for i, r := range rows {
		m.scale(r)
		scores[i] = m.net.PredictInto(r, cur, next)
	}
	return metrics.EvaluateAt(scores, labels, m.threshold)
}
