package core

import (
	"sync"
	"testing"
	"time"

	"repro/internal/feature"
)

// TestAdmitIntoMatchesAdmit pins the concurrent-safe scratch path to the
// model's internal-buffer path over a spread of live feature rows, for both
// the quantized and float-only deployments.
func TestAdmitIntoMatchesAdmit(t *testing.T) {
	for _, quantize := range []bool{true, false} {
		_, log := testLog(t, 11, 3*time.Second)
		cfg := quickCfg(11)
		cfg.Quantize = quantize
		m, err := Train(log, cfg)
		if err != nil {
			t.Fatal(err)
		}
		scr := m.NewScratch()
		win := feature.NewWindow(m.Spec().Depth)
		for i := 0; i < 500; i++ {
			raw := m.Features(i%24, int32(4096*(1+i%8)), win)
			if got, want := m.AdmitInto(raw, scr), m.Admit(raw); got != want {
				t.Fatalf("quantize=%v row %d: AdmitInto %v != Admit %v", quantize, i, got, want)
			}
			win.Push(feature.Hist{Latency: float64(80000 + 1000*i), QueueLen: float64(i % 24), Thpt: 50})
		}
	}
}

// TestAdmitIntoConcurrent drives one shared model from several goroutines,
// each with its own Scratch — the serving-shard usage. Run under -race this
// pins that model state really is read-only at decision time.
func TestAdmitIntoConcurrent(t *testing.T) {
	_, log := testLog(t, 12, 3*time.Second)
	m, err := Train(log, quickCfg(12))
	if err != nil {
		t.Fatal(err)
	}
	// Reference decisions computed sequentially first.
	rows := make([][]float64, 300)
	want := make([]bool, len(rows))
	win := feature.NewWindow(m.Spec().Depth)
	for i := range rows {
		rows[i] = m.Features(i%16, int32(4096+512*(i%32)), win)
		want[i] = m.Admit(rows[i])
		win.Push(feature.Hist{Latency: float64(90000 + 700*i), QueueLen: float64(i % 16), Thpt: 40})
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			scr := m.NewScratch()
			for i, raw := range rows {
				if got := m.AdmitInto(raw, scr); got != want[i] {
					t.Errorf("row %d: concurrent AdmitInto %v != sequential %v", i, got, want[i])
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestAdmitIntoZeroAlloc pins 0 allocs/op on the scratch decide path once
// the scratch row has grown to the feature width.
func TestAdmitIntoZeroAlloc(t *testing.T) {
	_, log := testLog(t, 13, 3*time.Second)
	m, err := Train(log, quickCfg(13))
	if err != nil {
		t.Fatal(err)
	}
	scr := m.NewScratch()
	win := feature.NewWindow(m.Spec().Depth)
	win.Push(feature.Hist{Latency: 95000, QueueLen: 4, Thpt: 60})
	raw := m.Features(3, 8192, win)
	var sink bool
	if a := testing.AllocsPerRun(200, func() {
		sink = m.AdmitInto(raw, scr)
	}); a != 0 {
		t.Fatalf("AdmitInto allocates %.1f per run", a)
	}
	_ = sink
}

// TestSetThreshold pins the deployment-time recalibration semantics: a
// threshold above every score admits everything, one below declines
// everything.
func TestSetThreshold(t *testing.T) {
	_, log := testLog(t, 14, 3*time.Second)
	m, err := Train(log, quickCfg(14))
	if err != nil {
		t.Fatal(err)
	}
	scr := m.NewScratch()
	win := feature.NewWindow(m.Spec().Depth)
	raw := m.Features(2, 4096, win)

	m.SetThreshold(2)
	if m.Threshold() != 2 || !m.AdmitInto(raw, scr) || !m.Admit(raw) {
		t.Fatal("threshold 2 should admit every score in [0,1]")
	}
	m.SetThreshold(-1)
	if m.AdmitInto(raw, scr) || m.Admit(raw) {
		t.Fatal("threshold -1 should decline every score in [0,1]")
	}
}
