package core

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"repro/internal/feature"
	"repro/internal/iolog"
)

// evalRows extracts a deterministic raw feature set from a fresh device log.
func evalRows(t *testing.T, m *Model, seed int64) [][]float64 {
	t.Helper()
	_, lg := testLog(t, seed, 3*time.Second)
	return feature.Extract(iolog.Reads(lg), m.Spec())
}

// TestAdmitBatchIntoMatchesAdmitInto pins the API contract the serving layer
// leans on: one batched pass returns exactly the verdicts row-by-row
// admission would, at every batch size, for every rung of the quantization
// ladder.
func TestAdmitBatchIntoMatchesAdmitInto(t *testing.T) {
	for _, mode := range []struct {
		name          string
		quant, quant8 bool
	}{
		{"float", false, false},
		{"int32", true, false},
		{"int8", false, true},
		{"int32+int8", true, true},
	} {
		t.Run(mode.name, func(t *testing.T) {
			_, lg := testLog(t, 31, 3*time.Second)
			cfg := quickCfg(31)
			cfg.Quantize = mode.quant
			cfg.Quantize8 = mode.quant8
			m, err := Train(lg, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if mode.quant8 && m.Quantized8() == nil {
				t.Fatal("Quantize8 set but no int8 engine built")
			}
			rows := evalRows(t, m, 32)[:400]
			scr := m.NewScratch()
			want := make([]bool, len(rows))
			for i, r := range rows {
				want[i] = m.AdmitInto(r, scr)
			}
			for _, bs := range []int{1, 7, 64, len(rows)} {
				bscr := m.NewBatchScratch(bs)
				got := make([]bool, len(rows))
				for off := 0; off < len(rows); off += bs {
					end := off + bs
					if end > len(rows) {
						end = len(rows)
					}
					m.AdmitBatchInto(rows[off:end], got[off:], bscr)
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("%s batch=%d row %d: batched %v != row-by-row %v",
							mode.name, bs, i, got[i], want[i])
					}
				}
			}
		})
	}
}

// TestInt8VerdictAgreement is the golden gate: int8 verdicts against the
// int32 reference engine on a seeded eval set, with the exact agreement rate
// reported. The serving layer treats int8 as a drop-in engine, so agreement
// must stay near-total.
func TestInt8VerdictAgreement(t *testing.T) {
	_, lg := testLog(t, 33, 4*time.Second)
	cfg := quickCfg(33)
	cfg.Quantize = true
	cfg.Quantize8 = true
	m, err := Train(lg, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rows := evalRows(t, m, 34)
	m32 := m.WithPredictor(m.Quantized())
	m8 := m.WithPredictor(m.Quantized8())
	s32 := m32.NewBatchScratch(len(rows))
	s8 := m8.NewBatchScratch(len(rows))
	v32 := make([]bool, len(rows))
	v8 := make([]bool, len(rows))
	m32.AdmitBatchInto(rows, v32, s32)
	m8.AdmitBatchInto(rows, v8, s8)
	agree := 0
	for i := range v32 {
		if v32[i] == v8[i] {
			agree++
		}
	}
	rate := float64(agree) / float64(len(rows))
	t.Logf("int8 vs int32 verdict agreement: %d/%d = %.4f", agree, len(rows), rate)
	if rate < 0.98 {
		t.Fatalf("int8 verdict agreement %.4f below gate 0.98", rate)
	}
}

// TestEnableInt8 covers post-training upgrade: a model trained without
// Quantize8 gains the int8 engine from caller-supplied calibration rows and
// starts deciding through it.
func TestEnableInt8(t *testing.T) {
	_, lg := testLog(t, 35, 3*time.Second)
	m, err := Train(lg, quickCfg(35))
	if err != nil {
		t.Fatal(err)
	}
	if m.Quantized8() != nil {
		t.Fatal("int8 engine present before EnableInt8")
	}
	rows := evalRows(t, m, 36)[:300]
	if err := m.EnableInt8(rows); err != nil {
		t.Fatal(err)
	}
	q8 := m.Quantized8()
	if q8 == nil || m.Predictor() != q8 {
		t.Fatal("EnableInt8 did not install the int8 engine as active Predictor")
	}
	// Decisions flow and batched == row-by-row through the new engine.
	scr := m.NewBatchScratch(len(rows))
	got := make([]bool, len(rows))
	m.AdmitBatchInto(rows, got, scr)
	for i, r := range rows {
		if m.Admit(r) != got[i] {
			t.Fatalf("row %d: Admit != AdmitBatchInto after EnableInt8", i)
		}
	}
	// Idempotent: a second call keeps the same engine.
	if err := m.EnableInt8(nil); err != nil {
		t.Fatal(err)
	}
	if m.Quantized8() != q8 {
		t.Fatal("second EnableInt8 rebuilt the engine")
	}
}

// TestSetPredictorLadder pins engine selection: ladder default prefers int8
// over int32 over float, SetPredictor overrides, nil restores.
func TestSetPredictorLadder(t *testing.T) {
	_, lg := testLog(t, 37, 3*time.Second)
	cfg := quickCfg(37)
	cfg.Quantize = true
	cfg.Quantize8 = true
	m, err := Train(lg, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.Predictor() != m.Quantized8() {
		t.Fatal("ladder default should be the int8 engine")
	}
	m.SetPredictor(m.Net())
	if m.Predictor() != m.Net() {
		t.Fatal("SetPredictor(float) not honored")
	}
	raw := evalRows(t, m, 38)[0]
	_ = m.Admit(raw) // must run fine on a fresh engine-specific scratch
	m.SetPredictor(nil)
	if m.Predictor() != m.Quantized8() {
		t.Fatal("SetPredictor(nil) should restore the ladder default")
	}
	// WithPredictor derives an independent model; the original is untouched.
	c := m.WithPredictor(m.Quantized())
	if c.Predictor() != m.Quantized() || m.Predictor() != m.Quantized8() {
		t.Fatal("WithPredictor leaked into the original model")
	}
	if c.Threshold() != m.Threshold() {
		t.Fatal("WithPredictor lost the calibrated threshold")
	}
}

// TestSaveLoadInt8RoundTrip pins serialization exactness for the int8
// engine: stored activation scales plus the float snapshot rebuild an engine
// whose every verdict matches the original.
func TestSaveLoadInt8RoundTrip(t *testing.T) {
	_, lg := testLog(t, 39, 3*time.Second)
	cfg := quickCfg(39)
	cfg.Quantize8 = true
	m, err := Train(lg, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	m2, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if m2.Quantized8() == nil {
		t.Fatal("int8 engine not rebuilt on Load")
	}
	if m2.Predictor() != m2.Quantized8() {
		t.Fatal("loaded model does not decide through the int8 engine")
	}
	rows := evalRows(t, m, 40)[:500]
	s1 := m.NewBatchScratch(len(rows))
	s2 := m2.NewBatchScratch(len(rows))
	v1 := make([]bool, len(rows))
	v2 := make([]bool, len(rows))
	m.AdmitBatchInto(rows, v1, s1)
	m2.AdmitBatchInto(rows, v2, s2)
	for i := range v1 {
		if v1[i] != v2[i] {
			t.Fatalf("row %d: verdict diverged across save/load", i)
		}
	}
}

// TestAdmitBatchIntoZeroAlloc pins 0 allocs/op on the batched decide path —
// the guarantee the serving layer's drain loop depends on.
func TestAdmitBatchIntoZeroAlloc(t *testing.T) {
	_, lg := testLog(t, 41, 3*time.Second)
	cfg := quickCfg(41)
	cfg.Quantize8 = true
	m, err := Train(lg, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rows := evalRows(t, m, 42)[:64]
	scr := m.NewBatchScratch(len(rows))
	verdicts := make([]bool, len(rows))
	if a := testing.AllocsPerRun(200, func() {
		m.AdmitBatchInto(rows, verdicts, scr)
	}); a != 0 {
		t.Fatalf("AdmitBatchInto allocates %.1f per run", a)
	}
}

// TestExportCInt8 checks the generated file gains the int8 batch kernel when
// the model carries the engine, and stays well-formed.
func TestExportCInt8(t *testing.T) {
	_, lg := testLog(t, 43, 3*time.Second)
	cfg := quickCfg(43)
	cfg.Quantize8 = true
	m, err := Train(lg, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.ExportC(&buf, "hd"); err != nil {
		t.Fatal(err)
	}
	src := buf.String()
	for _, want := range []string{
		"void hd_score_batch8(const float *raw, int n, float *out)",
		"void hd_admit_batch8(const float *raw, int n, int *out)",
		"static const int8_t hd_w8_0[1408]", // 11 x 128
		"static const int32_t hd_b8_0[128]",
		"static const int64_t hd_mq8_0[128]", // fixed-point hidden requant
		"static const double hd_m8_2[1]",     // float output dequant
		"static const double hd_sa8",
		"static int8_t hd_q8(double t)",
		"(p + 32768) >> 16",
	} {
		if !strings.Contains(src, want) {
			t.Errorf("generated C missing %q", want)
		}
	}
	if strings.Count(src, "{") != strings.Count(src, "}") {
		t.Error("unbalanced braces in generated C")
	}
}
