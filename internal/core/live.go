package core

import (
	"fmt"
	"sort"

	"repro/internal/feature"
	"repro/internal/filter"
	"repro/internal/iolog"
	"repro/internal/label"
	"repro/internal/nn"
	"repro/internal/trace"
)

// LiveSample is one harvested completion observation from the serving
// layer: the request identity the wire protocol carries, the measured
// latency, and the feature row the admission model saw (or would have
// seen) for this I/O at decide time. It is the unit the
// continuous-learning reservoir stores — the identity fields are a flat
// value type, and Row is an owned buffer the harvester recycles in place,
// so per-device reservoirs stay alloc-free at steady state.
type LiveSample struct {
	Device uint32
	// Seq is the per-device completion index (0, 1, 2, ...). It orders
	// samples within a device deterministically regardless of how devices
	// were sharded or interleaved at harvest time.
	Seq       uint64
	LatencyNs uint64
	QueueLen  uint32
	Size      uint32
	// Row is the raw feature row as the serving trackers produced it,
	// reconstructed by the harvester from the device's completion stream
	// (see lifecycle.Harvester). Training and judging on these rows keeps
	// the learning loop inside the serving feature distribution — the
	// whole point of harvesting (feature-row, latency) pairs rather than
	// identities alone. Nil on identity-only samples; the LiveRecords
	// reconstruction path ignores it.
	Row []float64
}

// LiveRecords converts harvested completions into a training log the
// offline pipeline accepts. Completions carry no arrival timestamps (the
// wire protocol deliberately does not trust client clocks), so arrivals
// are synthesized: samples are laid out device-major in (Device, Seq)
// order on one continuing logical clock, and each sample advances the
// clock by roughly its observed service share, latency/(queueLen+1).
// Busy periods (deep queues, long latencies) therefore reconstruct as
// dense windows with low drain ratios and calm periods as sparse ones —
// the shape the §3.1 period-labeling stage keys on. The reconstruction is
// an approximation, but a deterministic one: identical sample sets yield
// identical logs.
func LiveRecords(samples []LiveSample) []iolog.Record {
	ordered := append([]LiveSample(nil), samples...)
	sort.Slice(ordered, func(i, j int) bool {
		if ordered[i].Device != ordered[j].Device {
			return ordered[i].Device < ordered[j].Device
		}
		return ordered[i].Seq < ordered[j].Seq
	})
	const minGap = 1000 // 1µs floor keeps the synthetic clock advancing
	recs := make([]iolog.Record, 0, len(ordered))
	clock := int64(0)
	for _, s := range ordered {
		gap := int64(s.LatencyNs) / int64(s.QueueLen+1)
		if gap < minGap {
			gap = minGap
		}
		clock += gap
		recs = append(recs, iolog.Record{
			Arrival:  clock,
			Size:     int32(s.Size),
			Op:       trace.Read,
			Latency:  int64(s.LatencyNs),
			QueueLen: int(s.QueueLen),
		})
	}
	return recs
}

// TrainLive runs the full offline pipeline (label, filter, featurize,
// scale, train, calibrate, quantize) over a harvested reservoir — the
// cold-start challenger path of continuous retraining. Deterministic in
// (samples, cfg).
func TrainLive(samples []LiveSample, cfg Config) (*Model, error) {
	return Train(LiveRecords(samples), cfg)
}

// LiveLabels labels harvested completions from their (size, latency)
// pairs alone. Period labeling needs real arrival timestamps, which live
// completions deliberately do not carry, so it is coerced to the
// size-normalized cutoff — the live-retraining labeler that removes plain
// cutoff's size confound (Fig. 3b) without arrival reconstruction.
func LiveLabels(samples []LiveSample, cfg Config) []int {
	recs := make([]iolog.Record, len(samples))
	for i, s := range samples {
		recs[i] = iolog.Record{
			Size:     int32(s.Size),
			Op:       trace.Read,
			Latency:  int64(s.LatencyNs),
			QueueLen: int(s.QueueLen),
		}
	}
	if cfg.Labeling == LabelPeriod {
		cfg.Labeling = LabelCutoffSize
	}
	labels, _ := Label(recs, cfg)
	return labels
}

// TrainLiveRows runs the training tail of the pipeline (scale, train,
// calibrate, quantize) directly over harvested (feature-row, latency)
// pairs — the cold-start challenger path when the harvester captured
// serving rows. Unlike TrainLive there is no arrival reconstruction: the
// rows are the ones the serving trackers produced, so the model trains,
// calibrates, and deploys in one feature distribution. Labels come from
// LiveLabels; the noise-filter stage is skipped (its detectors need
// arrival structure); joint inference is forced off (live rows are
// single-I/O rows). Rows are copied before scaling, so the caller's
// sample set is untouched. Deterministic in (samples, cfg).
func TrainLiveRows(samples []LiveSample, cfg Config) (*Model, error) {
	rows := make([][]float64, 0, len(samples))
	kept := make([]LiveSample, 0, len(samples))
	for _, s := range samples {
		if s.Row == nil {
			continue
		}
		rows = append(rows, append([]float64(nil), s.Row...))
		kept = append(kept, s)
	}
	if len(rows) == 0 {
		return nil, ErrNoReads
	}
	labels := LiveLabels(kept, cfg)
	if !hasBothClasses(labels) {
		return nil, ErrOneClass
	}

	cfg.JointSize = 1
	if cfg.Feature.Depth == 0 {
		cfg.Feature = feature.DefaultSpec()
	}
	if len(cfg.Hidden) == 0 {
		cfg.Hidden = []nn.LayerSpec{{Units: 128, Act: nn.ReLU}, {Units: 16, Act: nn.ReLU}}
	}
	if cfg.Output.Units == 0 {
		cfg.Output = nn.LayerSpec{Units: 1, Act: nn.Sigmoid}
	}
	if w := cfg.Feature.Width(); w != len(rows[0]) {
		return nil, fmt.Errorf("core: live rows are %d wide, feature spec wants %d", len(rows[0]), w)
	}

	scaler := feature.NewScaler(cfg.Scaler)
	feature.FitTransform(scaler, rows)
	rows, labels = subsample(rows, labels, cfg.MaxTrainSamples, cfg.Seed)

	loss := nn.BCE
	if cfg.Output.Act == nn.Softmax {
		loss = nn.CE
	}
	net, err := nn.New(nn.Config{
		Inputs:    len(rows[0]),
		Layers:    append(append([]nn.LayerSpec(nil), cfg.Hidden...), cfg.Output),
		Seed:      cfg.Seed,
		Optimizer: nn.Adam,
		Loss:      loss,
		LR:        cfg.LR,
		Epochs:    cfg.Epochs,
		Batch:     cfg.Batch,
		PosWeight: cfg.PosWeight,
		Patience:  6,
	})
	if err != nil {
		return nil, err
	}
	yf := make([]float64, len(labels))
	for i, l := range labels {
		yf[i] = float64(l)
	}
	stats, err := net.Train(rows, yf)
	if err != nil {
		return nil, err
	}

	m := &Model{
		cfg:       cfg,
		spec:      cfg.Feature,
		scaler:    scaler,
		net:       net,
		threshold: calibrate(net, rows, labels),
		report: Report{
			Samples:      len(kept),
			Kept:         len(kept),
			SlowFraction: label.SlowFraction(labels),
			TrainStats:   stats,
		},
	}
	if cfg.Quantize {
		q, err := net.Quantize()
		if err != nil {
			return nil, err
		}
		m.qnet = q
	}
	if cfg.Quantize8 {
		q8, err := net.Quantize8(rows)
		if err != nil {
			return nil, err
		}
		m.qnet8 = q8
	}
	m.pred = m.defaultPredictor()
	return m, nil
}

// FinetuneLiveRows is the warm-start counterpart of TrainLiveRows: clone
// the model's network and continue training it on harvested serving rows,
// reusing the fitted scaler so the feature space stays aligned with the
// copied weights. Same contract as FinetuneLive otherwise: the receiver
// is untouched, epochs <= 0 defaults to 5, half learning rate.
func (m *Model) FinetuneLiveRows(samples []LiveSample, epochs int) (*Model, error) {
	rows := make([][]float64, 0, len(samples))
	kept := make([]LiveSample, 0, len(samples))
	for _, s := range samples {
		if s.Row == nil {
			continue
		}
		rows = append(rows, append([]float64(nil), s.Row...))
		kept = append(kept, s)
	}
	if len(rows) == 0 {
		return nil, ErrNoReads
	}
	cfg := m.cfg
	labels := LiveLabels(kept, cfg)
	if !hasBothClasses(labels) {
		return nil, ErrOneClass
	}
	for i, r := range rows {
		rows[i] = m.scaler.Transform(r)
	}
	rows, labels = subsample(rows, labels, cfg.MaxTrainSamples, cfg.Seed)

	net := m.net.Clone()
	if epochs <= 0 {
		epochs = 5
	}
	net.Retune(epochs, net.Config().LR/2)
	yf := make([]float64, len(labels))
	for i, l := range labels {
		yf[i] = float64(l)
	}
	stats, err := net.Train(rows, yf)
	if err != nil {
		return nil, err
	}

	out := &Model{
		cfg:       cfg,
		spec:      m.spec,
		scaler:    m.scaler,
		net:       net,
		threshold: calibrate(net, rows, labels),
		report: Report{
			Samples:      len(kept),
			Kept:         len(kept),
			SlowFraction: label.SlowFraction(labels),
			TrainStats:   stats,
		},
	}
	if cfg.Quantize {
		q, err := net.Quantize()
		if err != nil {
			return nil, err
		}
		out.qnet = q
	}
	if cfg.Quantize8 {
		q8, err := net.Quantize8(rows)
		if err != nil {
			return nil, err
		}
		out.qnet8 = q8
	}
	out.pred = out.defaultPredictor()
	return out, nil
}

// FinetuneLive is the warm-start challenger path: clone the model's
// network and continue training it for a few epochs on the harvested
// reservoir, reusing the model's fitted scaler so the feature space stays
// aligned with the copied weights. The receiver is untouched; the
// returned model shares the (read-only) scaler and spec but owns its
// networks, threshold, and quantized rungs. epochs <= 0 defaults to 5;
// the fine-tune uses half the configured learning rate, the usual
// small-step regime for continued training.
func (m *Model) FinetuneLive(samples []LiveSample, epochs int) (*Model, error) {
	recs := LiveRecords(samples)
	reads := iolog.Reads(recs)
	if len(reads) == 0 {
		return nil, ErrNoReads
	}
	cfg := m.cfg
	labels, _ := Label(reads, cfg)
	fres := filter.Apply(reads, labels, cfg.Filter)
	rows := feature.Extract(reads, m.spec)
	rows, labels = assemble(rows, reads, labels, fres.Keep, cfg)
	if !hasBothClasses(labels) {
		return nil, ErrOneClass
	}
	for i, r := range rows {
		rows[i] = m.scaler.Transform(r)
	}
	rows, labels = subsample(rows, labels, cfg.MaxTrainSamples, cfg.Seed)

	net := m.net.Clone()
	if epochs <= 0 {
		epochs = 5
	}
	net.Retune(epochs, net.Config().LR/2)
	yf := make([]float64, len(labels))
	for i, l := range labels {
		yf[i] = float64(l)
	}
	stats, err := net.Train(rows, yf)
	if err != nil {
		return nil, err
	}

	out := &Model{
		cfg:       cfg,
		spec:      m.spec,
		scaler:    m.scaler,
		net:       net,
		threshold: calibrate(net, rows, labels),
		report: Report{
			Samples:      len(reads),
			Kept:         fres.Kept,
			SlowFraction: label.SlowFraction(labels),
			FilterDrops:  fres.Drops,
			TrainStats:   stats,
		},
	}
	if cfg.Quantize {
		q, err := net.Quantize()
		if err != nil {
			return nil, err
		}
		out.qnet = q
	}
	if cfg.Quantize8 {
		q8, err := net.Quantize8(rows)
		if err != nil {
			return nil, err
		}
		out.qnet8 = q8
	}
	out.pred = out.defaultPredictor()
	return out, nil
}
