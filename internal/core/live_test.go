package core

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/iolog"
)

// liveSamples synthesizes a harvested reservoir with alternating calm and
// busy phases, the pattern period labeling keys on. Deterministic in seed.
func liveSamples(seed int64, n int, devices uint32) []LiveSample {
	rng := rand.New(rand.NewSource(seed))
	out := make([]LiveSample, 0, n)
	seqs := make([]uint64, devices)
	for i := 0; i < n; i++ {
		dev := uint32(i) % devices
		busy := (i/200)%2 == 1
		var s LiveSample
		s.Device = dev
		s.Seq = seqs[dev]
		seqs[dev]++
		if busy {
			s.LatencyNs = uint64(1_500_000 + rng.Intn(2_000_000))
			s.QueueLen = uint32(8 + rng.Intn(24))
			s.Size = uint32(64 << 10)
		} else {
			s.LatencyNs = uint64(60_000 + rng.Intn(60_000))
			s.QueueLen = uint32(rng.Intn(3))
			s.Size = uint32(4 << 10)
		}
		out = append(out, s)
	}
	return out
}

func liveTestConfig(seed int64) Config {
	cfg := DefaultConfig(seed)
	cfg.Labeling = LabelCutoff
	cfg.SearchThresholds = false
	cfg.Epochs = 6
	cfg.MaxTrainSamples = 4000
	cfg.Quantize = false
	return cfg
}

func TestLiveRecordsOrderIndependent(t *testing.T) {
	samples := liveSamples(1, 600, 3)
	recs := LiveRecords(samples)
	if len(recs) != len(samples) {
		t.Fatalf("got %d records for %d samples", len(recs), len(samples))
	}
	for i := 1; i < len(recs); i++ {
		if recs[i].Arrival <= recs[i-1].Arrival {
			t.Fatalf("arrival clock not strictly increasing at %d: %d then %d", i, recs[i-1].Arrival, recs[i].Arrival)
		}
	}
	// Shuffle the input: identical records must come out — harvest
	// interleaving across shards must not matter.
	shuffled := append([]LiveSample(nil), samples...)
	rng := rand.New(rand.NewSource(99))
	rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
	if !reflect.DeepEqual(recs, LiveRecords(shuffled)) {
		t.Fatal("LiveRecords depends on input order")
	}
}

func TestTrainLiveDeterministic(t *testing.T) {
	samples := liveSamples(2, 1200, 2)
	cfg := liveTestConfig(11)
	m1, err := TrainLive(samples, cfg)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := TrainLive(samples, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m1.Threshold() != m2.Threshold() {
		t.Fatalf("thresholds diverge: %v vs %v", m1.Threshold(), m2.Threshold())
	}
	recs := LiveRecords(samples)
	reads := iolog.Reads(recs)
	labels, _ := Label(reads, cfg)
	r1 := m1.Evaluate(reads, labels)
	r2 := m2.Evaluate(reads, labels)
	if r1 != r2 {
		t.Fatalf("evaluations diverge: %+v vs %+v", r1, r2)
	}
	if r1.ROCAUC < 0.7 {
		t.Fatalf("live-trained model barely better than chance: AUC %v", r1.ROCAUC)
	}
}

func TestFinetuneLiveLeavesChampionUntouched(t *testing.T) {
	cfg := liveTestConfig(21)
	champ, err := TrainLive(liveSamples(3, 1200, 2), cfg)
	if err != nil {
		t.Fatal(err)
	}
	fresh := liveSamples(4, 1200, 2)
	recs := LiveRecords(fresh)
	reads := iolog.Reads(recs)
	labels, _ := Label(reads, cfg)

	beforeTh := champ.Threshold()
	before := champ.Evaluate(reads, labels)

	tuned, err := champ.FinetuneLive(fresh, 3)
	if err != nil {
		t.Fatal(err)
	}
	if champ.Threshold() != beforeTh {
		t.Fatal("finetune mutated champion threshold")
	}
	if after := champ.Evaluate(reads, labels); after != before {
		t.Fatalf("finetune mutated champion network: %+v vs %+v", after, before)
	}
	if tuned.Spec().Width() != champ.Spec().Width() {
		t.Fatal("finetuned model changed feature space")
	}
	if got := tuned.Evaluate(reads, labels); got.ROCAUC < 0.6 {
		t.Fatalf("finetuned model degenerate: AUC %v", got.ROCAUC)
	}

	// Determinism: a second identical fine-tune yields the same model.
	tuned2, err := champ.FinetuneLive(fresh, 3)
	if err != nil {
		t.Fatal(err)
	}
	if tuned.Threshold() != tuned2.Threshold() {
		t.Fatalf("finetune thresholds diverge: %v vs %v", tuned.Threshold(), tuned2.Threshold())
	}
	if e1, e2 := tuned.Evaluate(reads, labels), tuned2.Evaluate(reads, labels); e1 != e2 {
		t.Fatalf("finetune runs diverge: %+v vs %+v", e1, e2)
	}
}
