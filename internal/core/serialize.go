package core

import (
	"encoding/gob"
	"fmt"
	"io"

	"repro/internal/feature"
	"repro/internal/nn"
)

// modelFile is the on-disk form of a trained model: everything a storage
// node needs to make admission decisions — configuration, network weights,
// fitted scaler statistics, and the calibrated threshold. It deliberately
// excludes training state; a loaded model is inference-only until Retrain
// rebuilds it from fresh data.
type modelFile struct {
	Version   int
	Cfg       Config
	Net       nn.Snapshot
	Scaler    feature.ScalerState
	Threshold float64
	Report    Report
	// Act8 holds the int8 engine's calibrated activation scales when the
	// model carries one. Weight scales are derived deterministically from
	// the float weights, so float snapshot + Act8 rebuilds a bit-identical
	// int8 network. Gob ignores unknown fields, so adding this keeps
	// Version 1 readable both ways (older readers drop it; older files
	// leave it empty here).
	Act8 []float64
}

const modelFileVersion = 1

// Save serializes the model. The format is gob-based and versioned; Load
// rejects unknown versions.
func (m *Model) Save(w io.Writer) error {
	f := modelFile{
		Version:   modelFileVersion,
		Cfg:       m.cfg,
		Net:       m.net.Snapshot(),
		Scaler:    m.scaler.State(),
		Threshold: m.threshold,
		Report:    m.report,
	}
	if m.qnet8 != nil {
		f.Act8 = m.qnet8.ActScales()
	}
	if err := gob.NewEncoder(w).Encode(f); err != nil {
		return fmt.Errorf("core: save model: %w", err)
	}
	return nil
}

// Load deserializes a model saved with Save and rebuilds the inference
// paths (including the quantized network when the configuration asks for
// it).
func Load(r io.Reader) (*Model, error) {
	var f modelFile
	if err := gob.NewDecoder(r).Decode(&f); err != nil {
		return nil, fmt.Errorf("core: load model: %w", err)
	}
	if f.Version != modelFileVersion {
		return nil, fmt.Errorf("core: model file version %d, this build reads %d", f.Version, modelFileVersion)
	}
	net, err := nn.FromSnapshot(f.Net)
	if err != nil {
		return nil, fmt.Errorf("core: load model: %w", err)
	}
	m := &Model{
		cfg:       f.Cfg,
		spec:      f.Cfg.Feature,
		scaler:    feature.RestoreScaler(f.Scaler),
		net:       net,
		threshold: f.Threshold,
		report:    f.Report,
	}
	if f.Cfg.Feature.Depth == 0 {
		m.spec = feature.DefaultSpec()
	}
	if f.Cfg.Quantize {
		q, err := net.Quantize()
		if err != nil {
			return nil, fmt.Errorf("core: load model: %w", err)
		}
		m.qnet = q
	}
	if len(f.Act8) > 0 {
		q8, err := net.Quantize8Scales(f.Act8)
		if err != nil {
			return nil, fmt.Errorf("core: load model: %w", err)
		}
		m.qnet8 = q8
	}
	m.pred = m.defaultPredictor()
	return m, nil
}
