package core

import "sort"

// JointController implements the dynamic joint-size adjustment §4.2 leaves
// to storage administrators: given the measured cost of one inference at
// each granularity and the currently observed I/O rate, it picks the
// smallest joint size that keeps the inference core below a target
// utilization — smallest because accuracy degrades with P (Fig. 15b).
//
// The controller is deliberately tiny and allocation-free at decision time;
// a deployment re-evaluates it once per monitoring tick, not per I/O.
type JointController struct {
	// TargetUtil is the highest acceptable inference-core utilization
	// (default 0.5 — at an M/D/1-ish queue, utilization beyond that starts
	// to show in latency).
	TargetUtil float64

	sizes []int
	cost  []float64 // ns per inference for sizes[i]
}

// NewJointController builds a controller from measured per-inference costs.
// costNs maps joint size -> nanoseconds per inference at that size; the map
// must include size 1.
func NewJointController(costNs map[int]float64, targetUtil float64) *JointController {
	if targetUtil <= 0 || targetUtil >= 1 {
		targetUtil = 0.5
	}
	c := &JointController{TargetUtil: targetUtil}
	for s := range costNs {
		if s >= 1 {
			c.sizes = append(c.sizes, s)
		}
	}
	sort.Ints(c.sizes)
	c.cost = make([]float64, len(c.sizes))
	for i, s := range c.sizes {
		c.cost[i] = costNs[s]
	}
	return c
}

// Sizes returns the configured joint sizes in ascending order.
func (c *JointController) Sizes() []int { return append([]int(nil), c.sizes...) }

// Pick returns the smallest configured joint size whose inference core
// stays under TargetUtil at the given I/O rate (per second). If none
// qualifies, the largest size is returned — the best the deployment can do.
func (c *JointController) Pick(iops float64) int {
	if len(c.sizes) == 0 {
		return 1
	}
	for i, s := range c.sizes {
		// One inference serves s I/Os: the core performs iops/s inferences
		// per second, each costing cost[i] ns.
		util := iops / float64(s) * c.cost[i] / 1e9
		if util <= c.TargetUtil {
			return s
		}
	}
	return c.sizes[len(c.sizes)-1]
}

// Capacity returns the I/O rate (per second) at which the given joint size
// reaches TargetUtil.
func (c *JointController) Capacity(size int) float64 {
	for i, s := range c.sizes {
		if s == size {
			return c.TargetUtil * float64(s) / c.cost[i] * 1e9
		}
	}
	return 0
}
