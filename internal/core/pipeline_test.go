package core

import (
	"errors"
	"testing"
	"time"

	"repro/internal/feature"
	"repro/internal/filter"
	"repro/internal/iolog"
	"repro/internal/ssd"
	"repro/internal/trace"
)

func testLog(t *testing.T, seed int64, d time.Duration) (*ssd.Device, []iolog.Record) {
	t.Helper()
	tr := trace.Generate(trace.MSRStyle(seed, d))
	dev := ssd.New(ssd.Samsung970Pro(), seed)
	return dev, iolog.Collect(tr, dev)
}

func quickCfg(seed int64) Config {
	cfg := DefaultConfig(seed)
	cfg.Epochs = 8
	cfg.MaxTrainSamples = 8000
	return cfg
}

func TestTrainAndEvaluate(t *testing.T) {
	_, log := testLog(t, 1, 4*time.Second)
	m, err := Train(log, quickCfg(1))
	if err != nil {
		t.Fatal(err)
	}
	rep := m.Report()
	if rep.Samples == 0 || rep.Kept == 0 {
		t.Fatalf("report %+v", rep)
	}
	if rep.SlowFraction <= 0 || rep.SlowFraction >= 0.6 {
		t.Fatalf("slow fraction %v implausible", rep.SlowFraction)
	}
	if rep.PreprocessTime <= 0 || rep.TrainTime <= 0 {
		t.Fatal("missing timing")
	}

	// Evaluate against simulator ground truth on a fresh device.
	_, testlg := testLog(t, 2, 4*time.Second)
	reads := iolog.Reads(testlg)
	gt := iolog.GroundTruth(reads)
	res := m.Evaluate(reads, gt)
	if res.ROCAUC < 0.75 {
		t.Fatalf("ROC-AUC vs ground truth %.3f, want >= 0.75", res.ROCAUC)
	}
}

func TestQuantizedDecisionsAgree(t *testing.T) {
	_, log := testLog(t, 3, 3*time.Second)
	m, err := Train(log, quickCfg(3))
	if err != nil {
		t.Fatal(err)
	}
	if m.Quantized() == nil {
		t.Fatal("default config must quantize")
	}
	reads := iolog.Reads(log)
	rows := feature.Extract(reads[:500], m.Spec())
	agree := 0
	for _, raw := range rows {
		admitQ := m.Admit(raw)
		admitF := m.Score(raw) < m.Threshold()
		if admitQ == admitF {
			agree++
		}
	}
	if agree < 490 {
		t.Fatalf("quantized agrees with float on %d/500", agree)
	}
}

func TestErrNoReads(t *testing.T) {
	recs := []iolog.Record{{Op: trace.Write, Latency: 1}}
	if _, err := Train(recs, DefaultConfig(1)); !errors.Is(err, ErrNoReads) {
		t.Fatalf("err = %v, want ErrNoReads", err)
	}
}

func TestErrOneClass(t *testing.T) {
	// A perfectly uniform log yields no slow period at all.
	recs := make([]iolog.Record, 500)
	for i := range recs {
		recs[i] = iolog.Record{
			Arrival: int64(i) * 100_000, Size: 4096, Op: trace.Read,
			Latency: 100_000, QueueLen: 1,
		}
	}
	_, err := Train(recs, DefaultConfig(1))
	if !errors.Is(err, ErrOneClass) {
		t.Fatalf("err = %v, want ErrOneClass", err)
	}
}

func TestJointAssembly(t *testing.T) {
	rows := [][]float64{{1, 10}, {2, 20}, {3, 30}, {4, 40}, {5, 50}, {6, 60}, {7, 70}}
	reads := make([]iolog.Record, len(rows))
	for i := range reads {
		reads[i].Size = int32((i + 1) * 1000)
	}
	labels := []int{0, 0, 1, 0, 0, 0, 0}
	keep := []bool{true, true, true, true, true, false, true}
	cfg := Config{JointSize: 3}
	outRows, outLabels := assemble(rows, reads, labels, keep, cfg)
	// 6 kept rows → 2 joint groups of 3.
	if len(outRows) != 2 || len(outLabels) != 2 {
		t.Fatalf("joint rows %d labels %d", len(outRows), len(outLabels))
	}
	// Width: base 2 + 2 extra sizes.
	if len(outRows[0]) != 4 {
		t.Fatalf("joint width %d", len(outRows[0]))
	}
	// Group 1 holds indices 0,1,2 → any-slow = 1 (index 2 is slow).
	if outLabels[0] != 1 || outLabels[1] != 0 {
		t.Fatalf("joint labels %v", outLabels)
	}
	// Extended sizes are the 2nd and 3rd kept I/Os' sizes.
	if outRows[0][2] != 2000 || outRows[0][3] != 3000 {
		t.Fatalf("joint sizes %v", outRows[0])
	}
	// Skipped index 5: second group is 3,4,6.
	if outRows[1][2] != 5000 || outRows[1][3] != 7000 {
		t.Fatalf("second group sizes %v", outRows[1])
	}
}

func TestJointTraining(t *testing.T) {
	_, log := testLog(t, 5, 3*time.Second)
	cfg := quickCfg(5)
	cfg.JointSize = 3
	m, err := Train(log, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.JointSize() != 3 {
		t.Fatal("joint size lost")
	}
	hist := feature.NewWindow(cfg.Feature.Depth)
	raw := m.JointFeatures(2, []int32{4096, 8192, 4096}, hist)
	if len(raw) != m.Spec().Width()+2 {
		t.Fatalf("joint feature width %d", len(raw))
	}
	_ = m.Admit(raw) // must not panic
}

func TestSubsample(t *testing.T) {
	rows := make([][]float64, 100)
	labels := make([]int, 100)
	for i := range rows {
		rows[i] = []float64{float64(i)}
		labels[i] = i % 2
	}
	r, l := subsample(rows, labels, 10, 1)
	if len(r) != 10 || len(l) != 10 {
		t.Fatalf("sizes %d/%d", len(r), len(l))
	}
	// Alignment preserved.
	for i := range r {
		if int(r[i][0])%2 != l[i] {
			t.Fatal("row/label misaligned after subsample")
		}
	}
	// No-op when under the cap.
	r2, _ := subsample(rows, labels, 1000, 1)
	if len(r2) != 100 {
		t.Fatal("subsample shrank under-cap input")
	}
	// Deterministic.
	r3, _ := subsample(rows, labels, 10, 1)
	for i := range r3 {
		if r3[i][0] != r[i][0] {
			t.Fatal("subsample not deterministic")
		}
	}
}

func TestAblationConfigsTrain(t *testing.T) {
	_, log := testLog(t, 6, 3*time.Second)
	cfgs := map[string]func(*Config){
		"cutoff-labeling": func(c *Config) { c.Labeling = LabelCutoff },
		"no-filter":       func(c *Config) { c.Filter = filter.Config{} },
		"no-scaling":      func(c *Config) { c.Scaler = feature.ScaleNone },
		"digitize":        func(c *Config) { c.Scaler = feature.ScaleDigitize },
		"linnos-features": func(c *Config) { c.Feature = feature.Spec{Kinds: feature.LinnOSSet, Depth: 4} },
		"one-layer":       func(c *Config) { c.Hidden = c.Hidden[:1] },
		"pos-weighted":    func(c *Config) { c.PosWeight = 4 },
	}
	for name, mutate := range cfgs {
		cfg := quickCfg(6)
		cfg.Epochs = 4
		mutate(&cfg)
		if _, err := Train(log, cfg); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestLabelingKindString(t *testing.T) {
	if LabelPeriod.String() != "period" || LabelCutoff.String() != "cutoff" {
		t.Fatal("labeling kind names")
	}
}

func TestRetrainMonitor(t *testing.T) {
	p := DefaultRetrainPolicy()
	m := NewMonitor(p)
	if m.ShouldRetrain(0, 0.95) {
		t.Fatal("retrained above threshold")
	}
	if !m.ShouldRetrain(int64(time.Hour), 0.5) {
		t.Fatal("no retrain below threshold")
	}
	// Cooldown suppresses immediate retrigger.
	if m.ShouldRetrain(int64(time.Hour)+int64(time.Second), 0.5) {
		t.Fatal("retrained within cooldown")
	}
	if !m.ShouldRetrain(int64(time.Hour)+int64(10*time.Minute), 0.5) {
		t.Fatal("no retrain after cooldown")
	}
}

func TestRetrainProducesFreshModel(t *testing.T) {
	_, log := testLog(t, 7, 3*time.Second)
	m, err := Train(log, quickCfg(7))
	if err != nil {
		t.Fatal(err)
	}
	_, log2 := testLog(t, 8, 3*time.Second)
	m2, err := m.Retrain(log2)
	if err != nil {
		t.Fatal(err)
	}
	if m2 == m {
		t.Fatal("retrain returned same model")
	}
	if m2.Config().Seed != m.Config().Seed {
		t.Fatal("retrain changed config")
	}
}

func TestWindowAccuracy(t *testing.T) {
	_, log := testLog(t, 9, 3*time.Second)
	m, err := Train(log, quickCfg(9))
	if err != nil {
		t.Fatal(err)
	}
	reads := iolog.Reads(log)
	gt := iolog.GroundTruth(reads)
	acc := m.WindowAccuracy(reads, gt)
	if acc < 0.5 || acc > 1 {
		t.Fatalf("window accuracy %v", acc)
	}
	if got := m.WindowAccuracy(nil, nil); got != 1 {
		t.Fatalf("empty window accuracy %v", got)
	}
}
