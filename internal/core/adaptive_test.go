package core

import "testing"

func testController() *JointController {
	// Costs grow mildly with joint size (wider input layer).
	return NewJointController(map[int]float64{
		1: 1000, 3: 1100, 5: 1200, 9: 1400,
	}, 0.5)
}

func TestJointControllerPicksSmallest(t *testing.T) {
	c := testController()
	// Capacity at size 1 with util 0.5: 0.5/1000ns = 500k IOPS.
	if got := c.Pick(100_000); got != 1 {
		t.Fatalf("low load picked joint=%d, want 1 (accuracy first)", got)
	}
	// 1M IOPS needs size >= 3 (capacity3 = 0.5*3/1100ns = 1.36M).
	if got := c.Pick(1_000_000); got != 3 {
		t.Fatalf("1M IOPS picked joint=%d, want 3", got)
	}
	// Far beyond every capacity: the largest size is the best available.
	if got := c.Pick(100_000_000); got != 9 {
		t.Fatalf("overload picked joint=%d, want 9", got)
	}
}

func TestJointControllerMonotone(t *testing.T) {
	c := testController()
	prev := 0
	for iops := 50_000.0; iops < 5_000_000; iops *= 1.5 {
		p := c.Pick(iops)
		if p < prev {
			t.Fatalf("joint size decreased (%d -> %d) as load grew", prev, p)
		}
		prev = p
	}
}

func TestJointControllerCapacity(t *testing.T) {
	c := testController()
	cap1 := c.Capacity(1)
	if cap1 != 500_000 {
		t.Fatalf("capacity(1) = %v, want 500k", cap1)
	}
	if c.Capacity(9) <= cap1 {
		t.Fatal("larger joint size must raise capacity")
	}
	if c.Capacity(42) != 0 {
		t.Fatal("unknown size capacity should be 0")
	}
}

func TestJointControllerDefaults(t *testing.T) {
	c := NewJointController(map[int]float64{1: 1000}, 2.0) // invalid target
	if c.TargetUtil != 0.5 {
		t.Fatalf("target util %v", c.TargetUtil)
	}
	empty := NewJointController(nil, 0.5)
	if empty.Pick(1e6) != 1 {
		t.Fatal("empty controller should fall back to 1")
	}
}
