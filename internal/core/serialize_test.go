package core

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"time"

	"repro/internal/feature"
	"repro/internal/iolog"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	_, log := testLog(t, 21, 3*time.Second)
	m, err := Train(log, quickCfg(21))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	m2, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if m2.Threshold() != m.Threshold() {
		t.Fatalf("threshold %v vs %v", m2.Threshold(), m.Threshold())
	}
	if m2.Spec() != m.Spec() {
		t.Fatal("feature spec changed")
	}
	if m2.Quantized() == nil {
		t.Fatal("quantized path not rebuilt")
	}
	// Every decision and score must survive the round trip exactly.
	reads := iolog.Reads(log)
	rows := feature.Extract(reads[:300], m.Spec())
	for i, raw := range rows {
		if m.Score(raw) != m2.Score(raw) {
			t.Fatalf("score diverged at row %d", i)
		}
		if m.Admit(raw) != m2.Admit(raw) {
			t.Fatalf("decision diverged at row %d", i)
		}
	}
	// Loaded models must be retrainable.
	if _, err := m2.Retrain(log); err != nil {
		t.Fatalf("retrain after load: %v", err)
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(strings.NewReader("not a model")); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := Load(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty input accepted")
	}
}

func TestExportC(t *testing.T) {
	_, log := testLog(t, 22, 3*time.Second)
	m, err := Train(log, quickCfg(22))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.ExportC(&buf, "hd"); err != nil {
		t.Fatal(err)
	}
	src := buf.String()
	for _, want := range []string{
		"float hd_score(const float raw[11])",
		"int hd_admit(const float raw[11])",
		"static const int32_t hd_w0[1408]", // 11 x 128
		"static const int32_t hd_w1[2048]", // 128 x 16
		"static const int32_t hd_w2[16]",   // 16 x 1
		"static const float hd_min[11]",
		"#include <stdint.h>",
		"acc >> 10",
		"expf(-z)",
	} {
		if !strings.Contains(src, want) {
			t.Errorf("generated C missing %q", want)
		}
	}
	// Balanced braces — a cheap well-formedness check.
	if strings.Count(src, "{") != strings.Count(src, "}") {
		t.Error("unbalanced braces in generated C")
	}
	// Threshold constant must appear in the admit function.
	if !strings.Contains(src, "hd_score(raw) <") {
		t.Error("admit() does not compare against the threshold")
	}
}

func TestExportCRejectsUnsupported(t *testing.T) {
	_, log := testLog(t, 23, 3*time.Second)
	cfg := quickCfg(23)
	cfg.Scaler = feature.ScaleStandard
	cfg.Quantize = false
	m, err := Train(log, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.ExportC(&bytes.Buffer{}, ""); err == nil {
		t.Fatal("standard scaler accepted by C export")
	}
}

// TestCGenMatchesGo interprets the generated C semantics in Go (same
// operations) and checks it reproduces the quantized scores. This guards
// the generator's arithmetic without needing a C compiler.
func TestCGenMatchesGo(t *testing.T) {
	_, log := testLog(t, 24, 3*time.Second)
	m, err := Train(log, quickCfg(24))
	if err != nil {
		t.Fatal(err)
	}
	st := m.scaler.State()
	snap := m.net.Snapshot()

	cScore := func(raw []float64) float64 {
		maxw := snap.Inputs
		for _, l := range snap.Layers {
			if l.Units > maxw {
				maxw = l.Units
			}
		}
		cur := make([]int64, maxw)
		next := make([]int64, maxw)
		for i := 0; i < snap.Inputs; i++ {
			span := st.B[i] - st.A[i]
			v := 0.0
			if span > 0 {
				v = (raw[i] - st.A[i]) / span
			}
			if v < 0 {
				v = 0
			} else if v > 1 {
				v = 1
			}
			cur[i] = int64(v*1024 + 0.5)
		}
		in := snap.Inputs
		for li, spec := range snap.Layers {
			last := li == len(snap.Layers)-1
			for o := 0; o < spec.Units; o++ {
				acc := int64(math.Round(snap.Biases[li][o] * 1024 * 1024))
				for i := 0; i < in; i++ {
					w := int64(math.Round(snap.Weights[li][o*in+i] * 1024))
					acc += w * cur[i]
				}
				if !last {
					if acc < 0 {
						acc = 0
					}
					acc >>= 10
				}
				next[o] = acc
			}
			cur, next = next, cur
			in = spec.Units
		}
		z := float64(cur[0]) / (1024 * 1024)
		return 1 / (1 + math.Exp(-z))
	}

	reads := iolog.Reads(log)
	rows := feature.Extract(reads[:200], m.Spec())
	for i, raw := range rows {
		want := m.Score(append([]float64(nil), raw...))
		// m.Score uses the float net; compare against the quantized path,
		// which is what the C code reproduces.
		row := append([]float64(nil), raw...)
		m.scale(row)
		got := m.qnet.Predict(row)
		emu := cScore(raw)
		if math.Abs(got-emu) > 1e-6 {
			t.Fatalf("row %d: C emulation %v vs quantized %v", i, emu, got)
		}
		if math.Abs(want-emu) > 0.05 {
			t.Fatalf("row %d: C emulation %v far from float %v", i, emu, want)
		}
	}
}
