package lifecycle

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
)

// fakeTarget records promotions like serve.Server.Swap does.
type fakeTarget struct {
	models   []*core.Model
	versions uint32
}

func (f *fakeTarget) Swap(m *core.Model) uint32 {
	f.models = append(f.models, m)
	f.versions++
	return f.versions
}

func trainCfg(seed int64) core.Config {
	cfg := core.DefaultConfig(seed)
	cfg.Labeling = core.LabelCutoff
	cfg.SearchThresholds = false
	cfg.Epochs = 6
	cfg.MaxTrainSamples = 4000
	cfg.Quantize = false
	return cfg
}

// worldSamples generates live traffic where slowness correlates with deep
// queues and big requests; inverted flips the correlation, producing a
// world where a model trained on the straight world ranks backwards.
func worldSamples(seed int64, n int, devices uint32, inverted bool) []core.LiveSample {
	rng := rand.New(rand.NewSource(seed))
	out := make([]core.LiveSample, 0, n)
	seqs := make([]uint64, devices)
	for i := 0; i < n; i++ {
		dev := uint32(i) % devices
		busy := (i/150)%2 == 1
		var s core.LiveSample
		s.Device = dev
		s.Seq = seqs[dev]
		seqs[dev]++
		slowFeatures := busy != inverted // inverted world: calm features, slow latency
		if slowFeatures {
			s.QueueLen = uint32(10 + rng.Intn(20))
			s.Size = 64 << 10
		} else {
			s.QueueLen = uint32(rng.Intn(3))
			s.Size = 4 << 10
		}
		if busy {
			s.LatencyNs = uint64(1_500_000 + rng.Intn(2_000_000))
		} else {
			s.LatencyNs = uint64(60_000 + rng.Intn(60_000))
		}
		out = append(out, s)
	}
	return out
}

func feed(h *Harvester, samples []core.LiveSample) {
	for _, s := range samples {
		h.OnCompletion(s.Device, s.LatencyNs, s.QueueLen, s.Size)
	}
}

func managerCfg(seed int64, workers int) Config {
	return Config{
		Seed:               seed,
		Train:              trainCfg(seed),
		ReservoirPerDevice: 512,
		HoldoutEvery:       4,
		HoldoutPerDevice:   128,
		EvalEvery:          1000,
		MinTrain:           400,
		MinHoldout:         48,
		Candidates:         2,
		WarmEpochs:         2,
		Workers:            workers,
	}
}

// champChal trains a deliberately backwards champion (inverted world) and
// a manager harvesting the straight world — the setup where a challenger
// must win decisively.
func runManagedFlow(t *testing.T, workers int) (*fakeTarget, *Manager, []TickReport) {
	t.Helper()
	champion, err := core.TrainLive(worldSamples(5, 2400, 2, true), trainCfg(5))
	if err != nil {
		t.Fatal(err)
	}
	tgt := &fakeTarget{}
	mgr, err := New(managerCfg(9, workers), champion, tgt)
	if err != nil {
		t.Fatal(err)
	}
	feed(mgr.Harvester(), worldSamples(6, 2400, 2, false))
	var reps []TickReport
	reps = append(reps, mgr.Tick()) // trains the candidate panel
	reps = append(reps, mgr.Tick()) // judges the challenger
	return tgt, mgr, reps
}

func TestManagerPromotesUnderShift(t *testing.T) {
	tgt, mgr, reps := runManagedFlow(t, 2)
	if !reps[0].Trained || reps[0].Candidates != 3 {
		t.Fatalf("first tick did not train a 3-candidate panel: %+v", reps[0])
	}
	if !reps[1].Judged || !reps[1].Promoted {
		t.Fatalf("second tick did not promote: %+v", reps[1])
	}
	if reps[1].ChallengerAUC <= reps[1].ChampionAUC {
		t.Fatalf("challenger AUC %v not above backwards champion %v",
			reps[1].ChallengerAUC, reps[1].ChampionAUC)
	}
	if len(tgt.models) != 1 || tgt.versions != 1 {
		t.Fatalf("target saw %d swaps", len(tgt.models))
	}
	if mgr.Champion() != tgt.models[0] {
		t.Fatal("manager champion is not the promoted model")
	}
	st := mgr.Stats()
	if st.Promotions != 1 || st.Rounds != 1 || st.ShadowOpen {
		t.Fatalf("stats after promotion: %+v", st)
	}
}

// TestManagerDeterministicAcrossWorkers: the whole train/judge flow at 1
// and 8 workers must agree bit-for-bit on what was trained and promoted.
func TestManagerDeterministicAcrossWorkers(t *testing.T) {
	_, mgr1, reps1 := runManagedFlow(t, 1)
	_, mgr8, reps8 := runManagedFlow(t, 8)
	for i := range reps1 {
		a, b := reps1[i], reps8[i]
		if a != b {
			t.Fatalf("tick %d diverges across worker counts:\n  w1: %+v\n  w8: %+v", i, a, b)
		}
	}
	if th1, th8 := mgr1.Champion().Threshold(), mgr8.Champion().Threshold(); math.Float64bits(th1) != math.Float64bits(th8) {
		t.Fatalf("promoted thresholds diverge: %v vs %v", th1, th8)
	}
}

// cloneWithThreshold snapshots a model and pins its threshold — the cheap
// way to make admit-all / decline-all variants of one network.
func cloneWithThreshold(t *testing.T, m *core.Model, th float64) *core.Model {
	t.Helper()
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	c, err := core.Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	c.SetThreshold(th)
	return c
}

func TestJudgeGates(t *testing.T) {
	champion, err := core.TrainLive(worldSamples(15, 2400, 2, false), trainCfg(15))
	if err != nil {
		t.Fatal(err)
	}

	setup := func(cfg Config) (*fakeTarget, *Manager) {
		t.Helper()
		tgt := &fakeTarget{}
		mgr, err := New(cfg, champion, tgt)
		if err != nil {
			t.Fatal(err)
		}
		feed(mgr.Harvester(), worldSamples(16, 1500, 2, false))
		return tgt, mgr
	}

	t.Run("accuracy", func(t *testing.T) {
		// Challenger == champion: identical AUC cannot clear the margin.
		tgt, mgr := setup(managerCfg(17, 2))
		mgr.challenger = cloneWithThreshold(t, champion, champion.Threshold())
		rep := mgr.Tick()
		if !rep.Judged || !rep.Rejected || rep.Promoted {
			t.Fatalf("want accuracy rejection, got %+v", rep)
		}
		if len(tgt.models) != 0 {
			t.Fatal("rejected challenger reached the target")
		}
		if st := mgr.Stats(); st.Rejections != 1 || st.ShadowOpen {
			t.Fatalf("stats after rejection: %+v", st)
		}
	})

	t.Run("fnr", func(t *testing.T) {
		cfg := managerCfg(18, 2)
		cfg.AUCMargin = -1 // let the AUC gate pass; FNR must still hold
		_, mgr := setup(cfg)
		mgr.challenger = cloneWithThreshold(t, champion, 2) // admits everything
		rep := mgr.Tick()
		if !rep.Rejected || rep.ChallengerFNR != 1 {
			t.Fatalf("admit-all challenger not FNR-rejected: %+v", rep)
		}
	})

	t.Run("shadow-decline", func(t *testing.T) {
		cfg := managerCfg(19, 2)
		cfg.AUCMargin = -1
		cfg.FNRSlack = 1
		_, mgr := setup(cfg)
		// Tap some live rows so the decline-rate guard has evidence.
		row := make([]float64, champion.Spec().Width())
		for i := 0; i < 64; i++ {
			row[0] = float64(i)
			mgr.Harvester().OnDecision(1, row, true)
		}
		mgr.challenger = cloneWithThreshold(t, champion, -1) // declines everything
		rep := mgr.Tick()
		if !rep.Rejected || rep.DeclineRate != 1 {
			t.Fatalf("decline-all challenger not shadow-rejected: %+v", rep)
		}
	})
}

func TestUrgencyLadder(t *testing.T) {
	champion, err := core.TrainLive(worldSamples(25, 2400, 2, false), trainCfg(25))
	if err != nil {
		t.Fatal(err)
	}
	cfg := managerCfg(26, 2)
	cfg.EvalEvery = 4096
	cfg.MinTrain = 100
	cfg.MinHoldout = 32
	tgt := &fakeTarget{}
	mgr, err := New(cfg, champion, tgt)
	if err != nil {
		t.Fatal(err)
	}
	feed(mgr.Harvester(), worldSamples(27, 1200, 2, false))

	if rep := mgr.Tick(); rep.Trained || rep.Judged {
		t.Fatalf("tick before the window filled did something: %+v", rep)
	}
	mgr.DriftAlert(0.05) // below moderate: no urgency
	if mgr.Urgency() != 0 {
		t.Fatal("sub-threshold PSI raised urgency")
	}
	mgr.DriftAlert(0.15) // moderate: halve the window (2048) — still unfilled
	if mgr.Urgency() != 1 {
		t.Fatalf("urgency %d after moderate PSI", mgr.Urgency())
	}
	if rep := mgr.Tick(); rep.Trained {
		t.Fatalf("moderate urgency filled a 2048 window with 1200 samples: %+v", rep)
	}
	mgr.DriftAlert(0.3) // major: quarter the window (1024) — now due
	if mgr.Urgency() != 2 {
		t.Fatalf("urgency %d after major PSI", mgr.Urgency())
	}
	mgr.DriftAlert(0.15) // urgency never steps down on a weaker alert
	if mgr.Urgency() != 2 {
		t.Fatal("weaker alert lowered urgency")
	}
	if rep := mgr.Tick(); !rep.Trained {
		t.Fatalf("major urgency did not trigger the round: %+v", rep)
	}
	// A promotion (manual or auto) resets the ladder.
	mgr.Promote(champion)
	if mgr.Urgency() != 0 {
		t.Fatal("promotion did not reset urgency")
	}
	if tgt.versions != 1 {
		t.Fatalf("manual promote did not reach the target: %d", tgt.versions)
	}
}

func TestRejectionRecalibratesChampion(t *testing.T) {
	champion, err := core.TrainLive(worldSamples(35, 2400, 2, false), trainCfg(35))
	if err != nil {
		t.Fatal(err)
	}
	cfg := managerCfg(36, 2)
	cfg.OnlineRecalibration = true
	cfg.TapEvery = 1
	cfg.TapPerDevice = 128
	tgt := &fakeTarget{}
	// Deploy a champion whose operating point has rotted: a threshold far
	// above any score it can produce, so it admits everything.
	rotted := cloneWithThreshold(t, champion, 999)
	mgr, err := New(cfg, rotted, tgt)
	if err != nil {
		t.Fatal(err)
	}
	feed(mgr.Harvester(), worldSamples(37, 1500, 2, false))
	// Tap live decide-time rows — the evidence recalibration uses.
	for _, s := range mgr.Harvester().SnapshotReservoir()[:64] {
		mgr.Harvester().OnDecision(s.Device, s.Row, true)
	}
	// Identical network: the accuracy gate must reject it, and the
	// rejection round must re-pin the surviving champion's threshold.
	mgr.challenger = cloneWithThreshold(t, rotted, rotted.Threshold())
	rep := mgr.Tick()
	if !rep.Rejected {
		t.Fatalf("want rejection, got %+v", rep)
	}
	if !rep.Recalibrated {
		t.Fatalf("rejection left the rotted champion unrecalibrated: %+v", rep)
	}
	if th := mgr.Champion().Threshold(); th == 999 {
		t.Fatal("champion threshold unchanged after recalibration")
	}
	if rotted.Threshold() != 999 {
		t.Fatal("recalibration mutated the serving model in place instead of republishing a copy")
	}
	if len(tgt.models) != 1 || tgt.models[0].Threshold() == 999 {
		t.Fatalf("recalibrated champion not republished to the target")
	}
	if st := mgr.Stats(); st.Recalibrations != 1 || st.Promotions != 0 {
		t.Fatalf("stats after maintenance: %+v", st)
	}
}
