// Package lifecycle closes the learning loop around the serving layer: an
// always-on champion/challenger retraining service in the KML
// continuous-learning shape (PAPERS.md) the paper's §7 monitoring policy
// points at.
//
// The loop has four stages:
//
//  1. Harvest — live completions flow from the serve shards' CompletionSink
//     into a bounded per-device uniform reservoir (Algorithm R) plus a
//     disjoint held-out ring. The harvester mirrors each device's history
//     tracker over the full completion stream, so every stored sample is a
//     (feature-row, latency) pair in the serving feature distribution; a
//     DecisionTap additionally keeps a small sample of (raw feature row,
//     served verdict) pairs for shadow scoring.
//  2. Train — when enough new completions have accumulated, Tick trains a
//     panel of challenger candidates directly on the reservoir's rows
//     (core.TrainLiveRows / FinetuneLiveRows, labels from the
//     size-normalized latency cutoff) with internal/parallel: pre-drawn
//     seeds, one warm-start fine-tune of the champion plus cold retrains,
//     byte-identical at any worker count.
//  3. Shadow — the best candidate becomes the challenger and waits one
//     evaluation window; the next Tick judges champion and challenger on
//     the held-out live rows collected meanwhile, plus a sanity check of
//     the challenger's decline rate on the tapped rows. Served verdicts
//     are never affected.
//  4. Promote — a challenger that clears the accuracy gate (holdout
//     ROC-AUC at least the champion's plus a margin) and the FNR gate
//     (no worse than the champion's plus a slack) is published through the
//     server's atomic hot-swap; in-flight batches finish on the model they
//     loaded, so no request ever sees a half-promoted challenger.
//
// Drift-triggered urgency: wire Manager.DriftAlert as serve.Config.OnDrift
// and a published PSI at or above the moderate/major thresholds halves or
// quarters the evaluation window until the next completed round.
//
// The manager itself never reads a clock and draws no global randomness —
// Tick is driven by harvest counts, so identical completion streams and
// Tick points reproduce identical promotions at any worker count.
package lifecycle

import (
	"errors"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/parallel"
)

// Config tunes the retraining service. The zero value of every field gets
// a usable default; Train (the pipeline configuration for challengers,
// usually the champion's own) and Seed should be set deliberately.
type Config struct {
	// Seed drives per-device reservoir eviction and candidate seeds.
	Seed int64
	// Train is the core pipeline configuration challengers train under.
	Train core.Config

	// ReservoirPerDevice bounds each device's training reservoir
	// (default 512 samples).
	ReservoirPerDevice int
	// HoldoutEvery routes every e-th completion per device to the held-out
	// ring instead of the reservoir (default 4; ≤0 disables holdout).
	HoldoutEvery int
	// HoldoutPerDevice bounds the held-out ring (default 128).
	HoldoutPerDevice int
	// TapEvery samples every e-th inferred verdict per device into the
	// shadow tap (default 4; 1 taps everything).
	TapEvery int
	// TapPerDevice bounds the tap ring (default 64).
	TapPerDevice int

	// EvalEvery is how many harvested completions must accumulate between
	// retrain rounds at urgency 0 (default 4096). Urgency shifts it right:
	// moderate drift halves it, major drift quarters it.
	EvalEvery int
	// MinTrain is the smallest reservoir that may train (default 1024).
	MinTrain int
	// MinHoldout is the smallest held-out set that may judge (default 96).
	MinHoldout int

	// Candidates is the number of cold full-pipeline retrains per round
	// (default 2). Each draws its own deterministic seed.
	Candidates int
	// WarmEpochs adds a warm-start candidate: the champion cloned and
	// fine-tuned for this many epochs (default 4; negative disables).
	WarmEpochs int
	// Workers bounds the candidate-training pool (default GOMAXPROCS).
	Workers int

	// AUCMargin is how much the challenger's holdout ROC-AUC must exceed
	// the champion's to promote (default 0.005).
	AUCMargin float64
	// FNRSlack is how much worse the challenger's holdout FNR may be and
	// still promote (default 0.02) — admitting slow I/Os is the expensive
	// mistake, so it is gated separately from AUC.
	FNRSlack float64
	// MaxDeclineRate rejects challengers that would decline more than this
	// fraction of the tapped live rows (default 0.9) — a cheap guard
	// against a degenerate decline-everything challenger that can look
	// fine on a skewed holdout.
	MaxDeclineRate float64
	// MaxShadowRounds discards a challenger still unjudgeable (holdout too
	// small or single-class) after this many attempts (default 4).
	MaxShadowRounds int

	// OnlineRecalibration, when set, re-pins a passing challenger's
	// decision threshold on the shadow-tapped serving rows before
	// promotion: the threshold moves to the (1 - slow-fraction) quantile
	// of the challenger's scores on live rows, where the slow fraction is
	// measured on the held-out completions. Training-time calibration sees
	// offline-extracted feature rows, whose distribution can sit far from
	// what the serving trackers produce for the same traffic — without
	// this, a well-ranked challenger can deploy at an operating point that
	// declines (nearly) nothing. Needs at least 32 tapped rows; promotion
	// proceeds uncalibrated below that.
	OnlineRecalibration bool

	// PSIModerate and PSIMajor are the urgency ladder's PSI steps
	// (defaults 0.1 and 0.25, the conventional moderate/major readings).
	PSIModerate float64
	PSIMajor    float64
}

func (c Config) withDefaults() Config {
	if c.ReservoirPerDevice <= 0 {
		c.ReservoirPerDevice = 512
	}
	if c.HoldoutEvery == 0 {
		c.HoldoutEvery = 4
	}
	if c.HoldoutPerDevice <= 0 {
		c.HoldoutPerDevice = 128
	}
	if c.TapEvery <= 0 {
		c.TapEvery = 4
	}
	if c.TapPerDevice <= 0 {
		c.TapPerDevice = 64
	}
	if c.EvalEvery <= 0 {
		c.EvalEvery = 4096
	}
	if c.MinTrain <= 0 {
		c.MinTrain = 1024
	}
	if c.MinHoldout <= 0 {
		c.MinHoldout = 96
	}
	if c.Candidates <= 0 {
		c.Candidates = 2
	}
	if c.WarmEpochs == 0 {
		c.WarmEpochs = 4
	}
	if c.AUCMargin == 0 {
		c.AUCMargin = 0.005
	}
	if c.FNRSlack == 0 {
		c.FNRSlack = 0.02
	}
	if c.MaxDeclineRate == 0 {
		c.MaxDeclineRate = 0.9
	}
	if c.MaxShadowRounds <= 0 {
		c.MaxShadowRounds = 4
	}
	if c.PSIModerate == 0 {
		c.PSIModerate = 0.1
	}
	if c.PSIMajor == 0 {
		c.PSIMajor = 0.25
	}
	return c
}

// Target is where promotions land — satisfied by *serve.Server (its atomic
// hot-swap). Kept as a local interface so lifecycle stays below serve in
// the package graph and tests can interpose.
type Target interface {
	Swap(m *core.Model) uint32
}

// ErrNoChampion is returned by New when no initial champion is supplied.
var ErrNoChampion = errors.New("lifecycle: initial champion model required")

// Manager runs the champion/challenger state machine. Tick (and Promote,
// when driven manually) are meant to be called from one goroutine — the
// manager loop; Harvester methods and DriftAlert are concurrency-safe and
// called from shard workers.
type Manager struct {
	cfg Config
	h   *Harvester
	t   Target

	// urgency is the drift ladder level (0 none, 1 moderate, 2 major),
	// written by DriftAlert from shard goroutines.
	urgency atomic.Int32

	mu             sync.Mutex
	champion       *core.Model
	challenger     *core.Model
	chalAUC        float64 // challenger's training-time holdout AUC
	shadowWait     int     // judge attempts for the current challenger
	round          uint64  // training rounds started
	lastRoundAt    uint64  // Harvested() when the last round started/settled
	version        uint32  // last version returned by the target's Swap
	promotions     uint64
	rejections     uint64
	discards       uint64
	recalibrations uint64
}

// New builds a manager around an initial champion and a promotion target.
// Wire Harvester() into serve.Config.Completions/Decisions and DriftAlert
// into serve.Config.OnDrift, then call Tick on whatever cadence suits the
// deployment (cmd/heimdall-serve uses a wall-clock ticker; benches call it
// at deterministic workload points).
func New(cfg Config, champion *core.Model, target Target) (*Manager, error) {
	if champion == nil {
		return nil, ErrNoChampion
	}
	cfg = cfg.withDefaults()
	// Challengers must live in the serving feature space: harvested rows
	// are reconstructed under the champion's spec, so the training config
	// is pinned to it regardless of what the caller set.
	cfg.Train.Feature = champion.Spec()
	return &Manager{cfg: cfg, h: NewHarvester(cfg, champion.Spec()), t: target, champion: champion}, nil
}

// Harvester returns the completion sink / decision tap to wire into the
// serving layer.
func (m *Manager) Harvester() *Harvester { return m.h }

// Retarget points promotions at a (new) target. The usual wiring order is
// New(cfg, champion, nil) → serve.NewServer(champion, {Completions: ...})
// → Retarget(srv), because the server wants the manager's hooks at
// construction and the manager wants the server as its target.
func (m *Manager) Retarget(t Target) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.t = t
}

// DriftAlert is the drift.InputDetector callback: raise the urgency ladder
// according to the published PSI. Safe from any goroutine; never lowers
// urgency (rounds reset it on completion).
func (m *Manager) DriftAlert(maxPSI float64) {
	level := int32(0)
	if maxPSI >= m.cfg.PSIMajor {
		level = 2
	} else if maxPSI >= m.cfg.PSIModerate {
		level = 1
	}
	for {
		cur := m.urgency.Load()
		if level <= cur || m.urgency.CompareAndSwap(cur, level) {
			return
		}
	}
}

// Urgency returns the current drift ladder level (0, 1, or 2).
func (m *Manager) Urgency() int { return int(m.urgency.Load()) }

// effInterval is the evaluation window after urgency shortening.
func (m *Manager) effInterval() uint64 {
	return uint64(m.cfg.EvalEvery) >> uint(m.urgency.Load())
}

// TickReport describes what one Tick did.
type TickReport struct {
	// Trained is true when a candidate panel was trained this Tick; the
	// winner (if any candidate succeeded) is now the shadow challenger.
	Trained    bool
	Candidates int     // candidates attempted
	BestAUC    float64 // winner's training-time holdout AUC

	// Judged is true when a pending challenger was gated this Tick.
	Judged        bool
	Promoted      bool
	Rejected      bool
	ChampionAUC   float64
	ChallengerAUC float64
	ChampionFNR   float64
	ChallengerFNR float64
	DeclineRate   float64 // challenger's decline rate on tapped rows
	HoldoutSlow   float64 // labeled slow fraction of the judged holdout
	// Recalibrated is true when a rejection kept the champion but re-pinned
	// its decision threshold on fresh tapped rows and republished it —
	// threshold maintenance between promotions (OnlineRecalibration only).
	Recalibrated bool
	Version      uint32 // new model version when Promoted or Recalibrated
	// Reason says why nothing happened or why a judge failed — for logs.
	Reason string
}

// Tick advances the state machine one step: judge a pending challenger
// against freshly held-out traffic, or start a training round when the
// evaluation window has filled. Deterministic in the harvest state at the
// call point.
func (m *Manager) Tick() TickReport {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.challenger != nil {
		return m.judgeLocked()
	}
	harvested := m.h.Harvested()
	if harvested-m.lastRoundAt < m.effInterval() {
		return TickReport{Reason: "window not filled"}
	}
	return m.trainLocked()
}

// candResult is one candidate's training outcome.
type candResult struct {
	model *core.Model
	auc   float64
	fnr   float64
	err   error
}

// holdoutEval labels a held-out sample set from its (size, latency) pairs
// and returns the live feature rows to judge models on. Returns ok=false
// when the holdout cannot support a comparison (too small, or labeling
// collapses to one class).
func (m *Manager) holdoutEval(samples []core.LiveSample) (rows [][]float64, labels []int, ok bool) {
	kept := make([]core.LiveSample, 0, len(samples))
	rows = make([][]float64, 0, len(samples))
	for _, s := range samples {
		if s.Row == nil {
			continue
		}
		kept = append(kept, s)
		rows = append(rows, s.Row)
	}
	if len(rows) < m.cfg.MinHoldout {
		return nil, nil, false
	}
	labels = core.LiveLabels(kept, m.cfg.Train)
	pos := 0
	for _, l := range labels {
		pos += l
	}
	if pos == 0 || pos == len(labels) {
		return nil, nil, false
	}
	return rows, labels, true
}

// evalRows scores a model on raw serving rows at its deployed threshold —
// the row-space counterpart of Model.Evaluate, so champion and challenger
// are judged on exactly the feature distribution they serve.
func evalRows(mod *core.Model, rows [][]float64, labels []int) metrics.Report {
	scores := make([]float64, len(rows))
	for i, r := range rows {
		scores[i] = mod.Score(r)
	}
	return metrics.EvaluateAt(scores, labels, mod.Threshold())
}

// trainLocked runs one candidate panel on the reservoir snapshot. The
// fan-out is a determinism sink: inputs (snapshot, seeds) are fixed before
// the parallel region and collection is index-ordered, so the winner is
// the same at any worker count.
//
//heimdall:nountaint
func (m *Manager) trainLocked() TickReport {
	snap := m.h.SnapshotReservoir()
	if len(snap) < m.cfg.MinTrain {
		return TickReport{Reason: "reservoir below MinTrain"}
	}
	holdRows, holdLabels, ok := m.holdoutEval(m.h.SnapshotHoldout())
	if !ok {
		return TickReport{Reason: "holdout not judgeable"}
	}
	m.round++
	m.lastRoundAt = m.h.Harvested()

	warm := 0
	if m.cfg.WarmEpochs > 0 {
		warm = 1
	}
	n := warm + m.cfg.Candidates
	champ := m.champion
	cfgs := make([]core.Config, n)
	for i := warm; i < n; i++ {
		cfgs[i] = m.cfg.Train
		// Pre-drawn per-candidate seed: mixed from (service seed, round,
		// slot) so rounds and slots never share an RNG stream.
		cfgs[i].Seed = int64(splitmix64(uint64(m.cfg.Seed)*0x9e37 + m.round*64 + uint64(i)))
	}
	results := parallel.Map(m.cfg.Workers, n, func(i int) candResult {
		var mod *core.Model
		var err error
		if i < warm {
			mod, err = champ.FinetuneLiveRows(snap, m.cfg.WarmEpochs)
		} else {
			mod, err = core.TrainLiveRows(snap, cfgs[i])
		}
		if err != nil {
			return candResult{err: err}
		}
		ev := evalRows(mod, holdRows, holdLabels)
		return candResult{model: mod, auc: ev.ROCAUC, fnr: ev.FNR}
	})

	rep := TickReport{Trained: true, Candidates: n}
	best := -1
	for i, r := range results {
		if r.err != nil || r.model == nil {
			continue
		}
		if best < 0 || r.auc > results[best].auc {
			best = i
		}
	}
	if best < 0 {
		rep.Reason = "every candidate failed to train"
		return rep
	}
	m.challenger = results[best].model
	m.chalAUC = results[best].auc
	m.shadowWait = 0
	rep.BestAUC = results[best].auc
	return rep
}

// judgeLocked gates the pending challenger on the current holdout and tap.
func (m *Manager) judgeLocked() TickReport {
	rep := TickReport{Judged: true}
	holdRows, holdLabels, ok := m.holdoutEval(m.h.SnapshotHoldout())
	if !ok {
		m.shadowWait++
		if m.shadowWait >= m.cfg.MaxShadowRounds {
			m.challenger = nil
			m.discards++
			rep.Rejected = true
			rep.Reason = "challenger discarded: holdout never judgeable"
			return rep
		}
		rep.Judged = false
		rep.Reason = "holdout not judgeable yet"
		return rep
	}

	// Recalibrate before the gates so the FNR and decline-rate gates judge
	// the model that would actually be deployed: the challenger's
	// training-time threshold was pinned on offline-extracted rows, which
	// sit on a different feature distribution than the serving trackers
	// produce. (The AUC gate is threshold-independent, so the order only
	// matters for the calibrated gates.)
	rep.HoldoutSlow = slowFraction(holdLabels)
	rows, _ := m.h.SnapshotTap()
	if m.cfg.OnlineRecalibration && len(rows) >= minTapRecal {
		recalibrateOnline(m.challenger, rows, rep.HoldoutSlow)
	}

	evC := evalRows(m.champion, holdRows, holdLabels)
	evX := evalRows(m.challenger, holdRows, holdLabels)
	rep.ChampionAUC, rep.ChampionFNR = evC.ROCAUC, evC.FNR
	rep.ChallengerAUC, rep.ChallengerFNR = evX.ROCAUC, evX.FNR

	declines := 0
	for _, r := range rows {
		if !m.challenger.Admit(r) {
			declines++
		}
	}
	if len(rows) > 0 {
		rep.DeclineRate = float64(declines) / float64(len(rows))
	}

	switch {
	case evX.ROCAUC < evC.ROCAUC+m.cfg.AUCMargin:
		rep.Rejected = true
		rep.Reason = "accuracy gate: challenger AUC below champion + margin"
	case evX.FNR > evC.FNR+m.cfg.FNRSlack:
		rep.Rejected = true
		rep.Reason = "FNR gate: challenger admits too many slow I/Os"
	case len(rows) > 0 && rep.DeclineRate > m.cfg.MaxDeclineRate:
		rep.Rejected = true
		rep.Reason = "shadow gate: degenerate decline rate on live rows"
	default:
		rep.Promoted = true
	}

	if rep.Rejected {
		m.challenger = nil
		m.rejections++
		m.lastRoundAt = m.h.Harvested() // full window before retrying
		// Threshold maintenance: the champion won the round, but under
		// drift its operating point rots even while its ranking holds —
		// the score distribution moves and a fixed threshold slides toward
		// admit-all or decline-all. Re-pin the surviving champion's
		// threshold on the freshest tapped rows and republish it through
		// the same atomic swap a promotion uses (SetThreshold on the
		// served model would race with inference).
		if m.cfg.OnlineRecalibration && len(rows) >= minTapRecal {
			if t := thresholdAt(m.champion, rows, rep.HoldoutSlow); t != m.champion.Threshold() {
				m.champion = m.champion.WithThreshold(t)
				if m.t != nil {
					m.version = m.t.Swap(m.champion)
				}
				m.recalibrations++
				rep.Recalibrated = true
				rep.Version = m.version
			}
		}
		return rep
	}
	rep.Version = m.promoteLocked(m.challenger)
	m.challenger = nil
	rep.Reason = "promoted"
	return rep
}

// minTapRecal is the smallest tapped-row sample online recalibration will
// re-pin a threshold on.
const minTapRecal = 32

// slowFraction is the share of positive labels.
func slowFraction(labels []int) float64 {
	if len(labels) == 0 {
		return 0
	}
	pos := 0
	for _, l := range labels {
		pos += l
	}
	return float64(pos) / float64(len(labels))
}

// thresholdAt returns the decision threshold that puts mod's decline rate
// on the given live serving rows at slowFrac — the (1 - slowFrac)
// quantile of its scores. The same policy as training-time calibration,
// but measured on the serving feature distribution instead of any
// reconstructed one. The decline count is clamped to [1, half the rows]:
// never admit-all, never a majority decliner.
func thresholdAt(mod *core.Model, rows [][]float64, slowFrac float64) float64 {
	scores := make([]float64, len(rows))
	for i, r := range rows {
		scores[i] = mod.Score(r)
	}
	sort.Float64s(scores)
	declines := int(slowFrac*float64(len(scores)) + 0.5)
	if declines < 1 {
		declines = 1
	}
	if max := len(scores) / 2; declines > max {
		declines = max
	}
	return scores[len(scores)-declines]
}

// recalibrateOnline re-pins mod's threshold to thresholdAt in place; only
// safe on a model not yet serving (the pending challenger).
func recalibrateOnline(mod *core.Model, rows [][]float64, slowFrac float64) {
	mod.SetThreshold(thresholdAt(mod, rows, slowFrac))
}

// promoteLocked publishes a new champion through the target's atomic swap
// and resets the urgency ladder. Callers hold m.mu.
func (m *Manager) promoteLocked(mod *core.Model) uint32 {
	if m.t != nil {
		m.version = m.t.Swap(mod)
	}
	m.champion = mod
	m.promotions++
	m.urgency.Store(0)
	m.lastRoundAt = m.h.Harvested()
	return m.version
}

// Promote force-publishes a model through the same path auto-promotion
// uses — the operator's manual rollout/rollback lever. Any pending
// challenger is discarded (the world just changed under it).
func (m *Manager) Promote(mod *core.Model) uint32 {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.challenger != nil {
		m.challenger = nil
		m.discards++
	}
	return m.promoteLocked(mod)
}

// Champion returns the current champion model.
func (m *Manager) Champion() *core.Model {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.champion
}

// Stats is a snapshot of the service's counters.
type Stats struct {
	Harvested uint64 `json:"harvested"`
	HeldOut   uint64 `json:"held_out"`
	Tapped    uint64 `json:"tapped"`
	Reservoir int    `json:"reservoir"`

	Rounds         uint64 `json:"rounds"`
	Promotions     uint64 `json:"promotions"`
	Rejections     uint64 `json:"rejections"`
	Discards       uint64 `json:"discards"`
	Recalibrations uint64 `json:"recalibrations"`
	Urgency        int    `json:"urgency"`
	ShadowOpen     bool   `json:"shadow_open"` // a challenger is pending
	Version        uint32 `json:"version"`     // last promoted version (0 = never)
}

// Stats snapshots the manager and harvester counters.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return Stats{
		Harvested:      m.h.harvested.Load(),
		HeldOut:        m.h.heldOut.Load(),
		Tapped:         m.h.tapped.Load(),
		Reservoir:      len(m.h.SnapshotReservoir()),
		Rounds:         m.round,
		Promotions:     m.promotions,
		Rejections:     m.rejections,
		Discards:       m.discards,
		Recalibrations: m.recalibrations,
		Urgency:        int(m.urgency.Load()),
		ShadowOpen:     m.challenger != nil,
		Version:        m.version,
	}
}
