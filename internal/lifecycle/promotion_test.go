package lifecycle

import (
	"fmt"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/serve"
)

// TestTornPromotion is the satellite proof that promotion is atomic from a
// request's point of view: while clients hammer decides (with harvesting
// and the shadow tap enabled), the manager promotes alternating admit-all
// (odd versions) and decline-all (even versions) champions through its
// real promotion path. Every verdict must be consistent with the version
// that answered it — an inconsistent pair means a batch observed a
// half-swapped challenger.
func TestTornPromotion(t *testing.T) {
	admitAll, err := core.TrainLive(worldSamples(23, 2400, 2, false), trainCfg(23))
	if err != nil {
		t.Fatal(err)
	}
	admitAll.SetThreshold(2)
	declineAll := cloneWithThreshold(t, admitAll, -1)

	tgt := &fakeTarget{}
	mgr, err := New(managerCfg(23, 2), admitAll, tgt)
	if err != nil {
		t.Fatal(err)
	}
	srv := serve.NewServer(admitAll, serve.Config{
		Shards:        4,
		QueueLen:      4096,
		BreakerWindow: -1,
		Completions:   mgr.Harvester(),
		Decisions:     mgr.Harvester(),
	})
	// Rewire the manager at the real server (fakeTarget only validated
	// counting; promotion must go through the server's atomic swap here).
	mgr.Retarget(srv)

	addr := "unix:" + filepath.Join(t.TempDir(), "lifecycle.sock")
	l, err := serve.Listen(addr)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(l) }()
	defer func() {
		if err := srv.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
		if err := <-done; err != nil {
			t.Errorf("serve: %v", err)
		}
	}()

	const clients, perClient = 4, 400
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for ci := 0; ci < clients; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			c, err := serve.Dial(addr)
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			for i := 0; i < perClient; i++ {
				if i%3 == 0 {
					if err := c.Complete(uint32(ci), 150_000, i%16, 8192); err != nil {
						errs <- err
						return
					}
				}
				v, err := c.Decide(uint32(ci), i%16, 4096)
				if err != nil {
					errs <- fmt.Errorf("client %d decide %d: %w", ci, i, err)
					return
				}
				if v.Flags != 0 {
					errs <- fmt.Errorf("client %d decide %d degraded (flags %#x)", ci, i, v.Flags)
					return
				}
				// Version 1 (initial) and every odd promotion are
				// admit-all; even versions decline everything. A mismatch
				// is a torn promotion.
				if want := v.ModelVersion%2 == 1; v.Admit != want {
					errs <- fmt.Errorf("client %d decide %d: version %d answered admit=%v",
						ci, i, v.ModelVersion, v.Admit)
					return
				}
			}
		}(ci)
	}

	// Promote continuously through the manager while the clients hammer.
	promoDone := make(chan struct{})
	go func() {
		defer close(promoDone)
		for i := 0; i < 60; i++ {
			if i%2 == 0 {
				mgr.Promote(declineAll)
			} else {
				mgr.Promote(admitAll)
			}
		}
	}()
	wg.Wait()
	<-promoDone
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	if st := mgr.Stats(); st.Promotions != 60 {
		t.Fatalf("manager recorded %d promotions, want 60", st.Promotions)
	}
	// Harvesting rode along: completions were sunk and decisions tapped
	// while promotions churned.
	if st := mgr.Stats(); st.Harvested == 0 || st.Tapped == 0 {
		t.Fatalf("harvest hooks silent under load: %+v", st)
	}
}
