package lifecycle

import (
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/feature"
)

// devStream scripts device dev's completion sequence deterministically.
func devStream(seed int64, dev uint32, n int) []core.LiveSample {
	rng := rand.New(rand.NewSource(seed + int64(dev)*7919))
	out := make([]core.LiveSample, n)
	for i := range out {
		busy := (i/100)%2 == 1
		s := &out[i]
		s.Device = dev
		s.Seq = uint64(i) // informational; the harvester assigns its own
		if busy {
			s.LatencyNs = uint64(1_000_000 + rng.Intn(2_500_000))
			s.QueueLen = uint32(8 + rng.Intn(24))
			s.Size = 64 << 10
		} else {
			s.LatencyNs = uint64(50_000 + rng.Intn(100_000))
			s.QueueLen = uint32(rng.Intn(4))
			s.Size = 4 << 10
		}
	}
	return out
}

func harvestCfg() Config {
	return Config{
		Seed:               42,
		ReservoirPerDevice: 64,
		HoldoutEvery:       4,
		HoldoutPerDevice:   16,
		TapEvery:           2,
		TapPerDevice:       8,
	}
}

// TestReservoirDeterminism is the satellite guarantee: the same seed and
// the same per-device completion streams produce byte-identical reservoir,
// holdout, and tap contents no matter how the devices' streams were
// interleaved or how many goroutines (shards) delivered them.
func TestReservoirDeterminism(t *testing.T) {
	const devices, perDev = 5, 1000
	streams := make([][]core.LiveSample, devices)
	for d := range streams {
		streams[d] = devStream(1, uint32(d), perDev)
	}

	feedSequential := func(h *Harvester) {
		for _, st := range streams {
			for _, s := range st {
				h.OnCompletion(s.Device, s.LatencyNs, s.QueueLen, s.Size)
			}
		}
	}
	feedRoundRobin := func(h *Harvester) {
		for i := 0; i < perDev; i++ {
			for d := devices - 1; d >= 0; d-- {
				s := streams[d][i]
				h.OnCompletion(s.Device, s.LatencyNs, s.QueueLen, s.Size)
			}
		}
	}
	feedConcurrent := func(h *Harvester) {
		var wg sync.WaitGroup
		for d := 0; d < devices; d++ {
			wg.Add(1)
			go func(st []core.LiveSample) {
				defer wg.Done()
				for _, s := range st {
					h.OnCompletion(s.Device, s.LatencyNs, s.QueueLen, s.Size)
				}
			}(streams[d])
		}
		wg.Wait()
	}

	var want, wantHold []core.LiveSample
	for i, feed := range []func(*Harvester){feedSequential, feedRoundRobin, feedConcurrent, feedConcurrent} {
		h := NewHarvester(harvestCfg(), feature.DefaultSpec())
		feed(h)
		res := h.SnapshotReservoir()
		hold := h.SnapshotHoldout()
		if i == 0 {
			want, wantHold = res, hold
			if len(want) != devices*64 {
				t.Fatalf("reservoir size %d, want %d", len(want), devices*64)
			}
			if len(wantHold) != devices*16 {
				t.Fatalf("holdout size %d, want %d", len(wantHold), devices*16)
			}
			continue
		}
		if !reflect.DeepEqual(res, want) {
			t.Fatalf("feed order %d changed reservoir contents", i)
		}
		if !reflect.DeepEqual(hold, wantHold) {
			t.Fatalf("feed order %d changed holdout contents", i)
		}
	}
}

// TestReservoirSeedMatters guards against an accidentally unseeded PRNG:
// a different service seed must pick a different uniform sample.
func TestReservoirSeedMatters(t *testing.T) {
	stream := devStream(3, 0, 1000)
	snap := func(seed int64) []core.LiveSample {
		cfg := harvestCfg()
		cfg.Seed = seed
		h := NewHarvester(cfg, feature.DefaultSpec())
		for _, s := range stream {
			h.OnCompletion(s.Device, s.LatencyNs, s.QueueLen, s.Size)
		}
		return h.SnapshotReservoir()
	}
	if reflect.DeepEqual(snap(1), snap(2)) {
		t.Fatal("different seeds picked identical reservoirs")
	}
	if !reflect.DeepEqual(snap(5), snap(5)) {
		t.Fatal("same seed diverged")
	}
}

// TestHoldoutDisjoint: the judge's data never appears in training data —
// holdout slots are exactly the every-HoldoutEvery-th per-device sequence
// numbers and the reservoir holds the rest.
func TestHoldoutDisjoint(t *testing.T) {
	h := NewHarvester(harvestCfg(), feature.DefaultSpec())
	for _, s := range devStream(7, 9, 600) {
		h.OnCompletion(s.Device, s.LatencyNs, s.QueueLen, s.Size)
	}
	for _, s := range h.SnapshotHoldout() {
		if s.Seq%4 != 3 {
			t.Fatalf("holdout contains non-holdout seq %d", s.Seq)
		}
	}
	for _, s := range h.SnapshotReservoir() {
		if s.Seq%4 == 3 {
			t.Fatalf("reservoir contains holdout seq %d", s.Seq)
		}
	}
}

// TestReservoirUniform sanity-checks Algorithm R: over a long stream the
// kept samples span the whole sequence range, not just a prefix or suffix.
func TestReservoirUniform(t *testing.T) {
	h := NewHarvester(harvestCfg(), feature.DefaultSpec())
	const n = 4000
	for _, s := range devStream(11, 2, n) {
		h.OnCompletion(s.Device, s.LatencyNs, s.QueueLen, s.Size)
	}
	snap := h.SnapshotReservoir()
	if len(snap) != 64 {
		t.Fatalf("reservoir size %d", len(snap))
	}
	early, late := 0, 0
	for _, s := range snap {
		if s.Seq < n/4 {
			early++
		}
		if s.Seq >= 3*n/4 {
			late++
		}
	}
	// A uniform 64-sample draw has ~16 in each quarter; zero in either
	// tail quarter would be a broken sampler.
	if early == 0 || late == 0 {
		t.Fatalf("reservoir not uniform: %d early, %d late of %d", early, late, len(snap))
	}
}

// TestTapRing: every TapEvery-th verdict is kept, rows are copied (not
// aliased), and the ring stays bounded.
func TestTapRing(t *testing.T) {
	h := NewHarvester(harvestCfg(), feature.DefaultSpec())
	row := make([]float64, 8)
	for i := 0; i < 100; i++ {
		for j := range row {
			row[j] = float64(i*10 + j)
		}
		h.OnDecision(3, row, i%3 == 0)
	}
	rows, admits := h.SnapshotTap()
	if len(rows) != 8 || len(admits) != 8 {
		t.Fatalf("tap ring %d/%d, want 8", len(rows), len(admits))
	}
	// The caller's buffer was reused for every call: if the tap aliased it,
	// every kept row would equal the last write.
	distinct := false
	for _, r := range rows {
		if r[0] != rows[0][0] {
			distinct = true
		}
	}
	if !distinct {
		t.Fatal("tap rows alias the caller's row buffer")
	}
}

// TestHarvestZeroAllocSteadyState pins the hooks themselves: once a
// device's buffers are grown, neither OnCompletion nor OnDecision
// allocates — the serve-side pin (TestStagedDecideZeroAllocHarvesting in
// internal/serve) depends on it.
func TestHarvestZeroAllocSteadyState(t *testing.T) {
	h := NewHarvester(harvestCfg(), feature.DefaultSpec())
	row := make([]float64, 12)
	for i := 0; i < 2000; i++ {
		h.OnCompletion(1, 100_000, 4, 8192)
		h.OnDecision(1, row, true)
	}
	if a := testing.AllocsPerRun(1000, func() {
		h.OnCompletion(1, 100_000, 4, 8192)
	}); a != 0 {
		t.Errorf("OnCompletion allocates %.2f per op", a)
	}
	if a := testing.AllocsPerRun(1000, func() {
		h.OnDecision(1, row, false)
	}); a != 0 {
		t.Errorf("OnDecision allocates %.2f per op", a)
	}
}

// TestLiveRowMatchesTracker checks row-reconstruction fidelity: the row a
// harvested sample carries must equal the row a serving-shard tracker
// computed at decide time — a window over the completions that finished
// before the I/O arrived (everything observed so far minus the queueLen
// I/Os still in flight ahead of it), same throughput formula.
func TestLiveRowMatchesTracker(t *testing.T) {
	spec := feature.DefaultSpec()
	cfg := Config{Seed: 7, ReservoirPerDevice: 256, HoldoutEvery: 4, HoldoutPerDevice: 64}
	h := NewHarvester(cfg, spec)
	rng := rand.New(rand.NewSource(11))
	const n = 200
	hist := make([]feature.Hist, 0, n)
	want := make([][]float64, 0, n)
	win := feature.NewWindow(spec.Depth)
	for i := 0; i < n; i++ {
		lat := uint64(50_000 + rng.Intn(2_000_000))
		q := uint32(rng.Intn(5))
		size := uint32(4096 << rng.Intn(4))
		end := i - int(q)
		if end < 0 {
			end = 0
		}
		start := end - spec.Depth
		if start < 0 {
			start = 0
		}
		win.Reset()
		for k := start; k < end; k++ {
			win.Push(hist[k])
		}
		want = append(want, spec.OnlineInto(nil, int(q), int32(size), 0, 0, win))
		thpt := float64(size) / (1 << 20) / (float64(lat) / 1e9)
		hist = append(hist, feature.Hist{Latency: float64(lat), QueueLen: float64(q), Thpt: thpt})
		h.OnCompletion(3, lat, q, size)
	}
	snap := h.SnapshotReservoir()
	snap = append(snap, h.SnapshotHoldout()...)
	if len(snap) != n {
		t.Fatalf("expected all %d samples retained, got %d", n, len(snap))
	}
	for _, s := range snap {
		if !reflect.DeepEqual(s.Row, want[s.Seq]) {
			t.Fatalf("seq %d: harvested row %v != tracker row %v", s.Seq, s.Row, want[s.Seq])
		}
	}
}
