package lifecycle

import (
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/feature"
)

// stripes spreads devices over independent locks so shard workers on
// different devices rarely contend. 16 is plenty: the critical sections are
// a few dozen nanoseconds.
const stripes = 16

// deviceBuf is the per-device harvest state. Per-device everything is the
// determinism trick: a device's completions arrive in completion order
// whatever the shard count (single-writer shards), and every decision here
// — holdout split, reservoir eviction, tap sampling — depends only on the
// device's own counters and its own seeded PRNG. Reservoir contents are
// therefore byte-identical however devices were sharded or interleaved.
type deviceBuf struct {
	// seq counts completions seen for this device (the per-device clock).
	//heimdall:owner Harvester.OnCompletion
	seq uint64
	// resSeen counts completions offered to the reservoir (seq minus the
	// holdout split) — the denominator of Algorithm R.
	//heimdall:owner Harvester.OnCompletion
	resSeen uint64
	// res is the bounded uniform reservoir (Algorithm R over resSeen).
	//heimdall:owner Harvester.OnCompletion,Harvester.device,Harvester.SnapshotReservoir
	res []core.LiveSample
	// rng is a per-device xorshift64* stream seeded from (harvester seed,
	// device), so eviction choices are independent of any global state.
	//heimdall:owner Harvester.OnCompletion,Harvester.device
	rng uint64
	// hold is the held-out ring: every HoldoutEvery-th completion lands
	// here instead of the reservoir, keeping the judge's data disjoint
	// from training data. Overwrites oldest, so it is always the most
	// recent live window.
	//heimdall:owner Harvester.OnCompletion,Harvester.device,Harvester.SnapshotHoldout
	hold []core.LiveSample
	//heimdall:owner Harvester.OnCompletion
	holdN uint64

	// Decision tap: a 1-in-TapEvery sample of (raw feature row, verdict)
	// pairs in a small ring, copied out of the decide hot path.
	//heimdall:owner Harvester.OnDecision
	tapSeen uint64
	//heimdall:owner Harvester.OnDecision,Harvester.SnapshotTap
	tapRows [][]float64
	//heimdall:owner Harvester.OnDecision,Harvester.SnapshotTap
	tapAdmit []bool
	//heimdall:owner Harvester.OnDecision
	tapN uint64

	// Live-row reconstruction: the harvester mirrors the serving shard's
	// per-device history tracker over the full completion stream (it sees
	// every completion, in order, even though it stores only a sample), so
	// each harvested sample can carry the feature row the model saw at
	// decide time. ring holds the most recent completion observations;
	// swin and rowScratch are reused scratch, so steady-state harvesting
	// allocates nothing.
	//heimdall:owner Harvester.OnCompletion,Harvester.device
	ring []feature.Hist
	//heimdall:owner Harvester.OnCompletion
	ringN uint64
	//heimdall:owner Harvester.OnCompletion,Harvester.device
	swin *feature.Window
	//heimdall:owner Harvester.OnCompletion,Harvester.device
	rowScratch []float64
}

// liveRingLag bounds how many completions back the row reconstruction can
// reach — the deepest queue it can compensate for.
const liveRingLag = 128

// liveRow rebuilds the feature row the serving shard computed for this
// I/O at decide time. The shard's window held the completions that had
// finished before the I/O *arrived*; by the time the completion reaches
// the harvester, the I/Os that were in flight ahead of it — queueLen of
// them — have also finished and entered the ring. Replaying the ring
// lagged by queueLen therefore reproduces the decide-time window (clamped
// to the ring capacity for pathological queue depths). The returned slice
// is scratch: callers copy it into an owned buffer if they keep the
// sample.
func (d *deviceBuf) liveRow(spec feature.Spec, queueLen, size uint32) []float64 {
	depth := uint64(spec.Depth)
	lag := uint64(queueLen)
	if max := uint64(len(d.ring)) - depth; lag > max {
		lag = max
	}
	if lag > d.ringN {
		lag = d.ringN
	}
	end := d.ringN - lag
	start := uint64(0)
	if end > depth {
		start = end - depth
	}
	if oldest := d.ringN - min(d.ringN, uint64(len(d.ring))); start < oldest {
		start = oldest
	}
	d.swin.Reset()
	for k := start; k < end; k++ {
		d.swin.Push(d.ring[k%uint64(len(d.ring))])
	}
	d.rowScratch = spec.OnlineInto(d.rowScratch[:0], int(queueLen), int32(size), 0, 0, d.swin)
	return d.rowScratch
}

// push advances the mirror tracker with one completion, exactly as the
// serving shard feeds its own window (same throughput formula).
func (d *deviceBuf) push(latencyNs uint64, queueLen, size uint32) {
	thpt := 0.0
	if latencyNs > 0 {
		thpt = float64(size) / (1 << 20) / (float64(latencyNs) / 1e9)
	}
	d.ring[d.ringN%uint64(len(d.ring))] = feature.Hist{
		Latency:  float64(latencyNs),
		QueueLen: float64(queueLen),
		Thpt:     thpt,
	}
	d.ringN++
}

type stripe struct {
	mu   sync.Mutex
	devs map[uint32]*deviceBuf
}

// Harvester collects live completions and tapped decisions from the
// serving layer. It implements serve.CompletionSink and serve.DecisionTap
// structurally (lifecycle deliberately does not import serve). All methods
// are safe for concurrent use from shard workers; per-device streams must
// arrive in order, which the single-writer shards guarantee.
type Harvester struct {
	cfg Config
	// spec is the serving feature spec rows are reconstructed under — the
	// champion model's, so harvested rows live in the exact feature space
	// challengers train and deploy in.
	spec feature.Spec

	str [stripes]stripe

	// harvested counts completions across all devices (approximate
	// ordering across devices is fine — it only paces retrain rounds).
	harvested atomic.Uint64
	heldOut   atomic.Uint64
	tapped    atomic.Uint64
}

// NewHarvester builds an empty harvester for the given (defaulted) config.
// spec is the serving feature spec live rows are reconstructed under; a
// zero spec falls back to the default.
func NewHarvester(cfg Config, spec feature.Spec) *Harvester {
	if spec.Depth == 0 {
		spec = feature.DefaultSpec()
	}
	h := &Harvester{cfg: cfg.withDefaults(), spec: spec}
	for i := range h.str {
		h.str[i].devs = make(map[uint32]*deviceBuf)
	}
	return h
}

// splitmix64 turns (seed, device) into a well-mixed nonzero PRNG state.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// next steps the device's xorshift64* stream.
func (d *deviceBuf) next() uint64 {
	x := d.rng
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	d.rng = x
	return x * 0x2545f4914f6cdd1d
}

func (h *Harvester) stripeFor(device uint32) *stripe {
	return &h.str[device%stripes]
}

func (h *Harvester) device(st *stripe, device uint32) *deviceBuf {
	d := st.devs[device]
	if d == nil {
		d = &deviceBuf{
			res:        make([]core.LiveSample, 0, h.cfg.ReservoirPerDevice),
			hold:       make([]core.LiveSample, 0, h.cfg.HoldoutPerDevice),
			rng:        splitmix64(uint64(h.cfg.Seed)<<32 ^ uint64(device) ^ 0x6c657665),
			ring:       make([]feature.Hist, liveRingLag+h.spec.Depth),
			swin:       feature.NewWindow(h.spec.Depth),
			rowScratch: make([]float64, 0, h.spec.Width()),
		}
		st.devs[device] = d
	}
	return d
}

// OnCompletion implements the completion sink: reconstruct the I/O's
// decide-time feature row from the device's completion stream, advance
// the mirror tracker, and route the (row, latency) sample into the
// device's holdout ring (every HoldoutEvery-th) or its uniform reservoir.
// Kept samples copy the scratch row into the slot they land in, reusing
// the evicted sample's buffer — zero allocations once a device's buffers
// are grown.
func (h *Harvester) OnCompletion(device uint32, latencyNs uint64, queueLen, size uint32) {
	st := h.stripeFor(device)
	st.mu.Lock()
	d := h.device(st, device)
	row := d.liveRow(h.spec, queueLen, size)
	d.push(latencyNs, queueLen, size)
	s := core.LiveSample{Device: device, Seq: d.seq, LatencyNs: latencyNs, QueueLen: queueLen, Size: size}
	d.seq++
	if e := uint64(h.cfg.HoldoutEvery); e > 0 && s.Seq%e == e-1 {
		if len(d.hold) < cap(d.hold) {
			s.Row = append([]float64(nil), row...)
			d.hold = append(d.hold, s)
		} else {
			slot := d.holdN % uint64(cap(d.hold))
			s.Row = append(d.hold[slot].Row[:0], row...)
			d.hold[slot] = s
		}
		d.holdN++
		st.mu.Unlock()
		h.heldOut.Add(1)
		h.harvested.Add(1)
		return
	}
	d.resSeen++
	if len(d.res) < cap(d.res) {
		s.Row = append([]float64(nil), row...)
		d.res = append(d.res, s)
	} else if j := d.next() % d.resSeen; j < uint64(cap(d.res)) {
		s.Row = append(d.res[j].Row[:0], row...)
		d.res[j] = s
	}
	st.mu.Unlock()
	h.harvested.Add(1)
}

// OnDecision implements the decision tap: keep a 1-in-TapEvery per-device
// sample of raw rows and served verdicts in a bounded ring. Rows are copied
// into preallocated slots — the decide hot path stays alloc-free.
func (h *Harvester) OnDecision(device uint32, row []float64, admit bool) {
	st := h.stripeFor(device)
	st.mu.Lock()
	d := h.device(st, device)
	d.tapSeen++
	if e := uint64(h.cfg.TapEvery); e > 1 && d.tapSeen%e != 0 {
		st.mu.Unlock()
		return
	}
	if len(d.tapRows) < h.cfg.TapPerDevice {
		d.tapRows = append(d.tapRows, make([]float64, 0, len(row)))
		d.tapAdmit = append(d.tapAdmit, false)
	}
	slot := int(d.tapN % uint64(h.cfg.TapPerDevice))
	d.tapRows[slot] = append(d.tapRows[slot][:0], row...)
	d.tapAdmit[slot] = admit
	d.tapN++
	st.mu.Unlock()
	h.tapped.Add(1)
}

// Harvested returns the total completions observed (reservoir + holdout) —
// the count that paces retrain rounds.
func (h *Harvester) Harvested() uint64 { return h.harvested.Load() }

// devicesSorted snapshots the device ids present across all stripes in
// ascending order, so every aggregate below is iteration-order free.
func (h *Harvester) devicesSorted() []uint32 {
	var ids []uint32
	for i := range h.str {
		st := &h.str[i]
		st.mu.Lock()
		for id := range st.devs {
			ids = append(ids, id)
		}
		st.mu.Unlock()
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// SnapshotReservoir copies the training reservoir: all devices ascending,
// each device's samples in ascending Seq, rows deep-copied (the live
// buffers are recycled in place on eviction). The result is
// byte-identical for identical per-device completion streams, independent
// of shard count or cross-device interleaving.
func (h *Harvester) SnapshotReservoir() []core.LiveSample {
	var out []core.LiveSample
	for _, id := range h.devicesSorted() {
		st := h.stripeFor(id)
		st.mu.Lock()
		d := st.devs[id]
		start := len(out)
		out = append(out, d.res...)
		for i := start; i < len(out); i++ {
			out[i].Row = append([]float64(nil), out[i].Row...)
		}
		st.mu.Unlock()
		part := out[start:]
		sort.Slice(part, func(i, j int) bool { return part[i].Seq < part[j].Seq })
	}
	return out
}

// SnapshotHoldout copies the held-out ring in the same canonical order.
func (h *Harvester) SnapshotHoldout() []core.LiveSample {
	var out []core.LiveSample
	for _, id := range h.devicesSorted() {
		st := h.stripeFor(id)
		st.mu.Lock()
		d := st.devs[id]
		start := len(out)
		out = append(out, d.hold...)
		for i := start; i < len(out); i++ {
			out[i].Row = append([]float64(nil), out[i].Row...)
		}
		st.mu.Unlock()
		part := out[start:]
		sort.Slice(part, func(i, j int) bool { return part[i].Seq < part[j].Seq })
	}
	return out
}

// SnapshotTap copies the tapped (row, admit) pairs, devices ascending,
// ring order within a device.
func (h *Harvester) SnapshotTap() (rows [][]float64, admits []bool) {
	for _, id := range h.devicesSorted() {
		st := h.stripeFor(id)
		st.mu.Lock()
		d := st.devs[id]
		for i, r := range d.tapRows {
			rows = append(rows, append([]float64(nil), r...))
			admits = append(admits, d.tapAdmit[i])
		}
		st.mu.Unlock()
	}
	return rows, admits
}
