// Package policy defines the admission/replica-selection interface the
// replayer drives, and implements the heuristic baselines the paper compares
// against (§6.1): always-admit baseline, random selection, hedging
// (Dean & Barroso), C3 (Suresh et al.), AMS (Jiang et al.), and Heron
// (Jaiman et al.), plus adapters for the LinnOS and Heimdall ML models.
//
// The replayer calls Decide once per read I/O with a live View of every
// replica; writes always go to all replicas (replication) and are not
// subject to admission.
package policy

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/core"
	"repro/internal/feature"
	"repro/internal/linnos"
)

// View is the observable state of one replica at decision time. It contains
// only information a real deployment has — never simulator ground truth —
// and it distinguishes two vantage points:
//
//   - QueueLen is the replica's instantaneous block-layer queue depth. Only
//     the *backend* sees this; it is what the in-kernel ML models (Heimdall,
//     LinnOS) consume, since they run on the storage node itself (§2).
//   - FeedbackQueueLen is the queue depth piggybacked on the most recent
//     completed response — the stale, client-side signal replica-selection
//     heuristics like C3 actually operate on (Suresh et al. §3). During a
//     busy-period onset this lags reality, which is precisely where the
//     paper's ML models gain their edge.
type View struct {
	QueueLen         int
	FeedbackQueueLen float64
	Hist             *feature.Window // completed reads: latency ns, qlen, MB/s
	EWMALatency      float64         // client-observed response time EWMA (ns)
	EWMAService      float64         // estimated service time EWMA (ns)
	Outstanding      int             // requests sent by this client, not yet done
}

// Decision tells the replayer where to send an I/O.
type Decision struct {
	// Target is the replica index to submit to.
	Target int
	// HedgeAfter, when positive, requests a backup submission to HedgeTarget
	// if the primary has not completed within the delay.
	HedgeAfter  time.Duration
	HedgeTarget int
	// Inferences is the number of model invocations this decision cost
	// (0 for heuristics), for CPU-overhead accounting (§6.6).
	Inferences int
}

// Selector decides the replica for each read I/O.
type Selector interface {
	Name() string
	Decide(now int64, size int32, primary int, views []View) Decision
}

// Validator is an optional Selector extension. Policies carrying per-replica
// state (models) can reject a replica count they were not built for, so a
// malformed replay configuration fails loudly at setup time with a clear
// error instead of an index panic or NaN routing mid-replay. The replayer
// checks it before the first decision.
type Validator interface {
	Validate(replicas int) error
}

// other returns the replica index that is not primary (2-replica helper);
// for larger groups it returns the next replica round-robin.
func other(primary, n int) int {
	if n <= 1 {
		return primary
	}
	return (primary + 1) % n
}

// Baseline always admits to the primary replica — the paper's "baseline".
type Baseline struct{}

// Name implements Selector.
func (Baseline) Name() string { return "baseline" }

// Decide implements Selector.
func (Baseline) Decide(_ int64, _ int32, primary int, _ []View) Decision {
	return Decision{Target: primary}
}

// Random sends each I/O to a uniformly random replica.
type Random struct {
	rng *rand.Rand
}

// NewRandom constructs the policy.
func NewRandom(seed int64) *Random { return &Random{rng: rand.New(rand.NewSource(seed))} }

// Name implements Selector.
func (*Random) Name() string { return "random" }

// Decide implements Selector.
func (r *Random) Decide(_ int64, _ int32, _ int, views []View) Decision {
	return Decision{Target: r.rng.Intn(len(views))}
}

// Hedging submits to the primary and fires a backup to the other replica
// after a fixed timeout (Dean & Barroso's "hedged requests"; the paper uses
// a 2ms timeout in §6.1).
type Hedging struct {
	Timeout time.Duration
}

// NewHedging constructs the policy; a non-positive timeout defaults to 2ms
// (a negative value would otherwise silently disable hedging, since the
// replayer only arms backups for positive delays).
func NewHedging(timeout time.Duration) *Hedging {
	if timeout <= 0 {
		timeout = 2 * time.Millisecond
	}
	return &Hedging{Timeout: timeout}
}

// Name implements Selector.
func (*Hedging) Name() string { return "hedging" }

// Decide implements Selector.
func (h *Hedging) Decide(_ int64, _ int32, primary int, views []View) Decision {
	return Decision{
		Target:      primary,
		HedgeAfter:  h.Timeout,
		HedgeTarget: other(primary, len(views)),
	}
}

// C3 implements the cubic replica-selection score of Suresh et al.
// (NSDI '15): rank replicas by expected response accounting for queue depth
// cubed, and pick the minimum.
type C3 struct{}

// Name implements Selector.
func (C3) Name() string { return "c3" }

// Decide implements Selector.
func (C3) Decide(_ int64, _ int32, _ int, views []View) Decision {
	best, bestScore := 0, 0.0
	for i, v := range views {
		q := 1 + float64(v.Outstanding) + v.FeedbackQueueLen
		score := v.EWMALatency - v.EWMAService + q*q*q*v.EWMAService
		if i == 0 || score < bestScore {
			best, bestScore = i, score
		}
	}
	return Decision{Target: best}
}

// AMS is the adaptive multiget scheduling heuristic (Jiang et al., TCC '23),
// reduced to the single-get case: estimate each replica's completion time
// from its queue and service EWMA with an adaptive penalty on the recently
// slow replica.
type AMS struct{}

// Name implements Selector.
func (AMS) Name() string { return "ams" }

// Decide implements Selector.
func (AMS) Decide(_ int64, _ int32, _ int, views []View) Decision {
	best, bestScore := 0, 0.0
	for i, v := range views {
		wait := (v.FeedbackQueueLen + float64(v.Outstanding)) * v.EWMAService
		// Adaptive term: weight recent observed latency when it diverges
		// from the service estimate (a slow period is in progress).
		adapt := 0.5 * (v.EWMALatency - v.EWMAService)
		if adapt < 0 {
			adapt = 0
		}
		score := wait + v.EWMAService + adapt
		if i == 0 || score < bestScore {
			best, bestScore = i, score
		}
	}
	return Decision{Target: best}
}

// Heron (Jaiman et al., SRDS '18) avoids replicas predicted to serve a tail
// request: it tracks a per-replica slow flag from the last observed latency
// against a global threshold and falls back to least-outstanding selection.
type Heron struct {
	// Multiple of the fleet-wide EWMA latency above which a replica is
	// flagged slow (Heron's default behaviour; 2 when zero).
	SlowFactor float64
}

// Name implements Selector.
func (*Heron) Name() string { return "heron" }

// Decide implements Selector.
func (h *Heron) Decide(_ int64, _ int32, primary int, views []View) Decision {
	if len(views) == 0 {
		// Nothing to rank: admit at the primary rather than divide by zero
		// into NaN scores (replay validates its options, but Decide is also
		// public API).
		return Decision{Target: primary}
	}
	factor := h.SlowFactor
	if factor == 0 {
		factor = 2
	}
	var fleet float64
	for _, v := range views {
		fleet += v.EWMALatency
	}
	fleet /= float64(len(views))
	best, bestScore := -1, 0.0
	for i, v := range views {
		if v.Hist.Len() > 0 && v.Hist.At(0).Latency > factor*fleet {
			continue // flagged slow
		}
		score := v.FeedbackQueueLen + float64(v.Outstanding)
		if best < 0 || score < bestScore {
			best, bestScore = i, score
		}
	}
	if best < 0 {
		// Every replica flagged: fall back to least outstanding.
		for i, v := range views {
			score := v.FeedbackQueueLen + float64(v.Outstanding)
			if best < 0 || score < bestScore {
				best, bestScore = i, score
			}
		}
	}
	return Decision{Target: best}
}

// Heimdall admits via a per-replica trained core.Model: predicted-fast I/Os
// go to the primary; predicted-slow I/Os reroute to the other replica (§2) —
// unless that replica's own model also predicts slow, in which case the I/O
// is admitted at the primary after all (§4.2's joint inference): when every
// replica is in a busy period, flooding the reroute target only stacks a
// queueing delay on top of its internal contention.
type Heimdall struct {
	Models []*core.Model // one per replica
}

// Name implements Selector.
func (*Heimdall) Name() string { return "heimdall" }

// Validate implements Validator.
func (p *Heimdall) Validate(replicas int) error {
	return validateModels("heimdall", len(p.Models), replicas, func(i int) bool {
		return p.Models[i] != nil
	})
}

// Decide implements Selector.
func (p *Heimdall) Decide(_ int64, size int32, primary int, views []View) Decision {
	if len(views) == 0 || primary >= len(p.Models) || p.Models[primary] == nil {
		// Defensive: replay validates options up front, but Decide is public
		// API. Admitting at the primary is the only side-effect-free choice.
		return Decision{Target: primary}
	}
	m := p.Models[primary]
	raw := m.Features(views[primary].QueueLen, size, views[primary].Hist)
	if m.Admit(raw) {
		return Decision{Target: primary, Inferences: 1}
	}
	alt := other(primary, len(views))
	if alt == primary || alt >= len(p.Models) || p.Models[alt] == nil {
		return Decision{Target: alt, Inferences: 1}
	}
	// §4.2 joint inference: consult the reroute target's model before
	// committing. Both slow -> stay at the primary.
	altRaw := p.Models[alt].Features(views[alt].QueueLen, size, views[alt].Hist)
	if !p.Models[alt].Admit(altRaw) {
		return Decision{Target: primary, Inferences: 2}
	}
	return Decision{Target: alt, Inferences: 2}
}

// validateModels is the shared per-replica model-count check.
func validateModels(name string, have, want int, ok func(i int) bool) error {
	if have < want {
		return fmt.Errorf("policy: %s has %d models for %d replicas", name, have, want)
	}
	for i := 0; i < want; i++ {
		if !ok(i) {
			return fmt.Errorf("policy: %s model %d is nil", name, i)
		}
	}
	return nil
}

// LinnOS admits via a per-replica LinnOS model with per-page inference.
type LinnOS struct {
	Models []*linnos.Model
	// Hedge additionally arms a hedging timeout (the "LinnOS+Hedge"
	// combination of Fig. 12).
	Hedge time.Duration
}

// Name implements Selector.
func (p *LinnOS) Name() string {
	if p.Hedge > 0 {
		return "linnos+hedge"
	}
	return "linnos"
}

// Validate implements Validator.
func (p *LinnOS) Validate(replicas int) error {
	return validateModels("linnos", len(p.Models), replicas, func(i int) bool {
		return p.Models[i] != nil
	})
}

// Decide implements Selector.
func (p *LinnOS) Decide(_ int64, size int32, primary int, views []View) Decision {
	if len(views) == 0 || primary >= len(p.Models) || p.Models[primary] == nil {
		return Decision{Target: primary}
	}
	m := p.Models[primary]
	admit, inf := m.AdmitIO(views[primary].QueueLen, size, views[primary].Hist)
	d := Decision{Target: primary, Inferences: inf}
	if !admit {
		d.Target = other(primary, len(views))
	}
	if p.Hedge > 0 {
		d.HedgeAfter = p.Hedge
		d.HedgeTarget = other(d.Target, len(views))
	}
	return d
}
