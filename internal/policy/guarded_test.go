package policy

import (
	"testing"

	"repro/internal/drift"
	"repro/internal/feature"
)

// scripted is a controllable inner policy: it declines (reroutes) exactly
// when told to, so breaker sequencing can be tested deterministically.
type scripted struct{ decline bool }

func (s *scripted) Name() string { return "scripted" }
func (s *scripted) Decide(_ int64, _ int32, primary int, views []View) Decision {
	if s.decline {
		return Decision{Target: other(primary, len(views)), Inferences: 1}
	}
	return Decision{Target: primary, Inferences: 1}
}

func flatViews(n int, ewma float64) []View {
	views := make([]View, n)
	for i := range views {
		views[i] = View{EWMALatency: ewma, EWMAService: ewma / 2, Hist: feature.NewWindow(4)}
	}
	return views
}

func TestGuardedStaysClosedWhenHealthy(t *testing.T) {
	inner := &scripted{}
	g := NewGuarded(inner, Baseline{})
	views := flatViews(2, 2e5)
	for i := 0; i < 1000; i++ {
		d := g.Decide(int64(i), 4096, 0, views)
		if d.Target != 0 {
			t.Fatalf("decision %d rerouted while healthy", i)
		}
	}
	if g.Trips() != 0 || g.State(0) != BreakerClosed {
		t.Fatalf("healthy inner tripped the breaker: trips=%d state=%v", g.Trips(), g.State(0))
	}
}

func TestGuardedTripProbeReopenAndRecover(t *testing.T) {
	inner := &scripted{decline: true}
	g := NewGuarded(inner, Baseline{})
	g.Window = 8
	g.Cooldown = 8
	g.Probes = 4
	views := flatViews(2, 2e5)
	now := int64(0)
	step := func() Decision { now++; return g.Decide(now, 4096, 0, views) }

	// Window of floods -> trip.
	for i := 0; i < 8; i++ {
		step()
	}
	if g.State(0) != BreakerOpen || g.Trips() != 1 {
		t.Fatalf("after flood window: state=%v trips=%d", g.State(0), g.Trips())
	}
	// Open: the fallback (baseline) is in control.
	for i := 0; i < 8; i++ {
		if d := step(); d.Target != 0 {
			t.Fatal("open breaker did not use the fallback")
		}
	}
	if g.State(0) != BreakerHalfOpen {
		t.Fatalf("after cooldown: state=%v, want half-open", g.State(0))
	}
	// Half-open with a still-sick model: 4 probes (1 in 4 decisions) all
	// decline -> re-open.
	for i := 0; i < 16; i++ {
		step()
	}
	if g.State(0) != BreakerOpen || g.Trips() != 2 {
		t.Fatalf("sick probes must re-open: state=%v trips=%d", g.State(0), g.Trips())
	}

	// Model heals: cooldown, then healthy probes close the breaker.
	inner.decline = false
	for i := 0; i < 8+16; i++ {
		step()
	}
	if g.State(0) != BreakerClosed {
		t.Fatalf("healthy probes must close: state=%v", g.State(0))
	}
	if g.Recoveries() != 1 {
		t.Fatalf("recoveries=%d, want 1", g.Recoveries())
	}
	// The transition log tells the whole story in order.
	want := []struct{ from, to BreakerState }{
		{BreakerClosed, BreakerOpen},
		{BreakerOpen, BreakerHalfOpen},
		{BreakerHalfOpen, BreakerOpen},
		{BreakerOpen, BreakerHalfOpen},
		{BreakerHalfOpen, BreakerClosed},
	}
	trs := g.Transitions()
	if len(trs) != len(want) {
		t.Fatalf("transitions %d, want %d: %+v", len(trs), len(want), trs)
	}
	for i, w := range want {
		if trs[i].From != w.from || trs[i].To != w.to || trs[i].Primary != 0 {
			t.Fatalf("transition %d = %+v, want %v->%v", i, trs[i], w.from, w.to)
		}
	}
}

func TestGuardedTripsOnLatencyRegret(t *testing.T) {
	// The model keeps admitting at a primary whose observed latency is 10x
	// the peer's: decline rate is zero, but regret must trip the breaker.
	inner := &scripted{}
	g := NewGuarded(inner, Baseline{})
	g.Window = 16
	views := flatViews(2, 1e5)
	views[0].EWMALatency = 1e6 // primary 10x worse than replica 1
	for i := 0; i < 16; i++ {
		g.Decide(int64(i), 4096, 0, views)
	}
	if g.State(0) != BreakerOpen {
		t.Fatalf("regret did not trip: state=%v", g.State(0))
	}
}

func TestGuardedTripsOnInputDrift(t *testing.T) {
	// Reference: healthy low-latency observations. Live: 20x latencies with
	// a benign decline rate — only the PSI detector can notice.
	ref := make([][]float64, 400)
	for i := range ref {
		ref[i] = []float64{float64(i % 8), 2e5 + float64(i%100)*1e3, 2e5 + float64(i%90)*1e3}
	}
	det := drift.NewInputDetector(ref, 8)
	det.MinSamples = 64

	inner := &scripted{}
	g := NewGuarded(inner, Baseline{})
	g.Window = 64
	g.Detector = det

	views := flatViews(2, 4e6) // 20x the reference latencies
	views[1].EWMALatency = 4e6
	hist := feature.NewWindow(4)
	hist.Push(feature.Hist{Latency: 5e6, QueueLen: 3, Thpt: 1})
	views[0].Hist = hist
	for i := 0; i < 64; i++ {
		g.Decide(int64(i), 4096, 0, views)
	}
	if g.State(0) != BreakerOpen {
		t.Fatalf("input drift did not trip: state=%v", g.State(0))
	}
}

func TestGuardedPerPrimaryIsolation(t *testing.T) {
	// Flood only primary 0's windows; primary 1 must keep its model.
	inner := &scripted{decline: true}
	g := NewGuarded(inner, Baseline{})
	g.Window = 8
	views := flatViews(2, 2e5)
	for i := 0; i < 8; i++ {
		g.Decide(int64(i), 4096, 0, views)
	}
	inner.decline = false
	for i := 0; i < 8; i++ {
		g.Decide(int64(100+i), 4096, 1, views)
	}
	if g.State(0) != BreakerOpen {
		t.Fatalf("primary 0 state=%v, want open", g.State(0))
	}
	if g.State(1) != BreakerClosed {
		t.Fatalf("primary 1 state=%v, want closed (isolation)", g.State(1))
	}
}

func TestGuardedValidateDelegates(t *testing.T) {
	g := NewGuarded(&Heimdall{}, Baseline{})
	if err := g.Validate(2); err == nil {
		t.Fatal("guarded(heimdall) with no models must fail validation")
	}
	g = NewGuarded(&scripted{}, Baseline{})
	if err := g.Validate(2); err != nil {
		t.Fatalf("non-validating inner must pass: %v", err)
	}
}
