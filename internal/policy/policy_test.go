package policy

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/feature"
)

func views(qlens ...int) []View {
	out := make([]View, len(qlens))
	for i, q := range qlens {
		out[i] = View{
			QueueLen:         q,
			FeedbackQueueLen: float64(q),
			Hist:             feature.NewWindow(4),
			EWMALatency:      1e5,
			EWMAService:      8e4,
		}
	}
	return out
}

func TestBaselineAlwaysPrimary(t *testing.T) {
	d := Baseline{}.Decide(0, 4096, 1, views(100, 0))
	if d.Target != 1 || d.HedgeAfter != 0 {
		t.Fatalf("decision %+v", d)
	}
}

func TestRandomCoversReplicas(t *testing.T) {
	r := NewRandom(1)
	seen := map[int]bool{}
	for i := 0; i < 100; i++ {
		seen[r.Decide(0, 4096, 0, views(0, 0)).Target] = true
	}
	if !seen[0] || !seen[1] {
		t.Fatalf("random never picked both replicas: %v", seen)
	}
}

func TestHedgingFields(t *testing.T) {
	h := NewHedging(0)
	if h.Timeout != 2*time.Millisecond {
		t.Fatalf("default timeout %v, want the paper's 2ms", h.Timeout)
	}
	d := h.Decide(0, 4096, 0, views(0, 0))
	if d.Target != 0 || d.HedgeAfter != 2*time.Millisecond || d.HedgeTarget != 1 {
		t.Fatalf("decision %+v", d)
	}
}

func TestC3PrefersShallowQueue(t *testing.T) {
	v := views(50, 1)
	v[0].Outstanding = 10
	d := C3{}.Decide(0, 4096, 0, v)
	if d.Target != 1 {
		t.Fatalf("C3 chose deep queue: %+v", d)
	}
}

func TestC3CubicPenalty(t *testing.T) {
	// Queue difference is tiny but cubic: 4^3 vs 2^3 dominates a modest
	// latency advantage of replica 0.
	v := views(3, 1)
	v[0].EWMALatency = 5e4 // replica 0 looks faster historically
	d := C3{}.Decide(0, 4096, 0, v)
	if d.Target != 1 {
		t.Fatalf("cubic term did not dominate: %+v", d)
	}
}

func TestAMSPrefersFasterCompletion(t *testing.T) {
	v := views(10, 2)
	d := AMS{}.Decide(0, 4096, 0, v)
	if d.Target != 1 {
		t.Fatalf("AMS chose slower replica: %+v", d)
	}
}

func TestAMSAdaptivePenalty(t *testing.T) {
	// Equal queues, but replica 0's observed latency diverged from its
	// service estimate (slow period in progress).
	v := views(2, 2)
	v[0].EWMALatency = 5e6
	d := AMS{}.Decide(0, 4096, 0, v)
	if d.Target != 1 {
		t.Fatalf("AMS ignored latency divergence: %+v", d)
	}
}

func TestHeronAvoidsFlaggedSlowReplica(t *testing.T) {
	v := views(1, 5)
	// Replica 0's last observed latency is way above the fleet EWMA.
	v[0].Hist.Push(feature.Hist{Latency: 10e6})
	v[1].Hist.Push(feature.Hist{Latency: 1e5})
	d := (&Heron{}).Decide(0, 4096, 0, v)
	if d.Target != 1 {
		t.Fatalf("Heron picked the flagged replica: %+v", d)
	}
}

func TestHeronFallbackWhenAllFlagged(t *testing.T) {
	v := views(3, 7)
	v[0].Hist.Push(feature.Hist{Latency: 10e6})
	v[1].Hist.Push(feature.Hist{Latency: 10e6})
	d := (&Heron{}).Decide(0, 4096, 0, v)
	if d.Target != 0 {
		t.Fatalf("fallback should pick least outstanding: %+v", d)
	}
}

func TestOtherHelper(t *testing.T) {
	if other(0, 2) != 1 || other(1, 2) != 0 {
		t.Fatal("2-replica other() broken")
	}
	if other(0, 1) != 0 {
		t.Fatal("single replica must stay put")
	}
	if other(2, 3) != 0 {
		t.Fatal("round-robin other() broken")
	}
}

func TestSelectorNames(t *testing.T) {
	sels := []Selector{
		Baseline{}, NewRandom(1), NewHedging(0), C3{}, AMS{}, &Heron{},
	}
	seen := map[string]bool{}
	for _, s := range sels {
		if s.Name() == "" || seen[s.Name()] {
			t.Fatalf("bad or duplicate name %q", s.Name())
		}
		seen[s.Name()] = true
	}
	if (&LinnOS{}).Name() != "linnos" {
		t.Fatal("linnos name")
	}
	if (&LinnOS{Hedge: time.Millisecond}).Name() != "linnos+hedge" {
		t.Fatal("linnos+hedge name")
	}
	if (&Heimdall{}).Name() != "heimdall" {
		t.Fatal("heimdall name")
	}
}

func TestHedgingNormalizesNonPositiveTimeout(t *testing.T) {
	if h := NewHedging(-5 * time.Millisecond); h.Timeout != 2*time.Millisecond {
		t.Fatalf("negative timeout kept as %v: hedging silently disabled", h.Timeout)
	}
}

func TestHeronEmptyViews(t *testing.T) {
	d := (&Heron{}).Decide(0, 4096, 3, nil)
	if d.Target != 3 {
		t.Fatalf("empty views must admit at the primary, got %+v", d)
	}
}

func TestHeimdallGuardsShortModels(t *testing.T) {
	p := &Heimdall{} // no models at all
	if d := p.Decide(0, 4096, 0, views(0, 0)); d.Target != 0 {
		t.Fatalf("model-less Decide must admit at the primary: %+v", d)
	}
	if err := p.Validate(2); err == nil {
		t.Fatal("Validate must reject 2 replicas with 0 models")
	}
	if err := (&Heimdall{Models: maskedModels(t)}).Validate(2); err != nil {
		t.Fatalf("complete model set rejected: %v", err)
	}
	if err := (&LinnOS{}).Validate(1); err == nil {
		t.Fatal("LinnOS Validate must reject missing models")
	}
	if err := (&MaskedHeimdall{}).Validate(1); err == nil {
		t.Fatal("MaskedHeimdall Validate must reject missing models")
	}
}

// busyView builds a view the trained model declines: deep queue, slow
// recent history. The queue depth is searched so the test does not depend on
// one specific calibration.
func busyView(t *testing.T, m *core.Model) View {
	t.Helper()
	hist := feature.NewWindow(4)
	for i := 0; i < 4; i++ {
		hist.Push(feature.Hist{Latency: 2e7, QueueLen: 64, Thpt: 0.1})
	}
	for q := 1; q <= 1024; q *= 2 {
		if !m.Admit(m.Features(q, 4096, hist)) {
			return View{QueueLen: q, FeedbackQueueLen: float64(q), Hist: hist,
				EWMALatency: 2e7, EWMAService: 1e7}
		}
	}
	t.Fatal("could not construct a view the model declines")
	return View{}
}

func TestHeimdallJointInference(t *testing.T) {
	models := maskedModels(t)
	p := &Heimdall{Models: models}
	busy := busyView(t, models[0])
	idle := views(0)[0]

	// Primary fast: admit, one inference.
	d := p.Decide(0, 4096, 0, []View{idle, busy})
	if d.Target != 0 || d.Inferences != 1 {
		t.Fatalf("fast primary: %+v", d)
	}
	// Primary slow, peer fast: reroute, and the peer's model was consulted.
	d = p.Decide(0, 4096, 0, []View{busy, idle})
	if d.Target != 1 || d.Inferences != 2 {
		t.Fatalf("slow primary, fast peer: %+v", d)
	}
	// Both slow (§4.2): stay at the primary instead of flooding the peer.
	d = p.Decide(0, 4096, 0, []View{busy, busy})
	if d.Target != 0 || d.Inferences != 2 {
		t.Fatalf("both slow must admit at primary: %+v", d)
	}
}
