package policy

import (
	"time"

	"repro/internal/core"
)

// MaskedHeimdall is the "inaccuracy masking" extension (the OM stage of the
// paper's pipeline taxonomy, Fig. 1): admission decisions whose score falls
// inside an uncertainty band around the decision threshold are not trusted
// outright — the I/O is admitted to the cheaper target but a hedge is armed
// so a wrong call costs one timeout instead of a full tail latency.
//
// Decisions outside the band behave exactly like the plain Heimdall policy,
// so the masking overhead is proportional to the model's uncertainty rate.
type MaskedHeimdall struct {
	Models []*core.Model
	// Band is the half-width of the uncertainty zone around each model's
	// calibrated threshold (default 0.1).
	Band float64
	// HedgeAfter is the backup timeout for masked decisions (default 2ms).
	HedgeAfter time.Duration
}

// Name implements Selector.
func (*MaskedHeimdall) Name() string { return "heimdall+mask" }

// Validate implements Validator.
func (p *MaskedHeimdall) Validate(replicas int) error {
	return validateModels("heimdall+mask", len(p.Models), replicas, func(i int) bool {
		return p.Models[i] != nil
	})
}

// Decide implements Selector.
func (p *MaskedHeimdall) Decide(_ int64, size int32, primary int, views []View) Decision {
	if len(views) == 0 || primary >= len(p.Models) || p.Models[primary] == nil {
		return Decision{Target: primary}
	}
	band := p.Band
	if band == 0 {
		band = 0.1
	}
	hedge := p.HedgeAfter
	if hedge == 0 {
		hedge = 2 * time.Millisecond
	}
	m := p.Models[primary]
	raw := m.Features(views[primary].QueueLen, size, views[primary].Hist)
	score := m.Score(raw)
	th := m.Threshold()

	d := Decision{Target: primary, Inferences: 1}
	if score >= th {
		d.Target = other(primary, len(views))
	}
	if score > th-band && score < th+band {
		// Uncertain: mask the potential inaccuracy with a hedge to the
		// replica the decision did not pick.
		d.HedgeAfter = hedge
		d.HedgeTarget = other(d.Target, len(views))
	}
	return d
}
