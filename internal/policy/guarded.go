package policy

import (
	"fmt"

	"repro/internal/drift"
)

// BreakerState is the per-primary state of a Guarded circuit breaker.
type BreakerState uint8

const (
	// BreakerClosed: the wrapped ML policy is trusted and in control.
	BreakerClosed BreakerState = iota
	// BreakerOpen: the ML policy misbehaved; the fallback heuristic routes.
	BreakerOpen
	// BreakerHalfOpen: mostly fallback, with periodic probes of the ML
	// policy to decide whether to close again.
	BreakerHalfOpen
)

// String names the state.
func (s BreakerState) String() string {
	switch s {
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	}
	return "closed"
}

// BreakerTransition is one recorded state change of one primary's breaker.
type BreakerTransition struct {
	At       int64 // decision timestamp (simulation ns)
	Primary  int
	From, To BreakerState
}

// Guarded wraps an ML admission policy (Heimdall, LinnOS, masked variants)
// in a per-primary circuit breaker, giving it a guaranteed fallback to a
// heuristic when the model goes bad — the guardrail §4.2 and the learned-
// storage literature (KML, learned predictability) call for.
//
// Three trip signals are monitored over a rolling window of decisions per
// primary replica:
//
//   - decline flooding: the model reroutes more than TripDeclineRate of the
//     primary's reads — either every replica is slow (rerouting only stacks
//     load on a busy peer) or the model has drifted into paranoia;
//   - latency regret: decisions land on replicas whose observed EWMA latency
//     is RegretFactor× worse than the best replica's — the model is actively
//     choosing slow targets;
//   - input drift: an optional PSI detector (internal/drift) flags that the
//     feature distribution no longer resembles what the model was trained
//     on, so its predictions are extrapolation, not inference.
//
// A tripped breaker routes through the Fallback heuristic for Cooldown
// decisions, then half-open-probes the model on every fourth decision; if
// the probes behave, the breaker closes, otherwise it re-opens. All state is
// decision-count driven — no wall clock — so a replay with a fixed seed
// produces an identical trip/recovery trace.
//
// Guarded is not safe for concurrent use, matching the replayer's
// single-threaded decision loop.
type Guarded struct {
	Inner    Selector // the guarded ML policy
	Fallback Selector // heuristic in control while the breaker is open

	// Window is the number of decisions per primary between trip checks
	// (default 64).
	Window int
	// TripDeclineRate is the windowed decline fraction that trips the
	// breaker (default 0.9, the §4.2 flooding regime).
	TripDeclineRate float64
	// RegretFactor flags a decision as regretful when its target's EWMA
	// latency exceeds RegretFactor× the best replica's (default 3).
	RegretFactor float64
	// TripRegretRate is the windowed regret fraction that trips (default 0.5).
	TripRegretRate float64
	// Cooldown is how many open-state decisions a primary serves via the
	// fallback before probing resumes (default 16×Window). Size it to the
	// shortest fault worth riding out: at kHz decision rates a short cooldown
	// flaps the breaker closed into a still-degraded device.
	Cooldown int
	// Probes is how many half-open probes decide recovery (default 16).
	Probes int
	// Detector, when set, contributes the input-drift trip signal. Feed its
	// reference from healthy-operation rows built with GuardObservation.
	Detector *drift.InputDetector

	perPrimary  []breaker
	transitions []BreakerTransition
	trips       int
	recoveries  int
}

// breaker is the monitoring state of one primary replica.
type breaker struct {
	state    BreakerState
	n        int // closed: decisions in the current window
	declines int
	regrets  int
	cooldown int // open: decisions left before half-open
	probeSeq int // half-open: decisions since entering, for probe cadence
	probes   int // half-open: probes performed
	probeBad int // half-open: probes that declined or regretted
}

// NewGuarded wraps inner with the breaker; a nil fallback defaults to
// hedging with the paper's 2ms timeout, which is tail-safe whichever replica
// the fault is on.
func NewGuarded(inner, fallback Selector) *Guarded {
	if fallback == nil {
		fallback = NewHedging(0)
	}
	return &Guarded{Inner: inner, Fallback: fallback}
}

// Name implements Selector.
func (g *Guarded) Name() string { return "guarded(" + g.Inner.Name() + ")" }

// Validate implements Validator, delegating to the wrapped policies.
func (g *Guarded) Validate(replicas int) error {
	if g.Inner == nil {
		return fmt.Errorf("policy: guarded has no inner policy")
	}
	if v, ok := g.Inner.(Validator); ok {
		if err := v.Validate(replicas); err != nil {
			return err
		}
	}
	if v, ok := g.Fallback.(Validator); ok && g.Fallback != nil {
		if err := v.Validate(replicas); err != nil {
			return err
		}
	}
	return nil
}

// State returns the breaker state of one primary (closed before any
// decision touched it).
func (g *Guarded) State(primary int) BreakerState {
	if primary < 0 || primary >= len(g.perPrimary) {
		return BreakerClosed
	}
	return g.perPrimary[primary].state
}

// Trips returns how many times any primary's breaker opened.
func (g *Guarded) Trips() int { return g.trips }

// Recoveries returns how many times a half-open breaker closed again.
func (g *Guarded) Recoveries() int { return g.recoveries }

// Transitions returns the recorded state changes in decision order.
func (g *Guarded) Transitions() []BreakerTransition {
	return append([]BreakerTransition(nil), g.transitions...)
}

// GuardObservation builds the feature row Guarded feeds its drift detector:
// the primary's instantaneous queue depth, the client-observed EWMA latency,
// and the most recent completed-read latency. Build the detector's reference
// from rows collected during known-healthy operation.
func GuardObservation(primary int, views []View) []float64 {
	v := views[primary]
	last := 0.0
	if v.Hist != nil && v.Hist.Len() > 0 {
		last = v.Hist.At(0).Latency
	}
	return []float64{float64(v.QueueLen), v.EWMALatency, last}
}

func (g *Guarded) window() int {
	if g.Window > 0 {
		return g.Window
	}
	return 64
}

func (g *Guarded) declineRate() float64 {
	if g.TripDeclineRate > 0 {
		return g.TripDeclineRate
	}
	return 0.9
}

func (g *Guarded) regretFactor() float64 {
	if g.RegretFactor > 0 {
		return g.RegretFactor
	}
	return 3
}

func (g *Guarded) regretRate() float64 {
	if g.TripRegretRate > 0 {
		return g.TripRegretRate
	}
	return 0.5
}

func (g *Guarded) cooldownLen() int {
	if g.Cooldown > 0 {
		return g.Cooldown
	}
	return 16 * g.window()
}

func (g *Guarded) probeCount() int {
	if g.Probes > 0 {
		return g.Probes
	}
	return 16
}

// probeEvery is the half-open probe cadence: 1 in 4 decisions trials the
// model, the rest stay on the fallback.
const probeEvery = 4

func (g *Guarded) transition(now int64, primary int, to BreakerState) {
	b := &g.perPrimary[primary]
	g.transitions = append(g.transitions, BreakerTransition{
		At: now, Primary: primary, From: b.state, To: to,
	})
	switch to {
	case BreakerOpen:
		g.trips++
		b.cooldown = g.cooldownLen()
	case BreakerHalfOpen:
		b.probeSeq, b.probes, b.probeBad = 0, 0, 0
	case BreakerClosed:
		if b.state == BreakerHalfOpen {
			g.recoveries++
		}
		b.n, b.declines, b.regrets = 0, 0, 0
	}
	b.state = to
}

// regretful reports whether the decision picked a replica whose observed
// latency estimate is far above the best available one.
func (g *Guarded) regretful(d Decision, views []View) bool {
	if d.Target < 0 || d.Target >= len(views) {
		return true
	}
	best := views[0].EWMALatency
	for _, v := range views[1:] {
		if v.EWMALatency < best {
			best = v.EWMALatency
		}
	}
	if best <= 0 {
		return false
	}
	return views[d.Target].EWMALatency > g.regretFactor()*best
}

// Decide implements Selector.
func (g *Guarded) Decide(now int64, size int32, primary int, views []View) Decision {
	if len(views) == 0 {
		return Decision{Target: primary}
	}
	for len(g.perPrimary) < len(views) {
		g.perPrimary = append(g.perPrimary, breaker{})
	}
	if primary < 0 || primary >= len(g.perPrimary) {
		return g.Fallback.Decide(now, size, primary, views)
	}
	b := &g.perPrimary[primary]

	switch b.state {
	case BreakerOpen:
		b.cooldown--
		if b.cooldown <= 0 {
			g.transition(now, primary, BreakerHalfOpen)
		}
		return g.Fallback.Decide(now, size, primary, views)

	case BreakerHalfOpen:
		b.probeSeq++
		if b.probeSeq%probeEvery != 0 {
			return g.Fallback.Decide(now, size, primary, views)
		}
		d := g.Inner.Decide(now, size, primary, views)
		b.probes++
		if d.Target != primary || g.regretful(d, views) {
			b.probeBad++
		}
		if b.probes >= g.probeCount() {
			if float64(b.probeBad)/float64(b.probes) > g.declineRate() {
				g.transition(now, primary, BreakerOpen)
			} else {
				g.transition(now, primary, BreakerClosed)
			}
		}
		return d
	}

	// Closed: the model routes, the breaker watches.
	d := g.Inner.Decide(now, size, primary, views)
	b.n++
	if d.Target != primary {
		b.declines++
	}
	if g.regretful(d, views) {
		b.regrets++
	}
	if g.Detector != nil {
		g.Detector.Observe(GuardObservation(primary, views))
	}
	if b.n >= g.window() {
		trip := float64(b.declines)/float64(b.n) > g.declineRate() ||
			float64(b.regrets)/float64(b.n) > g.regretRate() ||
			(g.Detector != nil && g.Detector.Drifted())
		b.n, b.declines, b.regrets = 0, 0, 0
		if trip {
			g.transition(now, primary, BreakerOpen)
		}
	}
	return d
}
