package policy

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/iolog"
	"repro/internal/ssd"
	"repro/internal/trace"
)

func maskedModels(t *testing.T) []*core.Model {
	t.Helper()
	tr := trace.Generate(trace.MSRStyle(41, 2*time.Second))
	dev := ssd.New(ssd.Samsung970Pro(), 41)
	log := iolog.Collect(tr, dev)
	cfg := core.DefaultConfig(41)
	cfg.Epochs = 5
	cfg.MaxTrainSamples = 5000
	m, err := core.Train(log, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return []*core.Model{m, m}
}

func TestMaskedHeimdallHedgesOnlyUncertain(t *testing.T) {
	models := maskedModels(t)
	p := &MaskedHeimdall{Models: models, Band: 0.1}
	v := views(0, 0)

	// A clearly idle view: confident admit, no hedge.
	d := p.Decide(0, 4096, 0, v)
	if d.Target != 0 {
		t.Fatalf("idle view declined: %+v", d)
	}
	if d.HedgeAfter != 0 {
		score := models[0].Score(models[0].Features(0, 4096, v[0].Hist))
		t.Fatalf("confident decision hedged (score %.3f, threshold %.3f)", score, models[0].Threshold())
	}
	if d.Inferences != 1 {
		t.Fatalf("inferences %d", d.Inferences)
	}

	// A band of zero must behave like plain Heimdall but with defaults
	// applied; a full-width band must hedge everything.
	wide := &MaskedHeimdall{Models: models, Band: 1, HedgeAfter: time.Millisecond}
	d = wide.Decide(0, 4096, 0, v)
	if d.HedgeAfter != time.Millisecond {
		t.Fatalf("full-width band did not hedge: %+v", d)
	}
	if d.HedgeTarget == d.Target {
		t.Fatal("hedge target equals primary target")
	}
}

func TestMaskedHeimdallAgreesWithPlainOutsideBand(t *testing.T) {
	models := maskedModels(t)
	plain := &Heimdall{Models: models}
	masked := &MaskedHeimdall{Models: models, Band: 1e-9}
	for q := 0; q < 60; q += 10 {
		v := views(q, 0)
		dp := plain.Decide(0, 4096, 0, v)
		dm := masked.Decide(0, 4096, 0, v)
		if dp.Target != dm.Target {
			t.Fatalf("qlen %d: masked target %d vs plain %d", q, dm.Target, dp.Target)
		}
	}
}
