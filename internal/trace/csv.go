package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteCSV serializes the trace as `arrival_ns,op,offset,size` rows with a
// header — the interchange format cmd/tracegen emits and ReadCSV accepts,
// and a close cousin of the published MSR/Tencent trace formats.
func WriteCSV(w io.Writer, t *Trace) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "arrival_ns,op,offset,size"); err != nil {
		return err
	}
	for _, r := range t.Reqs {
		if _, err := fmt.Fprintf(bw, "%d,%s,%d,%d\n", r.Arrival, r.Op, r.Offset, r.Size); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadCSV parses a trace written by WriteCSV. The header row is optional;
// ops accept R/W (any case) or 0/1. Rows must be sorted by arrival; ReadCSV
// returns an error otherwise, because an unsorted trace silently corrupts
// the simulator's queueing statistics.
func ReadCSV(r io.Reader, name string) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	t := &Trace{Name: name}
	lineNo := 0
	prev := int64(-1)
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if lineNo == 1 && strings.HasPrefix(strings.ToLower(line), "arrival") {
			continue // header
		}
		fields := strings.Split(line, ",")
		if len(fields) != 4 {
			return nil, fmt.Errorf("trace: %s:%d: want 4 fields, got %d", name, lineNo, len(fields))
		}
		arrival, err := strconv.ParseInt(strings.TrimSpace(fields[0]), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: %s:%d: arrival: %w", name, lineNo, err)
		}
		op, err := parseOp(strings.TrimSpace(fields[1]))
		if err != nil {
			return nil, fmt.Errorf("trace: %s:%d: %w", name, lineNo, err)
		}
		offset, err := strconv.ParseInt(strings.TrimSpace(fields[2]), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: %s:%d: offset: %w", name, lineNo, err)
		}
		size, err := strconv.ParseInt(strings.TrimSpace(fields[3]), 10, 32)
		if err != nil {
			return nil, fmt.Errorf("trace: %s:%d: size: %w", name, lineNo, err)
		}
		if size <= 0 {
			return nil, fmt.Errorf("trace: %s:%d: non-positive size %d", name, lineNo, size)
		}
		if arrival < prev {
			return nil, fmt.Errorf("trace: %s:%d: arrivals not sorted (%d after %d)", name, lineNo, arrival, prev)
		}
		prev = arrival
		t.Reqs = append(t.Reqs, Request{Arrival: arrival, Offset: offset, Size: int32(size), Op: op})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: %s: %w", name, err)
	}
	return t, nil
}

func parseOp(s string) (Op, error) {
	switch strings.ToUpper(s) {
	case "R", "READ", "0":
		return Read, nil
	case "W", "WRITE", "1":
		return Write, nil
	}
	return Read, fmt.Errorf("unknown op %q", s)
}
