package trace

import (
	"fmt"
	"math"
	"math/rand"
	"time"
)

// SizeBucket is one component of a request-size mixture distribution.
type SizeBucket struct {
	Size   int32   // bytes; multiples of 4KB in practice
	Weight float64 // relative probability mass
}

// GenConfig parameterizes the synthetic trace generator. The defaults of the
// three Style constructors below are calibrated to the published
// characteristics of the production traces the paper uses.
type GenConfig struct {
	Name      string
	Seed      int64
	Duration  time.Duration
	MeanIOPS  float64 // long-run request rate
	ReadRatio float64 // fraction of reads

	// Burstiness drives a two-state Markov-modulated Poisson process:
	// 0 means a plain Poisson arrival stream, 1 means heavy on/off bursts.
	Burstiness float64
	// BurstFactor is the rate multiplier while in the burst state.
	BurstFactor float64
	// ConstantInterarrival replaces the Poisson process with a fixed
	// interarrival time (the Tencent trace behaviour noted in §7).
	ConstantInterarrival bool

	// Sequentiality is the probability that a request continues the previous
	// request's offset run instead of seeking randomly.
	Sequentiality float64
	WorkingSet    int64 // bytes of addressable space

	Sizes []SizeBucket // request size mixture

	// DriftPeriod, when non-zero, slowly rotates the workload mix over time
	// (read ratio and size mixture shift), used by the long-term retraining
	// experiment (§7) to induce input drift.
	DriftPeriod time.Duration

	// BurstSeed seeds the burst schedule separately from request sampling.
	// Two configs with the same BurstSeed, Burstiness, and Duration burst in
	// phase — modeling co-located tenants whose load peaks together, the
	// regime where blind rerouting overloads the other replica (§6.1). Zero
	// derives it from Seed (independent bursts).
	BurstSeed int64
}

// MSRStyle returns a generator config in the style of the MSR Cambridge
// volumes: small random I/Os, moderate read share, strong burstiness.
func MSRStyle(seed int64, d time.Duration) GenConfig {
	return GenConfig{
		Name: "msr", Seed: seed, Duration: d,
		MeanIOPS: 20000, ReadRatio: 0.55,
		Burstiness: 0.7, BurstFactor: 2.5,
		Sequentiality: 0.15, WorkingSet: 64 << 30,
		Sizes: []SizeBucket{
			{Size: 4 << 10, Weight: 0.52}, {Size: 8 << 10, Weight: 0.20},
			{Size: 16 << 10, Weight: 0.12}, {Size: 32 << 10, Weight: 0.08},
			{Size: 64 << 10, Weight: 0.05}, {Size: 128 << 10, Weight: 0.03},
		},
	}
}

// AlibabaStyle returns a generator config in the style of the Alibaba block
// traces: mixed sizes with a heavy tail up to 2MB, read-dominant, moderate
// burstiness.
func AlibabaStyle(seed int64, d time.Duration) GenConfig {
	return GenConfig{
		Name: "alibaba", Seed: seed, Duration: d,
		MeanIOPS: 2400, ReadRatio: 0.70,
		Burstiness: 0.5, BurstFactor: 2.5,
		Sequentiality: 0.30, WorkingSet: 256 << 30,
		Sizes: []SizeBucket{
			{Size: 4 << 10, Weight: 0.40}, {Size: 16 << 10, Weight: 0.22},
			{Size: 64 << 10, Weight: 0.18}, {Size: 128 << 10, Weight: 0.10},
			{Size: 512 << 10, Weight: 0.07}, {Size: 2 << 20, Weight: 0.03},
		},
	}
}

// TencentStyle returns a generator config in the style of the Tencent block
// traces: write-IOPS-dominant (writes ~2x reads, §7), near-constant
// interarrival times, small-to-medium sizes.
func TencentStyle(seed int64, d time.Duration) GenConfig {
	return GenConfig{
		Name: "tencent", Seed: seed, Duration: d,
		MeanIOPS: 12000, ReadRatio: 0.33,
		Burstiness: 0.1, BurstFactor: 2, ConstantInterarrival: true,
		Sequentiality: 0.45, WorkingSet: 128 << 30,
		Sizes: []SizeBucket{
			{Size: 4 << 10, Weight: 0.35}, {Size: 8 << 10, Weight: 0.30},
			{Size: 32 << 10, Weight: 0.20}, {Size: 128 << 10, Weight: 0.15},
		},
	}
}

// Styles returns one config per production-trace family at the given seed and
// duration, in a stable order.
func Styles(seed int64, d time.Duration) []GenConfig {
	return []GenConfig{MSRStyle(seed, d), AlibabaStyle(seed+1, d), TencentStyle(seed+2, d)}
}

// Generate produces a synthetic trace from the config. Generation is
// deterministic in cfg.Seed.
func Generate(cfg GenConfig) *Trace {
	rng := rand.New(rand.NewSource(cfg.Seed))
	if cfg.MeanIOPS <= 0 {
		cfg.MeanIOPS = 1000
	}
	if cfg.WorkingSet <= 0 {
		cfg.WorkingSet = 64 << 30
	}
	if len(cfg.Sizes) == 0 {
		cfg.Sizes = []SizeBucket{{4 << 10, 1}}
	}
	var totalW float64
	for _, b := range cfg.Sizes {
		totalW += b.Weight
	}

	t := &Trace{Name: fmt.Sprintf("%s-seed%d", cfg.Name, cfg.Seed)}
	end := int64(cfg.Duration)
	now := int64(0)

	// Two-state MMPP: calm rate and burst rate around the requested mean.
	calmRate := cfg.MeanIOPS
	burstRate := cfg.MeanIOPS
	if cfg.Burstiness > 0 && cfg.BurstFactor > 1 {
		// Split the mean so that time-averaged rate stays ~MeanIOPS when the
		// process spends Burstiness-weighted time bursting.
		burstRate = cfg.MeanIOPS * cfg.BurstFactor
		calmRate = cfg.MeanIOPS * math.Max(0.1, 1-cfg.Burstiness*0.8)
	}

	// The burst schedule comes from its own RNG so that traces sharing a
	// BurstSeed burst in phase regardless of their request sampling.
	burstSeed := cfg.BurstSeed
	if burstSeed == 0 {
		burstSeed = cfg.Seed*31 + 7
	}
	bursts := burstSchedule(burstSeed, cfg.Burstiness, end)
	burstIdx := 0

	seqOffset := alignDown(rng.Int63n(cfg.WorkingSet), 4<<10)

	for now < end {
		for burstIdx < len(bursts) && now >= bursts[burstIdx].end {
			burstIdx++
		}
		rate := calmRate
		if burstIdx < len(bursts) && now >= bursts[burstIdx].start {
			rate = burstRate
		}
		var gap int64
		if cfg.ConstantInterarrival {
			gap = int64(1e9 / rate)
			// Tiny jitter so events do not alias perfectly.
			gap += rng.Int63n(gap/16 + 1)
		} else {
			gap = int64(rng.ExpFloat64() / rate * 1e9)
		}
		if gap < 1 {
			gap = 1
		}
		now += gap
		if now >= end {
			break
		}

		readRatio, sizes := cfg.ReadRatio, cfg.Sizes
		sizeScale := 1.0
		if cfg.DriftPeriod > 0 {
			phase := math.Sin(2 * math.Pi * float64(now) / float64(cfg.DriftPeriod))
			readRatio = clamp01(readRatio + 0.25*phase)
			// Positive half-cycles grow the request sizes up to 2.25x: the
			// workload's working profile genuinely changes, which is what
			// erodes a train-once model (§7's input drift).
			if phase > 0 {
				sizeScale = 1 + 1.25*phase
			}
		}

		op := Write
		if rng.Float64() < readRatio {
			op = Read
		}
		size := pickSize(rng, sizes, totalW)
		if sizeScale != 1 {
			scaled := float64(size) * sizeScale
			if scaled > 2<<20 {
				scaled = 2 << 20
			}
			size = int32(scaled)
		}
		var off int64
		if rng.Float64() < cfg.Sequentiality {
			off = seqOffset
		} else {
			off = alignDown(rng.Int63n(cfg.WorkingSet), 4<<10)
		}
		seqOffset = off + int64(size)
		if seqOffset >= cfg.WorkingSet {
			seqOffset = 0
		}
		t.Reqs = append(t.Reqs, Request{Arrival: now, Offset: off, Size: size, Op: op})
	}
	return t
}

type burstWindow struct {
	start, end int64
}

// burstSchedule precomputes the on/off burst windows: short burst episodes
// (tens of ms) separated by longer calm stretches, with the burst share
// governed by burstiness.
func burstSchedule(seed int64, burstiness float64, horizon int64) []burstWindow {
	if burstiness <= 0 {
		return nil
	}
	rng := rand.New(rand.NewSource(seed))
	var out []burstWindow
	now := int64(0)
	for now < horizon {
		if rng.Float64() < burstiness*0.4 {
			dur := int64(5*time.Millisecond) + rng.Int63n(int64(60*time.Millisecond))
			out = append(out, burstWindow{start: now, end: now + dur})
			now += dur
		} else {
			now += int64(20*time.Millisecond) + rng.Int63n(int64(300*time.Millisecond))
		}
	}
	return out
}

func pickSize(rng *rand.Rand, sizes []SizeBucket, totalW float64) int32 {
	x := rng.Float64() * totalW
	for _, b := range sizes {
		x -= b.Weight
		if x <= 0 {
			return b.Size
		}
	}
	return sizes[len(sizes)-1].Size
}

func alignDown(v, a int64) int64 { return v - v%a }

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
