package trace

import "fmt"

// Augmentation is one of the paper's five data-augmentation functions
// (§6.1): 0.1x rerate, 0.5x rerate, 2x rerate, 2x resize, 4x resize.
type Augmentation struct {
	Name   string
	Rerate float64 // interarrival scale: >1 means higher IOPS (gaps shrink)
	Resize float64 // size multiplier
}

// StandardAugmentations returns the paper's five augmentation functions plus
// the identity, in a stable order.
func StandardAugmentations() []Augmentation {
	return []Augmentation{
		{Name: "identity", Rerate: 1, Resize: 1},
		{Name: "rerate-0.1x", Rerate: 0.1, Resize: 1},
		{Name: "rerate-0.5x", Rerate: 0.5, Resize: 1},
		{Name: "rerate-2x", Rerate: 2, Resize: 1},
		{Name: "resize-2x", Rerate: 1, Resize: 2},
		{Name: "resize-4x", Rerate: 1, Resize: 4},
	}
}

// Apply returns a new trace with the augmentation applied. Rerating by
// factor f divides every interarrival gap by f (f=2 doubles the IOPS);
// resizing multiplies every request size. Sizes are capped at 2MB, the
// largest request the paper considers.
func (a Augmentation) Apply(t *Trace) *Trace {
	const maxSize = 2 << 20
	out := &Trace{Name: fmt.Sprintf("%s+%s", t.Name, a.Name), Reqs: make([]Request, len(t.Reqs))}
	rerate := a.Rerate
	if rerate <= 0 {
		rerate = 1
	}
	resize := a.Resize
	if resize <= 0 {
		resize = 1
	}
	for i, r := range t.Reqs {
		r.Arrival = int64(float64(r.Arrival) / rerate)
		s := int64(float64(r.Size) * resize)
		if s > maxSize {
			s = maxSize
		}
		if s < 512 {
			s = 512
		}
		r.Size = int32(s)
		out.Reqs[i] = r
	}
	return out
}
