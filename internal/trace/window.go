package trace

import (
	"sort"
	"time"
)

// Criterion is one of the five trace-selection criteria from §6.1.
type Criterion int

const (
	// ByReadRatio selects windows by read/write ratio.
	ByReadRatio Criterion = iota
	// BySize selects windows by mean request size.
	BySize
	// ByIOPS selects windows by request rate.
	ByIOPS
	// ByRandomness selects windows by access randomness.
	ByRandomness
	// ByRank selects windows by the overall ranking score.
	ByRank
	numCriteria
)

// Criteria lists all selection criteria in a stable order.
func Criteria() []Criterion {
	return []Criterion{ByReadRatio, BySize, ByIOPS, ByRandomness, ByRank}
}

// String names the criterion.
func (c Criterion) String() string {
	switch c {
	case ByReadRatio:
		return "read-ratio"
	case BySize:
		return "size"
	case ByIOPS:
		return "iops"
	case ByRandomness:
		return "randomness"
	case ByRank:
		return "rank"
	}
	return "unknown"
}

func (c Criterion) value(s Stats) float64 {
	switch c {
	case ByReadRatio:
		return s.ReadRatio
	case BySize:
		return s.MeanSize
	case ByIOPS:
		return s.IOPS
	case ByRandomness:
		return s.Randomness
	default:
		return s.Rank()
	}
}

// SelectionPercentiles are the percentile picks the paper uses per criterion.
var SelectionPercentiles = []float64{10, 25, 50, 75, 90, 100}

// Windows chops the trace into consecutive windows of the given duration.
// Windows with fewer than minReqs requests are dropped.
func Windows(t *Trace, window time.Duration, minReqs int) []*Trace {
	var out []*Trace
	d := t.Duration()
	for from := time.Duration(0); from < d; from += window {
		w := t.Slice(from, from+window)
		if len(w.Reqs) >= minReqs {
			out = append(out, w)
		}
	}
	return out
}

// SelectWindows implements the paper's unbiased trace-selection procedure:
// for each of the five criteria, pick the window whose criterion value sits
// at each of the selection percentiles across all windows. Duplicate picks
// are deduplicated, so the result has at most
// len(Criteria())*len(SelectionPercentiles) windows.
func SelectWindows(t *Trace, window time.Duration, minReqs int) []*Trace {
	ws := Windows(t, window, minReqs)
	if len(ws) == 0 {
		return nil
	}
	stats := make([]Stats, len(ws))
	for i, w := range ws {
		stats[i] = Measure(w)
	}
	picked := map[int]bool{}
	var out []*Trace
	for _, c := range Criteria() {
		idx := make([]int, len(ws))
		for i := range idx {
			idx[i] = i
		}
		sort.Slice(idx, func(a, b int) bool { return c.value(stats[idx[a]]) < c.value(stats[idx[b]]) })
		for _, p := range SelectionPercentiles {
			pos := int(p / 100 * float64(len(idx)-1))
			w := idx[pos]
			if !picked[w] {
				picked[w] = true
				out = append(out, ws[w])
			}
		}
	}
	return out
}
