package trace

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadCSV checks the parser never panics and that everything it accepts
// round-trips through WriteCSV byte-for-byte (after normalizing ops to R/W).
func FuzzReadCSV(f *testing.F) {
	f.Add("arrival_ns,op,offset,size\n100,R,0,4096\n200,W,4096,8192\n")
	f.Add("0,r,0,512\n")
	f.Add("1,1,1,1\n")
	f.Add("")
	f.Add("arrival_ns,op,offset,size\n")
	f.Add("x,y,z\n")
	f.Add("9223372036854775807,R,0,2147483647\n")
	f.Fuzz(func(t *testing.T, in string) {
		tr, err := ReadCSV(strings.NewReader(in), "fuzz")
		if err != nil {
			return
		}
		// Accepted input: invariants must hold and it must round-trip.
		if verr := tr.Validate(); verr != nil {
			t.Fatalf("accepted trace fails validation: %v", verr)
		}
		var buf bytes.Buffer
		if werr := WriteCSV(&buf, tr); werr != nil {
			t.Fatalf("write: %v", werr)
		}
		back, rerr := ReadCSV(&buf, "roundtrip")
		if rerr != nil {
			t.Fatalf("reparse: %v", rerr)
		}
		if back.Len() != tr.Len() {
			t.Fatalf("round trip length %d vs %d", back.Len(), tr.Len())
		}
		for i := range tr.Reqs {
			if tr.Reqs[i] != back.Reqs[i] {
				t.Fatalf("round trip request %d differs", i)
			}
		}
	})
}
