// Package trace models block-level I/O traces and provides synthetic
// generators calibrated to the characteristics of the production traces the
// Heimdall paper evaluates on (MSR Cambridge, Alibaba, Tencent), plus the
// paper's five data-augmentation functions (§6.1).
//
// All timestamps are nanoseconds from the start of the trace. All sizes and
// offsets are bytes.
package trace

import (
	"errors"
	"fmt"
	"sort"
	"time"
)

// Op is the I/O request type.
type Op uint8

const (
	// Read is a block read request.
	Read Op = iota
	// Write is a block write request.
	Write
)

// String returns "R" for reads and "W" for writes.
func (o Op) String() string {
	if o == Read {
		return "R"
	}
	return "W"
}

// Request is a single block I/O request.
type Request struct {
	Arrival int64 // nanoseconds since trace start
	Offset  int64 // byte offset on the device
	Size    int32 // bytes
	Op      Op
}

// Pages returns the number of pageSize pages the request spans.
func (r Request) Pages(pageSize int) int {
	if pageSize <= 0 {
		return 1
	}
	n := (int(r.Size) + pageSize - 1) / pageSize
	if n < 1 {
		n = 1
	}
	return n
}

// Trace is an ordered sequence of requests. Requests must be sorted by
// arrival time; generators and transforms in this package maintain that
// invariant.
type Trace struct {
	Name string
	Reqs []Request
}

// Len returns the number of requests.
func (t *Trace) Len() int { return len(t.Reqs) }

// Duration returns the arrival span of the trace.
func (t *Trace) Duration() time.Duration {
	if len(t.Reqs) == 0 {
		return 0
	}
	return time.Duration(t.Reqs[len(t.Reqs)-1].Arrival - t.Reqs[0].Arrival)
}

// Validate checks the ordering and field invariants of the trace.
func (t *Trace) Validate() error {
	prev := int64(-1)
	for i, r := range t.Reqs {
		if r.Arrival < prev {
			return fmt.Errorf("trace %q: request %d arrival %d before previous %d", t.Name, i, r.Arrival, prev)
		}
		if r.Size <= 0 {
			return fmt.Errorf("trace %q: request %d has non-positive size %d", t.Name, i, r.Size)
		}
		if r.Offset < 0 {
			return fmt.Errorf("trace %q: request %d has negative offset", t.Name, i)
		}
		prev = r.Arrival
	}
	return nil
}

// Slice returns the sub-trace with arrivals in [from, to), rebased so the
// first request arrives at time 0.
func (t *Trace) Slice(from, to time.Duration) *Trace {
	lo := sort.Search(len(t.Reqs), func(i int) bool { return t.Reqs[i].Arrival >= int64(from) })
	hi := sort.Search(len(t.Reqs), func(i int) bool { return t.Reqs[i].Arrival >= int64(to) })
	out := &Trace{Name: fmt.Sprintf("%s[%v,%v)", t.Name, from, to)}
	if lo >= hi {
		return out
	}
	base := t.Reqs[lo].Arrival
	out.Reqs = make([]Request, hi-lo)
	for i, r := range t.Reqs[lo:hi] {
		r.Arrival -= base
		out.Reqs[i] = r
	}
	return out
}

// SplitHalf splits the trace 50:50 by request count, the train/test
// methodology used throughout the paper's evaluation (§6). The second half is
// rebased to start at time zero.
func (t *Trace) SplitHalf() (train, test *Trace) {
	mid := len(t.Reqs) / 2
	train = &Trace{Name: t.Name + "/train", Reqs: append([]Request(nil), t.Reqs[:mid]...)}
	test = &Trace{Name: t.Name + "/test"}
	if mid < len(t.Reqs) {
		base := t.Reqs[mid].Arrival
		test.Reqs = make([]Request, len(t.Reqs)-mid)
		for i, r := range t.Reqs[mid:] {
			r.Arrival -= base
			test.Reqs[i] = r
		}
	}
	return train, test
}

// Clone returns a deep copy of the trace.
func (t *Trace) Clone() *Trace {
	return &Trace{Name: t.Name, Reqs: append([]Request(nil), t.Reqs...)}
}

// ErrEmptyTrace is returned by operations that need at least one request.
var ErrEmptyTrace = errors.New("trace: empty trace")
