package trace

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func mkTrace(arrivals []int64) *Trace {
	t := &Trace{Name: "t"}
	for _, a := range arrivals {
		t.Reqs = append(t.Reqs, Request{Arrival: a, Size: 4096, Op: Read})
	}
	return t
}

func TestValidate(t *testing.T) {
	ok := mkTrace([]int64{0, 5, 5, 9})
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid trace rejected: %v", err)
	}
	bad := mkTrace([]int64{5, 3})
	if err := bad.Validate(); err == nil {
		t.Fatal("out-of-order trace accepted")
	}
	zero := &Trace{Reqs: []Request{{Arrival: 0, Size: 0}}}
	if err := zero.Validate(); err == nil {
		t.Fatal("zero-size request accepted")
	}
}

func TestPages(t *testing.T) {
	cases := []struct {
		size int32
		want int
	}{{1, 1}, {4096, 1}, {4097, 2}, {8192, 2}, {2 << 20, 512}}
	for _, c := range cases {
		r := Request{Size: c.size}
		if got := r.Pages(4096); got != c.want {
			t.Errorf("Pages(%d) = %d, want %d", c.size, got, c.want)
		}
	}
	if got := (Request{Size: 100}).Pages(0); got != 1 {
		t.Errorf("Pages with zero page size = %d, want 1", got)
	}
}

func TestSliceRebases(t *testing.T) {
	tr := mkTrace([]int64{0, 100, 200, 300, 400})
	s := tr.Slice(150*time.Nanosecond/time.Nanosecond, 350)
	// Slice takes durations; 150ns..350ns window picks arrivals 200, 300.
	if s.Len() != 2 {
		t.Fatalf("slice len = %d, want 2", s.Len())
	}
	if s.Reqs[0].Arrival != 0 || s.Reqs[1].Arrival != 100 {
		t.Fatalf("slice not rebased: %v", s.Reqs)
	}
}

func TestSplitHalf(t *testing.T) {
	tr := mkTrace([]int64{0, 10, 20, 30, 40, 50})
	a, b := tr.SplitHalf()
	if a.Len() != 3 || b.Len() != 3 {
		t.Fatalf("split sizes %d/%d, want 3/3", a.Len(), b.Len())
	}
	if b.Reqs[0].Arrival != 0 {
		t.Fatalf("second half not rebased: first arrival %d", b.Reqs[0].Arrival)
	}
	if b.Reqs[2].Arrival != 20 {
		t.Fatalf("second half arrival spacing wrong: %d", b.Reqs[2].Arrival)
	}
}

func TestPercentile(t *testing.T) {
	v := []float64{1, 2, 3, 4, 5}
	if got := Percentile(v, 0); got != 1 {
		t.Errorf("p0 = %v", got)
	}
	if got := Percentile(v, 100); got != 5 {
		t.Errorf("p100 = %v", got)
	}
	if got := Percentile(v, 50); got != 3 {
		t.Errorf("p50 = %v", got)
	}
	if got := Percentile(v, 25); got != 2 {
		t.Errorf("p25 = %v", got)
	}
	if got := Percentile(nil, 50); got != 0 {
		t.Errorf("empty percentile = %v", got)
	}
}

func TestPercentileProperties(t *testing.T) {
	f := func(raw []float64, p float64) bool {
		if len(raw) == 0 {
			return true
		}
		vals := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				vals = append(vals, v)
			}
		}
		if len(vals) == 0 {
			return true
		}
		sort.Float64s(vals)
		p = math.Mod(math.Abs(p), 100)
		got := Percentile(vals, p)
		return got >= vals[0] && got <= vals[len(vals)-1]
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMeasure(t *testing.T) {
	tr := &Trace{Reqs: []Request{
		{Arrival: 0, Offset: 0, Size: 4096, Op: Read},
		{Arrival: 5e8, Offset: 4096, Size: 4096, Op: Write},   // sequential
		{Arrival: 1e9, Offset: 9999360, Size: 8192, Op: Read}, // random
	}}
	s := Measure(tr)
	if s.Requests != 3 || s.Reads != 2 || s.Writes != 1 {
		t.Fatalf("counts wrong: %+v", s)
	}
	if math.Abs(s.ReadRatio-2.0/3) > 1e-9 {
		t.Errorf("read ratio %v", s.ReadRatio)
	}
	if math.Abs(s.Randomness-0.5) > 1e-9 {
		t.Errorf("randomness %v, want 0.5", s.Randomness)
	}
	if s.IOPS < 2.9 || s.IOPS > 3.1 {
		t.Errorf("IOPS %v, want ~3", s.IOPS)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := MSRStyle(7, time.Second)
	a := Generate(cfg)
	b := Generate(cfg)
	if a.Len() != b.Len() {
		t.Fatalf("lengths differ: %d vs %d", a.Len(), b.Len())
	}
	for i := range a.Reqs {
		if a.Reqs[i] != b.Reqs[i] {
			t.Fatalf("request %d differs", i)
		}
	}
}

func TestGenerateProperties(t *testing.T) {
	for _, cfg := range Styles(3, 2*time.Second) {
		tr := Generate(cfg)
		if err := tr.Validate(); err != nil {
			t.Fatalf("%s: %v", cfg.Name, err)
		}
		if tr.Len() == 0 {
			t.Fatalf("%s: empty trace", cfg.Name)
		}
		s := Measure(tr)
		if math.Abs(s.ReadRatio-cfg.ReadRatio) > 0.1 {
			t.Errorf("%s: read ratio %.2f, want ~%.2f", cfg.Name, s.ReadRatio, cfg.ReadRatio)
		}
		if s.IOPS < cfg.MeanIOPS*0.5 || s.IOPS > cfg.MeanIOPS*2 {
			t.Errorf("%s: IOPS %.0f, want ~%.0f", cfg.Name, s.IOPS, cfg.MeanIOPS)
		}
		for _, r := range tr.Reqs {
			if r.Offset%4096 != 0 {
				t.Fatalf("%s: unaligned offset %d", cfg.Name, r.Offset)
			}
			if r.Offset >= cfg.WorkingSet {
				t.Fatalf("%s: offset beyond working set", cfg.Name)
			}
		}
	}
}

func TestAugmentations(t *testing.T) {
	base := Generate(MSRStyle(11, time.Second))
	augs := StandardAugmentations()
	if len(augs) != 6 {
		t.Fatalf("want 6 augmentations (identity + paper's five), got %d", len(augs))
	}
	for _, a := range augs {
		out := a.Apply(base)
		if out.Len() != base.Len() {
			t.Fatalf("%s: length changed", a.Name)
		}
		if err := out.Validate(); err != nil {
			t.Fatalf("%s: %v", a.Name, err)
		}
	}
	// rerate 2x halves the duration.
	rerate := Augmentation{Name: "r", Rerate: 2, Resize: 1}.Apply(base)
	ratio := float64(rerate.Duration()) / float64(base.Duration())
	if math.Abs(ratio-0.5) > 0.01 {
		t.Errorf("rerate-2x duration ratio %.3f, want 0.5", ratio)
	}
	// resize 4x quadruples sizes up to the 2MB cap.
	resize := Augmentation{Name: "s", Rerate: 1, Resize: 4}.Apply(base)
	for i, r := range resize.Reqs {
		want := int64(base.Reqs[i].Size) * 4
		if want > 2<<20 {
			want = 2 << 20
		}
		if int64(r.Size) != want {
			t.Fatalf("resize: req %d size %d, want %d", i, r.Size, want)
		}
	}
}

func TestWindowsAndSelection(t *testing.T) {
	tr := Generate(MSRStyle(5, 4*time.Second))
	ws := Windows(tr, time.Second, 10)
	if len(ws) < 3 {
		t.Fatalf("expected >=3 windows, got %d", len(ws))
	}
	for _, w := range ws {
		if err := w.Validate(); err != nil {
			t.Fatal(err)
		}
		if w.Duration() > time.Second+time.Millisecond {
			t.Fatalf("window too long: %v", w.Duration())
		}
	}
	sel := SelectWindows(tr, time.Second, 10)
	if len(sel) == 0 {
		t.Fatal("selection empty")
	}
	if len(sel) > len(Criteria())*len(SelectionPercentiles) {
		t.Fatalf("selection too large: %d", len(sel))
	}
}

func TestCriterionValues(t *testing.T) {
	s := Stats{ReadRatio: 0.5, MeanSize: 100, IOPS: 10, Randomness: 0.3}
	for _, c := range Criteria() {
		if c.String() == "unknown" {
			t.Fatalf("criterion %d unnamed", c)
		}
		_ = c.value(s)
	}
	if ByRank.value(s) != s.Rank() {
		t.Error("rank criterion mismatch")
	}
}
