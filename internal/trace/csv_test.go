package trace

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestCSVRoundTrip(t *testing.T) {
	orig := Generate(MSRStyle(3, 500*time.Millisecond))
	var buf bytes.Buffer
	if err := WriteCSV(&buf, orig); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf, "roundtrip")
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != orig.Len() {
		t.Fatalf("length %d vs %d", back.Len(), orig.Len())
	}
	for i := range orig.Reqs {
		if orig.Reqs[i] != back.Reqs[i] {
			t.Fatalf("request %d differs: %+v vs %+v", i, orig.Reqs[i], back.Reqs[i])
		}
	}
}

func TestReadCSVFormats(t *testing.T) {
	in := "arrival_ns,op,offset,size\n100,R,0,4096\n200,w,4096,8192\n300,1,8192,4096\n"
	tr, err := ReadCSV(strings.NewReader(in), "t")
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 3 {
		t.Fatalf("len %d", tr.Len())
	}
	if tr.Reqs[0].Op != Read || tr.Reqs[1].Op != Write || tr.Reqs[2].Op != Write {
		t.Fatalf("ops %v %v %v", tr.Reqs[0].Op, tr.Reqs[1].Op, tr.Reqs[2].Op)
	}
	// Header optional.
	tr2, err := ReadCSV(strings.NewReader("0,R,0,512\n"), "nh")
	if err != nil || tr2.Len() != 1 {
		t.Fatalf("headerless parse: %v len %d", err, tr2.Len())
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := map[string]string{
		"bad fields":   "100,R,0\n",
		"bad op":       "100,X,0,4096\n",
		"bad arrival":  "abc,R,0,4096\n",
		"bad size":     "100,R,0,zero\n",
		"zero size":    "100,R,0,0\n",
		"out of order": "200,R,0,4096\n100,R,0,4096\n",
	}
	for name, in := range cases {
		if _, err := ReadCSV(strings.NewReader(in), name); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestReadCSVBlankLines(t *testing.T) {
	in := "arrival_ns,op,offset,size\n\n100,R,0,4096\n\n"
	tr, err := ReadCSV(strings.NewReader(in), "b")
	if err != nil || tr.Len() != 1 {
		t.Fatalf("blank lines: %v len %d", err, tr.Len())
	}
}
