package trace

import (
	"math"
	"sort"
	"time"
)

// Stats summarizes the workload characteristics the paper's trace-selection
// procedure measures (§6.1): read/write ratio, size, IOPS, randomness, and an
// overall ranking score.
type Stats struct {
	Requests   int
	Reads      int
	Writes     int
	ReadRatio  float64       // reads / requests
	MeanSize   float64       // bytes
	P50Size    float64       // bytes
	MaxSize    int32         // bytes
	IOPS       float64       // requests per second over the trace span
	ReadBW     float64       // bytes/sec of read payload
	WriteBW    float64       // bytes/sec of write payload
	Randomness float64       // fraction of requests not sequential to predecessor
	Duration   time.Duration // arrival span
}

// Rank is the "overall ranking" criterion from §6.1: a single scalar that
// grows with load intensity (IOPS, size, randomness, and write share all
// contribute, since all of them pressure the device).
func (s Stats) Rank() float64 {
	return s.IOPS * math.Log1p(s.MeanSize) * (1 + s.Randomness) * (1 + (1 - s.ReadRatio))
}

// Measure computes Stats over a trace.
func Measure(t *Trace) Stats {
	var s Stats
	s.Requests = len(t.Reqs)
	if s.Requests == 0 {
		return s
	}
	sizes := make([]float64, 0, len(t.Reqs))
	var sizeSum float64
	var nonSeq int
	var prevEnd int64 = -1
	for _, r := range t.Reqs {
		if r.Op == Read {
			s.Reads++
		} else {
			s.Writes++
		}
		sizeSum += float64(r.Size)
		sizes = append(sizes, float64(r.Size))
		if r.Size > s.MaxSize {
			s.MaxSize = r.Size
		}
		if prevEnd >= 0 && r.Offset != prevEnd {
			nonSeq++
		}
		prevEnd = r.Offset + int64(r.Size)
	}
	s.ReadRatio = float64(s.Reads) / float64(s.Requests)
	s.MeanSize = sizeSum / float64(s.Requests)
	sort.Float64s(sizes)
	s.P50Size = Percentile(sizes, 50)
	s.Duration = t.Duration()
	span := s.Duration.Seconds()
	if span <= 0 {
		span = 1e-9
	}
	s.IOPS = float64(s.Requests) / span
	var rb, wb float64
	for _, r := range t.Reqs {
		if r.Op == Read {
			rb += float64(r.Size)
		} else {
			wb += float64(r.Size)
		}
	}
	s.ReadBW = rb / span
	s.WriteBW = wb / span
	if s.Requests > 1 {
		s.Randomness = float64(nonSeq) / float64(s.Requests-1)
	}
	return s
}

// Percentile returns the p-th percentile (0..100) of sorted (ascending)
// values using linear interpolation. It returns 0 for empty input.
func Percentile(sorted []float64, p float64) float64 {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	if n == 1 {
		return sorted[0]
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[n-1]
	}
	pos := p / 100 * float64(n-1)
	lo := int(math.Floor(pos))
	hi := lo + 1
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}
