package iolog

import (
	"testing"
	"time"

	"repro/internal/ssd"
	"repro/internal/trace"
)

func TestCollectShapes(t *testing.T) {
	tr := trace.Generate(trace.MSRStyle(1, 500*time.Millisecond))
	dev := ssd.New(ssd.Samsung970Pro(), 1)
	recs := Collect(tr, dev)
	if len(recs) != tr.Len() {
		t.Fatalf("log %d records, trace %d", len(recs), tr.Len())
	}
	for i, r := range recs {
		if r.Latency <= 0 {
			t.Fatalf("record %d latency %d", i, r.Latency)
		}
		if r.Arrival != tr.Reqs[i].Arrival || r.Size != tr.Reqs[i].Size || r.Op != tr.Reqs[i].Op {
			t.Fatalf("record %d does not mirror request", i)
		}
	}
}

func TestReadsFilter(t *testing.T) {
	recs := []Record{
		{Op: trace.Read, Latency: 1},
		{Op: trace.Write, Latency: 2},
		{Op: trace.Read, Latency: 3},
	}
	rs := Reads(recs)
	if len(rs) != 2 || rs[0].Latency != 1 || rs[1].Latency != 3 {
		t.Fatalf("reads %v", rs)
	}
}

func TestThroughputMBps(t *testing.T) {
	r := Record{Size: 1 << 20, Latency: int64(time.Second)}
	if got := r.ThroughputMBps(); got != 1 {
		t.Fatalf("1MB in 1s = %v MB/s", got)
	}
	if got := (Record{Size: 4096, Latency: 0}).ThroughputMBps(); got != 0 {
		t.Fatalf("zero-latency throughput %v", got)
	}
}

func TestComplete(t *testing.T) {
	r := Record{Arrival: 100, Latency: 50}
	if r.Complete() != 150 {
		t.Fatalf("complete %d", r.Complete())
	}
}

func TestColumnExtractors(t *testing.T) {
	recs := []Record{
		{Latency: 10, Size: 1 << 20, Contended: true},
		{Latency: 20, Size: 1 << 20},
	}
	lats := Latencies(recs)
	if lats[0] != 10 || lats[1] != 20 {
		t.Fatalf("latencies %v", lats)
	}
	th := Throughputs(recs)
	if len(th) != 2 || th[0] <= th[1] {
		t.Fatalf("throughputs %v", th)
	}
	gt := GroundTruth(recs)
	if gt[0] != 1 || gt[1] != 0 {
		t.Fatalf("ground truth %v", gt)
	}
}
