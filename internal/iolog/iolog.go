// Package iolog defines the per-I/O training log the Heimdall pipeline
// consumes. A storage operator collects such a log (the paper suggests the
// last 15 minutes of I/Os, §2) by recording each request's static and runtime
// features together with its measured latency.
package iolog

import (
	"repro/internal/ssd"
	"repro/internal/trace"
)

// Record is one logged I/O.
type Record struct {
	Arrival  int64 // ns since log start
	Size     int32 // bytes
	Op       trace.Op
	Latency  int64 // ns, submission to completion
	QueueLen int   // device queue length observed at submission

	// Contended is simulator ground truth (the I/O overlapped an internal
	// busy period). It is never used for training — only for evaluating
	// labeling and model quality (Fig. 5a, Fig. 14).
	Contended bool
	CacheHit  bool
}

// Complete returns the completion timestamp.
func (r Record) Complete() int64 { return r.Arrival + r.Latency }

// ThroughputMBps returns the per-I/O throughput the labeling algorithm uses
// (§3.1): request size divided by its latency. Unlike raw latency it
// accounts for I/O size, which is why it detects the start and end of busy
// periods more sharply.
func (r Record) ThroughputMBps() float64 {
	if r.Latency <= 0 {
		return 0
	}
	return float64(r.Size) / (1 << 20) / (float64(r.Latency) / 1e9)
}

// Collect replays a trace through a single device with an always-admit
// policy and returns the resulting log. This is the logging phase that
// precedes training (§2, "Training").
func Collect(t *trace.Trace, dev *ssd.Device) []Record {
	out := make([]Record, 0, len(t.Reqs))
	for _, req := range t.Reqs {
		res := dev.Submit(req.Arrival, req.Op, req.Size)
		out = append(out, Record{
			Arrival:   req.Arrival,
			Size:      req.Size,
			Op:        req.Op,
			Latency:   res.Complete - req.Arrival,
			QueueLen:  res.QueueLen,
			Contended: res.Contended,
			CacheHit:  res.CacheHit,
		})
	}
	return out
}

// Reads returns only the read records, preserving order. Heimdall optimizes
// read latency: write tails are absorbed by the device write buffer (§2), so
// the model trains on and decides about reads.
func Reads(recs []Record) []Record {
	out := make([]Record, 0, len(recs))
	for _, r := range recs {
		if r.Op == trace.Read {
			out = append(out, r)
		}
	}
	return out
}

// Latencies extracts the latency column.
func Latencies(recs []Record) []int64 {
	out := make([]int64, len(recs))
	for i, r := range recs {
		out[i] = r.Latency
	}
	return out
}

// Throughputs extracts the per-I/O throughput column in MB/s.
func Throughputs(recs []Record) []float64 {
	out := make([]float64, len(recs))
	for i, r := range recs {
		out[i] = r.ThroughputMBps()
	}
	return out
}

// GroundTruth extracts the simulator's contention truth as 0/1 labels.
func GroundTruth(recs []Record) []int {
	out := make([]int, len(recs))
	for i, r := range recs {
		if r.Contended {
			out[i] = 1
		}
	}
	return out
}
