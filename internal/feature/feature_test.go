package feature

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/iolog"
	"repro/internal/trace"
)

func TestSpecWidthAndNames(t *testing.T) {
	spec := DefaultSpec()
	if spec.Width() != 11 {
		t.Fatalf("default spec width %d, want 11 (the §6.6 geometry)", spec.Width())
	}
	names := spec.Names()
	if len(names) != spec.Width() {
		t.Fatalf("names %d vs width %d", len(names), spec.Width())
	}
	if names[0] != "queueLen" || names[len(names)-1] != "ioSize" {
		t.Fatalf("unexpected layout: %v", names)
	}
	lin := Spec{Kinds: LinnOSSet, Depth: 4}
	if lin.Width() != 9 {
		t.Fatalf("linnos raw width %d, want 9", lin.Width())
	}
	all := Spec{Kinds: Selected | Timestamp | Offset, Depth: 3}
	if all.Width() != 13 {
		t.Fatalf("all width %d", all.Width())
	}
}

func TestWindowOrder(t *testing.T) {
	w := NewWindow(3)
	if w.Len() != 0 {
		t.Fatal("fresh window not empty")
	}
	if (w.At(0) != Hist{}) {
		t.Fatal("missing history must be zero")
	}
	w.Push(Hist{Latency: 1})
	w.Push(Hist{Latency: 2})
	w.Push(Hist{Latency: 3})
	w.Push(Hist{Latency: 4}) // evicts 1
	if w.Len() != 3 {
		t.Fatalf("len %d", w.Len())
	}
	if w.At(0).Latency != 4 || w.At(1).Latency != 3 || w.At(2).Latency != 2 {
		t.Fatalf("order wrong: %v %v %v", w.At(0), w.At(1), w.At(2))
	}
	if (w.At(5) != Hist{}) {
		t.Fatal("beyond-capacity index must be zero")
	}
}

func TestWindowZeroCap(t *testing.T) {
	w := NewWindow(0)
	w.Push(Hist{Latency: 9})
	if w.At(0).Latency != 9 {
		t.Fatal("capacity clamped window broken")
	}
}

func TestExtractHistoryIsCompletedBeforeArrival(t *testing.T) {
	// Three reads: the second arrives before the first completes, so its
	// history must be empty; the third arrives after both completed.
	recs := []iolog.Record{
		{Arrival: 0, Size: 4096, Op: trace.Read, Latency: 1000, QueueLen: 0},
		{Arrival: 500, Size: 4096, Op: trace.Read, Latency: 1000, QueueLen: 1},
		{Arrival: 5000, Size: 4096, Op: trace.Read, Latency: 1000, QueueLen: 0},
	}
	spec := Spec{Kinds: QueueLen | HistLatency, Depth: 2}
	rows := Extract(recs, spec)
	// Layout: [queueLen, histLat0, histLat1]
	if rows[0][1] != 0 || rows[0][2] != 0 {
		t.Fatalf("first row has phantom history: %v", rows[0])
	}
	if rows[1][1] != 0 {
		t.Fatalf("second row saw uncompleted I/O: %v", rows[1])
	}
	if rows[2][1] != 1000 || rows[2][2] != 1000 {
		t.Fatalf("third row history wrong: %v", rows[2])
	}
}

func TestExtractHistoryOrderedByCompletion(t *testing.T) {
	// First I/O completes after the second (big slow vs small fast):
	// at the third arrival the most recent completion is the FIRST I/O.
	recs := []iolog.Record{
		{Arrival: 0, Size: 4096, Op: trace.Read, Latency: 3000},
		{Arrival: 100, Size: 4096, Op: trace.Read, Latency: 500},
		{Arrival: 10_000, Size: 4096, Op: trace.Read, Latency: 500},
	}
	spec := Spec{Kinds: HistLatency, Depth: 2}
	rows := Extract(recs, spec)
	if rows[2][0] != 3000 || rows[2][1] != 500 {
		t.Fatalf("history not completion-ordered: %v", rows[2])
	}
}

func TestOnlineMatchesExtract(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var recs []iolog.Record
	now := int64(0)
	for i := 0; i < 200; i++ {
		recs = append(recs, iolog.Record{
			Arrival: now, Size: int32(4096 * (1 + rng.Intn(4))), Op: trace.Read,
			Latency: int64(50_000 + rng.Intn(100_000)), QueueLen: rng.Intn(5),
		})
		now += int64(10_000 + rng.Intn(100_000))
	}
	spec := DefaultSpec()
	rows := Extract(recs, spec)
	// Rebuild row 150 via the online path.
	win := NewWindow(spec.Depth)
	r150 := recs[150]
	for i := 0; i < 150; i++ {
		// completed before arrival of 150?
		if recs[i].Complete() <= r150.Arrival {
			continue
		}
	}
	// Push in completion order, as the tracker would.
	type comp struct {
		at int64
		h  Hist
	}
	var comps []comp
	for i := 0; i < 150; i++ {
		if recs[i].Complete() <= r150.Arrival {
			comps = append(comps, comp{recs[i].Complete(), Hist{
				Latency:  float64(recs[i].Latency),
				QueueLen: float64(recs[i].QueueLen),
				Thpt:     recs[i].ThroughputMBps(),
			}})
		}
	}
	for i := 1; i < len(comps); i++ {
		if comps[i].at < comps[i-1].at {
			comps[i], comps[i-1] = comps[i-1], comps[i]
			i = 0
		}
	}
	for _, c := range comps {
		win.Push(c.h)
	}
	online := spec.Online(r150.QueueLen, r150.Size, r150.Arrival, 0, win)
	for c := range online {
		if math.Abs(online[c]-rows[150][c]) > 1e-9 {
			t.Fatalf("column %d: online %v vs extract %v", c, online[c], rows[150][c])
		}
	}
}

func TestMinMaxScaler(t *testing.T) {
	rows := [][]float64{{0, 10}, {5, 20}, {10, 30}}
	s := NewScaler(ScaleMinMax)
	FitTransform(s, rows)
	if rows[0][0] != 0 || rows[2][0] != 1 || rows[1][0] != 0.5 {
		t.Fatalf("minmax rows %v", rows)
	}
	// Out-of-range deployment values clamp.
	out := s.Transform([]float64{-5, 100})
	if out[0] != 0 || out[1] != 1 {
		t.Fatalf("clamp failed: %v", out)
	}
}

func TestMinMaxConstantColumn(t *testing.T) {
	rows := [][]float64{{7, 1}, {7, 2}}
	s := NewScaler(ScaleMinMax)
	FitTransform(s, rows)
	if rows[0][0] != 0 || rows[1][0] != 0 {
		t.Fatalf("constant column not zeroed: %v", rows)
	}
}

func TestStandardScaler(t *testing.T) {
	rows := [][]float64{{1}, {2}, {3}, {4}, {5}}
	s := NewScaler(ScaleStandard)
	FitTransform(s, rows)
	var mean float64
	for _, r := range rows {
		mean += r[0]
	}
	mean /= 5
	if math.Abs(mean) > 1e-9 {
		t.Fatalf("standardized mean %v", mean)
	}
}

func TestRobustScaler(t *testing.T) {
	rows := [][]float64{{1}, {2}, {3}, {4}, {100}} // outlier
	s := NewScaler(ScaleRobust)
	FitTransform(s, rows)
	// Median element maps to 0.
	if math.Abs(rows[2][0]) > 1e-9 {
		t.Fatalf("median not zero: %v", rows)
	}
}

func TestDigitizeScaler(t *testing.T) {
	rows := [][]float64{{0}, {1}, {2}, {3}, {9}}
	s := NewScaler(ScaleDigitize)
	FitTransform(s, rows)
	for _, r := range rows {
		lv := r[0] * 9
		if math.Abs(lv-math.Round(lv)) > 1e-9 {
			t.Fatalf("digitized value %v not on a 1/9 level", r[0])
		}
	}
}

func TestNoneScaler(t *testing.T) {
	rows := [][]float64{{42, 7}}
	s := NewScaler(ScaleNone)
	FitTransform(s, rows)
	if rows[0][0] != 42 || rows[0][1] != 7 {
		t.Fatalf("none scaler mutated rows: %v", rows)
	}
}

func TestScalerKindsNamed(t *testing.T) {
	for _, k := range []ScalerKind{ScaleNone, ScaleMinMax, ScaleStandard, ScaleRobust, ScaleDigitize} {
		if k.String() == "unknown" {
			t.Fatalf("kind %d unnamed", k)
		}
		if NewScaler(k).Kind() != k {
			t.Fatalf("kind roundtrip failed for %v", k)
		}
	}
}

func TestMinMaxRangeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows := make([][]float64, 50)
		for i := range rows {
			rows[i] = []float64{rng.NormFloat64() * 1000, rng.Float64()}
		}
		s := NewScaler(ScaleMinMax)
		FitTransform(s, rows)
		for _, r := range rows {
			for _, v := range r {
				if v < 0 || v > 1 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestCorrelation(t *testing.T) {
	// Column 0 perfectly tracks the label; column 1 is constant.
	rows := [][]float64{{1, 5}, {0, 5}, {1, 5}, {0, 5}}
	labels := []int{1, 0, 1, 0}
	c := Correlation(rows, labels)
	if math.Abs(c[0]-1) > 1e-9 {
		t.Fatalf("informative column correlation %v", c[0])
	}
	if c[1] != 0 {
		t.Fatalf("constant column correlation %v", c[1])
	}
	if Correlation(nil, nil) != nil {
		t.Fatal("empty correlation not nil")
	}
}

func TestAllKindsCoverNames(t *testing.T) {
	ks := AllKinds()
	if len(ks) != 7 {
		t.Fatalf("kinds %d", len(ks))
	}
	for _, k := range ks {
		if k.Name == "" {
			t.Fatal("unnamed kind")
		}
	}
}

func TestOnlineIntoMatchesOnline(t *testing.T) {
	specs := []Spec{
		DefaultSpec(),
		{Kinds: LinnOSSet, Depth: 4},
		{Kinds: Selected | Timestamp | Offset, Depth: 2},
		{Kinds: IOSize, Depth: 1},
	}
	win := NewWindow(4)
	for i := 0; i < 6; i++ {
		win.Push(Hist{Latency: float64(100 + i), QueueLen: float64(i), Thpt: 0.5 * float64(i)})
	}
	buf := make([]float64, 0, 32)
	for _, spec := range specs {
		want := spec.Online(7, 4096, 123, 456, win)
		got := spec.OnlineInto(buf[:0], 7, 4096, 123, 456, win)
		if len(got) != len(want) || len(got) != spec.Width() {
			t.Fatalf("spec %+v: OnlineInto len %d, Online len %d, width %d", spec, len(got), len(want), spec.Width())
		}
		for c := range want {
			if got[c] != want[c] {
				t.Fatalf("spec %+v column %d: OnlineInto %v != Online %v", spec, c, got[c], want[c])
			}
		}
	}
}

func TestOnlineIntoZeroAlloc(t *testing.T) {
	spec := DefaultSpec()
	win := NewWindow(spec.Depth)
	win.Push(Hist{Latency: 120, QueueLen: 3, Thpt: 1.5})
	buf := make([]float64, 0, spec.Width())
	var sink []float64
	if a := testing.AllocsPerRun(200, func() {
		sink = spec.OnlineInto(buf[:0], 5, 8192, 0, 0, win)
	}); a != 0 {
		t.Fatalf("OnlineInto allocates %.1f per run with sufficient capacity", a)
	}
	_ = sink
}
