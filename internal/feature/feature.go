// Package feature implements the feature-engineering stage (§3.3): deriving
// runtime features from the raw request log, selecting them by correlation,
// varying the historical depth N, and scaling.
//
// The full Heimdall feature vector at historical depth N=3 is:
//
//	[ queueLen,
//	  histQueueLen[0..2], histLatency[0..2], histThroughput[0..2],
//	  ioSize ]
//
// — 11 features, giving the 3472 multiplications of §6.6 with the 128/16
// network. Historical features describe the last N *completed* I/Os at the
// moment the current I/O is submitted (most recent first).
package feature

import (
	"container/heap"
	"math"

	"repro/internal/iolog"
)

// Kind is a bit-set of feature groups.
type Kind uint16

const (
	// QueueLen is the device queue length at submission.
	QueueLen Kind = 1 << iota
	// HistQueueLen is the queue lengths observed by the last N completed I/Os.
	HistQueueLen
	// HistLatency is the latencies of the last N completed I/Os.
	HistLatency
	// HistThroughput is the per-I/O throughput of the last N completed I/Os.
	HistThroughput
	// IOSize is the request size in bytes.
	IOSize
	// Timestamp is the raw arrival time — a low-correlation feature the
	// selection stage removes (Fig. 7a).
	Timestamp
	// Offset is the raw block offset — likewise removed by selection.
	Offset
)

// Selected is the feature set Heimdall ships with after selection (§3.3).
const Selected = QueueLen | HistQueueLen | HistLatency | HistThroughput | IOSize

// LinnOSSet is the feature set LinnOS uses: no size, no throughput.
const LinnOSSet = QueueLen | HistQueueLen | HistLatency

// AllKinds lists every kind in a stable order with names, for reporting.
func AllKinds() []struct {
	Kind Kind
	Name string
} {
	return []struct {
		Kind Kind
		Name string
	}{
		{QueueLen, "queueLen"},
		{HistQueueLen, "histQueueLen"},
		{HistLatency, "histLatency"},
		{HistThroughput, "histThpt"},
		{IOSize, "ioSize"},
		{Timestamp, "timestamp"},
		{Offset, "offset"},
	}
}

// Spec configures extraction.
type Spec struct {
	Kinds Kind
	Depth int // historical depth N (the paper settles on 3, Fig. 7c)
}

// DefaultSpec returns Heimdall's production spec: the selected feature set at
// depth 3.
func DefaultSpec() Spec { return Spec{Kinds: Selected, Depth: 3} }

// Width returns the feature-vector length for the spec.
func (s Spec) Width() int {
	w := 0
	if s.Kinds&QueueLen != 0 {
		w++
	}
	if s.Kinds&HistQueueLen != 0 {
		w += s.Depth
	}
	if s.Kinds&HistLatency != 0 {
		w += s.Depth
	}
	if s.Kinds&HistThroughput != 0 {
		w += s.Depth
	}
	if s.Kinds&IOSize != 0 {
		w++
	}
	if s.Kinds&Timestamp != 0 {
		w++
	}
	if s.Kinds&Offset != 0 {
		w++
	}
	return w
}

// Names returns the column names of the feature matrix, matching Extract.
func (s Spec) Names() []string {
	var out []string
	if s.Kinds&QueueLen != 0 {
		out = append(out, "queueLen")
	}
	for d := 0; d < s.Depth; d++ {
		if s.Kinds&HistQueueLen != 0 {
			out = append(out, indexed("histQueueLen", d))
		}
	}
	for d := 0; d < s.Depth; d++ {
		if s.Kinds&HistLatency != 0 {
			out = append(out, indexed("histLatency", d))
		}
	}
	for d := 0; d < s.Depth; d++ {
		if s.Kinds&HistThroughput != 0 {
			out = append(out, indexed("histThpt", d))
		}
	}
	if s.Kinds&IOSize != 0 {
		out = append(out, "ioSize")
	}
	if s.Kinds&Timestamp != 0 {
		out = append(out, "timestamp")
	}
	if s.Kinds&Offset != 0 {
		out = append(out, "offset")
	}
	return out
}

func indexed(base string, i int) string {
	return base + "[" + string(rune('0'+i)) + "]"
}

// Hist is one completed I/O's contribution to history.
type Hist struct {
	Latency  float64 // ns
	QueueLen float64
	Thpt     float64 // MB/s
}

// Window is a fixed-size most-recent-first history of completed I/Os. The
// zero value with Cap set is ready to use.
type Window struct {
	buf  []Hist
	head int
	n    int
}

// NewWindow creates a history window holding the last cap completions.
func NewWindow(cap int) *Window {
	if cap < 1 {
		cap = 1
	}
	return &Window{buf: make([]Hist, cap)}
}

// Push records a completed I/O.
func (w *Window) Push(h Hist) {
	w.buf[w.head] = h
	w.head = (w.head + 1) % len(w.buf)
	if w.n < len(w.buf) {
		w.n++
	}
}

// At returns the i-th most recent completion (0 = newest). Missing history
// returns the zero Hist, matching a cold-start device.
func (w *Window) At(i int) Hist {
	if i >= w.n {
		return Hist{}
	}
	idx := (w.head - 1 - i + 2*len(w.buf)) % len(w.buf)
	return w.buf[idx]
}

// Len returns the number of completions recorded, up to the capacity.
func (w *Window) Len() int { return w.n }

// Reset empties the window without releasing its buffer, so a scratch
// window can replay a different history slice allocation-free.
func (w *Window) Reset() { w.head, w.n = 0, 0 }

// Online assembles a feature vector from live values, used at deployment
// time by the admission policy. The layout matches Extract exactly.
func (s Spec) Online(queueLen int, size int32, arrival, offset int64, hist *Window) []float64 {
	return s.OnlineInto(make([]float64, 0, s.Width()), queueLen, size, arrival, offset, hist)
}

// OnlineInto assembles the online feature row by appending to dst (usually
// dst[:0] of a reused buffer) and returns the extended slice — the
// zero-allocation counterpart of Online for the serving hot path. Once dst
// has capacity Width(), subsequent calls allocate nothing.
//
//heimdall:hotpath
func (s Spec) OnlineInto(dst []float64, queueLen int, size int32, arrival, offset int64, hist *Window) []float64 {
	if s.Kinds&QueueLen != 0 {
		dst = append(dst, float64(queueLen))
	}
	if s.Kinds&HistQueueLen != 0 {
		for d := 0; d < s.Depth; d++ {
			dst = append(dst, hist.At(d).QueueLen)
		}
	}
	if s.Kinds&HistLatency != 0 {
		for d := 0; d < s.Depth; d++ {
			dst = append(dst, hist.At(d).Latency)
		}
	}
	if s.Kinds&HistThroughput != 0 {
		for d := 0; d < s.Depth; d++ {
			dst = append(dst, hist.At(d).Thpt)
		}
	}
	if s.Kinds&IOSize != 0 {
		dst = append(dst, float64(size))
	}
	if s.Kinds&Timestamp != 0 {
		dst = append(dst, float64(arrival))
	}
	if s.Kinds&Offset != 0 {
		dst = append(dst, float64(offset))
	}
	return dst
}

// Extract builds the feature matrix for a log (one row per record, aligned
// with the input). History reflects only I/Os that completed before each
// record's arrival, exactly what a deployed model can observe.
func Extract(recs []iolog.Record, spec Spec) [][]float64 {
	rows := make([][]float64, len(recs))
	win := NewWindow(spec.Depth)
	var pending pendingHeap
	for i, r := range recs {
		for pending.Len() > 0 && pending[0].complete <= r.Arrival {
			p := heap.Pop(&pending).(pendingRec)
			win.Push(p.hist)
		}
		rows[i] = spec.Online(r.QueueLen, r.Size, r.Arrival, 0, win)
		heap.Push(&pending, pendingRec{
			complete: r.Complete(),
			hist: Hist{
				Latency:  float64(r.Latency),
				QueueLen: float64(r.QueueLen),
				Thpt:     r.ThroughputMBps(),
			},
		})
	}
	return rows
}

type pendingRec struct {
	complete int64
	hist     Hist
}

type pendingHeap []pendingRec

func (h pendingHeap) Len() int            { return len(h) }
func (h pendingHeap) Less(i, j int) bool  { return h[i].complete < h[j].complete }
func (h pendingHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *pendingHeap) Push(x interface{}) { *h = append(*h, x.(pendingRec)) }
func (h *pendingHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Correlation returns the absolute Pearson correlation of each feature
// column against the labels, used by the selection stage (Fig. 7a).
func Correlation(rows [][]float64, labels []int) []float64 {
	if len(rows) == 0 {
		return nil
	}
	w := len(rows[0])
	out := make([]float64, w)
	y := make([]float64, len(labels))
	for i, l := range labels {
		y[i] = float64(l)
	}
	my := mean(y)
	for c := 0; c < w; c++ {
		var mx float64
		for _, r := range rows {
			mx += r[c]
		}
		mx /= float64(len(rows))
		var cov, vx, vy float64
		for i, r := range rows {
			dx := r[c] - mx
			dy := y[i] - my
			cov += dx * dy
			vx += dx * dx
			vy += dy * dy
		}
		if vx <= 0 || vy <= 0 {
			out[c] = 0
			continue
		}
		out[c] = math.Abs(cov / math.Sqrt(vx*vy))
	}
	return out
}

func mean(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	if len(xs) == 0 {
		return 0
	}
	return s / float64(len(xs))
}
