package feature

import (
	"math"
	"sort"
)

// ScalerKind selects a feature-scaling method (Fig. 7d).
type ScalerKind int

const (
	// ScaleNone passes raw values through (the controlled lower bound of
	// Fig. 14 step 1).
	ScaleNone ScalerKind = iota
	// ScaleMinMax is min-max normalization: accurate and lightweight; the
	// method Heimdall ships with.
	ScaleMinMax
	// ScaleStandard is z-score standardization (standard scaler). Accurate
	// but needs the running mean/std of all history — too heavy for the
	// deployment path (§3.3).
	ScaleStandard
	// ScaleRobust is median/IQR scaling. Same memory objection.
	ScaleRobust
	// ScaleDigitize is LinnOS-style digitization: each value is quantized to
	// one of ten coarse levels. Designed for uniform per-page I/O; distorts
	// learning for variable-sized I/Os (§6.4 step 1).
	ScaleDigitize
)

// String names the scaler.
func (k ScalerKind) String() string {
	switch k {
	case ScaleNone:
		return "none"
	case ScaleMinMax:
		return "min-max"
	case ScaleStandard:
		return "standard"
	case ScaleRobust:
		return "robust"
	case ScaleDigitize:
		return "digitize"
	}
	return "unknown"
}

// Scaler normalizes feature vectors. Fit learns per-column statistics from
// the training matrix; Transform scales one row in place and returns it.
// Implementations are deterministic and safe to share read-only after Fit.
type Scaler interface {
	Fit(rows [][]float64)
	Transform(row []float64) []float64
	Kind() ScalerKind
	// State exports the fitted statistics for serialization; RestoreScaler
	// rebuilds the scaler from it.
	State() ScalerState
}

// ScalerState is the serializable form of a fitted scaler: two per-column
// statistic vectors whose meaning depends on the kind (min/max, mean/std,
// or median/IQR).
type ScalerState struct {
	Kind ScalerKind
	A, B []float64
}

// RestoreScaler rebuilds a fitted scaler from its exported state.
func RestoreScaler(st ScalerState) Scaler {
	switch st.Kind {
	case ScaleMinMax:
		return &minMaxScaler{min: st.A, max: st.B}
	case ScaleStandard:
		return &standardScaler{mean: st.A, std: st.B}
	case ScaleRobust:
		return &robustScaler{median: st.A, iqr: st.B}
	case ScaleDigitize:
		return &digitizeScaler{min: st.A, max: st.B}
	default:
		return noneScaler{}
	}
}

// NewScaler constructs the scaler for a kind.
func NewScaler(k ScalerKind) Scaler {
	switch k {
	case ScaleMinMax:
		return &minMaxScaler{}
	case ScaleStandard:
		return &standardScaler{}
	case ScaleRobust:
		return &robustScaler{}
	case ScaleDigitize:
		return &digitizeScaler{}
	default:
		return noneScaler{}
	}
}

// FitTransform fits the scaler and scales every row in place.
func FitTransform(s Scaler, rows [][]float64) [][]float64 {
	s.Fit(rows)
	for _, r := range rows {
		s.Transform(r)
	}
	return rows
}

type noneScaler struct{}

func (noneScaler) Fit([][]float64)                 {}
func (noneScaler) Transform(r []float64) []float64 { return r }
func (noneScaler) Kind() ScalerKind                { return ScaleNone }
func (noneScaler) State() ScalerState              { return ScalerState{Kind: ScaleNone} }

type minMaxScaler struct {
	min, max []float64
}

func (s *minMaxScaler) Kind() ScalerKind { return ScaleMinMax }

func (s *minMaxScaler) State() ScalerState {
	return ScalerState{Kind: ScaleMinMax, A: s.min, B: s.max}
}

func (s *minMaxScaler) Fit(rows [][]float64) {
	if len(rows) == 0 {
		return
	}
	w := len(rows[0])
	s.min = make([]float64, w)
	s.max = make([]float64, w)
	copy(s.min, rows[0])
	copy(s.max, rows[0])
	for _, r := range rows[1:] {
		for c, v := range r {
			if v < s.min[c] {
				s.min[c] = v
			}
			if v > s.max[c] {
				s.max[c] = v
			}
		}
	}
}

func (s *minMaxScaler) Transform(row []float64) []float64 {
	for c := range row {
		if c >= len(s.min) {
			break
		}
		span := s.max[c] - s.min[c]
		if span <= 0 {
			row[c] = 0
			continue
		}
		v := (row[c] - s.min[c]) / span
		// Deployment values can exceed the training range; clamp so the
		// network stays inside its trained regime.
		if v < 0 {
			v = 0
		} else if v > 1 {
			v = 1
		}
		row[c] = v
	}
	return row
}

type standardScaler struct {
	mean, std []float64
}

func (s *standardScaler) Kind() ScalerKind { return ScaleStandard }

func (s *standardScaler) State() ScalerState {
	return ScalerState{Kind: ScaleStandard, A: s.mean, B: s.std}
}

func (s *standardScaler) Fit(rows [][]float64) {
	if len(rows) == 0 {
		return
	}
	w := len(rows[0])
	s.mean = make([]float64, w)
	s.std = make([]float64, w)
	for _, r := range rows {
		for c, v := range r {
			s.mean[c] += v
		}
	}
	n := float64(len(rows))
	for c := range s.mean {
		s.mean[c] /= n
	}
	for _, r := range rows {
		for c, v := range r {
			d := v - s.mean[c]
			s.std[c] += d * d
		}
	}
	for c := range s.std {
		s.std[c] = math.Sqrt(s.std[c] / n)
		if s.std[c] == 0 {
			s.std[c] = 1
		}
	}
}

func (s *standardScaler) Transform(row []float64) []float64 {
	for c := range row {
		if c >= len(s.mean) {
			break
		}
		row[c] = (row[c] - s.mean[c]) / s.std[c]
	}
	return row
}

type robustScaler struct {
	median, iqr []float64
}

func (s *robustScaler) Kind() ScalerKind { return ScaleRobust }

func (s *robustScaler) State() ScalerState {
	return ScalerState{Kind: ScaleRobust, A: s.median, B: s.iqr}
}

func (s *robustScaler) Fit(rows [][]float64) {
	if len(rows) == 0 {
		return
	}
	w := len(rows[0])
	s.median = make([]float64, w)
	s.iqr = make([]float64, w)
	col := make([]float64, len(rows))
	for c := 0; c < w; c++ {
		for i, r := range rows {
			col[i] = r[c]
		}
		sort.Float64s(col)
		s.median[c] = quantile(col, 0.5)
		iqr := quantile(col, 0.75) - quantile(col, 0.25)
		if iqr == 0 {
			iqr = 1
		}
		s.iqr[c] = iqr
	}
}

func (s *robustScaler) Transform(row []float64) []float64 {
	for c := range row {
		if c >= len(s.median) {
			break
		}
		row[c] = (row[c] - s.median[c]) / s.iqr[c]
	}
	return row
}

type digitizeScaler struct {
	min, max []float64
}

func (s *digitizeScaler) Kind() ScalerKind { return ScaleDigitize }

func (s *digitizeScaler) State() ScalerState {
	return ScalerState{Kind: ScaleDigitize, A: s.min, B: s.max}
}

func (s *digitizeScaler) Fit(rows [][]float64) {
	mm := &minMaxScaler{}
	mm.Fit(rows)
	s.min, s.max = mm.min, mm.max
}

func (s *digitizeScaler) Transform(row []float64) []float64 {
	for c := range row {
		if c >= len(s.min) {
			break
		}
		span := s.max[c] - s.min[c]
		if span <= 0 {
			row[c] = 0
			continue
		}
		v := (row[c] - s.min[c]) / span
		if v < 0 {
			v = 0
		} else if v > 1 {
			v = 1
		}
		// Ten coarse levels: 0.0, 1/9, ..., 1.0.
		row[c] = math.Round(v*9) / 9
	}
	return row
}

func quantile(sorted []float64, q float64) float64 {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	pos := q * float64(n-1)
	lo := int(pos)
	if lo+1 >= n {
		return sorted[n-1]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}
