package replay

import (
	"strings"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/policy"
	"repro/internal/trace"
)

// brownoutOpts builds a run with a mid-trace ×8 brownout on device 0 and
// client-side timeouts armed.
func brownoutOpts(sel policy.Selector) Options {
	return Options{
		Devices:     twoDevices(),
		Seed:        21,
		Selector:    sel,
		Faults:      []*fault.Schedule{fault.NewSchedule().Brownout(500*time.Millisecond, 600*time.Millisecond, 8)},
		ReadTimeout: 2 * time.Millisecond,
	}
}

func TestBrownoutTimeoutsRetryAndConserveReads(t *testing.T) {
	tr := smallTrace(21)
	res := Run([]*trace.Trace{tr}, brownoutOpts(nil))
	if res.TimedOut == 0 {
		t.Fatal("an 8x brownout with a 2ms timeout produced no timeouts")
	}
	if res.Retries == 0 {
		t.Fatal("timeouts must trigger retries on the alternate replica")
	}
	if res.Failed != 0 {
		t.Fatalf("healthy peer available, yet %d reads failed", res.Failed)
	}
	if res.ReadLat.N != res.Reads {
		t.Fatalf("accounting: %d latency samples for %d reads — reads vanished",
			res.ReadLat.N, res.Reads)
	}
}

func TestFaultReplayDeterministic(t *testing.T) {
	tr := smallTrace(22)
	run := func() Result {
		opts := brownoutOpts(policy.NewRandom(5))
		opts.Faults = append(opts.Faults, fault.NewSchedule().ReadErrors(200*time.Millisecond, 300*time.Millisecond, 0.3))
		opts.Seed = 22
		return Run([]*trace.Trace{tr.Clone()}, opts)
	}
	a, b := run(), run()
	if a.Reads != b.Reads || a.Reroutes != b.Reroutes || a.Hedges != b.Hedges ||
		a.Retries != b.Retries || a.TimedOut != b.TimedOut || a.Failed != b.Failed {
		t.Fatalf("counter determinism broke:\n%+v\n%+v", a, b)
	}
	if a.ReadLat.Mean != b.ReadLat.Mean || a.ReadLat.P999 != b.ReadLat.P999 {
		t.Fatalf("latency determinism broke: %v/%v vs %v/%v",
			a.ReadLat.Mean, a.ReadLat.P999, b.ReadLat.Mean, b.ReadLat.P999)
	}
	if a.Retries == 0 || a.TimedOut == 0 {
		t.Fatalf("fault scenario exercised no retry machinery: %+v", a)
	}
}

func TestReadErrorsCompleteOnPeer(t *testing.T) {
	// Certain read failure on device 0 for a stretch: every affected read
	// must complete on device 1 via retry, none may vanish or fail.
	tr := smallTrace(23)
	res := Run([]*trace.Trace{tr}, Options{
		Devices: twoDevices(),
		Seed:    23,
		Faults:  []*fault.Schedule{fault.NewSchedule().ReadErrors(300*time.Millisecond, 500*time.Millisecond, 1)},
	})
	if res.Retries == 0 {
		t.Fatal("guaranteed read errors produced no retries")
	}
	if res.Failed != 0 {
		t.Fatalf("peer was healthy, yet %d reads failed", res.Failed)
	}
	if res.ReadLat.N != res.Reads {
		t.Fatalf("reads vanished: %d samples for %d reads", res.ReadLat.N, res.Reads)
	}
}

func TestBothReplicasOfflineFailsLoudly(t *testing.T) {
	tr := smallTrace(24)
	window := func() *fault.Schedule {
		return fault.NewSchedule().Offline(400*time.Millisecond, 200*time.Millisecond)
	}
	res := Run([]*trace.Trace{tr}, Options{
		Devices: twoDevices(),
		Seed:    24,
		Faults:  []*fault.Schedule{window(), window()},
	})
	if res.Failed == 0 {
		t.Fatal("a full outage of every replica must fail reads")
	}
	if res.ReadLat.N != res.Reads {
		t.Fatalf("failed reads must still be accounted: %d samples for %d reads",
			res.ReadLat.N, res.Reads)
	}
	// After the outage the cluster recovers: some reads succeed, so failures
	// are bounded by the outage window, not the whole trace.
	if res.Failed >= res.Reads/2 {
		t.Fatalf("failures (%d of %d) exceed the outage window", res.Failed, res.Reads)
	}
}

func TestHedgeIntoOfflineReplicaFallsBackToPrimary(t *testing.T) {
	// Device 1 is offline for the whole trace; hedging to it must not lose
	// reads — the primary attempt resolves them.
	tr := smallTrace(25)
	res := Run([]*trace.Trace{tr, {}}, Options{ // empty second trace: all primaries on 0
		Devices:  twoDevices(),
		Seed:     25,
		Selector: policy.NewHedging(time.Millisecond),
		Faults:   []*fault.Schedule{nil, fault.NewSchedule().Offline(0, time.Hour)},
	})
	if res.ReadLat.N != res.Reads {
		t.Fatalf("hedging into an offline replica lost reads: %d vs %d", res.ReadLat.N, res.Reads)
	}
	if res.Hedges != 0 {
		t.Fatalf("hedges to an offline device cannot fire, counted %d", res.Hedges)
	}
}

func TestShortModelsFailLoudlyAtRunSetup(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("replay accepted a heimdall policy with no models")
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, "heimdall") {
			t.Fatalf("panic %v is not the loud configuration error", r)
		}
	}()
	Run([]*trace.Trace{smallTrace(26)}, Options{
		Devices:  twoDevices(),
		Seed:     26,
		Selector: &policy.Heimdall{}, // zero models for two replicas
	})
}
