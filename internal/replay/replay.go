// Package replay is the user-level storage evaluation harness (§6.1): it
// replays block traces against a replicated set of simulated SSDs, routing
// each read through an admission policy, and reports the resulting read
// latency distribution.
//
// The replayer is a discrete-event simulation: submissions, hedge timeouts,
// and completions are processed in global time order, so per-device
// queueing, rerouting load, and hedging side effects are all modeled
// faithfully. Writes are replicated to every device (keeping GC pressure
// realistic) and are not subject to admission (§2: write tails are absorbed
// by device buffers).
package replay

import (
	"time"

	"repro/internal/fault"
	"repro/internal/feature"
	"repro/internal/iolog"
	"repro/internal/metrics"
	"repro/internal/policy"
	"repro/internal/ssd"
	"repro/internal/trace"
)

// Options configures a replay run.
type Options struct {
	Devices []ssd.Config
	// Seed drives device behaviour; device i uses Seed+i.
	Seed int64
	// Selector routes reads. nil means Baseline.
	Selector policy.Selector
	// HistDepth is the per-device completed-read history kept for ML
	// features (default 4 — enough for both LinnOS and Heimdall).
	HistDepth int
	// EWMAAlpha smooths the observed latency/service estimates (default 0.1).
	EWMAAlpha float64
	// ClientThreads models the paper's concurrent submission threads (§6.1,
	// N>8): each client thread only observes its own completions, so the
	// client-side EWMAs (which heuristics like C3 consult) update on a
	// 1-in-N sample of responses. Backend-side ML policies are unaffected —
	// they read the device's own state. Default 8.
	ClientThreads int

	// Faults optionally attaches a fault schedule to device i; a shorter
	// (or nil) slice leaves the remaining devices fault-free. Injection is
	// deterministic in Seed.
	Faults []*fault.Schedule
	// ReadTimeout, when positive, makes the client abandon a read still
	// outstanding after this long and retry it on the alternate replica.
	ReadTimeout time.Duration
	// MaxRetries bounds how often one read is re-submitted after a replica
	// failure or timeout (default 2; negative disables retries). A read
	// whose final attempt fails is counted in Result.Failed instead of
	// silently vanishing.
	MaxRetries int
	// RetryBackoff is the delay before the first failure-triggered retry;
	// it doubles on each subsequent attempt (default 200µs). Timeout-
	// triggered retries fire at the timeout itself — the client has already
	// waited that long.
	RetryBackoff time.Duration
}

// Result summarizes one replay.
type Result struct {
	Policy     string
	ReadLat    metrics.LatencyStats
	Reads      int
	Writes     int
	Reroutes   int // reads sent somewhere other than their primary
	Hedges     int // backup requests actually fired
	Inferences int // total model invocations
	Retries    int // re-submissions after a replica failure or timeout
	TimedOut   int // attempts abandoned at ReadTimeout
	Failed     int // reads that completed on no replica (retries exhausted)

	// Ground-truth instrumentation (simulator-only; a real deployment
	// cannot observe these): how many reads arrived while their primary was
	// inside an internal busy period, and how many of those the policy
	// routed away.
	BusyPrimary int
	BusyAvoided int
}

type eventKind uint8

const (
	evSubmit eventKind = iota
	evHedge
	evRetry
)

type event struct {
	at   int64
	seq  int64 // FIFO tie-break
	kind eventKind

	// submit
	op      trace.Op
	size    int32
	primary int

	// hedge / retry
	origComplete int64
	submitAt     int64
	target       int
	attempt      int // retry: 1-based attempt index
}

// eventHeap is a typed binary min-heap ordered by (at, seq). The sift
// helpers replace container/heap's interface{}-boxed Push/Pop — the event
// loop is the replayer's hot path and boxing each event allocated once per
// push. The sift order matches container/heap exactly, so replay results
// are unchanged.
type eventHeap []event

func (h eventHeap) Len() int { return len(h) }

//heimdall:hotpath
func (h eventHeap) less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

//heimdall:hotpath
func (h eventHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
}

//heimdall:hotpath
func (h eventHeap) down(i int) {
	n := len(h)
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		m := l
		if r := l + 1; r < n && h.less(r, l) {
			m = r
		}
		if !h.less(m, i) {
			break
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
}

// init heapifies an unordered backing slice (container/heap.Init).
//
//heimdall:hotpath
func (h eventHeap) init() {
	for i := len(h)/2 - 1; i >= 0; i-- {
		h.down(i)
	}
}

//heimdall:hotpath
func (h *eventHeap) push(e event) {
	*h = append(*h, e)
	h.up(len(*h) - 1)
}

//heimdall:hotpath
func (h *eventHeap) pop() event {
	old := *h
	n := len(old) - 1
	old[0], old[n] = old[n], old[0]
	top := old[n]
	*h = old[:n]
	(*h).down(0)
	return top
}

// tracker is the client-side observable state of one device.
type tracker struct {
	dev *ssd.Device
	inj *fault.Injector
	//heimdall:owner advance,view,Run
	hist *feature.Window
	//heimdall:owner advance,view,record
	pending completions
	//heimdall:owner advance,view,Run
	ewmaLat float64
	//heimdall:owner advance,view,Run
	ewmaSvc float64
	// ewmaQ is the EWMA of queue-depth feedback (C3's smoothed q̄s).
	//
	//heimdall:owner advance,view
	ewmaQ float64
	//heimdall:owner advance,Run
	alpha float64
	// threads is the client thread count: EWMAs sample 1-in-threads
	// completions.
	//
	//heimdall:owner advance,Run
	threads int
	//heimdall:owner advance
	seen int
}

type completion struct {
	at       int64
	latency  float64
	queueLen float64
	thpt     float64
	service  float64
}

// completions is a typed min-heap by completion time (same unboxed sift
// helpers as eventHeap).
type completions []completion

func (h completions) Len() int { return len(h) }

//heimdall:hotpath
func (h completions) less(i, j int) bool { return h[i].at < h[j].at }

//heimdall:hotpath
func (h completions) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
}

//heimdall:hotpath
func (h completions) down(i int) {
	n := len(h)
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		m := l
		if r := l + 1; r < n && h.less(r, l) {
			m = r
		}
		if !h.less(m, i) {
			break
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
}

//heimdall:hotpath
func (h *completions) push(c completion) {
	*h = append(*h, c)
	h.up(len(*h) - 1)
}

//heimdall:hotpath
func (h *completions) pop() completion {
	old := *h
	n := len(old) - 1
	old[0], old[n] = old[n], old[0]
	top := old[n]
	*h = old[:n]
	(*h).down(0)
	return top
}

func (t *tracker) advance(now int64) {
	for t.pending.Len() > 0 && t.pending[0].at <= now {
		c := t.pending.pop()
		// The backend-side history window sees every completion (it lives on
		// the storage node).
		t.hist.Push(feature.Hist{Latency: c.latency, QueueLen: c.queueLen, Thpt: c.thpt})
		// The client-side estimates only see this thread's share of the
		// responses.
		t.seen++
		if t.threads > 1 && t.seen%t.threads != 0 {
			continue
		}
		t.ewmaLat = t.ewmaLat*(1-t.alpha) + c.latency*t.alpha
		t.ewmaSvc = t.ewmaSvc*(1-t.alpha) + c.service*t.alpha
		// Queue feedback is piggybacked raw on every response, so it tracks
		// faster than the latency estimates (C3 piggybacks fresh samples).
		qa := 3 * t.alpha
		if qa > 0.5 {
			qa = 0.5
		}
		t.ewmaQ = t.ewmaQ*(1-qa) + c.queueLen*qa
	}
}

func (t *tracker) view(now int64) policy.View {
	return policy.View{
		QueueLen:         t.dev.QueueLen(now),
		FeedbackQueueLen: t.ewmaQ,
		Hist:             t.hist,
		EWMALatency:      t.ewmaLat,
		EWMAService:      t.ewmaSvc,
		Outstanding:      t.pending.Len(),
	}
}

func (t *tracker) record(submitAt int64, size int32, res ssd.Result) {
	lat := float64(res.Complete - submitAt)
	thpt := 0.0
	if lat > 0 {
		thpt = float64(size) / (1 << 20) / (lat / 1e9)
	}
	t.pending.push(completion{
		at:       res.Complete,
		latency:  lat,
		queueLen: float64(res.QueueLen),
		thpt:     thpt,
		service:  float64(res.Complete - res.Start),
	})
}

// submitRead pushes one read through the device's fault injector. On success
// the completion is recorded into the client-observable history; a failed
// read never completes, so the client learns nothing from it.
func (t *tracker) submitRead(now int64, size int32) (ssd.Result, error) {
	r, err := t.inj.Submit(now, trace.Read, size)
	if err != nil {
		return r, err
	}
	t.record(now, size, r)
	return r, nil
}

// Run replays the traces. traces[i] targets device i as its primary when the
// counts match; a single trace over multiple devices is placed by offset
// hash. Panics if no devices are configured.
func Run(traces []*trace.Trace, opts Options) Result {
	if len(opts.Devices) == 0 {
		panic("replay: no devices")
	}
	sel := opts.Selector
	if sel == nil {
		sel = policy.Baseline{}
	}
	if v, ok := sel.(policy.Validator); ok {
		// Fail loudly at configuration time: a per-replica policy with too
		// few (or nil) models would otherwise surface as an index panic or
		// NaN routing deep inside the event loop.
		if err := v.Validate(len(opts.Devices)); err != nil {
			panic("replay: " + err.Error())
		}
	}
	histDepth := opts.HistDepth
	if histDepth == 0 {
		histDepth = 4
	}
	alpha := opts.EWMAAlpha
	if alpha == 0 {
		alpha = 0.1
	}
	threads := opts.ClientThreads
	if threads == 0 {
		threads = 8
	}
	maxRetries := opts.MaxRetries
	if maxRetries == 0 {
		maxRetries = 2
	} else if maxRetries < 0 {
		maxRetries = 0
	}
	backoff := int64(opts.RetryBackoff)
	if backoff <= 0 {
		backoff = int64(200 * time.Microsecond)
	}
	timeout := int64(opts.ReadTimeout)

	n := len(opts.Devices)
	trackers := make([]*tracker, n)
	for i, cfg := range opts.Devices {
		dev := ssd.New(cfg, opts.Seed+int64(i))
		var sched *fault.Schedule
		if i < len(opts.Faults) {
			sched = opts.Faults[i]
		}
		trackers[i] = &tracker{
			dev: dev,
			// The injector's PRNG stream is separate from the device's, so a
			// fault-free schedule replays bit-for-bit like the seed state.
			inj:     fault.NewInjector(dev, sched, opts.Seed+int64(i)*7919+13),
			hist:    feature.NewWindow(histDepth),
			alpha:   alpha,
			threads: threads,
			ewmaLat: 2e5, // 200µs optimistic prior until observations arrive
			ewmaSvc: 1e5,
		}
	}

	var seq int64
	nReads, nReqs := 0, 0
	for _, t := range traces {
		nReqs += len(t.Reqs)
		for _, r := range t.Reqs {
			if r.Op == trace.Read {
				nReads++
			}
		}
	}
	events := make(eventHeap, 0, nReqs)
	for ti, t := range traces {
		for _, r := range t.Reqs {
			primary := ti % n
			if len(traces) != n {
				primary = int(r.Offset/4096) % n
			}
			events = append(events, event{
				at: r.Arrival, seq: seq, kind: evSubmit,
				op: r.Op, size: r.Size, primary: primary,
			})
			seq++
		}
	}
	events.init()

	res := Result{Policy: sel.Name()}
	// Every read contributes exactly one latency sample (completed, hedged,
	// or failed), so the trace's read count is the exact final size.
	readLats := make([]int64, 0, nReads)
	views := make([]policy.View, n)

	for events.Len() > 0 {
		ev := events.pop()
		now := ev.at
		for _, tr := range trackers {
			tr.advance(now)
		}

		switch ev.kind {
		case evSubmit:
			if ev.op == trace.Write {
				res.Writes++
				// Replicate writes to every device; a write to an offline
				// replica is dropped (degraded replication), matching what a
				// real replication layer queues for later recovery.
				for _, tr := range trackers {
					_, _ = tr.inj.Submit(now, trace.Write, ev.size) // offline-replica error = dropped write
				}
				continue
			}
			res.Reads++
			for i, tr := range trackers {
				views[i] = tr.view(now)
			}
			d := sel.Decide(now, ev.size, ev.primary, views)
			res.Inferences += d.Inferences
			if d.Target != ev.primary {
				res.Reroutes++
			}
			if trackers[ev.primary].dev.InBusy(now) {
				res.BusyPrimary++
				if d.Target != ev.primary {
					res.BusyAvoided++
				}
			}
			r, err := trackers[d.Target].submitRead(now, ev.size)
			switch {
			case err != nil && maxRetries > 0:
				// The replica failed the read outright: retry on the
				// alternate replica after the initial backoff.
				seq++
				events.push(event{
					at: now + backoff, seq: seq, kind: evRetry,
					size: ev.size, submitAt: now,
					target: altReplica(d.Target, n), attempt: 1,
				})
			case err != nil:
				// Retries disabled: the read is lost, but it still accounts
				// for exactly one (degenerate) latency sample.
				res.Failed++
				readLats = append(readLats, 1)
			case d.HedgeAfter > 0 && r.Complete > now+int64(d.HedgeAfter):
				// The request will still be outstanding at the timeout:
				// schedule the backup.
				seq++
				events.push(event{
					at: now + int64(d.HedgeAfter), seq: seq, kind: evHedge,
					size: ev.size, origComplete: r.Complete,
					submitAt: now, target: d.HedgeTarget,
				})
			case timeout > 0 && r.Complete-now > timeout && maxRetries > 0:
				// The client will give up at the timeout and go to the
				// alternate replica (the device still completes the
				// abandoned request — that work is wasted, as in reality).
				res.TimedOut++
				seq++
				events.push(event{
					at: now + timeout, seq: seq, kind: evRetry,
					size: ev.size, submitAt: now,
					target: altReplica(d.Target, n), attempt: 1,
				})
			default:
				readLats = append(readLats, r.Complete-now)
			}

		case evHedge:
			b, err := trackers[ev.target].submitRead(now, ev.size)
			if err != nil {
				// The backup replica refused: the primary attempt is still
				// in flight and resolves the read by itself.
				readLats = append(readLats, ev.origComplete-ev.submitAt)
				continue
			}
			res.Hedges++
			done := ev.origComplete
			if b.Complete < done {
				done = b.Complete
			}
			readLats = append(readLats, done-ev.submitAt)

		case evRetry:
			res.Retries++
			r, err := trackers[ev.target].submitRead(now, ev.size)
			switch {
			case err == nil && (timeout == 0 || r.Complete-now <= timeout || ev.attempt >= maxRetries):
				// Completed (on the final attempt even a slow completion is
				// accepted: waiting beats failing).
				readLats = append(readLats, r.Complete-ev.submitAt)
			case err == nil:
				// Timed out again; attempts remain.
				res.TimedOut++
				seq++
				events.push(event{
					at: now + timeout, seq: seq, kind: evRetry,
					size: ev.size, submitAt: ev.submitAt,
					target: altReplica(ev.target, n), attempt: ev.attempt + 1,
				})
			case ev.attempt < maxRetries:
				// Failed again; exponential backoff to the other replica.
				seq++
				events.push(event{
					at: now + backoff<<ev.attempt, seq: seq, kind: evRetry,
					size: ev.size, submitAt: ev.submitAt,
					target: altReplica(ev.target, n), attempt: ev.attempt + 1,
				})
			default:
				res.Failed++
				lat := now - ev.submitAt
				if lat < 1 {
					lat = 1
				}
				readLats = append(readLats, lat)
			}
		}
	}

	res.ReadLat = metrics.Latencies(readLats)
	return res
}

// altReplica returns the retry target after a failure on replica i: the next
// replica round-robin (i itself for a single-device setup).
func altReplica(i, n int) int {
	if n <= 1 {
		return i
	}
	return (i + 1) % n
}

// CollectLog replays a trace against a single fresh device with always-admit
// and returns the training log plus the device (for ground-truth queries).
func CollectLog(t *trace.Trace, cfg ssd.Config, seed int64) (*ssd.Device, []iolog.Record) {
	dev := ssd.New(cfg, seed)
	return dev, iolog.Collect(t, dev)
}
