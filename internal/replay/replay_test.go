package replay

import (
	"testing"
	"time"

	"repro/internal/policy"
	"repro/internal/ssd"
	"repro/internal/trace"
)

func smallTrace(seed int64) *trace.Trace {
	cfg := trace.MSRStyle(seed, 2*time.Second)
	cfg.MeanIOPS = 8000
	return trace.Generate(cfg)
}

func twoDevices() []ssd.Config {
	return []ssd.Config{ssd.Samsung970Pro(), ssd.Samsung970Pro()}
}

func TestBaselineConservation(t *testing.T) {
	tr := smallTrace(1)
	st := trace.Measure(tr)
	res := Run([]*trace.Trace{tr}, Options{Devices: twoDevices(), Seed: 1})
	if res.Reads != st.Reads || res.Writes != st.Writes {
		t.Fatalf("reads/writes %d/%d, want %d/%d", res.Reads, res.Writes, st.Reads, st.Writes)
	}
	if res.ReadLat.N != st.Reads {
		t.Fatalf("latency samples %d, want %d (every read measured exactly once)", res.ReadLat.N, st.Reads)
	}
	if res.Reroutes != 0 || res.Hedges != 0 || res.Inferences != 0 {
		t.Fatalf("baseline side effects: %+v", res)
	}
	if res.Policy != "baseline" {
		t.Fatalf("policy %q", res.Policy)
	}
}

func TestTwoTracesPrimaryPlacement(t *testing.T) {
	a, b := smallTrace(2), smallTrace(3)
	res := Run([]*trace.Trace{a, b}, Options{Devices: twoDevices(), Seed: 2})
	wantReads := trace.Measure(a).Reads + trace.Measure(b).Reads
	if res.Reads != wantReads {
		t.Fatalf("reads %d, want %d", res.Reads, wantReads)
	}
}

func TestRandomReroutes(t *testing.T) {
	tr := smallTrace(4)
	res := Run([]*trace.Trace{tr}, Options{
		Devices: twoDevices(), Seed: 4, Selector: policy.NewRandom(4),
	})
	if res.Reroutes == 0 {
		t.Fatal("random policy never rerouted")
	}
	if res.ReadLat.N != res.Reads {
		t.Fatal("latency sample count mismatch")
	}
}

func TestHedgingFiresUnderContention(t *testing.T) {
	// A heavy trace on slow consumer devices: some reads must exceed the
	// hedge timeout.
	cfg := trace.MSRStyle(5, 2*time.Second)
	cfg.MeanIOPS = 15000
	tr := trace.Generate(cfg)
	res := Run([]*trace.Trace{tr}, Options{
		Devices:  []ssd.Config{ssd.IntelDCS3610(), ssd.SamsungPM961()},
		Seed:     5,
		Selector: policy.NewHedging(2 * time.Millisecond),
	})
	if res.Hedges == 0 {
		t.Fatal("no hedges fired under heavy load on consumer SSDs")
	}
	if res.Hedges > res.Reads/2 {
		t.Fatalf("hedges %d out of %d reads: timeout far too aggressive", res.Hedges, res.Reads)
	}
	if res.ReadLat.N != res.Reads {
		t.Fatalf("every read must be measured exactly once: %d vs %d", res.ReadLat.N, res.Reads)
	}
}

func TestHedgingImprovesTailNotMean(t *testing.T) {
	cfg := trace.MSRStyle(6, 2*time.Second)
	cfg.MeanIOPS = 15000
	tr := trace.Generate(cfg)
	opts := Options{Devices: twoDevices(), Seed: 6}
	base := Run([]*trace.Trace{tr.Clone()}, opts)
	opts.Selector = policy.NewHedging(2 * time.Millisecond)
	hedge := Run([]*trace.Trace{tr.Clone()}, opts)
	if hedge.ReadLat.P9999 > base.ReadLat.P9999*2 {
		t.Fatalf("hedging made extreme tail much worse: %v vs %v", hedge.ReadLat.P9999, base.ReadLat.P9999)
	}
}

func TestC3RunsAndBalances(t *testing.T) {
	tr := smallTrace(7)
	res := Run([]*trace.Trace{tr}, Options{
		Devices: twoDevices(), Seed: 7, Selector: policy.C3{},
	})
	if res.ReadLat.N != res.Reads {
		t.Fatal("C3 lost reads")
	}
}

func TestCollectLog(t *testing.T) {
	tr := smallTrace(8)
	dev, log := CollectLog(tr, ssd.Samsung970Pro(), 8)
	if dev == nil || len(log) != tr.Len() {
		t.Fatalf("collect log %d records", len(log))
	}
}

func TestDeterministicReplay(t *testing.T) {
	tr := smallTrace(9)
	opts := Options{Devices: twoDevices(), Seed: 9, Selector: policy.C3{}}
	a := Run([]*trace.Trace{tr.Clone()}, opts)
	b := Run([]*trace.Trace{tr.Clone()}, opts)
	if a.ReadLat.Mean != b.ReadLat.Mean || a.Reroutes != b.Reroutes {
		t.Fatal("replay not deterministic")
	}
}

func TestNoDevicesPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic without devices")
		}
	}()
	Run(nil, Options{})
}

func TestThreeReplicaPlacement(t *testing.T) {
	// A single trace over three devices places primaries by offset hash and
	// conserves all reads.
	tr := smallTrace(10)
	res := Run([]*trace.Trace{tr}, Options{
		Devices: []ssd.Config{ssd.Samsung970Pro(), ssd.Samsung970Pro(), ssd.SamsungPM961()},
		Seed:    10, Selector: policy.C3{},
	})
	if res.ReadLat.N != res.Reads {
		t.Fatalf("3-replica accounting broke: %d vs %d", res.ReadLat.N, res.Reads)
	}
}

func TestHedgeLatencyNeverWorseThanPrimary(t *testing.T) {
	// The recorded latency of a hedged read is min(primary, backup): with a
	// fixed timeout T, no recorded latency may exceed primary completion,
	// and any read slower than T must have been hedged or completed as-is.
	cfg := trace.MSRStyle(11, time.Second)
	cfg.MeanIOPS = 12000
	tr := trace.Generate(cfg)
	opts := Options{Devices: twoDevices(), Seed: 11}
	base := Run([]*trace.Trace{tr.Clone()}, opts)
	opts.Selector = policy.NewHedging(time.Millisecond)
	hedged := Run([]*trace.Trace{tr.Clone()}, opts)
	if hedged.Hedges == 0 {
		t.Skip("no hedges fired at this load")
	}
	// Aggregate sanity: hedging can only improve the extreme maximum, never
	// push it past baseline's maximum plus the backup's own service time
	// envelope (generous 2x bound).
	if hedged.ReadLat.Max > 2*base.ReadLat.Max+int64ToDur(2e6) {
		t.Fatalf("hedged max %v wildly above baseline max %v", hedged.ReadLat.Max, base.ReadLat.Max)
	}
}

func int64ToDur(ns int64) time.Duration { return time.Duration(ns) }

func TestBusyInstrumentationConsistency(t *testing.T) {
	tr := smallTrace(12)
	res := Run([]*trace.Trace{tr}, Options{
		Devices: twoDevices(), Seed: 12, Selector: policy.NewRandom(3),
	})
	if res.BusyAvoided > res.BusyPrimary {
		t.Fatalf("avoided %d > primary-busy %d", res.BusyAvoided, res.BusyPrimary)
	}
	if res.BusyPrimary > res.Reads {
		t.Fatal("busy-primary exceeds reads")
	}
}
