package replay

import (
	"container/heap"
	"math/rand"
	"testing"

	"repro/internal/feature"
	"repro/internal/ssd"
)

// boxedEvents is the old container/heap adapter, kept here only to prove the
// typed sift helpers pop in the identical order.
type boxedEvents []event

func (h boxedEvents) Len() int { return len(h) }
func (h boxedEvents) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h boxedEvents) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *boxedEvents) Push(x any)   { *h = append(*h, x.(event)) }
func (h *boxedEvents) Pop() any     { old := *h; n := len(old) - 1; e := old[n]; *h = old[:n]; return e }

func TestEventHeapMatchesContainerHeap(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	var typed eventHeap
	var boxed boxedEvents
	for i := 0; i < 500; i++ {
		e := event{at: rng.Int63n(1000), seq: int64(i)}
		typed.push(e)
		heap.Push(&boxed, e)
		// Interleave pops so both heaps exercise down() on partial content.
		if rng.Intn(3) == 0 && typed.Len() > 0 {
			a := typed.pop()
			b := heap.Pop(&boxed).(event)
			if a != b {
				t.Fatalf("pop %d: typed %+v != boxed %+v", i, a, b)
			}
		}
	}
	for typed.Len() > 0 {
		a := typed.pop()
		b := heap.Pop(&boxed).(event)
		if a != b {
			t.Fatalf("drain: typed %+v != boxed %+v", a, b)
		}
	}
	if boxed.Len() != 0 {
		t.Fatal("boxed heap not drained")
	}
}

func TestEventHeapInitSortsBackingSlice(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	h := make(eventHeap, 0, 256)
	for i := 0; i < 256; i++ {
		h = append(h, event{at: rng.Int63n(100), seq: int64(i)})
	}
	h.init()
	prev := h.pop()
	for h.Len() > 0 {
		cur := h.pop()
		if cur.at < prev.at || (cur.at == prev.at && cur.seq < prev.seq) {
			t.Fatalf("out of order: %+v after %+v", cur, prev)
		}
		prev = cur
	}
}

// TestEventHeapPushPopZeroAlloc is the point of the typed heaps: with the
// backing array pre-grown, a push/pop cycle must not allocate (container/heap
// boxed every event into an interface on push).
func TestEventHeapPushPopZeroAlloc(t *testing.T) {
	h := make(eventHeap, 0, 64)
	var at int64
	allocs := testing.AllocsPerRun(1000, func() {
		for i := 0; i < 32; i++ {
			at += 17
			h.push(event{at: at % 257, seq: at})
		}
		for h.Len() > 0 {
			h.pop()
		}
	})
	if allocs != 0 {
		t.Fatalf("event heap push/pop allocated %.1f/op, want 0", allocs)
	}
}

func TestCompletionsPushPopZeroAlloc(t *testing.T) {
	h := make(completions, 0, 64)
	var at int64
	allocs := testing.AllocsPerRun(1000, func() {
		for i := 0; i < 32; i++ {
			at += 31
			h.push(completion{at: at % 101})
		}
		for h.Len() > 0 {
			h.pop()
		}
	})
	if allocs != 0 {
		t.Fatalf("completions push/pop allocated %.1f/op, want 0", allocs)
	}
}

// TestTrackerRecordAdvanceZeroAlloc covers one replay bookkeeping step — the
// record of a device result plus the completion drain — once the pending heap
// has grown to its working size.
func TestTrackerRecordAdvanceZeroAlloc(t *testing.T) {
	tr := &tracker{
		dev:     ssd.New(ssd.Samsung970Pro(), 1),
		hist:    feature.NewWindow(3),
		pending: make(completions, 0, 64),
		alpha:   0.1,
		threads: 2,
	}
	now := int64(0)
	allocs := testing.AllocsPerRun(1000, func() {
		now += 10_000
		tr.record(now, 4096, ssd.Result{Start: now, Complete: now + 80_000, QueueLen: 3})
		tr.advance(now + 200_000)
	})
	if allocs != 0 {
		t.Fatalf("tracker record/advance allocated %.1f/op, want 0", allocs)
	}
}
