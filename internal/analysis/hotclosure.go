package analysis

import (
	"go/token"
)

// hotclosure makes //heimdall:hotpath transitive: every module function
// reachable by static calls from a hotpath root must itself be
// hotpath-clean, so a root can no longer launder an allocation through an
// innocent-looking helper. Reachable functions are checked with the same
// rule set as the base hotpath lint, and every finding carries the call
// chain from the root, e.g.
//
//	hot chain shard.decideBatch → stage → growRow: append to a slice not
//	rooted at the receiver or a parameter; growth allocates per call
//
// Traversal rules:
//
//   - a callee annotated //heimdall:hotpath is a root of its own and is
//     not re-checked through the chain;
//   - a callee annotated //heimdall:coldpath is an audited cold escape
//     (buffer growth, error paths, oversized-frame spill) — the pass does
//     not descend into it;
//   - calls through interfaces and function values produce no edges; the
//     boxing rule of the base lint guards that boundary instead.
//
// Each reachable function is checked once, against the first chain that
// discovers it (root order and edge order are deterministic, so the
// reported chain is too).
func hotclosure(cfg Config, mod *Module, report reporter) {
	_ = cfg
	g := mod.Graph()
	visited := map[*FuncInfo]bool{}
	for _, root := range g.Funcs {
		if !root.Hotpath || root.Decl.Body == nil {
			continue
		}
		walkHot(root, []*FuncInfo{root}, visited, report)
	}
}

func walkHot(fi *FuncInfo, chain []*FuncInfo, visited map[*FuncInfo]bool, report reporter) {
	for _, callee := range fi.Callees {
		if callee.Hotpath || callee.Coldpath || visited[callee] || callee.Decl.Body == nil {
			continue
		}
		visited[callee] = true
		next := append(chain, callee)
		prefix := "hot chain " + chainString(chain[0].Pkg, next) + ": "
		checkHotBody(callee.Pkg, callee.Decl, "in a function reachable from a //heimdall:hotpath root", func(pos token.Pos, msg string) {
			report(pos, prefix+msg)
		})
		walkHot(callee, next, visited, report)
	}
}
