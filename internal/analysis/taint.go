package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// taint is the determinism-taint lint. Nondeterminism sources —
//
//   - wall-clock reads (time.Now/Since/Until, Unix* methods on a tainted
//     time.Time, and calls to //heimdall:walltime-audited functions),
//   - global math/rand state,
//   - map iteration order (unless the range carries //heimdall:ordered),
//   - select nondeterminism (values bound in a select with two or more
//     racing communication clauses),
//
// must not flow into functions annotated //heimdall:nountaint: the verdict
// encoders, wire-frame builders, and table emitters whose outputs the
// byte-identical contract covers. Propagation is SSA-lite and
// flow-insensitive: assignments carry taint between locals, writes taint
// struct fields and package variables module-wide, and a function whose
// return statement is tainted taints every call site (computed as a fixed
// point over the call graph) — so laundering a clock read through one
// assignment, a helper's return value, or a stored field no longer hides
// it. Select taint stays intra-procedural: which branch won is scheduling
// nondeterminism, and once the value crosses a function boundary the
// ownership lint and the determinism tests own that surface. Sorting
// launders deliberately: a sort.* call over a slice re-establishes a
// deterministic order and clears the slice's taint (the second half of
// the sorted-keys idiom maporder recognizes).
func taint(cfg Config, mod *Module, report reporter) {
	_ = cfg
	g := mod.Graph()
	tt := &taintTracker{
		g:          g,
		retTaint:   map[*FuncInfo]string{},
		fieldTaint: map[types.Object]string{},
	}
	// Fixed point over return summaries and field taint.
	for round := 0; round < 10; round++ {
		tt.changed = false
		for _, fi := range g.Funcs {
			if fi.Decl.Body != nil {
				tt.analyze(fi, nil)
			}
		}
		if !tt.changed {
			break
		}
	}
	// Final round: re-derive local taint against the stable summaries and
	// report flows into //heimdall:nountaint sinks.
	for _, fi := range g.Funcs {
		if fi.Decl.Body != nil {
			tt.analyze(fi, report)
		}
	}
}

type taintTracker struct {
	g          *CallGraph
	retTaint   map[*FuncInfo]string    // function → taint description of its results
	fieldTaint map[types.Object]string // struct fields and package vars → taint description
	changed    bool
}

// analyze runs the flow-insensitive local pass over one function. With a
// nil report it only updates the interprocedural summaries; with a
// reporter it also checks sink calls.
func (tt *taintTracker) analyze(fi *FuncInfo, report reporter) {
	st := &funcTaint{
		tt:      tt,
		fi:      fi,
		info:    fi.Pkg.Info,
		local:   map[types.Object]string{},
		ordered: annotationLines(fileFset(fi), fileOf(fi), annOrdered),
	}
	// Iterate to a local fixed point: assignments later in the body can
	// feed taints used earlier (loops).
	for round := 0; round < 10; round++ {
		st.localChanged = false
		st.walk(nil)
		if !st.localChanged {
			break
		}
	}
	if report != nil {
		st.walk(report)
	}
}

func fileFset(fi *FuncInfo) *token.FileSet { return fi.Pkg.fset }

// selectTaintDesc marks select-sourced taint, which never escapes the
// function (see the package comment on taint).
const selectTaintDesc = "select nondeterminism"

// fileOf returns the file containing the function declaration.
func fileOf(fi *FuncInfo) *ast.File {
	for _, f := range fi.Pkg.Files {
		if f.Pos() <= fi.Decl.Pos() && fi.Decl.Pos() <= f.End() {
			return f
		}
	}
	return fi.Pkg.Files[0]
}

// funcTaint is the per-function analysis state.
type funcTaint struct {
	tt           *taintTracker
	fi           *FuncInfo
	info         *types.Info
	local        map[types.Object]string
	ordered      map[int]bool
	localChanged bool
}

// walk is one pass over the body: propagate taint through statements, and
// with a non-nil reporter, flag tainted arguments at sink calls.
func (st *funcTaint) walk(report reporter) {
	ast.Inspect(st.fi.Decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			st.assign(n)
		case *ast.DeclStmt:
			if gd, ok := n.Decl.(*ast.GenDecl); ok {
				for _, spec := range gd.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok {
						continue
					}
					for i, name := range vs.Names {
						if i < len(vs.Values) {
							if desc, ok := st.exprTaint(vs.Values[i]); ok {
								st.taintObj(st.info.Defs[name], desc)
							}
						} else if len(vs.Values) == 1 {
							if desc, ok := st.exprTaint(vs.Values[0]); ok {
								st.taintObj(st.info.Defs[name], desc)
							}
						}
					}
				}
			}
		case *ast.RangeStmt:
			st.rangeStmt(n)
		case *ast.SelectStmt:
			st.selectStmt(n)
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				if desc, ok := st.exprTaint(res); ok && desc != selectTaintDesc {
					if _, had := st.tt.retTaint[st.fi]; !had {
						st.tt.retTaint[st.fi] = desc
						st.tt.changed = true
					}
				}
			}
		case *ast.ExprStmt:
			if call, ok := n.X.(*ast.CallExpr); ok {
				st.maybeSortLaunder(call)
			}
		case *ast.CallExpr:
			if report != nil {
				st.checkSink(n, report)
			}
		}
		return true
	})
}

// assign propagates right-hand taint into left-hand locals, fields, and
// package variables.
func (st *funcTaint) assign(as *ast.AssignStmt) {
	if len(as.Lhs) == len(as.Rhs) {
		for i, lhs := range as.Lhs {
			if desc, ok := st.exprTaint(as.Rhs[i]); ok {
				st.taintLValue(lhs, desc)
			}
		}
		return
	}
	// Tuple assignment from one multi-result expression.
	if len(as.Rhs) == 1 {
		if desc, ok := st.exprTaint(as.Rhs[0]); ok {
			for _, lhs := range as.Lhs {
				st.taintLValue(lhs, desc)
			}
		}
	}
}

func (st *funcTaint) rangeStmt(rs *ast.RangeStmt) {
	tv, ok := st.info.Types[rs.X]
	if !ok || tv.Type == nil {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	line := st.fi.Pkg.fset.Position(rs.Pos()).Line
	if st.ordered[line] || st.ordered[line-1] {
		return
	}
	const desc = "map iteration order"
	if id, ok := rs.Key.(*ast.Ident); ok {
		st.taintObj(st.defOrUse(id), desc)
	}
	if id, ok := rs.Value.(*ast.Ident); ok {
		st.taintObj(st.defOrUse(id), desc)
	}
}

// selectStmt taints values bound by the communications of a racing select:
// two or more comm clauses means which one fires is scheduler-dependent.
func (st *funcTaint) selectStmt(sel *ast.SelectStmt) {
	comms := 0
	for _, c := range sel.Body.List {
		if cc, ok := c.(*ast.CommClause); ok && cc.Comm != nil {
			comms++
		}
	}
	if comms < 2 {
		return
	}
	for _, c := range sel.Body.List {
		cc, ok := c.(*ast.CommClause)
		if !ok || cc.Comm == nil {
			continue
		}
		if as, ok := cc.Comm.(*ast.AssignStmt); ok {
			for _, lhs := range as.Lhs {
				st.taintLValue(lhs, selectTaintDesc)
			}
		}
	}
}

// maybeSortLaunder clears the taint of a slice passed to a sort.* call:
// sorting re-establishes a deterministic order, completing the sorted-keys
// idiom.
func (st *funcTaint) maybeSortLaunder(call *ast.CallExpr) {
	obj := calleeObject(st.info, call)
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil || (fn.Pkg().Path() != "sort" && fn.Pkg().Path() != "slices") {
		return
	}
	if len(call.Args) == 0 {
		return
	}
	if base := st.baseObject(call.Args[0]); base != nil {
		delete(st.local, base)
	}
}

// checkSink reports tainted arguments reaching //heimdall:nountaint calls.
func (st *funcTaint) checkSink(call *ast.CallExpr, report reporter) {
	obj := calleeObject(st.info, call)
	fn, ok := obj.(*types.Func)
	if !ok {
		return
	}
	callee := st.tt.g.FuncOf(fn)
	if callee == nil || !callee.Nountaint {
		return
	}
	for _, arg := range call.Args {
		if desc, ok := st.exprTaint(arg); ok {
			report(arg.Pos(), "value tainted by "+desc+
				" flows into //heimdall:nountaint sink "+callee.Label(st.fi.Pkg)+
				"; determinism sinks must only see reproducible inputs")
		}
	}
}

// exprTaint reports whether the expression carries taint, and from what.
func (st *funcTaint) exprTaint(e ast.Expr) (string, bool) {
	switch e := e.(type) {
	case nil:
		return "", false
	case *ast.Ident:
		obj := st.defOrUse(e)
		if obj == nil {
			return "", false
		}
		if desc, ok := st.local[obj]; ok {
			return desc, true
		}
		if desc, ok := st.tt.fieldTaint[obj]; ok {
			return desc, true
		}
		return "", false
	case *ast.SelectorExpr:
		if obj := st.info.Uses[e.Sel]; obj != nil {
			if desc, ok := st.tt.fieldTaint[obj]; ok {
				return desc, true
			}
		}
		return st.exprTaint(e.X)
	case *ast.CallExpr:
		return st.callTaint(e)
	case *ast.ParenExpr:
		return st.exprTaint(e.X)
	case *ast.StarExpr:
		return st.exprTaint(e.X)
	case *ast.UnaryExpr:
		return st.exprTaint(e.X)
	case *ast.BinaryExpr:
		if desc, ok := st.exprTaint(e.X); ok {
			return desc, true
		}
		return st.exprTaint(e.Y)
	case *ast.IndexExpr:
		if desc, ok := st.exprTaint(e.X); ok {
			return desc, true
		}
		return st.exprTaint(e.Index)
	case *ast.SliceExpr:
		return st.exprTaint(e.X)
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				el = kv.Value
			}
			if desc, ok := st.exprTaint(el); ok {
				return desc, true
			}
		}
		return "", false
	case *ast.KeyValueExpr:
		return st.exprTaint(e.Value)
	case *ast.TypeAssertExpr:
		return st.exprTaint(e.X)
	}
	return "", false
}

// callTaint classifies a call expression: module functions contribute only
// their audited annotation or return summary; everything else (stdlib,
// interface methods, function values) conservatively forwards taint from
// receiver and arguments, with the wall-clock and global-rand families as
// the ground sources.
func (st *funcTaint) callTaint(call *ast.CallExpr) (string, bool) {
	obj := calleeObject(st.info, call)
	if fn, ok := obj.(*types.Func); ok {
		if fi := st.tt.g.FuncOf(fn); fi != nil {
			if fi.Walltime {
				return "audited wall-clock call " + fi.Label(st.fi.Pkg), true
			}
			if desc, ok := st.tt.retTaint[fi]; ok {
				return desc + " (returned by " + fi.Label(st.fi.Pkg) + ")", true
			}
			return "", false
		}
		if fn.Pkg() != nil {
			switch fn.Pkg().Path() {
			case "time":
				switch fn.Name() {
				case "Now", "Since", "Until":
					return "wall-clock read time." + fn.Name(), true
				}
			case "math/rand", "math/rand/v2":
				if fn.Type().(*types.Signature).Recv() == nil && !globalrandAllowed[fn.Name()] {
					return "global math/rand state rand." + fn.Name(), true
				}
			}
		}
	}
	// Conversions and unresolved/stdlib calls: forward taint.
	if sel, ok := unparen(call.Fun).(*ast.SelectorExpr); ok {
		if desc, ok := st.exprTaint(sel.X); ok {
			return desc, true
		}
	}
	for _, arg := range call.Args {
		if desc, ok := st.exprTaint(arg); ok {
			return desc, true
		}
	}
	return "", false
}

func (st *funcTaint) taintLValue(lhs ast.Expr, desc string) {
	switch lhs := lhs.(type) {
	case *ast.Ident:
		if lhs.Name == "_" {
			return
		}
		st.taintObj(st.defOrUse(lhs), desc)
	case *ast.SelectorExpr:
		if obj := st.info.Uses[lhs.Sel]; obj != nil {
			st.taintGlobal(obj, desc)
			return
		}
		st.taintLValue(lhs.X, desc)
	case *ast.IndexExpr:
		st.taintLValue(lhs.X, desc)
	case *ast.StarExpr:
		st.taintLValue(lhs.X, desc)
	case *ast.ParenExpr:
		st.taintLValue(lhs.X, desc)
	}
}

// taintObj taints a function-scoped object locally, or a package-level
// object module-wide.
func (st *funcTaint) taintObj(obj types.Object, desc string) {
	if obj == nil {
		return
	}
	if obj.Parent() != nil && obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope() {
		st.taintGlobal(obj, desc)
		return
	}
	if _, had := st.local[obj]; !had {
		st.local[obj] = desc
		st.localChanged = true
	}
}

func (st *funcTaint) taintGlobal(obj types.Object, desc string) {
	if desc == selectTaintDesc {
		// Select taint is intra-procedural: record it as a local fact so
		// in-function sink calls still see it, but never poison the field
		// module-wide.
		if _, had := st.local[obj]; !had {
			st.local[obj] = desc
			st.localChanged = true
		}
		return
	}
	if _, had := st.tt.fieldTaint[obj]; !had {
		st.tt.fieldTaint[obj] = desc
		st.tt.changed = true
	}
}

// baseObject walks an expression to its base identifier's object.
func (st *funcTaint) baseObject(e ast.Expr) types.Object {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.Ident:
			return st.defOrUse(x)
		default:
			return nil
		}
	}
}

func (st *funcTaint) defOrUse(id *ast.Ident) types.Object {
	if obj := st.info.Defs[id]; obj != nil {
		return obj
	}
	return st.info.Uses[id]
}
