package analysis

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// ownership enforces single-writer field ownership. A struct field
// annotated
//
//	//heimdall:owner run,shutdown
//
// may only be read or written from the declared owners — methods of the
// enclosing type by bare name, methods of another type in the package as
// Type.method, or package-level functions — and from functions provably
// called only by them. "Provably" is the call-graph fixed point
// ownerClosure: a function joins the owner closure when every static
// caller is already in it, it has at least one caller, and it is never
// address-taken (a function value can be invoked from any goroutine, so
// no claim survives it). Everything else touching the field is a finding:
// exactly the cross-goroutine access the shard/feature-tracker/freelist
// single-writer design (DESIGN.md "Serving architecture") relies on never
// happening.
func ownership(cfg Config, mod *Module, report reporter) {
	_ = cfg
	g := mod.Graph()
	fields := collectOwnedFields(mod, g)
	if len(fields) == 0 {
		return
	}
	// Map every use of an owned field to its enclosing function.
	for _, pkg := range mod.Pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, isFunc := decl.(*ast.FuncDecl)
				var encl *FuncInfo
				if isFunc {
					encl = g.DeclOf(fd)
				}
				ast.Inspect(decl, func(n ast.Node) bool {
					id, ok := n.(*ast.Ident)
					if !ok {
						return true
					}
					obj := pkg.Info.Uses[id]
					if obj == nil {
						return true
					}
					of, owned := fields[obj]
					if !owned {
						return true
					}
					if encl != nil && of.allowed[encl] {
						return true
					}
					report(id.Pos(), ownershipMsg(of, encl, pkg))
					return true
				})
			}
		}
	}
}

// ownedField is one //heimdall:owner-annotated field with its resolved
// owner set and closure.
type ownedField struct {
	obj     types.Object
	name    string // Type.field for diagnostics
	owners  []string
	allowed map[*FuncInfo]bool
}

func ownershipMsg(of *ownedField, encl *FuncInfo, pkg *Package) string {
	who := "package-level code"
	why := ""
	if encl != nil {
		who = encl.Label(pkg)
		switch {
		case encl.AddrTaken:
			why = " (it is address-taken, so its callers cannot be proven)"
		case len(encl.Callers) == 0:
			why = " (it has no static callers inside the module)"
		default:
			outside := []string{}
			for _, c := range encl.Callers {
				if !of.allowed[c] {
					outside = append(outside, c.Label(pkg))
				}
			}
			if len(outside) > 0 {
				why = " (also called from " + strings.Join(outside, ", ") + ")"
			}
		}
	}
	return "field " + of.name + " is owned by " + strings.Join(of.owners, ",") +
		"; accessed from " + who + ", which is outside the owner closure" + why
}

// collectOwnedFields finds every annotated struct field in the module and
// resolves its owner list against the package scope. Closures are shared
// between fields that declare the same owner set.
func collectOwnedFields(mod *Module, g *CallGraph) map[types.Object]*ownedField {
	fields := map[types.Object]*ownedField{}
	closures := map[string]map[*FuncInfo]bool{}
	for _, pkg := range mod.Pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				gd, ok := decl.(*ast.GenDecl)
				if !ok {
					continue
				}
				for _, spec := range gd.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					st, ok := ts.Type.(*ast.StructType)
					if !ok {
						continue
					}
					for _, f := range st.Fields.List {
						arg, found := annotationArg(f.Doc, annOwner)
						if !found {
							arg, found = annotationArg(f.Comment, annOwner)
						}
						if !found {
							continue
						}
						owners := splitOwners(arg)
						key := pkg.Path + "\x00" + strings.Join(owners, ",")
						allowed, ok := closures[key]
						if !ok {
							allowed = ownerClosure(g, resolveOwners(pkg, g, ts.Name.Name, owners))
							closures[key] = allowed
						}
						for _, name := range f.Names {
							obj := pkg.Info.Defs[name]
							if obj == nil {
								continue
							}
							fields[obj] = &ownedField{
								obj:     obj,
								name:    ts.Name.Name + "." + name.Name,
								owners:  owners,
								allowed: allowed,
							}
						}
					}
				}
			}
		}
	}
	return fields
}

func splitOwners(arg string) []string {
	parts := strings.FieldsFunc(arg, func(r rune) bool { return r == ',' || r == ' ' || r == '\t' })
	sort.Strings(parts)
	return parts
}

// resolveOwners maps owner names to call-graph nodes. A bare name resolves
// to a method of the enclosing type if one exists, else to a package-level
// function; "Type.method" names a method of another type in the package.
// Unresolvable names are ignored (the field then simply has a smaller
// owner set — a lint misconfiguration surfaces as findings, never as
// silence about real accesses).
func resolveOwners(pkg *Package, g *CallGraph, enclosing string, names []string) map[*FuncInfo]bool {
	owners := map[*FuncInfo]bool{}
	for _, name := range names {
		typ, meth := enclosing, name
		if i := strings.IndexByte(name, '.'); i >= 0 {
			typ, meth = name[:i], name[i+1:]
		} else if fi := lookupFunc(pkg, g, "", name); fi != nil && lookupFunc(pkg, g, enclosing, name) == nil {
			owners[fi] = true
			continue
		}
		if fi := lookupFunc(pkg, g, typ, meth); fi != nil {
			owners[fi] = true
		}
	}
	return owners
}

// lookupFunc finds the package's method typ.name (or package function name
// when typ is "") in the call graph.
func lookupFunc(pkg *Package, g *CallGraph, typ, name string) *FuncInfo {
	for _, fi := range g.Funcs {
		if fi.Pkg != pkg || fi.Fn.Name() != name {
			continue
		}
		recv := fi.Fn.Type().(*types.Signature).Recv()
		if typ == "" {
			if recv == nil {
				return fi
			}
			continue
		}
		if recv == nil {
			continue
		}
		t := recv.Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok && named.Obj().Name() == typ {
			return fi
		}
	}
	return nil
}
