package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

var errorIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

// errdrop flags statements that silently discard an error return inside
// the configured directories: a bare `f.Close()`, `defer w.Flush()`, or
// `go doWork()` whose error vanishes. Assigning the error explicitly
// (`_ = f.Close()`) is an acknowledged discard and is not flagged.
//
// Conventional never-fails and console writes are exempt:
//
//   - fmt.Print/Printf/Println (stdout convention);
//   - fmt.Fprint* when the writer is os.Stdout/os.Stderr, a
//     *strings.Builder, *bytes.Buffer, *bufio.Writer, or
//     *text/tabwriter.Writer — the sticky-error types whose final
//     Flush/String carries the failure, which errdrop still checks;
//   - methods on *strings.Builder and *bytes.Buffer (documented to
//     always return a nil error).
func errdrop(cfg Config, mod *Module, pkg *Package, report reporter) {
	for _, file := range pkg.Files {
		if !underAny(relFile(mod, file.Pos()), cfg.ErrDropDirs) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			var call *ast.CallExpr
			switch s := n.(type) {
			case *ast.ExprStmt:
				call, _ = s.X.(*ast.CallExpr)
			case *ast.DeferStmt:
				call = s.Call
			case *ast.GoStmt:
				call = s.Call
			}
			if call == nil || !returnsError(pkg.Info, call) || errdropExempt(pkg.Info, call) {
				return true
			}
			report(call.Pos(), "error return of "+calleeName(pkg.Info, call)+" is discarded; handle it or assign it to _ explicitly")
			return true
		})
	}
}

// returnsError reports whether any result of the call satisfies error.
func returnsError(info *types.Info, call *ast.CallExpr) bool {
	sig := callSignature(info, call)
	if sig == nil {
		return false
	}
	res := sig.Results()
	for i := 0; i < res.Len(); i++ {
		if types.Implements(res.At(i).Type(), errorIface) {
			return true
		}
	}
	return false
}

// errdropExempt applies the conventional-ignore rules documented on errdrop.
func errdropExempt(info *types.Info, call *ast.CallExpr) bool {
	obj := calleeObject(info, call)
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	sig := fn.Type().(*types.Signature)
	if recv := sig.Recv(); recv != nil {
		switch typeString(recv.Type()) {
		case "*strings.Builder", "*bytes.Buffer":
			return true
		}
		return false
	}
	if fn.Pkg().Path() != "fmt" {
		return false
	}
	name := fn.Name()
	switch name {
	case "Print", "Printf", "Println":
		return true
	}
	if strings.HasPrefix(name, "Fprint") && len(call.Args) > 0 {
		return stickyWriter(info, call.Args[0])
	}
	return false
}

// stickyWriter reports whether the fmt.Fprint* destination is a console
// stream or a sticky-error writer whose failure surfaces elsewhere.
func stickyWriter(info *types.Info, w ast.Expr) bool {
	if sel, ok := unparen(w).(*ast.SelectorExpr); ok {
		if obj := info.Uses[sel.Sel]; obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "os" {
			if sel.Sel.Name == "Stdout" || sel.Sel.Name == "Stderr" {
				return true
			}
		}
	}
	tv, ok := info.Types[w]
	if !ok || tv.Type == nil {
		return false
	}
	switch typeString(tv.Type) {
	case "*strings.Builder", "*bytes.Buffer", "*bufio.Writer", "*text/tabwriter.Writer":
		return true
	}
	return false
}

// typeString renders a type with full package paths for exact matching.
func typeString(t types.Type) string {
	return types.TypeString(t, nil)
}

// calleeName renders the called function for the diagnostic message.
func calleeName(info *types.Info, call *ast.CallExpr) string {
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		if obj := info.Uses[fun.Sel]; obj != nil {
			if fn, ok := obj.(*types.Func); ok && fn.Pkg() != nil {
				if sig := fn.Type().(*types.Signature); sig.Recv() != nil {
					return "(" + typeString(sig.Recv().Type()) + ")." + fn.Name()
				}
				return fn.Pkg().Name() + "." + fn.Name()
			}
		}
		return fun.Sel.Name
	}
	return "call"
}
