package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed and type-checked non-test package of the module
// under analysis.
type Package struct {
	Path   string // import path, e.g. "repro/internal/nn"
	RelDir string // module-relative directory, "" for the module root
	Dir    string // absolute directory
	Files  []*ast.File
	Types  *types.Package
	Info   *types.Info
	fset   *token.FileSet // the module's shared FileSet
}

// Module is a fully loaded module: every non-test package parsed and
// type-checked against real stdlib signatures, with no dependency on
// golang.org/x/tools.
type Module struct {
	Root string // absolute module root (the directory holding go.mod)
	Path string // module path from the go.mod module directive
	Fset *token.FileSet
	Pkgs []*Package // sorted by import path

	// graph is the lazily built module-wide call graph (see Graph). All
	// interprocedural passes share this one substrate, so the module is
	// indexed at most once per load.
	graph *CallGraph
}

// LoadModule discovers, parses, and type-checks every non-test package
// under root. Directories named testdata or vendor and directories starting
// with "." or "_" are skipped, matching the go tool's rules. Intra-module
// imports are resolved by recursively loading the target directory; stdlib
// imports fall through to the source importer.
func LoadModule(root string) (*Module, error) {
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	ld := &loader{
		fset:    fset,
		root:    root,
		modPath: modPath,
		std:     importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
		pkgs:    map[string]*Package{},
		state:   map[string]int{},
	}
	dirs, err := packageDirs(root)
	if err != nil {
		return nil, err
	}
	mod := &Module{Root: root, Path: modPath, Fset: fset}
	for _, rel := range dirs {
		ip := modPath
		if rel != "" {
			ip = modPath + "/" + filepath.ToSlash(rel)
		}
		pkg, err := ld.load(ip)
		if err != nil {
			return nil, err
		}
		if pkg != nil {
			mod.Pkgs = append(mod.Pkgs, pkg)
		}
	}
	sort.Slice(mod.Pkgs, func(i, j int) bool { return mod.Pkgs[i].Path < mod.Pkgs[j].Path })
	return mod, nil
}

// modulePath extracts the module directive from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", fmt.Errorf("analysis: %w (heimdall-vet must run at a module root)", err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("analysis: no module directive in %s", gomod)
}

// packageDirs returns the module-relative directories containing at least
// one non-test .go file, sorted.
func packageDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.Walk(root, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if info.IsDir() {
			name := info.Name()
			if path != root && (name == "testdata" || name == "vendor" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		rel, err := filepath.Rel(root, filepath.Dir(path))
		if err != nil {
			return err
		}
		if rel == "." {
			rel = ""
		}
		if n := len(dirs); n == 0 || dirs[n-1] != rel {
			dirs = append(dirs, rel)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	return dirs, nil
}

// loader type-checks module packages on demand, memoizing results so each
// package is checked exactly once however many importers reach it.
type loader struct {
	fset    *token.FileSet
	root    string
	modPath string
	std     types.ImporterFrom
	pkgs    map[string]*Package
	state   map[string]int // 0 unseen, 1 in progress, 2 done
}

// Import implements types.Importer: module-path imports load recursively,
// everything else (stdlib) goes to the source importer.
func (l *loader) Import(path string) (*types.Package, error) {
	if path == l.modPath || strings.HasPrefix(path, l.modPath+"/") {
		pkg, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.ImportFrom(path, l.root, 0)
}

// load parses and type-checks the package at the given import path.
func (l *loader) load(importPath string) (*Package, error) {
	if l.state[importPath] == 2 {
		return l.pkgs[importPath], nil
	}
	if l.state[importPath] == 1 {
		return nil, fmt.Errorf("analysis: import cycle through %s", importPath)
	}
	l.state[importPath] = 1
	defer func() { l.state[importPath] = 2 }()

	rel := strings.TrimPrefix(strings.TrimPrefix(importPath, l.modPath), "/")
	dir := filepath.Join(l.root, filepath.FromSlash(rel))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("analysis: %s: %w", importPath, err)
	}
	var files []*ast.File
	for _, e := range entries { // ReadDir sorts by name, so file order is stable
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: l, FakeImportC: true}
	tpkg, err := conf.Check(importPath, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", importPath, err)
	}
	pkg := &Package{
		Path:   importPath,
		RelDir: rel,
		Dir:    dir,
		Files:  files,
		Types:  tpkg,
		Info:   info,
		fset:   l.fset,
	}
	l.pkgs[importPath] = pkg
	return pkg, nil
}
