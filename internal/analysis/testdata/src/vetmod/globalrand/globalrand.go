// Package globalrand exercises the seed-hygiene lint: package-level
// math/rand functions draw from the process-global source and are banned;
// randomness must flow through a seeded *rand.Rand.
package globalrand

import "math/rand"

// Draws uses the global source three ways.
func Draws(xs []int) int {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want "rand.Shuffle draws from the process-global source"
	n := rand.Intn(10)                                                    // want "rand.Intn draws from the process-global source"
	return n + int(rand.Float64()*10)                                     // want "rand.Float64 draws from the process-global source"
}

// Seeded is the sanctioned path: explicit seed, local generator, and
// methods on the *rand.Rand are untouched by the lint.
func Seeded(seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(10)
}
