// Package clientline mirrors the resilient client's verdict path: in-flight
// ids and buffered verdicts live in receiver-rooted slices that are appended
// to, compacted, and swap-removed on every decide. The clean shapes must pass
// untouched; the seeded regressions — formatting a drop reason, a retry
// closure, boxing the verdict, and accumulating into a call-local slice —
// must each be flagged.
package clientline

import "fmt"

type verdict struct {
	id    uint64
	admit bool
	flags uint8
}

type client struct {
	inflight []uint64
	ready    []verdict
	head     int
	locals   uint64
}

// local resolves one outstanding id as a fail-open admit. Both appends are
// rooted at the receiver, so the lint stays silent.
//
//heimdall:hotpath
func (c *client) local(id uint64) {
	for i, in := range c.inflight {
		if in == id {
			c.inflight[i] = c.inflight[len(c.inflight)-1]
			c.inflight = c.inflight[:len(c.inflight)-1]
			break
		}
	}
	c.locals++
	c.ready = append(c.ready, verdict{id: id, admit: true, flags: 1 << 4})
}

// take pops a buffered verdict by id, compacting the consumed prefix.
//
//heimdall:hotpath
func (c *client) take(id uint64) (verdict, bool) {
	for i := c.head; i < len(c.ready); i++ {
		if c.ready[i].id == id {
			v := c.ready[i]
			copy(c.ready[i:], c.ready[i+1:])
			c.ready = c.ready[:len(c.ready)-1]
			return v, true
		}
	}
	return verdict{}, false
}

// decide carries the seeded regressions on an annotated client path.
//
//heimdall:hotpath
func (c *client) decide(id uint64) (verdict, error) {
	if id == 0 {
		return verdict{}, fmt.Errorf("zero id %d", id) // want "fmt.Errorf called on a"
	}
	pending := make([]uint64, 0, 4)
	pending = append(pending, id) // want "append to a slice not rooted"
	retry := func() {             // want "closure constructed on a"
		c.local(id)
	}
	_ = retry
	_ = pending
	v, ok := c.take(id)
	if !ok {
		c.local(id)
		v, _ = c.take(id)
	}
	observe(v) // want "concrete value passed as interface"
	return v, nil
}

func observe(v any) { _ = v }

// drain is unannotated: the same shapes pass without findings.
func (c *client) drain() []verdict {
	out := make([]verdict, 0, len(c.ready))
	out = append(out, c.ready[c.head:]...)
	observe(out)
	return out
}
