// Package framecodec mirrors the zero-copy serving codec: a frame reader
// that hands out views into its receiver-rooted read buffer, a writer whose
// response buffers cycle through a per-connection freelist, and a windowed
// submit that reaps already-buffered verdicts into a reused slice. The clean
// shapes — receiver-rooted appends, freelist push/pop, in-place length-prefix
// stamping — must pass untouched; the seeded regressions (formatting a
// truncated-frame error, boxing a decoded frame, a flush closure, and
// reaping into a call-local slice) must each be flagged.
package framecodec

import "fmt"

type frame struct {
	id   uint64
	kind byte
}

// reader owns a growable buffer and yields in-place views; next never
// allocates once buf has reached the high-water mark.
type reader struct {
	buf []byte
	r   int
	w   int
}

// next returns the bytes of one length-prefixed frame without copying.
// The compactions and the append both root at the receiver's buffer, so
// the lint stays silent.
//
//heimdall:hotpath
func (rd *reader) next() []byte {
	if rd.r == rd.w {
		rd.r, rd.w = 0, 0
	}
	for rd.w-rd.r < 4 {
		rd.buf = append(rd.buf, 0)
		rd.w++
	}
	n := int(rd.buf[rd.r])<<8 | int(rd.buf[rd.r+1])
	body := rd.buf[rd.r+4 : rd.r+4+n]
	rd.r += 4 + n
	return body
}

// buffered reports whether a whole frame is already readable without a
// syscall — the predicate the pipelined reap loop spins on.
//
//heimdall:hotpath
func (rd *reader) buffered() bool { return rd.w-rd.r >= 4 }

// writer recycles response buffers through a bounded freelist instead of
// sync.Pool, so the steady-state encode path never allocates and never
// crosses a lock.
type writer struct {
	free [][]byte
	out  [][]byte
}

// acquire pops a buffer from the freelist (or grows one once, at cold
// start); release pushes it back unless the list is at its cap. Every
// append roots at the receiver, so both pass clean.
//
//heimdall:hotpath
func (w *writer) acquire() []byte {
	if n := len(w.free); n > 0 {
		b := w.free[n-1]
		w.free = w.free[:n-1]
		return b[:0]
	}
	return make([]byte, 0, 64)
}

//heimdall:hotpath
func (w *writer) release(b []byte) {
	if len(w.free) < 16 {
		w.free = append(w.free, b)
	}
}

// encode appends one frame into the caller's buffer and stamps the length
// prefix in place over the 4 reserved head bytes. Appending to a parameter
// is the caller's buffer — the lint allows it — and queueing the result on
// w.out roots at the receiver.
//
//heimdall:hotpath
func encode(b []byte, f frame) []byte {
	b = append(b, 0, 0, 0, 0, f.kind)
	for i := 0; i < 8; i++ {
		b = append(b, byte(f.id>>(56-8*i)))
	}
	n := len(b) - 4
	b[0], b[1], b[2], b[3] = byte(n>>24), byte(n>>16), byte(n>>8), byte(n)
	return b
}

// push encodes into an acquired freelist buffer and queues it for the next
// vectored write.
//
//heimdall:hotpath
func (w *writer) push(f frame) {
	w.out = append(w.out, encode(w.acquire(), f))
}

// submit carries the seeded regressions on an annotated codec path.
//
//heimdall:hotpath
func (w *writer) submit(rd *reader, f frame) error {
	if f.kind == 0 {
		return fmt.Errorf("bad frame kind %d", f.kind) // want "fmt.Errorf called on a"
	}
	w.push(f)
	flush := func() { w.out = w.out[:0] } // want "closure constructed on a"
	_ = flush
	reaped := make([]frame, 0, 4)
	for rd.buffered() {
		body := rd.next()
		reaped = append(reaped, frame{kind: body[0]}) // want "append to a slice not rooted"
	}
	trace(f) // want "concrete value passed as interface"
	_ = reaped
	return nil
}

func trace(v any) { _ = v }

// drain is unannotated: the same shapes pass without findings.
func (w *writer) drain(rd *reader) []frame {
	out := make([]frame, 0, 4)
	for rd.buffered() {
		body := rd.next()
		out = append(out, frame{kind: body[0]})
	}
	trace(out)
	return out
}
