// Package hotpath exercises the hot-path lint: a //heimdall:hotpath
// function may not call fmt/log, build closures, box values into
// interfaces, or append to slices it does not own.
package hotpath

import (
	"fmt"
	"math"
)

func sink(v any) { _ = v }

// Hot is annotated, so each allocating shape below is a finding.
//
//heimdall:hotpath
func Hot(xs []float64) []float64 {
	fmt.Println(len(xs))                          // want "fmt.Println called on a"
	scale := func(v float64) float64 { return v } // want "closure constructed on a"
	_ = scale
	sink(xs[0])    // want "concrete value passed as interface"
	_ = any(xs[0]) // want "conversion to interface type"
	tmp := make([]float64, 0, len(xs))
	tmp = append(tmp, xs...) // want "append to a slice not rooted"
	_ = tmp
	xs = append(xs, math.Sqrt(2)) // appending to a parameter is the caller's buffer: fine
	return xs
}

// HotControl exercises the control-flow shapes: defer, goroutine spawn,
// channel operations, and map/channel iteration are all banned on the hot
// path.
//
//heimdall:hotpath
func HotControl(ch chan int, m map[int]int, done func()) int {
	defer done()       // want "defer on a"
	go done()          // want "go statement on a"
	ch <- 1            // want "channel send on a"
	v := <-ch          // want "channel receive on a"
	for k := range m { // want "map iteration on a"
		v += k
	}
	for r := range ch { // want "range over a channel on a"
		v += r
	}
	return v
}

// ColdControl has the same shapes with no annotation: fine.
func ColdControl(ch chan int, done func()) int {
	defer done()
	ch <- 1
	return <-ch
}

// Cold has the same shapes with no annotation: the lint ignores it.
func Cold(xs []float64) []float64 {
	fmt.Println(len(xs))
	tmp := make([]float64, 0, len(xs))
	tmp = append(tmp, xs...)
	sink(tmp)
	return xs
}
