// Package hotpath exercises the hot-path lint: a //heimdall:hotpath
// function may not call fmt/log, build closures, box values into
// interfaces, or append to slices it does not own.
package hotpath

import (
	"fmt"
	"math"
)

func sink(v any) { _ = v }

// Hot is annotated, so each allocating shape below is a finding.
//
//heimdall:hotpath
func Hot(xs []float64) []float64 {
	fmt.Println(len(xs))                          // want "fmt.Println called on a"
	scale := func(v float64) float64 { return v } // want "closure constructed on a"
	_ = scale
	sink(xs[0])    // want "concrete value passed as interface"
	_ = any(xs[0]) // want "conversion to interface type"
	tmp := make([]float64, 0, len(xs))
	tmp = append(tmp, xs...) // want "append to a slice not rooted"
	_ = tmp
	xs = append(xs, math.Sqrt(2)) // appending to a parameter is the caller's buffer: fine
	return xs
}

// Cold has the same shapes with no annotation: the lint ignores it.
func Cold(xs []float64) []float64 {
	fmt.Println(len(xs))
	tmp := make([]float64, 0, len(xs))
	tmp = append(tmp, xs...)
	sink(tmp)
	return xs
}
