// Package serveline mirrors the online-serving decide path: a shard worker
// hand-encodes verdicts into a connection writer's fixed scratch buffer.
// The clean shapes (receiver-rooted appends, byte-slice writes, scratch
// reuse) must pass untouched; the seeded regressions — error formatting,
// a flush closure, boxing the writer, and growing a batch-local slice —
// must each be flagged.
package serveline

import (
	"bufio"
	"fmt"
	"io"
)

type connWriter struct {
	bw  *bufio.Writer
	buf [32]byte
	err error
}

type shard struct {
	touched []*connWriter
	row     []float64
}

// EncodeVerdict is the clean shape: everything it writes is rooted at the
// receiver's fixed buffer, so the lint stays silent.
//
//heimdall:hotpath
func (out *connWriter) EncodeVerdict(id uint64, admit bool) {
	b := out.buf[:16]
	for i := range b {
		b[i] = byte(id >> (8 * i))
	}
	if admit {
		b[15] = 1
	}
	if _, err := out.bw.Write(b); err != nil && out.err == nil {
		out.err = err
	}
}

// Decide carries the seeded regressions on an annotated decide path.
//
//heimdall:hotpath
func (sh *shard) Decide(out *connWriter, qlen int, w io.Writer) error {
	if qlen < 0 {
		return fmt.Errorf("bad queue length %d", qlen) // want "fmt.Errorf called on a"
	}
	sh.row = append(sh.row[:0], float64(qlen)) // receiver-rooted scratch: fine
	batch := make([]*connWriter, 0, 4)
	batch = append(batch, out) // want "append to a slice not rooted"
	flush := func() {          // want "closure constructed on a"
		_ = out.bw.Flush()
	}
	_ = flush
	_ = batch
	record(out) // want "concrete value passed as interface"
	_, err := w.Write(out.buf[:])
	return err
}

func record(v any) { _ = v }

// Flush is unannotated: the same shapes pass without findings.
func (sh *shard) Flush() {
	batch := make([]*connWriter, 0, 4)
	batch = append(batch, sh.touched...)
	for _, out := range batch {
		record(out)
	}
}
