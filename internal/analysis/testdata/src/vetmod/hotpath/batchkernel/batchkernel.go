// Package batchkernel exercises the hot-path lint against the shapes of a
// batched inference kernel: per-batch scratch growth must append to buffers
// rooted at the receiver or a parameter (amortized by caller reuse), and the
// inner loops may not format, close over state, or box into interfaces.
package batchkernel

import "fmt"

// Scratch mirrors the caller-owned buffer bundle a batch kernel grows once
// and then reuses allocation-free.
type Scratch struct {
	a8, b8 []int8
	rows   [][]int8
}

type kernel struct {
	w    []int8
	flat []int8
}

func observe(v any) { _ = v }

// ForwardBatch is the well-formed shape: every append is rooted at the
// scratch parameter or the receiver, re-slicing is free, and the inner dot
// is plain integer arithmetic. The lint must stay silent here.
//
//heimdall:hotpath
func (k *kernel) ForwardBatch(xs [][]int8, out []int32, s *Scratch) {
	need := len(k.w) * len(xs)
	if cap(s.a8) < need {
		s.a8 = append(s.a8[:0], make([]int8, need)...)
	}
	s.rows = s.rows[:0]
	for _, x := range xs {
		s.rows = append(s.rows, x)
	}
	k.flat = append(k.flat[:0], k.w...)
	for r, x := range s.rows {
		var acc int32
		w := k.w[:len(x)]
		for i, v := range x {
			acc += int32(w[i]) * int32(v)
		}
		out[r] = acc
	}
}

// ForwardBatchLeaky seeds one violation of each allocating shape inside an
// annotated batch kernel.
//
//heimdall:hotpath
func (k *kernel) ForwardBatchLeaky(xs [][]int8, out []int32, s *Scratch) {
	fmt.Printf("batch of %d\n", len(xs)) // want "fmt.Printf called on a"
	tile := make([]int8, 0, len(k.w))
	tile = append(tile, k.w...)      // want "append to a slice not rooted"
	dot := func(w, a []int8) int32 { // want "closure constructed on a"
		var acc int32
		for i := range w {
			acc += int32(w[i]) * int32(a[i])
		}
		return acc
	}
	for r, x := range xs {
		out[r] = dot(tile[:len(x)], x)
	}
	observe(out[0]) // want "concrete value passed as interface"
	_ = s
}

// forwardCold is the same leaky body with no annotation: out of scope.
func (k *kernel) forwardCold(xs [][]int8, out []int32) {
	fmt.Printf("batch of %d\n", len(xs))
	tile := make([]int8, 0, len(k.w))
	tile = append(tile, k.w...)
	for r := range xs {
		out[r] = int32(len(tile))
	}
}
