// Package ownership exercises the single-writer ownership lint: a field
// annotated //heimdall:owner may only be touched by the declared owners and
// by functions provably called only by them.
package ownership

// gauge is a single-writer counter in the style of the shard state: n is
// owned by step and reset, label is free for anyone.
type gauge struct {
	//heimdall:owner step,reset
	n     int
	label string
}

// step and reset are the declared owners.
func (g *gauge) step() {
	g.n++
	g.bump()
	g.shared()
}

func (g *gauge) reset() { g.n = 0 }

// bump is called only by step, so the fixed point admits it to the owner
// closure: no finding.
func (g *gauge) bump() { g.n++ }

// shared is called by step AND by outsider, so it cannot join the closure.
func (g *gauge) shared() {
	g.n++ // want "field gauge.n is owned by reset,step; accessed from gauge.shared, which is outside the owner closure (also called from outsider)"
}

// grab is called only by step's closure-mate outsider as a method value:
// address-taken functions can be invoked from any goroutine, so no caller
// claim survives.
func (g *gauge) grab() {
	g.n++ // want "it is address-taken, so its callers cannot be proven"
}

// rogue has no static callers inside the module: outside the closure.
func rogue(g *gauge) int {
	return g.n // want "field gauge.n is owned by reset,step; accessed from rogue, which is outside the owner closure (it has no static callers inside the module)"
}

// outsider never touches n itself — calling owners is always fine — but it
// keeps shared out of the closure and takes grab's address.
func outsider(g *gauge) func() {
	g.label = "outside"
	g.shared()
	return g.grab
}

// sweep only reads the unannotated field: no finding.
func sweep(gs []*gauge) int {
	total := 0
	for _, g := range gs {
		total += len(g.label)
	}
	return total
}
