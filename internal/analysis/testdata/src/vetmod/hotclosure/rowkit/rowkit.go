// Package rowkit is the cross-package arm of the hotclosure fixture: its
// Sum is reachable from hotclosure.Decide, and the chain in the finding
// carries the package-qualified label.
package rowkit

import "fmt"

// Sum is hot-reachable from hotclosure.Decide.
func Sum(xs []float64) float64 {
	fmt.Sprint(len(xs)) // want "hot chain Decide → rowkit.Sum: fmt.Sprint called in a function reachable from a"
	s := 0.0
	for _, v := range xs {
		s += v
	}
	return s
}

// Helper is not reachable from any root: its allocation is fine.
func Helper(xs []float64) []float64 {
	tmp := []float64{}
	return append(tmp, xs...)
}
