// Package hotclosure exercises the transitive hotpath lint: every function
// statically reachable from a //heimdall:hotpath root must be hotpath-clean,
// and findings carry the call chain from the root.
package hotclosure

import (
	"fmt"

	"vetmod/hotclosure/rowkit"
)

// Decide is the hotpath root. Its own body is clean; the violations live
// two hops down (growRow) and across a package boundary (rowkit.Sum).
//
//heimdall:hotpath
func Decide(xs []float64) float64 {
	row := stage(xs)
	return row[0] + rowkit.Sum(xs) + scoreFast(xs)
}

// stage is not annotated, but it is reachable from Decide, so the closure
// pass checks it (cleanly) and descends into growRow.
func stage(xs []float64) []float64 {
	return growRow(nil, xs)
}

// growRow appends to a local: a violation reported with the full chain.
func growRow(dst, xs []float64) []float64 {
	tmp := []float64{}
	tmp = append(tmp, xs...) // want "hot chain Decide → stage → growRow: append to a slice not rooted"
	dst = append(dst, tmp...)
	_ = spill(xs)
	return dst
}

// scoreFast carries its own //heimdall:hotpath annotation: it is a root of
// its own and the closure pass does not re-check it through Decide's chain
// (its body would double-report otherwise — the base lint already covers
// it).
//
//heimdall:hotpath
func scoreFast(xs []float64) float64 {
	s := 0.0
	for _, v := range xs {
		s += v
	}
	return s
}

// spill is an audited cold escape: the closure pass does not descend into
// it, so its fmt call is fine.
//
//heimdall:coldpath
func spill(xs []float64) string {
	return fmt.Sprint(len(xs))
}

// unreached has hot-dirty shapes but no hotpath root reaches it: clean.
func unreached(xs []float64) string {
	tmp := []float64{}
	tmp = append(tmp, xs...)
	return fmt.Sprint(tmp)
}
