// Package taint exercises the determinism-taint lint: wall-clock reads,
// global math/rand state, map-iteration order, and select nondeterminism
// must not flow into //heimdall:nountaint sinks, no matter how many
// assignments, fields, or helper returns they are laundered through.
package taint

import (
	"math/rand"
	"sort"
	"time"
)

// emit stands in for a verdict encoder: a determinism sink.
//
//heimdall:nountaint
func emit(v int64) { _ = v }

//heimdall:nountaint
func emitStr(s string) { _ = s }

// Direct flow. The function is walltime-audited so the base lint is
// silent, but auditing a clock read does not make it reproducible: it
// still must not reach a sink.
//
//heimdall:walltime
func direct() {
	emit(time.Now().UnixNano()) // want "value tainted by wall-clock read time.Now flows into"
}

// Laundering through two locals.
//
//heimdall:walltime
func viaLocals() {
	stamp := time.Now().UnixNano()
	x := stamp
	emit(x) // want "value tainted by wall-clock read time.Now flows into"
}

type record struct {
	stamp int64
	val   int64
}

// Laundering through a struct field: the write in stampIt poisons the
// field module-wide, and the read in emitRecord is the finding.
//
//heimdall:walltime
func stampIt(r *record) {
	r.stamp = time.Now().UnixNano()
}

func emitRecord(r *record) {
	emit(r.stamp) // want "value tainted by wall-clock read time.Now flows into"
	emit(r.val)   // clean: val is never written from a source
}

// Laundering through a helper's return value: nowNanos is not audited, so
// the base walltime lint fires at the read, and its return summary taints
// every call site.
func nowNanos() int64 {
	return time.Now().UnixNano() // want "time.Now reads the wall clock"
}

func viaReturn() {
	emit(nowNanos()) // want "value tainted by wall-clock read time.Now (returned by nowNanos) flows into"
}

// Global math/rand state is a source (and a globalrand finding of its own).
func viaRand() {
	id := rand.Int63() // want "rand.Int63 draws from the process-global source"
	emit(id)           // want "value tainted by global math/rand state rand.Int63 flows into"
}

// Map iteration order is a source for the bound key.
func keys(m map[string]int) {
	for k := range m {
		emitStr(k) // want "value tainted by map iteration order flows into"
	}
}

// Sorting launders: after sort.Strings the order is deterministic again
// (the second half of the sorted-keys idiom).
func sortedKeys(m map[string]int) {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	emitStr(ks[0]) // clean: sorted
}

// An //heimdall:ordered audit on the range clears the source.
func orderedKeys(m map[string]int) {
	//heimdall:ordered
	for k := range m {
		emitStr(k) // clean: audited ordered iteration
	}
}

// A racing select taints what it binds.
func raced(a, b chan int64) {
	var v int64
	select {
	case v = <-a:
	case v = <-b:
	}
	emit(v) // want "value tainted by select nondeterminism flows into"
}

// A single-clause select is deterministic: no source.
func single(a chan int64) {
	var v int64
	select {
	case v = <-a:
	}
	emit(v) // clean: one communication clause
}
