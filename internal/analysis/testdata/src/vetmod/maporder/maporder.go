// Package maporder exercises the map-iteration-order lint: inside the
// configured packages a map range must be audited, annotated, or rewritten
// to the sorted-keys idiom.
package maporder

import "sort"

// Fold ranges a map with no annotation: flagged even though this
// particular fold happens to commute — the audit must be explicit.
func Fold(m map[string]int) int {
	total := 0
	for _, v := range m { // want "range over a map has nondeterministic order"
		total += v
	}
	return total
}

// Audited acknowledges the commutative fold on the statement line.
func Audited(m map[string]int) int {
	total := 0
	for _, v := range m { //heimdall:ordered
		total += v
	}
	return total
}

// AuditedAbove acknowledges it on the line above the statement.
func AuditedAbove(m map[string]int) int {
	total := 0
	//heimdall:ordered
	for _, v := range m {
		total += v
	}
	return total
}

// SortedKeys is the canonical rewrite: the key-collection range is
// recognized as the idiom's first step, and the output range is over a
// slice, which the lint never sees.
func SortedKeys(m map[string]int) []int {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]int, 0, len(keys))
	for _, k := range keys {
		out = append(out, m[k])
	}
	return out
}

// KeyValue ranges with both key and value bound: not the collection idiom,
// so it needs an annotation it does not have.
func KeyValue(m map[int]int) []int {
	var pairs []int
	for k, v := range m { // want "range over a map has nondeterministic order"
		pairs = append(pairs, k+v)
	}
	return pairs
}
