// Package walltime exercises the walltime lint: wall-clock reads are
// banned outside the allowlist unless the function carries an audit
// annotation.
package walltime

import "time"

// Elapsed reads the wall clock without an audit annotation.
func Elapsed() time.Duration {
	start := time.Now() // want "time.Now reads the wall clock"
	work()
	return time.Since(start) // want "time.Since reads the wall clock"
}

// Wait schedules against the wall clock.
func Wait() {
	time.Sleep(time.Millisecond) // want "time.Sleep reads the wall clock"
}

// Stamp is audited wall-clock reporting: the annotation silences the lint.
//
//heimdall:walltime
func Stamp() time.Duration {
	start := time.Now()
	work()
	return time.Since(start)
}

// Pure time arithmetic never reads the clock and is always fine.
func Pure() time.Duration { return 3 * time.Second }

func work() {}
