// Package allowed sits under the walltime allowlist (the CLI analogue):
// clock reads are permitted here, but laundering the clock into an RNG
// seed is still a globalrand finding — reproducibility has no allowlist.
package allowed

import (
	"math/rand"
	"time"
)

// Timing is allowlisted wall-clock use: no finding.
func Timing() time.Duration {
	start := time.Now()
	return time.Since(start)
}

// BadSeed derives a seed from the wall clock.
func BadSeed() *rand.Rand {
	return rand.New(rand.NewSource(time.Now().UnixNano())) // want "time-derived seed passed to rand.NewSource"
}
