// Package errdrop exercises the discarded-error lint: bare statements,
// defers, and go statements that drop an error are findings; explicit
// discards and the conventional never-fails writers are not.
package errdrop

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strings"
)

func work() error { return nil }

// Bare drops the error three ways.
func Bare() {
	work()         // want "error return of work is discarded"
	defer work()   // want "error return of work is discarded"
	go func() {}() // a call returning nothing is never a finding
	go work()      // want "error return of work is discarded"
}

// Handled shows the accepted forms: checking, returning, or an explicit
// discard with _.
func Handled() error {
	if err := work(); err != nil {
		return err
	}
	_ = work()
	return work()
}

// Writers exercises the conventional exemptions: console prints, sticky
// buffered writers, and strings.Builder methods never flag; the final
// Flush carries the real error and is returned.
func Writers(w io.Writer) error {
	var b strings.Builder
	fmt.Fprintf(&b, "header")
	b.WriteString("body")
	fmt.Println(b.String())
	fmt.Fprintln(os.Stderr, "progress")
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "payload")
	return bw.Flush()
}
