package analysis_test

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"regexp"
	"sort"
	"strings"
	"testing"

	"repro/internal/analysis"
)

var fixtureRoot = filepath.Join("testdata", "src", "vetmod")

// fixtureConfig scopes the lints to the fixture packages the same way
// DefaultConfig scopes them to the real tree.
var fixtureConfig = analysis.Config{
	WalltimeAllow: []string{"walltime/allowed"},
	MapOrderDirs:  []string{"maporder"},
	ErrDropDirs:   []string{"errdrop"},
}

// TestFixtures runs the whole suite over the fixture module and requires
// an exact match between the diagnostics and the // want comments: every
// want must be hit, and every finding must be wanted.
func TestFixtures(t *testing.T) {
	diags, err := analysis.Run(fixtureRoot, fixtureConfig)
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) == 0 {
		t.Fatal("fixture run produced no diagnostics; the seeded violations were missed")
	}
	wants := collectWants(t, fixtureRoot)

	matched := map[string][]bool{} // parallel to wants[key]
	for key := range wants {
		matched[key] = make([]bool, len(wants[key]))
	}
	for _, d := range diags {
		key := fmt.Sprintf("%s:%d", d.File, d.Line)
		text := fmt.Sprintf("[%s] %s", d.Lint, d.Msg)
		ok := false
		for i, re := range wants[key] {
			if !matched[key][i] && re.MatchString(text) {
				matched[key][i] = true
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for key, res := range matched {
		for i, hit := range res {
			if !hit {
				t.Errorf("%s: want %q never reported", key, wants[key][i])
			}
		}
	}
}

// TestWalltimeAllowlist drops the allowlist and checks that the allowed
// package's clock reads become findings — pinning that the allowlist, not
// an accident of scoping, is what silences them.
func TestWalltimeAllowlist(t *testing.T) {
	cfg := fixtureConfig
	cfg.WalltimeAllow = nil
	diags, err := analysis.Run(fixtureRoot, cfg)
	if err != nil {
		t.Fatal(err)
	}
	found := 0
	for _, d := range diags {
		if d.Lint == "walltime" && strings.HasPrefix(d.File, "walltime/allowed/") {
			found++
		}
	}
	if found == 0 {
		t.Error("with the allowlist removed, walltime/allowed should produce walltime findings")
	}
}

// TestOutputDeterministic runs the suite twice from scratch and requires
// byte-identical, sorted output — heimdall-vet polices determinism, so its
// own output order must be deterministic too.
func TestOutputDeterministic(t *testing.T) {
	a, err := analysis.Run(fixtureRoot, fixtureConfig)
	if err != nil {
		t.Fatal(err)
	}
	b, err := analysis.Run(fixtureRoot, fixtureConfig)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("two runs over the same tree produced different diagnostics")
	}
	sorted := sort.SliceIsSorted(a, func(i, j int) bool {
		if a[i].File != a[j].File {
			return a[i].File < a[j].File
		}
		return a[i].Line < a[j].Line
	})
	if !sorted {
		t.Error("diagnostics are not sorted by file and line")
	}
}

// TestHeimdallVet is the tier-1 gate: the suite over the real repository
// must be clean, so any new violation fails go test ./... rather than
// waiting for CI's vet job.
func TestHeimdallVet(t *testing.T) {
	diags, err := analysis.Run(filepath.Join("..", ".."), analysis.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}

var wantRE = regexp.MustCompile(`// want ("[^"]*"\s*)+`)
var quotedRE = regexp.MustCompile(`"([^"]*)"`)

// collectWants scans every fixture file for // want "regex" comments and
// returns them keyed by "relfile:line".
func collectWants(t *testing.T, root string) map[string][]*regexp.Regexp {
	t.Helper()
	wants := map[string][]*regexp.Regexp{}
	err := filepath.Walk(root, func(path string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		rel = filepath.ToSlash(rel)
		for i, line := range strings.Split(string(data), "\n") {
			m := wantRE.FindString(line)
			if m == "" {
				continue
			}
			key := fmt.Sprintf("%s:%d", rel, i+1)
			for _, q := range quotedRE.FindAllStringSubmatch(m, -1) {
				re, err := regexp.Compile(regexp.QuoteMeta(q[1]))
				if err != nil {
					return fmt.Errorf("%s: bad want %q: %w", key, q[1], err)
				}
				wants[key] = append(wants[key], re)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(wants) == 0 {
		t.Fatal("no // want comments found under " + root)
	}
	return wants
}
