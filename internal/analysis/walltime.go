package analysis

import (
	"go/ast"
)

// walltimeBanned are the package time functions that observe or schedule
// against the wall clock. Pure constructors and arithmetic (time.Duration,
// time.Unix, d.Seconds, ...) are fine: they do not read the clock.
var walltimeBanned = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTicker": true,
	"NewTimer":  true,
}

// walltime flags wall-clock reads outside the allowlist. Simulated time
// must come from the replay/ssd clocks — one stray time.Now in a reducer
// breaks the byte-identical-tables contract. Audited wall-clock reporting
// (benchmark timing) is acknowledged per function with //heimdall:walltime;
// whole directories (the CLIs) are allowlisted by Config.WalltimeAllow.
func walltime(cfg Config, mod *Module, pkg *Package, report reporter) {
	for _, file := range pkg.Files {
		if underAny(relFile(mod, file.Pos()), cfg.WalltimeAllow) {
			continue
		}
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && hasAnnotation(fd.Doc, annWalltime) {
				continue
			}
			ast.Inspect(decl, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				obj := pkg.Info.Uses[sel.Sel]
				if obj == nil || !walltimeBanned[sel.Sel.Name] || !isPkgFunc(obj, "time", sel.Sel.Name) {
					return true
				}
				report(sel.Pos(), "time."+sel.Sel.Name+" reads the wall clock; use the simulated replay/ssd clock, "+
					"or annotate the function //heimdall:walltime if this is audited wall-clock reporting")
				return true
			})
		}
	}
}
