package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// Annotations are pragma-style comments that acknowledge an audited site:
//
//	//heimdall:hotpath    on a function: enforce the allocation-free rules,
//	                      and make the function a root of the transitive
//	                      hotpath-closure lint
//	//heimdall:coldpath   on a function: audited cold escape — the function
//	                      is reachable from a hotpath root but runs only
//	                      behind a cold guard (buffer growth, error paths,
//	                      oversized-frame spill), so the closure pass does
//	                      not descend into it
//	//heimdall:walltime   on a function: audited wall-clock reporting; the
//	                      taint lint treats its results as clock-tainted
//	//heimdall:ordered    on (or directly above) a map-range statement:
//	                      the fold is commutative or the keys are sorted
//	//heimdall:owner M1,M2 on a struct field: the field may only be read or
//	                      written by the listed functions (methods of the
//	                      enclosing type, Type.method, or package
//	                      functions) and by functions provably called only
//	                      by them
//	//heimdall:nountaint  on a function: determinism sink — values tainted
//	                      by wall-clock, global rand, map order, or select
//	                      nondeterminism must not reach its arguments
//
// They are written without a space after //, like //go:noinline, so gofmt
// leaves them alone.
const (
	annHotpath   = "heimdall:hotpath"
	annColdpath  = "heimdall:coldpath"
	annWalltime  = "heimdall:walltime"
	annOrdered   = "heimdall:ordered"
	annOwner     = "heimdall:owner"
	annNountaint = "heimdall:nountaint"
)

// hasAnnotation reports whether a doc comment carries the given pragma on
// a line of its own.
func hasAnnotation(doc *ast.CommentGroup, name string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
		if text == name {
			return true
		}
	}
	return false
}

// annotationArg returns the argument of a "//name arg..." pragma in the
// comment group, and whether it was present. Used for //heimdall:owner,
// whose argument is the comma-separated owner list.
func annotationArg(doc *ast.CommentGroup, name string) (string, bool) {
	if doc == nil {
		return "", false
	}
	for _, c := range doc.List {
		text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
		if rest, ok := strings.CutPrefix(text, name+" "); ok {
			return strings.TrimSpace(rest), true
		}
		if text == name {
			return "", true
		}
	}
	return "", false
}

// annotationLines returns the set of line numbers in file that carry the
// given pragma, either as a standalone comment or trailing a statement.
func annotationLines(fset *token.FileSet, file *ast.File, name string) map[int]bool {
	lines := map[int]bool{}
	for _, g := range file.Comments {
		for _, c := range g.List {
			text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
			if text == name {
				lines[fset.Position(c.Pos()).Line] = true
			}
		}
	}
	return lines
}
