package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// Annotations are pragma-style comments that acknowledge an audited site:
//
//	//heimdall:hotpath   on a function: enforce the allocation-free rules
//	//heimdall:walltime  on a function: audited wall-clock reporting
//	//heimdall:ordered   on (or directly above) a map-range statement:
//	                     the fold is commutative or the keys are sorted
//
// They are written without a space after //, like //go:noinline, so gofmt
// leaves them alone.
const (
	annHotpath  = "heimdall:hotpath"
	annWalltime = "heimdall:walltime"
	annOrdered  = "heimdall:ordered"
)

// hasAnnotation reports whether a doc comment carries the given pragma on
// a line of its own.
func hasAnnotation(doc *ast.CommentGroup, name string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
		if text == name {
			return true
		}
	}
	return false
}

// annotationLines returns the set of line numbers in file that carry the
// given pragma, either as a standalone comment or trailing a statement.
func annotationLines(fset *token.FileSet, file *ast.File, name string) map[int]bool {
	lines := map[int]bool{}
	for _, g := range file.Comments {
		for _, c := range g.List {
			text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
			if text == name {
				lines[fset.Position(c.Pos()).Line] = true
			}
		}
	}
	return lines
}
