package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// hotpath enforces the allocation-free contract on functions annotated
// //heimdall:hotpath — the sub-microsecond inference paths (PredictInto,
// ScoreFast, Admit) and the replay event heaps whose 0 allocs/op the §5
// latency results depend on. Inside an annotated function the lint flags:
//
//   - calls into fmt or log (formatting allocates and takes locks);
//   - function literals (closure construction allocates);
//   - conversions of concrete values to interface types, explicit or via
//     a call argument (interface boxing allocates);
//   - append whose destination is not rooted at the receiver or a
//     parameter (growing a local or global slice allocates per call);
//   - defer statements (the defer frame and delayed call defeat the fast
//     path);
//   - channel sends, receives, ranges, and go statements (channel ops
//     take locks and may block; spawning a goroutine allocates);
//   - map iteration (the order is nondeterministic and the hidden
//     iterator defeats the fast path).
//
// The AllocsPerRun tests pin the measured behaviour; this pass pins the
// code shape, so a regression is caught at vet time rather than when the
// benchmark next runs. The hotclosure pass extends the same rule set
// transitively to everything a hotpath root calls.
func hotpath(cfg Config, mod *Module, pkg *Package, report reporter) {
	_ = cfg
	_ = mod
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !hasAnnotation(fd.Doc, annHotpath) {
				continue
			}
			checkHotBody(pkg, fd, "on a //heimdall:hotpath function", report)
		}
	}
}

// checkHotBody applies the hotpath rule set to one function body. The
// where clause frames the findings ("on a //heimdall:hotpath function" for
// the base lint; the hotclosure pass uses a reachability clause and
// prefixes the call chain).
func checkHotBody(pkg *Package, fd *ast.FuncDecl, where string, report func(pos token.Pos, msg string)) {
	info := pkg.Info
	owned := ownedObjects(info, fd)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			report(n.Pos(), "closure constructed "+where+"; hoist it or pass a named function")
			return false // the literal itself is the violation; don't re-flag its body
		case *ast.DeferStmt:
			report(n.Pos(), "defer "+where+"; the defer frame and the delayed call defeat the fast path")
		case *ast.GoStmt:
			report(n.Pos(), "go statement "+where+"; spawning a goroutine allocates")
		case *ast.SendStmt:
			report(n.Pos(), "channel send "+where+"; channel ops take locks and may block")
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				report(n.Pos(), "channel receive "+where+"; channel ops take locks and may block")
			}
		case *ast.RangeStmt:
			if tv, ok := info.Types[n.X]; ok && tv.Type != nil {
				switch tv.Type.Underlying().(type) {
				case *types.Map:
					report(n.Pos(), "map iteration "+where+"; the order is nondeterministic and the hidden iterator defeats the fast path")
				case *types.Chan:
					report(n.Pos(), "range over a channel "+where+"; channel ops take locks and may block")
				}
			}
		case *ast.CallExpr:
			checkHotCall(info, n, owned, where, report)
		}
		return true
	})
}

// ownedObjects collects the receiver and parameter objects of fd: the only
// slices a hotpath function may append to, since growth is then amortized
// by the caller's buffer reuse.
func ownedObjects(info *types.Info, fd *ast.FuncDecl) map[types.Object]bool {
	owned := map[types.Object]bool{}
	addFields := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			for _, name := range f.Names {
				if obj := info.Defs[name]; obj != nil {
					owned[obj] = true
				}
			}
		}
	}
	addFields(fd.Recv)
	addFields(fd.Type.Params)
	return owned
}

func checkHotCall(info *types.Info, call *ast.CallExpr, owned map[types.Object]bool, where string, report func(pos token.Pos, msg string)) {
	// Explicit conversion T(x)?
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		if types.IsInterface(tv.Type) && len(call.Args) == 1 && !isInterfaceOrNil(info, call.Args[0]) {
			report(call.Pos(), "conversion to interface type "+tv.Type.String()+" boxes the value (allocates)")
		}
		return
	}
	obj := calleeObject(info, call)
	if fn, ok := obj.(*types.Func); ok && fn.Pkg() != nil {
		switch fn.Pkg().Path() {
		case "fmt", "log":
			report(call.Pos(), fn.Pkg().Path()+"."+fn.Name()+" called "+where+"; formatting allocates")
			return
		}
	}
	if b, ok := obj.(*types.Builtin); ok {
		if b.Name() == "append" && len(call.Args) > 0 && !rootedIn(info, call.Args[0], owned) {
			report(call.Pos(), "append to a slice not rooted at the receiver or a parameter; growth allocates per call")
		}
		return
	}
	// Implicit interface conversions at call arguments.
	sig := callSignature(info, call)
	if sig == nil {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // forwarding a slice does not box its elements
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		}
		if pt == nil || !types.IsInterface(pt) {
			continue
		}
		if !isInterfaceOrNil(info, arg) {
			report(arg.Pos(), "concrete value passed as interface "+pt.String()+" (boxing allocates)")
		}
	}
}

// callSignature returns the signature of a non-conversion, non-builtin
// call, following named function types.
func callSignature(info *types.Info, call *ast.CallExpr) *types.Signature {
	tv, ok := info.Types[call.Fun]
	if !ok || tv.Type == nil {
		return nil
	}
	sig, _ := tv.Type.Underlying().(*types.Signature)
	return sig
}

// isInterfaceOrNil reports whether the argument is already an interface
// value or the untyped nil (neither boxes at the call).
func isInterfaceOrNil(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return true // be lenient on exotic exprs rather than misfire
	}
	if tv.IsNil() {
		return true
	}
	return types.IsInterface(tv.Type)
}

// rootedIn walks selector/index/star/paren chains to the base identifier
// and reports whether it resolves to one of the owned objects.
func rootedIn(info *types.Info, e ast.Expr, owned map[types.Object]bool) bool {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.Ident:
			if obj := info.Uses[x]; obj != nil {
				return owned[obj]
			}
			return false
		default:
			return false
		}
	}
}
