// Package analysis implements heimdall-vet: a stdlib-only static-analysis
// suite (go/parser, go/ast, go/types — no golang.org/x/tools) that enforces
// the project invariants the compiler cannot see:
//
//   - walltime: time.Now/time.Since and friends are banned outside an
//     explicit allowlist — simulated time must come from the replay/ssd
//     clocks, or byte-identical experiment tables break.
//   - globalrand: package-level math/rand functions are banned everywhere;
//     randomness must flow through a seeded *rand.Rand, and seeds may not
//     be derived from the wall clock.
//   - maporder: range over a map in the experiment-producing packages needs
//     a //heimdall:ordered audit annotation (or a sorted-keys rewrite),
//     because map iteration order would leak nondeterminism into tables.
//   - hotpath: functions annotated //heimdall:hotpath (the sub-microsecond
//     inference and replay-heap paths) may not call fmt/log, construct
//     closures, convert to interfaces, or append to non-receiver/non-param
//     slices — a compile-time complement to the AllocsPerRun tests.
//   - errdrop: discarded error returns in internal/ and cmd/ are
//     diagnostics.
//
// Three interprocedural lints ride on the module-wide call graph
// (callgraph.go):
//
//   - hotclosure: //heimdall:hotpath is transitive — every function
//     statically reachable from a hotpath root must be hotpath-clean, and
//     findings report the offending call chain.
//   - ownership: struct fields annotated //heimdall:owner may only be
//     touched by the declared owners and functions provably called only
//     by them (the single-writer shard/tracker/freelist contract).
//   - taint: wall-clock, global math/rand, map-iteration order, and
//     select nondeterminism must not flow into //heimdall:nountaint
//     sinks (verdict encoders, wire frames, table emitters).
//
// Diagnostics are emitted as "file:line: [lint] message", sorted, and are
// deterministic across runs.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strings"
)

// Config selects where each lint applies. Paths are module-relative and
// slash-separated.
type Config struct {
	// WalltimeAllow lists path prefixes (directories or files) where
	// wall-clock calls are permitted, e.g. the CLIs.
	WalltimeAllow []string
	// MapOrderDirs lists directory prefixes whose packages must order (or
	// audit) their map iterations.
	MapOrderDirs []string
	// ErrDropDirs lists directory prefixes where discarded error returns
	// are diagnostics.
	ErrDropDirs []string
	// Lints selects which lints run, by name. Nil or empty means all of
	// them (the LintNames list).
	Lints []string
}

// DefaultConfig is the repository policy: CLIs may read the wall clock,
// the table-producing packages must order map iteration, and internal/ and
// cmd/ may not drop errors.
func DefaultConfig() Config {
	return Config{
		WalltimeAllow: []string{"cmd/"},
		MapOrderDirs:  []string{"internal/experiments", "internal/automl", "internal/metrics", "internal/models"},
		ErrDropDirs:   []string{"internal/", "cmd/"},
	}
}

// Diagnostic is one finding. File is module-relative and slash-separated.
type Diagnostic struct {
	File string
	Line int
	Col  int
	Lint string
	Msg  string
}

// String renders the finding in the canonical "file:line: [lint] message"
// form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", d.File, d.Line, d.Lint, d.Msg)
}

// A pass inspects one package and reports findings through report.
type pass struct {
	name string
	run  func(cfg Config, mod *Module, pkg *Package, report reporter)
}

type reporter func(pos token.Pos, msg string)

// passes is the fixed per-package lint registry, in documentation order.
var passes = []pass{
	{"walltime", walltime},
	{"globalrand", globalrand},
	{"maporder", maporder},
	{"hotpath", hotpath},
	{"errdrop", errdrop},
}

// A modulePass inspects the whole module at once — the interprocedural
// lints built on the shared call graph.
type modulePass struct {
	name string
	run  func(cfg Config, mod *Module, report reporter)
}

var modulePasses = []modulePass{
	{"hotclosure", hotclosure},
	{"ownership", ownership},
	{"taint", taint},
}

// LintNames returns the names of every registered lint, per-package passes
// first, in registry order.
func LintNames() []string {
	names := make([]string, 0, len(passes)+len(modulePasses))
	for _, p := range passes {
		names = append(names, p.name)
	}
	for _, p := range modulePasses {
		names = append(names, p.name)
	}
	return names
}

// lintEnabled applies Config.Lints (nil = everything).
func lintEnabled(cfg Config, name string) bool {
	if len(cfg.Lints) == 0 {
		return true
	}
	for _, l := range cfg.Lints {
		if l == name {
			return true
		}
	}
	return false
}

// Run loads the module rooted at root and applies every lint, returning
// the sorted, deduplicated findings. The returned slice is deterministic:
// two runs over the same tree produce identical output.
func Run(root string, cfg Config) ([]Diagnostic, error) {
	mod, err := LoadModule(root)
	if err != nil {
		return nil, err
	}
	return RunModule(mod, cfg), nil
}

// RunModule applies every enabled lint to an already-loaded module.
func RunModule(mod *Module, cfg Config) []Diagnostic {
	var diags []Diagnostic
	reporterFor := func(lint string) reporter {
		return func(pos token.Pos, msg string) {
			position := mod.Fset.Position(pos)
			rel, err := filepath.Rel(mod.Root, position.Filename)
			if err != nil {
				rel = position.Filename
			}
			diags = append(diags, Diagnostic{
				File: filepath.ToSlash(rel),
				Line: position.Line,
				Col:  position.Column,
				Lint: lint,
				Msg:  msg,
			})
		}
	}
	for _, p := range passes {
		if !lintEnabled(cfg, p.name) {
			continue
		}
		report := reporterFor(p.name)
		for _, pkg := range mod.Pkgs {
			p.run(cfg, mod, pkg, report)
		}
	}
	for _, p := range modulePasses {
		if !lintEnabled(cfg, p.name) {
			continue
		}
		p.run(cfg, mod, reporterFor(p.name))
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Lint != b.Lint {
			return a.Lint < b.Lint
		}
		return a.Msg < b.Msg
	})
	// Dedupe: a node reached through two inspection routes reports once.
	out := diags[:0]
	for i, d := range diags {
		if i == 0 || d != diags[i-1] {
			out = append(out, d)
		}
	}
	return out
}

// relFile returns the module-relative slash path of the file containing pos.
func relFile(mod *Module, pos token.Pos) string {
	name := mod.Fset.Position(pos).Filename
	rel, err := filepath.Rel(mod.Root, name)
	if err != nil {
		return filepath.ToSlash(name)
	}
	return filepath.ToSlash(rel)
}

// underAny reports whether the module-relative path is covered by any of
// the given prefixes (directory prefixes or exact file paths).
func underAny(path string, prefixes []string) bool {
	for _, p := range prefixes {
		if path == p ||
			(strings.HasSuffix(p, "/") && strings.HasPrefix(path, p)) ||
			(!strings.HasSuffix(p, "/") && strings.HasPrefix(path, p+"/")) {
			return true
		}
	}
	return false
}

// unparen strips any number of enclosing parentheses.
func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// calleeObject resolves the object a call expression invokes, or nil for
// calls through computed function values.
func calleeObject(info *types.Info, call *ast.CallExpr) types.Object {
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		return info.Uses[fun]
	case *ast.SelectorExpr:
		return info.Uses[fun.Sel]
	}
	return nil
}

// isPkgFunc reports whether obj is the package-level function pkgPath.name.
func isPkgFunc(obj types.Object, pkgPath, name string) bool {
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	return fn.Pkg().Path() == pkgPath && fn.Name() == name &&
		fn.Type().(*types.Signature).Recv() == nil
}
