package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// globalrandAllowed are the math/rand package-level functions that do not
// touch the shared global source: constructors for explicitly seeded state.
var globalrandAllowed = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true,
}

// globalrand enforces seed hygiene everywhere in the module:
//
//   - package-level math/rand functions (rand.Intn, rand.Float64,
//     rand.Shuffle, ...) draw from the process-global source and are
//     banned; randomness must flow through a seeded *rand.Rand.
//   - rand.NewSource / rand.New arguments may not be derived from the
//     wall clock (time.Now().UnixNano() and friends) — a time-derived
//     seed is exactly the nondeterminism the suite exists to stop, even
//     in walltime-allowlisted CLIs.
func globalrand(cfg Config, mod *Module, pkg *Package, report reporter) {
	_ = cfg
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj := pkg.Info.Uses[sel.Sel]
			fn, ok := obj.(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			path := fn.Pkg().Path()
			if path != "math/rand" && path != "math/rand/v2" {
				return true
			}
			if fn.Type().(*types.Signature).Recv() != nil {
				return true // methods on a seeded *rand.Rand are the sanctioned path
			}
			if !globalrandAllowed[fn.Name()] {
				report(sel.Pos(), "rand."+fn.Name()+" draws from the process-global source; "+
					"thread a seeded *rand.Rand instead")
			}
			return true
		})
		// Second walk: seed provenance of rand.NewSource / rand.New calls.
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			obj := calleeObject(pkg.Info, call)
			if obj == nil {
				return true
			}
			if !isPkgFunc(obj, "math/rand", "NewSource") && !isPkgFunc(obj, "math/rand/v2", "NewPCG") {
				return true
			}
			for _, arg := range call.Args {
				if hit, found := wallClockRead(pkg.Info, arg); found {
					report(hit.Pos(), "time-derived seed passed to rand."+obj.Name()+
						"; seeds must be explicit so runs are reproducible")
				}
			}
			return true
		})
	}
}

// wallClockRead scans an expression tree for a wall-clock read: a call to
// time.Now or to a Unix*-family method on time.Time.
func wallClockRead(info *types.Info, e ast.Expr) (ast.Node, bool) {
	var hit ast.Node
	ast.Inspect(e, func(n ast.Node) bool {
		if hit != nil {
			return false
		}
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		obj := info.Uses[sel.Sel]
		if obj == nil {
			return true
		}
		if isPkgFunc(obj, "time", "Now") {
			hit = sel
			return false
		}
		// Methods like t.UnixNano() on time.Time: flag the Unix family so a
		// seed laundered through a stored time.Time is still caught.
		if fn, ok := obj.(*types.Func); ok && fn.Pkg() != nil && fn.Pkg().Path() == "time" &&
			strings.HasPrefix(fn.Name(), "Unix") && fn.Type().(*types.Signature).Recv() != nil {
			hit = sel
			return false
		}
		return true
	})
	if hit != nil {
		return hit, true
	}
	return nil, false
}
