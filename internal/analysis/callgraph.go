package analysis

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// FuncInfo is one function or method declared in the module, as a node of
// the module-wide call graph. Edges are *static* calls only: a call whose
// callee resolves at type-check time to a module function. Calls through
// interfaces, function values, and the stdlib do not produce edges — the
// lints that ride on the graph compensate (the hotpath boxing rule guards
// the interface boundary, and ownership treats address-taken functions as
// unprovable).
type FuncInfo struct {
	Fn   *types.Func
	Decl *ast.FuncDecl
	Pkg  *Package

	// Annotations lifted from the doc comment.
	Hotpath   bool // //heimdall:hotpath — allocation-free contract root
	Coldpath  bool // //heimdall:coldpath — audited cold escape under a hot root
	Walltime  bool // //heimdall:walltime — audited wall-clock reporting
	Nountaint bool // //heimdall:nountaint — determinism sink: args must be untainted

	// Callees are the static out-edges in source order, deduplicated.
	Callees []*FuncInfo
	// Callers are the reverse edges, in deterministic (graph) order.
	Callers []*FuncInfo
	// AddrTaken reports a reference to the function outside call position
	// (stored in a variable, passed as a value, used as a method value, or
	// spawned via go/defer through a value). Such a function can be invoked
	// from anywhere, so "provably called only by X" claims must exclude it.
	AddrTaken bool
}

// Label renders the function for call-chain diagnostics: "shard.decideBatch"
// for methods, "stage" for package functions, with a "pkg." prefix when the
// function lives outside the reporting package.
func (fi *FuncInfo) Label(from *Package) string {
	name := fi.Fn.Name()
	if recv := fi.Fn.Type().(*types.Signature).Recv(); recv != nil {
		t := recv.Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			name = named.Obj().Name() + "." + name
		}
	}
	if from != nil && fi.Pkg != from {
		name = fi.Pkg.Types.Name() + "." + name
	}
	return name
}

// CallGraph indexes every declared function of a loaded module with its
// static call edges. Construction is deterministic: Funcs is ordered by
// file position, and edge lists follow source order.
type CallGraph struct {
	Funcs  []*FuncInfo
	byObj  map[*types.Func]*FuncInfo
	byDecl map[*ast.FuncDecl]*FuncInfo
}

// FuncOf returns the node for a declared module function, or nil.
func (g *CallGraph) FuncOf(fn *types.Func) *FuncInfo { return g.byObj[fn] }

// DeclOf returns the node for a declaration, or nil.
func (g *CallGraph) DeclOf(fd *ast.FuncDecl) *FuncInfo { return g.byDecl[fd] }

// Graph returns the module's call graph, building it on first use.
func (mod *Module) Graph() *CallGraph {
	if mod.graph == nil {
		mod.graph = buildCallGraph(mod)
	}
	return mod.graph
}

func buildCallGraph(mod *Module) *CallGraph {
	g := &CallGraph{
		byObj:  map[*types.Func]*FuncInfo{},
		byDecl: map[*ast.FuncDecl]*FuncInfo{},
	}
	// Pass 1: index every declaration.
	for _, pkg := range mod.Pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				fi := &FuncInfo{
					Fn:        fn,
					Decl:      fd,
					Pkg:       pkg,
					Hotpath:   hasAnnotation(fd.Doc, annHotpath),
					Coldpath:  hasAnnotation(fd.Doc, annColdpath),
					Walltime:  hasAnnotation(fd.Doc, annWalltime),
					Nountaint: hasAnnotation(fd.Doc, annNountaint),
				}
				g.Funcs = append(g.Funcs, fi)
				g.byObj[fn] = fi
				g.byDecl[fd] = fi
			}
		}
	}
	sort.Slice(g.Funcs, func(i, j int) bool {
		pi := mod.Fset.Position(g.Funcs[i].Decl.Pos())
		pj := mod.Fset.Position(g.Funcs[j].Decl.Pos())
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		return pi.Offset < pj.Offset
	})
	// Pass 2: edges and address-taken references.
	for _, fi := range g.Funcs {
		if fi.Decl.Body == nil {
			continue
		}
		collectEdges(g, fi)
	}
	for _, fi := range g.Funcs {
		for _, callee := range fi.Callees {
			callee.Callers = append(callee.Callers, fi)
		}
	}
	return g
}

// collectEdges walks one body recording static call edges and non-call
// references to module functions. Function literals nested in the body are
// attributed to the enclosing declaration: a closure's calls happen when
// the closure runs, but for the conservative analyses built on this graph,
// charging them to the declaring function is the safe direction.
func collectEdges(g *CallGraph, fi *FuncInfo) {
	info := fi.Pkg.Info
	// callNames are the identifiers consumed as the callee of a CallExpr;
	// any other use of a module function is an address-taken reference.
	callNames := map[*ast.Ident]bool{}
	seen := map[*FuncInfo]bool{}
	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		var id *ast.Ident
		switch fun := unparen(call.Fun).(type) {
		case *ast.Ident:
			id = fun
		case *ast.SelectorExpr:
			id = fun.Sel
		}
		if id == nil {
			return true
		}
		callNames[id] = true
		if fn, ok := info.Uses[id].(*types.Func); ok {
			if callee := g.byObj[fn]; callee != nil && !seen[callee] {
				seen[callee] = true
				fi.Callees = append(fi.Callees, callee)
			}
		}
		return true
	})
	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || callNames[id] {
			return true
		}
		if fn, ok := info.Uses[id].(*types.Func); ok {
			if ref := g.byObj[fn]; ref != nil {
				ref.AddrTaken = true
			}
		}
		return true
	})
}

// ownerClosure computes the set of functions provably called only from the
// given owners: the least fixed point of "all static callers are already in
// the set, there is at least one caller, and the function is never
// address-taken". Owners themselves are members by declaration.
func ownerClosure(g *CallGraph, owners map[*FuncInfo]bool) map[*FuncInfo]bool {
	allowed := map[*FuncInfo]bool{}
	for fi := range owners {
		allowed[fi] = true
	}
	for changed := true; changed; {
		changed = false
		for _, fi := range g.Funcs {
			if allowed[fi] || fi.AddrTaken || len(fi.Callers) == 0 {
				continue
			}
			all := true
			for _, c := range fi.Callers {
				if !allowed[c] {
					all = false
					break
				}
			}
			if all {
				allowed[fi] = true
				changed = true
			}
		}
	}
	return allowed
}

// chainString renders a root-to-callee path for diagnostics.
func chainString(from *Package, chain []*FuncInfo) string {
	parts := make([]string, len(chain))
	for i, fi := range chain {
		parts[i] = fi.Label(from)
	}
	return strings.Join(parts, " → ")
}
