package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// maporder guards the determinism contract of the table-producing packages
// (experiments, automl, metrics, models): ranging over a map yields keys in
// a different order every run, so any map-range there must either be
// rewritten to the sorted-keys idiom (collect keys, sort, range the slice —
// which this lint then no longer sees) or carry a //heimdall:ordered
// annotation on or directly above the range statement, acknowledging that
// the fold was audited as commutative.
func maporder(cfg Config, mod *Module, pkg *Package, report reporter) {
	if pkg.RelDir == "" || !underAny(pkg.RelDir+"/", dirsAsPrefixes(cfg.MapOrderDirs)) {
		return
	}
	for _, file := range pkg.Files {
		ordered := annotationLines(mod.Fset, file, annOrdered)
		ast.Inspect(file, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := pkg.Info.Types[rs.X]
			if !ok || tv.Type == nil {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return true
			}
			line := mod.Fset.Position(rs.Pos()).Line
			if ordered[line] || ordered[line-1] {
				return true
			}
			if isKeyCollect(pkg.Info, rs) {
				return true // the collection step of the sorted-keys idiom
			}
			report(rs.Pos(), "range over a map has nondeterministic order; sort the keys first "+
				"or annotate the statement //heimdall:ordered after auditing that the fold is commutative")
			return true
		})
	}
}

// isKeyCollect recognizes the collection step of the sorted-keys idiom —
// a range whose body is exactly `keys = append(keys, k)` for the range key
// — which is order-insensitive once the subsequent sort runs and so is not
// flagged. Any other body must be annotated or restructured.
func isKeyCollect(info *types.Info, rs *ast.RangeStmt) bool {
	key, ok := rs.Key.(*ast.Ident)
	if !ok || key.Name == "_" || rs.Value != nil || len(rs.Body.List) != 1 {
		return false
	}
	as, ok := rs.Body.List[0].(*ast.AssignStmt)
	if !ok || as.Tok != token.ASSIGN || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return false
	}
	call, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok || call.Ellipsis.IsValid() || len(call.Args) != 2 {
		return false
	}
	fun, ok := unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	if _, isBuiltin := info.Uses[fun].(*types.Builtin); !isBuiltin || fun.Name != "append" {
		return false
	}
	dst, ok1 := as.Lhs[0].(*ast.Ident)
	src, ok2 := unparen(call.Args[0]).(*ast.Ident)
	arg, ok3 := unparen(call.Args[1]).(*ast.Ident)
	return ok1 && ok2 && ok3 &&
		info.ObjectOf(dst) != nil && info.ObjectOf(dst) == info.ObjectOf(src) &&
		info.ObjectOf(arg) == info.ObjectOf(key)
}

// dirsAsPrefixes normalizes directory names to "dir/" prefixes so that
// underAny treats them as subtree roots.
func dirsAsPrefixes(dirs []string) []string {
	out := make([]string, len(dirs))
	for i, d := range dirs {
		if len(d) > 0 && d[len(d)-1] != '/' {
			d += "/"
		}
		out[i] = d
	}
	return out
}
