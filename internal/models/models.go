// Package models is the classifier zoo behind the model-exploration stage
// (§3.4, Fig. 8) and the AutoML comparison (§8.2, Fig. 18): sixteen model
// families implemented from scratch on the standard library, sharing one
// interface.
//
// All classifiers are binary with the positive class "slow" and return a
// probability-like score in [0, 1]. Training is deterministic given the
// model's seed.
package models

import (
	"errors"
	"math"
	"math/rand"
)

// Classifier is a binary classifier over dense float feature vectors.
type Classifier interface {
	Name() string
	// Fit trains on rows X with 0/1 labels y.
	Fit(X [][]float64, y []int) error
	// PredictProba scores one row: higher means more likely slow.
	PredictProba(x []float64) float64
}

// ErrEmptyTrainingSet is returned by Fit on empty input.
var ErrEmptyTrainingSet = errors.New("models: empty training set")

// ErrSingleClass is returned when training data contains only one class.
var ErrSingleClass = errors.New("models: training data has a single class")

func checkXY(X [][]float64, y []int) error {
	if len(X) == 0 || len(X) != len(y) {
		return ErrEmptyTrainingSet
	}
	var pos, neg bool
	for _, l := range y {
		if l == 1 {
			pos = true
		} else {
			neg = true
		}
	}
	if !pos || !neg {
		return ErrSingleClass
	}
	return nil
}

// Zoo returns the sixteen classifiers of Fig. 18, in the figure's order,
// with their default hyperparameters.
func Zoo(seed int64) []Classifier {
	return []Classifier{
		NewSGDClassifier(seed, 0.05, 5),
		NewPassiveAggressive(seed, 1.0, 5),
		NewLinearSVM(seed, 0.05, 1e-4, 5),
		NewSVC(seed, 64, 0.5, 0.05, 5),
		NewKNN(7, 2000, seed),
		NewBernoulliNB(1.0),
		NewGaussianNB(),
		NewMultinomialNB(1.0),
		NewDecisionTree(8, 20, seed),
		NewQDA(1e-3),
		NewLDA(1e-3),
		NewAdaBoost(40, seed),
		NewGradientBoosting(60, 3, 0.1, seed),
		NewRandomForest(40, 10, seed),
		NewExtraTrees(40, 10, seed),
		NewMLP(seed, []int{64, 16}, 15),
	}
}

// Fig8Models returns the eight model families compared in Fig. 8.
func Fig8Models(seed int64) []Classifier {
	return []Classifier{
		NewMLP(seed, []int{128, 16}, 20), // "NN"
		NewRNN(seed, 16, 10),
		NewSVC(seed, 64, 0.5, 0.05, 5),
		NewKNN(7, 2000, seed),
		NewSGDClassifier(seed, 0.05, 8), // "LogReg"
		NewAdaBoost(40, seed),
		NewGradientBoosting(60, 3, 0.1, seed), // "LightGBM" stand-in
		NewRandomForest(40, 10, seed),
	}
}

func sigmoid(z float64) float64 { return 1 / (1 + math.Exp(-z)) }

func dot(w, x []float64) float64 {
	var s float64
	for i, v := range x {
		if i >= len(w) {
			break
		}
		s += w[i] * v
	}
	return s
}

func shuffled(rng *rand.Rand, n int) []int {
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	rng.Shuffle(n, func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
	return idx
}

func clamp01p(p float64) float64 {
	if p < 0 {
		return 0
	}
	if p > 1 {
		return 1
	}
	return p
}
