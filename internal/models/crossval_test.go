package models

import (
	"testing"
)

func TestCrossValidateSeparable(t *testing.T) {
	X, y := blobs(21, 600, 4)
	scores, mean, err := CrossValidate(func() Classifier {
		return NewSGDClassifier(1, 0.05, 5)
	}, X, y, 5, 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(scores) != 5 {
		t.Fatalf("folds %d", len(scores))
	}
	if mean < 0.9 {
		t.Fatalf("mean CV AUC %.3f on separable blobs", mean)
	}
	for i, s := range scores {
		if s < 0.8 {
			t.Fatalf("fold %d AUC %.3f", i, s)
		}
	}
}

func TestCrossValidateDeterministic(t *testing.T) {
	X, y := blobs(22, 300, 3)
	_, a, err := CrossValidate(func() Classifier { return NewDecisionTree(4, 8, 3) }, X, y, 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	_, b, err := CrossValidate(func() Classifier { return NewDecisionTree(4, 8, 3) }, X, y, 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("cross-validation not deterministic")
	}
}

func TestCrossValidateWorkersMatchesSerial(t *testing.T) {
	// Fold scores must be byte-identical at any worker count: the shuffle is
	// drawn before the fan-out and each fold is a pure function of its index.
	X, y := blobs(25, 400, 4)
	build := func() Classifier { return NewRandomForest(12, 5, 17) }
	serial, meanS, err := CrossValidateWorkers(build, X, y, 5, 13, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 8} {
		par, meanP, err := CrossValidateWorkers(build, X, y, 5, 13, workers)
		if err != nil {
			t.Fatal(err)
		}
		if meanP != meanS {
			t.Fatalf("workers=%d mean %v != serial %v", workers, meanP, meanS)
		}
		for i := range par {
			if par[i] != serial[i] {
				t.Fatalf("workers=%d fold %d: %v != %v", workers, i, par[i], serial[i])
			}
		}
	}
}

func TestCrossValidateErrors(t *testing.T) {
	X, y := blobs(23, 50, 2)
	if _, _, err := CrossValidate(func() Classifier { return NewGaussianNB() }, X, y, 1, 1); err == nil {
		t.Fatal("k=1 accepted")
	}
	if _, _, err := CrossValidate(func() Classifier { return NewGaussianNB() }, X[:3], y[:3], 5, 1); err == nil {
		t.Fatal("fewer rows than folds accepted")
	}
	if _, _, err := CrossValidate(func() Classifier { return NewGaussianNB() }, X, y[:10], 5, 1); err == nil {
		t.Fatal("mismatched labels accepted")
	}
}

func TestCrossValidateDegenerateFoldScoresNeutral(t *testing.T) {
	// Nearly single-class data: folds without both classes must score 0.5,
	// not abort.
	X := make([][]float64, 40)
	y := make([]int, 40)
	for i := range X {
		X[i] = []float64{float64(i)}
	}
	y[0] = 1 // a single positive
	scores, _, err := CrossValidate(func() Classifier { return NewGaussianNB() }, X, y, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	neutral := 0
	for _, s := range scores {
		if s == 0.5 {
			neutral++
		}
	}
	if neutral < 3 {
		t.Fatalf("expected most folds neutral, got %d", neutral)
	}
}

func TestSelectByCV(t *testing.T) {
	// Rings: the tree should beat the linear model.
	X, y := rings(24, 800)
	name, score, err := SelectByCV(map[string]func() Classifier{
		"linear": func() Classifier { return NewSGDClassifier(1, 0.05, 5) },
		"tree":   func() Classifier { return NewDecisionTree(8, 8, 1) },
	}, X, y, 4, 11)
	if err != nil {
		t.Fatal(err)
	}
	if name != "tree" {
		t.Fatalf("selected %q (%.3f), want tree", name, score)
	}
	if _, _, err := SelectByCV(nil, X, y, 4, 1); err == nil {
		t.Fatal("empty candidate set accepted")
	}
}
