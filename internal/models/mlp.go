package models

import (
	"math"
	"math/rand"

	"repro/internal/nn"
)

// MLP is a multi-layer perceptron backed by the nn package — the "NN" /
// "Multi-Layer Perceptron" zoo entry and the architecture Heimdall itself
// refines in §3.5.
type MLP struct {
	seed   int64
	hidden []int
	epochs int
	net    *nn.Network
}

// NewMLP constructs the classifier with the given hidden layer widths.
func NewMLP(seed int64, hidden []int, epochs int) *MLP {
	return &MLP{seed: seed, hidden: hidden, epochs: epochs}
}

// Name implements Classifier.
func (c *MLP) Name() string { return "mlp" }

// Fit implements Classifier.
func (c *MLP) Fit(X [][]float64, y []int) error {
	if err := checkXY(X, y); err != nil {
		return err
	}
	layers := make([]nn.LayerSpec, 0, len(c.hidden)+1)
	for _, h := range c.hidden {
		layers = append(layers, nn.LayerSpec{Units: h, Act: nn.ReLU})
	}
	layers = append(layers, nn.LayerSpec{Units: 1, Act: nn.Sigmoid})
	net, err := nn.New(nn.Config{
		Inputs: len(X[0]), Layers: layers, Seed: c.seed,
		Optimizer: nn.Adam, Loss: nn.BCE, LR: 0.005, Epochs: c.epochs, Batch: 64,
	})
	if err != nil {
		return err
	}
	yf := make([]float64, len(y))
	for i, l := range y {
		yf[i] = float64(l)
	}
	if _, err := net.Train(X, yf); err != nil {
		return err
	}
	c.net = net
	return nil
}

// PredictProba implements Classifier.
func (c *MLP) PredictProba(x []float64) float64 {
	if c.net == nil {
		return 0.5
	}
	return c.net.Predict(x)
}

// RNN is a minimal Elman recurrent network. The flat feature vector is
// interpreted as a short sequence (one step per historical depth), which is
// the natural reading of Heimdall's history features. It exists for the
// Fig. 8 model-exploration comparison.
type RNN struct {
	seed   int64
	hidden int
	epochs int

	steps, stepW int
	wxh, whh     []float64 // hidden x step, hidden x hidden
	bh           []float64
	why          []float64 // 1 x hidden
	by           float64
}

// NewRNN constructs the classifier.
func NewRNN(seed int64, hidden, epochs int) *RNN {
	return &RNN{seed: seed, hidden: hidden, epochs: epochs}
}

// Name implements Classifier.
func (c *RNN) Name() string { return "rnn" }

// reshape splits a flat feature vector into timesteps. We use 3 steps when
// divisible, otherwise one feature per step.
func (c *RNN) reshape(x []float64) [][]float64 {
	steps := c.steps
	stepW := c.stepW
	out := make([][]float64, steps)
	for s := 0; s < steps; s++ {
		lo := s * stepW
		hi := lo + stepW
		if hi > len(x) {
			hi = len(x)
		}
		if lo >= len(x) {
			out[s] = make([]float64, stepW)
			continue
		}
		step := make([]float64, stepW)
		copy(step, x[lo:hi])
		out[s] = step
	}
	return out
}

func (c *RNN) chooseShape(width int) {
	for _, steps := range []int{3, 4, 2} {
		if width%steps == 0 {
			c.steps, c.stepW = steps, width/steps
			return
		}
	}
	c.steps, c.stepW = width, 1
}

// Fit implements Classifier via truncated BPTT with SGD.
func (c *RNN) Fit(X [][]float64, y []int) error {
	if err := checkXY(X, y); err != nil {
		return err
	}
	c.chooseShape(len(X[0]))
	rng := rand.New(rand.NewSource(c.seed))
	h := c.hidden
	c.wxh = randSlice(rng, h*c.stepW, math.Sqrt(1/float64(c.stepW)))
	c.whh = randSlice(rng, h*h, math.Sqrt(1/float64(h)))
	c.bh = make([]float64, h)
	c.why = randSlice(rng, h, math.Sqrt(1/float64(h)))
	c.by = 0

	lr := 0.01
	hs := make([][]float64, c.steps+1)
	for e := 0; e < c.epochs; e++ {
		for _, i := range shuffled(rng, len(X)) {
			seq := c.reshape(X[i])
			// Forward.
			hs[0] = make([]float64, h)
			for s := 0; s < c.steps; s++ {
				cur := make([]float64, h)
				for j := 0; j < h; j++ {
					z := c.bh[j] + dot(c.wxh[j*c.stepW:(j+1)*c.stepW], seq[s])
					for k := 0; k < h; k++ {
						z += c.whh[j*h+k] * hs[s][k]
					}
					cur[j] = math.Tanh(z)
				}
				hs[s+1] = cur
			}
			p := sigmoid(dot(c.why, hs[c.steps]) + c.by)
			dz := p - float64(y[i])
			// Backward through time.
			dh := make([]float64, h)
			for j := 0; j < h; j++ {
				dh[j] = dz * c.why[j]
				c.why[j] -= lr * dz * hs[c.steps][j]
			}
			c.by -= lr * dz
			for s := c.steps - 1; s >= 0; s-- {
				dzh := make([]float64, h)
				for j := 0; j < h; j++ {
					dzh[j] = dh[j] * (1 - hs[s+1][j]*hs[s+1][j])
				}
				next := make([]float64, h)
				for j := 0; j < h; j++ {
					g := dzh[j]
					for k := 0; k < c.stepW; k++ {
						c.wxh[j*c.stepW+k] -= lr * g * seq[s][k]
					}
					for k := 0; k < h; k++ {
						next[k] += c.whh[j*h+k] * g
						c.whh[j*h+k] -= lr * g * hs[s][k]
					}
					c.bh[j] -= lr * g
				}
				dh = next
			}
		}
	}
	return nil
}

// PredictProba implements Classifier.
func (c *RNN) PredictProba(x []float64) float64 {
	if c.wxh == nil {
		return 0.5
	}
	seq := c.reshape(x)
	h := c.hidden
	prev := make([]float64, h)
	cur := make([]float64, h)
	for s := 0; s < c.steps; s++ {
		for j := 0; j < h; j++ {
			z := c.bh[j] + dot(c.wxh[j*c.stepW:(j+1)*c.stepW], seq[s])
			for k := 0; k < h; k++ {
				z += c.whh[j*h+k] * prev[k]
			}
			cur[j] = math.Tanh(z)
		}
		prev, cur = cur, prev
	}
	return sigmoid(dot(c.why, prev) + c.by)
}

func randSlice(rng *rand.Rand, n int, scale float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = rng.NormFloat64() * scale
	}
	return out
}
