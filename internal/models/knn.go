package models

import (
	"math/rand"
	"sort"
)

// KNN is a k-nearest-neighbors classifier. To keep inference tractable the
// training set is reservoir-subsampled to maxTrain points (scikit-learn's
// exact KNN over millions of I/Os is precisely the kind of deployment cost
// Fig. 8 penalizes).
type KNN struct {
	k        int
	maxTrain int
	seed     int64
	X        [][]float64
	y        []int
}

// NewKNN constructs the classifier.
func NewKNN(k, maxTrain int, seed int64) *KNN {
	if k < 1 {
		k = 1
	}
	return &KNN{k: k, maxTrain: maxTrain, seed: seed}
}

// Name implements Classifier.
func (c *KNN) Name() string { return "knn" }

// Fit implements Classifier.
func (c *KNN) Fit(X [][]float64, y []int) error {
	if err := checkXY(X, y); err != nil {
		return err
	}
	if c.maxTrain <= 0 || len(X) <= c.maxTrain {
		c.X = X
		c.y = y
		return nil
	}
	rng := rand.New(rand.NewSource(c.seed))
	idx := shuffled(rng, len(X))[:c.maxTrain]
	sort.Ints(idx)
	c.X = make([][]float64, len(idx))
	c.y = make([]int, len(idx))
	for i, j := range idx {
		c.X[i] = X[j]
		c.y[i] = y[j]
	}
	return nil
}

// PredictProba implements Classifier.
func (c *KNN) PredictProba(x []float64) float64 {
	if len(c.X) == 0 {
		return 0.5
	}
	k := c.k
	if k > len(c.X) {
		k = len(c.X)
	}
	// Max-heap of the k smallest distances, tracked as a simple slice since
	// k is tiny.
	type nb struct {
		d float64
		y int
	}
	best := make([]nb, 0, k)
	worst := -1.0
	for i, p := range c.X {
		var d float64
		for j, v := range x {
			if j >= len(p) {
				break
			}
			dv := v - p[j]
			d += dv * dv
		}
		if len(best) < k {
			best = append(best, nb{d, c.y[i]})
			if d > worst {
				worst = d
			}
			continue
		}
		if d >= worst {
			continue
		}
		// Replace the current worst.
		wi, wd := 0, -1.0
		for bi, b := range best {
			if b.d > wd {
				wd = b.d
				wi = bi
			}
		}
		best[wi] = nb{d, c.y[i]}
		worst = -1
		for _, b := range best {
			if b.d > worst {
				worst = b.d
			}
		}
	}
	pos := 0
	for _, b := range best {
		pos += b.y
	}
	return float64(pos) / float64(len(best))
}
