package models

import (
	"math"
	"math/rand"
	"sort"
)

// treeNode is one node of a CART tree. Leaves have feat == -1 and carry the
// prediction in value.
type treeNode struct {
	feat        int
	thresh      float64
	left, right int32 // child indices; -1 for none
	value       float64
}

// cartTree is a compact array-backed CART tree usable for classification
// (leaf value = positive fraction) or regression (leaf value = mean target).
type cartTree struct {
	nodes []treeNode
}

func (t *cartTree) predict(x []float64) float64 {
	i := int32(0)
	for {
		n := &t.nodes[i]
		if n.feat < 0 {
			return n.value
		}
		f := 0.0
		if n.feat < len(x) {
			f = x[n.feat]
		}
		if f <= n.thresh {
			i = n.left
		} else {
			i = n.right
		}
	}
}

// cartOpts controls the builder.
type cartOpts struct {
	maxDepth    int
	minSamples  int
	maxFeatures int  // per split; 0 = all
	randomSplit bool // ExtraTrees: random threshold instead of best
	regression  bool // variance reduction instead of gini
	rng         *rand.Rand
}

// buildCART grows a tree over the sample indices idx. X rows are shared,
// target is y (0/1 for classification, arbitrary floats for regression).
func buildCART(X [][]float64, target []float64, idx []int, o cartOpts) *cartTree {
	t := &cartTree{}
	t.grow(X, target, idx, 0, o)
	return t
}

func (t *cartTree) grow(X [][]float64, target []float64, idx []int, depth int, o cartOpts) int32 {
	self := int32(len(t.nodes))
	t.nodes = append(t.nodes, treeNode{feat: -1, left: -1, right: -1})

	var sum float64
	for _, i := range idx {
		sum += target[i]
	}
	mean := sum / float64(len(idx))
	t.nodes[self].value = mean

	if depth >= o.maxDepth || len(idx) < o.minSamples || pure(target, idx) {
		return self
	}

	d := len(X[idx[0]])
	feats := make([]int, d)
	for i := range feats {
		feats[i] = i
	}
	if o.maxFeatures > 0 && o.maxFeatures < d {
		o.rng.Shuffle(d, func(i, j int) { feats[i], feats[j] = feats[j], feats[i] })
		feats = feats[:o.maxFeatures]
	}

	bestFeat, bestThresh, bestScore := -1, 0.0, math.Inf(1)
	for _, f := range feats {
		var thresh float64
		var score float64
		var ok bool
		if o.randomSplit {
			thresh, score, ok = randomSplitScore(X, target, idx, f, o)
		} else {
			thresh, score, ok = bestSplitScore(X, target, idx, f, o)
		}
		if ok && score < bestScore {
			bestFeat, bestThresh, bestScore = f, thresh, score
		}
	}
	if bestFeat < 0 {
		return self
	}

	var left, right []int
	for _, i := range idx {
		if X[i][bestFeat] <= bestThresh {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	if len(left) == 0 || len(right) == 0 {
		return self
	}
	t.nodes[self].feat = bestFeat
	t.nodes[self].thresh = bestThresh
	l := t.grow(X, target, left, depth+1, o)
	r := t.grow(X, target, right, depth+1, o)
	t.nodes[self].left = l
	t.nodes[self].right = r
	return self
}

func pure(target []float64, idx []int) bool {
	first := target[idx[0]]
	for _, i := range idx[1:] {
		if target[i] != first {
			return false
		}
	}
	return true
}

// impurity of a child partition: gini for classification, variance for
// regression, both weighted by size.
func impurity(sum, sumSq, n float64, regression bool) float64 {
	if n == 0 {
		return 0
	}
	if regression {
		mean := sum / n
		return sumSq - n*mean*mean // n * variance
	}
	p := sum / n
	return n * 2 * p * (1 - p) // n * gini (binary)
}

func bestSplitScore(X [][]float64, target []float64, idx []int, f int, o cartOpts) (thresh, score float64, ok bool) {
	type pair struct {
		v, t float64
	}
	pairs := make([]pair, len(idx))
	var totSum, totSq float64
	for i, id := range idx {
		pairs[i] = pair{X[id][f], target[id]}
		totSum += target[id]
		totSq += target[id] * target[id]
	}
	sort.Slice(pairs, func(a, b int) bool { return pairs[a].v < pairs[b].v })
	if pairs[0].v == pairs[len(pairs)-1].v {
		return 0, 0, false
	}
	var leftSum, leftSq float64
	best := math.Inf(1)
	n := float64(len(pairs))
	for i := 0; i < len(pairs)-1; i++ {
		leftSum += pairs[i].t
		leftSq += pairs[i].t * pairs[i].t
		if pairs[i].v == pairs[i+1].v {
			continue
		}
		ln := float64(i + 1)
		s := impurity(leftSum, leftSq, ln, o.regression) +
			impurity(totSum-leftSum, totSq-leftSq, n-ln, o.regression)
		if s < best {
			best = s
			thresh = (pairs[i].v + pairs[i+1].v) / 2
		}
	}
	if math.IsInf(best, 1) {
		return 0, 0, false
	}
	return thresh, best, true
}

func randomSplitScore(X [][]float64, target []float64, idx []int, f int, o cartOpts) (thresh, score float64, ok bool) {
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, id := range idx {
		v := X[id][f]
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if lo == hi {
		return 0, 0, false
	}
	thresh = lo + o.rng.Float64()*(hi-lo)
	var lSum, lSq, rSum, rSq, ln, rn float64
	for _, id := range idx {
		t := target[id]
		if X[id][f] <= thresh {
			lSum += t
			lSq += t * t
			ln++
		} else {
			rSum += t
			rSq += t * t
			rn++
		}
	}
	if ln == 0 || rn == 0 {
		return 0, 0, false
	}
	return thresh, impurity(lSum, lSq, ln, o.regression) + impurity(rSum, rSq, rn, o.regression), true
}

// DecisionTree is a single CART classifier.
type DecisionTree struct {
	maxDepth   int
	minSamples int
	seed       int64
	tree       *cartTree
}

// NewDecisionTree constructs the classifier.
func NewDecisionTree(maxDepth, minSamples int, seed int64) *DecisionTree {
	return &DecisionTree{maxDepth: maxDepth, minSamples: minSamples, seed: seed}
}

// Name implements Classifier.
func (c *DecisionTree) Name() string { return "decision-tree" }

// Fit implements Classifier.
func (c *DecisionTree) Fit(X [][]float64, y []int) error {
	if err := checkXY(X, y); err != nil {
		return err
	}
	target := make([]float64, len(y))
	for i, l := range y {
		target[i] = float64(l)
	}
	idx := make([]int, len(X))
	for i := range idx {
		idx[i] = i
	}
	c.tree = buildCART(X, target, idx, cartOpts{
		maxDepth: c.maxDepth, minSamples: c.minSamples,
		rng: rand.New(rand.NewSource(c.seed)),
	})
	return nil
}

// PredictProba implements Classifier.
func (c *DecisionTree) PredictProba(x []float64) float64 {
	if c.tree == nil {
		return 0.5
	}
	return c.tree.predict(x)
}
