package models

import "math"

// LDA is linear discriminant analysis with a pooled, regularized covariance.
type LDA struct {
	reg   float64
	w     []float64
	b     float64
	ready bool
}

// NewLDA constructs the classifier with ridge regularization reg added to
// the covariance diagonal.
func NewLDA(reg float64) *LDA { return &LDA{reg: reg} }

// Name implements Classifier.
func (c *LDA) Name() string { return "lda" }

// Fit implements Classifier.
func (c *LDA) Fit(X [][]float64, y []int) error {
	if err := checkXY(X, y); err != nil {
		return err
	}
	d := len(X[0])
	mean := [2][]float64{make([]float64, d), make([]float64, d)}
	var count [2]float64
	for i, x := range X {
		k := y[i]
		count[k]++
		for j, v := range x {
			mean[k][j] += v
		}
	}
	for k := 0; k < 2; k++ {
		for j := range mean[k] {
			mean[k][j] /= count[k]
		}
	}
	// Pooled covariance.
	cov := newMat(d)
	for i, x := range X {
		k := y[i]
		for a := 0; a < d; a++ {
			da := x[a] - mean[k][a]
			for b := a; b < d; b++ {
				cov[a][b] += da * (x[b] - mean[k][b])
			}
		}
	}
	n := float64(len(X))
	for a := 0; a < d; a++ {
		for b := a; b < d; b++ {
			v := cov[a][b] / n
			cov[a][b] = v
			cov[b][a] = v
		}
		cov[a][a] += c.reg
	}
	inv, ok := invert(cov)
	if !ok {
		return ErrSingleClass
	}
	// w = Σ^-1 (μ1 - μ0); b from priors and means.
	diff := make([]float64, d)
	for j := range diff {
		diff[j] = mean[1][j] - mean[0][j]
	}
	c.w = matVec(inv, diff)
	m0w := dot(c.w, mean[0])
	m1w := dot(c.w, mean[1])
	c.b = -(m0w+m1w)/2 + math.Log(count[1]/count[0])
	c.ready = true
	return nil
}

// PredictProba implements Classifier.
func (c *LDA) PredictProba(x []float64) float64 {
	if !c.ready {
		return 0.5
	}
	return sigmoid(dot(c.w, x) + c.b)
}

// QDA is quadratic discriminant analysis with per-class regularized
// covariance matrices.
type QDA struct {
	reg    float64
	prior  [2]float64
	mean   [2][]float64
	inv    [2][][]float64
	logDet [2]float64
	ready  bool
}

// NewQDA constructs the classifier.
func NewQDA(reg float64) *QDA { return &QDA{reg: reg} }

// Name implements Classifier.
func (c *QDA) Name() string { return "qda" }

// Fit implements Classifier.
func (c *QDA) Fit(X [][]float64, y []int) error {
	if err := checkXY(X, y); err != nil {
		return err
	}
	d := len(X[0])
	var count [2]float64
	for k := 0; k < 2; k++ {
		c.mean[k] = make([]float64, d)
	}
	for i, x := range X {
		k := y[i]
		count[k]++
		for j, v := range x {
			c.mean[k][j] += v
		}
	}
	for k := 0; k < 2; k++ {
		for j := range c.mean[k] {
			c.mean[k][j] /= count[k]
		}
		c.prior[k] = count[k] / float64(len(X))
	}
	for k := 0; k < 2; k++ {
		cov := newMat(d)
		for i, x := range X {
			if y[i] != k {
				continue
			}
			for a := 0; a < d; a++ {
				da := x[a] - c.mean[k][a]
				for b := a; b < d; b++ {
					cov[a][b] += da * (x[b] - c.mean[k][b])
				}
			}
		}
		for a := 0; a < d; a++ {
			for b := a; b < d; b++ {
				v := cov[a][b] / count[k]
				cov[a][b] = v
				cov[b][a] = v
			}
			cov[a][a] += c.reg
		}
		var det float64
		inv, ok := invertLogDet(cov, &det)
		if !ok {
			return ErrSingleClass
		}
		c.inv[k] = inv
		c.logDet[k] = det
	}
	c.ready = true
	return nil
}

func (c *QDA) logLik(x []float64, k int) float64 {
	d := len(c.mean[k])
	diff := make([]float64, d)
	for j := 0; j < d && j < len(x); j++ {
		diff[j] = x[j] - c.mean[k][j]
	}
	md := dot(diff, matVec(c.inv[k], diff))
	return math.Log(c.prior[k]+1e-12) - 0.5*c.logDet[k] - 0.5*md
}

// PredictProba implements Classifier.
func (c *QDA) PredictProba(x []float64) float64 {
	if !c.ready {
		return 0.5
	}
	return sigmoid(c.logLik(x, 1) - c.logLik(x, 0))
}

func newMat(d int) [][]float64 {
	m := make([][]float64, d)
	buf := make([]float64, d*d)
	for i := range m {
		m[i] = buf[i*d : (i+1)*d]
	}
	return m
}

func matVec(m [][]float64, v []float64) []float64 {
	out := make([]float64, len(m))
	for i, row := range m {
		out[i] = dot(row, v)
	}
	return out
}

// invert computes the inverse of a square matrix by Gauss-Jordan with
// partial pivoting. It does not modify its input.
func invert(m [][]float64) ([][]float64, bool) {
	var dummy float64
	return invertLogDet(m, &dummy)
}

func invertLogDet(m [][]float64, logDet *float64) ([][]float64, bool) {
	d := len(m)
	a := newMat(d)
	inv := newMat(d)
	for i := range m {
		copy(a[i], m[i])
		inv[i][i] = 1
	}
	*logDet = 0
	for col := 0; col < d; col++ {
		// Partial pivot.
		piv := col
		for r := col + 1; r < d; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[piv][col]) {
				piv = r
			}
		}
		if math.Abs(a[piv][col]) < 1e-12 {
			return nil, false
		}
		a[col], a[piv] = a[piv], a[col]
		inv[col], inv[piv] = inv[piv], inv[col]
		p := a[col][col]
		*logDet += math.Log(math.Abs(p))
		invP := 1 / p
		for j := 0; j < d; j++ {
			a[col][j] *= invP
			inv[col][j] *= invP
		}
		for r := 0; r < d; r++ {
			if r == col {
				continue
			}
			f := a[r][col]
			if f == 0 {
				continue
			}
			for j := 0; j < d; j++ {
				a[r][j] -= f * a[col][j]
				inv[r][j] -= f * inv[col][j]
			}
		}
	}
	return inv, true
}
