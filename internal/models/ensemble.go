package models

import (
	"math"
	"math/rand"
	"sort"
)

// RandomForest is a bagged ensemble of CART trees with per-split feature
// subsampling.
type RandomForest struct {
	trees    int
	maxDepth int
	seed     int64
	extra    bool // ExtraTrees mode: random thresholds, no bootstrap
	forest   []*cartTree
}

// NewRandomForest constructs the classifier.
func NewRandomForest(trees, maxDepth int, seed int64) *RandomForest {
	return &RandomForest{trees: trees, maxDepth: maxDepth, seed: seed}
}

// NewExtraTrees constructs an extremely-randomized-trees classifier.
func NewExtraTrees(trees, maxDepth int, seed int64) *RandomForest {
	return &RandomForest{trees: trees, maxDepth: maxDepth, seed: seed, extra: true}
}

// Name implements Classifier.
func (c *RandomForest) Name() string {
	if c.extra {
		return "extra-trees"
	}
	return "random-forest"
}

// Fit implements Classifier.
func (c *RandomForest) Fit(X [][]float64, y []int) error {
	if err := checkXY(X, y); err != nil {
		return err
	}
	target := make([]float64, len(y))
	for i, l := range y {
		target[i] = float64(l)
	}
	d := len(X[0])
	mtry := int(math.Sqrt(float64(d)))
	if mtry < 1 {
		mtry = 1
	}
	c.forest = make([]*cartTree, c.trees)
	for t := 0; t < c.trees; t++ {
		rng := rand.New(rand.NewSource(c.seed + int64(t)*7919))
		idx := make([]int, len(X))
		if c.extra {
			for i := range idx {
				idx[i] = i
			}
		} else {
			for i := range idx {
				idx[i] = rng.Intn(len(X))
			}
		}
		c.forest[t] = buildCART(X, target, idx, cartOpts{
			maxDepth: c.maxDepth, minSamples: 8, maxFeatures: mtry,
			randomSplit: c.extra, rng: rng,
		})
	}
	return nil
}

// PredictProba implements Classifier.
func (c *RandomForest) PredictProba(x []float64) float64 {
	if len(c.forest) == 0 {
		return 0.5
	}
	var s float64
	for _, t := range c.forest {
		s += t.predict(x)
	}
	return s / float64(len(c.forest))
}

// stump is a one-level decision tree used by AdaBoost.
type stump struct {
	feat     int
	thresh   float64
	polarity float64 // +1: predict slow when value > thresh
	alpha    float64
}

func (s stump) predict(x []float64) float64 {
	v := 0.0
	if s.feat < len(x) {
		v = x[s.feat]
	}
	if (v > s.thresh) == (s.polarity > 0) {
		return 1
	}
	return -1
}

// AdaBoost is SAMME AdaBoost over decision stumps.
type AdaBoost struct {
	rounds int
	seed   int64
	stumps []stump
}

// NewAdaBoost constructs the classifier.
func NewAdaBoost(rounds int, seed int64) *AdaBoost {
	return &AdaBoost{rounds: rounds, seed: seed}
}

// Name implements Classifier.
func (c *AdaBoost) Name() string { return "adaboost" }

// Fit implements Classifier.
func (c *AdaBoost) Fit(X [][]float64, y []int) error {
	if err := checkXY(X, y); err != nil {
		return err
	}
	n := len(X)
	d := len(X[0])
	w := make([]float64, n)
	for i := range w {
		w[i] = 1 / float64(n)
	}
	t := make([]float64, n) // ±1 targets
	for i, l := range y {
		t[i] = 2*float64(l) - 1
	}
	// Pre-sort each feature once.
	order := make([][]int, d)
	for f := 0; f < d; f++ {
		idx := make([]int, n)
		for i := range idx {
			idx[i] = i
		}
		ff := f
		sort.Slice(idx, func(a, b int) bool { return X[idx[a]][ff] < X[idx[b]][ff] })
		order[f] = idx
	}
	c.stumps = c.stumps[:0]
	for round := 0; round < c.rounds; round++ {
		best := stump{feat: -1}
		bestErr := math.Inf(1)
		for f := 0; f < d; f++ {
			idx := order[f]
			// err(+1 polarity, thresh before first) = weighted positives
			// below... scan thresholds accumulating weighted labels.
			var posAbove, total float64
			for i := range w {
				if t[i] > 0 {
					posAbove += w[i]
				}
				total += w[i]
			}
			negAbove := total - posAbove
			// With everything "above" the threshold: polarity +1 predicts
			// all slow → error = weight of negatives above.
			errPlus := negAbove
			if errPlus < bestErr {
				bestErr = errPlus
				best = stump{feat: f, thresh: math.Inf(-1), polarity: +1}
			}
			if total-errPlus < bestErr {
				bestErr = total - errPlus
				best = stump{feat: f, thresh: math.Inf(-1), polarity: -1}
			}
			for k := 0; k < n-1; k++ {
				i := idx[k]
				if t[i] > 0 {
					posAbove -= w[i]
					errPlus += w[i] // a positive moved below → misclassified by +1
				} else {
					errPlus -= w[i]
				}
				if X[idx[k]][f] == X[idx[k+1]][f] {
					continue
				}
				th := (X[idx[k]][f] + X[idx[k+1]][f]) / 2
				if errPlus < bestErr {
					bestErr = errPlus
					best = stump{feat: f, thresh: th, polarity: +1}
				}
				if total-errPlus < bestErr {
					bestErr = total - errPlus
					best = stump{feat: f, thresh: th, polarity: -1}
				}
			}
		}
		if best.feat < 0 {
			break
		}
		eps := bestErr
		if eps <= 1e-10 {
			best.alpha = 10
			c.stumps = append(c.stumps, best)
			break
		}
		if eps >= 0.5 {
			break
		}
		best.alpha = 0.5 * math.Log((1-eps)/eps)
		c.stumps = append(c.stumps, best)
		var sum float64
		for i := range w {
			w[i] *= math.Exp(-best.alpha * t[i] * best.predict(X[i]))
			sum += w[i]
		}
		for i := range w {
			w[i] /= sum
		}
	}
	return nil
}

// PredictProba implements Classifier.
func (c *AdaBoost) PredictProba(x []float64) float64 {
	if len(c.stumps) == 0 {
		return 0.5
	}
	var s, norm float64
	for _, st := range c.stumps {
		s += st.alpha * st.predict(x)
		norm += st.alpha
	}
	return sigmoid(2 * s / math.Max(norm, 1e-9))
}

// GradientBoosting is gradient-boosted regression trees on the logistic
// loss — the stand-in for LightGBM in Fig. 8.
type GradientBoosting struct {
	rounds   int
	maxDepth int
	lr       float64
	seed     int64
	f0       float64
	trees    []*cartTree
}

// NewGradientBoosting constructs the classifier.
func NewGradientBoosting(rounds, maxDepth int, lr float64, seed int64) *GradientBoosting {
	return &GradientBoosting{rounds: rounds, maxDepth: maxDepth, lr: lr, seed: seed}
}

// Name implements Classifier.
func (c *GradientBoosting) Name() string { return "gradient-boosting" }

// Fit implements Classifier.
func (c *GradientBoosting) Fit(X [][]float64, y []int) error {
	if err := checkXY(X, y); err != nil {
		return err
	}
	n := len(X)
	var pos float64
	for _, l := range y {
		pos += float64(l)
	}
	p := pos / float64(n)
	c.f0 = math.Log(p / (1 - p))
	f := make([]float64, n)
	for i := range f {
		f[i] = c.f0
	}
	resid := make([]float64, n)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	rng := rand.New(rand.NewSource(c.seed))
	c.trees = c.trees[:0]
	for round := 0; round < c.rounds; round++ {
		for i := range resid {
			resid[i] = float64(y[i]) - sigmoid(f[i])
		}
		t := buildCART(X, resid, idx, cartOpts{
			maxDepth: c.maxDepth, minSamples: 16, regression: true, rng: rng,
		})
		c.trees = append(c.trees, t)
		for i := range f {
			f[i] += c.lr * t.predict(X[i])
		}
	}
	return nil
}

// PredictProba implements Classifier.
func (c *GradientBoosting) PredictProba(x []float64) float64 {
	if len(c.trees) == 0 {
		return 0.5
	}
	f := c.f0
	for _, t := range c.trees {
		f += c.lr * t.predict(x)
	}
	return sigmoid(f)
}
