package models

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/metrics"
)

// blobs generates two noisy Gaussian clusters, linearly separable-ish.
func blobs(seed int64, n, d int) ([][]float64, []int) {
	rng := rand.New(rand.NewSource(seed))
	X := make([][]float64, n)
	y := make([]int, n)
	for i := range X {
		row := make([]float64, d)
		cls := rng.Intn(2)
		for j := range row {
			center := 0.3
			if cls == 1 {
				center = 0.7
			}
			row[j] = center + rng.NormFloat64()*0.15
		}
		X[i] = row
		y[i] = cls
	}
	return X, y
}

// rings generates a nonlinear (XOR-quadrant) dataset only nonlinear models
// can fit.
func rings(seed int64, n int) ([][]float64, []int) {
	rng := rand.New(rand.NewSource(seed))
	X := make([][]float64, n)
	y := make([]int, n)
	for i := range X {
		a, b := rng.Float64()*2-1, rng.Float64()*2-1
		X[i] = []float64{a, b}
		if (a > 0) != (b > 0) {
			y[i] = 1
		}
	}
	return X, y
}

func auc(c Classifier, X [][]float64, y []int) float64 {
	scores := make([]float64, len(X))
	for i, x := range X {
		scores[i] = c.PredictProba(x)
	}
	return metrics.ROCAUC(scores, y)
}

func TestZooOnSeparableBlobs(t *testing.T) {
	trainX, trainY := blobs(1, 800, 6)
	testX, testY := blobs(2, 400, 6)
	for _, c := range Zoo(7) {
		if err := c.Fit(trainX, trainY); err != nil {
			t.Fatalf("%s: %v", c.Name(), err)
		}
		want := 0.85
		if c.Name() == "multinomial-nb" {
			// Multinomial NB discriminates by feature *proportions*; these
			// blobs differ only in magnitude, so it can only do modestly
			// better than chance. Still must beat it.
			want = 0.55
		}
		if got := auc(c, testX, testY); got < want {
			t.Errorf("%s: AUC %.3f on separable blobs, want >= %.2f", c.Name(), got, want)
		}
	}
}

func TestZooSize(t *testing.T) {
	zoo := Zoo(1)
	if len(zoo) != 16 {
		t.Fatalf("zoo has %d classifiers, want the 16 of Fig. 18", len(zoo))
	}
	names := map[string]bool{}
	for _, c := range zoo {
		if names[c.Name()] {
			t.Fatalf("duplicate classifier name %q", c.Name())
		}
		names[c.Name()] = true
	}
	if len(Fig8Models(1)) != 8 {
		t.Fatal("Fig8Models must return 8 families")
	}
}

func TestNonlinearModelsOnRings(t *testing.T) {
	trainX, trainY := rings(3, 1200)
	testX, testY := rings(4, 500)
	nonlinear := []Classifier{
		NewDecisionTree(8, 10, 5),
		NewRandomForest(30, 8, 5),
		NewExtraTrees(30, 8, 5),
		NewGradientBoosting(60, 3, 0.2, 5),
		NewKNN(7, 2000, 5),
		NewMLP(5, []int{16, 8}, 40),
		NewSVC(5, 128, 2, 0.05, 8),
		NewQDA(1e-3),
	}
	for _, c := range nonlinear {
		if err := c.Fit(trainX, trainY); err != nil {
			t.Fatalf("%s: %v", c.Name(), err)
		}
		if got := auc(c, testX, testY); got < 0.8 {
			t.Errorf("%s: AUC %.3f on rings, want >= 0.8", c.Name(), got)
		}
	}
	// A purely linear model cannot solve rings — sanity-check the dataset.
	lin := NewSGDClassifier(5, 0.05, 10)
	if err := lin.Fit(trainX, trainY); err != nil {
		t.Fatal(err)
	}
	if got := auc(lin, testX, testY); got > 0.7 {
		t.Errorf("linear model AUC %.3f on rings; dataset is not nonlinear", got)
	}
}

func TestSingleClassRejected(t *testing.T) {
	X := [][]float64{{1}, {2}, {3}}
	y := []int{1, 1, 1}
	for _, c := range Zoo(1) {
		if err := c.Fit(X, y); err == nil {
			t.Errorf("%s accepted single-class training data", c.Name())
		}
	}
}

func TestEmptyRejected(t *testing.T) {
	for _, c := range Zoo(1) {
		if err := c.Fit(nil, nil); err == nil {
			t.Errorf("%s accepted empty training data", c.Name())
		}
	}
}

func TestUnfittedReturnsNeutral(t *testing.T) {
	for _, c := range []Classifier{
		NewGaussianNB(), NewBernoulliNB(1), NewMultinomialNB(1),
		NewKNN(3, 100, 1), NewDecisionTree(4, 4, 1), NewQDA(1e-3), NewLDA(1e-3),
		NewAdaBoost(5, 1), NewGradientBoosting(5, 2, 0.1, 1),
		NewRandomForest(5, 4, 1), NewMLP(1, []int{4}, 2), NewSVC(1, 8, 1, 0.1, 2),
		NewRNN(1, 4, 2),
	} {
		if got := c.PredictProba([]float64{1, 2}); got != 0.5 {
			t.Errorf("%s unfitted proba %v, want 0.5", c.Name(), got)
		}
	}
}

func TestProbaBounded(t *testing.T) {
	trainX, trainY := blobs(6, 300, 4)
	f := func(a, b, c, d float64) bool {
		x := []float64{math.Mod(a, 10), math.Mod(b, 10), math.Mod(c, 10), math.Mod(d, 10)}
		for i := range x {
			if math.IsNaN(x[i]) || math.IsInf(x[i], 0) {
				x[i] = 0
			}
		}
		for _, clf := range Zoo(9) {
			if err := clf.Fit(trainX, trainY); err != nil {
				return false
			}
			p := clf.PredictProba(x)
			if math.IsNaN(p) || p < 0 || p > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3}); err != nil {
		t.Fatal(err)
	}
}

func TestKNNExactNeighbors(t *testing.T) {
	X := [][]float64{{0, 0}, {0, 1}, {1, 0}, {10, 10}, {10, 11}}
	y := []int{0, 0, 0, 1, 1}
	knn := NewKNN(3, 0, 1)
	if err := knn.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if p := knn.PredictProba([]float64{0.1, 0.1}); p != 0 {
		t.Fatalf("near cluster 0: proba %v", p)
	}
	if p := knn.PredictProba([]float64{10, 10.5}); p < 0.6 {
		t.Fatalf("near cluster 1: proba %v", p)
	}
}

func TestDecisionTreeLearnsThreshold(t *testing.T) {
	var X [][]float64
	var y []int
	for i := 0; i < 200; i++ {
		v := float64(i) / 200
		X = append(X, []float64{v})
		if v > 0.6 {
			y = append(y, 1)
		} else {
			y = append(y, 0)
		}
	}
	dt := NewDecisionTree(3, 2, 1)
	if err := dt.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if p := dt.PredictProba([]float64{0.2}); p > 0.1 {
		t.Fatalf("below threshold proba %v", p)
	}
	if p := dt.PredictProba([]float64{0.9}); p < 0.9 {
		t.Fatalf("above threshold proba %v", p)
	}
}

func TestMatrixInvert(t *testing.T) {
	m := [][]float64{{4, 7}, {2, 6}}
	inv, ok := invert(m)
	if !ok {
		t.Fatal("invert failed")
	}
	want := [][]float64{{0.6, -0.7}, {-0.2, 0.4}}
	for i := range want {
		for j := range want[i] {
			if math.Abs(inv[i][j]-want[i][j]) > 1e-9 {
				t.Fatalf("inv[%d][%d] = %v, want %v", i, j, inv[i][j], want[i][j])
			}
		}
	}
	if _, ok := invert([][]float64{{1, 2}, {2, 4}}); ok {
		t.Fatal("singular matrix inverted")
	}
}

func TestAdaBoostWeightsConcentrate(t *testing.T) {
	// AdaBoost on a clean threshold task should converge quickly with high
	// confidence.
	var X [][]float64
	var y []int
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 300; i++ {
		v := rng.Float64()
		X = append(X, []float64{v, rng.Float64()})
		if v > 0.5 {
			y = append(y, 1)
		} else {
			y = append(y, 0)
		}
	}
	ab := NewAdaBoost(20, 1)
	if err := ab.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if p := ab.PredictProba([]float64{0.9, 0.5}); p < 0.7 {
		t.Fatalf("adaboost high side %v", p)
	}
	if p := ab.PredictProba([]float64{0.1, 0.5}); p > 0.3 {
		t.Fatalf("adaboost low side %v", p)
	}
}

func TestDeterministicFits(t *testing.T) {
	trainX, trainY := blobs(10, 400, 5)
	probe := []float64{0.5, 0.5, 0.5, 0.5, 0.5}
	for _, build := range []func() Classifier{
		func() Classifier { return NewRandomForest(10, 6, 3) },
		func() Classifier { return NewMLP(3, []int{8}, 5) },
		func() Classifier { return NewAdaBoost(10, 3) },
		func() Classifier { return NewSGDClassifier(3, 0.05, 3) },
		func() Classifier { return NewRNN(3, 8, 3) },
	} {
		a, b := build(), build()
		if err := a.Fit(trainX, trainY); err != nil {
			t.Fatal(err)
		}
		if err := b.Fit(trainX, trainY); err != nil {
			t.Fatal(err)
		}
		if a.PredictProba(probe) != b.PredictProba(probe) {
			t.Errorf("%s not deterministic", a.Name())
		}
	}
}

func TestRNNShapes(t *testing.T) {
	r := NewRNN(1, 8, 3)
	r.chooseShape(12)
	if r.steps != 3 || r.stepW != 4 {
		t.Fatalf("12 features → %dx%d", r.steps, r.stepW)
	}
	r.chooseShape(11)
	if r.steps != 11 || r.stepW != 1 {
		t.Fatalf("prime width → %dx%d", r.steps, r.stepW)
	}
	r.chooseShape(8)
	if r.steps != 4 || r.stepW != 2 {
		t.Fatalf("8 features → %dx%d", r.steps, r.stepW)
	}
}
