package models

import (
	"fmt"
	"math/rand"

	"repro/internal/metrics"
	"repro/internal/parallel"
)

// CrossValidate runs k-fold cross-validation — the pipeline's model
// validation stage (MV in the paper's Fig. 1 taxonomy) — on GOMAXPROCS
// workers. See CrossValidateWorkers.
func CrossValidate(build func() Classifier, X [][]float64, y []int, k int, seed int64) ([]float64, float64, error) {
	return CrossValidateWorkers(build, X, y, k, seed, 0)
}

// CrossValidateWorkers is CrossValidate with an explicit worker budget
// (0 means GOMAXPROCS). Folds are assigned by a deterministic shuffle of
// the row indices drawn before the fan-out; each fold is scored with
// ROC-AUC against its held-out labels using a fresh classifier from build,
// and fold scores are collected in fold order — so any worker count returns
// identical results. build must be safe to call from multiple goroutines
// (every in-repo constructor is: each classifier carries its own RNG).
//
// Returns the per-fold scores (length k) and their mean.
func CrossValidateWorkers(build func() Classifier, X [][]float64, y []int, k int, seed int64, workers int) ([]float64, float64, error) {
	if k < 2 {
		return nil, 0, fmt.Errorf("models: k-fold needs k >= 2, got %d", k)
	}
	if len(X) < k {
		return nil, 0, fmt.Errorf("models: %d rows cannot fill %d folds", len(X), k)
	}
	if len(X) != len(y) {
		return nil, 0, fmt.Errorf("models: %d rows vs %d labels", len(X), len(y))
	}
	rng := rand.New(rand.NewSource(seed))
	idx := rng.Perm(len(X))

	scores := parallel.Map(workers, k, func(fold int) float64 {
		lo := fold * len(idx) / k
		hi := (fold + 1) * len(idx) / k
		trX := make([][]float64, 0, len(idx)-(hi-lo))
		trY := make([]int, 0, len(idx)-(hi-lo))
		teX := make([][]float64, 0, hi-lo)
		teY := make([]int, 0, hi-lo)
		for pos, i := range idx {
			if pos >= lo && pos < hi {
				teX = append(teX, X[i])
				teY = append(teY, y[i])
			} else {
				trX = append(trX, X[i])
				trY = append(trY, y[i])
			}
		}
		clf := build()
		if err := clf.Fit(trX, trY); err != nil {
			// A fold can be degenerate (single class) on skewed data; score
			// it as uninformative rather than aborting the whole validation.
			return 0.5
		}
		pred := make([]float64, len(teX))
		for i, x := range teX {
			pred[i] = clf.PredictProba(x)
		}
		return metrics.ROCAUC(pred, teY)
	})
	var sum float64
	for _, s := range scores {
		sum += s
	}
	return scores, sum / float64(k), nil
}

// SelectByCV picks the candidate with the best mean k-fold score. builders
// maps a display name to a classifier constructor. Returns the winning name
// and its mean score. Deterministic in seed.
func SelectByCV(builders map[string]func() Classifier, X [][]float64, y []int, k int, seed int64) (string, float64, error) {
	bestName := ""
	bestScore := -1.0
	// Map iteration order is random; collect and sort names for
	// reproducibility.
	names := make([]string, 0, len(builders))
	for n := range builders {
		names = append(names, n)
	}
	sortStrings(names)
	for _, n := range names {
		_, mean, err := CrossValidate(builders[n], X, y, k, seed)
		if err != nil {
			return "", 0, fmt.Errorf("models: cv %q: %w", n, err)
		}
		if mean > bestScore {
			bestName, bestScore = n, mean
		}
	}
	if bestName == "" {
		return "", 0, fmt.Errorf("models: no candidates")
	}
	return bestName, bestScore, nil
}

func sortStrings(v []string) {
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && v[j] < v[j-1]; j-- {
			v[j], v[j-1] = v[j-1], v[j]
		}
	}
}
