package models

import (
	"math"
	"math/rand"
)

// SGDClassifier is logistic regression trained by stochastic gradient
// descent — the "Stochastic Gradient Descent" and "LogReg" entries of the
// figures.
type SGDClassifier struct {
	seed   int64
	lr     float64
	epochs int
	w      []float64
	b      float64
}

// NewSGDClassifier constructs the classifier.
func NewSGDClassifier(seed int64, lr float64, epochs int) *SGDClassifier {
	return &SGDClassifier{seed: seed, lr: lr, epochs: epochs}
}

// Name implements Classifier.
func (c *SGDClassifier) Name() string { return "sgd-logreg" }

// Fit implements Classifier.
func (c *SGDClassifier) Fit(X [][]float64, y []int) error {
	if err := checkXY(X, y); err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(c.seed))
	c.w = make([]float64, len(X[0]))
	c.b = 0
	for e := 0; e < c.epochs; e++ {
		lr := c.lr / (1 + 0.5*float64(e))
		for _, i := range shuffled(rng, len(X)) {
			p := sigmoid(dot(c.w, X[i]) + c.b)
			g := p - float64(y[i])
			for j, v := range X[i] {
				c.w[j] -= lr * g * v
			}
			c.b -= lr * g
		}
	}
	return nil
}

// PredictProba implements Classifier.
func (c *SGDClassifier) PredictProba(x []float64) float64 {
	return sigmoid(dot(c.w, x) + c.b)
}

// PassiveAggressive is the PA-I online classifier with hinge loss.
type PassiveAggressive struct {
	seed   int64
	c      float64 // aggressiveness cap
	epochs int
	w      []float64
	b      float64
}

// NewPassiveAggressive constructs the classifier.
func NewPassiveAggressive(seed int64, cap float64, epochs int) *PassiveAggressive {
	return &PassiveAggressive{seed: seed, c: cap, epochs: epochs}
}

// Name implements Classifier.
func (c *PassiveAggressive) Name() string { return "passive-aggressive" }

// Fit implements Classifier.
func (c *PassiveAggressive) Fit(X [][]float64, y []int) error {
	if err := checkXY(X, y); err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(c.seed))
	c.w = make([]float64, len(X[0]))
	c.b = 0
	for e := 0; e < c.epochs; e++ {
		for _, i := range shuffled(rng, len(X)) {
			t := 2*float64(y[i]) - 1 // ±1
			margin := t * (dot(c.w, X[i]) + c.b)
			loss := 1 - margin
			if loss <= 0 {
				continue
			}
			var norm float64
			for _, v := range X[i] {
				norm += v * v
			}
			norm++ // bias term
			tau := loss / norm
			if tau > c.c {
				tau = c.c
			}
			for j, v := range X[i] {
				c.w[j] += tau * t * v
			}
			c.b += tau * t
		}
	}
	return nil
}

// PredictProba implements Classifier.
func (c *PassiveAggressive) PredictProba(x []float64) float64 {
	return sigmoid(2 * (dot(c.w, x) + c.b))
}

// LinearSVM is a linear support vector machine trained with the Pegasos
// subgradient method (hinge loss + L2).
type LinearSVM struct {
	seed   int64
	lr     float64
	lambda float64
	epochs int
	w      []float64
	b      float64
}

// NewLinearSVM constructs the classifier.
func NewLinearSVM(seed int64, lr, lambda float64, epochs int) *LinearSVM {
	return &LinearSVM{seed: seed, lr: lr, lambda: lambda, epochs: epochs}
}

// Name implements Classifier.
func (c *LinearSVM) Name() string { return "linear-svm" }

// Fit implements Classifier.
func (c *LinearSVM) Fit(X [][]float64, y []int) error {
	if err := checkXY(X, y); err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(c.seed))
	c.w = make([]float64, len(X[0]))
	c.b = 0
	t := 1.0
	for e := 0; e < c.epochs; e++ {
		for _, i := range shuffled(rng, len(X)) {
			eta := 1 / (c.lambda * t)
			if eta > c.lr*100 {
				eta = c.lr * 100
			}
			ti := 2*float64(y[i]) - 1
			margin := ti * (dot(c.w, X[i]) + c.b)
			for j := range c.w {
				c.w[j] *= 1 - eta*c.lambda
			}
			if margin < 1 {
				for j, v := range X[i] {
					c.w[j] += eta * ti * v
				}
				c.b += eta * ti
			}
			t++
		}
	}
	return nil
}

// PredictProba implements Classifier.
func (c *LinearSVM) PredictProba(x []float64) float64 {
	return sigmoid(2 * (dot(c.w, x) + c.b))
}

// SVC approximates a Gaussian-kernel support vector classifier using random
// Fourier features (Rahimi–Recht) followed by a linear hinge model. The
// approximation keeps training linear-time, which the real kernel SVC is
// not; accuracy behaviour on our feature scales is equivalent.
type SVC struct {
	seed     int64
	features int
	gamma    float64
	lr       float64
	epochs   int

	omega [][]float64
	phase []float64
	lin   *LinearSVM
}

// NewSVC constructs the classifier with the given number of random Fourier
// features and RBF bandwidth gamma.
func NewSVC(seed int64, features int, gamma, lr float64, epochs int) *SVC {
	return &SVC{seed: seed, features: features, gamma: gamma, lr: lr, epochs: epochs}
}

// Name implements Classifier.
func (c *SVC) Name() string { return "svc-rbf" }

func (c *SVC) lift(x []float64) []float64 {
	out := make([]float64, c.features)
	scale := math.Sqrt(2 / float64(c.features))
	for k := 0; k < c.features; k++ {
		out[k] = scale * math.Cos(dot(c.omega[k], x)+c.phase[k])
	}
	return out
}

// Fit implements Classifier.
func (c *SVC) Fit(X [][]float64, y []int) error {
	if err := checkXY(X, y); err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(c.seed))
	d := len(X[0])
	c.omega = make([][]float64, c.features)
	c.phase = make([]float64, c.features)
	sigma := math.Sqrt(2 * c.gamma)
	for k := range c.omega {
		w := make([]float64, d)
		for j := range w {
			w[j] = rng.NormFloat64() * sigma
		}
		c.omega[k] = w
		c.phase[k] = rng.Float64() * 2 * math.Pi
	}
	lifted := make([][]float64, len(X))
	for i, x := range X {
		lifted[i] = c.lift(x)
	}
	c.lin = NewLinearSVM(c.seed+1, c.lr, 1e-4, c.epochs)
	return c.lin.Fit(lifted, y)
}

// PredictProba implements Classifier.
func (c *SVC) PredictProba(x []float64) float64 {
	if c.lin == nil {
		return 0.5
	}
	return c.lin.PredictProba(c.lift(x))
}
