package models

import (
	"math"
	"sort"
)

// GaussianNB is Gaussian naive Bayes.
type GaussianNB struct {
	prior [2]float64
	mean  [2][]float64
	vari  [2][]float64
}

// NewGaussianNB constructs the classifier.
func NewGaussianNB() *GaussianNB { return &GaussianNB{} }

// Name implements Classifier.
func (c *GaussianNB) Name() string { return "gaussian-nb" }

// Fit implements Classifier.
func (c *GaussianNB) Fit(X [][]float64, y []int) error {
	if err := checkXY(X, y); err != nil {
		return err
	}
	d := len(X[0])
	var count [2]float64
	for k := 0; k < 2; k++ {
		c.mean[k] = make([]float64, d)
		c.vari[k] = make([]float64, d)
	}
	for i, x := range X {
		k := y[i]
		count[k]++
		for j, v := range x {
			c.mean[k][j] += v
		}
	}
	for k := 0; k < 2; k++ {
		for j := range c.mean[k] {
			c.mean[k][j] /= count[k]
		}
		c.prior[k] = count[k] / float64(len(X))
	}
	for i, x := range X {
		k := y[i]
		for j, v := range x {
			dv := v - c.mean[k][j]
			c.vari[k][j] += dv * dv
		}
	}
	for k := 0; k < 2; k++ {
		for j := range c.vari[k] {
			c.vari[k][j] = c.vari[k][j]/count[k] + 1e-9
		}
	}
	return nil
}

func (c *GaussianNB) logLik(x []float64, k int) float64 {
	ll := math.Log(c.prior[k] + 1e-12)
	for j, v := range x {
		if j >= len(c.mean[k]) {
			break
		}
		dv := v - c.mean[k][j]
		ll += -0.5*math.Log(2*math.Pi*c.vari[k][j]) - dv*dv/(2*c.vari[k][j])
	}
	return ll
}

// PredictProba implements Classifier.
func (c *GaussianNB) PredictProba(x []float64) float64 {
	if c.mean[0] == nil {
		return 0.5
	}
	l0, l1 := c.logLik(x, 0), c.logLik(x, 1)
	return sigmoid(l1 - l0)
}

// BernoulliNB is Bernoulli naive Bayes over features binarized at their
// training medians.
type BernoulliNB struct {
	alpha  float64
	median []float64
	prior  [2]float64
	prob   [2][]float64 // P(feature above median | class)
}

// NewBernoulliNB constructs the classifier with Laplace smoothing alpha.
func NewBernoulliNB(alpha float64) *BernoulliNB { return &BernoulliNB{alpha: alpha} }

// Name implements Classifier.
func (c *BernoulliNB) Name() string { return "bernoulli-nb" }

// Fit implements Classifier.
func (c *BernoulliNB) Fit(X [][]float64, y []int) error {
	if err := checkXY(X, y); err != nil {
		return err
	}
	d := len(X[0])
	c.median = columnMedians(X)
	var count [2]float64
	var above [2][]float64
	for k := 0; k < 2; k++ {
		above[k] = make([]float64, d)
	}
	for i, x := range X {
		k := y[i]
		count[k]++
		for j, v := range x {
			if v > c.median[j] {
				above[k][j]++
			}
		}
	}
	for k := 0; k < 2; k++ {
		c.prior[k] = count[k] / float64(len(X))
		c.prob[k] = make([]float64, d)
		for j := range c.prob[k] {
			c.prob[k][j] = (above[k][j] + c.alpha) / (count[k] + 2*c.alpha)
		}
	}
	return nil
}

// PredictProba implements Classifier.
func (c *BernoulliNB) PredictProba(x []float64) float64 {
	if c.median == nil {
		return 0.5
	}
	ll := [2]float64{}
	for k := 0; k < 2; k++ {
		ll[k] = math.Log(c.prior[k] + 1e-12)
		for j, v := range x {
			if j >= len(c.median) {
				break
			}
			p := c.prob[k][j]
			if v > c.median[j] {
				ll[k] += math.Log(p)
			} else {
				ll[k] += math.Log(1 - p)
			}
		}
	}
	return sigmoid(ll[1] - ll[0])
}

// MultinomialNB is multinomial naive Bayes; features must be non-negative
// (they are, after min-max scaling).
type MultinomialNB struct {
	alpha float64
	prior [2]float64
	logp  [2][]float64
	min   []float64
}

// NewMultinomialNB constructs the classifier with smoothing alpha.
func NewMultinomialNB(alpha float64) *MultinomialNB { return &MultinomialNB{alpha: alpha} }

// Name implements Classifier.
func (c *MultinomialNB) Name() string { return "multinomial-nb" }

// Fit implements Classifier.
func (c *MultinomialNB) Fit(X [][]float64, y []int) error {
	if err := checkXY(X, y); err != nil {
		return err
	}
	d := len(X[0])
	// Shift features to be non-negative.
	c.min = make([]float64, d)
	for _, x := range X {
		for j, v := range x {
			if v < c.min[j] {
				c.min[j] = v
			}
		}
	}
	var count [2]float64
	var sum [2][]float64
	var total [2]float64
	for k := 0; k < 2; k++ {
		sum[k] = make([]float64, d)
	}
	for i, x := range X {
		k := y[i]
		count[k]++
		for j, v := range x {
			nv := v - c.min[j]
			sum[k][j] += nv
			total[k] += nv
		}
	}
	for k := 0; k < 2; k++ {
		c.prior[k] = count[k] / float64(len(X))
		c.logp[k] = make([]float64, d)
		for j := range c.logp[k] {
			c.logp[k][j] = math.Log((sum[k][j] + c.alpha) / (total[k] + c.alpha*float64(d)))
		}
	}
	return nil
}

// PredictProba implements Classifier.
func (c *MultinomialNB) PredictProba(x []float64) float64 {
	if c.min == nil {
		return 0.5
	}
	ll := [2]float64{}
	for k := 0; k < 2; k++ {
		ll[k] = math.Log(c.prior[k] + 1e-12)
		for j, v := range x {
			if j >= len(c.min) {
				break
			}
			nv := v - c.min[j]
			if nv < 0 {
				nv = 0
			}
			ll[k] += nv * c.logp[k][j]
		}
	}
	return sigmoid(ll[1] - ll[0])
}

func columnMedians(X [][]float64) []float64 {
	d := len(X[0])
	out := make([]float64, d)
	col := make([]float64, len(X))
	for j := 0; j < d; j++ {
		for i, x := range X {
			col[i] = x[j]
		}
		out[j] = medianInPlace(col)
	}
	return out
}

func medianInPlace(v []float64) float64 {
	// Insertion-free: copy and quickselect would be ideal; a sort is fine at
	// our training sizes.
	tmp := append([]float64(nil), v...)
	sort.Float64s(tmp)
	n := len(tmp)
	if n == 0 {
		return 0
	}
	if n%2 == 1 {
		return tmp[n/2]
	}
	return (tmp[n/2-1] + tmp[n/2]) / 2
}
