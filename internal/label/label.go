// Package label implements the data-labeling stage of the Heimdall pipeline
// (§3.1): the baseline latency-cutoff labeling used by prior work (LinnOS),
// the paper's period-based accurate labeling (Fig. 4), and the
// gradient-descent threshold search of Fig. 3d.
//
// Labels follow the paper's convention: 1 = slow (decline/reroute),
// 0 = fast (admit).
//
// Throughput here is the *windowed drain ratio*: the share of arriving bytes
// the device completes within a short window centered on the I/O. The paper
// observes (§3.1) that throughput is the sharper signal for busy-period
// boundaries because it accounts for I/O size; normalizing by offered load
// additionally makes the signal robust to workload burstiness, where an
// absolute completion rate would confuse a lull in arrivals with contention.
package label

import (
	"math"
	"sort"
	"time"

	"repro/internal/iolog"
	"repro/internal/trace"
)

// Thresholds parameterizes the period-based labeler. The three knobs are
// what the gradient-descent search tunes.
type Thresholds struct {
	// HighLatPct: latencies above this percentile of the log look "high".
	HighLatPct float64
	// LowThptPct: windowed throughput below this percentile looks "low".
	LowThptPct float64
	// MaxDropFrac: throughput collapsing below this fraction of the median
	// also seeds a busy period (CalcThptDropThreshold in Fig. 4).
	MaxDropFrac float64

	// Resolved absolute values (filled against a Series).
	HighLatNs  float64
	LowThptMB  float64
	MedianThpt float64
}

// DefaultThresholds returns the starting point of the gradient-descent
// search: suspicious latency above p90, throughput below p20, and a drop to
// under 40% of the median.
func DefaultThresholds() Thresholds {
	return Thresholds{HighLatPct: 90, LowThptPct: 20, MaxDropFrac: 0.4}
}

// Series is the preprocessed signal the labeler runs on: per-read latency
// and windowed device throughput. Build it once with Prepare and reuse it
// across threshold evaluations.
type Series struct {
	Lat   []float64 // ns
	WThpt []float64 // drain ratio: completed/arrived bytes in the window

	sortedLat  []float64
	sortedThpt []float64
	meanLat    float64
	stdLat     float64
	targetFrac float64 // estimated tail fraction, for the search objective
}

// Prepare computes the labeling signal for a read log. The throughput window
// adapts to the workload: 20 mean interarrival gaps, at least 2ms.
func Prepare(recs []iolog.Record) *Series {
	n := len(recs)
	s := &Series{Lat: make([]float64, n), WThpt: make([]float64, n)}
	if n == 0 {
		return s
	}
	for i, r := range recs {
		s.Lat[i] = float64(r.Latency)
	}
	s.sortedLat = append([]float64(nil), s.Lat...)
	sort.Float64s(s.sortedLat)

	// The window must cover (a) enough arrivals to be statistically stable
	// (20 mean gaps), and (b) several multiples of an ordinary I/O's
	// latency — otherwise a single large-but-healthy I/O arrives inside the
	// window, completes just outside it, and dents the drain ratio as if the
	// device were busy.
	span := recs[n-1].Arrival - recs[0].Arrival
	window := int64(2 * time.Millisecond)
	if n > 1 {
		if w := span / int64(n) * 20; w > window {
			window = w
		}
	}
	if w := int64(3 * trace.Percentile(s.sortedLat, 90)); w > window {
		window = w
	}

	// Completion events sorted by time with prefix byte sums, so the bytes
	// completed in any interval is two binary searches. Arrivals are already
	// sorted; same trick.
	type done struct {
		at    int64
		bytes int64
	}
	evs := make([]done, n)
	for i, r := range recs {
		evs[i] = done{at: r.Complete(), bytes: int64(r.Size)}
	}
	sort.Slice(evs, func(i, j int) bool { return evs[i].at < evs[j].at })
	times := make([]int64, n)
	donePrefix := make([]float64, n+1)
	for i, e := range evs {
		times[i] = e.at
		donePrefix[i+1] = donePrefix[i] + float64(e.bytes)
	}
	doneUpTo := func(t int64) float64 {
		i := sort.Search(n, func(k int) bool { return times[k] > t })
		return donePrefix[i]
	}
	arrPrefix := make([]float64, n+1)
	for i, r := range recs {
		arrPrefix[i+1] = arrPrefix[i] + float64(r.Size)
	}
	arrUpTo := func(t int64) float64 {
		i := sort.Search(n, func(k int) bool { return recs[k].Arrival > t })
		return arrPrefix[i]
	}
	// The throughput signal is normalized by offered load: the fraction of
	// arriving bytes the device manages to complete in a centered window
	// (the "drain ratio"). An absolute completion rate cannot separate
	// contention from a mere lull in arrivals — a busy device drains a
	// *smaller share* of what arrives, whatever the load. A centered window
	// is used because a read arriving at the start of a busy period has a
	// healthy trailing window; the drop materializes in the completions
	// around and after it, and offline labeling can look both ways.
	const eps = 64 << 10
	for i, r := range recs {
		lo, hi := r.Arrival-window/2, r.Arrival+window/2
		completed := doneUpTo(hi) - doneUpTo(lo)
		arrived := arrUpTo(hi) - arrUpTo(lo)
		s.WThpt[i] = (completed + eps) / (arrived + eps)
	}

	s.sortedThpt = append([]float64(nil), s.WThpt...)
	sort.Float64s(s.sortedThpt)

	var sum, sumSq float64
	for _, l := range s.Lat {
		sum += l
		sumSq += l * l
	}
	s.meanLat = sum / float64(n)
	s.stdLat = math.Sqrt(math.Max(sumSq/float64(n)-s.meanLat*s.meanLat, 1))

	// Estimate the tail fraction from the latency knee: the search objective
	// targets roughly this share of slow labels.
	knee := kneeCutoff(s.sortedLat)
	above := float64(n-sort.SearchFloat64s(s.sortedLat, knee)) / float64(n)
	s.targetFrac = clamp(above, 0.02, 0.30)
	return s
}

// Resolve fills the absolute threshold values for this series.
func (t Thresholds) Resolve(s *Series) Thresholds {
	t.HighLatNs = trace.Percentile(s.sortedLat, t.HighLatPct)
	t.LowThptMB = trace.Percentile(s.sortedThpt, t.LowThptPct)
	t.MedianThpt = trace.Percentile(s.sortedThpt, 50)
	return t
}

// Period labels records with the period-based algorithm of Fig. 4: seed
// busy I/Os where latency is high while windowed throughput is low (or has
// collapsed below the drop threshold), then extend each seed forward through
// the "TailZone" — consecutive I/Os whose throughput stays below the median
// — so the whole slow period is labeled, not just its spikes.
func Period(recs []iolog.Record, t Thresholds) []int {
	return PeriodSeries(Prepare(recs), t)
}

// PeriodSeries is Period over a prepared series.
func PeriodSeries(s *Series, t Thresholds) []int {
	t = t.Resolve(s)
	n := len(s.Lat)
	labels := make([]int, n)
	for i := 0; i < n; i++ {
		if isBusy(s.Lat[i], s.WThpt[i], t) {
			labels[i] = 1
		}
	}
	// TailZone extension (lines 11-15 of Fig. 4). The recovery threshold
	// sits below the median with hysteresis: calm-period throughput
	// fluctuates around the median, so extending all the way to it would
	// bleed busy labels deep into fast periods.
	recover := 0.75 * t.MedianThpt
	if t.LowThptMB > recover {
		recover = t.LowThptMB
	}
	for i := 0; i < n; i++ {
		if labels[i] != 1 {
			continue
		}
		j := i + 1
		for j < n && s.WThpt[j] < recover {
			labels[j] = 1
			j++
		}
		if j > i+1 {
			i = j - 1
		}
	}
	return labels
}

// isBusy implements IsBusy from Fig. 4: suspicious only when latency is high
// AND throughput is low at the same time, or when throughput collapses below
// the drop threshold while latency is elevated.
func isBusy(lat, wthpt float64, t Thresholds) bool {
	// Strict comparisons: on a degenerate log where every I/O shares one
	// latency (so every percentile collapses to it), nothing is suspicious.
	if lat > t.HighLatNs && wthpt < t.LowThptMB {
		return true
	}
	return wthpt < t.MedianThpt*t.MaxDropFrac && lat > t.HighLatNs*0.75
}

// kneeCutoff finds the point of the sorted latency curve farthest from the
// chord between its endpoints (the standard knee detector), clamped to at
// least the p75 latency.
func kneeCutoff(sorted []float64) float64 {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	if n == 1 {
		return sorted[0]
	}
	x0, y0 := 0.0, sorted[0]
	x1, y1 := float64(n-1), sorted[n-1]
	dx, dy := x1-x0, y1-y0
	norm := math.Hypot(dx, dy)
	best, bestDist := n-1, -1.0
	for i := 0; i < n; i++ {
		d := math.Abs(dy*float64(i)-dx*sorted[i]+x1*y0-y1*x0) / norm
		if d > bestDist {
			bestDist = d
			best = i
		}
	}
	v := sorted[best]
	if p75 := trace.Percentile(sorted, 75); v < p75 {
		v = p75
	}
	return v
}

// kneeCutoffAt is kneeCutoff with a configurable percentile floor: the
// knee never dips below the floorPct latency, so the slow share per call
// is bounded by (100 - floorPct)%.
func kneeCutoffAt(sorted []float64, floorPct float64) float64 {
	v := kneeCutoff(sorted)
	if floor := trace.Percentile(sorted, floorPct); v < floor {
		v = floor
	}
	return v
}

// CutoffValue finds the latency cutoff the baseline labeler uses (Fig. 3a).
func CutoffValue(recs []iolog.Record) float64 {
	lats := make([]float64, len(recs))
	for i, r := range recs {
		lats[i] = float64(r.Latency)
	}
	sort.Float64s(lats)
	return kneeCutoff(lats)
}

// cutoffSizeMinGroup is the smallest size class that gets its own knee;
// smaller classes fall back to the global cutoff.
const cutoffSizeMinGroup = 32

// CutoffPerSize labels records against a per-size-class latency knee: an
// I/O is slow only when its latency is high for its own transfer size.
// This removes the size confound that plain Cutoff suffers (Fig. 3b —
// large I/Os are slow purely because they move more bytes), without
// needing the arrival timestamps period labeling wants. It is the labeler
// of choice for live retraining, where harvested samples carry latency,
// queue depth, and size but only reconstructed arrivals.
func CutoffPerSize(recs []iolog.Record) []int {
	return CutoffPerSizeTail(recs, cutoffSizeTailPct)
}

// cutoffSizeTailPct is CutoffPerSize's percentile floor. Live retraining
// wants tail labeling: "slow" should mean the contended tail of a size
// class, not merely "above the elbow" — the plain p75 floor over-marks
// bursty regimes by 2-3x, and threshold calibration inherits whatever
// slow share labeling reports, so an inflated share deploys as an
// over-declining operating point.
const cutoffSizeTailPct = 90

// CutoffPerSizeTail is CutoffPerSize with an explicit percentile floor on
// every knee (per size class and the small-group global fallback).
func CutoffPerSizeTail(recs []iolog.Record, floorPct float64) []int {
	labels := make([]int, len(recs))
	groups := make(map[int32][]int)
	for i, r := range recs {
		groups[r.Size] = append(groups[r.Size], i)
	}
	sizes := make([]int32, 0, len(groups))
	for s := range groups {
		sizes = append(sizes, s)
	}
	sort.Slice(sizes, func(i, j int) bool { return sizes[i] < sizes[j] })
	all := make([]float64, len(recs))
	for i, r := range recs {
		all[i] = float64(r.Latency)
	}
	sort.Float64s(all)
	global := kneeCutoffAt(all, floorPct)
	for _, s := range sizes {
		idx := groups[s]
		cut := global
		if len(idx) >= cutoffSizeMinGroup {
			lats := make([]float64, len(idx))
			for k, i := range idx {
				lats[k] = float64(recs[i].Latency)
			}
			sort.Float64s(lats)
			cut = kneeCutoffAt(lats, floorPct)
		}
		for _, i := range idx {
			if float64(recs[i].Latency) > cut {
				labels[i] = 1
			}
		}
	}
	return labels
}

// Cutoff labels records with the baseline latency-cutoff algorithm: every
// I/O whose latency exceeds the cutoff is "slow", regardless of size or
// device state. This mislabels large I/Os whose latency is high purely
// because of their size (Fig. 3b) — the inaccuracy period-based labeling
// fixes.
func Cutoff(recs []iolog.Record, cutoffNs float64) []int {
	labels := make([]int, len(recs))
	for i, r := range recs {
		if float64(r.Latency) > cutoffNs {
			labels[i] = 1
		}
	}
	return labels
}

// SlowFraction returns the fraction of records labeled 1.
func SlowFraction(labels []int) float64 {
	if len(labels) == 0 {
		return 0
	}
	n := 0
	for _, l := range labels {
		n += l
	}
	return float64(n) / float64(len(labels))
}

// Runs returns the maximal runs of consecutive slow labels as [start, end)
// index intervals.
func Runs(labels []int) [][2]int {
	var out [][2]int
	i := 0
	for i < len(labels) {
		if labels[i] != 1 {
			i++
			continue
		}
		j := i
		for j < len(labels) && labels[j] == 1 {
			j++
		}
		out = append(out, [2]int{i, j})
		i = j
	}
	return out
}

// Agreement returns the fraction of labels matching the reference labels —
// used to score labeling quality against simulator ground truth (Fig. 5a).
func Agreement(labels, ref []int) float64 {
	if len(labels) == 0 || len(labels) != len(ref) {
		return 0
	}
	n := 0
	for i := range labels {
		if labels[i] == ref[i] {
			n++
		}
	}
	return float64(n) / float64(len(labels))
}

// BalancedAgreement returns the mean of per-class agreement (sensitivity and
// specificity against the reference), which does not reward labeling
// everything with the majority class.
func BalancedAgreement(labels, ref []int) float64 {
	if len(labels) != len(ref) || len(labels) == 0 {
		return 0
	}
	var tp, fn, tn, fp float64
	for i := range labels {
		switch {
		case ref[i] == 1 && labels[i] == 1:
			tp++
		case ref[i] == 1:
			fn++
		case labels[i] == 1:
			fp++
		default:
			tn++
		}
	}
	sens := 0.0
	if tp+fn > 0 {
		sens = tp / (tp + fn)
	}
	spec := 0.0
	if tn+fp > 0 {
		spec = tn / (tn + fp)
	}
	return (sens + spec) / 2
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
