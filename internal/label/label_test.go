package label

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/iolog"
	"repro/internal/trace"
)

// synthLog builds a log alternating fast stretches and slow periods. Fast
// I/Os complete promptly; during slow periods latency is inflated ~10x so
// completions stall relative to arrivals. Returns records and ground truth.
func synthLog(seed int64, n int) ([]iolog.Record, []int) {
	rng := rand.New(rand.NewSource(seed))
	recs := make([]iolog.Record, 0, n)
	gt := make([]int, 0, n)
	now := int64(0)
	const gap = 100_000 // 100µs interarrival
	i := 0
	for i < n {
		// Fast stretch of 50-150 I/Os.
		fast := 50 + rng.Intn(100)
		for j := 0; j < fast && i < n; j++ {
			lat := int64(80_000 + rng.Intn(60_000))
			recs = append(recs, iolog.Record{
				Arrival: now, Size: 4096, Op: trace.Read,
				Latency: lat, QueueLen: rng.Intn(3),
			})
			gt = append(gt, 0)
			now += gap
			i++
		}
		// Slow period of 20-60 I/Os.
		slow := 20 + rng.Intn(40)
		for j := 0; j < slow && i < n; j++ {
			lat := int64(800_000 + rng.Intn(3_000_000))
			recs = append(recs, iolog.Record{
				Arrival: now, Size: 4096, Op: trace.Read,
				Latency: lat, QueueLen: 5 + rng.Intn(20),
				Contended: true,
			})
			gt = append(gt, 1)
			now += gap
			i++
		}
	}
	return recs, gt
}

func TestPeriodLabelsRecoverSyntheticPeriods(t *testing.T) {
	recs, gt := synthLog(1, 4000)
	th := Search(recs, SearchOptions{})
	labels := Period(recs, th)
	if ba := BalancedAgreement(labels, gt); ba < 0.80 {
		t.Fatalf("period labeling balanced agreement %.3f, want >= 0.80", ba)
	}
}

func TestPeriodBeatsIsolatedNoise(t *testing.T) {
	// Inject isolated slow outliers into fast stretches: period labeling
	// must not chase them into whole periods.
	recs, gt := synthLog(2, 4000)
	rng := rand.New(rand.NewSource(3))
	for k := 0; k < 40; k++ {
		i := rng.Intn(len(recs))
		if gt[i] == 0 {
			recs[i].Latency = 5_000_000 // 5ms retry
		}
	}
	th := Search(recs, SearchOptions{})
	labels := Period(recs, th)
	if ba := BalancedAgreement(labels, gt); ba < 0.75 {
		t.Fatalf("agreement with retry noise %.3f, want >= 0.75", ba)
	}
}

func TestCutoffLabelsBySizeBias(t *testing.T) {
	// Big I/Os on an idle device have high latency purely from size; cutoff
	// labeling marks them slow (the Fig. 3b failure), period labeling must
	// not (their cohort drains fine).
	recs, gt := synthLog(4, 3000)
	rng := rand.New(rand.NewSource(5))
	bigIdx := []int{}
	for k := 0; k < 150; k++ {
		i := rng.Intn(len(recs))
		if gt[i] == 0 {
			recs[i].Size = 2 << 20
			recs[i].Latency = 4_500_000 // 4.5ms: pure transfer time
			bigIdx = append(bigIdx, i)
		}
	}
	cut := Cutoff(recs, CutoffValue(recs))
	cutWrong := 0
	for _, i := range bigIdx {
		if cut[i] == 1 {
			cutWrong++
		}
	}
	if cutWrong < len(bigIdx)/2 {
		t.Skipf("cutoff landed above big-I/O latency; bias scenario not triggered (%d/%d)", cutWrong, len(bigIdx))
	}
	th := Search(recs, SearchOptions{})
	per := Period(recs, th)
	perWrong := 0
	for _, i := range bigIdx {
		if per[i] == 1 {
			perWrong++
		}
	}
	if perWrong >= cutWrong {
		t.Fatalf("period labeling mislabeled %d big I/Os, cutoff %d — no improvement", perWrong, cutWrong)
	}
}

func TestCutoffValueAboveBody(t *testing.T) {
	recs, _ := synthLog(6, 2000)
	cut := CutoffValue(recs)
	lats := iolog.Latencies(recs)
	below := 0
	for _, l := range lats {
		if float64(l) > cut {
			below++
		}
	}
	frac := float64(below) / float64(len(lats))
	if frac > 0.30 {
		t.Fatalf("cutoff marks %.2f of the log slow; knee landed inside the body", frac)
	}
	if frac == 0 {
		t.Fatal("cutoff marks nothing slow")
	}
}

func TestRuns(t *testing.T) {
	labels := []int{0, 1, 1, 0, 1, 0, 0, 1, 1, 1}
	runs := Runs(labels)
	want := [][2]int{{1, 3}, {4, 5}, {7, 10}}
	if len(runs) != len(want) {
		t.Fatalf("runs %v", runs)
	}
	for i := range want {
		if runs[i] != want[i] {
			t.Fatalf("run %d = %v, want %v", i, runs[i], want[i])
		}
	}
	if got := Runs([]int{0, 0}); len(got) != 0 {
		t.Fatalf("no-slow runs %v", got)
	}
}

func TestSlowFraction(t *testing.T) {
	if got := SlowFraction([]int{1, 0, 1, 0}); got != 0.5 {
		t.Fatalf("fraction %v", got)
	}
	if got := SlowFraction(nil); got != 0 {
		t.Fatalf("empty fraction %v", got)
	}
}

func TestAgreementFunctions(t *testing.T) {
	a := []int{1, 0, 1, 0}
	if got := Agreement(a, a); got != 1 {
		t.Fatalf("self agreement %v", got)
	}
	b := []int{0, 1, 0, 1}
	if got := Agreement(a, b); got != 0 {
		t.Fatalf("inverse agreement %v", got)
	}
	if got := BalancedAgreement(a, a); got != 1 {
		t.Fatalf("self balanced %v", got)
	}
	// All-fast labels against half-slow truth: balanced agreement is 0.5,
	// not the 0.75 plain accuracy would give with 3:1 imbalance.
	truth := []int{1, 0, 0, 0}
	allFast := []int{0, 0, 0, 0}
	if got := BalancedAgreement(allFast, truth); got != 0.5 {
		t.Fatalf("majority-collapse balanced agreement %v, want 0.5", got)
	}
	if got := Agreement([]int{1}, []int{1, 0}); got != 0 {
		t.Fatalf("mismatched lengths agreement %v", got)
	}
}

func TestSearchDeterministicAndBounded(t *testing.T) {
	recs, _ := synthLog(7, 3000)
	a := Search(recs, SearchOptions{})
	b := Search(recs, SearchOptions{})
	if a != b {
		t.Fatalf("search not deterministic: %+v vs %+v", a, b)
	}
	if a.HighLatPct < 60 || a.HighLatPct > 99.5 {
		t.Fatalf("HighLatPct out of bounds: %v", a.HighLatPct)
	}
	if a.LowThptPct < 5 || a.LowThptPct > 60 {
		t.Fatalf("LowThptPct out of bounds: %v", a.LowThptPct)
	}
	if a.MaxDropFrac < 0.05 || a.MaxDropFrac > 0.9 {
		t.Fatalf("MaxDropFrac out of bounds: %v", a.MaxDropFrac)
	}
}

func TestObjectiveDegenerate(t *testing.T) {
	recs, _ := synthLog(8, 500)
	all1 := make([]int, len(recs))
	for i := range all1 {
		all1[i] = 1
	}
	if got := Objective(recs, all1); got != -1 {
		t.Fatalf("single-class objective %v, want -1", got)
	}
	if got := Objective(nil, nil); got != -1 {
		t.Fatalf("empty objective %v, want -1", got)
	}
}

func TestObjectivePrefersCoherentLabels(t *testing.T) {
	recs, gt := synthLog(9, 3000)
	s := Prepare(recs)
	// Ground truth (coherent periods) must outscore the same number of slow
	// labels scattered randomly.
	rng := rand.New(rand.NewSource(10))
	scattered := make([]int, len(gt))
	nSlow := 0
	for _, l := range gt {
		nSlow += l
	}
	for k := 0; k < nSlow; k++ {
		scattered[rng.Intn(len(scattered))] = 1
	}
	if ObjectiveSeries(s, gt) <= ObjectiveSeries(s, scattered) {
		t.Fatal("objective does not prefer coherent periods over scattered labels")
	}
}

func TestPrepareProperties(t *testing.T) {
	f := func(seed int64) bool {
		recs, _ := synthLog(seed, 300)
		s := Prepare(recs)
		if len(s.Lat) != len(recs) || len(s.WThpt) != len(recs) {
			return false
		}
		for _, w := range s.WThpt {
			if w < 0 {
				return false
			}
		}
		return s.targetFrac >= 0.02 && s.targetFrac <= 0.30
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestLabelKindConventions(t *testing.T) {
	recs, _ := synthLog(11, 1000)
	labels := Period(recs, DefaultThresholds())
	for _, l := range labels {
		if l != 0 && l != 1 {
			t.Fatalf("label %d not in {0,1}", l)
		}
	}
}

func TestCutoffPerSizeRemovesSizeConfound(t *testing.T) {
	// Same Fig. 3b scenario as TestCutoffLabelsBySizeBias: big I/Os on an
	// idle device are slow in absolute terms purely from transfer size.
	// Plain Cutoff mislabels them; per-size-class knees must not, because
	// within the 2MiB class that latency is the norm, not the tail.
	recs, gt := synthLog(4, 3000)
	rng := rand.New(rand.NewSource(5))
	bigIdx := []int{}
	for k := 0; k < 150; k++ {
		i := rng.Intn(len(recs))
		if gt[i] == 0 {
			recs[i].Size = 2 << 20
			recs[i].Latency = 4_200_000 + int64(rng.Intn(600_000))
			bigIdx = append(bigIdx, i)
		}
	}
	cut := Cutoff(recs, CutoffValue(recs))
	cutWrong := 0
	for _, i := range bigIdx {
		if cut[i] == 1 {
			cutWrong++
		}
	}
	if cutWrong < len(bigIdx)/2 {
		t.Skipf("cutoff landed above big-I/O latency; bias scenario not triggered (%d/%d)", cutWrong, len(bigIdx))
	}
	per := CutoffPerSize(recs)
	perWrong := 0
	for _, i := range bigIdx {
		if per[i] == 1 {
			perWrong++
		}
	}
	if perWrong >= cutWrong/2 {
		t.Fatalf("per-size cutoff mislabeled %d/%d big I/Os (plain cutoff: %d)", perWrong, len(bigIdx), cutWrong)
	}
	// Genuinely contended small I/Os must still be caught.
	caught, slow := 0, 0
	for i, g := range gt {
		if g == 1 && recs[i].Size == 4096 {
			slow++
			if per[i] == 1 {
				caught++
			}
		}
	}
	if caught < slow/4 {
		t.Fatalf("per-size cutoff caught only %d/%d contended small I/Os", caught, slow)
	}
}

func TestCutoffPerSizeDeterministic(t *testing.T) {
	// The grouping map must not leak iteration order into labels.
	recs, _ := synthLog(9, 2000)
	rng := rand.New(rand.NewSource(10))
	for i := range recs {
		recs[i].Size = []int32{4096, 8192, 65536, 2 << 20}[rng.Intn(4)]
	}
	a := CutoffPerSize(recs)
	for trial := 0; trial < 3; trial++ {
		b := CutoffPerSize(recs)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("trial %d: label %d differs (%d vs %d)", trial, i, a[i], b[i])
			}
		}
	}
}
