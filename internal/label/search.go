package label

import (
	"math"

	"repro/internal/iolog"
)

// Objective scores a labeling without ground truth — the quantity the
// gradient-descent threshold search of Fig. 3d maximizes, balancing
// "accuracy" (do the slow labels form coherent periods that separate in
// latency) against "sensitivity" (what share of the log is marked slow).
//
// Three terms:
//
//   - coherence: internal contention slows *consecutive* I/Os, so slow
//     labels should live in runs. Isolated slow labels are transient noise
//     (read retries) that thresholds should not chase.
//   - coverage: the slow fraction should be near the series' estimated tail
//     fraction — neither "everything is fine" nor "half the log is slow".
//   - separation: slow-labeled I/Os should be slower than fast-labeled
//     ones, squashed so a handful of extreme outliers cannot dominate.
func Objective(recs []iolog.Record, labels []int) float64 {
	return ObjectiveSeries(Prepare(recs), labels)
}

// minCoherentRun is the run length above which a slow run counts as a
// genuine period rather than isolated noise (matches the paper's finding
// that bursts of <= 3 slow I/Os are noise, §3.2).
const minCoherentRun = 4

// ObjectiveSeries is Objective over a prepared series.
func ObjectiveSeries(s *Series, labels []int) float64 {
	var nSlow, nFast int
	var sumSlow, sumFast float64
	var inRun int // slow labels inside coherent runs
	run := 0
	flushRun := func() {
		if run >= minCoherentRun {
			inRun += run
		}
		run = 0
	}
	for i, l := range s.Lat {
		if labels[i] == 1 {
			nSlow++
			sumSlow += l
			run++
		} else {
			nFast++
			sumFast += l
			flushRun()
		}
	}
	flushRun()
	n := len(s.Lat)
	if n == 0 || nSlow == 0 || nFast == 0 {
		return -1
	}
	coherence := float64(inRun) / float64(nSlow)

	sep := (sumSlow/float64(nSlow) - sumFast/float64(nFast)) / s.stdLat
	sepNorm := sep / (1 + math.Abs(sep))

	frac := float64(nSlow) / float64(n)
	width := 0.5*s.targetFrac + 0.02
	d := (frac - s.targetFrac) / width
	coverage := math.Exp(-d * d)

	return 1.2*coherence + coverage + 0.5*sepNorm
}

// SearchOptions tunes the threshold search.
type SearchOptions struct {
	MaxIters int     // gradient steps per start (default 20)
	Step     float64 // initial learning rate in percentile units (default 6)
}

// Search runs the finite-difference gradient ascent of Fig. 3d over the
// three threshold knobs (HighLatPct, LowThptPct, MaxDropFrac), maximizing
// Objective. Three deterministic starting points guard against local
// optima. No ground truth is used.
func Search(recs []iolog.Record, opts SearchOptions) Thresholds {
	return SearchSeries(Prepare(recs), opts)
}

// SearchSeries is Search over a prepared series.
func SearchSeries(s *Series, opts SearchOptions) Thresholds {
	if opts.MaxIters == 0 {
		opts.MaxIters = 20
	}
	if opts.Step == 0 {
		opts.Step = 6
	}
	// Coarse grid scan picks the basin; gradient ascent refines within it
	// (plain single-start descent gets trapped when the objective surface is
	// stepped, which percentile-resolved thresholds make it).
	var starts []Thresholds
	for _, lp := range []float64{75, 85, 95} {
		for _, tp := range []float64{10, 25, 40} {
			for _, dr := range []float64{0.2, 0.5} {
				starts = append(starts, Thresholds{HighLatPct: lp, LowThptPct: tp, MaxDropFrac: dr})
			}
		}
	}
	bestStart := DefaultThresholds()
	bestStartScore := math.Inf(-1)
	for _, t := range starts {
		if sc := ObjectiveSeries(s, PeriodSeries(s, t)); sc > bestStartScore {
			bestStart, bestStartScore = t, sc
		}
	}
	best, bestScore := ascend(s, bestStart, opts)
	if t, score := ascend(s, DefaultThresholds(), opts); score > bestScore {
		best, bestScore = t, score
	}
	_ = bestScore
	return clampThresholds(best)
}

func ascend(s *Series, cur Thresholds, opts SearchOptions) (Thresholds, float64) {
	eval := func(t Thresholds) float64 {
		return ObjectiveSeries(s, PeriodSeries(s, clampThresholds(t)))
	}
	curScore := eval(cur)
	step := opts.Step
	for iter := 0; iter < opts.MaxIters; iter++ {
		// Finite-difference gradient over the 3 knobs; each lives on its own
		// scale, so each has its own epsilon.
		var grad [3]float64
		eps := [3]float64{2, 2, 0.05}
		for k := 0; k < 3; k++ {
			up, down := cur, cur
			switch k {
			case 0:
				up.HighLatPct += eps[k]
				down.HighLatPct -= eps[k]
			case 1:
				up.LowThptPct += eps[k]
				down.LowThptPct -= eps[k]
			case 2:
				up.MaxDropFrac += eps[k]
				down.MaxDropFrac -= eps[k]
			}
			grad[k] = (eval(up) - eval(down)) / (2 * eps[k])
		}
		norm := math.Sqrt(grad[0]*grad[0] + grad[1]*grad[1] + grad[2]*grad[2])
		if norm < 1e-9 {
			break
		}
		next := cur
		next.HighLatPct += step * grad[0] / norm
		next.LowThptPct += step * grad[1] / norm
		next.MaxDropFrac += step * 0.02 * grad[2] / norm
		next = clampThresholds(next)
		nextScore := eval(next)
		if nextScore > curScore {
			cur, curScore = next, nextScore
		} else {
			step /= 2
			if step < 0.25 {
				break
			}
		}
	}
	return cur, curScore
}

func clampThresholds(t Thresholds) Thresholds {
	t.HighLatPct = clamp(t.HighLatPct, 60, 99.5)
	t.LowThptPct = clamp(t.LowThptPct, 5, 60)
	t.MaxDropFrac = clamp(t.MaxDropFrac, 0.05, 0.9)
	return t
}
