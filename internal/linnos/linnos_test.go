package linnos

import (
	"sync"
	"testing"
	"time"

	"repro/internal/feature"
	"repro/internal/iolog"
	"repro/internal/ssd"
	"repro/internal/trace"
)

func TestDigitize(t *testing.T) {
	row := digitize(nil, 123, 4)
	want := []float64{0, 1.0 / 9, 2.0 / 9, 3.0 / 9}
	if len(row) != 4 {
		t.Fatalf("row %v", row)
	}
	for i := range want {
		if row[i] != want[i] {
			t.Fatalf("digit %d = %v, want %v", i, row[i], want[i])
		}
	}
	// Saturation at the digit capacity.
	row = digitize(nil, 123456, 4)
	for _, d := range row {
		if d != 1 {
			t.Fatalf("saturated digits %v", row)
		}
	}
	// Negative clamps to zero.
	row = digitize(nil, -5, 3)
	for _, d := range row {
		if d != 0 {
			t.Fatalf("negative digits %v", row)
		}
	}
}

func TestFeaturesWidth(t *testing.T) {
	win := feature.NewWindow(HistDepth)
	row := Features(7, win)
	if len(row) != Inputs || Inputs != 31 {
		t.Fatalf("feature width %d, want 31", len(row))
	}
	for _, v := range row {
		if v < 0 || v > 1 {
			t.Fatalf("digitized value out of range: %v", v)
		}
	}
}

func TestInferencesFor(t *testing.T) {
	cases := []struct {
		size int32
		want int
	}{{4096, 1}, {4097, 2}, {2 << 20, 512}, {1, 1}}
	for _, c := range cases {
		if got := InferencesFor(c.size); got != c.want {
			t.Errorf("InferencesFor(%d) = %d, want %d", c.size, got, c.want)
		}
	}
}

var cached struct {
	once sync.Once
	m    *Model
	log  []iolog.Record
	err  error
}

// trainSmall trains one shared model for every test in this package:
// training dominates test wall time, and the tests only read the model.
func trainSmall(t *testing.T) (*Model, []iolog.Record) {
	t.Helper()
	cached.once.Do(func() {
		tr := trace.Generate(trace.MSRStyle(2, 2*time.Second))
		dev := ssd.New(ssd.Samsung970Pro(), 2)
		cached.log = iolog.Collect(tr, dev)
		cached.m, cached.err = Train(cached.log, 2)
	})
	if cached.err != nil {
		t.Fatal(cached.err)
	}
	return cached.m, cached.log
}

func TestTrainAndModelGeometry(t *testing.T) {
	m, _ := trainSmall(t)
	w, b := m.Net().ParamCount()
	if w+b != 8706 {
		t.Fatalf("linnos params %d, want 8706", w+b)
	}
	if m.Net().MulCount() != 8448 {
		t.Fatalf("multiplications %d, want 8448", m.Net().MulCount())
	}
}

func TestAdmitIOCountsPages(t *testing.T) {
	m, _ := trainSmall(t)
	win := feature.NewWindow(HistDepth)
	admit, inf := m.AdmitIO(0, 64<<10, win)
	if admit {
		if inf != 16 {
			t.Fatalf("admitted 64KB I/O with %d inferences, want 16", inf)
		}
	} else if inf < 1 || inf > 16 {
		t.Fatalf("declined with %d inferences", inf)
	}
}

func TestEvaluateAgainstTruth(t *testing.T) {
	m, log := trainSmall(t)
	reads := iolog.Reads(log)
	gt := iolog.GroundTruth(reads)
	rep := m.Evaluate(reads, gt)
	if rep.ROCAUC < 0.6 {
		t.Fatalf("LinnOS in-sample ROC %.3f; model is broken", rep.ROCAUC)
	}
}

func TestScoreAdmitConsistency(t *testing.T) {
	m, _ := trainSmall(t)
	win := feature.NewWindow(HistDepth)
	win.Push(feature.Hist{Latency: 5e6, QueueLen: 30})
	row := Features(25, win)
	score := m.Score(row)
	admit := m.Admit(row)
	if admit != (score < 0.5) {
		t.Fatalf("quantized admit %v vs float score %.3f", admit, score)
	}
}
