// Package linnos re-implements the LinnOS admission model (OSDI '20), the
// ML baseline the paper compares against. LinnOS differs from Heimdall in
// every pipeline stage the paper revisits:
//
//   - per-page (4KB) decisions: a big I/O is split and inferred per page
//     (Fig. 9a), and I/O size is not a feature;
//   - latency-cutoff labeling (Fig. 3a);
//   - digitized features: each raw value is encoded as separate decimal
//     digits, 31 inputs in total (§6.4 step 0);
//   - one hidden layer of 256 neurons and a 2-neuron softmax output,
//     8706 weights+biases and 8448 multiplications (§6.6).
package linnos

import (
	"math/rand"
	"sort"

	"repro/internal/feature"
	"repro/internal/iolog"
	"repro/internal/label"
	"repro/internal/metrics"
	"repro/internal/nn"
)

// HistDepth is LinnOS's historical depth: the last 4 completed I/Os.
const HistDepth = 4

// PageSize is the granularity of LinnOS decisions.
const PageSize = 4 << 10

const (
	qlenDigits = 3 // queue lengths encoded as 3 decimal digits
	latDigits  = 4 // latencies (µs) encoded as 4 decimal digits
	// Inputs: (1 current + 4 historical) queue lengths * 3 digits
	// + 4 historical latencies * 4 digits = 15 + 16 = 31.
	Inputs = (1+HistDepth)*qlenDigits + HistDepth*latDigits
)

// Model is a trained LinnOS predictor.
type Model struct {
	net *nn.Network
	q   *nn.QuantNetwork

	scratchA, scratchB []int64
}

// Train fits LinnOS on a collected log: cutoff labeling, digitized features,
// 256-neuron hidden layer, softmax output.
func Train(recs []iolog.Record, seed int64) (*Model, error) {
	reads := iolog.Reads(recs)
	labels := label.Cutoff(reads, label.CutoffValue(reads))
	rows := Extract(reads)
	rows, labels = subsample(rows, labels, 50000, seed)
	net, err := nn.New(nn.Config{
		Inputs:    Inputs,
		Layers:    []nn.LayerSpec{{Units: 256, Act: nn.ReLU}, {Units: 2, Act: nn.Softmax}},
		Seed:      seed,
		Optimizer: nn.Adam,
		Loss:      nn.CE,
		LR:        0.005,
		Epochs:    20,
		Batch:     64,
		Patience:  5,
	})
	if err != nil {
		return nil, err
	}
	yf := make([]float64, len(labels))
	for i, l := range labels {
		yf[i] = float64(l)
	}
	if _, err := net.Train(rows, yf); err != nil {
		return nil, err
	}
	q, err := net.Quantize()
	if err != nil {
		return nil, err
	}
	return &Model{
		net: net, q: q,
		scratchA: make([]int64, q.ScratchSize()),
		scratchB: make([]int64, q.ScratchSize()),
	}, nil
}

// subsample caps the training set uniformly at random, matching the
// data-sampling applied to the Heimdall pipeline so comparisons stay fair.
func subsample(rows [][]float64, labels []int, max int, seed int64) ([][]float64, []int) {
	if max <= 0 || len(rows) <= max {
		return rows, labels
	}
	rng := rand.New(rand.NewSource(seed + 17))
	idx := rng.Perm(len(rows))[:max]
	sort.Ints(idx)
	outR := make([][]float64, max)
	outL := make([]int, max)
	for i, j := range idx {
		outR[i] = rows[j]
		outL[i] = labels[j]
	}
	return outR, outL
}

// digitize appends the base-10 digits of v (most significant first, capped
// at digits places) to row, each normalized to [0, 1].
func digitize(row []float64, v int64, digits int) []float64 {
	maxVal := int64(1)
	for i := 0; i < digits; i++ {
		maxVal *= 10
	}
	if v >= maxVal {
		v = maxVal - 1
	}
	if v < 0 {
		v = 0
	}
	div := maxVal / 10
	for i := 0; i < digits; i++ {
		row = append(row, float64((v/div)%10)/9)
		div /= 10
	}
	return row
}

// Features builds the 31-input digitized vector from live state.
func Features(queueLen int, hist *feature.Window) []float64 {
	row := make([]float64, 0, Inputs)
	row = digitize(row, int64(queueLen), qlenDigits)
	for d := 0; d < HistDepth; d++ {
		row = digitize(row, int64(hist.At(d).QueueLen), qlenDigits)
	}
	for d := 0; d < HistDepth; d++ {
		latUs := int64(hist.At(d).Latency / 1e3)
		row = digitize(row, latUs, latDigits)
	}
	return row
}

// Extract builds training rows from a log with completed-before-arrival
// history, mirroring feature.Extract but with LinnOS's encoding.
func Extract(reads []iolog.Record) [][]float64 {
	rows := make([][]float64, len(reads))
	win := feature.NewWindow(HistDepth)
	type pending struct {
		complete int64
		h        feature.Hist
	}
	var queue []pending
	for i, r := range reads {
		// The queue is nearly sorted (completion order ~ arrival order);
		// compact scan keeps this simple and fast enough for training.
		keep := queue[:0]
		for _, p := range queue {
			if p.complete <= r.Arrival {
				win.Push(p.h)
			} else {
				keep = append(keep, p)
			}
		}
		queue = keep
		rows[i] = Features(r.QueueLen, win)
		queue = append(queue, pending{
			complete: r.Complete(),
			h: feature.Hist{
				Latency:  float64(r.Latency),
				QueueLen: float64(r.QueueLen),
			},
		})
	}
	return rows
}

// InferencesFor returns how many model invocations an I/O of the given size
// costs: one per 4KB page (Fig. 9a).
func InferencesFor(size int32) int {
	n := (int(size) + PageSize - 1) / PageSize
	if n < 1 {
		n = 1
	}
	return n
}

// Score returns P(slow) for a digitized feature row.
func (m *Model) Score(row []float64) float64 { return m.net.Infer(row) }

// Admit decides one page: true = admit. Callers invoke it once per page of
// the I/O; any slow page declines the whole request. Not safe for concurrent
// use (shared scratch).
func (m *Model) Admit(row []float64) bool {
	return !m.q.DecideInto(row, m.scratchA, m.scratchB)
}

// AdmitIO runs the per-page protocol for a whole I/O and reports the
// decision plus the number of inferences spent.
func (m *Model) AdmitIO(queueLen int, size int32, hist *feature.Window) (admit bool, inferences int) {
	row := Features(queueLen, hist)
	n := InferencesFor(size)
	for p := 0; p < n; p++ {
		if !m.Admit(row) {
			return false, p + 1
		}
	}
	return true, n
}

// Net exposes the float network for overhead accounting (§6.6).
func (m *Model) Net() *nn.Network { return m.net }

// Evaluate scores a labeled test log with the five §6.4 metrics.
func (m *Model) Evaluate(reads []iolog.Record, refLabels []int) metrics.Report {
	rows := Extract(reads)
	scores := make([]float64, len(rows))
	for i, r := range rows {
		scores[i] = m.net.Infer(r)
	}
	return metrics.Evaluate(scores, refLabels)
}
