// Package fault is a deterministic, schedule-driven fault injector for the
// SSD simulator. The paper's premise is that devices misbehave in ways the
// admission model was trained on (GC, flushes, wear leveling); this package
// injects the misbehaviour the model was *not* trained on — firmware
// brownouts that inflate every latency, transient read failures (ECC/media
// errors surfaced to the host), and whole-device outages — so the layers
// above (replay retries, the Guarded circuit breaker, cluster degraded mode)
// can be exercised and tested.
//
// A Schedule is a list of time windows, each carrying one fault kind.
// An Injector binds a schedule to one ssd.Device and mediates every
// submission. Injection is reproducible: the only randomness is a dedicated
// PRNG seeded at construction, drawn only inside read-error windows, so a
// fault-free schedule is bit-for-bit identical to the bare device.
package fault

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"repro/internal/ssd"
	"repro/internal/trace"
)

// Injection errors returned by (*Injector).Submit.
var (
	// ErrOffline reports that the device is inside an offline window; the
	// request was rejected without touching the device.
	ErrOffline = errors.New("fault: device offline")
	// ErrReadFailed reports a transient read failure: the media access
	// happened (queue pressure is real) but no data came back.
	ErrReadFailed = errors.New("fault: transient read failure")
)

// Kind identifies one fault class.
type Kind uint8

const (
	// Brownout inflates the service time of every request by a factor —
	// a thermal throttle or firmware slowdown the model never saw.
	Brownout Kind = iota
	// ReadError fails each read with a probability; the device still burns
	// the service time (the access happened, the data did not come back).
	ReadError
	// Offline rejects every request outright — a pulled cable, a crashed
	// controller, an OSD down.
	Offline
)

// String names the fault kind.
func (k Kind) String() string {
	switch k {
	case Brownout:
		return "brownout"
	case ReadError:
		return "read-error"
	case Offline:
		return "offline"
	}
	return "unknown"
}

// Window is one scheduled fault over the half-open interval [Start, End) in
// simulation nanoseconds.
type Window struct {
	Start, End int64
	Kind       Kind
	// Factor is the Brownout latency multiplier (> 1).
	Factor float64
	// Prob is the ReadError per-read failure probability in (0, 1].
	Prob float64
}

// Active reports whether the window covers the instant now.
func (w Window) Active(now int64) bool { return now >= w.Start && now < w.End }

// String renders the window for logs and examples.
func (w Window) String() string {
	d := func(ns int64) time.Duration { return time.Duration(ns) }
	switch w.Kind {
	case Brownout:
		return fmt.Sprintf("brownout x%.1f [%v, %v)", w.Factor, d(w.Start), d(w.End))
	case ReadError:
		return fmt.Sprintf("read-error p=%.2f [%v, %v)", w.Prob, d(w.Start), d(w.End))
	}
	return fmt.Sprintf("offline [%v, %v)", d(w.Start), d(w.End))
}

// Schedule is a composable list of fault windows. The zero value (and nil)
// is a fault-free schedule. Windows may overlap; overlapping brownouts
// compound multiplicatively and overlapping read-error windows take the
// highest probability.
type Schedule struct {
	windows []Window
}

// NewSchedule returns an empty schedule to chain windows onto.
func NewSchedule() *Schedule { return &Schedule{} }

// Brownout schedules a latency inflation of factor over [start, start+dur).
func (s *Schedule) Brownout(start, dur time.Duration, factor float64) *Schedule {
	s.windows = append(s.windows, Window{
		Start: int64(start), End: int64(start + dur), Kind: Brownout, Factor: factor,
	})
	return s
}

// ReadErrors schedules transient read failures with probability prob over
// [start, start+dur).
func (s *Schedule) ReadErrors(start, dur time.Duration, prob float64) *Schedule {
	s.windows = append(s.windows, Window{
		Start: int64(start), End: int64(start + dur), Kind: ReadError, Prob: prob,
	})
	return s
}

// Offline schedules a full outage over [start, start+dur).
func (s *Schedule) Offline(start, dur time.Duration) *Schedule {
	s.windows = append(s.windows, Window{
		Start: int64(start), End: int64(start + dur), Kind: Offline,
	})
	return s
}

// Windows returns a copy of the scheduled windows.
func (s *Schedule) Windows() []Window {
	if s == nil {
		return nil
	}
	return append([]Window(nil), s.windows...)
}

// Empty reports whether the schedule injects nothing (nil-safe).
func (s *Schedule) Empty() bool { return s == nil || len(s.windows) == 0 }

// OfflineAt reports whether the device is inside an offline window (nil-safe).
func (s *Schedule) OfflineAt(now int64) bool {
	if s == nil {
		return false
	}
	for _, w := range s.windows {
		if w.Kind == Offline && w.Active(now) {
			return true
		}
	}
	return false
}

// FactorAt returns the combined brownout latency multiplier at now (1 when
// no brownout is active; nil-safe).
func (s *Schedule) FactorAt(now int64) float64 {
	f := 1.0
	if s == nil {
		return f
	}
	for _, w := range s.windows {
		if w.Kind == Brownout && w.Active(now) && w.Factor > 1 {
			f *= w.Factor
		}
	}
	return f
}

// ErrProbAt returns the read-failure probability at now (0 when no
// read-error window is active; nil-safe).
func (s *Schedule) ErrProbAt(now int64) float64 {
	var p float64
	if s == nil {
		return p
	}
	for _, w := range s.windows {
		if w.Kind == ReadError && w.Active(now) && w.Prob > p {
			p = w.Prob
		}
	}
	return p
}

// Injector binds a Schedule to one simulated device and mediates every
// submission. It is not safe for concurrent use, matching ssd.Device.
type Injector struct {
	dev   *ssd.Device
	sched *Schedule
	rng   *rand.Rand

	// Injection counters, for observability and tests.
	BrownoutIOs    int // requests whose latency was inflated
	ReadFailures   int // reads failed inside a read-error window
	OfflineRejects int // requests rejected inside an offline window
}

// NewInjector wraps dev with the schedule. A nil schedule is valid and makes
// the injector a deterministic passthrough. The seed drives only read-error
// sampling, independently of the device's own PRNG stream.
func NewInjector(dev *ssd.Device, sched *Schedule, seed int64) *Injector {
	return &Injector{dev: dev, sched: sched, rng: rand.New(rand.NewSource(seed))}
}

// Device returns the wrapped device.
func (in *Injector) Device() *ssd.Device { return in.dev }

// QueueLen delegates to the device.
func (in *Injector) QueueLen(now int64) int { return in.dev.QueueLen(now) }

// InBusy delegates to the device (ground truth, simulator-only).
func (in *Injector) InBusy(now int64) bool { return in.dev.InBusy(now) }

// Offline reports whether the device rejects requests at now.
func (in *Injector) Offline(now int64) bool { return in.sched.OfflineAt(now) }

// Submit passes one request through the fault schedule and, unless the
// device is offline, to the device. On ErrReadFailed the returned Result is
// the device's (the access consumed channel time); on ErrOffline it is zero.
func (in *Injector) Submit(now int64, op trace.Op, size int32) (ssd.Result, error) {
	if in.sched.OfflineAt(now) {
		in.OfflineRejects++
		return ssd.Result{}, ErrOffline
	}
	res := in.dev.Submit(now, op, size)
	if op == trace.Read {
		if p := in.sched.ErrProbAt(now); p > 0 && in.rng.Float64() < p {
			in.ReadFailures++
			return res, ErrReadFailed
		}
	}
	if f := in.sched.FactorAt(now); f > 1 {
		// Inflation happens at the injector, not inside the device: the
		// device's own queue statistics stay self-consistent while every
		// latency the host observes is multiplied — the signature of a
		// throttled controller.
		in.BrownoutIOs++
		res.Complete = res.Start + int64(float64(res.Complete-res.Start)*f)
	}
	return res, nil
}
