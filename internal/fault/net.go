package fault

import (
	"errors"
	"math/rand"
	"net"
	"time"
)

// This file extends the schedule-driven fault machinery from simulated disks
// to the serving network. The idiom is the same as the device Schedule: a
// list of windows, each carrying one fault kind, bound to a logical axis —
// but here the axis is an operation/step counter, not simulation time, so a
// test or benchmark that drives the axis itself is deterministic end to end.
// The only randomness is a dedicated PRNG seeded at construction, drawn only
// inside truncation windows with an unspecified cut point, so a fault-free
// schedule is a bit-for-bit passthrough.

// ErrNetReset reports an injected connection reset: the wire was cut by the
// fault schedule, not by the peer.
var ErrNetReset = errors.New("fault: connection reset by injector")

// NetKind identifies one network fault class.
type NetKind uint8

const (
	// NetDelay adds latency to every operation in the window without
	// breaking it — a congested or throttled link. Delivery still succeeds,
	// so a resilient client must NOT fail open under mere delay.
	NetDelay NetKind = iota
	// NetStall freezes delivery: operations in the window block (Conn: for
	// Dur per op; Proxy: until the window ends and the link is cut) — a
	// switch buffering black hole or a remote peer that stopped reading.
	NetStall
	// NetTruncate cuts a frame mid-body: the first Bytes bytes of a write
	// are delivered, then the connection resets — a crash between two
	// segments of one logical frame.
	NetTruncate
	// NetReset fails operations immediately and closes the connection — an
	// RST from a crashed peer or a middlebox.
	NetReset
	// NetBlackout takes the listener down: new connections are refused for
	// the whole window and existing ones are cut — a crashed server process
	// or an unplugged node. Interpreted by Proxy; Conn treats it as NetReset.
	NetBlackout
)

// String names the network fault kind.
func (k NetKind) String() string {
	switch k {
	case NetDelay:
		return "delay"
	case NetStall:
		return "stall"
	case NetTruncate:
		return "truncate"
	case NetReset:
		return "reset"
	case NetBlackout:
		return "blackout"
	}
	return "unknown"
}

// NetWindow is one scheduled network fault over the half-open interval
// [Start, End) on the owner's logical axis: per-connection operation index
// for Conn, driver step for Proxy.
type NetWindow struct {
	Start, End int64
	Kind       NetKind
	// Dur is the added latency for NetDelay (per op) and the per-op block
	// for NetStall on a Conn (the Proxy stalls for the whole window).
	Dur time.Duration
	// Bytes is how much of the faulted write NetTruncate lets through
	// before the cut; 0 draws a cut point from the seeded PRNG.
	Bytes int
}

// Active reports whether the window covers the axis position op.
func (w NetWindow) Active(op int64) bool { return op >= w.Start && op < w.End }

// NetSchedule is a composable list of network fault windows. The zero value
// (and nil) is fault-free. Windows may overlap; delay durations of
// overlapping delay/stall windows add.
type NetSchedule struct {
	windows []NetWindow
}

// NewNetSchedule returns an empty schedule to chain windows onto.
func NewNetSchedule() *NetSchedule { return &NetSchedule{} }

// Delay schedules added latency d for every op in [start, end).
func (s *NetSchedule) Delay(start, end int64, d time.Duration) *NetSchedule {
	s.windows = append(s.windows, NetWindow{Start: start, End: end, Kind: NetDelay, Dur: d})
	return s
}

// Stall schedules frozen delivery over [start, end). On a Conn each op in
// the window blocks for d; on a Proxy the link is held for the whole window
// and cut at its end (d is ignored there).
func (s *NetSchedule) Stall(start, end int64, d time.Duration) *NetSchedule {
	s.windows = append(s.windows, NetWindow{Start: start, End: end, Kind: NetStall, Dur: d})
	return s
}

// Truncate schedules a mid-frame cut in [start, end): the faulted write
// delivers only its first bytes bytes (0: a seeded random cut), then the
// connection resets.
func (s *NetSchedule) Truncate(start, end int64, bytes int) *NetSchedule {
	s.windows = append(s.windows, NetWindow{Start: start, End: end, Kind: NetTruncate, Bytes: bytes})
	return s
}

// Reset schedules immediate connection resets over [start, end).
func (s *NetSchedule) Reset(start, end int64) *NetSchedule {
	s.windows = append(s.windows, NetWindow{Start: start, End: end, Kind: NetReset})
	return s
}

// Blackout schedules a listener outage over [start, end).
func (s *NetSchedule) Blackout(start, end int64) *NetSchedule {
	s.windows = append(s.windows, NetWindow{Start: start, End: end, Kind: NetBlackout})
	return s
}

// Windows returns a copy of the scheduled windows.
func (s *NetSchedule) Windows() []NetWindow {
	if s == nil {
		return nil
	}
	return append([]NetWindow(nil), s.windows...)
}

// Empty reports whether the schedule injects nothing (nil-safe).
func (s *NetSchedule) Empty() bool { return s == nil || len(s.windows) == 0 }

// ActiveAt reports whether a window of kind k covers op (nil-safe).
func (s *NetSchedule) ActiveAt(op int64, k NetKind) bool {
	if s == nil {
		return false
	}
	for _, w := range s.windows {
		if w.Kind == k && w.Active(op) {
			return true
		}
	}
	return false
}

// DelayAt returns the summed added latency of the delay and stall windows
// covering op (0 when none; nil-safe).
func (s *NetSchedule) DelayAt(op int64) time.Duration {
	var d time.Duration
	if s == nil {
		return d
	}
	for _, w := range s.windows {
		if (w.Kind == NetDelay || w.Kind == NetStall) && w.Active(op) {
			d += w.Dur
		}
	}
	return d
}

// TruncateAt returns the truncation window covering op, if any (nil-safe).
func (s *NetSchedule) TruncateAt(op int64) (NetWindow, bool) {
	if s == nil {
		return NetWindow{}, false
	}
	for _, w := range s.windows {
		if w.Kind == NetTruncate && w.Active(op) {
			return w, true
		}
	}
	return NetWindow{}, false
}

// DisruptiveAt reports whether op falls in a window that breaks delivery
// (stall, truncate, reset, blackout). Delay windows are excluded: a merely
// slow wire still answers, so a fail-open verdict under pure delay is a
// client bug, which is exactly what the chaos soak asserts.
func (s *NetSchedule) DisruptiveAt(op int64) bool {
	if s == nil {
		return false
	}
	for _, w := range s.windows {
		if w.Kind != NetDelay && w.Active(op) {
			return true
		}
	}
	return false
}

// ChaosSchedule derives a deterministic soak schedule from a seed: healthy
// stretches alternating with fault windows whose kind cycles blackout →
// reset → stall → truncate → delay over [0, steps). Stall windows stay
// short because every stalled request costs the client a full read
// deadline; truncation cuts at byte 9 of the 25-byte decide frame, squarely
// mid-body.
func ChaosSchedule(seed, steps int64) *NetSchedule {
	rng := rand.New(rand.NewSource(seed))
	s := NewNetSchedule()
	kinds := [...]NetKind{NetBlackout, NetReset, NetStall, NetTruncate, NetDelay}
	pos := 20 + rng.Int63n(20)
	for i := 0; pos < steps; i++ {
		kind := kinds[i%len(kinds)]
		var length int64
		switch kind {
		case NetStall:
			length = 2 + rng.Int63n(2)
		case NetTruncate:
			length = 3 + rng.Int63n(3)
		default:
			length = 4 + rng.Int63n(8)
		}
		end := pos + length
		if end > steps {
			end = steps
		}
		switch kind {
		case NetBlackout:
			s.Blackout(pos, end)
		case NetReset:
			s.Reset(pos, end)
		case NetStall:
			s.Stall(pos, end, 0)
		case NetTruncate:
			s.Truncate(pos, end, 9)
		case NetDelay:
			s.Delay(pos, end, time.Millisecond)
		}
		pos = end + 25 + rng.Int63n(25)
	}
	return s
}

// Conn wraps a net.Conn with schedule-driven faults on a per-connection
// operation axis: every Read and Write call advances the axis by one, so a
// schedule like Reset(10, 12) cuts the wire at exactly the 11th operation
// regardless of timing. Like ssd.Device and Injector, a Conn is not safe
// for concurrent use of the same direction; concurrent Read and Write (the
// usual split-reader/writer protocol shape) are fine because the op counter
// is only approximate across directions — deterministic tests drive one
// direction at a time.
type Conn struct {
	inner net.Conn
	sched *NetSchedule
	rng   *rand.Rand
	ops   int64

	// Injection counters, for observability and tests.
	Delayed   int // ops that slept in a delay/stall window
	Truncated int // writes cut mid-frame
	Resets    int // ops failed by a reset/blackout window
}

// WrapConn binds a schedule to an established connection. A nil schedule is
// a deterministic passthrough. The seed drives only truncation-point
// sampling for windows with Bytes == 0.
func WrapConn(c net.Conn, sched *NetSchedule, seed int64) *Conn {
	return &Conn{inner: c, sched: sched, rng: rand.New(rand.NewSource(seed))}
}

// Ops returns the number of operations the connection has mediated.
func (c *Conn) Ops() int64 { return c.ops }

// Read applies the schedule at the current op, then reads from the wrapped
// connection.
//
//heimdall:walltime
func (c *Conn) Read(p []byte) (int, error) {
	op := c.ops
	c.ops++
	if c.sched.ActiveAt(op, NetReset) || c.sched.ActiveAt(op, NetBlackout) {
		c.Resets++
		_ = c.inner.Close()
		return 0, ErrNetReset
	}
	if d := c.sched.DelayAt(op); d > 0 {
		c.Delayed++
		time.Sleep(d)
	}
	return c.inner.Read(p)
}

// Write applies the schedule at the current op, then writes to the wrapped
// connection. Inside a truncation window only the window's byte budget is
// delivered before the reset.
//
//heimdall:walltime
func (c *Conn) Write(p []byte) (int, error) {
	op := c.ops
	c.ops++
	if c.sched.ActiveAt(op, NetReset) || c.sched.ActiveAt(op, NetBlackout) {
		c.Resets++
		_ = c.inner.Close()
		return 0, ErrNetReset
	}
	if w, ok := c.sched.TruncateAt(op); ok && len(p) > 0 {
		cut := w.Bytes
		if cut <= 0 || cut >= len(p) {
			cut = c.rng.Intn(len(p)) // mid-frame: strictly fewer bytes than asked
		}
		c.Truncated++
		n, _ := c.inner.Write(p[:cut])
		_ = c.inner.Close()
		return n, ErrNetReset
	}
	if d := c.sched.DelayAt(op); d > 0 {
		c.Delayed++
		time.Sleep(d)
	}
	return c.inner.Write(p)
}

// Close closes the wrapped connection.
func (c *Conn) Close() error { return c.inner.Close() }

// LocalAddr delegates to the wrapped connection.
func (c *Conn) LocalAddr() net.Addr { return c.inner.LocalAddr() }

// RemoteAddr delegates to the wrapped connection.
func (c *Conn) RemoteAddr() net.Addr { return c.inner.RemoteAddr() }

// SetDeadline delegates to the wrapped connection.
func (c *Conn) SetDeadline(t time.Time) error { return c.inner.SetDeadline(t) }

// SetReadDeadline delegates to the wrapped connection.
func (c *Conn) SetReadDeadline(t time.Time) error { return c.inner.SetReadDeadline(t) }

// SetWriteDeadline delegates to the wrapped connection.
func (c *Conn) SetWriteDeadline(t time.Time) error { return c.inner.SetWriteDeadline(t) }
