package fault

import (
	"errors"
	"net"
	"strings"
	"sync"
	"time"
)

// Proxy is an in-process chaos relay for the serving wire: it listens on a
// front address, forwards every accepted connection to a backend, and
// applies a NetSchedule on a driver-owned step axis. The driver calls
// Step(i) before issuing request i, so fault windows land on exact request
// indices and a soak is reproducible bit for bit — there is no wall-clock
// randomness anywhere in the fault path.
//
// Window semantics on the proxy axis:
//
//   - NetBlackout: the front listener is closed for the whole window (unix
//     sockets unlink, so dials fail immediately) and live links are cut; on
//     window exit the listener reopens on the same address.
//   - NetReset: live links are cut on entry and every connection accepted
//     during the window is closed immediately after accept.
//   - NetStall: forwarding freezes — accepted links read but deliver
//     nothing; on window exit the stalled links are cut and forwarding
//     resumes for new ones.
//   - NetTruncate: re-armed at every in-window step; the next client→backend
//     chunk is cut after the window's byte budget and the link is severed —
//     a frame dies mid-body.
//   - NetDelay: each forwarded chunk (both directions) is delayed by the
//     window's Dur; delivery still succeeds.
type Proxy struct {
	sched *NetSchedule

	frontNet, frontAddr     string
	backendNet, backendAddr string

	mu        sync.Mutex
	ln        net.Listener
	links     map[*link]struct{}
	stallCh   chan struct{} // non-nil while stalled; closed on release
	resetMode bool
	delay     time.Duration
	trunc     int // armed client→backend cut budget; -1 = disarmed
	closed    bool

	accepts, refused, killed, truncated int

	wg sync.WaitGroup
}

// ProxyCounters is a snapshot of the proxy's injection activity.
type ProxyCounters struct {
	Accepts   int `json:"accepts"`          // connections accepted and linked
	Refused   int `json:"refused"`          // connections closed at accept by a reset window
	Killed    int `json:"killed_links"`     // links severed by fault windows or errors
	Truncated int `json:"truncated_frames"` // client→backend chunks cut mid-body
}

type link struct {
	cli, srv net.Conn
}

func (l *link) closeBoth() {
	_ = l.cli.Close()
	_ = l.srv.Close()
}

// ErrProxyClosed reports a Step call after Close.
var ErrProxyClosed = errors.New("fault: proxy closed")

// splitAddr parses the "unix:/path", "tcp:host:port", or bare "host:port"
// address forms (the same syntax the serving layer uses).
func splitAddr(addr string) (network, target string) {
	switch {
	case strings.HasPrefix(addr, "unix:"):
		return "unix", strings.TrimPrefix(addr, "unix:")
	case strings.HasPrefix(addr, "tcp:"):
		return "tcp", strings.TrimPrefix(addr, "tcp:")
	default:
		return "tcp", addr
	}
}

// NewProxy opens the front listener and starts relaying to backend. The
// schedule is evaluated only when the driver calls Step; a proxy that is
// never stepped (or has a nil schedule) is a plain passthrough.
func NewProxy(front, backend string, sched *NetSchedule) (*Proxy, error) {
	fn, fa := splitAddr(front)
	bn, ba := splitAddr(backend)
	p := &Proxy{
		sched:       sched,
		frontNet:    fn,
		frontAddr:   fa,
		backendNet:  bn,
		backendAddr: ba,
		links:       make(map[*link]struct{}),
		trunc:       -1,
	}
	ln, err := net.Listen(fn, fa)
	if err != nil {
		return nil, err
	}
	if fn == "tcp" {
		// Pin the concrete port so blackout windows can rebind it.
		p.frontAddr = ln.Addr().String()
	}
	p.ln = ln
	p.wg.Add(1)
	go p.acceptLoop(ln)
	return p, nil
}

// Addr returns the front address in the same "unix:"/"tcp:" form NewProxy
// accepts, with the concrete port filled in for ":0"-style requests.
func (p *Proxy) Addr() string {
	if p.frontNet == "unix" {
		return "unix:" + p.frontAddr
	}
	return "tcp:" + p.frontAddr
}

// Step advances the fault axis to step n, applying every window transition
// it implies: listener teardown/rebind for blackouts, link cuts for reset
// and stall boundaries, truncation arming, and delay updates. Call it
// before issuing request n.
func (p *Proxy) Step(n int64) error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return ErrProxyClosed
	}
	blackout := p.sched.ActiveAt(n, NetBlackout)
	stall := p.sched.ActiveAt(n, NetStall)
	p.resetMode = p.sched.ActiveAt(n, NetReset)
	p.delay = p.sched.DelayAt(n)
	if w, ok := p.sched.TruncateAt(n); ok {
		p.trunc = w.Bytes
	} else {
		p.trunc = -1
	}

	if blackout || p.resetMode {
		p.killLinksLocked()
	}
	if stall && p.stallCh == nil {
		p.stallCh = make(chan struct{})
	}
	if !stall && p.stallCh != nil {
		close(p.stallCh)
		p.stallCh = nil
		p.killLinksLocked() // whatever the stall swallowed is lost
	}

	var toClose net.Listener
	relisten := false
	if blackout && p.ln != nil {
		toClose = p.ln
		p.ln = nil
	}
	if !blackout && p.ln == nil {
		relisten = true
	}
	p.mu.Unlock()

	if toClose != nil {
		_ = toClose.Close()
	}
	if relisten {
		return p.relisten()
	}
	return nil
}

func (p *Proxy) relisten() error {
	ln, err := net.Listen(p.frontNet, p.frontAddr)
	if err != nil {
		return err
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		_ = ln.Close()
		return nil
	}
	p.ln = ln
	p.mu.Unlock()
	p.wg.Add(1)
	go p.acceptLoop(ln)
	return nil
}

// KillLinks severs every live proxied connection without touching the
// listener — both sides observe an abrupt peer death.
func (p *Proxy) KillLinks() {
	p.mu.Lock()
	p.killLinksLocked()
	p.mu.Unlock()
}

func (p *Proxy) killLinksLocked() {
	for l := range p.links {
		delete(p.links, l)
		p.killed++
		l.closeBoth()
	}
}

// Counters returns a snapshot of the proxy's injection activity.
func (p *Proxy) Counters() ProxyCounters {
	p.mu.Lock()
	defer p.mu.Unlock()
	return ProxyCounters{Accepts: p.accepts, Refused: p.refused, Killed: p.killed, Truncated: p.truncated}
}

// Close stops listening, severs all links, and waits for the proxy's
// goroutines to exit.
func (p *Proxy) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	ln := p.ln
	p.ln = nil
	if p.stallCh != nil {
		close(p.stallCh)
		p.stallCh = nil
	}
	p.killLinksLocked()
	p.mu.Unlock()
	if ln != nil {
		_ = ln.Close()
	}
	p.wg.Wait()
	return nil
}

func (p *Proxy) acceptLoop(ln net.Listener) {
	defer p.wg.Done()
	for {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			_ = c.Close()
			return
		}
		if p.resetMode {
			p.refused++
			p.mu.Unlock()
			_ = c.Close()
			continue
		}
		p.accepts++
		p.mu.Unlock()
		s, err := net.DialTimeout(p.backendNet, p.backendAddr, 5*time.Second)
		if err != nil {
			_ = c.Close()
			continue
		}
		l := &link{cli: c, srv: s}
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			l.closeBoth()
			return
		}
		p.links[l] = struct{}{}
		p.mu.Unlock()
		p.wg.Add(2)
		go p.pump(l, c, s, true)
		go p.pump(l, s, c, false)
	}
}

// pump forwards one direction of a link, applying the armed faults to each
// chunk: gate (stall), delay, and — client→backend only — truncation.
//
//heimdall:walltime
func (p *Proxy) pump(l *link, src, dst net.Conn, c2s bool) {
	defer p.wg.Done()
	buf := make([]byte, 32<<10)
	for {
		n, err := src.Read(buf)
		if n > 0 {
			p.gate()
			d, cut, armed := p.chunkFaults(c2s, n)
			if d > 0 {
				time.Sleep(d)
			}
			if armed {
				if cut > 0 {
					_, _ = dst.Write(buf[:cut])
				}
				p.dropLink(l)
				return
			}
			if _, werr := dst.Write(buf[:n]); werr != nil {
				p.dropLink(l)
				return
			}
		}
		if err != nil {
			p.dropLink(l)
			return
		}
	}
}

// gate blocks while a stall window holds the proxy frozen.
func (p *Proxy) gate() {
	for {
		p.mu.Lock()
		ch := p.stallCh
		p.mu.Unlock()
		if ch == nil {
			return
		}
		<-ch
	}
}

// chunkFaults samples the armed per-chunk faults; a truncation consumes its
// arming so exactly one chunk per Step is cut.
func (p *Proxy) chunkFaults(c2s bool, n int) (d time.Duration, cut int, armed bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	d = p.delay
	if c2s && p.trunc >= 0 {
		armed = true
		cut = p.trunc
		if cut > n {
			cut = n
		}
		p.trunc = -1
		p.truncated++
	}
	return d, cut, armed
}

// dropLink severs a link once; the second pump of the same link is a no-op.
func (p *Proxy) dropLink(l *link) {
	p.mu.Lock()
	if _, ok := p.links[l]; ok {
		delete(p.links, l)
		p.killed++
	}
	p.mu.Unlock()
	l.closeBoth()
}
