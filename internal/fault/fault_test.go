package fault

import (
	"testing"
	"time"

	"repro/internal/ssd"
	"repro/internal/trace"
)

func TestEmptyScheduleIsPassthrough(t *testing.T) {
	bare := ssd.New(ssd.Samsung970Pro(), 1)
	inj := NewInjector(ssd.New(ssd.Samsung970Pro(), 1), nil, 99)
	now := int64(0)
	for i := 0; i < 2000; i++ {
		op := trace.Read
		if i%5 == 0 {
			op = trace.Write
		}
		want := bare.Submit(now, op, 4096)
		got, err := inj.Submit(now, op, 4096)
		if err != nil {
			t.Fatalf("i=%d: unexpected error %v", i, err)
		}
		if got != want {
			t.Fatalf("i=%d: injector diverged from bare device: %+v vs %+v", i, got, want)
		}
		now += 50_000
	}
	if inj.BrownoutIOs != 0 || inj.ReadFailures != 0 || inj.OfflineRejects != 0 {
		t.Fatalf("passthrough injector counted faults: %+v", inj)
	}
}

func TestBrownoutInflatesOnlyInsideWindow(t *testing.T) {
	sched := NewSchedule().Brownout(time.Millisecond, time.Millisecond, 4)
	bare := ssd.New(ssd.Samsung970Pro(), 2)
	inj := NewInjector(ssd.New(ssd.Samsung970Pro(), 2), sched, 2)
	step := int64(100_000) // 100µs: idle device, no queueing
	for now := int64(0); now < 3e6; now += step {
		want := bare.Submit(now, trace.Read, 4096)
		got, err := inj.Submit(now, trace.Read, 4096)
		if err != nil {
			t.Fatal(err)
		}
		inside := now >= 1e6 && now < 2e6
		wantSvc := want.Complete - want.Start
		gotSvc := got.Complete - got.Start
		if inside && gotSvc != wantSvc*4 {
			t.Fatalf("t=%d: brownout service %d, want %d", now, gotSvc, wantSvc*4)
		}
		if !inside && gotSvc != wantSvc {
			t.Fatalf("t=%d: outside window service %d, want %d", now, gotSvc, wantSvc)
		}
	}
	if inj.BrownoutIOs == 0 {
		t.Fatal("no brownout injections counted")
	}
}

func TestOfflineRejectsWithoutTouchingDevice(t *testing.T) {
	sched := NewSchedule().Offline(0, time.Millisecond)
	inj := NewInjector(ssd.New(ssd.Samsung970Pro(), 3), sched, 3)
	if _, err := inj.Submit(0, trace.Read, 4096); err != ErrOffline {
		t.Fatalf("err %v, want ErrOffline", err)
	}
	if sub, _, _ := inj.Device().Stats(); sub != 0 {
		t.Fatalf("offline submit reached the device (%d submissions)", sub)
	}
	// After the window the device serves again.
	if _, err := inj.Submit(int64(2*time.Millisecond), trace.Read, 4096); err != nil {
		t.Fatalf("post-recovery submit failed: %v", err)
	}
	if inj.OfflineRejects != 1 {
		t.Fatalf("OfflineRejects = %d, want 1", inj.OfflineRejects)
	}
}

func TestReadErrorsAreSeededAndReadOnly(t *testing.T) {
	mk := func(seed int64) *Injector {
		sched := NewSchedule().ReadErrors(0, time.Second, 0.5)
		return NewInjector(ssd.New(ssd.Samsung970Pro(), 4), sched, seed)
	}
	a, b := mk(7), mk(7)
	var now int64
	for i := 0; i < 1000; i++ {
		op := trace.Read
		if i%4 == 0 {
			op = trace.Write // writes must never fail with ErrReadFailed
		}
		_, errA := a.Submit(now, op, 4096)
		_, errB := b.Submit(now, op, 4096)
		if errA != errB {
			t.Fatalf("i=%d: same seed diverged: %v vs %v", i, errA, errB)
		}
		if op == trace.Write && errA != nil {
			t.Fatalf("write failed with %v", errA)
		}
		now += 100_000
	}
	if a.ReadFailures == 0 {
		t.Fatal("p=0.5 over 750 reads produced no failures")
	}
	if a.ReadFailures != b.ReadFailures {
		t.Fatalf("failure counts diverged: %d vs %d", a.ReadFailures, b.ReadFailures)
	}
}

func TestScheduleQueries(t *testing.T) {
	s := NewSchedule().
		Brownout(0, time.Millisecond, 2).
		Brownout(500*time.Microsecond, time.Millisecond, 3).
		ReadErrors(time.Millisecond, time.Millisecond, 0.25).
		Offline(3*time.Millisecond, time.Millisecond)
	if f := s.FactorAt(int64(600 * time.Microsecond)); f != 6 {
		t.Fatalf("overlapping brownouts factor %v, want 6 (compound)", f)
	}
	if f := s.FactorAt(int64(1200 * time.Microsecond)); f != 3 {
		t.Fatalf("single brownout factor %v, want 3", f)
	}
	if p := s.ErrProbAt(int64(1500 * time.Microsecond)); p != 0.25 {
		t.Fatalf("err prob %v, want 0.25", p)
	}
	if !s.OfflineAt(int64(3500 * time.Microsecond)) {
		t.Fatal("offline window not detected")
	}
	if s.OfflineAt(int64(4 * time.Millisecond)) {
		t.Fatal("offline window is half-open; End must be excluded")
	}
	if s.Empty() || !(*Schedule)(nil).Empty() {
		t.Fatal("Empty misreported")
	}
	if len(s.Windows()) != 4 {
		t.Fatalf("windows %d, want 4", len(s.Windows()))
	}
}
