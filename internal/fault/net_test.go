package fault

import (
	"bytes"
	"errors"
	"io"
	"net"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"
)

func TestNetScheduleQueries(t *testing.T) {
	s := NewNetSchedule().
		Delay(0, 10, time.Millisecond).
		Delay(5, 10, time.Millisecond).
		Stall(20, 22, 3*time.Millisecond).
		Truncate(30, 33, 9).
		Reset(40, 44).
		Blackout(50, 55)

	if s.Empty() {
		t.Fatal("schedule with windows reported Empty")
	}
	var nilSched *NetSchedule
	if !nilSched.Empty() || nilSched.DisruptiveAt(0) || nilSched.DelayAt(0) != 0 {
		t.Fatal("nil schedule must be inert")
	}

	if !s.ActiveAt(0, NetDelay) || s.ActiveAt(10, NetDelay) {
		t.Fatal("delay window bounds wrong (half-open [0,10))")
	}
	if got := s.DelayAt(3); got != time.Millisecond {
		t.Fatalf("DelayAt(3) = %v, want 1ms", got)
	}
	if got := s.DelayAt(7); got != 2*time.Millisecond {
		t.Fatalf("overlapping delays must add: DelayAt(7) = %v, want 2ms", got)
	}
	if got := s.DelayAt(21); got != 3*time.Millisecond {
		t.Fatalf("stall contributes to DelayAt: got %v, want 3ms", got)
	}

	if w, ok := s.TruncateAt(31); !ok || w.Bytes != 9 {
		t.Fatalf("TruncateAt(31) = %+v, %v", w, ok)
	}
	if _, ok := s.TruncateAt(33); ok {
		t.Fatal("TruncateAt at window end must be inactive")
	}

	// Delay is benign; everything else is disruptive.
	if s.DisruptiveAt(3) {
		t.Fatal("pure delay must not be disruptive")
	}
	for _, op := range []int64{20, 30, 40, 50} {
		if !s.DisruptiveAt(op) {
			t.Fatalf("op %d should be disruptive", op)
		}
	}
	if s.DisruptiveAt(60) {
		t.Fatal("op outside all windows reported disruptive")
	}

	ws := s.Windows()
	if len(ws) != 6 {
		t.Fatalf("Windows() returned %d entries, want 6", len(ws))
	}
	ws[0].Kind = NetReset // mutate the copy
	if s.windows[0].Kind != NetDelay {
		t.Fatal("Windows() must return a copy")
	}

	for _, k := range []NetKind{NetDelay, NetStall, NetTruncate, NetReset, NetBlackout} {
		if k.String() == "unknown" {
			t.Fatalf("kind %d has no name", k)
		}
	}
}

func TestChaosScheduleDeterministic(t *testing.T) {
	a := ChaosSchedule(42, 2000).Windows()
	b := ChaosSchedule(42, 2000).Windows()
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed must produce identical schedules")
	}
	c := ChaosSchedule(43, 2000).Windows()
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds should diverge")
	}

	kinds := map[NetKind]int{}
	for _, w := range a {
		kinds[w.Kind]++
		if w.Start < 0 || w.End > 2000 || w.Start >= w.End {
			t.Fatalf("malformed window %+v", w)
		}
		if w.Kind == NetStall && w.End-w.Start > 3 {
			t.Fatalf("stall window too long: %+v", w)
		}
	}
	for _, k := range []NetKind{NetBlackout, NetReset, NetStall, NetTruncate, NetDelay} {
		if kinds[k] == 0 {
			t.Fatalf("2000-step chaos schedule never scheduled %v (windows: %d)", k, len(a))
		}
	}
	for i := 1; i < len(a); i++ {
		if a[i].Start < a[i-1].End {
			t.Fatalf("chaos windows overlap: %+v then %+v", a[i-1], a[i])
		}
	}
}

// drain reads everything from c into a buffer until EOF.
func drain(c net.Conn, out *bytes.Buffer, done chan<- struct{}) {
	_, _ = io.Copy(out, c)
	close(done)
}

func TestConnPassthrough(t *testing.T) {
	c1, c2 := net.Pipe()
	fc := WrapConn(c1, nil, 7)
	var got bytes.Buffer
	done := make(chan struct{})
	go drain(c2, &got, done)

	msg := []byte("heimdall admission frame")
	if _, err := fc.Write(msg); err != nil {
		t.Fatalf("passthrough write: %v", err)
	}
	_ = fc.Close()
	<-done
	if !bytes.Equal(got.Bytes(), msg) {
		t.Fatalf("payload corrupted: %q", got.Bytes())
	}
	if fc.Delayed != 0 || fc.Truncated != 0 || fc.Resets != 0 {
		t.Fatalf("passthrough injected faults: %+v", fc)
	}
	if fc.Ops() != 1 {
		t.Fatalf("ops = %d, want 1", fc.Ops())
	}
}

func TestConnResetWindow(t *testing.T) {
	c1, c2 := net.Pipe()
	fc := WrapConn(c1, NewNetSchedule().Reset(1, 2), 7)
	var sink bytes.Buffer
	done := make(chan struct{})
	go drain(c2, &sink, done)
	if _, err := fc.Write([]byte("ok")); err != nil {
		t.Fatalf("op 0 should pass: %v", err)
	}
	if _, err := fc.Write([]byte("cut")); !errors.Is(err, ErrNetReset) {
		t.Fatalf("op 1 must reset, got %v", err)
	}
	if fc.Resets != 1 {
		t.Fatalf("Resets = %d, want 1", fc.Resets)
	}
	<-done // inner conn closed by the reset
	if sink.String() != "ok" {
		t.Fatalf("delivered %q, want only the pre-reset op", sink.String())
	}
}

func TestConnTruncateWindow(t *testing.T) {
	c1, c2 := net.Pipe()
	fc := WrapConn(c1, NewNetSchedule().Truncate(0, 1, 3), 7)
	var got bytes.Buffer
	done := make(chan struct{})
	go drain(c2, &got, done)

	n, err := fc.Write([]byte("frame-body"))
	if !errors.Is(err, ErrNetReset) {
		t.Fatalf("truncated write must reset, got %v", err)
	}
	if n != 3 {
		t.Fatalf("delivered %d bytes, want 3", n)
	}
	<-done
	if got.String() != "fra" {
		t.Fatalf("peer received %q, want %q", got.String(), "fra")
	}
	if fc.Truncated != 1 {
		t.Fatalf("Truncated = %d, want 1", fc.Truncated)
	}
}

func TestConnDelayWindow(t *testing.T) {
	c1, c2 := net.Pipe()
	fc := WrapConn(c1, NewNetSchedule().Delay(0, 4, time.Microsecond), 7)
	var got bytes.Buffer
	done := make(chan struct{})
	go drain(c2, &got, done)
	if _, err := fc.Write([]byte("slow")); err != nil {
		t.Fatalf("delayed write must still succeed: %v", err)
	}
	_ = fc.Close()
	<-done
	if fc.Delayed != 1 {
		t.Fatalf("Delayed = %d, want 1", fc.Delayed)
	}
	if got.String() != "slow" {
		t.Fatalf("payload corrupted: %q", got.String())
	}
}

// startEcho runs a byte-echo server on a unix socket and returns its addr in
// proxy/serve syntax.
func startEcho(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "echo.sock")
	ln, err := net.Listen("unix", path)
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			wg.Add(1)
			go func(c net.Conn) {
				defer wg.Done()
				_, _ = io.Copy(c, c)
				_ = c.Close()
			}(c)
		}
	}()
	t.Cleanup(func() {
		_ = ln.Close()
		wg.Wait()
	})
	return "unix:" + path
}

// echoOnce dials the proxy, sends msg, and expects it echoed back.
func echoOnce(t *testing.T, addr, msg string) error {
	t.Helper()
	net_, target := splitAddr(addr)
	c, err := net.DialTimeout(net_, target, 2*time.Second)
	if err != nil {
		return err
	}
	defer func() { _ = c.Close() }()
	_ = c.SetDeadline(time.Now().Add(2 * time.Second))
	if _, err := c.Write([]byte(msg)); err != nil {
		return err
	}
	buf := make([]byte, len(msg))
	if _, err := io.ReadFull(c, buf); err != nil {
		return err
	}
	if string(buf) != msg {
		t.Fatalf("echo corrupted: %q", buf)
	}
	return nil
}

func TestProxyFaultWindows(t *testing.T) {
	backend := startEcho(t)
	sched := NewNetSchedule().
		Blackout(2, 4).
		Reset(6, 8).
		Truncate(10, 11, 3)
	front := "unix:" + filepath.Join(t.TempDir(), "front.sock")
	px, err := NewProxy(front, backend, sched)
	if err != nil {
		t.Fatalf("NewProxy: %v", err)
	}
	defer func() { _ = px.Close() }()
	if px.Addr() != front {
		t.Fatalf("Addr = %q, want %q", px.Addr(), front)
	}

	// Healthy steps pass traffic through.
	for i := int64(0); i < 2; i++ {
		if err := px.Step(i); err != nil {
			t.Fatalf("Step(%d): %v", i, err)
		}
		if err := echoOnce(t, px.Addr(), "hello"); err != nil {
			t.Fatalf("healthy step %d: %v", i, err)
		}
	}

	// Blackout: the unix socket is unlinked, dials fail immediately.
	for i := int64(2); i < 4; i++ {
		if err := px.Step(i); err != nil {
			t.Fatalf("Step(%d): %v", i, err)
		}
		if err := echoOnce(t, px.Addr(), "x"); err == nil {
			t.Fatalf("blackout step %d: dial unexpectedly succeeded", i)
		}
	}

	// Heal: the listener is back on the same address.
	if err := px.Step(4); err != nil {
		t.Fatalf("Step(4): %v", err)
	}
	if err := echoOnce(t, px.Addr(), "healed"); err != nil {
		t.Fatalf("post-blackout echo: %v", err)
	}

	// Reset: dial succeeds (listener backlog) but the conn dies unanswered.
	if err := px.Step(6); err != nil {
		t.Fatalf("Step(6): %v", err)
	}
	if err := echoOnce(t, px.Addr(), "x"); err == nil {
		t.Fatal("reset step: echo unexpectedly succeeded")
	}

	// Heal again.
	if err := px.Step(8); err != nil {
		t.Fatalf("Step(8): %v", err)
	}
	if err := echoOnce(t, px.Addr(), "again"); err != nil {
		t.Fatalf("post-reset echo: %v", err)
	}

	// Truncate: only the first 3 bytes reach the backend, then the link
	// dies; the echo read sees EOF before the full message.
	if err := px.Step(10); err != nil {
		t.Fatalf("Step(10): %v", err)
	}
	if err := echoOnce(t, px.Addr(), "frame-body"); err == nil {
		t.Fatal("truncate step: echo unexpectedly completed")
	}

	cnt := px.Counters()
	if cnt.Accepts < 4 {
		t.Fatalf("Accepts = %d, want >= 4", cnt.Accepts)
	}
	if cnt.Refused < 1 {
		t.Fatalf("Refused = %d, want >= 1 (reset window)", cnt.Refused)
	}
	if cnt.Truncated != 1 {
		t.Fatalf("Truncated = %d, want 1", cnt.Truncated)
	}
	if cnt.Killed < 1 {
		t.Fatalf("Killed = %d, want >= 1", cnt.Killed)
	}
}

func TestProxyStall(t *testing.T) {
	backend := startEcho(t)
	sched := NewNetSchedule().Stall(1, 2, 0) // proxy ignores the per-op Dur
	front := "unix:" + filepath.Join(t.TempDir(), "stall.sock")
	px, err := NewProxy(front, backend, sched)
	if err != nil {
		t.Fatalf("NewProxy: %v", err)
	}
	defer func() { _ = px.Close() }()

	if err := px.Step(0); err != nil {
		t.Fatalf("Step(0): %v", err)
	}
	if err := echoOnce(t, px.Addr(), "warm"); err != nil {
		t.Fatalf("healthy step: %v", err)
	}

	// Stalled: the write is swallowed, the read must time out.
	if err := px.Step(1); err != nil {
		t.Fatalf("Step(1): %v", err)
	}
	net_, target := splitAddr(px.Addr())
	c, err := net.DialTimeout(net_, target, 2*time.Second)
	if err != nil {
		t.Fatalf("dial during stall: %v", err)
	}
	_ = c.SetDeadline(time.Now().Add(100 * time.Millisecond))
	if _, err := c.Write([]byte("lost")); err != nil {
		t.Fatalf("write during stall: %v", err)
	}
	buf := make([]byte, 4)
	if _, err := c.Read(buf); err == nil {
		t.Fatal("read during stall returned data; want timeout")
	} else if ne, ok := err.(net.Error); !ok || !ne.Timeout() {
		t.Fatalf("read during stall: %v, want timeout", err)
	}
	_ = c.Close()

	// Exit: stalled links are cut, new traffic flows.
	if err := px.Step(2); err != nil {
		t.Fatalf("Step(2): %v", err)
	}
	if err := echoOnce(t, px.Addr(), "flow"); err != nil {
		t.Fatalf("post-stall echo: %v", err)
	}
}
