package nn

import (
	"errors"
	"math"
)

// QuantScale is the fixed-point scale of §4.1: weights are multiplied by
// 1024, capturing the non-zero digits of most weights within 4 decimal
// points.
const QuantScale = 1024

const quantShift = 10 // log2(QuantScale)

type quantLayer struct {
	in, out int
	act     Activation
	w       []int32 // scale 2^10
	b       []int64 // scale 2^20 (weight scale * activation scale)
}

// QuantNetwork is the quantized deployment form of a Network: int32
// weights, integer accumulation, one shift per layer. It allocates nothing
// per inference when used with PredictInto and is safe for concurrent use
// with per-goroutine scratch buffers.
type QuantNetwork struct {
	inputs int
	layers []quantLayer
	maxw   int
}

// Quantize converts a trained network to fixed point. Only ReLU-family
// hidden activations and sigmoid/softmax/linear outputs are supported — the
// configurations Heimdall deploys.
func (n *Network) Quantize() (*QuantNetwork, error) {
	q := &QuantNetwork{inputs: n.cfg.Inputs, maxw: n.cfg.Inputs}
	for _, l := range n.layers {
		switch l.act {
		case ReLU, LeakyReLU, PReLU, Linear, Sigmoid, Softmax:
		default:
			return nil, errors.New("nn: quantization supports relu-family hidden layers and sigmoid/softmax/linear outputs")
		}
		ql := quantLayer{in: l.in, out: l.out, act: l.act}
		ql.w = make([]int32, len(l.w))
		for i, w := range l.w {
			ql.w[i] = int32(math.Round(w * QuantScale))
		}
		ql.b = make([]int64, len(l.b))
		for i, b := range l.b {
			ql.b[i] = int64(math.Round(b * QuantScale * QuantScale))
		}
		q.layers = append(q.layers, ql)
		if l.out > q.maxw {
			q.maxw = l.out
		}
	}
	return q, nil
}

// ScratchSize returns the length of the scratch buffers PredictInto needs.
func (q *QuantNetwork) ScratchSize() int { return q.maxw }

// Predict runs a quantized forward pass, allocating scratch internally.
func (q *QuantNetwork) Predict(x []float64) float64 {
	a := make([]int64, q.maxw)
	b := make([]int64, q.maxw)
	return q.PredictInto(x, a, b)
}

// PredictInto runs a quantized forward pass using caller-provided scratch
// slices (each at least ScratchSize long). This is the sub-microsecond
// deployment path: integer multiply-accumulate, one shift per layer, one
// float sigmoid at the end.
//
//heimdall:hotpath
func (q *QuantNetwork) PredictInto(x []float64, cur, next []int64) float64 {
	// Quantize the (already feature-scaled) inputs to 2^10.
	for i, v := range x {
		cur[i] = int64(v*QuantScale + 0.5)
	}
	width := len(x)
	for li := range q.layers {
		l := &q.layers[li]
		for o := 0; o < l.out; o++ {
			acc := l.b[o] // scale 2^20
			row := l.w[o*l.in : (o+1)*l.in]
			for i := 0; i < width; i++ {
				acc += int64(row[i]) * cur[i] // 2^10 * 2^10 = 2^20
			}
			if li < len(q.layers)-1 {
				// Hidden activation in integer domain, then rescale to 2^10.
				switch l.act {
				case ReLU:
					if acc < 0 {
						acc = 0
					}
				case LeakyReLU:
					if acc < 0 {
						acc /= 100
					}
				case PReLU:
					if acc < 0 {
						acc /= 4
					}
				}
				acc >>= quantShift
			}
			next[o] = acc
		}
		cur, next = next, cur
		width = l.out
	}
	// Output layer pre-activations are at 2^20.
	out := q.layers[len(q.layers)-1]
	const outScale = float64(QuantScale * QuantScale)
	switch out.act {
	case Sigmoid:
		z := float64(cur[0]) / outScale
		return 1 / (1 + math.Exp(-z))
	case Softmax:
		// Two-class: P(class 1).
		z0 := float64(cur[0]) / outScale
		z1 := float64(cur[1]) / outScale
		m := math.Max(z0, z1)
		e0, e1 := math.Exp(z0-m), math.Exp(z1-m)
		return e1 / (e0 + e1)
	default:
		return float64(cur[0]) / outScale
	}
}

// DecideInto returns the binary admit/decline decision without computing the
// sigmoid: for a single sigmoid output, P >= 0.5 iff the pre-activation is
// non-negative, so the decision needs integer arithmetic only.
//
// Deprecated: kept one release for callers that hard-wire the 0.5 boundary.
// Decide through the Predictor interface (PredictBatchInto against a
// calibrated threshold) instead — the deployed models do not use 0.5.
//
//heimdall:hotpath
func (q *QuantNetwork) DecideInto(x []float64, cur, next []int64) bool {
	for i, v := range x {
		cur[i] = int64(v*QuantScale + 0.5)
	}
	width := len(x)
	for li := range q.layers {
		l := &q.layers[li]
		for o := 0; o < l.out; o++ {
			acc := l.b[o]
			row := l.w[o*l.in : (o+1)*l.in]
			for i := 0; i < width; i++ {
				acc += int64(row[i]) * cur[i]
			}
			if li < len(q.layers)-1 {
				switch l.act {
				case ReLU:
					if acc < 0 {
						acc = 0
					}
				case LeakyReLU:
					if acc < 0 {
						acc /= 100
					}
				case PReLU:
					if acc < 0 {
						acc /= 4
					}
				}
				acc >>= quantShift
			}
			next[o] = acc
		}
		cur, next = next, cur
		width = l.out
	}
	out := q.layers[len(q.layers)-1]
	if out.act == Softmax && out.out == 2 {
		return cur[1] > cur[0] // P(slow) > P(fast)
	}
	return cur[0] >= 0 // sigmoid(z) >= 0.5 iff z >= 0
}

// ParamCount mirrors Network.ParamCount for the quantized form.
func (q *QuantNetwork) ParamCount() (weights, biases int) {
	for _, l := range q.layers {
		weights += len(l.w)
		biases += len(l.b)
	}
	return weights, biases
}

// MemoryBytes is the honest deployed footprint: 4-byte weights, 8-byte
// biases, the two int64 scratch buffers one inference needs (2×8×ScratchSize
// — resident per serving thread), and the per-layer geometry/scale table
// (in, out, activation at 8 bytes each). Counting the working set keeps
// int32-vs-int8 footprint comparisons in bench output honest.
func (q *QuantNetwork) MemoryBytes() int {
	w, b := q.ParamCount()
	return 4*w + 8*b + 2*8*q.maxw + 24*len(q.layers)
}
