package nn

import (
	"errors"
	"fmt"
	"math"
)

// Int8Max is the symmetric int8 quantization bound: weights and activations
// live in [-127, 127] (−128 is unused so negation never overflows).
const Int8Max = 127

// quant8Layer is one layer of the int8 deployment form.
//
// Scales: with sa = actScales[l] (int8 units per real unit at this layer's
// input) and ws[o] output neuron o's symmetric weight scale, the integer
// accumulator acc_o = Σ w8·a8 + b_o sits at scale ws[o]·sa. Hidden layers
// apply the integer activation then requantize to the next layer's
// activation scale with one integer multiply-shift per output activation
// (mq[o] = round(2^16·actScales[l+1]/(ws[o]·sa)), applied as
// (acc·mq[o]) >> 16 with half-away-from-zero rounding) — no float ops on
// the hidden path. The output layer keeps the float m[o] = 1/(ws[o]·sa) to
// recover real pre-activations at full precision for the sigmoid/softmax.
type quant8Layer struct {
	in, out int
	act     Activation
	w       []int8    // out*in, row-major by output neuron, scale ws[o]
	b       []int32   // out, scale ws[o]·sa
	m       []float64 // out, float requant (hidden, reference) or dequant (output)
	mq      []int64   // out, hidden only: m at 2^16 fixed point, ≤ 2^32−1
}

// QuantNetwork8 is the int8 deployment form of a Network: per-output-channel
// symmetric weight scales, activation scales calibrated on data, int32
// accumulation, fixed-point hidden-layer requantization, and a batch-major
// forward pass that decides a whole micro-batch in one cache-friendly
// sweep. Everything up to the final dequant is exact integer arithmetic
// evaluated independently per (row, neuron), so results are bit-identical
// regardless of batch shape — the property the serving layer's determinism
// contract relies on.
type QuantNetwork8 struct {
	inputs    int
	layers    []quant8Layer
	actScales []float64 // int8 units per real unit at each layer's input
	maxw      int
}

// Quantize8 converts a trained network to the int8 form, calibrating
// per-layer activation scales on calib (feature-scaled rows of the network's
// input width — typically the scaled training set). With no calibration rows
// it falls back to conservative analytic interval bounds, which cost int8
// resolution; prefer calibrated scales. Hidden layers must be
// ReLU/LeakyReLU/PReLU/Linear and the output Sigmoid/Softmax/Linear — the
// configurations Heimdall deploys.
func (n *Network) Quantize8(calib [][]float64) (*QuantNetwork8, error) {
	return n.Quantize8Scales(n.calibrateActScales(calib))
}

// Quantize8Scales builds the int8 network from explicit activation scales
// (one per layer, int8 units per real unit at that layer's input) — the
// deserialization path: float weights plus stored scales rebuild the exact
// int8 network that was saved. Weight scales are derived deterministically
// from the float weights.
func (n *Network) Quantize8Scales(actScales []float64) (*QuantNetwork8, error) {
	if len(actScales) != len(n.layers) {
		return nil, fmt.Errorf("nn: %d activation scales for %d layers", len(actScales), len(n.layers))
	}
	for i, s := range actScales {
		if !(s > 0) || math.IsInf(s, 0) {
			return nil, fmt.Errorf("nn: activation scale %d is %v, want positive finite", i, s)
		}
	}
	q := &QuantNetwork8{
		inputs:    n.cfg.Inputs,
		actScales: append([]float64(nil), actScales...),
		maxw:      n.cfg.Inputs,
	}
	for li, l := range n.layers {
		last := li == len(n.layers)-1
		if last {
			switch l.act {
			case Sigmoid, Softmax, Linear:
			default:
				return nil, errors.New("nn: int8 quantization supports sigmoid/softmax/linear outputs")
			}
		} else {
			switch l.act {
			case ReLU, LeakyReLU, PReLU, Linear:
			default:
				return nil, errors.New("nn: int8 quantization supports relu-family hidden layers")
			}
		}
		sa := actScales[li]
		ql := quant8Layer{in: l.in, out: l.out, act: l.act}
		ql.w = make([]int8, len(l.w))
		ql.b = make([]int32, len(l.b))
		ql.m = make([]float64, l.out)
		if !last {
			ql.mq = make([]int64, l.out)
		}
		for o := 0; o < l.out; o++ {
			row := l.w[o*l.in : (o+1)*l.in]
			maxAbsW := 0.0
			for _, w := range row {
				if a := math.Abs(w); a > maxAbsW {
					maxAbsW = a
				}
			}
			ws := 1.0
			if maxAbsW > 1e-12 {
				ws = Int8Max / maxAbsW
			}
			for i, w := range row {
				ql.w[o*l.in+i] = int8(clampI32(roundI32(w*ws), -Int8Max, Int8Max))
			}
			// Biases join the accumulator directly; clamp well inside int32
			// so the dot product (bounded by in·127·127) can never overflow.
			const bBound = 1 << 30
			ql.b[o] = clampI32(roundI32(l.b[o]*ws*sa), -bBound, bBound)
			if !last {
				ql.m[o] = actScales[li+1] / (ws * sa)
				ql.mq[o] = fixedMul16(ql.m[o])
			} else {
				ql.m[o] = 1 / (ws * sa)
			}
		}
		q.layers = append(q.layers, ql)
		if l.out > q.maxw {
			q.maxw = l.out
		}
	}
	return q, nil
}

// calibrateActScales returns per-layer activation scales: 127 over the
// max-abs value seen entering each layer across the calibration rows, or
// analytic interval bounds when no rows are given.
func (n *Network) calibrateActScales(calib [][]float64) []float64 {
	maxAbs := make([]float64, len(n.layers))
	if len(calib) == 0 {
		// Interval propagation: |x| ≤ 8 covers min-max features with 3 bits
		// to spare and standard-scaled features to ±8σ; downstream bounds
		// follow from |act(z)| ≤ |z| for the ReLU family.
		bound := 8.0
		for li, l := range n.layers {
			maxAbs[li] = bound
			worst := 0.0
			for o := 0; o < l.out; o++ {
				z := math.Abs(l.b[o])
				for _, w := range l.w[o*l.in : (o+1)*l.in] {
					z += math.Abs(w) * bound
				}
				if z > worst {
					worst = z
				}
			}
			bound = worst
		}
	} else {
		cur := make([]float64, n.ScratchSize())
		next := make([]float64, n.ScratchSize())
		for _, x := range calib {
			for _, v := range x {
				if a := math.Abs(v); a > maxAbs[0] {
					maxAbs[0] = a
				}
			}
			in := x
			for li, l := range n.layers {
				if li == len(n.layers)-1 {
					break // output activations never re-enter a layer
				}
				out := cur[:l.out]
				for o := 0; o < l.out; o++ {
					sum := l.b[o]
					row := l.w[o*l.in : (o+1)*l.in]
					for i, v := range in {
						sum += row[i] * v
					}
					out[o] = l.act.apply(sum)
				}
				for _, v := range out {
					if a := math.Abs(v); a > maxAbs[li+1] {
						maxAbs[li+1] = a
					}
				}
				in = out
				cur, next = next, cur
			}
		}
	}
	scales := make([]float64, len(n.layers))
	for i, a := range maxAbs {
		if a < 1e-6 || math.IsInf(a, 0) || math.IsNaN(a) {
			a = 1e-6
		}
		scales[i] = Int8Max / a
	}
	return scales
}

// ActScales returns the per-layer activation scales (a copy) — everything
// beyond the float weights needed to rebuild this network exactly.
func (q *QuantNetwork8) ActScales() []float64 {
	return append([]float64(nil), q.actScales...)
}

// Inputs returns the network's input width.
func (q *QuantNetwork8) Inputs() int { return q.inputs }

// Quant8Layer is the exported form of one int8 layer, for code generation.
// The slices alias the network's storage; treat them as read-only.
type Quant8Layer struct {
	In, Out int
	Act     Activation
	W       []int8    // out×in, row-major by output neuron
	B       []int32   // ws[o]·sa-scaled biases
	M       []float64 // per-neuron float requant (hidden, reference) / dequant (output)
	MQ      []int64   // hidden only: M at 2^16 fixed point — what the kernel uses
}

// ExportLayers returns the layer parameters for code generation.
func (q *QuantNetwork8) ExportLayers() []Quant8Layer {
	out := make([]Quant8Layer, len(q.layers))
	for i, l := range q.layers {
		out[i] = Quant8Layer{In: l.in, Out: l.out, Act: l.act, W: l.w, B: l.b, M: l.m, MQ: l.mq}
	}
	return out
}

// ScratchSize returns the widest layer — the per-row scratch requirement.
func (q *QuantNetwork8) ScratchSize() int { return q.maxw }

// ParamCount mirrors Network.ParamCount for the int8 form.
func (q *QuantNetwork8) ParamCount() (weights, biases int) {
	for _, l := range q.layers {
		weights += len(l.w)
		biases += len(l.b)
	}
	return weights, biases
}

// MemoryBytes is the honest deployed footprint: 1-byte weights, 4-byte
// biases, the per-neuron requant multipliers (float reference plus the
// fixed-point form the kernel reads, 8 bytes each), per-layer activation
// scales and geometry, and the single-row working set of the kernel (two
// int8 activation planes plus the int32 output accumulators).
func (q *QuantNetwork8) MemoryBytes() int {
	w, b := q.ParamCount()
	mult := 0
	for _, l := range q.layers {
		mult += len(l.m) + len(l.mq)
	}
	return w + 4*b + 8*mult + 32*len(q.layers) + 6*q.maxw
}

// Predict runs one row through the batch kernel with freshly allocated
// scratch — the cold-path convenience entry of the Predictor interface.
func (q *QuantNetwork8) Predict(x []float64) float64 {
	var out [1]float64
	xs := [][]float64{x}
	q.PredictBatchInto(xs, out[:], NewScratch(q, 1))
	return out[0]
}

// PredictBatchInto scores a whole micro-batch in one sweep. Layout: int8
// activations are batch-major (row r occupies [r·width, (r+1)·width)), and
// hidden layers iterate output neurons in the outer loop, blocked four at a
// time, so one four-row weight tile stays hot across every row in the batch
// and each activation load feeds four int32 multiply-accumulate chains.
// Hidden-layer requantization is one integer multiply-shift per activation —
// the hot loop touches no floats until the output dequant. Allocation-free
// once the scratch has grown to the batch shape; bit-identical to scoring
// rows one at a time because every operation up to the output layer is
// exact integer arithmetic evaluated per (row, neuron).
//
//heimdall:hotpath
func (q *QuantNetwork8) PredictBatchInto(xs [][]float64, out []float64, s *Scratch) {
	rows := len(xs)
	if rows == 0 {
		return
	}
	need := q.maxw * rows
	if cap(s.a8) < need {
		s.a8 = make([]int8, need)
	}
	if cap(s.b8) < need {
		s.b8 = make([]int8, need)
	}
	if cap(s.acc) < q.maxw {
		s.acc = make([]int32, q.maxw)
	}
	cur := s.a8[:need]
	nxt := s.b8[:need]
	res := out[:rows]

	// Quantize the (feature-scaled) inputs to int8 at the input scale.
	in := q.inputs
	sa0 := q.actScales[0]
	for r, x := range xs {
		dst := cur[r*in : r*in+in : r*in+in]
		for i, v := range x[:in] {
			dst[i] = quant8(v * sa0)
		}
	}

	// Hidden layers: integer activation then fixed-point requant to the
	// next scale — no float ops anywhere on this path. Output neurons are
	// blocked four at a time so each activation byte is loaded once and fed
	// to four weight rows (1.25 loads per multiply-accumulate instead of 2),
	// and the four independent accumulator chains pipeline. Re-slicing the
	// weight rows to len(ar) lets the compiler drop the inner bounds checks.
	for li := 0; li < len(q.layers)-1; li++ {
		l := &q.layers[li]
		w, b, mq := l.w, l.b, l.mq
		lin, lout, act := l.in, l.out, l.act
		o := 0
		for ; o+4 <= lout; o += 4 {
			r0 := w[(o+0)*lin : (o+1)*lin : (o+1)*lin]
			r1 := w[(o+1)*lin : (o+2)*lin : (o+2)*lin]
			r2 := w[(o+2)*lin : (o+3)*lin : (o+3)*lin]
			r3 := w[(o+3)*lin : (o+4)*lin : (o+4)*lin]
			b0, b1, b2, b3 := b[o], b[o+1], b[o+2], b[o+3]
			m0, m1, m2, m3 := mq[o], mq[o+1], mq[o+2], mq[o+3]
			for r := 0; r < rows; r++ {
				ar := cur[r*lin : r*lin+lin : r*lin+lin]
				w0, w1, w2, w3 := r0[:len(ar)], r1[:len(ar)], r2[:len(ar)], r3[:len(ar)]
				var a0, a1, a2, a3 int32
				i := 0
				for ; i+2 <= len(ar); i += 2 {
					v0, v1 := int32(ar[i]), int32(ar[i+1])
					a0 += int32(w0[i])*v0 + int32(w0[i+1])*v1
					a1 += int32(w1[i])*v0 + int32(w1[i+1])*v1
					a2 += int32(w2[i])*v0 + int32(w2[i+1])*v1
					a3 += int32(w3[i])*v0 + int32(w3[i+1])*v1
				}
				if i < len(ar) {
					v := int32(ar[i])
					a0 += int32(w0[i]) * v
					a1 += int32(w1[i]) * v
					a2 += int32(w2[i]) * v
					a3 += int32(w3[i]) * v
				}
				base := r * lout
				nxt[base+o+0] = requant8(act8(a0+b0, act), m0)
				nxt[base+o+1] = requant8(act8(a1+b1, act), m1)
				nxt[base+o+2] = requant8(act8(a2+b2, act), m2)
				nxt[base+o+3] = requant8(act8(a3+b3, act), m3)
			}
		}
		// Remainder neurons (layer width not a multiple of four).
		for ; o < lout; o++ {
			row := w[o*lin : o*lin+lin : o*lin+lin]
			bo := b[o]
			mqo := mq[o]
			for r := 0; r < rows; r++ {
				ar := cur[r*lin : r*lin+lin : r*lin+lin]
				wr := row[:len(ar)]
				var acc int32
				for i, av := range ar {
					acc += int32(wr[i]) * int32(av)
				}
				nxt[r*lout+o] = requant8(act8(acc+bo, act), mqo)
			}
		}
		cur, nxt = nxt, cur
	}

	// Output layer: accumulate per row, one float transfer at the end.
	l := &q.layers[len(q.layers)-1]
	lin, lout := l.in, l.out
	acc := s.acc[:lout]
	for r := 0; r < rows; r++ {
		ar := cur[r*lin : r*lin+lin : r*lin+lin]
		for o := 0; o < lout; o++ {
			row := l.w[o*lin : o*lin+lin : o*lin+lin]
			wr := row[:len(ar)]
			var sum int32
			for i, av := range ar {
				sum += int32(wr[i]) * int32(av)
			}
			acc[o] = sum + l.b[o]
		}
		switch l.act {
		case Sigmoid:
			z := float64(acc[0]) * l.m[0]
			res[r] = 1 / (1 + math.Exp(-z))
		case Softmax:
			// Two-class: P(class 1).
			z0 := float64(acc[0]) * l.m[0]
			z1 := float64(acc[1]) * l.m[1]
			zm := math.Max(z0, z1)
			e0, e1 := math.Exp(z0-zm), math.Exp(z1-zm)
			res[r] = e1 / (e0 + e1)
		default:
			res[r] = float64(acc[0]) * l.m[0]
		}
	}
}

// act8 applies a ReLU-family hidden activation in the integer domain. It is
// a branch-light leaf so it inlines into the kernel; post-activation values
// are non-negative for ReLU, which keeps requant8's sign branch predictable.
//
//heimdall:hotpath
func act8(acc int32, act Activation) int32 {
	if acc >= 0 {
		return acc
	}
	switch act {
	case ReLU:
		return 0
	case LeakyReLU:
		return acc / 100
	case PReLU:
		return acc / 4
	}
	return acc
}

// requant8 rescales a hidden-layer accumulator to the next layer's int8
// activation scale: one widening multiply by the 2^16 fixed-point
// multiplier, a half-away-from-zero rounding shift, and a saturating clamp.
// mq is bounded by 2^32−1 at build time, so the product can never overflow
// int64 (|acc| ≤ 2^31).
//
//heimdall:hotpath
func requant8(acc int32, mq int64) int8 {
	p := int64(acc) * mq
	if p >= 0 {
		p = (p + 1<<15) >> 16
	} else {
		p = -((-p + 1<<15) >> 16)
	}
	if p >= Int8Max {
		return Int8Max
	}
	if p <= -Int8Max {
		return -Int8Max
	}
	return int8(p)
}

// fixedMul16 converts a positive float multiplier to 2^16 fixed point,
// rounding to nearest and capping at 2^32−1. The cap is exact with respect
// to requant8's saturating output: any multiplier at or above it maps every
// nonzero accumulator past ±127 anyway.
func fixedMul16(m float64) int64 {
	const cap16 = 1<<32 - 1
	f := m * (1 << 16)
	if f >= cap16 {
		return cap16
	}
	return int64(f + 0.5)
}

// quant8 rounds half away from zero and clamps to the symmetric int8 range.
// The clamp runs in the float domain so an out-of-range accumulator can
// never hit Go's implementation-specific float→int overflow conversion.
//
//heimdall:hotpath
func quant8(t float64) int8 {
	if t >= Int8Max {
		return Int8Max
	}
	if t <= -Int8Max {
		return -Int8Max
	}
	if t >= 0 {
		return int8(int32(t + 0.5))
	}
	return int8(int32(t - 0.5))
}

func roundI32(v float64) int32 {
	if v >= 0 {
		if v > math.MaxInt32 {
			return math.MaxInt32
		}
		return int32(v + 0.5)
	}
	if v < math.MinInt32 {
		return math.MinInt32
	}
	return int32(v - 0.5)
}

func clampI32(v, lo, hi int32) int32 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
