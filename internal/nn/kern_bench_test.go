package nn

// Kernel-level benchmark pair: the int32 and int8 batched forward passes on
// identical synthetic rows at the paper's deployed geometry (11-128-16-1),
// isolated from feature scaling and admission plumbing. The int8 kernel must
// stay ahead of the int32 reference here; the full-path comparison lives in
// cmd/heimdall-bench (int8 subcommand) and the root bench_test.go.

import "testing"

func kernelNet(b *testing.B) (*Network, [][]float64) {
	b.Helper()
	net, err := New(Config{
		Inputs: 11,
		Layers: []LayerSpec{{Units: 128, Act: ReLU}, {Units: 16, Act: ReLU}, {Units: 1, Act: Sigmoid}},
		Seed:   7,
	})
	if err != nil {
		b.Fatal(err)
	}
	// Deterministic xorshift rows: the kernels' cost is data-independent, the
	// values just need to exercise both activation signs.
	rng := uint64(12345)
	next := func() float64 {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return float64(int64(rng%2000))/1000.0 - 1
	}
	rows := make([][]float64, 64)
	for r := range rows {
		rows[r] = make([]float64, 11)
		for i := range rows[r] {
			rows[r][i] = next()
		}
	}
	return net, rows
}

func benchKernel(b *testing.B, p Predictor, rows [][]float64) {
	b.Helper()
	s := NewScratch(p, len(rows))
	out := make([]float64, len(rows))
	p.PredictBatchInto(rows, out, s) // warm the scratch
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.PredictBatchInto(rows, out, s)
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*len(rows)), "ns/row")
}

func BenchmarkKernelInt32(b *testing.B) {
	net, rows := kernelNet(b)
	q, err := net.Quantize()
	if err != nil {
		b.Fatal(err)
	}
	benchKernel(b, q, rows)
}

func BenchmarkKernelInt8(b *testing.B) {
	net, rows := kernelNet(b)
	q, err := net.Quantize8(rows)
	if err != nil {
		b.Fatal(err)
	}
	benchKernel(b, q, rows)
}
