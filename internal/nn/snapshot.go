package nn

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"
)

// Snapshot is the serializable form of a trained network: the architecture
// plus all weights and biases. It is what a deployment ships from the
// training host to the storage node (§2: "the neuron weights from training
// are then applied to the in-kernel model").
type Snapshot struct {
	Inputs  int
	Layers  []LayerSpec
	Weights [][]float64 // per layer, row-major by output neuron
	Biases  [][]float64
}

// Snapshot captures the current parameters.
func (n *Network) Snapshot() Snapshot {
	s := Snapshot{Inputs: n.cfg.Inputs, Layers: append([]LayerSpec(nil), n.cfg.Layers...)}
	for _, l := range n.layers {
		s.Weights = append(s.Weights, append([]float64(nil), l.w...))
		s.Biases = append(s.Biases, append([]float64(nil), l.b...))
	}
	return s
}

// Validate checks the snapshot's internal consistency.
func (s Snapshot) Validate() error {
	if s.Inputs <= 0 {
		return errors.New("nn: snapshot has no inputs")
	}
	if len(s.Layers) == 0 {
		return errors.New("nn: snapshot has no layers")
	}
	if len(s.Weights) != len(s.Layers) || len(s.Biases) != len(s.Layers) {
		return fmt.Errorf("nn: snapshot has %d layers but %d weight and %d bias blocks",
			len(s.Layers), len(s.Weights), len(s.Biases))
	}
	in := s.Inputs
	for li, spec := range s.Layers {
		if spec.Units <= 0 {
			return fmt.Errorf("nn: layer %d has %d units", li, spec.Units)
		}
		if len(s.Weights[li]) != in*spec.Units {
			return fmt.Errorf("nn: layer %d has %d weights, want %d", li, len(s.Weights[li]), in*spec.Units)
		}
		if len(s.Biases[li]) != spec.Units {
			return fmt.Errorf("nn: layer %d has %d biases, want %d", li, len(s.Biases[li]), spec.Units)
		}
		in = spec.Units
	}
	return nil
}

// FromSnapshot reconstructs an inference-ready network. The network can be
// trained further (optimizer state starts fresh).
func FromSnapshot(s Snapshot) (*Network, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	n, err := New(Config{Inputs: s.Inputs, Layers: s.Layers})
	if err != nil {
		return nil, err
	}
	for li, l := range n.layers {
		copy(l.w, s.Weights[li])
		copy(l.b, s.Biases[li])
	}
	return n, nil
}

// ErrSnapshotFormat reports that a byte stream handed to ReadSnapshot is not
// a snapshot this version can read: missing or mismatched magic/version tag,
// or a corrupt gob payload behind a valid tag. Callers deploying models over
// the wire match it with errors.Is to distinguish a bad artifact from I/O
// failures.
var ErrSnapshotFormat = errors.New("nn: not a snapshot stream (bad magic/version or corrupt payload)")

// snapshotMagic tags the serialized stream: "HNN" plus a format version
// digit. Bump the digit on incompatible layout changes so old readers reject
// new streams with ErrSnapshotFormat instead of misdecoding them.
var snapshotMagic = [4]byte{'H', 'N', 'N', '1'}

// Encode serializes the snapshot: a 4-byte magic/version tag followed by the
// gob-encoded parameters.
func (s Snapshot) Encode(w io.Writer) error {
	if _, err := w.Write(snapshotMagic[:]); err != nil {
		return fmt.Errorf("nn: write snapshot header: %w", err)
	}
	return gob.NewEncoder(w).Encode(s)
}

// ReadSnapshot deserializes and validates a snapshot. Streams that do not
// start with the current magic/version tag, or whose payload fails to
// decode, return an error matching ErrSnapshotFormat.
func ReadSnapshot(r io.Reader) (Snapshot, error) {
	var magic [4]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return Snapshot{}, fmt.Errorf("%w: reading header: %v", ErrSnapshotFormat, err)
	}
	if magic != snapshotMagic {
		return Snapshot{}, fmt.Errorf("%w: got header %q, want %q", ErrSnapshotFormat, magic[:], snapshotMagic[:])
	}
	var s Snapshot
	if err := gob.NewDecoder(r).Decode(&s); err != nil {
		return Snapshot{}, fmt.Errorf("%w: decode: %v", ErrSnapshotFormat, err)
	}
	if err := s.Validate(); err != nil {
		return Snapshot{}, err
	}
	return s, nil
}
