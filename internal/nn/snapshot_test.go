package nn

import (
	"bytes"
	"encoding/gob"
	"errors"
	"strings"
	"testing"
)

func trainedNet(t *testing.T) *Network {
	t.Helper()
	net, err := New(Config{
		Inputs: 3,
		Layers: []LayerSpec{{8, ReLU}, {1, Sigmoid}},
		Seed:   5, LR: 0.02, Epochs: 30, Batch: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	X := [][]float64{{0, 0, 1}, {0, 1, 0}, {1, 0, 0}, {1, 1, 1}}
	y := []float64{0, 1, 1, 0}
	if _, err := net.Train(X, y); err != nil {
		t.Fatal(err)
	}
	return net
}

func TestSnapshotRoundTrip(t *testing.T) {
	net := trainedNet(t)
	var buf bytes.Buffer
	if err := net.Snapshot().Encode(&buf); err != nil {
		t.Fatal(err)
	}
	snap, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	back, err := FromSnapshot(snap)
	if err != nil {
		t.Fatal(err)
	}
	probe := [][]float64{{0.2, 0.8, 0.5}, {0.9, 0.1, 0.3}, {0, 0, 0}}
	for _, x := range probe {
		if net.Infer(x) != back.Infer(x) {
			t.Fatalf("inference diverged after round trip at %v", x)
		}
	}
	// The restored network must quantize identically too.
	q1, err := net.Quantize()
	if err != nil {
		t.Fatal(err)
	}
	q2, err := back.Quantize()
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range probe {
		if q1.Predict(x) != q2.Predict(x) {
			t.Fatalf("quantized inference diverged at %v", x)
		}
	}
}

func TestSnapshotValidate(t *testing.T) {
	net := trainedNet(t)
	good := net.Snapshot()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}

	bad := net.Snapshot()
	bad.Weights[0] = bad.Weights[0][:3]
	if err := bad.Validate(); err == nil || !strings.Contains(err.Error(), "weights") {
		t.Fatalf("truncated weights accepted: %v", err)
	}

	bad = net.Snapshot()
	bad.Biases[1] = nil
	if err := bad.Validate(); err == nil {
		t.Fatal("missing biases accepted")
	}

	bad = net.Snapshot()
	bad.Inputs = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero inputs accepted")
	}

	bad = net.Snapshot()
	bad.Layers = nil
	if err := bad.Validate(); err == nil {
		t.Fatal("no layers accepted")
	}

	bad = net.Snapshot()
	bad.Layers[0].Units = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero units accepted")
	}
}

func TestFromSnapshotRejectsInvalid(t *testing.T) {
	if _, err := FromSnapshot(Snapshot{}); err == nil {
		t.Fatal("empty snapshot accepted")
	}
}

func TestReadSnapshotGarbage(t *testing.T) {
	if _, err := ReadSnapshot(strings.NewReader("garbage")); !errors.Is(err, ErrSnapshotFormat) {
		t.Fatalf("garbage gave %v, want ErrSnapshotFormat", err)
	}
}

func TestReadSnapshotFormatErrors(t *testing.T) {
	net := trainedNet(t)
	var buf bytes.Buffer
	if err := net.Snapshot().Encode(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	cases := map[string][]byte{
		"empty":           nil,
		"short header":    good[:2],
		"wrong version":   append([]byte("HNN9"), good[4:]...),
		"wrong magic":     append([]byte("XXXX"), good[4:]...),
		"truncated body":  good[:len(good)/2],
		"corrupt payload": append(append([]byte{}, good[:4]...), []byte("not a gob stream")...),
	}
	for name, in := range cases {
		if _, err := ReadSnapshot(bytes.NewReader(in)); !errors.Is(err, ErrSnapshotFormat) {
			t.Errorf("%s: got %v, want ErrSnapshotFormat", name, err)
		}
	}

	// The tag must not leak into acceptance of prior-format streams: a bare
	// gob stream (the pre-versioned layout) is rejected, not misread.
	var bare bytes.Buffer
	if err := gob.NewEncoder(&bare).Encode(net.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadSnapshot(&bare); !errors.Is(err, ErrSnapshotFormat) {
		t.Errorf("unversioned gob stream: got %v, want ErrSnapshotFormat", err)
	}
}

func TestSnapshotIsACopy(t *testing.T) {
	net := trainedNet(t)
	snap := net.Snapshot()
	before := net.Infer([]float64{0.5, 0.5, 0.5})
	snap.Weights[0][0] += 100 // mutate the snapshot
	after := net.Infer([]float64{0.5, 0.5, 0.5})
	if before != after {
		t.Fatal("snapshot shares storage with the live network")
	}
}
