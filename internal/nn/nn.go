// Package nn is a small, dependency-free neural-network library sufficient
// for the Heimdall pipeline: fully-connected layers, the activation
// functions swept in Fig. 9d/9e, SGD and Adam training, binary and softmax
// outputs, and fixed-point quantized inference (§4.1).
//
// Everything is deterministic given a seed. The library is sized for
// latency-critical storage models (tens of thousands of parameters), not for
// deep learning at large.
package nn

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
)

// Activation identifies a neuron activation function.
type Activation int

const (
	// ReLU is max(0, x).
	ReLU Activation = iota
	// LeakyReLU is x for x>0, 0.01x otherwise.
	LeakyReLU
	// PReLU is x for x>0, 0.25x otherwise (fixed-parameter variant).
	PReLU
	// SELU is the self-normalizing exponential linear unit.
	SELU
	// Sigmoid is 1/(1+e^-x).
	Sigmoid
	// Tanh is the hyperbolic tangent.
	Tanh
	// Linear is the identity.
	Linear
	// Softmax normalizes a layer to a probability simplex (output layers
	// only).
	Softmax
)

// String names the activation.
func (a Activation) String() string {
	switch a {
	case ReLU:
		return "relu"
	case LeakyReLU:
		return "leaky-relu"
	case PReLU:
		return "prelu"
	case SELU:
		return "selu"
	case Sigmoid:
		return "sigmoid"
	case Tanh:
		return "tanh"
	case Linear:
		return "linear"
	case Softmax:
		return "softmax"
	}
	return "unknown"
}

const (
	seluAlpha  = 1.6732632423543772
	seluLambda = 1.0507009873554805
)

func (a Activation) apply(x float64) float64 {
	switch a {
	case ReLU:
		if x > 0 {
			return x
		}
		return 0
	case LeakyReLU:
		if x > 0 {
			return x
		}
		return 0.01 * x
	case PReLU:
		if x > 0 {
			return x
		}
		return 0.25 * x
	case SELU:
		if x > 0 {
			return seluLambda * x
		}
		return seluLambda * seluAlpha * (math.Exp(x) - 1)
	case Sigmoid:
		return 1 / (1 + math.Exp(-x))
	case Tanh:
		return math.Tanh(x)
	default:
		return x
	}
}

// derivative in terms of pre-activation x and post-activation y.
func (a Activation) deriv(x, y float64) float64 {
	switch a {
	case ReLU:
		if x > 0 {
			return 1
		}
		return 0
	case LeakyReLU:
		if x > 0 {
			return 1
		}
		return 0.01
	case PReLU:
		if x > 0 {
			return 1
		}
		return 0.25
	case SELU:
		if x > 0 {
			return seluLambda
		}
		return y + seluLambda*seluAlpha // λα·e^x = y + λα
	case Sigmoid:
		return y * (1 - y)
	case Tanh:
		return 1 - y*y
	default:
		return 1
	}
}

// LayerSpec declares one layer.
type LayerSpec struct {
	Units int
	Act   Activation
}

// Optimizer selects the weight-update rule.
type Optimizer int

const (
	// SGD is stochastic gradient descent with momentum.
	SGD Optimizer = iota
	// Adam is the Adam optimizer.
	Adam
)

// Loss selects the training loss.
type Loss int

const (
	// BCE is binary cross-entropy over a single sigmoid output.
	BCE Loss = iota
	// CE is categorical cross-entropy over a softmax output.
	CE
	// MSE is mean squared error.
	MSE
)

// Config declares a network and its training hyperparameters.
type Config struct {
	Inputs int
	Layers []LayerSpec // hidden layers then output layer
	Seed   int64

	Optimizer Optimizer
	Loss      Loss
	LR        float64 // default 0.01
	Momentum  float64 // SGD only, default 0.9
	// WeightDecay is the L2 regularization coefficient applied to weights
	// (not biases); 0 disables it.
	WeightDecay float64
	Epochs      int // default 30
	Batch       int // default 64
	// PosWeight multiplies the gradient of positive (slow) samples; 1 means
	// unweighted. The paper's biased-training experiment (§3.6).
	PosWeight float64
	// Patience stops training early after this many epochs without
	// training-loss improvement; 0 disables.
	Patience int
}

// HeimdallConfig is the final NN design of Fig. 9f: 2 hidden ReLU layers of
// 128 and 16 neurons and a single-sigmoid output.
func HeimdallConfig(inputs int, seed int64) Config {
	return Config{
		Inputs: inputs,
		Layers: []LayerSpec{{128, ReLU}, {16, ReLU}, {1, Sigmoid}},
		Seed:   seed,
		Loss:   BCE, Optimizer: Adam, LR: 0.005, Epochs: 30, Batch: 64, PosWeight: 1,
	}
}

type layer struct {
	in, out int
	act     Activation
	w       []float64 // out*in, row-major by output neuron
	b       []float64 // out

	// training state
	z, a   []float64 // pre/post activation of last forward
	gw, gb []float64 // gradient accumulators
	// optimizer state
	mw, vw, mb, vb []float64
}

// Network is a trained or trainable feed-forward network. It is not safe
// for concurrent Train; Forward/Predict are safe concurrently after
// training only if each goroutine uses its own clone (training buffers are
// reused). Use Infer for a goroutine-safe forward pass.
type Network struct {
	cfg    Config
	layers []*layer
	step   int // Adam timestep
}

// New builds a network with deterministic He/Xavier initialization.
func New(cfg Config) (*Network, error) {
	if cfg.Inputs <= 0 {
		return nil, errors.New("nn: Inputs must be positive")
	}
	if len(cfg.Layers) == 0 {
		return nil, errors.New("nn: at least one layer required")
	}
	if cfg.LR == 0 {
		cfg.LR = 0.01
	}
	if cfg.Momentum == 0 {
		cfg.Momentum = 0.9
	}
	if cfg.Epochs == 0 {
		cfg.Epochs = 30
	}
	if cfg.Batch == 0 {
		cfg.Batch = 64
	}
	if cfg.PosWeight == 0 {
		cfg.PosWeight = 1
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	n := &Network{cfg: cfg}
	in := cfg.Inputs
	for li, spec := range cfg.Layers {
		if spec.Units <= 0 {
			return nil, fmt.Errorf("nn: layer %d has %d units", li, spec.Units)
		}
		l := &layer{in: in, out: spec.Units, act: spec.Act}
		l.w = make([]float64, in*spec.Units)
		l.b = make([]float64, spec.Units)
		// He init for rectifiers, Xavier otherwise.
		scale := math.Sqrt(2 / float64(in))
		if spec.Act == Sigmoid || spec.Act == Tanh || spec.Act == Softmax || spec.Act == Linear {
			scale = math.Sqrt(1 / float64(in))
		}
		for i := range l.w {
			l.w[i] = rng.NormFloat64() * scale
		}
		l.z = make([]float64, spec.Units)
		l.a = make([]float64, spec.Units)
		l.gw = make([]float64, len(l.w))
		l.gb = make([]float64, len(l.b))
		l.mw = make([]float64, len(l.w))
		l.vw = make([]float64, len(l.w))
		l.mb = make([]float64, len(l.b))
		l.vb = make([]float64, len(l.b))
		n.layers = append(n.layers, l)
		in = spec.Units
	}
	return n, nil
}

// Config returns the configuration the network was built with.
func (n *Network) Config() Config { return n.cfg }

// Clone returns an independent deep copy of the network: weights, biases,
// optimizer state, and the Adam timestep. The clone can be trained further
// without disturbing the original — the warm-start half of continuous
// retraining (clone the champion, fine-tune on fresh data, compare). Train
// on a clone continues from the copied weights because New is the only
// place weights are initialized.
func (n *Network) Clone() *Network {
	c := &Network{cfg: n.cfg, step: n.step}
	c.cfg.Layers = append([]LayerSpec(nil), n.cfg.Layers...)
	for _, l := range n.layers {
		cl := &layer{in: l.in, out: l.out, act: l.act}
		cl.w = append([]float64(nil), l.w...)
		cl.b = append([]float64(nil), l.b...)
		cl.z = make([]float64, l.out)
		cl.a = make([]float64, l.out)
		cl.gw = make([]float64, len(l.w))
		cl.gb = make([]float64, len(l.b))
		cl.mw = append([]float64(nil), l.mw...)
		cl.vw = append([]float64(nil), l.vw...)
		cl.mb = append([]float64(nil), l.mb...)
		cl.vb = append([]float64(nil), l.vb...)
		c.layers = append(c.layers, cl)
	}
	return c
}

// Retune adjusts the training hyperparameters for a subsequent Train call —
// the knob a warm-start fine-tune turns (few epochs, smaller step) without
// rebuilding the network. Non-positive arguments keep the current value.
func (n *Network) Retune(epochs int, lr float64) {
	if epochs > 0 {
		n.cfg.Epochs = epochs
	}
	if lr > 0 {
		n.cfg.LR = lr
	}
}

// Outputs returns the width of the output layer.
func (n *Network) Outputs() int { return n.layers[len(n.layers)-1].out }

// ParamCount returns (weights, biases) — the paper's §6.6 accounting.
func (n *Network) ParamCount() (weights, biases int) {
	for _, l := range n.layers {
		weights += len(l.w)
		biases += len(l.b)
	}
	return weights, biases
}

// MulCount returns the multiply operations of one forward pass.
func (n *Network) MulCount() int {
	m := 0
	for _, l := range n.layers {
		m += l.in * l.out
	}
	return m
}

// MemoryBytes returns the resident size of the deployed float model at 8
// bytes per parameter — the paper's §6.6 accounting (28KB for Heimdall's
// 3617 parameters, 68KB for LinnOS's 8706).
func (n *Network) MemoryBytes() int {
	w, b := n.ParamCount()
	return 8 * (w + b)
}

func (l *layer) forward(x []float64) []float64 {
	for o := 0; o < l.out; o++ {
		sum := l.b[o]
		row := l.w[o*l.in : (o+1)*l.in]
		for i, v := range x {
			sum += row[i] * v
		}
		l.z[o] = sum
	}
	if l.act == Softmax {
		softmax(l.z, l.a)
	} else {
		for o, z := range l.z {
			l.a[o] = l.act.apply(z)
		}
	}
	return l.a
}

func softmax(z, out []float64) {
	maxz := z[0]
	for _, v := range z[1:] {
		if v > maxz {
			maxz = v
		}
	}
	var sum float64
	for i, v := range z {
		e := math.Exp(v - maxz)
		out[i] = e
		sum += e
	}
	for i := range out {
		out[i] /= sum
	}
}

// Forward runs one forward pass reusing internal buffers (not
// goroutine-safe). The returned slice is owned by the network.
func (n *Network) Forward(x []float64) []float64 {
	a := x
	for _, l := range n.layers {
		a = l.forward(a)
	}
	return a
}

// Predict returns the probability of the positive (slow) class: the single
// sigmoid output, or the second softmax output for 2-class networks.
func (n *Network) Predict(x []float64) float64 {
	out := n.Forward(x)
	if len(out) == 1 {
		return out[0]
	}
	return out[len(out)-1]
}

// ScratchSize returns the length of the scratch buffers PredictInto needs:
// the widest layer of the network.
func (n *Network) ScratchSize() int {
	w := 0
	for _, l := range n.layers {
		if l.out > w {
			w = l.out
		}
	}
	return w
}

// PredictInto runs a forward pass using caller-provided scratch slices
// (each at least ScratchSize long) and returns the probability of the
// positive class — the float counterpart of QuantNetwork.PredictInto. It
// allocates nothing, does not modify x, and is safe for concurrent use with
// per-goroutine scratch.
//
//heimdall:hotpath
func (n *Network) PredictInto(x []float64, cur, next []float64) float64 {
	in := x
	for _, l := range n.layers {
		out := cur[:l.out]
		for o := 0; o < l.out; o++ {
			sum := l.b[o]
			row := l.w[o*l.in : (o+1)*l.in]
			for i, v := range in {
				sum += row[i] * v
			}
			out[o] = sum
		}
		if l.act == Softmax {
			softmax(out, out)
		} else {
			for o, z := range out {
				out[o] = l.act.apply(z)
			}
		}
		in = out
		cur, next = next, cur
	}
	if len(in) == 1 {
		return in[0]
	}
	return in[len(in)-1]
}

// Infer is a goroutine-safe forward pass that allocates its own buffers.
// Hot loops should allocate scratch once and call PredictInto instead.
func (n *Network) Infer(x []float64) float64 {
	w := n.ScratchSize()
	return n.PredictInto(x, make([]float64, w), make([]float64, w))
}

// TrainStats reports the training run.
type TrainStats struct {
	Epochs    int
	FinalLoss float64
}

// Train fits the network with mini-batch gradient descent. Labels y are
// 0/1 for BCE and class indices encoded as 0/1 for the 2-class CE case.
func (n *Network) Train(X [][]float64, y []float64) (TrainStats, error) {
	if len(X) == 0 {
		return TrainStats{}, errors.New("nn: empty training set")
	}
	if len(X) != len(y) {
		return TrainStats{}, fmt.Errorf("nn: %d rows vs %d labels", len(X), len(y))
	}
	for i, r := range X {
		if len(r) != n.cfg.Inputs {
			return TrainStats{}, fmt.Errorf("nn: row %d has width %d, want %d", i, len(r), n.cfg.Inputs)
		}
	}
	rng := rand.New(rand.NewSource(n.cfg.Seed + 1))
	idx := make([]int, len(X))
	for i := range idx {
		idx[i] = i
	}
	var stats TrainStats
	best := math.Inf(1)
	sinceBest := 0
	for epoch := 0; epoch < n.cfg.Epochs; epoch++ {
		rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		var epochLoss float64
		for start := 0; start < len(idx); start += n.cfg.Batch {
			end := start + n.cfg.Batch
			if end > len(idx) {
				end = len(idx)
			}
			epochLoss += n.trainBatch(X, y, idx[start:end])
		}
		epochLoss /= float64(len(idx))
		stats.Epochs = epoch + 1
		stats.FinalLoss = epochLoss
		if n.cfg.Patience > 0 {
			if epochLoss < best-1e-6 {
				best = epochLoss
				sinceBest = 0
			} else {
				sinceBest++
				if sinceBest >= n.cfg.Patience {
					break
				}
			}
		}
	}
	return stats, nil
}

func (n *Network) trainBatch(X [][]float64, y []float64, batch []int) float64 {
	for _, l := range n.layers {
		for i := range l.gw {
			l.gw[i] = 0
		}
		for i := range l.gb {
			l.gb[i] = 0
		}
	}
	var loss float64
	// delta buffers sized to the widest layer.
	maxw := n.cfg.Inputs
	for _, l := range n.layers {
		if l.out > maxw {
			maxw = l.out
		}
	}
	delta := make([]float64, maxw)
	prevDelta := make([]float64, maxw)

	acts := make([][]float64, len(n.layers)+1)
	for _, bi := range batch {
		x := X[bi]
		target := y[bi]
		acts[0] = x
		a := x
		for li, l := range n.layers {
			a = l.forward(a)
			// Copy activations: layer buffers are overwritten next sample,
			// but within one sample's backprop they survive; we only need
			// them during this sample, so aliasing is fine.
			acts[li+1] = a
		}
		out := n.layers[len(n.layers)-1]

		// Output delta (dL/dz of output layer) and loss.
		w := 1.0
		if target > 0.5 && n.cfg.PosWeight != 1 {
			w = n.cfg.PosWeight
		}
		switch n.cfg.Loss {
		case BCE:
			p := clampProb(out.a[0])
			loss += -w * (target*math.Log(p) + (1-target)*math.Log(1-p))
			delta[0] = w * (p - target) // sigmoid+BCE shortcut
		case CE:
			// Two-class softmax; target selects the class.
			cls := 0
			if target > 0.5 {
				cls = 1
			}
			loss += -w * math.Log(clampProb(out.a[cls]))
			for o := 0; o < out.out; o++ {
				t := 0.0
				if o == cls {
					t = 1
				}
				delta[o] = w * (out.a[o] - t)
			}
		default: // MSE
			d := out.a[0] - target
			loss += w * d * d / 2
			delta[0] = w * d * out.act.deriv(out.z[0], out.a[0])
		}

		// Backward pass.
		for li := len(n.layers) - 1; li >= 0; li-- {
			l := n.layers[li]
			in := acts[li]
			for o := 0; o < l.out; o++ {
				d := delta[o]
				if d == 0 {
					continue
				}
				row := l.gw[o*l.in : (o+1)*l.in]
				for i, v := range in {
					row[i] += d * v
				}
				l.gb[o] += d
			}
			if li > 0 {
				prev := n.layers[li-1]
				for i := 0; i < l.in; i++ {
					var s float64
					for o := 0; o < l.out; o++ {
						s += l.w[o*l.in+i] * delta[o]
					}
					prevDelta[i] = s * prev.act.deriv(prev.z[i], prev.a[i])
				}
				delta, prevDelta = prevDelta, delta
			}
		}
	}

	scale := 1 / float64(len(batch))
	n.step++
	for _, l := range n.layers {
		n.applyGrads(l, scale)
	}
	return loss
}

func (n *Network) applyGrads(l *layer, scale float64) {
	lr := n.cfg.LR
	wd := n.cfg.WeightDecay
	switch n.cfg.Optimizer {
	case Adam:
		const b1, b2, eps = 0.9, 0.999, 1e-8
		bc1 := 1 - math.Pow(b1, float64(n.step))
		bc2 := 1 - math.Pow(b2, float64(n.step))
		for i := range l.w {
			g := l.gw[i]*scale + wd*l.w[i]
			l.mw[i] = b1*l.mw[i] + (1-b1)*g
			l.vw[i] = b2*l.vw[i] + (1-b2)*g*g
			l.w[i] -= lr * (l.mw[i] / bc1) / (math.Sqrt(l.vw[i]/bc2) + eps)
		}
		for i := range l.b {
			g := l.gb[i] * scale
			l.mb[i] = b1*l.mb[i] + (1-b1)*g
			l.vb[i] = b2*l.vb[i] + (1-b2)*g*g
			l.b[i] -= lr * (l.mb[i] / bc1) / (math.Sqrt(l.vb[i]/bc2) + eps)
		}
	default: // SGD + momentum, reusing mw/mb as velocity
		mom := n.cfg.Momentum
		for i := range l.w {
			l.mw[i] = mom*l.mw[i] - lr*(l.gw[i]*scale+wd*l.w[i])
			l.w[i] += l.mw[i]
		}
		for i := range l.b {
			l.mb[i] = mom*l.mb[i] - lr*l.gb[i]*scale
			l.b[i] += l.mb[i]
		}
	}
}

func clampProb(p float64) float64 {
	const eps = 1e-12
	if p < eps {
		return eps
	}
	if p > 1-eps {
		return 1 - eps
	}
	return p
}
