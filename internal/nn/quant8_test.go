package nn

import (
	"math"
	"math/rand"
	"testing"
)

// trained8Net returns a small trained network (so weights are non-degenerate)
// plus a deterministic calibration/eval row set.
func trained8Net(t testing.TB, shape []LayerSpec, inputs int) (*Network, [][]float64) {
	t.Helper()
	net, err := New(Config{
		Inputs: inputs, Layers: shape, Seed: 42,
		LR: 0.02, Epochs: 30, Batch: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	var X [][]float64
	var y []float64
	for i := 0; i < 512; i++ {
		row := make([]float64, inputs)
		sum := 0.0
		for j := range row {
			row[j] = rng.Float64()
			sum += row[j]
		}
		X = append(X, row)
		if sum > float64(inputs)/2 {
			y = append(y, 1)
		} else {
			y = append(y, 0)
		}
	}
	if _, err := net.Train(X, y); err != nil {
		t.Fatal(err)
	}
	return net, X
}

// TestQuant8BatchMatchesRow pins the core determinism property of the int8
// engine: the batch-major kernel is bit-identical to scoring rows one at a
// time (batch of 1), at every batch size, for every supported output design.
// This is what lets the serving layer batch without changing verdicts.
func TestQuant8BatchMatchesRow(t *testing.T) {
	shapes := [][]LayerSpec{
		{{128, ReLU}, {16, ReLU}, {1, Sigmoid}},
		{{32, LeakyReLU}, {1, Linear}},
		{{16, PReLU}, {8, ReLU}, {2, Softmax}},
		{{1, Sigmoid}}, // no hidden layer at all
	}
	for _, shape := range shapes {
		net, rows := trained8Net(t, shape, 11)
		q, err := net.Quantize8(rows)
		if err != nil {
			t.Fatal(err)
		}
		single := make([]float64, len(rows))
		s1 := NewScratch(q, 1)
		var out1 [1]float64
		for i, r := range rows {
			q.PredictBatchInto([][]float64{r}, out1[:], s1)
			single[i] = out1[0]
		}
		for _, bs := range []int{1, 3, 16, 64, len(rows)} {
			s := NewScratch(q, bs)
			got := make([]float64, len(rows))
			for off := 0; off < len(rows); off += bs {
				end := off + bs
				if end > len(rows) {
					end = len(rows)
				}
				q.PredictBatchInto(rows[off:end], got[off:], s)
			}
			for i := range got {
				if got[i] != single[i] {
					t.Fatalf("%v batch=%d row %d: batched %v != single %v", shape, bs, i, got[i], single[i])
				}
			}
		}
		// Predict (the Predictor convenience path) is the same kernel.
		if p := q.Predict(rows[0]); p != single[0] {
			t.Fatalf("%v: Predict %v != batch-of-1 %v", shape, p, single[0])
		}
	}
}

// TestQuant8CloseToFloat checks calibrated int8 inference against the float
// reference: probabilities stay close and confident decisions never flip.
func TestQuant8CloseToFloat(t *testing.T) {
	net, rows := trained8Net(t, []LayerSpec{{128, ReLU}, {16, ReLU}, {1, Sigmoid}}, 11)
	q, err := net.Quantize8(rows)
	if err != nil {
		t.Fatal(err)
	}
	s := NewScratch(q, len(rows))
	got := make([]float64, len(rows))
	q.PredictBatchInto(rows, got, s)
	worst, mean := 0.0, 0.0
	for i, r := range rows {
		pf := net.Infer(r)
		if math.IsNaN(got[i]) || got[i] < 0 || got[i] > 1 {
			t.Fatalf("row %d: non-probability int8 output %v", i, got[i])
		}
		d := math.Abs(pf - got[i])
		mean += d
		if d > worst {
			worst = d
		}
		if (pf >= 0.5) != (got[i] >= 0.5) && math.Abs(pf-0.5) > 0.03 {
			t.Fatalf("row %d: confident decision flipped (float %v, int8 %v)", i, pf, got[i])
		}
	}
	mean /= float64(len(rows))
	t.Logf("|float - int8| over %d calibration rows: max %v mean %v", len(rows), worst, mean)
	// Worst-case drift grows with fan-in (128-wide layers sum ~128 int8
	// rounding errors into a steep sigmoid); what deployment needs is that
	// typical drift is small and confident verdicts never flip (above).
	if worst > 0.15 {
		t.Fatalf("int8 max drift %v exceeds tolerance 0.15", worst)
	}
	if mean > 0.02 {
		t.Fatalf("int8 mean drift %v exceeds tolerance 0.02", mean)
	}
}

// TestQuant8ScaleRoundTrip pins the serialization contract: float weights
// plus the stored activation scales rebuild a bit-identical int8 network.
func TestQuant8ScaleRoundTrip(t *testing.T) {
	net, rows := trained8Net(t, []LayerSpec{{32, ReLU}, {8, ReLU}, {1, Sigmoid}}, 11)
	q, err := net.Quantize8(rows)
	if err != nil {
		t.Fatal(err)
	}
	q2, err := net.Quantize8Scales(q.ActScales())
	if err != nil {
		t.Fatal(err)
	}
	s := NewScratch(q, len(rows))
	a := make([]float64, len(rows))
	b := make([]float64, len(rows))
	q.PredictBatchInto(rows, a, s)
	q2.PredictBatchInto(rows, b, s)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("row %d: rebuilt network differs (%v != %v)", i, a[i], b[i])
		}
	}
}

// TestQuant8UncalibratedFallback checks the analytic-bound path: no
// calibration rows still yields a working (if coarser) network.
func TestQuant8UncalibratedFallback(t *testing.T) {
	net, rows := trained8Net(t, []LayerSpec{{16, ReLU}, {1, Sigmoid}}, 11)
	q, err := net.Quantize8(nil)
	if err != nil {
		t.Fatal(err)
	}
	s := NewScratch(q, 1)
	var out [1]float64
	for _, r := range rows[:32] {
		q.PredictBatchInto([][]float64{r}, out[:], s)
		if math.IsNaN(out[0]) || out[0] < 0 || out[0] > 1 {
			t.Fatalf("fallback scales produced non-probability %v", out[0])
		}
	}
}

// TestQuant8Errors covers the rejection paths.
func TestQuant8Errors(t *testing.T) {
	net, _ := trained8Net(t, []LayerSpec{{8, SELU}, {1, Sigmoid}}, 4)
	if _, err := net.Quantize8(nil); err == nil {
		t.Fatal("SELU hidden layer quantized without error")
	}
	net2, _ := trained8Net(t, []LayerSpec{{8, ReLU}, {1, Sigmoid}}, 4)
	if _, err := net2.Quantize8Scales([]float64{1}); err == nil {
		t.Fatal("wrong scale count accepted")
	}
	if _, err := net2.Quantize8Scales([]float64{1, -3}); err == nil {
		t.Fatal("negative scale accepted")
	}
	if _, err := net2.Quantize8Scales([]float64{1, math.Inf(1)}); err == nil {
		t.Fatal("infinite scale accepted")
	}
}

// TestQuant8Accounting sanity-checks ParamCount, ScratchSize, MemoryBytes,
// and the int8-vs-int32 footprint ordering the bench output reports.
func TestQuant8Accounting(t *testing.T) {
	net, rows := trained8Net(t, []LayerSpec{{128, ReLU}, {16, ReLU}, {1, Sigmoid}}, 11)
	q8, err := net.Quantize8(rows)
	if err != nil {
		t.Fatal(err)
	}
	q32, err := net.Quantize()
	if err != nil {
		t.Fatal(err)
	}
	w8, b8 := q8.ParamCount()
	w32, b32 := q32.ParamCount()
	if w8 != w32 || b8 != b32 {
		t.Fatalf("param counts differ: int8 %d/%d vs int32 %d/%d", w8, b8, w32, b32)
	}
	if q8.ScratchSize() != q32.ScratchSize() {
		t.Fatalf("scratch sizes differ: %d vs %d", q8.ScratchSize(), q32.ScratchSize())
	}
	if q8.MemoryBytes() >= q32.MemoryBytes() {
		t.Fatalf("int8 footprint %dB not smaller than int32 %dB", q8.MemoryBytes(), q32.MemoryBytes())
	}
	// The int32 footprint must now cover more than bare parameters (the
	// scratch-and-scale-table accounting fix).
	if q32.MemoryBytes() <= 4*w32+8*b32 {
		t.Fatalf("int32 MemoryBytes %dB ignores scratch/scale tables", q32.MemoryBytes())
	}
	exp := q8.ExportLayers()
	if len(exp) != 3 || q8.Inputs() != 11 || len(exp[2].M) != 1 || !(exp[2].M[0] > 0) {
		t.Fatal("export accessors inconsistent")
	}
}
