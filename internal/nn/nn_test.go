package nn

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func xorData() ([][]float64, []float64) {
	X := [][]float64{{0, 0}, {0, 1}, {1, 0}, {1, 1}}
	y := []float64{0, 1, 1, 0}
	// Replicate so batches are non-trivial.
	var XX [][]float64
	var yy []float64
	for i := 0; i < 64; i++ {
		XX = append(XX, X...)
		yy = append(yy, y...)
	}
	return XX, yy
}

func TestLearnsXORSigmoid(t *testing.T) {
	net, err := New(Config{
		Inputs: 2,
		Layers: []LayerSpec{{8, ReLU}, {1, Sigmoid}},
		Seed:   1, Loss: BCE, Optimizer: Adam, LR: 0.02, Epochs: 200, Batch: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	X, y := xorData()
	if _, err := net.Train(X, y); err != nil {
		t.Fatal(err)
	}
	for i, x := range [][]float64{{0, 0}, {0, 1}, {1, 0}, {1, 1}} {
		want := []float64{0, 1, 1, 0}[i]
		got := net.Predict(x)
		if math.Abs(got-want) > 0.3 {
			t.Fatalf("xor(%v) = %.3f, want %v", x, got, want)
		}
	}
}

func TestLearnsXORSoftmax(t *testing.T) {
	net, err := New(Config{
		Inputs: 2,
		Layers: []LayerSpec{{8, ReLU}, {2, Softmax}},
		Seed:   2, Loss: CE, Optimizer: Adam, LR: 0.02, Epochs: 200, Batch: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	X, y := xorData()
	if _, err := net.Train(X, y); err != nil {
		t.Fatal(err)
	}
	for i, x := range [][]float64{{0, 0}, {0, 1}, {1, 0}, {1, 1}} {
		want := []float64{0, 1, 1, 0}[i]
		got := net.Predict(x) // P(class 1)
		if math.Abs(got-want) > 0.3 {
			t.Fatalf("xor(%v) = %.3f, want %v", x, got, want)
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	net, err := New(Config{
		Inputs: 2,
		Layers: []LayerSpec{{8, ReLU}, {1, Sigmoid}},
		Seed:   7, Loss: BCE, Optimizer: Adam, LR: 0.02, Epochs: 40, Batch: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	X, y := xorData()
	if _, err := net.Train(X, y); err != nil {
		t.Fatal(err)
	}

	probe := [][]float64{{0, 0}, {0, 1}, {1, 0}, {1, 1}, {0.5, 0.5}}
	before := make([]float64, len(probe))
	for i, x := range probe {
		before[i] = net.Predict(x)
	}

	clone := net.Clone()
	for i, x := range probe {
		if got := clone.Predict(x); got != before[i] {
			t.Fatalf("clone diverges before training: probe %d %v vs %v", i, got, before[i])
		}
	}

	// Fine-tune the clone: the original must be untouched, and the clone's
	// continued training must be deterministic (two identical clones stay
	// byte-identical).
	clone2 := net.Clone()
	clone.Retune(10, 0.01)
	clone2.Retune(10, 0.01)
	if _, err := clone.Train(X, y); err != nil {
		t.Fatal(err)
	}
	if _, err := clone2.Train(X, y); err != nil {
		t.Fatal(err)
	}
	moved := false
	for i, x := range probe {
		if got := net.Predict(x); got != before[i] {
			t.Fatalf("training a clone mutated the original: probe %d %v vs %v", i, got, before[i])
		}
		c1, c2 := clone.Predict(x), clone2.Predict(x)
		if c1 != c2 {
			t.Fatalf("identical clones diverged after identical training: %v vs %v", c1, c2)
		}
		if c1 != before[i] {
			moved = true
		}
	}
	if !moved {
		t.Fatal("fine-tuning the clone changed nothing")
	}

	// Retune with non-positive args keeps current settings.
	cfg := clone.Config()
	clone.Retune(0, -1)
	if got := clone.Config(); got.Epochs != cfg.Epochs || got.LR != cfg.LR {
		t.Fatalf("Retune(0,-1) changed config: %+v vs %+v", got, cfg)
	}
}

// TestGradientCheck verifies backprop against finite differences on a tiny
// network with smooth activations.
func TestGradientCheck(t *testing.T) {
	// LR must be non-zero (zero takes the default) but tiny, so the weight
	// update applied after gradient accumulation cannot perturb the check.
	net, err := New(Config{
		Inputs: 3,
		Layers: []LayerSpec{{4, Tanh}, {1, Sigmoid}},
		Seed:   3, Loss: BCE, LR: 1e-12, Epochs: 1, Batch: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	x := []float64{0.3, -0.7, 0.5}
	target := 1.0

	loss := func() float64 {
		p := clampProb(net.Forward(x)[0])
		return -(target*math.Log(p) + (1-target)*math.Log(1-p))
	}

	// Compute analytic gradients by running one batch with LR=0 — gradients
	// land in gw/gb before applyGrads (which is a no-op at LR 0 with SGD).
	net.cfg.Optimizer = SGD
	net.cfg.Momentum = 0
	net.trainBatch([][]float64{x}, []float64{target}, []int{0})

	const eps = 1e-6
	for li, l := range net.layers {
		for wi := range l.w {
			orig := l.w[wi]
			l.w[wi] = orig + eps
			up := loss()
			l.w[wi] = orig - eps
			down := loss()
			l.w[wi] = orig
			numeric := (up - down) / (2 * eps)
			analytic := l.gw[wi]
			if math.Abs(numeric-analytic) > 1e-4*(1+math.Abs(numeric)) {
				t.Fatalf("layer %d weight %d: analytic %.8f vs numeric %.8f", li, wi, analytic, numeric)
			}
		}
		for bi := range l.b {
			orig := l.b[bi]
			l.b[bi] = orig + eps
			up := loss()
			l.b[bi] = orig - eps
			down := loss()
			l.b[bi] = orig
			numeric := (up - down) / (2 * eps)
			if math.Abs(numeric-l.gb[bi]) > 1e-4*(1+math.Abs(numeric)) {
				t.Fatalf("layer %d bias %d: analytic %.8f vs numeric %.8f", li, bi, l.gb[bi], numeric)
			}
		}
	}
}

func TestParamAndMulCounts(t *testing.T) {
	heim, err := New(HeimdallConfig(11, 1))
	if err != nil {
		t.Fatal(err)
	}
	if got := heim.MulCount(); got != 3472 {
		t.Fatalf("heimdall multiplications %d, want 3472 (§6.6)", got)
	}
	w, b := heim.ParamCount()
	if w != 3472 || b != 145 {
		t.Fatalf("heimdall params %d+%d", w, b)
	}
	lin, err := New(Config{
		Inputs: 31,
		Layers: []LayerSpec{{256, ReLU}, {2, Softmax}},
		Seed:   1,
	})
	if err != nil {
		t.Fatal(err)
	}
	w, b = lin.ParamCount()
	if w+b != 8706 {
		t.Fatalf("linnos params %d, want 8706 (§6.6)", w+b)
	}
	if got := lin.MulCount(); got != 8448 {
		t.Fatalf("linnos multiplications %d, want 8448 (§6.6)", got)
	}
	if heim.MemoryBytes() >= lin.MemoryBytes() {
		t.Fatal("heimdall model not smaller than linnos")
	}
}

func TestActivations(t *testing.T) {
	cases := []struct {
		a    Activation
		x    float64
		want float64
	}{
		{ReLU, -1, 0}, {ReLU, 2, 2},
		{LeakyReLU, -1, -0.01}, {LeakyReLU, 2, 2},
		{PReLU, -4, -1}, {PReLU, 2, 2},
		{Linear, -3, -3},
		{Sigmoid, 0, 0.5},
		{Tanh, 0, 0},
	}
	for _, c := range cases {
		if got := c.a.apply(c.x); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("%v(%v) = %v, want %v", c.a, c.x, got, c.want)
		}
	}
	if SELU.apply(1) <= 1 {
		t.Error("selu(1) should exceed 1 (lambda > 1)")
	}
	for _, a := range []Activation{ReLU, LeakyReLU, PReLU, SELU, Sigmoid, Tanh, Linear, Softmax} {
		if a.String() == "unknown" {
			t.Errorf("activation %d unnamed", a)
		}
	}
}

func TestActivationDerivativeProperty(t *testing.T) {
	f := func(raw float64) bool {
		if math.IsNaN(raw) || math.Abs(raw) > 1e6 {
			return true // mod of astronomically large floats has no precision
		}
		x := math.Mod(raw, 5)
		const eps = 1e-6
		for _, a := range []Activation{ReLU, LeakyReLU, PReLU, SELU, Sigmoid, Tanh, Linear} {
			if math.Abs(x) < 1e-4 && (a == ReLU || a == LeakyReLU || a == PReLU || a == SELU) {
				continue // derivative kink at zero
			}
			y := a.apply(x)
			numeric := (a.apply(x+eps) - a.apply(x-eps)) / (2 * eps)
			if math.Abs(a.deriv(x, y)-numeric) > 1e-4*(1+math.Abs(numeric)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{Inputs: 0, Layers: []LayerSpec{{1, Sigmoid}}}); err == nil {
		t.Fatal("zero inputs accepted")
	}
	if _, err := New(Config{Inputs: 2}); err == nil {
		t.Fatal("no layers accepted")
	}
	if _, err := New(Config{Inputs: 2, Layers: []LayerSpec{{0, ReLU}}}); err == nil {
		t.Fatal("zero units accepted")
	}
	net, _ := New(Config{Inputs: 2, Layers: []LayerSpec{{1, Sigmoid}}})
	if _, err := net.Train(nil, nil); err == nil {
		t.Fatal("empty training set accepted")
	}
	if _, err := net.Train([][]float64{{1}}, []float64{0}); err == nil {
		t.Fatal("wrong-width row accepted")
	}
	if _, err := net.Train([][]float64{{1, 2}}, []float64{0, 1}); err == nil {
		t.Fatal("mismatched labels accepted")
	}
}

func TestDeterministicTraining(t *testing.T) {
	build := func() *Network {
		net, _ := New(Config{
			Inputs: 2, Layers: []LayerSpec{{4, ReLU}, {1, Sigmoid}},
			Seed: 9, LR: 0.01, Epochs: 5, Batch: 8,
		})
		X, y := xorData()
		_, _ = net.Train(X, y)
		return net
	}
	a, b := build(), build()
	for li := range a.layers {
		for wi := range a.layers[li].w {
			if a.layers[li].w[wi] != b.layers[li].w[wi] {
				t.Fatal("training not deterministic")
			}
		}
	}
}

func TestInferMatchesForward(t *testing.T) {
	net, _ := New(Config{Inputs: 3, Layers: []LayerSpec{{5, ReLU}, {1, Sigmoid}}, Seed: 4})
	x := []float64{0.1, 0.2, 0.3}
	if math.Abs(net.Predict(x)-net.Infer(x)) > 1e-12 {
		t.Fatal("Infer diverges from Forward")
	}
}

func TestEarlyStopping(t *testing.T) {
	net, _ := New(Config{
		Inputs: 2, Layers: []LayerSpec{{4, ReLU}, {1, Sigmoid}},
		Seed: 5, LR: 0.05, Epochs: 500, Batch: 32, Patience: 3,
	})
	X, y := xorData()
	stats, err := net.Train(X, y)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Epochs == 500 {
		t.Log("early stopping never triggered (possible but unusual)")
	}
	if stats.Epochs < 1 {
		t.Fatal("no epochs ran")
	}
}

func TestQuantizedMatchesFloat(t *testing.T) {
	net, _ := New(Config{
		Inputs: 4, Layers: []LayerSpec{{16, ReLU}, {8, ReLU}, {1, Sigmoid}},
		Seed: 6, LR: 0.01, Epochs: 30, Batch: 16,
	})
	rng := rand.New(rand.NewSource(7))
	X := make([][]float64, 256)
	y := make([]float64, 256)
	for i := range X {
		X[i] = []float64{rng.Float64(), rng.Float64(), rng.Float64(), rng.Float64()}
		if X[i][0]+X[i][1] > 1 {
			y[i] = 1
		}
	}
	if _, err := net.Train(X, y); err != nil {
		t.Fatal(err)
	}
	q, err := net.Quantize()
	if err != nil {
		t.Fatal(err)
	}
	agree := 0
	var maxDiff float64
	cur := make([]int64, q.ScratchSize())
	next := make([]int64, q.ScratchSize())
	for i := range X {
		pf := net.Predict(X[i])
		pq := q.PredictInto(X[i], cur, next)
		if (pf >= 0.5) == (pq >= 0.5) {
			agree++
		}
		if d := math.Abs(pf - pq); d > maxDiff {
			maxDiff = d
		}
		if got := q.DecideInto(X[i], cur, next); got != (pq >= 0.5) {
			t.Fatalf("DecideInto disagrees with PredictInto at %d", i)
		}
	}
	if agree < 250 {
		t.Fatalf("quantized decisions agree on %d/256", agree)
	}
	if maxDiff > 0.05 {
		t.Fatalf("max probability drift %.4f", maxDiff)
	}
}

func TestQuantizeSoftmax(t *testing.T) {
	net, _ := New(Config{
		Inputs: 2, Layers: []LayerSpec{{8, ReLU}, {2, Softmax}},
		Seed: 8, Loss: CE, LR: 0.02, Epochs: 100, Batch: 16,
	})
	X, y := xorData()
	if _, err := net.Train(X, y); err != nil {
		t.Fatal(err)
	}
	q, err := net.Quantize()
	if err != nil {
		t.Fatal(err)
	}
	cur := make([]int64, q.ScratchSize())
	next := make([]int64, q.ScratchSize())
	for _, x := range [][]float64{{0, 0}, {0, 1}, {1, 0}, {1, 1}} {
		pf := net.Predict(x)
		pq := q.PredictInto(x, cur, next)
		if (pf >= 0.5) != (pq >= 0.5) {
			t.Fatalf("softmax quantized decision differs at %v: %v vs %v", x, pf, pq)
		}
	}
}

func TestQuantizeRejectsTanh(t *testing.T) {
	net, _ := New(Config{Inputs: 2, Layers: []LayerSpec{{4, Tanh}, {1, Sigmoid}}, Seed: 1})
	if _, err := net.Quantize(); err == nil {
		t.Fatal("tanh hidden layer quantized without error")
	}
}

func TestQuantMemoryAccounting(t *testing.T) {
	net, _ := New(HeimdallConfig(11, 1))
	q, err := net.Quantize()
	if err != nil {
		t.Fatal(err)
	}
	w, b := q.ParamCount()
	if w != 3472 || b != 145 {
		t.Fatalf("quant params %d+%d", w, b)
	}
	// 28KB ballpark from the paper: 4B weights + 8B biases.
	if q.MemoryBytes() > 32<<10 {
		t.Fatalf("quantized memory %dB exceeds 32KB", q.MemoryBytes())
	}
}

func TestWeightedLossShiftsDecisions(t *testing.T) {
	// With a heavy positive weight the model should call more things slow.
	build := func(w float64) *Network {
		net, _ := New(Config{
			Inputs: 1, Layers: []LayerSpec{{4, ReLU}, {1, Sigmoid}},
			Seed: 11, LR: 0.02, Epochs: 60, Batch: 16, PosWeight: w,
		})
		rng := rand.New(rand.NewSource(12))
		X := make([][]float64, 400)
		y := make([]float64, 400)
		for i := range X {
			X[i] = []float64{rng.Float64()}
			// Noisy threshold at 0.7, positives rare.
			if X[i][0] > 0.7 && rng.Float64() < 0.8 {
				y[i] = 1
			}
		}
		_, _ = net.Train(X, y)
		return net
	}
	plain := build(1)
	weighted := build(8)
	var plainPos, weightedPos int
	for i := 0; i < 100; i++ {
		x := []float64{float64(i) / 100}
		if plain.Predict(x) >= 0.5 {
			plainPos++
		}
		if weighted.Predict(x) >= 0.5 {
			weightedPos++
		}
	}
	if weightedPos < plainPos {
		t.Fatalf("pos-weighted model predicts fewer positives (%d vs %d)", weightedPos, plainPos)
	}
}

func TestWeightDecayShrinksWeights(t *testing.T) {
	build := func(wd float64) *Network {
		net, _ := New(Config{
			Inputs: 2, Layers: []LayerSpec{{8, ReLU}, {1, Sigmoid}},
			Seed: 21, LR: 0.01, Epochs: 40, Batch: 16, WeightDecay: wd,
		})
		X, y := xorData()
		_, _ = net.Train(X, y)
		return net
	}
	norm := func(n *Network) float64 {
		var s float64
		for _, l := range n.layers {
			for _, w := range l.w {
				s += w * w
			}
		}
		return s
	}
	plain := norm(build(0))
	decayed := norm(build(0.01))
	if decayed >= plain {
		t.Fatalf("weight decay did not shrink weights: %v vs %v", decayed, plain)
	}
	// SGD path too.
	buildSGD := func(wd float64) *Network {
		net, _ := New(Config{
			Inputs: 2, Layers: []LayerSpec{{8, ReLU}, {1, Sigmoid}},
			Seed: 22, LR: 0.05, Epochs: 40, Batch: 16, WeightDecay: wd, Optimizer: SGD,
		})
		X, y := xorData()
		_, _ = net.Train(X, y)
		return net
	}
	if norm(buildSGD(0.01)) >= norm(buildSGD(0)) {
		t.Fatal("SGD weight decay did not shrink weights")
	}
}
