package nn

import (
	"math"
	"testing"
)

// FuzzQuantizedInference drives arbitrary (scaled-range) inputs through the
// float and quantized paths: both must stay finite, probabilities in [0,1],
// and decisions must agree except in a narrow probability band around 0.5
// where fixed-point rounding can legitimately flip them.
func FuzzQuantizedInference(f *testing.F) {
	net, err := New(Config{
		Inputs: 4,
		Layers: []LayerSpec{{16, ReLU}, {8, ReLU}, {1, Sigmoid}},
		Seed:   42, LR: 0.02, Epochs: 40, Batch: 16,
	})
	if err != nil {
		f.Fatal(err)
	}
	// Train on a simple separable rule so the network is non-degenerate.
	var X [][]float64
	var y []float64
	for i := 0; i < 256; i++ {
		v := float64(i%16) / 16
		w := float64((i/16)%16) / 16
		X = append(X, []float64{v, w, 1 - v, 0.5})
		if v+w > 1 {
			y = append(y, 1)
		} else {
			y = append(y, 0)
		}
	}
	if _, err := net.Train(X, y); err != nil {
		f.Fatal(err)
	}
	q, err := net.Quantize()
	if err != nil {
		f.Fatal(err)
	}

	f.Add(0.1, 0.9, 0.3, 0.5)
	f.Add(0.0, 0.0, 0.0, 0.0)
	f.Add(1.0, 1.0, 1.0, 1.0)
	f.Fuzz(func(t *testing.T, a, b, c, d float64) {
		x := []float64{clamp01f(a), clamp01f(b), clamp01f(c), clamp01f(d)}
		pf := net.Infer(x)
		pq := q.Predict(x)
		if math.IsNaN(pf) || math.IsNaN(pq) || pf < 0 || pf > 1 || pq < 0 || pq > 1 {
			t.Fatalf("non-probability output: float %v quant %v for %v", pf, pq, x)
		}
		if math.Abs(pf-pq) > 0.05 {
			t.Fatalf("quantization drift %v (float %v quant %v) at %v", pf-pq, pf, pq, x)
		}
		if (pf >= 0.5) != (pq >= 0.5) && math.Abs(pf-0.5) > 0.02 {
			t.Fatalf("confident decision flipped by quantization: float %v quant %v at %v", pf, pq, x)
		}
	})
}

func clamp01f(v float64) float64 {
	if math.IsNaN(v) || v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
