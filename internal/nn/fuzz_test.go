package nn

import (
	"math"
	"testing"
)

// FuzzQuantizedInference drives arbitrary (scaled-range) inputs through the
// float and quantized paths: both must stay finite, probabilities in [0,1],
// and decisions must agree except in a narrow probability band around 0.5
// where fixed-point rounding can legitimately flip them.
func FuzzQuantizedInference(f *testing.F) {
	net, err := New(Config{
		Inputs: 4,
		Layers: []LayerSpec{{16, ReLU}, {8, ReLU}, {1, Sigmoid}},
		Seed:   42, LR: 0.02, Epochs: 40, Batch: 16,
	})
	if err != nil {
		f.Fatal(err)
	}
	// Train on a simple separable rule so the network is non-degenerate.
	var X [][]float64
	var y []float64
	for i := 0; i < 256; i++ {
		v := float64(i%16) / 16
		w := float64((i/16)%16) / 16
		X = append(X, []float64{v, w, 1 - v, 0.5})
		if v+w > 1 {
			y = append(y, 1)
		} else {
			y = append(y, 0)
		}
	}
	if _, err := net.Train(X, y); err != nil {
		f.Fatal(err)
	}
	q, err := net.Quantize()
	if err != nil {
		f.Fatal(err)
	}

	f.Add(0.1, 0.9, 0.3, 0.5)
	f.Add(0.0, 0.0, 0.0, 0.0)
	f.Add(1.0, 1.0, 1.0, 1.0)
	f.Fuzz(func(t *testing.T, a, b, c, d float64) {
		x := []float64{clamp01f(a), clamp01f(b), clamp01f(c), clamp01f(d)}
		pf := net.Infer(x)
		pq := q.Predict(x)
		if math.IsNaN(pf) || math.IsNaN(pq) || pf < 0 || pf > 1 || pq < 0 || pq > 1 {
			t.Fatalf("non-probability output: float %v quant %v for %v", pf, pq, x)
		}
		if math.Abs(pf-pq) > 0.05 {
			t.Fatalf("quantization drift %v (float %v quant %v) at %v", pf-pq, pf, pq, x)
		}
		if (pf >= 0.5) != (pq >= 0.5) && math.Abs(pf-0.5) > 0.02 {
			t.Fatalf("confident decision flipped by quantization: float %v quant %v at %v", pf, pq, x)
		}
	})
}

// FuzzQuantize8 drives the int8 quantization round trip over arbitrary
// network seeds and calibration inputs: Quantize8 must never panic, every
// quantized weight must stay inside the symmetric ±127 bound, activation
// scales must stay positive and finite, rebuilding from ActScales must be
// exact, and inference on the calibration rows must stay a probability.
func FuzzQuantize8(f *testing.F) {
	f.Add(int64(1), 0.1, 0.9, 0.3)
	f.Add(int64(-7), 0.0, 0.0, 0.0)
	f.Add(int64(1<<40), 1e6, -1e6, 3.14)
	f.Fuzz(func(t *testing.T, seed int64, a, b, c float64) {
		net, err := New(Config{
			Inputs: 3,
			Layers: []LayerSpec{{8, ReLU}, {4, LeakyReLU}, {1, Sigmoid}},
			Seed:   seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		sane := func(v float64) float64 {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return 0
			}
			return v
		}
		calib := [][]float64{
			{sane(a), sane(b), sane(c)},
			{sane(b), sane(c), sane(a)},
		}
		q, err := net.Quantize8(calib)
		if err != nil {
			t.Fatal(err)
		}
		for li, l := range q.ExportLayers() {
			for _, w := range l.W {
				if w > Int8Max || w < -Int8Max {
					t.Fatalf("layer %d weight %d exceeds symmetric int8 bound", li, w)
				}
			}
		}
		for i, s := range q.ActScales() {
			if !(s > 0) || math.IsInf(s, 0) {
				t.Fatalf("activation scale %d is %v", i, s)
			}
		}
		q2, err := net.Quantize8Scales(q.ActScales())
		if err != nil {
			t.Fatal(err)
		}
		s := NewScratch(q, 2)
		out := make([]float64, 2)
		out2 := make([]float64, 2)
		q.PredictBatchInto(calib, out, s)
		q2.PredictBatchInto(calib, out2, s)
		for i := range out {
			if math.IsNaN(out[i]) || out[i] < 0 || out[i] > 1 {
				t.Fatalf("int8 output %d is %v, want probability", i, out[i])
			}
			if out[i] != out2[i] {
				t.Fatalf("scale round trip diverged: %v != %v", out[i], out2[i])
			}
		}
	})
}

func clamp01f(v float64) float64 {
	if math.IsNaN(v) || v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
