package nn

// Predictor is the unified inference interface over the quantization ladder.
// All three deployment forms implement it:
//
//   - *Network: float64 reference arithmetic (training-side path),
//   - *QuantNetwork: int32 ×1024 fixed point, one shift per hidden layer,
//   - *QuantNetwork8: int8 weights with per-layer symmetric scales and a
//     batch-major tiled kernel.
//
// Callers that held a concrete network type keep working — the old
// row-oriented entry points (Network.PredictInto, QuantNetwork.PredictInto)
// remain the underlying kernels — but new code should program against
// Predictor so an engine swap (int32 → int8, or an experimental predictor)
// needs no call-site changes.
type Predictor interface {
	// Predict returns P(slow) for one feature-scaled row, allocating its
	// own scratch — the convenience path for cold callers.
	Predict(x []float64) float64

	// PredictBatchInto scores a batch of feature-scaled rows into
	// out[:len(xs)] using caller-provided scratch. Implementations allocate
	// nothing once the scratch has grown to the batch shape, so hot loops
	// can pin allocation-freedom with testing.AllocsPerRun. Rows must all
	// have the network's input width; out must have at least len(xs) room.
	PredictBatchInto(xs [][]float64, out []float64, s *Scratch)

	// ScratchSize is the widest layer of the network — the per-row scratch
	// requirement of the forward pass.
	ScratchSize() int

	// MemoryBytes is the honest deployed footprint: parameters plus scale
	// tables plus the per-row scratch the kernel needs.
	MemoryBytes() int
}

// Compile-time checks: every rung of the ladder is a Predictor.
var (
	_ Predictor = (*Network)(nil)
	_ Predictor = (*QuantNetwork)(nil)
	_ Predictor = (*QuantNetwork8)(nil)
)

// Scratch holds the per-caller buffers any Predictor needs. One Scratch
// serves any engine (it carries buffers for every rung of the ladder), so a
// caller that swaps predictors at runtime keeps its scratch. Kernels grow
// the buffers on demand; undersizing costs a one-time allocation, never
// correctness.
type Scratch struct {
	// float ladder: layer ping-pong buffers
	//
	//heimdall:owner Network.PredictBatchInto,NewScratch
	fa, fb []float64
	// int32 ladder: layer ping-pong buffers
	//
	//heimdall:owner QuantNetwork.PredictBatchInto,NewScratch
	qa, qb []int64
	// int8 ladder: batch-major activation planes (width × batch)
	//
	//heimdall:owner QuantNetwork8.PredictBatchInto,NewScratch
	a8, b8 []int8
	// int8 ladder: output-layer accumulators for one row
	//
	//heimdall:owner QuantNetwork8.PredictBatchInto,NewScratch
	acc []int32
}

// NewScratch sizes a Scratch for p with room for batches of up to maxBatch
// rows (values below 1 are treated as 1).
func NewScratch(p Predictor, maxBatch int) *Scratch {
	if maxBatch < 1 {
		maxBatch = 1
	}
	w := p.ScratchSize()
	return &Scratch{
		fa:  make([]float64, w),
		fb:  make([]float64, w),
		qa:  make([]int64, w),
		qb:  make([]int64, w),
		a8:  make([]int8, w*maxBatch),
		b8:  make([]int8, w*maxBatch),
		acc: make([]int32, w),
	}
}

// PredictBatchInto implements Predictor for the float network: a row loop
// over the PredictInto kernel. The float path is the training-side reference
// arithmetic — it gains nothing from tiling, so no batched kernel exists.
//
//heimdall:hotpath
func (n *Network) PredictBatchInto(xs [][]float64, out []float64, s *Scratch) {
	w := n.ScratchSize()
	if cap(s.fa) < w {
		s.fa = make([]float64, w)
		s.fb = make([]float64, w)
	}
	for r, x := range xs {
		out[r] = n.PredictInto(x, s.fa[:w], s.fb[:w])
	}
}

// PredictBatchInto implements Predictor for the int32 ladder: a row loop
// over the PredictInto kernel. Integer arithmetic is exact, so this is
// bit-identical to scoring the rows one at a time in any order.
//
//heimdall:hotpath
func (q *QuantNetwork) PredictBatchInto(xs [][]float64, out []float64, s *Scratch) {
	w := q.ScratchSize()
	if cap(s.qa) < w {
		s.qa = make([]int64, w)
		s.qb = make([]int64, w)
	}
	for r, x := range xs {
		out[r] = q.PredictInto(x, s.qa[:w], s.qb[:w])
	}
}
