package nn

import (
	"math"
	"testing"
)

func allocNet(t testing.TB, layers []LayerSpec) *Network {
	t.Helper()
	net, err := New(Config{Inputs: 11, Layers: layers, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	return net
}

// TestPredictIntoMatchesInfer pins the zero-alloc path to the allocating
// reference across every supported output design.
func TestPredictIntoMatchesInfer(t *testing.T) {
	shapes := [][]LayerSpec{
		{{128, ReLU}, {16, ReLU}, {1, Sigmoid}},
		{{32, LeakyReLU}, {1, Linear}},
		{{16, Tanh}, {8, SELU}, {2, Softmax}},
	}
	for _, shape := range shapes {
		net := allocNet(t, shape)
		x := make([]float64, 11)
		for i := range x {
			x[i] = float64(i)*0.13 - 0.5
		}
		cur := make([]float64, net.ScratchSize())
		next := make([]float64, net.ScratchSize())
		got := net.PredictInto(x, cur, next)
		want := net.Infer(x)
		if got != want {
			t.Fatalf("%v: PredictInto %v != Infer %v", shape, got, want)
		}
		if fwd := net.Predict(x); math.Abs(fwd-got) > 1e-12 {
			t.Fatalf("%v: Forward-based Predict %v != PredictInto %v", shape, fwd, got)
		}
	}
}

// TestFloatPredictIntoZeroAlloc asserts the float deployment path allocates
// nothing per inference once scratch exists.
func TestFloatPredictIntoZeroAlloc(t *testing.T) {
	net := allocNet(t, []LayerSpec{{128, ReLU}, {16, ReLU}, {1, Sigmoid}})
	x := make([]float64, 11)
	cur := make([]float64, net.ScratchSize())
	next := make([]float64, net.ScratchSize())
	var sink float64
	if a := testing.AllocsPerRun(200, func() {
		sink = net.PredictInto(x, cur, next)
	}); a != 0 {
		t.Fatalf("float PredictInto allocates %.1f per run", a)
	}
	_ = sink
}

// TestQuantPredictIntoZeroAlloc asserts the quantized deployment path (§4.1)
// allocates nothing per inference.
func TestQuantPredictIntoZeroAlloc(t *testing.T) {
	net := allocNet(t, []LayerSpec{{128, ReLU}, {16, ReLU}, {1, Sigmoid}})
	q, err := net.Quantize()
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, 11)
	cur := make([]int64, q.ScratchSize())
	next := make([]int64, q.ScratchSize())
	var sink float64
	if a := testing.AllocsPerRun(200, func() {
		sink = q.PredictInto(x, cur, next)
	}); a != 0 {
		t.Fatalf("quantized PredictInto allocates %.1f per run", a)
	}
	var decided bool
	if a := testing.AllocsPerRun(200, func() {
		decided = q.DecideInto(x, cur, next)
	}); a != 0 {
		t.Fatalf("DecideInto allocates %.1f per run", a)
	}
	_, _ = sink, decided
}

// TestPredictBatchIntoZeroAlloc asserts every Predictor's batch entry point
// allocates nothing once its Scratch has grown to the batch shape — the
// guarantee the serving layer's batched decide path is built on.
func TestPredictBatchIntoZeroAlloc(t *testing.T) {
	net := allocNet(t, []LayerSpec{{128, ReLU}, {16, ReLU}, {1, Sigmoid}})
	q32, err := net.Quantize()
	if err != nil {
		t.Fatal(err)
	}
	q8, err := net.Quantize8(nil)
	if err != nil {
		t.Fatal(err)
	}
	const batch = 64
	xs := make([][]float64, batch)
	for i := range xs {
		row := make([]float64, 11)
		for j := range row {
			row[j] = float64(i*11+j%7) * 0.01
		}
		xs[i] = row
	}
	out := make([]float64, batch)
	for _, tc := range []struct {
		name string
		p    Predictor
	}{
		{"float", net}, {"int32", q32}, {"int8", q8},
	} {
		s := NewScratch(tc.p, batch)
		if a := testing.AllocsPerRun(200, func() {
			tc.p.PredictBatchInto(xs, out, s)
		}); a != 0 {
			t.Fatalf("%s PredictBatchInto allocates %.1f per run", tc.name, a)
		}
	}
}
